#!/usr/bin/env python3
"""Validate `schsim lint --json` output against the pinned lint schema.

Usage: check_lint_schema.py lint.json [lint2.json ...]
       check_lint_schema.py --run path/to/schsim target [target ...]

The second form runs `schsim lint <target> --json` itself (one invocation
per target), validates each document, and exits nonzero if any lint found
errors or emitted a malformed document -- that is the ctest/CI entry point,
so lint errors on shipped scenarios fail the build.

The schema version and the key sets are pinned here AND in
src/verify/verify.hpp (Report::kLintSchemaVersion) plus the JSON test in
tests/test_verify.cpp; all three must move together.
"""
import json
import subprocess
import sys

SCHEMA_VERSION = 1

TOP_KEYS = {
    "schema": int,
    "target": str,
    "errors": int,
    "warnings": int,
    "runs": list,
}
RUN_KEYS = {
    "name": str,
    "errors": int,
    "warnings": int,
    "complete": bool,
    "harts_analyzed": int,
    "findings": list,
}
FINDING_KEYS = {
    "kind": str,
    "severity": str,
    "hart": int,
    "pc": int,
    "reg": int,
    "message": str,
}
KINDS = {
    "chain_underflow", "chain_overflow", "chain_path_imbalance",
    "chain_frep_imbalance", "chain_gated_saturation", "chain_leftover",
    "ssr_out_of_bounds", "ssr_overlap", "ssr_direction_mismatch",
    "frep_branch_into_body", "frep_illegal_body", "inter_hart_race",
    "dma_race", "analysis_limit",
}
SEVERITIES = {"warning", "error"}


def fail(path, message):
    print(f"{path}: SCHEMA ERROR: {message}", file=sys.stderr)
    sys.exit(1)


def check_typed_keys(path, where, obj, keys):
    for key, ty in keys.items():
        if key not in obj:
            fail(path, f"{where}: missing key '{key}'")
        if not isinstance(obj[key], ty) or isinstance(obj[key], bool) != (ty is bool):
            fail(path, f"{where}: key '{key}' has type {type(obj[key]).__name__}")


def check_run(path, i, run):
    where = f"runs[{i}]"
    check_typed_keys(path, where, run, RUN_KEYS)
    if run["harts_analyzed"] < 1:
        fail(path, f"{where}: harts_analyzed {run['harts_analyzed']} < 1")
    errors = warnings = 0
    for j, finding in enumerate(run["findings"]):
        fwhere = f"{where}.findings[{j}]"
        check_typed_keys(path, fwhere, finding, FINDING_KEYS)
        if finding["kind"] not in KINDS:
            fail(path, f"{fwhere}: unknown kind '{finding['kind']}'")
        if finding["severity"] not in SEVERITIES:
            fail(path, f"{fwhere}: unknown severity '{finding['severity']}'")
        if not finding["message"]:
            fail(path, f"{fwhere}: empty message")
        if finding["severity"] == "error":
            errors += 1
        else:
            warnings += 1
    if errors != run["errors"]:
        fail(path, f"{where}: errors={run['errors']} but {errors} error findings")
    if warnings != run["warnings"]:
        fail(path, f"{where}: warnings={run['warnings']} but {warnings} "
                   f"warning findings")


def check_lint(path):
    with open(path) as f:
        doc = json.load(f)
    check_doc(path, doc)


def check_doc(path, doc):
    check_typed_keys(path, "document", doc, TOP_KEYS)
    if doc["schema"] != SCHEMA_VERSION:
        fail(path, f"schema {doc['schema']} != pinned {SCHEMA_VERSION}")
    if not doc["runs"]:
        fail(path, "empty 'runs' array (nothing was analyzed)")
    errors = warnings = 0
    for i, run in enumerate(doc["runs"]):
        check_run(path, i, run)
        errors += run["errors"]
        warnings += run["warnings"]
    if errors != doc["errors"]:
        fail(path, f"errors={doc['errors']} but per-run totals sum to {errors}")
    if warnings != doc["warnings"]:
        fail(path, f"warnings={doc['warnings']} but per-run totals sum to "
                   f"{warnings}")
    print(f"{path}: ok ({len(doc['runs'])} runs, {errors} errors, "
          f"{warnings} warnings, schema {SCHEMA_VERSION})")
    return errors


def run_and_check(schsim, targets):
    status = 0
    for target in targets:
        proc = subprocess.run([schsim, "lint", target, "--json"],
                              capture_output=True, text=True)
        if proc.returncode not in (0, 1):
            fail(target, f"schsim lint exited {proc.returncode}: "
                         f"{proc.stderr.strip()}")
        try:
            doc = json.loads(proc.stdout)
        except json.JSONDecodeError as e:
            fail(target, f"lint stdout is not JSON: {e}")
        if check_doc(target, doc) > 0 or proc.returncode != 0:
            print(f"{target}: LINT ERRORS (see above)", file=sys.stderr)
            status = 1
    return status


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    if sys.argv[1] == "--run":
        if len(sys.argv) < 4:
            print(__doc__, file=sys.stderr)
            return 2
        return run_and_check(sys.argv[2], sys.argv[3:])
    for path in sys.argv[1:]:
        check_lint(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
