#!/usr/bin/env python3
"""Validate a scenario/engine JSON report against the pinned RunReport schema.

Usage: check_report_schema.py report.json [report2.json ...]

The schema version and the per-row key set are pinned here AND in
src/api/run_report.hpp (kSchemaVersion) plus the golden test in
tests/test_api.cpp; all three must move together.
"""
import json
import sys

SCHEMA_VERSION = 4

# Required keys of one RunReport row and their JSON types. "error" and
# "failure" are present only on failed rows, so they are checked
# conditionally.
# v2 adds "num_cores", the per-core "cores" sections and the TCDM
# "out_of_range"/"top_banks" keys; every v1 key is unchanged.
# v3 adds the "dma" section and the "dma_full" stall key.
# v4 adds the structured "failure" section (kind/hart/pc/cycle) on failed
# rows; ok rows must not carry one.
ROW_KEYS = {
    "schema": int,
    "name": str,
    "kernel": str,
    "variant": str,
    "engine": str,
    "ok": bool,
    "cycles": int,
    "retired": int,
    "fpu_ops": int,
    "fpu_utilization": (int, float),
    "useful_flops": int,
    "iss_instructions": int,
    "mismatches": int,
    "lockstep_mismatches": int,
    "stalls": dict,
    "tcdm": dict,
    "dma": dict,
    "num_cores": int,
    "cores": list,
    "energy": dict,
    "regs": dict,
    "wall_s": (int, float),
}
STALL_KEYS = [
    "fp_raw", "fp_waw", "chain_empty", "chain_full", "ssr_empty", "ssr_wfull",
    "fpu_busy", "fp_lsu", "offload_full", "int_raw", "int_lsu", "csr_barrier",
    "dma_full", "branch_bubbles",
]
TCDM_KEYS = ["reads", "writes", "conflicts", "out_of_range", "top_banks"]
DMA_KEYS = [
    "transfers", "bytes", "busy_cycles", "startup_cycles", "tcdm_conflicts",
    "queue_full_stalls", "achieved_bytes_per_cycle",
]
CORE_KEYS = ["hart", "cycles", "retired", "fpu_ops", "fpu_utilization", "stalls"]
ENERGY_KEYS = ["power_mw", "energy_per_cycle_pj", "fpu_ops_per_joule"]
REGS_KEYS = ["fp_used", "accumulator", "chained", "ssr"]
ENGINES = {"iss", "cycle", "both"}
FAILURE_KINDS = {
    "validation", "bus_error", "deadlock", "lockstep_mismatch",
    "golden_mismatch", "budget_exceeded", "internal",
}


def fail(path, message):
    print(f"{path}: SCHEMA ERROR: {message}", file=sys.stderr)
    sys.exit(1)


def check_row(path, i, row):
    where = f"results[{i}]"
    for key, ty in ROW_KEYS.items():
        if key not in row:
            fail(path, f"{where}: missing key '{key}'")
        if not isinstance(row[key], ty) or isinstance(row[key], bool) != (ty is bool):
            fail(path, f"{where}: key '{key}' has type {type(row[key]).__name__}")
    if row["schema"] != SCHEMA_VERSION:
        fail(path, f"{where}: schema {row['schema']} != pinned {SCHEMA_VERSION}")
    if row["engine"] not in ENGINES:
        fail(path, f"{where}: unknown engine '{row['engine']}'")
    if not row["ok"]:
        if "error" not in row:
            fail(path, f"{where}: failed row without an 'error' message")
        if "failure" not in row:
            fail(path, f"{where}: failed row without a 'failure' section")
        failure = row["failure"]
        if failure.get("kind") not in FAILURE_KINDS:
            fail(path, f"{where}: failure.kind '{failure.get('kind')}' not in "
                       f"{sorted(FAILURE_KINDS)}")
        for key in ("hart", "pc", "cycle"):
            if not isinstance(failure.get(key), int) or \
                    isinstance(failure.get(key), bool):
                fail(path, f"{where}: failure.{key} must be an integer")
    elif "failure" in row:
        fail(path, f"{where}: ok row carries a 'failure' section")
    for key in STALL_KEYS:
        if key not in row["stalls"]:
            fail(path, f"{where}: stalls missing '{key}'")
    for key in TCDM_KEYS:
        if key not in row["tcdm"]:
            fail(path, f"{where}: tcdm missing '{key}'")
    for entry in row["tcdm"]["top_banks"]:
        for key in ("bank", "conflicts"):
            if key not in entry:
                fail(path, f"{where}: tcdm.top_banks entry missing '{key}'")
    for key in DMA_KEYS:
        if key not in row["dma"]:
            fail(path, f"{where}: dma missing '{key}'")
    if row["num_cores"] < 1:
        fail(path, f"{where}: num_cores {row['num_cores']} < 1")
    # The cycle engine reports one core section per core; the ISS-only
    # engine reports none.
    if row["cores"] and len(row["cores"]) != row["num_cores"]:
        fail(path, f"{where}: {len(row['cores'])} core sections for "
                   f"num_cores={row['num_cores']}")
    for h, core in enumerate(row["cores"]):
        for key in CORE_KEYS:
            if key not in core:
                fail(path, f"{where}: cores[{h}] missing '{key}'")
        if core["hart"] != h:
            fail(path, f"{where}: cores[{h}] has hart={core['hart']}")
        for key in STALL_KEYS:
            if key not in core["stalls"]:
                fail(path, f"{where}: cores[{h}].stalls missing '{key}'")
    for key in ENERGY_KEYS:
        if key not in row["energy"]:
            fail(path, f"{where}: energy missing '{key}'")
    for key in REGS_KEYS:
        if key not in row["regs"]:
            fail(path, f"{where}: regs missing '{key}'")


def check_report(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA_VERSION:
        fail(path, f"top-level schema {doc.get('schema')} != pinned {SCHEMA_VERSION}")
    for key in ("scenario", "jobs", "failures", "workers", "results"):
        if key not in doc:
            fail(path, f"missing top-level key '{key}'")
    rows = doc["results"]
    if len(rows) != doc["jobs"]:
        fail(path, f"jobs={doc['jobs']} but {len(rows)} result rows")
    failures = sum(1 for row in rows if not row.get("ok", False))
    if failures != doc["failures"]:
        fail(path, f"failures={doc['failures']} but {failures} failed rows")
    for i, row in enumerate(rows):
        check_row(path, i, row)
    print(f"{path}: ok ({len(rows)} rows, schema {SCHEMA_VERSION})")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in sys.argv[1:]:
        check_report(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
