#!/usr/bin/env python3
"""Validate a `schsim serve` NDJSON response transcript.

Every response line must be a self-contained JSON object with a known
"type"; report rows embedded in "report" lines must satisfy the pinned
RunReport row schema (imported from check_report_schema.py, so the two
checkers can never drift apart).

Two modes:

  check_serve_schema.py TRANSCRIPT.ndjson [...]
      Validate saved transcripts (e.g. `schsim run --stream` output).

  check_serve_schema.py --run SCHSIM [--shards N] REQUESTS.ndjson
      Launch `SCHSIM serve` as a subprocess, feed it the request file on
      stdin, validate everything it writes to stdout, and additionally
      check the protocol contract: one terminal response (done / error /
      pong / stats / dropped / bye) per non-blank request line, and for
      every "id"-carrying request, a terminal line echoing that id.

Exit codes: 0 ok, 1 schema violation, 2 bad input / subprocess failure.
"""

import argparse
import json
import subprocess
import sys

import check_report_schema as report_schema

LINE_TYPES = {"report", "done", "error", "pong", "stats", "dropped", "bye"}
TERMINAL_TYPES = {"done", "error", "pong", "stats", "dropped", "bye"}
ROLLUP_KEYS = [
    "jobs", "ok", "failures", "geomean_cycles", "total_cycles",
    "total_iss_instructions", "total_useful_flops", "fpu_utilization", "tcdm",
]
CACHE_COUNTER_KEYS = ["hits", "misses", "evictions", "entries"]


class SchemaError(Exception):
    pass


def need(line, key, types, where):
    if key not in line:
        raise SchemaError(f"{where}: missing key '{key}'")
    value = line[key]
    if not isinstance(value, types) or (
            isinstance(value, bool) and bool not in (
                types if isinstance(types, tuple) else (types,))):
        raise SchemaError(
            f"{where}: key '{key}' has type {type(value).__name__}")
    return value


def check_cache_counters(cache, where, require_report):
    # The build-cache block is always present; the report-cache block is
    # absent in `schsim run --stream` output (the scenario path has no
    # report cache), so it is optional unless the caller demands it.
    blocks = ["build", "report"] if require_report else ["build"]
    for block in blocks:
        counters = need(cache, block, dict, where)
        for key in CACHE_COUNTER_KEYS:
            need(counters, key, int, f"{where}.{block}")
    if "report" in cache:
        for key in CACHE_COUNTER_KEYS:
            need(cache["report"], key, int, f"{where}.report")


def check_failure(failure, where):
    kind = need(failure, "kind", str, where)
    if kind not in report_schema.FAILURE_KINDS:
        raise SchemaError(f"{where}: failure kind '{kind}' not in "
                          f"{sorted(report_schema.FAILURE_KINDS)}")
    for key in ("hart", "pc", "cycle"):
        need(failure, key, int, where)


def check_line(path, n, line):
    where = f"line {n}"
    if not isinstance(line, dict):
        raise SchemaError(f"{where}: not a JSON object")
    ltype = need(line, "type", str, where)
    if ltype not in LINE_TYPES:
        raise SchemaError(f"{where}: unknown type '{ltype}'")
    if "id" not in line:
        raise SchemaError(f"{where}: missing key 'id'")

    if ltype == "report":
        seq = need(line, "seq", int, where)
        of = need(line, "of", int, where)
        need(line, "cached", bool, where)
        if not 0 <= seq < of:
            raise SchemaError(f"{where}: seq {seq} outside [0, {of})")
        row = need(line, "report", dict, where)
        # check_report_schema exits on violation; that IS the failure path.
        report_schema.check_row(path, n, row)
        for key in ("sizes", "sim"):
            need(row, key, dict, f"{where}.report")
        need(row, "repeat", int, f"{where}.report")
    elif ltype == "done":
        need(line, "jobs", int, where)
        need(line, "failures", int, where)
        need(line, "wall_s", (int, float), where)
        rollup = need(line, "rollup", dict, where)
        for key in ROLLUP_KEYS:
            need(rollup, key, (int, float, dict), f"{where}.rollup")
        for key in ("p50", "p90", "p99"):
            need(rollup["fpu_utilization"], key, (int, float),
                 f"{where}.rollup.fpu_utilization")
        for key in ("reads", "writes", "conflicts", "top_banks"):
            if key not in rollup["tcdm"]:
                raise SchemaError(f"{where}: rollup.tcdm missing '{key}'")
        check_cache_counters(need(line, "cache", dict, where), f"{where}.cache",
                             require_report=False)
    elif ltype == "error":
        need(line, "error", str, where)
        check_failure(need(line, "failure", dict, where), f"{where}.failure")
    elif ltype == "stats":
        check_cache_counters(need(line, "cache", dict, where), f"{where}.cache",
                             require_report=True)
        served = need(line, "served", dict, where)
        for key in ("requests", "jobs", "failures"):
            need(served, key, int, f"{where}.served")


def check_transcript(path, text, request_lines=None):
    """Validate one transcript; returns (lines, reports, terminals)."""
    reports = 0
    terminals = 0
    terminal_ids = []
    n = 0
    for raw in text.splitlines():
        if not raw.strip():
            continue
        n += 1
        try:
            line = json.loads(raw)
        except ValueError as e:
            raise SchemaError(f"line {n}: not valid JSON: {e}") from e
        check_line(path, n, line)
        if line["type"] == "report":
            reports += 1
        if line["type"] in TERMINAL_TYPES:
            terminals += 1
            terminal_ids.append(line["id"])

    if request_lines is not None:
        expected = [l for l in request_lines if l.strip("\r\n \t")]
        if terminals != len(expected):
            raise SchemaError(
                f"{terminals} terminal responses for {len(expected)} requests")
        # Every id-carrying request must get a terminal response echoing
        # its id (order-free: shards may interleave whole responses).
        want_ids = []
        for req in expected:
            try:
                doc = json.loads(req)
            except ValueError:
                continue  # malformed on purpose; answered with id null
            if isinstance(doc, dict) and "id" in doc:
                want_ids.append(doc["id"])
        got = list(terminal_ids)
        for want in want_ids:
            if want in got:
                got.remove(want)
            else:
                raise SchemaError(f"no terminal response for request id "
                                  f"{want!r}")
    print(f"{path}: ok ({n} lines, {reports} reports, {terminals} terminal)")
    return n, reports, terminals


def run_mode(schsim, requests_path, shards):
    with open(requests_path, encoding="utf-8") as f:
        request_lines = f.readlines()
    cmd = [schsim, "serve"]
    if shards > 1:
        cmd += ["--shards", str(shards)]
    proc = subprocess.run(cmd, input="".join(request_lines),
                          capture_output=True, text=True, timeout=300)
    if proc.returncode != 0:
        print(f"check_serve_schema: `{' '.join(cmd)}` exited "
              f"{proc.returncode}\n{proc.stderr}", file=sys.stderr)
        return 2
    label = f"{requests_path} -> serve" + (f" --shards {shards}"
                                           if shards > 1 else "")
    try:
        check_transcript(label, proc.stdout, request_lines)
    except SchemaError as e:
        print(f"{label}: SCHEMA ERROR: {e}", file=sys.stderr)
        return 1
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+",
                        help="transcripts, or the request file with --run")
    parser.add_argument("--run", metavar="SCHSIM", default=None,
                        help="launch `SCHSIM serve` and validate its output "
                             "for the given request file")
    parser.add_argument("--shards", type=int, default=1,
                        help="with --run: pass --shards N to the daemon")
    args = parser.parse_args()

    if args.run is not None:
        if len(args.paths) != 1:
            print("check_serve_schema: --run takes exactly one request file",
                  file=sys.stderr)
            return 2
        return run_mode(args.run, args.paths[0], args.shards)

    for path in args.paths:
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print(f"check_serve_schema: cannot read {path}: {e}",
                  file=sys.stderr)
            return 2
        try:
            check_transcript(path, text)
        except SchemaError as e:
            print(f"{path}: SCHEMA ERROR: {e}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
