#!/usr/bin/env python3
"""Fail on dead relative links in markdown files.

Usage: check_doc_links.py FILE_OR_DIR [FILE_OR_DIR ...]

Checks every [text](target) link in the given markdown files (directories
are scanned recursively for *.md). External links (scheme://, mailto:) are
skipped; pure in-page anchors (#...) are skipped; relative targets must
exist on disk relative to the file that references them. Exit code 1 and
one line per dead link otherwise.
"""
import os
import re
import sys

# [text](target) -- target may carry an #anchor suffix; images share the
# syntax (the leading ! is irrelevant here). Inline code spans are stripped
# first so documentation ABOUT link syntax does not trip the checker.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
FENCE_RE = re.compile(r"^\s*(```|~~~)")


def iter_md_files(paths):
    for p in paths:
        if os.path.isdir(p):
            for root, _, files in os.walk(p):
                for f in sorted(files):
                    if f.endswith(".md"):
                        yield os.path.join(root, f)
        else:
            yield p


def check_file(path):
    dead = []
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK_RE.findall(CODE_SPAN_RE.sub("", line)):
                if "://" in target or target.startswith(("mailto:", "#")):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                resolved = os.path.normpath(os.path.join(os.path.dirname(path), rel))
                if not os.path.exists(resolved):
                    dead.append((lineno, target, resolved))
    return dead


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    for md in iter_md_files(argv[1:]):
        checked += 1
        for lineno, target, resolved in check_file(md):
            print(f"{md}:{lineno}: dead link '{target}' (resolved: {resolved})")
            failures += 1
    print(f"checked {checked} markdown file(s), {failures} dead link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
