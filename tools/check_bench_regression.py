#!/usr/bin/env python3
"""Host-throughput regression gate.

Compares a freshly measured host_throughput JSON against the committed
baseline (BENCH_host_throughput.json) and fails when the simulator itself
got meaningfully slower on the same workloads:

  * any kernel's sim_cycles_per_sec drops by more than the threshold
    (default 20%) vs the baseline;
  * the stencil sweep's simulated_cycles_per_sec drops likewise;
  * a baseline kernel disappeared from the fresh run.

Being faster (or a new kernel appearing) never fails. Sanitizer builds are
skipped outright: the fresh JSON's host metadata records the SCH_SANITIZE
state, and ASan/UBSan throughput says nothing about release throughput.

Usage:
  check_bench_regression.py FRESH.json [BASELINE.json] [--max-drop 0.20]

Exit codes: 0 pass/skip, 1 regression, 2 bad input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench_regression: cannot read {path}: {e}")
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly measured host_throughput JSON")
    parser.add_argument("baseline", nargs="?",
                        default="BENCH_host_throughput.json",
                        help="committed baseline (default: %(default)s)")
    parser.add_argument("--max-drop", type=float, default=0.20,
                        help="tolerated fractional throughput drop "
                             "(default: %(default)s)")
    args = parser.parse_args()

    fresh = load(args.fresh)
    baseline = load(args.baseline)

    host = fresh.get("host", {})
    if host.get("sanitize"):
        print(f"check_bench_regression: SKIP -- fresh run was a sanitizer "
              f"build (SCH_SANITIZE={host['sanitize']!r}); throughput not "
              f"comparable to the release baseline")
        return 0
    if host.get("optimized") is False:
        print("check_bench_regression: SKIP -- fresh run was an unoptimized "
              "build; throughput not comparable to the release baseline")
        return 0

    floor = 1.0 - args.max_drop
    failures = []
    checked = 0

    base_kernels = {k["name"]: k for k in baseline.get("kernels", [])}
    fresh_kernels = {k["name"]: k for k in fresh.get("kernels", [])}
    for name, base in sorted(base_kernels.items()):
        if name not in fresh_kernels:
            failures.append(f"{name}: present in baseline but missing from "
                            f"the fresh run")
            continue
        got = fresh_kernels[name]["sim_cycles_per_sec"]
        want = base["sim_cycles_per_sec"]
        ratio = got / want if want else float("inf")
        status = "ok" if ratio >= floor else "REGRESSION"
        print(f"  {name:24s} {got:>12,.0f} cyc/s vs {want:>12,.0f} "
              f"({ratio:6.2f}x) {status}")
        checked += 1
        if ratio < floor:
            failures.append(f"{name}: sim cycles/sec {got:,.0f} is "
                            f"{(1 - ratio) * 100:.0f}% below baseline "
                            f"{want:,.0f} (tolerated: "
                            f"{args.max_drop * 100:.0f}%)")

    base_sweep = baseline.get("stencil_sweep", {})
    fresh_sweep = fresh.get("stencil_sweep", {})
    if base_sweep and fresh_sweep:
        got = fresh_sweep["simulated_cycles_per_sec"]
        want = base_sweep["simulated_cycles_per_sec"]
        ratio = got / want if want else float("inf")
        status = "ok" if ratio >= floor else "REGRESSION"
        print(f"  {'stencil_sweep':24s} {got:>12,.0f} cyc/s vs {want:>12,.0f} "
              f"({ratio:6.2f}x) {status}")
        checked += 1
        if ratio < floor:
            failures.append(f"stencil_sweep: simulated cycles/sec {got:,.0f} "
                            f"is {(1 - ratio) * 100:.0f}% below baseline "
                            f"{want:,.0f}")

    if checked == 0:
        print("check_bench_regression: no comparable entries found")
        return 2
    if failures:
        print(f"\ncheck_bench_regression: FAIL ({len(failures)} regression(s))")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\ncheck_bench_regression: OK ({checked} entries within "
          f"{args.max_drop * 100:.0f}% of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
