#!/usr/bin/env python3
"""Host-throughput regression gate.

Compares a freshly measured bench JSON against the committed baseline and
fails when the simulator (or the serving layer) got meaningfully slower on
the same workloads. Dispatches on the fresh JSON's "bench" tag:

host_throughput (default when untagged, baseline
BENCH_host_throughput.json):
  * any kernel's sim_cycles_per_sec drops by more than the threshold
    (default 20%) vs the baseline;
  * the stencil sweep's simulated_cycles_per_sec drops likewise;
  * a baseline kernel disappeared from the fresh run.

serve_throughput (baseline BENCH_serve_throughput.json):
  * the fresh warm-vs-cold speedup must meet the bench's own
    required_speedup (the >= 3x serving-cache acceptance bar);
  * warm_full sustained reports/sec must stay within the threshold of
    the committed baseline;
  * the cache counters must prove the claim: every warm_build request a
    build-cache hit (build + predecode skipped), every warm_full
    response served from the report cache.

Being faster (or a new kernel appearing) never fails. Sanitizer builds are
skipped outright: the fresh JSON's host metadata records the SCH_SANITIZE
state, and ASan/UBSan throughput says nothing about release throughput.

Usage:
  check_bench_regression.py FRESH.json [BASELINE.json] [--max-drop 0.20]

Exit codes: 0 pass/skip, 1 regression, 2 bad input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench_regression: cannot read {path}: {e}")
        sys.exit(2)


def check_serve_throughput(fresh, baseline, max_drop):
    """Gate the serving-layer bench: cache speedup + warm throughput floor."""
    floor = 1.0 - max_drop
    failures = []

    phases = fresh.get("phases", {})
    requests = fresh.get("requests", 0)
    warm_build = phases.get("warm_build", {})
    warm_full = phases.get("warm_full", {})
    cold = phases.get("cold", {})
    if not (cold and warm_build and warm_full and requests):
        print("check_bench_regression: fresh serve_throughput JSON is missing "
              "phases/requests")
        return 2

    required = fresh.get("required_speedup", 3.0)
    speedup = fresh.get("speedup_warm_vs_cold", 0.0)
    status = "ok" if speedup >= required else "REGRESSION"
    print(f"  {'warm_vs_cold_speedup':24s} {speedup:>12.2f}x vs required "
          f"{required:.1f}x {status}")
    if speedup < required:
        failures.append(f"warm-vs-cold speedup {speedup:.2f}x is below the "
                        f"required {required:.1f}x")

    build_hits = warm_build.get("build", {}).get("hits", 0)
    build_misses = warm_build.get("build", {}).get("misses", -1)
    if build_hits != requests or build_misses != 0:
        failures.append(f"warm_build counters do not prove build/predecode "
                        f"skipped: {build_hits}/{requests} hits, "
                        f"{build_misses} misses")
    cached = warm_full.get("cached", 0)
    if cached != requests:
        failures.append(f"warm_full served only {cached}/{requests} responses "
                        f"from the report cache")

    base_warm = baseline.get("phases", {}).get("warm_full", {})
    got = warm_full.get("reports_per_sec", 0.0)
    want = base_warm.get("reports_per_sec", 0.0)
    ratio = got / want if want else float("inf")
    status = "ok" if ratio >= floor else "REGRESSION"
    print(f"  {'warm_full_reports/sec':24s} {got:>12,.0f} vs {want:>12,.0f} "
          f"({ratio:6.2f}x) {status}")
    if ratio < floor:
        failures.append(f"warm_full reports/sec {got:,.0f} is "
                        f"{(1 - ratio) * 100:.0f}% below baseline {want:,.0f} "
                        f"(tolerated: {max_drop * 100:.0f}%)")

    if failures:
        print(f"\ncheck_bench_regression: FAIL ({len(failures)} regression(s))")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\ncheck_bench_regression: OK (serve throughput within "
          f"{max_drop * 100:.0f}% of baseline, speedup >= {required:.1f}x)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly measured bench JSON")
    parser.add_argument("baseline", nargs="?", default=None,
                        help="committed baseline (default: matches the fresh "
                             "JSON's bench tag)")
    parser.add_argument("--max-drop", type=float, default=0.20,
                        help="tolerated fractional throughput drop "
                             "(default: %(default)s)")
    args = parser.parse_args()

    fresh = load(args.fresh)
    bench = fresh.get("bench", "host_throughput")
    if args.baseline is None:
        args.baseline = f"BENCH_{bench}.json"
    baseline = load(args.baseline)

    host = fresh.get("host", {})
    if host.get("sanitize"):
        print(f"check_bench_regression: SKIP -- fresh run was a sanitizer "
              f"build (SCH_SANITIZE={host['sanitize']!r}); throughput not "
              f"comparable to the release baseline")
        return 0
    if host.get("optimized") is False:
        print("check_bench_regression: SKIP -- fresh run was an unoptimized "
              "build; throughput not comparable to the release baseline")
        return 0

    if bench == "serve_throughput":
        return check_serve_throughput(fresh, baseline, args.max_drop)

    floor = 1.0 - args.max_drop
    failures = []
    checked = 0

    base_kernels = {k["name"]: k for k in baseline.get("kernels", [])}
    fresh_kernels = {k["name"]: k for k in fresh.get("kernels", [])}
    for name, base in sorted(base_kernels.items()):
        if name not in fresh_kernels:
            failures.append(f"{name}: present in baseline but missing from "
                            f"the fresh run")
            continue
        got = fresh_kernels[name]["sim_cycles_per_sec"]
        want = base["sim_cycles_per_sec"]
        ratio = got / want if want else float("inf")
        status = "ok" if ratio >= floor else "REGRESSION"
        print(f"  {name:24s} {got:>12,.0f} cyc/s vs {want:>12,.0f} "
              f"({ratio:6.2f}x) {status}")
        checked += 1
        if ratio < floor:
            failures.append(f"{name}: sim cycles/sec {got:,.0f} is "
                            f"{(1 - ratio) * 100:.0f}% below baseline "
                            f"{want:,.0f} (tolerated: "
                            f"{args.max_drop * 100:.0f}%)")

    base_sweep = baseline.get("stencil_sweep", {})
    fresh_sweep = fresh.get("stencil_sweep", {})
    if base_sweep and fresh_sweep:
        got = fresh_sweep["simulated_cycles_per_sec"]
        want = base_sweep["simulated_cycles_per_sec"]
        ratio = got / want if want else float("inf")
        status = "ok" if ratio >= floor else "REGRESSION"
        print(f"  {'stencil_sweep':24s} {got:>12,.0f} cyc/s vs {want:>12,.0f} "
              f"({ratio:6.2f}x) {status}")
        checked += 1
        if ratio < floor:
            failures.append(f"stencil_sweep: simulated cycles/sec {got:,.0f} "
                            f"is {(1 - ratio) * 100:.0f}% below baseline "
                            f"{want:,.0f}")

    if checked == 0:
        print("check_bench_regression: no comparable entries found")
        return 2
    if failures:
        print(f"\ncheck_bench_regression: FAIL ({len(failures)} regression(s))")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\ncheck_bench_regression: OK ({checked} entries within "
          f"{args.max_drop * 100:.0f}% of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
