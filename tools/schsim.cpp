// schsim: command-line driver for the scalar-chaining core model.
// Assembles a RISC-V source file (with the Xssr/Xfrep/Xchain extensions) and
// runs it on the cycle-level simulator (default) or the functional ISS.
//
//   schsim [options] program.s
//     --iss                 run on the functional ISS instead
//     --trace               print the per-cycle issue trace
//     --dataflow            print the FPU-pipeline/chain-FIFO occupancy
//     --energy              print the energy/power report
//     --banks N             TCDM banks (default 32)
//     --fpu-depth N         FPU pipeline depth (default 3)
//     --strict-handoff      forbid same-cycle chain pop->push handoff
//     --max-cycles N        simulation budget
//     --dump ADDR COUNT     print COUNT f64 words at ADDR after the run
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scalarchain.hpp"

namespace {

using namespace sch;

void usage() {
  std::fprintf(stderr,
               "usage: schsim [--iss] [--trace] [--dataflow] [--energy]\n"
               "              [--banks N] [--fpu-depth N] [--strict-handoff]\n"
               "              [--max-cycles N] [--dump ADDR COUNT] program.s\n");
}

void print_perf(const sim::PerfCounters& p) {
  std::printf("cycles:            %llu\n", static_cast<unsigned long long>(p.cycles));
  std::printf("instructions:      %llu int, %llu fp (%llu offloaded)\n",
              static_cast<unsigned long long>(p.int_instrs),
              static_cast<unsigned long long>(p.fp_instrs),
              static_cast<unsigned long long>(p.offloads));
  std::printf("fpu ops:           %llu (utilization %.3f)\n",
              static_cast<unsigned long long>(p.fpu_ops), p.fpu_utilization());
  std::printf("stalls:            raw=%llu waw=%llu chain-empty=%llu "
              "chain-full=%llu ssr-empty=%llu ssr-wfull=%llu lsu=%llu\n",
              static_cast<unsigned long long>(p.stall_fp_raw),
              static_cast<unsigned long long>(p.stall_fp_waw),
              static_cast<unsigned long long>(p.stall_chain_empty),
              static_cast<unsigned long long>(p.stall_chain_full),
              static_cast<unsigned long long>(p.stall_ssr_empty),
              static_cast<unsigned long long>(p.stall_ssr_wfull),
              static_cast<unsigned long long>(p.stall_fp_lsu));
  std::printf("int-core stalls:   offload-full=%llu raw=%llu lsu=%llu "
              "csr-barrier=%llu branch-bubbles=%llu\n",
              static_cast<unsigned long long>(p.stall_offload_full),
              static_cast<unsigned long long>(p.stall_int_raw),
              static_cast<unsigned long long>(p.stall_int_lsu),
              static_cast<unsigned long long>(p.stall_csr_barrier),
              static_cast<unsigned long long>(p.branch_bubbles));
}

} // namespace

int main(int argc, char** argv) {
  bool use_iss = false, want_trace = false, want_dataflow = false,
       want_energy = false;
  sim::SimConfig cfg;
  std::string path;
  Addr dump_addr = 0;
  u32 dump_count = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing argument for %s\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--iss") use_iss = true;
    else if (arg == "--trace") { want_trace = true; cfg.trace = true; }
    else if (arg == "--dataflow") { want_dataflow = true; cfg.trace = true; }
    else if (arg == "--energy") want_energy = true;
    else if (arg == "--strict-handoff") cfg.strict_chain_handoff = true;
    else if (arg == "--banks") cfg.tcdm.num_banks = static_cast<u32>(std::atoi(next("--banks")));
    else if (arg == "--fpu-depth") cfg.fpu_depth = static_cast<u32>(std::atoi(next("--fpu-depth")));
    else if (arg == "--max-cycles") cfg.max_cycles = static_cast<u64>(std::atoll(next("--max-cycles")));
    else if (arg == "--dump") {
      dump_addr = static_cast<Addr>(std::strtoul(next("--dump"), nullptr, 0));
      dump_count = static_cast<u32>(std::atoi(next("--dump COUNT")));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::stringstream ss;
  ss << file.rdbuf();

  auto assembled = assembler::assemble(ss.str());
  if (!assembled.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 assembled.status().message().c_str());
    return 1;
  }
  const Program program = std::move(assembled).value();
  std::printf("%s: %zu instructions, %zu data bytes\n", path.c_str(),
              program.num_instrs(), program.data.size());

  Memory memory;
  int status = 0;
  if (use_iss) {
    Iss iss(program, memory);
    const HaltReason halt = iss.run();
    if (halt != HaltReason::kEcall && halt != HaltReason::kEbreak) {
      std::fprintf(stderr, "abnormal halt: %s\n", iss.error().c_str());
      status = 1;
    }
    std::printf("ISS: %llu instructions retired\n",
                static_cast<unsigned long long>(iss.instret()));
  } else {
    sim::Simulator simulator(program, memory, cfg);
    const HaltReason halt = simulator.run();
    if (halt != HaltReason::kEcall && halt != HaltReason::kEbreak) {
      std::fprintf(stderr, "abnormal halt: %s\n", simulator.error().c_str());
      status = 1;
    }
    print_perf(simulator.perf());
    if (want_energy) {
      std::printf("%s", energy::format_report(energy::evaluate_run(simulator)).c_str());
    }
    if (want_trace) {
      std::printf("\n%s", simulator.trace().format_issue_table().c_str());
    }
    if (want_dataflow) {
      std::printf("\n%s", simulator.trace().format_dataflow(128).c_str());
    }
  }

  if (dump_count > 0) {
    std::printf("\nmemory dump @ 0x%x:\n", dump_addr);
    for (u32 i = 0; i < dump_count; ++i) {
      std::printf("  [%3u] %g\n", i, memory.load_f64(dump_addr + 8 * i));
    }
  }
  return status;
}
