// schsim: command-line front-end for the scalar-chaining core model.
//
//   schsim list-kernels [--json]
//       Show every kernel family in the registry: variants, size
//       parameters and defaults. --json emits a machine-readable dump for
//       tooling.
//
//   schsim run scenario.json [--out report.json] [--threads N]
//              [--engine iss|cycle|both] [--cores N]
//              [--mem-latency N] [--mem-bw N]
//       Expand a declarative scenario file (kernel x variants x sizes x
//       sim overrides x repeat) into a job batch, execute it on the unified
//       engine's worker pool and write one JSON report (see docs/API.md).
//         --threads N           worker threads (overrides SCH_SWEEP_THREADS
//                               and hardware concurrency)
//         --engine iss|cycle|both
//                               execution engine; `both` cross-checks the
//                               ISS against the cycle-level model
//         --cores N             force every job's cluster core count
//                               (wins over scenario "cores" overrides)
//         --mem-latency N       force every job's main-memory latency
//         --mem-bw N            force every job's main-memory bandwidth
//                               (bytes per cycle)
//
//   schsim lint <scenario.json|program.s> [--json] [--strict]
//               [--cores N] [--fpu-depth N]
//       Static verification without running a cycle: abstract-interpret
//       every program (all jobs of a scenario file, or one assembled .s
//       file) for chain-FIFO deadlocks, out-of-bounds/overlapping SSR
//       stream windows, FREP body legality, cross-hart races and DMA/stream
//       hazards (see docs/VERIFY.md). Exits nonzero iff any error-severity
//       finding (with --strict: iff any finding at all).
//         --json                emit the machine-readable lint report
//                               (schema pinned by tools/check_lint_schema.py)
//         --strict              treat warnings as failures
//         --cores N             cluster cores to analyze (default: scenario
//                               "cores" override, else 1)
//         --fpu-depth N         FPU depth (chain FIFO capacity is depth+1)
//
//   schsim fuzz [--seed S] [--runs N] [--minimize|--no-minimize]
//               [--engine iss|cycle|both] [--max-harts N]
//               [--repro-dir DIR] [--replay spec.json]
//       Differential fuzzing: generate N seeded random programs over the
//       full ISA surface and run each one on the ISS and the cycle model in
//       lockstep (see docs/FUZZING.md). Any divergence, crash or hang comes
//       back as a failed report; failures are delta-debugged to a minimal
//       reproducer and written as .json + .s files under --repro-dir.
//       Exits nonzero iff any run failed.
//         --seed S              campaign seed (default 1)
//         --runs N              number of random programs (default 100)
//         --no-minimize         keep failing specs unminimized
//         --engine iss|cycle|both
//                               execution engines (default both = lockstep)
//         --max-harts N         largest cluster drawn by the generator
//         --repro-dir DIR       where reproducers are written (default .)
//         --replay spec.json    re-run one written reproducer instead of
//                               generating new programs
//
//   schsim [sim] [options] program.s
//       Assemble a RISC-V source file (with the Xssr/Xfrep/Xchain
//       extensions) and run it on the cycle-level simulator (default) or
//       the functional ISS:
//         --iss                 run on the functional ISS instead
//         --trace               print the per-cycle issue trace
//         --dataflow            print the FPU-pipeline/chain-FIFO occupancy
//         --energy              print the energy/power report
//         --banks N             TCDM banks (default 32)
//         --cores N             cluster cores sharing the TCDM (default 1;
//                               the program is replicated, split by mhartid)
//         --fpu-depth N         FPU pipeline depth (default 3)
//         --mem-latency N       main-memory latency in cycles (default 10)
//         --mem-bw N            main-memory bandwidth in bytes/cycle
//                               (default 8; bounds DMA streaming)
//         --strict-handoff      forbid same-cycle chain pop->push handoff
//         --max-cycles N        simulation budget
//         --dump ADDR COUNT     print COUNT f64 words at ADDR after the run
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "scalarchain.hpp"

namespace {

using namespace sch;

void usage() {
  std::fprintf(stderr,
               "usage: schsim list-kernels [--json]\n"
               "       schsim run scenario.json [--out report.json] [--threads N]\n"
               "              [--engine iss|cycle|both] [--cores N]\n"
               "              [--mem-latency N] [--mem-bw N]\n"
               "              [--stream] [--no-cache]\n"
               "       schsim serve [--threads N] [--shards N] [--port P]\n"
               "              [--build-cache N] [--report-cache N]\n"
               "              [--max-line-bytes N] [--max-jobs N]\n"
               "       schsim lint <scenario.json|program.s> [--json] [--strict]\n"
               "              [--cores N] [--fpu-depth N]\n"
               "       schsim fuzz [--seed S] [--runs N] [--no-minimize]\n"
               "              [--engine iss|cycle|both] [--max-harts N]\n"
               "              [--repro-dir DIR] [--replay spec.json]\n"
               "       schsim [sim] [--iss] [--trace] [--dataflow] [--energy]\n"
               "              [--banks N] [--cores N] [--fpu-depth N]\n"
               "              [--mem-latency N] [--mem-bw N]\n"
               "              [--strict-handoff] [--max-cycles N]\n"
               "              [--dump ADDR COUNT] program.s\n");
}

/// Checked unsigned parse (decimal or 0x hex). Exits with a usage error on
/// malformed/out-of-range input instead of silently reading atoi garbage.
u64 parse_u64_arg(const char* text, const char* what, u64 min, u64 max) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0' || errno == ERANGE || v < min || v > max ||
      std::strchr(text, '-') != nullptr) {
    std::fprintf(stderr, "schsim: %s: bad value '%s' (expected %llu..%llu)\n",
                 what, text, static_cast<unsigned long long>(min),
                 static_cast<unsigned long long>(max));
    std::exit(2);
  }
  return static_cast<u64>(v);
}

u32 parse_u32_arg(const char* text, const char* what, u32 min, u32 max) {
  return static_cast<u32>(parse_u64_arg(text, what, min, max));
}

void print_perf(const sim::PerfCounters& p) {
  std::printf("cycles:            %llu\n", static_cast<unsigned long long>(p.cycles));
  std::printf("instructions:      %llu int, %llu fp (%llu offloaded)\n",
              static_cast<unsigned long long>(p.int_instrs),
              static_cast<unsigned long long>(p.fp_instrs),
              static_cast<unsigned long long>(p.offloads));
  std::printf("fpu ops:           %llu (utilization %.3f)\n",
              static_cast<unsigned long long>(p.fpu_ops), p.fpu_utilization());
  std::printf("stalls:            raw=%llu waw=%llu chain-empty=%llu "
              "chain-full=%llu ssr-empty=%llu ssr-wfull=%llu lsu=%llu\n",
              static_cast<unsigned long long>(p.stall_fp_raw),
              static_cast<unsigned long long>(p.stall_fp_waw),
              static_cast<unsigned long long>(p.stall_chain_empty),
              static_cast<unsigned long long>(p.stall_chain_full),
              static_cast<unsigned long long>(p.stall_ssr_empty),
              static_cast<unsigned long long>(p.stall_ssr_wfull),
              static_cast<unsigned long long>(p.stall_fp_lsu));
  std::printf("int-core stalls:   offload-full=%llu raw=%llu lsu=%llu "
              "csr-barrier=%llu dma-full=%llu branch-bubbles=%llu\n",
              static_cast<unsigned long long>(p.stall_offload_full),
              static_cast<unsigned long long>(p.stall_int_raw),
              static_cast<unsigned long long>(p.stall_int_lsu),
              static_cast<unsigned long long>(p.stall_csr_barrier),
              static_cast<unsigned long long>(p.stall_dma_full),
              static_cast<unsigned long long>(p.branch_bubbles));
}

int cmd_list_kernels(int argc, char** argv) {
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else {
      std::fprintf(stderr, "schsim list-kernels: unknown option: %s\n",
                   arg.c_str());
      return 2;
    }
  }
  const auto entries = kernels::Registry::instance().entries();
  if (json) {
    // Machine-readable registry dump for tooling (stable key order).
    scenario::Json doc = scenario::Json::object();
    scenario::Json list = scenario::Json::array();
    for (const kernels::KernelEntry* e : entries) {
      scenario::Json k = scenario::Json::object();
      k.set("name", e->name);
      k.set("description", e->description);
      scenario::Json variants = scenario::Json::array();
      for (const std::string& v : e->variants) variants.push_back(scenario::Json(v));
      k.set("variants", std::move(variants));
      k.set("baseline_variant", e->baseline_variant);
      k.set("chained_variant", e->chained_variant);
      scenario::Json params = scenario::Json::array();
      for (const kernels::ParamSpec& p : e->params) {
        scenario::Json ps = scenario::Json::object();
        ps.set("name", p.name);
        ps.set("default", p.default_value);
        ps.set("help", p.help);
        params.push_back(std::move(ps));
      }
      k.set("params", std::move(params));
      list.push_back(std::move(k));
    }
    doc.set("kernels", std::move(list));
    std::printf("%s\n", doc.dump(2).c_str());
    return 0;
  }
  std::printf("%zu registered kernels:\n\n", entries.size());
  for (const kernels::KernelEntry* e : entries) {
    std::printf("%-10s %s\n", e->name.c_str(), e->description.c_str());
    std::printf("%-10s variants:", "");
    for (const std::string& v : e->variants) std::printf(" %s", v.c_str());
    std::printf("\n%-10s sizes:   ", "");
    for (const kernels::ParamSpec& p : e->params) {
      std::printf(" %s=%lld", p.name.c_str(),
                  static_cast<long long>(p.default_value));
    }
    std::printf("\n\n");
  }
  return 0;
}

int cmd_run(int argc, char** argv) {
  std::string scenario_path;
  scenario::ScenarioRunOptions options;
  bool stream = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "schsim run: missing argument for %s\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      options.output_override = next("--out");
    } else if (arg == "--threads") {
      options.threads = parse_u32_arg(next("--threads"), "--threads", 1, 4096);
    } else if (arg == "--cores") {
      options.cores_override = parse_u32_arg(next("--cores"), "--cores", 1,
                                             sim::SimConfig::kMaxCores);
    } else if (arg == "--mem-latency") {
      options.mem_latency_override =
          parse_u32_arg(next("--mem-latency"), "--mem-latency", 1, 1u << 20);
    } else if (arg == "--mem-bw") {
      options.mem_bw_override =
          parse_u32_arg(next("--mem-bw"), "--mem-bw", 1, 1u << 20);
    } else if (arg == "--engine") {
      const char* name = next("--engine");
      if (!api::parse_engine(name, options.engine)) {
        std::fprintf(stderr,
                     "schsim run: --engine: '%s' is not iss, cycle or both\n",
                     name);
        return 2;
      }
    } else if (arg == "--stream") {
      stream = true;
    } else if (arg == "--no-cache") {
      options.use_cache = false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "schsim run: unknown option: %s\n", arg.c_str());
      return 2;
    } else if (scenario_path.empty()) {
      scenario_path = arg;
    } else {
      std::fprintf(stderr, "schsim run: more than one scenario file\n");
      return 2;
    }
  }
  if (scenario_path.empty()) {
    std::fprintf(stderr,
                 "usage: schsim run scenario.json [--out report.json] "
                 "[--threads N] [--engine iss|cycle|both]\n");
    return 2;
  }
  if (stream) {
    // Streamed batch: the serve-protocol NDJSON lines go to --out (or
    // stdout for `--out -`), one report line per job as it completes,
    // instead of one buffered report document at the end.
    Result<scenario::Scenario> sc = scenario::load_scenario_file(scenario_path);
    if (!sc.ok()) {
      std::fprintf(stderr, "%s\n", sc.status().message().c_str());
      return 1;
    }
    serve::ScenarioStreamOptions stream_options;
    stream_options.engine = options.engine;
    stream_options.threads = options.threads;
    stream_options.use_cache = options.use_cache;
    stream_options.cores_override = options.cores_override;
    stream_options.mem_latency_override = options.mem_latency_override;
    stream_options.mem_bw_override = options.mem_bw_override;
    const scenario::Scenario& scenario = sc.value();
    const bool to_stdout =
        options.output_override.empty() || options.output_override == "-";
    std::ofstream file;
    if (!to_stdout) {
      file.open(options.output_override);
      if (!file) {
        std::fprintf(stderr, "schsim run: cannot write %s\n",
                     options.output_override.c_str());
        return 1;
      }
    }
    // NDJSON on stdout relegates the progress log to stderr.
    std::ostream& out = to_stdout ? std::cout : static_cast<std::ostream&>(file);
    std::ostream& log = to_stdout ? std::cerr : std::cout;
    const Result<serve::StreamOutcome> outcome =
        serve::run_scenario_streaming(scenario, stream_options, out, log);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().message().c_str());
      return 1;
    }
    return outcome.value().failures == 0 ? 0 : 1;
  }
  const Result<scenario::ScenarioOutcome> outcome =
      scenario::run_scenario_file(scenario_path, options, std::cout);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().message().c_str());
    return 1;
  }
  return outcome.value().failures == 0 ? 0 : 1;
}

int cmd_serve(int argc, char** argv) {
  serve::ServerOptions options;
  u32 shards = 1;
  u32 port = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "schsim serve: missing argument for %s\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      options.threads = parse_u32_arg(next("--threads"), "--threads", 1, 4096);
    } else if (arg == "--shards") {
      shards = parse_u32_arg(next("--shards"), "--shards", 1, 256);
    } else if (arg == "--port") {
      port = parse_u32_arg(next("--port"), "--port", 1, 65535);
    } else if (arg == "--build-cache") {
      options.build_cache_capacity =
          parse_u64_arg(next("--build-cache"), "--build-cache", 0, 1u << 20);
    } else if (arg == "--report-cache") {
      options.report_cache_capacity =
          parse_u64_arg(next("--report-cache"), "--report-cache", 0, 1u << 24);
    } else if (arg == "--max-line-bytes") {
      options.max_line_bytes = parse_u64_arg(next("--max-line-bytes"),
                                             "--max-line-bytes", 64, 1u << 30);
    } else if (arg == "--max-jobs") {
      options.max_jobs_per_request =
          parse_u64_arg(next("--max-jobs"), "--max-jobs", 1, 1u << 20);
    } else {
      std::fprintf(stderr, "schsim serve: unknown option: %s\n", arg.c_str());
      return 2;
    }
  }
  if (shards > 1) {
    // Forks before any engine thread exists; each shard serves its slice of
    // stdin with its own pool and caches.
    return serve::serve_sharded(options, shards, std::cerr);
  }
  if (port != 0) {
    serve::Server server(options);
    const Status st = serve::serve_listen(server, static_cast<u16>(port),
                                          nullptr, std::cerr);
    if (!st.is_ok()) {
      std::fprintf(stderr, "%s\n", st.message().c_str());
      return 1;
    }
    return 0;
  }
  serve::Server server(options);
  std::cerr << "schsim serve: reading NDJSON requests from stdin "
               "(see docs/SERVE.md)\n";
  server.serve(std::cin, std::cout);
  return 0;
}

int cmd_fuzz(int argc, char** argv) {
  fuzz::CampaignOptions options;
  std::string replay_path;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "schsim fuzz: missing argument for %s\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      options.seed = parse_u64_arg(next("--seed"), "--seed", 0, ~0ull);
    } else if (arg == "--runs") {
      options.runs = parse_u32_arg(next("--runs"), "--runs", 1, 1u << 24);
    } else if (arg == "--minimize") {
      options.minimize = true;
    } else if (arg == "--no-minimize") {
      options.minimize = false;
    } else if (arg == "--max-harts") {
      options.gen.max_harts = parse_u32_arg(next("--max-harts"), "--max-harts",
                                            1, sim::SimConfig::kMaxCores);
    } else if (arg == "--repro-dir") {
      options.repro_dir = next("--repro-dir");
    } else if (arg == "--replay") {
      replay_path = next("--replay");
    } else if (arg == "--engine") {
      const char* name = next("--engine");
      if (!api::parse_engine(name, options.exec.engine)) {
        std::fprintf(stderr,
                     "schsim fuzz: --engine: '%s' is not iss, cycle or both\n",
                     name);
        return 2;
      }
    } else {
      std::fprintf(stderr, "schsim fuzz: unknown option: %s\n", arg.c_str());
      return 2;
    }
  }

  if (!replay_path.empty()) {
    std::ifstream file(replay_path);
    if (!file) {
      std::fprintf(stderr, "schsim fuzz: cannot open %s\n",
                   replay_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << file.rdbuf();
    const Result<scenario::Json> doc = scenario::Json::parse(ss.str());
    if (!doc.ok()) {
      std::fprintf(stderr, "schsim fuzz: %s: %s\n", replay_path.c_str(),
                   doc.status().message().c_str());
      return 2;
    }
    fuzz::ProgramSpec spec;
    const Status st = fuzz::spec_from_json(doc.value(), spec);
    if (!st.is_ok()) {
      std::fprintf(stderr, "schsim fuzz: %s: %s\n", replay_path.c_str(),
                   st.message().c_str());
      return 2;
    }
    const api::RunReport report = fuzz::run_spec(spec, options.exec);
    if (!report.ok) {
      std::printf("FAIL [%s]: %s\n",
                  api::failure_kind_name(report.failure.kind),
                  report.error.c_str());
      return 1;
    }
    std::printf("OK: %s (%llu cycles, %llu iss instructions)\n",
                report.name.c_str(),
                static_cast<unsigned long long>(report.cycles),
                static_cast<unsigned long long>(report.iss_instructions));
    return 0;
  }

  const fuzz::CampaignResult result = fuzz::run_campaign(options, std::cout);
  std::printf("fuzz: %u/%u runs ok (seed 0x%llx, engine %s)\n",
              result.runs - result.failures, result.runs,
              static_cast<unsigned long long>(options.seed),
              api::engine_name(options.exec.engine));
  return result.failures == 0 ? 0 : 1;
}

/// `schsim lint`: run the static verifier over a scenario's jobs or one
/// assembled .s program, without executing anything.
int cmd_lint(int argc, char** argv) {
  bool want_json = false;
  bool strict = false;
  u32 cores_override = 0;
  u32 fpu_depth_override = 0;
  std::string path;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing argument for %s\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") want_json = true;
    else if (arg == "--strict") strict = true;
    else if (arg == "--cores") {
      cores_override = parse_u32_arg(next("--cores"), "--cores", 1,
                                     sim::SimConfig::kMaxCores);
    } else if (arg == "--fpu-depth") {
      fpu_depth_override =
          parse_u32_arg(next("--fpu-depth"), "--fpu-depth", 1, 64);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "more than one lint target\n");
      usage();
      return 2;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  // One analyzed unit: a scenario job or the single .s program.
  struct LintRow {
    std::string name;
    verify::Report report;
  };
  std::vector<LintRow> rows;

  const bool is_scenario =
      path.size() > 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (is_scenario) {
    const Result<scenario::Scenario> sc = scenario::load_scenario_file(path);
    if (!sc.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   sc.status().message().c_str());
      return 2;
    }
    const Result<std::vector<scenario::Job>> jobs =
        scenario::expand(sc.value());
    if (!jobs.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   jobs.status().message().c_str());
      return 2;
    }
    for (const scenario::Job& job : jobs.value()) {
      if (job.repeat_index != 0) continue;  // repeats analyze identically
      sim::SimConfig cfg = job.config;
      if (cores_override != 0) cfg.num_cores = cores_override;
      if (fpu_depth_override != 0) cfg.fpu_depth = fpu_depth_override;
      LintRow row;
      row.name = job.kernel->name + "/" + job.variant;
      try {
        const kernels::BuiltKernel built =
            job.kernel->build(job.variant, job.sizes);
        row.report = verify::analyze(built.program, cfg, &built.regions);
      } catch (const std::exception& e) {
        verify::Finding f;
        f.kind = verify::FindingKind::kAnalysisLimit;
        f.severity = verify::Severity::kError;
        f.message = std::string("kernel build failed: ") + e.what();
        row.report.findings.push_back(std::move(f));
        row.report.complete = false;
      }
      rows.push_back(std::move(row));
    }
  } else {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << file.rdbuf();
    auto assembled = assembler::assemble(ss.str());
    if (!assembled.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   assembled.status().message().c_str());
      return 2;
    }
    sim::SimConfig cfg;
    if (cores_override != 0) cfg.num_cores = cores_override;
    if (fpu_depth_override != 0) cfg.fpu_depth = fpu_depth_override;
    LintRow row;
    row.name = path;
    row.report = verify::analyze(assembled.value(), cfg);
    rows.push_back(std::move(row));
  }

  u32 errors = 0, warnings = 0;
  for (const LintRow& row : rows) {
    errors += row.report.errors();
    warnings += row.report.warnings();
  }

  if (want_json) {
    scenario::Json doc = scenario::Json::object();
    doc.set("schema", verify::Report::kLintSchemaVersion);
    doc.set("target", path);
    doc.set("errors", static_cast<i64>(errors));
    doc.set("warnings", static_cast<i64>(warnings));
    scenario::Json arr = scenario::Json::array();
    for (const LintRow& row : rows) {
      scenario::Json j = row.report.to_json();
      j.set("name", row.name);
      arr.push_back(std::move(j));
    }
    doc.set("runs", std::move(arr));
    std::printf("%s\n", doc.dump(2).c_str());
  } else {
    for (const LintRow& row : rows) {
      for (const verify::Finding& f : row.report.findings) {
        std::printf("%s: %s: [%s] ", row.name.c_str(),
                    verify::severity_name(f.severity),
                    verify::finding_kind_name(f.kind));
        if (f.hart >= 0) std::printf("hart %d ", f.hart);
        if (f.pc >= 0) std::printf("pc 0x%llx ",
                                   static_cast<unsigned long long>(f.pc));
        std::printf("%s\n", f.message.c_str());
      }
    }
    std::printf("%zu unit%s analyzed: %u error%s, %u warning%s\n", rows.size(),
                rows.size() == 1 ? "" : "s", errors, errors == 1 ? "" : "s",
                warnings, warnings == 1 ? "" : "s");
  }
  if (errors > 0) return 1;
  if (strict && warnings > 0) return 1;
  return 0;
}

int cmd_sim(int argc, char** argv) {
  bool use_iss = false, want_trace = false, want_dataflow = false,
       want_energy = false;
  sim::SimConfig cfg;
  std::string path;
  Addr dump_addr = 0;
  u32 dump_count = 0;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing argument for %s\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--iss") use_iss = true;
    else if (arg == "--trace") { want_trace = true; cfg.trace = true; }
    else if (arg == "--dataflow") { want_dataflow = true; cfg.trace = true; }
    else if (arg == "--energy") want_energy = true;
    else if (arg == "--strict-handoff") cfg.strict_chain_handoff = true;
    else if (arg == "--banks") {
      cfg.tcdm.num_banks = parse_u32_arg(next("--banks"), "--banks", 1, 1024);
    } else if (arg == "--cores") {
      cfg.num_cores = parse_u32_arg(next("--cores"), "--cores", 1,
                                    sim::SimConfig::kMaxCores);
    } else if (arg == "--fpu-depth") {
      cfg.fpu_depth = parse_u32_arg(next("--fpu-depth"), "--fpu-depth", 1, 64);
    } else if (arg == "--mem-latency") {
      cfg.main_mem_latency =
          parse_u32_arg(next("--mem-latency"), "--mem-latency", 1, 1u << 20);
    } else if (arg == "--mem-bw") {
      cfg.main_mem_bytes_per_cycle =
          parse_u32_arg(next("--mem-bw"), "--mem-bw", 1, 1u << 20);
    } else if (arg == "--max-cycles") {
      cfg.max_cycles = parse_u64_arg(next("--max-cycles"), "--max-cycles", 1,
                                     ~0ull);
    } else if (arg == "--dump") {
      dump_addr = static_cast<Addr>(
          parse_u64_arg(next("--dump"), "--dump ADDR", 0, 0xFFFFFFFFull));
      dump_count = parse_u32_arg(next("--dump COUNT"), "--dump COUNT", 1,
                                 1u << 20);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "more than one program file\n");
      usage();
      return 2;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::stringstream ss;
  ss << file.rdbuf();

  auto assembled = assembler::assemble(ss.str());
  if (!assembled.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 assembled.status().message().c_str());
    return 1;
  }
  Program program = std::move(assembled).value();
  std::printf("%s: %zu instructions, %zu data bytes\n", path.c_str(),
              program.num_instrs(), program.data.size());

  // An Observer probe that snapshots the requested memory window while the
  // final machine state is still alive (the engine owns the run's memory).
  struct DumpObserver : api::Observer {
    Addr addr = 0;
    u32 count = 0;
    std::vector<double> values;
    void on_halt(const api::RunReport&, const sim::Simulator*,
                 const Memory* memory) override {
      if (memory == nullptr) return;
      for (u32 i = 0; i < count; ++i) {
        values.push_back(memory->load_f64(addr + 8 * i));
      }
    }
  };

  api::RunRequest request = api::RunRequest::for_program(
      std::move(program), path, use_iss ? api::EngineSel::kIss : api::EngineSel::kCycle);
  request.config = cfg;
  api::ProgressObserver progress(std::cout);
  api::TraceObserver tracer;
  DumpObserver dumper;
  dumper.addr = dump_addr;
  dumper.count = dump_count;
  request.observers.push_back(&progress);
  if (want_trace || want_dataflow) request.observers.push_back(&tracer);
  if (dump_count > 0) request.observers.push_back(&dumper);

  const api::RunReport report = api::run(request);
  int status = 0;
  if (!report.ok) {
    std::fprintf(stderr, "abnormal halt [%s]: %s\n",
                 api::failure_kind_name(report.failure.kind),
                 report.error.c_str());
    status = 1;
  }
  if (use_iss) {
    std::printf("ISS: %llu instructions retired\n",
                static_cast<unsigned long long>(report.iss_instructions));
  } else {
    print_perf(report.perf);
    if (want_energy) {
      std::printf("%s", energy::format_report(report.energy).c_str());
    }
    if (want_trace) {
      std::printf("\n%s", tracer.trace().format_issue_table().c_str());
    }
    if (want_dataflow) {
      std::printf("\n%s", tracer.trace().format_dataflow(128).c_str());
    }
  }

  if (dump_count > 0) {
    std::printf("\nmemory dump @ 0x%x:\n", dump_addr);
    for (u32 i = 0; i < dumper.values.size(); ++i) {
      std::printf("  [%3u] %g\n", i, dumper.values[i]);
    }
  }
  return status;
}

} // namespace

int main(int argc, char** argv) {
  if (argc >= 2) {
    const std::string cmd = argv[1];
    if (cmd == "list-kernels") return cmd_list_kernels(argc - 2, argv + 2);
    if (cmd == "run") return cmd_run(argc - 2, argv + 2);
    if (cmd == "serve") return cmd_serve(argc - 2, argv + 2);
    if (cmd == "lint") return cmd_lint(argc - 2, argv + 2);
    if (cmd == "fuzz") return cmd_fuzz(argc - 2, argv + 2);
    if (cmd == "sim") return cmd_sim(argc - 2, argv + 2);
    if (cmd == "--help" || cmd == "-h") {
      usage();
      return 0;
    }
  }
  // Legacy spelling: `schsim [options] program.s`.
  return cmd_sim(argc - 1, argv + 1);
}
