// Host-side throughput harness: how fast does the simulator itself run?
// Executes every kernel family on both engines and reports simulated
// cycles/sec (cycle-level model) and simulated instrs/sec (MIPS, both
// engines), plus the wall-clock of the full Fig. 3 stencil sweep. Emits
// machine-readable JSON (BENCH_host_throughput.json by default) so the
// numbers form a trajectory across commits.
//
// Usage: host_throughput [--json PATH] [--repeat N]
//   --repeat N   best-of-N timing for the per-kernel runs (default 3)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "kernels/registry.hpp"

// Sanitizer spec the tree was built with (SCH_SANITIZE cache variable;
// CMake forwards it as a compile definition). Recorded in the JSON so
// tools/check_bench_regression.py can refuse to compare sanitizer-build
// throughput against release numbers.
#ifndef SCH_SANITIZE_SPEC
#define SCH_SANITIZE_SPEC ""
#endif

namespace {

using namespace sch;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct KernelResult {
  std::string name;
  u64 sim_cycles = 0;
  u64 sim_instrs = 0;     // retired on the cycle-level model
  u64 iss_instrs = 0;
  double sim_wall_s = 0;  // best-of-N
  double iss_wall_s = 0;

  [[nodiscard]] double sim_cps() const { return sim_cycles / sim_wall_s; }
  [[nodiscard]] double sim_mips() const { return sim_instrs / sim_wall_s / 1e6; }
  [[nodiscard]] double iss_mips() const { return iss_instrs / iss_wall_s / 1e6; }
};

KernelResult time_kernel(const std::string& name, kernels::BuiltKernel k,
                         int repeat) {
  KernelResult r;
  r.name = name;
  r.sim_wall_s = 1e100;
  r.iss_wall_s = 1e100;
  // One prebuilt request per engine, reused across the timing repeats (the
  // engine re-simulates from the same program image every run).
  const api::RunRequest sim_request =
      api::RunRequest::for_built(k, api::EngineSel::kCycle);
  const api::RunRequest iss_request =
      api::RunRequest::for_built(std::move(k), api::EngineSel::kIss);
  for (int i = 0; i < repeat; ++i) {
    const auto t0 = Clock::now();
    const api::RunReport run = api::run(sim_request);
    const double s = seconds_since(t0);
    if (!run.ok) {
      std::fprintf(stderr, "FATAL: %s failed validation: %s\n", name.c_str(),
                   run.error.c_str());
      std::exit(1);
    }
    r.sim_cycles = run.cycles;
    r.sim_instrs = run.perf.total_retired();
    if (s < r.sim_wall_s) r.sim_wall_s = s;

    const auto t1 = Clock::now();
    const api::RunReport iss = api::run(iss_request);
    const double si = seconds_since(t1);
    if (!iss.ok) {
      std::fprintf(stderr, "FATAL: %s ISS run failed: %s\n", name.c_str(),
                   iss.error.c_str());
      std::exit(1);
    }
    r.iss_instrs = iss.iss_instructions;
    if (si < r.iss_wall_s) r.iss_wall_s = si;
  }
  return r;
}

} // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_host_throughput.json";
  int repeat = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
      if (repeat < 1) repeat = 1;
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH] [--repeat N]\n", argv[0]);
      return 2;
    }
  }

  // One representative per workload family (looked up through the kernel
  // registry), larger-than-paper sizes so each timing window is dominated
  // by steady-state simulation.
  const auto build = [](const char* kernel, const char* variant,
                        const kernels::SizeMap& overrides) {
    const kernels::KernelEntry* e = kernels::Registry::instance().find(kernel);
    if (e == nullptr) {
      std::fprintf(stderr, "FATAL: %s not in the kernel registry\n", kernel);
      std::exit(1);
    }
    return e->build(variant, e->resolve_sizes(overrides));
  };
  std::vector<KernelResult> results;
  results.push_back(time_kernel(
      "vecop_baseline", build("vecop", "baseline", {{"n", 4096}}), repeat));
  results.push_back(time_kernel(
      "vecop_chained_frep", build("vecop", "chained+frep", {{"n", 4096}}),
      repeat));
  results.push_back(time_kernel(
      "gemv_chained", build("gemv", "chained", {{"m", 64}, {"n", 48}}), repeat));
  results.push_back(time_kernel(
      "box3d1r_chaining_plus", build("box3d1r", "Chaining+", {}), repeat));
  results.push_back(time_kernel(
      "j3d27pt_chaining_plus", build("j3d27pt", "Chaining+", {}), repeat));
  results.push_back(time_kernel(
      "gemm_chained", build("gemm", "chained", {{"m", 32}, {"k", 32}, {"n", 32}}),
      repeat));
  results.push_back(time_kernel(
      "conv2d_chained", build("conv2d", "chained", {{"h", 34}, {"w", 34}}),
      repeat));
  results.push_back(time_kernel(
      "axpy_chained_dbuf",
      build("axpy", "chained_dbuf", {{"n", 1024}, {"tile", 64}}), repeat));
  results.push_back(time_kernel(
      "gemv_chained_dbuf",
      build("gemv", "chained_dbuf", {{"m", 64}, {"n", 48}, {"rtile", 8}}),
      repeat));

  // Full Fig. 3 sweep wall-clock (build + simulate + validate, all 10
  // configurations), as shipped: parallel workers over self-contained runs.
  const auto t0 = Clock::now();
  const auto sweep = sch::bench::run_stencil_sweep();
  const double sweep_wall_s = seconds_since(t0);
  u64 sweep_cycles = 0;
  for (const auto& e : sweep) sweep_cycles += e.run.cycles;

  bench::print_header("host throughput (best of " + std::to_string(repeat) + ")",
                      {"kernel", "cycles", "cyc/sec", "sim MIPS", "iss MIPS"});
  for (const auto& r : results) {
    bench::print_row({r.name, std::to_string(r.sim_cycles),
                      bench::fmt(r.sim_cps(), 0), bench::fmt(r.sim_mips(), 3),
                      bench::fmt(r.iss_mips(), 3)});
  }
  std::printf("\nstencil sweep (%u configs, %u workers): %.1f ms, %.0f simulated cycles/sec\n",
              bench::kSweepJobs, bench::sweep_worker_count(bench::kSweepJobs),
              sweep_wall_s * 1e3, sweep_cycles / sweep_wall_s);

  std::ofstream os(json_path);
  if (!os) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  // Host metadata: enough context to judge whether two JSONs are
  // comparable (same compiler? sanitizers on? how parallel a machine?).
  // The regression gate skips sanitizer builds outright.
#if defined(NDEBUG)
  const bool optimized = true;
#else
  const bool optimized = false;
#endif
  os << "{\n  \"bench\": \"host_throughput\",\n  \"repeat\": " << repeat
     << ",\n  \"host\": {\"threads\": " << std::thread::hardware_concurrency()
     << ", \"compiler\": \"" << __VERSION__ << "\""
     << ", \"optimized\": " << (optimized ? "true" : "false")
     << ", \"sanitize\": \"" << SCH_SANITIZE_SPEC << "\"}"
     << ",\n  \"kernels\": [\n";
  for (usize i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    os << "    {\"name\": \"" << r.name << "\", \"sim_cycles\": " << r.sim_cycles
       << ", \"sim_instrs\": " << r.sim_instrs
       << ", \"sim_wall_s\": " << r.sim_wall_s
       << ", \"sim_cycles_per_sec\": " << static_cast<u64>(r.sim_cps())
       << ", \"sim_mips\": " << r.sim_mips()
       << ", \"iss_instrs\": " << r.iss_instrs
       << ", \"iss_wall_s\": " << r.iss_wall_s
       << ", \"iss_mips\": " << r.iss_mips() << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"stencil_sweep\": {\"configs\": " << sweep.size()
     << ", \"workers\": " << bench::sweep_worker_count(bench::kSweepJobs)
     << ", \"wall_s\": " << sweep_wall_s
     << ", \"simulated_cycles\": " << sweep_cycles
     << ", \"simulated_cycles_per_sec\": "
     << static_cast<u64>(sweep_cycles / sweep_wall_s) << "}\n}\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
