// Reproduces Fig. 2: the dataflow through the chain FIFO. Runs the paper's
// exact Fig. 1c instruction sequence with the per-cycle trace enabled and
// prints (a) the issue trace (Fig. 1c's issue slots) and (b) the FPU
// pipeline-register occupancy with issue sequence numbers -- the paper's
// "numbered tokens" -- together with the chained register's valid bit.
#include <cstdio>

#include "asm/assembler.hpp"
#include "bench_common.hpp"
#include "mem/memory.hpp"
#include "sim/simulator.hpp"

using namespace sch;

int main() {
  // The Fig. 1c listing, with SSR setup ahead of it (c = stream, d = stream,
  // a = write stream), two loop iterations so the steady state is visible.
  const char* src = R"(
    .data
c: .double 1, 2, 3, 4, 5, 6, 7, 8
d: .double 10, 20, 30, 40, 50, 60, 70, 80
a: .zero 64
k: .double 2.0
    .text
    la t0, k
    fld fa0, 0(t0)
    li t0, 7
    scfgw t0, 8
    li t0, 8
    scfgw t0, 24
    li t0, 7
    scfgw t0, 9
    li t0, 8
    scfgw t0, 25
    li t0, 7
    scfgw t0, 10
    li t0, 8
    scfgw t0, 26
    la t1, c
    scfgw t1, 48
    la t1, d
    scfgw t1, 49
    la t1, a
    scfgw t1, 66
    csrwi ssr_enable, 1
    li a1, 0
    li a2, 2
    li t2, 8
    csrs 0x7C3, t2        # enable chaining on ft3 (the paper's mask)
loop:
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    addi a1, a1, 1
    bneq a1, a2, loop
    csrs 0x7C3, x0
    csrwi ssr_enable, 0
    ecall
  )";

  auto asm_result = assembler::assemble(src);
  if (!asm_result.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", asm_result.status().message().c_str());
    return 1;
  }
  Program prog = std::move(asm_result).value();

  // An Observer probe that checks the output region and snapshots the chain
  // unit's statistics while the final machine state is alive -- the kind of
  // instrumentation the unified engine supports without core changes.
  struct ChainProbe : api::Observer {
    u64 pushes = 0, pops = 0, backpressure = 0;
    int bad = 0;
    void on_halt(const api::RunReport&, const sim::Simulator* sim,
                 const Memory* mem) override {
      if (sim == nullptr || mem == nullptr) return;
      pushes = sim->fp().chain().stats().pushes;
      pops = sim->fp().chain().stats().pops;
      backpressure = sim->fp().chain().stats().backpressure_cycles;
      const double c[] = {1, 2, 3, 4, 5, 6, 7, 8};
      const double d[] = {10, 20, 30, 40, 50, 60, 70, 80};
      for (u32 i = 0; i < 8; ++i) {
        const double got = mem->load_f64(memmap::kTcdmBase + 128 + 8 * i);
        if (got != 2.0 * (c[i] + d[i])) ++bad;
      }
    }
  };

  api::RunRequest request =
      api::RunRequest::for_program(std::move(prog), "fig2_dataflow");
  request.config.trace = true;
  api::TraceObserver tracer;
  ChainProbe probe;
  request.observers.push_back(&tracer);
  request.observers.push_back(&probe);

  const api::RunReport report = api::run(request);
  if (!report.ok) {
    std::fprintf(stderr, "FATAL: abnormal halt: %s\n", report.error.c_str());
    return 1;
  }

  std::printf("Fig. 2 reproduction: chained a = b*(c+d), two loop iterations\n");
  std::printf("\n--- issue trace (Fig. 1c style) ---\n%s",
              tracer.trace().format_issue_table().c_str());
  std::printf("\n--- FPU pipeline / chain register occupancy (Fig. 2 tokens) ---\n%s",
              tracer.trace().format_dataflow(96).c_str());

  std::printf("\nresult check: %s\n",
              probe.bad == 0 ? "all 8 elements correct" : "MISMATCH");
  std::printf("cycles: %llu, fpu ops: %llu, chain pushes: %llu, pops: %llu, "
              "backpressure cycles: %llu\n",
              static_cast<unsigned long long>(report.cycles),
              static_cast<unsigned long long>(report.perf.fpu_ops),
              static_cast<unsigned long long>(probe.pushes),
              static_cast<unsigned long long>(probe.pops),
              static_cast<unsigned long long>(probe.backpressure));
  return probe.bad == 0 ? 0 : 1;
}
