// Reproduces Fig. 2: the dataflow through the chain FIFO. Runs the paper's
// exact Fig. 1c instruction sequence with the per-cycle trace enabled and
// prints (a) the issue trace (Fig. 1c's issue slots) and (b) the FPU
// pipeline-register occupancy with issue sequence numbers -- the paper's
// "numbered tokens" -- together with the chained register's valid bit.
#include <cstdio>

#include "asm/assembler.hpp"
#include "bench_common.hpp"
#include "mem/memory.hpp"
#include "sim/simulator.hpp"

using namespace sch;

int main() {
  // The Fig. 1c listing, with SSR setup ahead of it (c = stream, d = stream,
  // a = write stream), two loop iterations so the steady state is visible.
  const char* src = R"(
    .data
c: .double 1, 2, 3, 4, 5, 6, 7, 8
d: .double 10, 20, 30, 40, 50, 60, 70, 80
a: .zero 64
k: .double 2.0
    .text
    la t0, k
    fld fa0, 0(t0)
    li t0, 7
    scfgw t0, 8
    li t0, 8
    scfgw t0, 24
    li t0, 7
    scfgw t0, 9
    li t0, 8
    scfgw t0, 25
    li t0, 7
    scfgw t0, 10
    li t0, 8
    scfgw t0, 26
    la t1, c
    scfgw t1, 48
    la t1, d
    scfgw t1, 49
    la t1, a
    scfgw t1, 66
    csrwi ssr_enable, 1
    li a1, 0
    li a2, 2
    li t2, 8
    csrs 0x7C3, t2        # enable chaining on ft3 (the paper's mask)
loop:
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fadd.d ft3, ft0, ft1
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    fmul.d ft2, ft3, fa0
    addi a1, a1, 1
    bneq a1, a2, loop
    csrs 0x7C3, x0
    csrwi ssr_enable, 0
    ecall
  )";

  auto asm_result = assembler::assemble(src);
  if (!asm_result.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", asm_result.status().message().c_str());
    return 1;
  }
  const Program prog = std::move(asm_result).value();

  Memory mem;
  sim::SimConfig cfg;
  cfg.trace = true;
  sim::Simulator sim(prog, mem, cfg);
  const HaltReason halt = sim.run();
  if (halt != HaltReason::kEcall) {
    std::fprintf(stderr, "FATAL: abnormal halt: %s\n", sim.error().c_str());
    return 1;
  }

  std::printf("Fig. 2 reproduction: chained a = b*(c+d), two loop iterations\n");
  std::printf("\n--- issue trace (Fig. 1c style) ---\n%s",
              sim.trace().format_issue_table().c_str());
  std::printf("\n--- FPU pipeline / chain register occupancy (Fig. 2 tokens) ---\n%s",
              sim.trace().format_dataflow(96).c_str());

  // Verify the results while we're here.
  const double c[] = {1, 2, 3, 4, 5, 6, 7, 8};
  const double d[] = {10, 20, 30, 40, 50, 60, 70, 80};
  int bad = 0;
  for (u32 i = 0; i < 8; ++i) {
    const double got = mem.load_f64(memmap::kTcdmBase + 128 + 8 * i);
    if (got != 2.0 * (c[i] + d[i])) ++bad;
  }
  std::printf("\nresult check: %s\n", bad == 0 ? "all 8 elements correct" : "MISMATCH");
  std::printf("cycles: %llu, fpu ops: %llu, chain pushes: %llu, pops: %llu, "
              "backpressure cycles: %llu\n",
              static_cast<unsigned long long>(sim.cycles()),
              static_cast<unsigned long long>(sim.perf().fpu_ops),
              static_cast<unsigned long long>(sim.fp().chain().stats().pushes),
              static_cast<unsigned long long>(sim.fp().chain().stats().pops),
              static_cast<unsigned long long>(sim.fp().chain().stats().backpressure_cycles));
  return bad == 0 ? 0 : 1;
}
