// Load generator for the serve layer: replay thousands of mixed NDJSON
// requests against an in-process serve::Server and record sustained
// reports/sec (sustained, not peak: the timed region covers the full
// replay, request parsing and response serialization included). Three
// phases isolate where the serving-layer caches earn their keep on a
// repeated-shape workload:
//
//   cold        both caches disabled -- the per-request path pays kernel
//               build + predecode + simulation every time;
//   warm_build  build cache only, pre-warmed -- simulation still runs but
//               build/predecode are skipped (hit counters prove it);
//   warm_full   build + report caches, pre-warmed -- repeated requests are
//               memoized whole (every response line carries "cached":true).
//
// The acceptance claim (warm sustained >= 3x cold, hit counters proving
// build/predecode skipped) is checked by tools/check_bench_regression.py
// against the committed BENCH_serve_throughput.json trajectory.
//
// Usage: serve_throughput [--json PATH] [--repeat N] [--requests N]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"

#ifndef SCH_SANITIZE_SPEC
#define SCH_SANITIZE_SPEC ""
#endif

namespace {

using namespace sch;
using Clock = std::chrono::steady_clock;
using scenario::Json;

/// The repeated-shape request mix: small-but-real kernels across families
/// and scheduling variants, the shapes a sweep fleet hammers repeatedly.
const char* const kShapes[] = {
    R"({"kernel":"axpy","variants":["baseline"],"sizes":[{"n":512}]})",
    R"({"kernel":"axpy","variants":["chained"],"sizes":[{"n":512}]})",
    R"({"kernel":"vecop","variants":["baseline"],"sizes":[{"n":512}]})",
    R"({"kernel":"vecop","variants":["chained+frep"],"sizes":[{"n":512}]})",
    R"({"kernel":"dot","variants":["baseline"],"sizes":[{"n":512}]})",
    R"({"kernel":"dot","variants":["chained"],"sizes":[{"n":512}]})",
    R"({"kernel":"gemv","variants":["chained"],"sizes":[{"m":32,"n":32}]})",
    R"({"kernel":"gemm","variants":["chained"],"sizes":[{"m":8,"k":8,"n":8}]})",
};
constexpr usize kNumShapes = sizeof(kShapes) / sizeof(kShapes[0]);

struct CacheCounters {
  u64 hits = 0;
  u64 misses = 0;
};

struct StatsSnapshot {
  CacheCounters build;
  CacheCounters report;
};

struct PhaseResult {
  std::string name;
  double wall_s = 1e100;  // best-of-N replay wall clock
  usize reports = 0;
  usize ok = 0;
  usize cached = 0;  // responses served from the report cache
  CacheCounters build;   // per-replay deltas of the measured repeat
  CacheCounters report;

  [[nodiscard]] double rps() const { return reports / wall_s; }
};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

u64 cache_u64(const Json& stats, const char* which, const char* field) {
  const Json* c = stats.get("cache");
  if (c == nullptr) return 0;
  const Json* w = c->get(which);
  if (w == nullptr) return 0;
  const Json* f = w->get(field);
  return f != nullptr ? static_cast<u64>(f->as_i64()) : 0;
}

/// Parse one replay's response stream into report/ok/cached tallies.
void parse_responses(const std::string& text, PhaseResult& out) {
  std::istringstream is(text);
  std::string line;
  out.reports = out.ok = out.cached = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    Result<Json> parsed = Json::parse(line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "FATAL: unparseable response line: %s\n",
                   line.c_str());
      std::exit(1);
    }
    const Json doc = std::move(parsed).value();
    const Json* type = doc.get("type");
    if (type == nullptr || !type->is_string()) continue;
    if (type->as_string() == "report") {
      ++out.reports;
      const Json* cached = doc.get("cached");
      if (cached != nullptr && cached->is_bool() && cached->as_bool()) {
        ++out.cached;
      }
      const Json* report = doc.get("report");
      const Json* ok = report != nullptr ? report->get("ok") : nullptr;
      if (ok != nullptr && ok->is_bool() && ok->as_bool()) ++out.ok;
    } else if (type->as_string() == "error") {
      std::fprintf(stderr, "FATAL: request rejected: %s\n", line.c_str());
      std::exit(1);
    }
  }
}

/// Query the server's cumulative cache counters in a dedicated session --
/// a session boundary fully drains in-flight jobs, so unlike a stats probe
/// pipelined inside the replay this snapshot is exact.
StatsSnapshot probe_stats(serve::Server& server) {
  std::istringstream in("{\"op\":\"stats\"}\n");
  std::ostringstream out;
  server.serve(in, out);
  Result<Json> parsed = Json::parse(out.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "FATAL: bad stats response: %s\n", out.str().c_str());
    std::exit(1);
  }
  const Json doc = std::move(parsed).value();
  StatsSnapshot snap;
  snap.build.hits = cache_u64(doc, "build", "hits");
  snap.build.misses = cache_u64(doc, "build", "misses");
  snap.report.hits = cache_u64(doc, "report", "hits");
  snap.report.misses = cache_u64(doc, "report", "misses");
  return snap;
}

PhaseResult run_phase(const std::string& name, const serve::ServerOptions& opts,
                      bool prewarm, usize requests, int repeat) {
  serve::Server server(opts);

  if (prewarm) {
    // One pass over every unique shape fills both caches before timing.
    std::string warm_input;
    for (const char* shape : kShapes) {
      warm_input += shape;
      warm_input += '\n';
    }
    std::istringstream in(warm_input);
    std::ostringstream out;
    server.serve(in, out);
  }

  // The replay: `requests` single-run requests round-robin over the shape
  // mix. Counter snapshots are taken in dedicated sessions bracketing the
  // timed session so per-replay cache deltas are exact.
  std::string input;
  for (usize i = 0; i < requests; ++i) {
    input += kShapes[i % kNumShapes];
    input += '\n';
  }

  PhaseResult best;
  best.name = name;
  for (int r = 0; r < repeat; ++r) {
    const StatsSnapshot before = probe_stats(server);
    std::istringstream in(input);
    std::ostringstream out;
    const auto t0 = Clock::now();
    server.serve(in, out);
    const double wall = seconds_since(t0);
    if (wall < best.wall_s) {
      best.wall_s = wall;
      parse_responses(out.str(), best);
      const StatsSnapshot after = probe_stats(server);
      best.build.hits = after.build.hits - before.build.hits;
      best.build.misses = after.build.misses - before.build.misses;
      best.report.hits = after.report.hits - before.report.hits;
      best.report.misses = after.report.misses - before.report.misses;
    }
  }
  if (best.reports != requests || best.ok != requests) {
    std::fprintf(stderr, "FATAL: phase %s: %zu requests, %zu reports, %zu ok\n",
                 name.c_str(), requests, best.reports, best.ok);
    std::exit(1);
  }
  return best;
}

void dump_phase(std::ostream& os, const PhaseResult& p, bool last) {
  os << "    \"" << p.name << "\": {\"wall_s\": " << p.wall_s
     << ", \"reports_per_sec\": " << p.rps()
     << ", \"reports\": " << p.reports << ", \"ok\": " << p.ok
     << ", \"cached\": " << p.cached
     << ", \"build\": {\"hits\": " << p.build.hits
     << ", \"misses\": " << p.build.misses << "}"
     << ", \"report\": {\"hits\": " << p.report.hits
     << ", \"misses\": " << p.report.misses << "}}" << (last ? "" : ",")
     << "\n";
}

} // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_serve_throughput.json";
  int repeat = 3;
  usize requests = 600;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<usize>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: serve_throughput [--json PATH] [--repeat N] "
                   "[--requests N]\n");
      return 2;
    }
  }
  if (repeat < 1) repeat = 1;
  if (requests < kNumShapes) requests = kNumShapes;

  serve::ServerOptions cold_opts;
  cold_opts.build_cache_capacity = 0;
  cold_opts.report_cache_capacity = 0;
  serve::ServerOptions warm_build_opts;
  warm_build_opts.report_cache_capacity = 0;
  serve::ServerOptions warm_full_opts;

  const PhaseResult cold =
      run_phase("cold", cold_opts, /*prewarm=*/false, requests, repeat);
  const PhaseResult warm_build =
      run_phase("warm_build", warm_build_opts, /*prewarm=*/true, requests, repeat);
  const PhaseResult warm_full =
      run_phase("warm_full", warm_full_opts, /*prewarm=*/true, requests, repeat);

  // The counters must prove the claim, not just suggest it: every replayed
  // request hits the build cache in warm_build (build + predecode skipped)
  // and is fully memoized in warm_full (simulation skipped too).
  if (warm_build.build.hits != requests || warm_build.build.misses != 0) {
    std::fprintf(stderr,
                 "FATAL: warm_build replay expected %zu build hits / 0 misses, "
                 "got %llu/%llu\n",
                 requests,
                 static_cast<unsigned long long>(warm_build.build.hits),
                 static_cast<unsigned long long>(warm_build.build.misses));
    return 1;
  }
  if (warm_full.cached != requests) {
    std::fprintf(stderr,
                 "FATAL: warm_full replay expected %zu cached responses, got "
                 "%zu\n",
                 requests, warm_full.cached);
    return 1;
  }

  const double speedup_build = warm_build.rps() / cold.rps();
  const double speedup_full = warm_full.rps() / cold.rps();

  std::printf("serve throughput (%zu requests over %zu shapes, best of %d)\n\n",
              requests, kNumShapes, repeat);
  std::printf("  %-12s %12s %10s %8s\n", "phase", "reports/sec", "wall ms",
              "cached");
  for (const PhaseResult* p : {&cold, &warm_build, &warm_full}) {
    std::printf("  %-12s %12.0f %10.1f %8zu\n", p->name.c_str(), p->rps(),
                p->wall_s * 1e3, p->cached);
  }
  std::printf("\n  warm_build vs cold: %.2fx (build+predecode skipped)\n",
              speedup_build);
  std::printf("  warm_full  vs cold: %.2fx (simulation memoized)\n",
              speedup_full);

  std::ofstream os(json_path);
  if (!os) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
    return 1;
  }
#if defined(NDEBUG)
  const bool optimized = true;
#else
  const bool optimized = false;
#endif
  os << "{\n  \"bench\": \"serve_throughput\",\n  \"repeat\": " << repeat
     << ",\n  \"requests\": " << requests << ",\n  \"shapes\": " << kNumShapes
     << ",\n  \"host\": {\"threads\": " << std::thread::hardware_concurrency()
     << ", \"compiler\": \"" << __VERSION__ << "\""
     << ", \"optimized\": " << (optimized ? "true" : "false")
     << ", \"sanitize\": \"" << SCH_SANITIZE_SPEC << "\"}"
     << ",\n  \"phases\": {\n";
  dump_phase(os, cold, false);
  dump_phase(os, warm_build, false);
  dump_phase(os, warm_full, true);
  os << "  },\n  \"speedup_warm_build_vs_cold\": " << speedup_build
     << ",\n  \"speedup_warm_vs_cold\": " << speedup_full
     << ",\n  \"required_speedup\": 3.0\n}\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
