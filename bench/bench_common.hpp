// Shared infrastructure for the paper-reproduction benches: the stencil
// variant sweep behind Fig. 3, the paper's reference values, and table
// formatting.
#pragma once

#include <string>
#include <vector>

#include "api/engine.hpp"
#include "energy/energy_model.hpp"
#include "kernels/stencil.hpp"
#include "sim/sim_config.hpp"

namespace sch::bench {

using kernels::StencilKind;
using kernels::StencilVariant;

inline constexpr StencilKind kKinds[] = {StencilKind::kBox3d1r,
                                         StencilKind::kJ3d27pt};
inline constexpr StencilVariant kVariants[] = {
    StencilVariant::kBaseMM, StencilVariant::kBaseM, StencilVariant::kBase,
    StencilVariant::kChaining, StencilVariant::kChainingPlus};

/// Number of configurations in the Fig. 3 sweep (kKinds x kVariants).
inline constexpr u32 kSweepJobs =
    static_cast<u32>(sizeof(kKinds) / sizeof(kKinds[0])) *
    static_cast<u32>(sizeof(kVariants) / sizeof(kVariants[0]));

/// Fig. 3 reference values decoded from the paper (see DESIGN.md §3):
/// per variant (Base--, Base-, Base, Chaining, Chaining+).
struct PaperRef {
  double util_box[5] = {0.85, 0.87, 0.90, 0.90, 0.93};
  double util_j3d[5] = {0.86, 0.88, 0.91, 0.92, 0.95};
  double power_box[5] = {60.6, 60.5, 63.1, 59.6, 59.7};
  double power_j3d[5] = {60.6, 60.4, 63.2, 59.5, 59.6};

  [[nodiscard]] double util(StencilKind k, u32 v) const {
    return k == StencilKind::kBox3d1r ? util_box[v] : util_j3d[v];
  }
  [[nodiscard]] double power(StencilKind k, u32 v) const {
    return k == StencilKind::kBox3d1r ? power_box[v] : power_j3d[v];
  }
};

struct SweepEntry {
  StencilKind kind;
  StencilVariant variant;
  api::RunReport run;  // register/flops bookkeeping lives in run.regs etc.
};

/// Worker threads the sweep will use for `jobs` configurations: the shared
/// engine's SCH_SWEEP_THREADS / hardware-concurrency policy, capped at the
/// job count.
u32 sweep_worker_count(u32 jobs);

/// Run all 2x5 stencil configurations as one async batch on the shared
/// api::default_engine() pool; entry order matches the serial
/// kKinds x kVariants nesting. Aborts (exit 1) with a message when a kernel
/// fails validation -- benches must never report numbers from a run whose
/// output did not match the golden reference.
std::vector<SweepEntry> run_stencil_sweep(
    const kernels::StencilParams& params = {.nx = 12, .ny = 12, .nz = 12},
    const sim::SimConfig& sim_config = {},
    const energy::EnergyConfig& energy_config = {});

/// Index of `variant` within kVariants.
u32 variant_index(StencilVariant variant);

/// Fetch the sweep entry for (kind, variant).
const SweepEntry& find_entry(const std::vector<SweepEntry>& sweep,
                             StencilKind kind, StencilVariant variant);

/// "name  paper  measured  delta%" table row helpers.
void print_header(const std::string& title, const std::vector<std::string>& cols);
void print_row(const std::vector<std::string>& cells);

std::string fmt(double v, int precision = 3);

} // namespace sch::bench
