// Reproduces the paper's Section III headline numbers:
//  * "4% geomean speedup ... over the highly-optimized baselines [Base]"
//  * "10% geomean energy efficiency improvement over [Base]"
//  * "8% and 9% gains respectively over the direct comparison point Base-"
//  * "7% geomean improvement in energy efficiency" (Chaining vs Base)
//  * ">93% FPU utilizations" (Chaining+)
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

using namespace sch;
using namespace sch::bench;

namespace {

double geomean2(double a, double b) { return std::sqrt(a * b); }

struct Claim {
  const char* name;
  double paper;
  double measured;
  double tolerance; // acceptable absolute deviation in percentage points
};

} // namespace

int main() {
  std::printf("Headline geomeans over {box3d1r, j3d27pt} (paper Section III)\n");
  const auto sweep = run_stencil_sweep();

  auto entry = [&](StencilKind k, StencilVariant v) -> const SweepEntry& {
    return find_entry(sweep, k, v);
  };
  auto speedup = [&](StencilVariant fast, StencilVariant slow) {
    double r[2];
    int i = 0;
    for (StencilKind k : kKinds) {
      r[i++] = static_cast<double>(entry(k, slow).run.cycles) /
               static_cast<double>(entry(k, fast).run.cycles);
    }
    return 100.0 * (geomean2(r[0], r[1]) - 1.0);
  };
  // Energy efficiency = useful work per joule; the workload is identical
  // across variants, so the efficiency ratio is the total-energy ratio.
  auto eff_gain = [&](StencilVariant better, StencilVariant worse) {
    double r[2];
    int i = 0;
    for (StencilKind k : kKinds) {
      r[i++] = entry(k, worse).run.energy.breakdown.total_pj /
               entry(k, better).run.energy.breakdown.total_pj;
    }
    return 100.0 * (geomean2(r[0], r[1]) - 1.0);
  };

  const Claim claims[] = {
      {"speedup Chaining+ vs Base [%]", 4.0,
       speedup(StencilVariant::kChainingPlus, StencilVariant::kBase), 2.0},
      {"speedup Chaining+ vs Base- [%]", 8.0,
       speedup(StencilVariant::kChainingPlus, StencilVariant::kBaseM), 3.0},
      {"energy eff. Chaining+ vs Base [%]", 10.0,
       eff_gain(StencilVariant::kChainingPlus, StencilVariant::kBase), 4.0},
      {"energy eff. Chaining+ vs Base- [%]", 9.0,
       eff_gain(StencilVariant::kChainingPlus, StencilVariant::kBaseM), 4.0},
      {"energy eff. Chaining vs Base [%]", 7.0,
       eff_gain(StencilVariant::kChaining, StencilVariant::kBase), 3.0},
  };

  print_header("headline claims", {"claim", "paper", "measured", "delta", "verdict"});
  int failures = 0;
  for (const Claim& c : claims) {
    const bool ok = std::abs(c.measured - c.paper) <= c.tolerance;
    if (!ok) ++failures;
    std::printf("%-36s%-10s%-10s%-10s%s\n", c.name, fmt(c.paper, 1).c_str(),
                fmt(c.measured, 1).c_str(), fmt(c.measured - c.paper, 1).c_str(),
                ok ? "ok" : "FAIL");
  }

  const double chp_box =
      entry(StencilKind::kBox3d1r, StencilVariant::kChainingPlus).run.fpu_utilization;
  const double chp_j3d =
      entry(StencilKind::kJ3d27pt, StencilVariant::kChainingPlus).run.fpu_utilization;
  const bool util_ok = chp_box > 0.93 && chp_j3d > 0.93;
  if (!util_ok) ++failures;
  std::printf("%-36s%-10s%-10s%-10s%s\n", ">93% FPU utilization (Chaining+)",
              ">0.93", (fmt(chp_box, 3) + "/" + fmt(chp_j3d, 3)).c_str(), "-",
              util_ok ? "ok" : "FAIL");

  std::printf("\n%d claim(s) out of tolerance\n", failures);
  return failures == 0 ? 0 : 1;
}
