// Reproduces the paper's Section III synthesis claim: "Our extensions
// introduce negligible overheads, <2% cell area increase", via the
// gate-equivalent cost model (the substitution for Fusion Compiler; see
// DESIGN.md §1). Also reports the register-pressure savings per FIFO depth.
#include <cstdio>
#include <initializer_list>

#include "core/cost_model.hpp"

using namespace sch;

int main() {
  const chain::CostBreakdown b = chain::estimate_cost();
  std::printf("Chaining extension hardware cost (gate equivalents)\n\n");
  std::printf("  valid bits (32 x FF)      : %7.0f GE\n", b.valid_bits_ge);
  std::printf("  chain-mask CSR (32 bit)   : %7.0f GE\n", b.csr_ge);
  std::printf("  control (pop/push, WAW    : %7.0f GE\n", b.control_ge);
  std::printf("    bypass, operand select)\n");
  std::printf("  total extension           : %7.0f GE\n", b.total_extension_ge);
  std::printf("  baseline core + FP + SSRs : %7.0f GE\n", b.baseline_ge);
  std::printf("\n  area overhead: %.3f%%  (paper: <2%%)  -> %s\n",
              100.0 * b.overhead_fraction,
              b.overhead_fraction < 0.02 ? "ok" : "FAIL");

  std::printf("\nRegister-pressure alternative (software FIFO via unrolling):\n");
  std::printf("  %-12s%-22s%-18s%s\n", "FIFO depth", "regs without chaining",
              "with chaining", "freed");
  for (u32 depth : {2u, 4u, 6u, 8u}) {
    const chain::RegisterPressure rp = chain::register_pressure(depth);
    std::printf("  %-12u%-22u%-18u%u\n", depth, rp.without_chaining,
                rp.with_chaining, rp.freed);
  }
  return b.overhead_fraction < 0.02 ? 0 : 1;
}
