// Infrastructure micro-benchmarks (google-benchmark): simulator cycle
// throughput, decoder throughput, assembler throughput. These quantify the
// reproduction toolchain itself, not the paper's results.
#include <benchmark/benchmark.h>

#include "asm/assembler.hpp"
#include "isa/decode.hpp"
#include "isa/encode.hpp"
#include "api/engine.hpp"
#include "kernels/stencil.hpp"
#include "kernels/vecop.hpp"
#include "mem/memory.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace sch;

void BM_Decoder(benchmark::State& state) {
  std::vector<u32> words;
  for (u32 i = 0; i < 1024; ++i) {
    words.push_back(isa::make_r(isa::Mnemonic::kFmaddD, i % 32, (i + 1) % 32,
                                (i + 2) % 32, (i + 3) % 32)
                        .raw);
    words.push_back(isa::make_i(isa::Mnemonic::kAddi, i % 32, (i + 1) % 32,
                                static_cast<i32>(i % 2048))
                        .raw);
  }
  for (auto _ : state) {
    for (u32 w : words) benchmark::DoNotOptimize(isa::decode(w));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * words.size());
}
BENCHMARK(BM_Decoder);

void BM_Assembler(benchmark::State& state) {
  std::string src;
  for (int i = 0; i < 64; ++i) {
    src += "fmadd.d ft3, ft0, ft1, ft3\naddi a0, a0, 1\n";
  }
  for (auto _ : state) {
    auto r = assembler::assemble(src);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 128);
}
BENCHMARK(BM_Assembler);

void BM_SimulatorCycles_Vecop(benchmark::State& state) {
  const kernels::BuiltKernel k =
      kernels::build_vecop(kernels::VecopVariant::kChainedFrep, {.n = 1024});
  u64 cycles = 0;
  for (auto _ : state) {
    Memory mem;
    sim::Simulator s(k.program, mem);
    s.run();
    cycles = s.cycles();
    benchmark::DoNotOptimize(cycles);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(cycles));
  state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_SimulatorCycles_Vecop);

void BM_SimulatorCycles_Stencil(benchmark::State& state) {
  const kernels::BuiltKernel k = kernels::build_stencil(
      kernels::StencilKind::kBox3d1r, kernels::StencilVariant::kChainingPlus,
      {.nx = 8, .ny = 8, .nz = 8});
  u64 cycles = 0;
  for (auto _ : state) {
    Memory mem;
    sim::Simulator s(k.program, mem);
    s.run();
    cycles = s.cycles();
    benchmark::DoNotOptimize(cycles);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(cycles));
}
BENCHMARK(BM_SimulatorCycles_Stencil);

void BM_Iss_Stencil(benchmark::State& state) {
  const kernels::BuiltKernel k = kernels::build_stencil(
      kernels::StencilKind::kBox3d1r, kernels::StencilVariant::kChainingPlus,
      {.nx = 8, .ny = 8, .nz = 8});
  const api::RunRequest request =
      api::RunRequest::for_built(k, api::EngineSel::kIss);
  for (auto _ : state) {
    const api::RunReport r = api::run(request);
    benchmark::DoNotOptimize(r.ok);
  }
}
BENCHMARK(BM_Iss_Stencil);

} // namespace

BENCHMARK_MAIN();
