// Ablation A2: unroll factor vs register pressure -- the drawback of the
// software-only technique that motivates the paper (Section I: "at the cost
// of increased register pressure, limiting flexibility").
//
// Two effects separate cleanly in the sweep:
//  * u < fpu_depth+1: RAW stalls remain (the FIFO is too shallow);
//  * u >= fpu_depth+1: stalls are gone; further unrolling only amortizes
//    loop overhead -- at one extra architectural register per step.
// Chaining reaches the stall-free schedule at u = depth+1 with ONE register;
// chaining+frep amortizes the loop overhead too, with ZERO further registers.
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/vecop.hpp"

using namespace sch;
using namespace sch::bench;
using kernels::VecopVariant;

int main() {
  std::printf("Ablation: unrolling degree vs RAW stalls vs register cost\n");
  std::printf("vecop, n = 840, 3-stage FPU (stall-free needs unroll >= 4)\n");
  print_header("unroll sweep", {"unroll", "util", "raw stalls", "fp regs",
                                "note"});

  int failures = 0;
  for (u32 u = 2; u <= 8; ++u) {
    const kernels::VecopParams p{.n = 840, .b = 2.0, .unroll = u};
    const kernels::BuiltKernel ku = kernels::build_vecop(VecopVariant::kUnrolled, p);
    const auto ru = api::run_built(ku);
    if (!ru.ok) {
      std::fprintf(stderr, "FATAL: %s\n", ru.error.c_str());
      return 1;
    }
    const bool covers_latency = u >= 4;
    if (covers_latency && ru.perf.stall_fp_raw != 0) ++failures;
    if (!covers_latency && ru.perf.stall_fp_raw == 0) ++failures;
    print_row({std::to_string(u), fmt(ru.fpu_utilization, 3),
               std::to_string(ru.perf.stall_fp_raw),
               std::to_string(ku.regs.fp_regs_used),
               covers_latency ? "stall-free; regs pay only for loop overhead"
                              : "FIFO too shallow: RAW stalls"});
  }

  // The chaining alternatives at the matched schedule.
  const kernels::VecopParams p4{.n = 840, .b = 2.0, .unroll = 4};
  const kernels::BuiltKernel kc = kernels::build_vecop(VecopVariant::kChained, p4);
  const kernels::BuiltKernel kf = kernels::build_vecop(VecopVariant::kChainedFrep, p4);
  const auto rc = api::run_built(kc);
  const auto rf = api::run_built(kf);
  if (!rc.ok || !rf.ok) {
    std::fprintf(stderr, "FATAL: %s%s\n", rc.error.c_str(), rf.error.c_str());
    return 1;
  }
  print_row({"chained(4)", fmt(rc.fpu_utilization, 3),
             std::to_string(rc.perf.stall_fp_raw),
             std::to_string(kc.regs.fp_regs_used),
             "stall-free at ONE accumulator register"});
  print_row({"chain+frep", fmt(rf.fpu_utilization, 3),
             std::to_string(rf.perf.stall_fp_raw),
             std::to_string(kf.regs.fp_regs_used),
             "loop overhead amortized by the sequencer"});
  if (rc.perf.stall_fp_raw != 0 || rf.fpu_utilization < 0.95) ++failures;

  std::printf("\nclaim checks: %s\n", failures == 0 ? "all passed" : "FAILURES");
  return failures == 0 ? 0 : 1;
}
