#include "bench_common.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <vector>

#include "scenario/scenario_runner.hpp"

namespace sch::bench {

u32 sweep_worker_count(u32 jobs) {
  // One SCH_SWEEP_THREADS policy for benches and scenarios alike.
  return scenario::worker_count(jobs);
}

std::vector<SweepEntry> run_stencil_sweep(const kernels::StencilParams& params,
                                          const sim::SimConfig& sim_config,
                                          const energy::EnergyConfig& energy_config) {
  struct Job {
    StencilKind kind;
    StencilVariant variant;
  };
  std::vector<Job> jobs;
  for (StencilKind kind : kKinds) {
    for (StencilVariant variant : kVariants) jobs.push_back({kind, variant});
  }

  // Each configuration is self-contained (own Memory/Simulator/PerfCounters),
  // so the sweep fans out across threads; results land in deterministic
  // per-job slots, keeping output order identical to the serial sweep.
  std::vector<SweepEntry> out(jobs.size());
  std::vector<std::string> errors(jobs.size());
  std::atomic<usize> next{0};
  auto work = [&] {
    for (usize i = next.fetch_add(1); i < jobs.size(); i = next.fetch_add(1)) {
      const kernels::BuiltKernel k =
          kernels::build_stencil(jobs[i].kind, jobs[i].variant, params);
      SweepEntry e{jobs[i].kind, jobs[i].variant,
                   kernels::run_on_simulator(k, sim_config, energy_config),
                   k.regs, k.useful_flops};
      if (!e.run.ok) errors[i] = k.name + " failed validation: " + e.run.error;
      out[i] = std::move(e);
    }
  };

  const u32 workers = sweep_worker_count(static_cast<u32>(jobs.size()));
  std::vector<std::thread> pool;
  for (u32 t = 1; t < workers; ++t) pool.emplace_back(work);
  work();
  for (std::thread& t : pool) t.join();

  for (const std::string& err : errors) {
    // Benches must never report numbers from a run whose output did not
    // match the golden reference.
    if (!err.empty()) {
      std::fprintf(stderr, "FATAL: %s\n", err.c_str());
      std::exit(1);
    }
  }
  return out;
}

u32 variant_index(StencilVariant variant) {
  for (u32 i = 0; i < 5; ++i) {
    if (kVariants[i] == variant) return i;
  }
  return 0;
}

const SweepEntry& find_entry(const std::vector<SweepEntry>& sweep,
                             StencilKind kind, StencilVariant variant) {
  for (const SweepEntry& e : sweep) {
    if (e.kind == kind && e.variant == variant) return e;
  }
  std::fprintf(stderr, "FATAL: sweep entry not found\n");
  std::exit(1);
}

void print_header(const std::string& title, const std::vector<std::string>& cols) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& c : cols) std::printf("%-14s", c.c_str());
  std::printf("\n");
  for (usize i = 0; i < cols.size(); ++i) std::printf("%-14s", "------------");
  std::printf("\n");
}

void print_row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%-14s", c.c_str());
  std::printf("\n");
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

} // namespace sch::bench
