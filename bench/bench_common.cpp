#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace sch::bench {

u32 sweep_worker_count(u32 jobs) {
  const u32 workers = api::default_engine().worker_count();
  return workers < jobs ? workers : jobs;
}

std::vector<SweepEntry> run_stencil_sweep(const kernels::StencilParams& params,
                                          const sim::SimConfig& sim_config,
                                          const energy::EnergyConfig& energy_config) {
  // One prebuilt RunRequest per configuration (the prebuilt form carries the
  // FULL StencilParams, including unroll/resident_coefs, which the registry
  // size map does not expose), submitted as one batch to the shared engine
  // pool; run_batch returns reports in request order, so entry order is
  // identical to the serial sweep regardless of scheduling.
  std::vector<api::RunRequest> requests;
  std::vector<SweepEntry> out;
  for (StencilKind kind : kKinds) {
    for (StencilVariant variant : kVariants) {
      api::RunRequest r =
          api::RunRequest::for_built(kernels::build_stencil(kind, variant, params));
      r.config = sim_config;
      r.energy = energy_config;
      requests.push_back(std::move(r));
      out.push_back(SweepEntry{kind, variant, {}});
    }
  }

  std::vector<api::RunReport> reports =
      api::default_engine().run_batch(std::move(requests));
  for (usize i = 0; i < out.size(); ++i) {
    if (!reports[i].ok) {
      // Benches must never report numbers from a run whose output did not
      // match the golden reference.
      std::fprintf(stderr, "FATAL: %s failed validation: %s\n",
                   reports[i].name.c_str(), reports[i].error.c_str());
      std::exit(1);
    }
    out[i].run = std::move(reports[i]);
  }
  return out;
}

u32 variant_index(StencilVariant variant) {
  for (u32 i = 0; i < 5; ++i) {
    if (kVariants[i] == variant) return i;
  }
  return 0;
}

const SweepEntry& find_entry(const std::vector<SweepEntry>& sweep,
                             StencilKind kind, StencilVariant variant) {
  for (const SweepEntry& e : sweep) {
    if (e.kind == kind && e.variant == variant) return e;
  }
  std::fprintf(stderr, "FATAL: sweep entry not found\n");
  std::exit(1);
}

void print_header(const std::string& title, const std::vector<std::string>& cols) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& c : cols) std::printf("%-14s", c.c_str());
  std::printf("\n");
  for (usize i = 0; i < cols.size(); ++i) std::printf("%-14s", "------------");
  std::printf("\n");
}

void print_row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%-14s", c.c_str());
  std::printf("\n");
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

} // namespace sch::bench
