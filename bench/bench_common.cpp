#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace sch::bench {

std::vector<SweepEntry> run_stencil_sweep(const kernels::StencilParams& params,
                                          const sim::SimConfig& sim_config,
                                          const energy::EnergyConfig& energy_config) {
  std::vector<SweepEntry> out;
  for (StencilKind kind : kKinds) {
    for (StencilVariant variant : kVariants) {
      const kernels::BuiltKernel k = kernels::build_stencil(kind, variant, params);
      SweepEntry e{kind, variant, kernels::run_on_simulator(k, sim_config, energy_config),
                   k.regs, k.useful_flops};
      if (!e.run.ok) {
        std::fprintf(stderr, "FATAL: %s failed validation: %s\n",
                     k.name.c_str(), e.run.error.c_str());
        std::exit(1);
      }
      out.push_back(std::move(e));
    }
  }
  return out;
}

u32 variant_index(StencilVariant variant) {
  for (u32 i = 0; i < 5; ++i) {
    if (kVariants[i] == variant) return i;
  }
  return 0;
}

const SweepEntry& find_entry(const std::vector<SweepEntry>& sweep,
                             StencilKind kind, StencilVariant variant) {
  for (const SweepEntry& e : sweep) {
    if (e.kind == kind && e.variant == variant) return e;
  }
  std::fprintf(stderr, "FATAL: sweep entry not found\n");
  std::exit(1);
}

void print_header(const std::string& title, const std::vector<std::string>& cols) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& c : cols) std::printf("%-14s", c.c_str());
  std::printf("\n");
  for (usize i = 0; i < cols.size(); ++i) std::printf("%-14s", "------------");
  std::printf("\n");
}

void print_row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%-14s", c.c_str());
  std::printf("\n");
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

} // namespace sch::bench
