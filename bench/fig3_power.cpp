// Reproduces Fig. 3 (right): power [mW] for box3d1r and j3d27pt in all five
// code variants, from the calibrated event-based energy model. Shape to
// reproduce: Base is the most power-hungry (its coefficient SSR re-reads L1
// for every use); the chaining variants are the least (coefficients move to
// the register file).
#include <cstdio>

#include "bench_common.hpp"

using namespace sch;
using namespace sch::bench;

int main() {
  std::printf("Fig. 3 (right): power [mW] @ 1 GHz, 2 stencils x 5 variants\n");
  std::printf("event-based energy model calibrated to the paper's GF12LP+ "
              "0.8 V operating point (see src/energy/energy_model.hpp)\n");

  const PaperRef ref;
  const auto sweep = run_stencil_sweep();

  for (StencilKind kind : kKinds) {
    print_header(std::string(kernels::stencil_kind_name(kind)) + " power [mW]",
                 {"variant", "paper", "measured", "delta", "tcdm reads", "energy/cyc pJ"});
    for (StencilVariant v : kVariants) {
      const SweepEntry& e = find_entry(sweep, kind, v);
      const double paper = ref.power(kind, variant_index(v));
      const double measured = e.run.energy.power_mw;
      print_row({kernels::stencil_variant_name(v), fmt(paper, 1), fmt(measured, 1),
                 fmt(measured - paper, 1), std::to_string(e.run.tcdm_reads),
                 fmt(e.run.energy.energy_per_cycle_pj, 1)});
    }
  }

  int failures = 0;
  for (StencilKind kind : kKinds) {
    const auto& base = find_entry(sweep, kind, StencilVariant::kBase);
    const auto& ch = find_entry(sweep, kind, StencilVariant::kChaining);
    const auto& mm = find_entry(sweep, kind, StencilVariant::kBaseMM);
    auto check = [&](bool ok, const char* what) {
      std::printf("  [%s] %s (%s)\n", ok ? "ok" : "FAIL", what,
                  kernels::stencil_kind_name(kind));
      if (!ok) ++failures;
    };
    check(base.run.energy.power_mw > ch.run.energy.power_mw + 2.0,
          "Base draws >2 mW more than Chaining (L1 coefficient traffic)");
    check(base.run.energy.power_mw > mm.run.energy.power_mw,
          "Base draws more than Base--");
    check(base.run.tcdm_reads > ch.run.tcdm_reads + 5000,
          "Base's coefficient stream adds L1 reads");
  }
  std::printf("\nshape checks: %s\n", failures == 0 ? "all passed" : "FAILURES");
  return failures == 0 ? 0 : 1;
}
