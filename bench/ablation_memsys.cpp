// Ablation A4: robustness of the headline result against memory-system
// parameters. Sweeps TCDM bank count and SSR FIFO depth and reports the
// Chaining+ vs Base speedup and power delta for box3d1r -- the paper's
// conclusion should not hinge on a particular L1 configuration.
#include <cstdio>

#include "bench_common.hpp"

using namespace sch;
using namespace sch::bench;

namespace {

struct Point {
  double speedup;
  double power_delta;
  bool ok;
};

Point measure(const sim::SimConfig& cfg) {
  const kernels::StencilParams p{};
  const auto base = api::run_built(
      kernels::build_stencil(StencilKind::kBox3d1r, StencilVariant::kBase, p), cfg);
  const auto chp = api::run_built(
      kernels::build_stencil(StencilKind::kBox3d1r, StencilVariant::kChainingPlus, p),
      cfg);
  if (!base.ok || !chp.ok) {
    std::fprintf(stderr, "FATAL: %s%s\n", base.error.c_str(), chp.error.c_str());
    std::exit(1);
  }
  return {static_cast<double>(base.cycles) / static_cast<double>(chp.cycles),
          base.energy.power_mw - chp.energy.power_mw, true};
}

} // namespace

int main() {
  std::printf("Ablation: memory-system sensitivity of the headline result\n");
  std::printf("box3d1r, Chaining+ vs Base (paper: ~4%% speedup, Base +3.4 mW)\n");

  print_header("TCDM bank sweep (SSR FIFO depth 4)",
               {"banks", "speedup", "base - chaining+ [mW]"});
  int failures = 0;
  for (u32 banks : {8u, 16u, 32u, 64u}) {
    sim::SimConfig cfg;
    cfg.tcdm.num_banks = banks;
    const Point pt = measure(cfg);
    print_row({std::to_string(banks), fmt(100 * (pt.speedup - 1), 1) + "%",
               fmt(pt.power_delta, 2)});
    if (pt.speedup < 1.02 || pt.power_delta < 1.0) ++failures;
  }

  print_header("SSR FIFO depth sweep (32 banks)",
               {"fifo depth", "speedup", "base - chaining+ [mW]"});
  for (u32 depth : {2u, 4u, 8u}) {
    sim::SimConfig cfg;
    cfg.ssr.data_fifo_depth = depth;
    const Point pt = measure(cfg);
    print_row({std::to_string(depth), fmt(100 * (pt.speedup - 1), 1) + "%",
               fmt(pt.power_delta, 2)});
    if (pt.speedup < 1.02 || pt.power_delta < 1.0) ++failures;
  }

  std::printf("\nconclusion stable (speedup > 2%%, power delta > 1 mW) across "
              "all configurations: %s\n",
              failures == 0 ? "ok" : "FAIL");
  return failures == 0 ? 0 : 1;
}
