// Extension experiment (beyond the paper's evaluation): GEMV y = A*x.
// Demonstrates that scalar chaining generalizes from stencils to reduction
// chains: the four interleaved row accumulators collapse into one chained
// register, and the FREP body collapses to a single instruction. Variants
// come from the kernel registry.
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/registry.hpp"

using namespace sch;
using namespace sch::bench;

int main() {
  std::printf("Extension: GEMV y = A*x with chained reduction interleave\n");
  print_header("gemv 64x48", {"variant", "cycles", "fpu util", "fp regs",
                              "acc regs", "frep body"});
  const kernels::KernelEntry* gemv = kernels::Registry::instance().find("gemv");
  if (gemv == nullptr) {
    std::fprintf(stderr, "FATAL: gemv not in the kernel registry\n");
    return 1;
  }
  const kernels::SizeMap sizes = gemv->resolve_sizes({{"m", 64}, {"n", 48}});
  int failures = 0;
  std::vector<u64> cycles(gemv->variants.size(), 0);
  std::vector<u32> regs(gemv->variants.size(), 0);
  usize i = 0;
  for (const std::string& variant : gemv->variants) {
    const api::RunReport r =
        api::run(api::RunRequest::for_kernel("gemv", variant, sizes));
    if (!r.ok) {
      std::fprintf(stderr, "FATAL: %s\n", r.error.c_str());
      return 1;
    }
    print_row({variant, std::to_string(r.cycles),
               fmt(r.fpu_utilization, 3), std::to_string(r.regs.fp_regs_used),
               std::to_string(r.regs.accumulator_regs),
               variant == "chained" ? "1 instruction" : "4 instructions"});
    cycles[i] = r.cycles;
    regs[i] = r.regs.fp_regs_used;
    ++i;
  }
  if (cycles.size() < 2) {
    std::fprintf(stderr, "FATAL: gemv registry entry lost a variant\n");
    return 1;
  }
  const double ratio = static_cast<double>(cycles[1]) / static_cast<double>(cycles[0]);
  std::printf("\nchained/unrolled cycle ratio: %.3f (registers: %u vs %u)\n",
              ratio, regs[1], regs[0]);
  if (ratio > 1.02 || regs[0] - regs[1] != 3) ++failures;
  std::printf("claim: same throughput, 3 registers freed: %s\n",
              failures == 0 ? "ok" : "FAIL");
  return failures == 0 ? 0 : 1;
}
