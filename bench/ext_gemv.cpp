// Extension experiment (beyond the paper's evaluation): GEMV y = A*x.
// Demonstrates that scalar chaining generalizes from stencils to reduction
// chains: the four interleaved row accumulators collapse into one chained
// register, and the FREP body collapses to a single instruction.
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/gemv.hpp"

using namespace sch;
using namespace sch::bench;
using kernels::GemvVariant;

int main() {
  std::printf("Extension: GEMV y = A*x with chained reduction interleave\n");
  print_header("gemv 64x48", {"variant", "cycles", "fpu util", "fp regs",
                              "acc regs", "frep body"});
  const kernels::GemvParams p{.m = 64, .n = 48};
  int failures = 0;
  u64 cycles[2] = {0, 0};
  u32 regs[2] = {0, 0};
  int i = 0;
  for (GemvVariant v : {GemvVariant::kUnrolledAcc, GemvVariant::kChained}) {
    const kernels::BuiltKernel k = kernels::build_gemv(v, p);
    const kernels::RunResult r = kernels::run_on_simulator(k);
    if (!r.ok) {
      std::fprintf(stderr, "FATAL: %s: %s\n", k.name.c_str(), r.error.c_str());
      return 1;
    }
    print_row({kernels::gemv_variant_name(v), std::to_string(r.cycles),
               fmt(r.fpu_utilization, 3), std::to_string(k.regs.fp_regs_used),
               std::to_string(k.regs.accumulator_regs),
               v == GemvVariant::kChained ? "1 instruction" : "4 instructions"});
    cycles[i] = r.cycles;
    regs[i] = k.regs.fp_regs_used;
    ++i;
  }
  const double ratio = static_cast<double>(cycles[1]) / static_cast<double>(cycles[0]);
  std::printf("\nchained/unrolled cycle ratio: %.3f (registers: %u vs %u)\n",
              ratio, regs[1], regs[0]);
  if (ratio > 1.02 || regs[0] - regs[1] != 3) ++failures;
  std::printf("claim: same throughput, 3 registers freed: %s\n",
              failures == 0 ? "ok" : "FAIL");
  return failures == 0 ? 0 : 1;
}
