// Ablation A1: "chaining benefits are increased for functional units with
// deeper pipelines" (paper, Section II). Sweeps the FPU pipeline depth and
// compares the baseline (RAW-stalled), unrolled (depth+1 architectural
// registers) and chained (one register) schedules of a = b*(c+d).
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/vecop.hpp"

using namespace sch;
using namespace sch::bench;
using kernels::VecopVariant;

int main() {
  std::printf("Ablation: chaining benefit vs FPU pipeline depth\n");
  std::printf("vecop a = b*(c+d), n = 840, unroll = depth+1 (the FIFO capacity)\n");
  print_header("depth sweep",
               {"fpu depth", "base cyc", "chain cyc", "speedup", "unroll regs",
                "chain regs", "regs freed"});

  int failures = 0;
  double prev_speedup = 0.0;
  for (u32 depth = 1; depth <= 7; ++depth) {
    sim::SimConfig cfg;
    cfg.fpu_depth = depth;
    const kernels::VecopParams p{.n = 840, .b = 2.0, .unroll = depth + 1};

    const kernels::BuiltKernel ku = kernels::build_vecop(VecopVariant::kUnrolled, p);
    const kernels::BuiltKernel kc = kernels::build_vecop(VecopVariant::kChained, p);
    const auto rb = api::run_built(kernels::build_vecop(VecopVariant::kBaseline, p), cfg);
    const auto rc = api::run_built(kernels::build_vecop(VecopVariant::kChained, p), cfg);
    if (!rb.ok || !rc.ok) {
      std::fprintf(stderr, "FATAL at depth %u: %s%s\n", depth, rb.error.c_str(),
                   rc.error.c_str());
      return 1;
    }
    const double speedup = static_cast<double>(rb.cycles) /
                           static_cast<double>(rc.cycles);
    print_row({std::to_string(depth), std::to_string(rb.cycles),
               std::to_string(rc.cycles), fmt(speedup, 3),
               std::to_string(ku.regs.accumulator_regs),
               std::to_string(kc.regs.accumulator_regs),
               std::to_string(ku.regs.accumulator_regs - kc.regs.accumulator_regs)});
    if (speedup <= prev_speedup) ++failures;
    prev_speedup = speedup;
  }
  std::printf("\nclaim check: speedup grows monotonically with depth: %s\n",
              failures == 0 ? "ok" : "FAIL");
  std::printf("register savings grow linearly with depth "
              "(pipeline registers replace architectural ones)\n");
  return failures == 0 ? 0 : 1;
}
