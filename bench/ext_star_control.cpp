// Extension experiment: negative control. star3d1r has only 7 coefficients,
// which fit the register file comfortably WITHOUT chaining -- so Base--'s
// reload penalty vanishes and the chaining advantage should collapse. This
// brackets the paper's claim: chaining pays off exactly when codes are
// register-limited.
#include <cstdio>

#include "bench_common.hpp"

using namespace sch;
using namespace sch::bench;

namespace {

// Chaining vs Base-- at the SAME writeback method (explicit stores), so the
// delta isolates the register-pressure effects: coefficient reloads and the
// extra accumulator initialization.
double speedup_chain_vs_basemm(StencilKind kind) {
  const kernels::StencilParams p{};
  const auto mm = api::run_built(kernels::build_stencil(kind, StencilVariant::kBaseMM, p));
  const auto ch = api::run_built(kernels::build_stencil(kind, StencilVariant::kChaining, p));
  if (!mm.ok || !ch.ok) {
    std::fprintf(stderr, "FATAL: %s%s\n", mm.error.c_str(), ch.error.c_str());
    std::exit(1);
  }
  return static_cast<double>(mm.cycles) / static_cast<double>(ch.cycles);
}

} // namespace

int main() {
  std::printf("Extension: register-pressure negative control\n");
  std::printf("Chaining vs Base-- speedup (both store explicitly); box3d1r "
              "is register-limited (27 coefficients), star3d1r is not (7)\n");
  print_header("control", {"stencil", "coefficients", "speedup"});

  const double box = speedup_chain_vs_basemm(StencilKind::kBox3d1r);
  const double star = speedup_chain_vs_basemm(StencilKind::kStar3d1r);
  print_row({"box3d1r", "27", fmt(100 * (box - 1), 1) + "%"});
  print_row({"star3d1r", "7", fmt(100 * (star - 1), 1) + "%"});

  const bool ok = box > star + 0.02;
  std::printf("\nclaim: the chaining advantage shrinks when coefficients fit "
              "the RF anyway: %s (%.1f%% -> %.1f%%)\n",
              ok ? "ok" : "FAIL", 100 * (box - 1), 100 * (star - 1));
  return ok ? 0 : 1;
}
