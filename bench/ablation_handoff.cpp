// Ablation A3: strict vs same-cycle chain-FIFO handoff. The paper's Fig. 1c
// trace shows a one-cycle bubble (the orange issue slot) where a
// conservative RTL forbids a producer's push into a slot freed by a pop in
// the same cycle. Our default model allows the handoff (full throughput);
// `strict_chain_handoff` reproduces the conservative behaviour. This bench
// brackets the cost of that design choice.
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/stencil.hpp"
#include "kernels/vecop.hpp"

using namespace sch;
using namespace sch::bench;

int main() {
  std::printf("Ablation: chain-FIFO handoff policy (Fig. 1c orange-slot bubble)\n");
  print_header("handoff policy",
               {"kernel", "fast cyc", "strict cyc", "overhead", "fast util",
                "strict util"});

  sim::SimConfig fast;
  sim::SimConfig strict;
  strict.strict_chain_handoff = true;

  int failures = 0;
  auto compare = [&](const kernels::BuiltKernel& k) {
    const auto rf = api::run_built(k, fast);
    const auto rs = api::run_built(k, strict);
    if (!rf.ok || !rs.ok) {
      std::fprintf(stderr, "FATAL: %s: %s%s\n", k.name.c_str(), rf.error.c_str(),
                   rs.error.c_str());
      std::exit(1);
    }
    const double overhead = static_cast<double>(rs.cycles) /
                            static_cast<double>(rf.cycles) - 1.0;
    print_row({k.name, std::to_string(rf.cycles), std::to_string(rs.cycles),
               fmt(100 * overhead, 1) + "%", fmt(rf.fpu_utilization, 3),
               fmt(rs.fpu_utilization, 3)});
    // Strict mode must cost cycles but never change results (both validated).
    if (rs.cycles < rf.cycles) ++failures;
  };

  compare(kernels::build_vecop(kernels::VecopVariant::kChained, {.n = 1024}));
  compare(kernels::build_vecop(kernels::VecopVariant::kChainedFrep, {.n = 1024}));
  compare(kernels::build_stencil(kernels::StencilKind::kBox3d1r,
                                 kernels::StencilVariant::kChainingPlus, {}));
  compare(kernels::build_stencil(kernels::StencilKind::kJ3d27pt,
                                 kernels::StencilVariant::kChainingPlus, {}));

  std::printf("\nboth policies produce bit-identical results (validated); the "
              "conservative RTL pays the bubbles: %s\n",
              failures == 0 ? "ok" : "FAIL");
  return failures == 0 ? 0 : 1;
}
