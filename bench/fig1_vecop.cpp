// Reproduces Fig. 1: the vector operation a = b*(c+d) in the baseline (a),
// unrolled (b) and chaining (c) variants, plus chaining+frep. Reports cycles,
// FPU utilization, RAW stalls and architectural register cost -- the paper's
// qualitative claims: the baseline wastes 3 cycles per dependency (= FPU
// pipeline depth); unrolling removes them at +3 registers; chaining removes
// them at +0 registers. The variant sweep comes straight from the kernel
// registry (the same path `schsim run` uses).
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/registry.hpp"

using namespace sch;
using namespace sch::bench;

int main() {
  const kernels::KernelEntry* vecop = kernels::Registry::instance().find("vecop");
  if (vecop == nullptr) {
    std::fprintf(stderr, "FATAL: vecop not in the kernel registry\n");
    return 1;
  }
  const kernels::SizeMap sizes = vecop->resolve_sizes({{"n", 1024}});
  std::printf("Fig. 1: a = b*(c+d), n=%lld doubles, SSR0/1 reads + SSR2 write\n",
              static_cast<long long>(sizes.at("n")));

  print_header("vecop variants",
               {"variant", "cycles", "fpu util", "raw stalls", "fp regs",
                "acc regs", "chained"});

  struct Row {
    std::string variant;
    api::RunReport r;
    kernels::RegisterReport regs;
  };
  std::vector<Row> rows;
  for (const std::string& variant : vecop->variants) {
    api::RunRequest request = api::RunRequest::for_kernel("vecop", variant, sizes);
    Row row{variant, api::run(request), {}};
    row.regs = row.r.regs;
    if (!row.r.ok) {
      std::fprintf(stderr, "FATAL: %s\n", row.r.error.c_str());
      return 1;
    }
    print_row({variant, std::to_string(row.r.cycles),
               fmt(row.r.fpu_utilization, 3), std::to_string(row.r.perf.stall_fp_raw),
               std::to_string(row.regs.fp_regs_used),
               std::to_string(row.regs.accumulator_regs),
               std::to_string(row.regs.chained_regs)});
    rows.push_back(std::move(row));
  }

  if (rows.size() < 4) {
    std::fprintf(stderr, "FATAL: vecop registry entry lost a variant\n");
    return 1;
  }
  const Row& base = rows[0];
  const Row& unrolled = rows[1];
  const Row& chained = rows[2];
  const Row& frep = rows[3];
  const u32 n = static_cast<u32>(sizes.at("n"));

  std::printf("\npaper claims vs measured:\n");
  const double stalls_per_elem =
      static_cast<double>(base.r.perf.stall_fp_raw) / n;
  std::printf("  [%s] baseline wastes ~3 cycles per element on the fadd->fmul RAW "
              "(measured %.2f)\n",
              stalls_per_elem > 2.5 ? "ok" : "FAIL", stalls_per_elem);
  std::printf("  [%s] unrolling removes the stalls (measured %llu)\n",
              unrolled.r.perf.stall_fp_raw == 0 ? "ok" : "FAIL",
              static_cast<unsigned long long>(unrolled.r.perf.stall_fp_raw));
  std::printf("  [%s] chaining matches unrolled cycles (%llu vs %llu)\n",
              chained.r.cycles <= unrolled.r.cycles * 102 / 100 ? "ok" : "FAIL",
              static_cast<unsigned long long>(chained.r.cycles),
              static_cast<unsigned long long>(unrolled.r.cycles));
  std::printf("  [%s] chaining saves the 3 FIFO registers (%u vs %u)\n",
              unrolled.regs.fp_regs_used - chained.regs.fp_regs_used == 3 ? "ok" : "FAIL",
              chained.regs.fp_regs_used, unrolled.regs.fp_regs_used);
  std::printf("  [%s] chaining+frep reaches near-ideal utilization (%.3f)\n",
              frep.r.fpu_utilization > 0.95 ? "ok" : "FAIL", frep.r.fpu_utilization);
  const double speedup = static_cast<double>(base.r.cycles) /
                         static_cast<double>(chained.r.cycles);
  std::printf("  chaining speedup over baseline: %.2fx\n", speedup);
  return 0;
}
