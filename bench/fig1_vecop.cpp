// Reproduces Fig. 1: the vector operation a = b*(c+d) in the baseline (a),
// unrolled (b) and chaining (c) variants, plus chaining+frep. Reports cycles,
// FPU utilization, RAW stalls and architectural register cost -- the paper's
// qualitative claims: the baseline wastes 3 cycles per dependency (= FPU
// pipeline depth); unrolling removes them at +3 registers; chaining removes
// them at +0 registers.
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/vecop.hpp"

using namespace sch;
using namespace sch::bench;
using kernels::VecopVariant;

int main() {
  const kernels::VecopParams p{.n = 1024, .b = 2.0};
  std::printf("Fig. 1: a = b*(c+d), n=%u doubles, SSR0/1 reads + SSR2 write\n", p.n);

  print_header("vecop variants",
               {"variant", "cycles", "fpu util", "raw stalls", "fp regs",
                "acc regs", "chained"});

  struct Row {
    VecopVariant v;
    kernels::RunResult r;
    kernels::RegisterReport regs;
  };
  std::vector<Row> rows;
  for (VecopVariant v :
       {VecopVariant::kBaseline, VecopVariant::kUnrolled, VecopVariant::kChained,
        VecopVariant::kChainedFrep}) {
    const kernels::BuiltKernel k = kernels::build_vecop(v, p);
    Row row{v, kernels::run_on_simulator(k), k.regs};
    if (!row.r.ok) {
      std::fprintf(stderr, "FATAL: %s: %s\n", k.name.c_str(), row.r.error.c_str());
      return 1;
    }
    print_row({kernels::vecop_variant_name(v), std::to_string(row.r.cycles),
               fmt(row.r.fpu_utilization, 3), std::to_string(row.r.perf.stall_fp_raw),
               std::to_string(row.regs.fp_regs_used),
               std::to_string(row.regs.accumulator_regs),
               std::to_string(row.regs.chained_regs)});
    rows.push_back(std::move(row));
  }

  const Row& base = rows[0];
  const Row& unrolled = rows[1];
  const Row& chained = rows[2];
  const Row& frep = rows[3];

  std::printf("\npaper claims vs measured:\n");
  const double stalls_per_elem =
      static_cast<double>(base.r.perf.stall_fp_raw) / p.n;
  std::printf("  [%s] baseline wastes ~3 cycles per element on the fadd->fmul RAW "
              "(measured %.2f)\n",
              stalls_per_elem > 2.5 ? "ok" : "FAIL", stalls_per_elem);
  std::printf("  [%s] unrolling removes the stalls (measured %llu)\n",
              unrolled.r.perf.stall_fp_raw == 0 ? "ok" : "FAIL",
              static_cast<unsigned long long>(unrolled.r.perf.stall_fp_raw));
  std::printf("  [%s] chaining matches unrolled cycles (%llu vs %llu)\n",
              chained.r.cycles <= unrolled.r.cycles * 102 / 100 ? "ok" : "FAIL",
              static_cast<unsigned long long>(chained.r.cycles),
              static_cast<unsigned long long>(unrolled.r.cycles));
  std::printf("  [%s] chaining saves the 3 FIFO registers (%u vs %u)\n",
              unrolled.regs.fp_regs_used - chained.regs.fp_regs_used == 3 ? "ok" : "FAIL",
              chained.regs.fp_regs_used, unrolled.regs.fp_regs_used);
  std::printf("  [%s] chaining+frep reaches near-ideal utilization (%.3f)\n",
              frep.r.fpu_utilization > 0.95 ? "ok" : "FAIL", frep.r.fpu_utilization);
  const double speedup = static_cast<double>(base.r.cycles) /
                         static_cast<double>(chained.r.cycles);
  std::printf("  chaining speedup over baseline: %.2fx\n", speedup);
  return 0;
}
