// Reproduces Fig. 3 (left): FPU utilization for box3d1r and j3d27pt in all
// five code variants. Paper values are the decoded bar labels; "shape" to
// reproduce: Base-- < Base- < Base <= Chaining < Chaining+, with Chaining+
// above 0.93.
#include <cstdio>

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace sch;
using namespace sch::bench;

int main() {
  std::printf("Fig. 3 (left): FPU utilization, 2 stencils x 5 variants\n");
  std::printf("grid 12^3 (1000 interior points), f64, Snitch-like core "
              "(3-stage FPU, 32-bank TCDM, 3 SSRs)\n");

  const PaperRef ref;
  const auto sweep = run_stencil_sweep();

  for (StencilKind kind : kKinds) {
    print_header(std::string(kernels::stencil_kind_name(kind)) + " utilization",
                 {"variant", "paper", "measured", "delta", "cycles", "fpu ops"});
    for (StencilVariant v : kVariants) {
      const SweepEntry& e = find_entry(sweep, kind, v);
      const double paper = ref.util(kind, variant_index(v));
      const double measured = e.run.fpu_utilization;
      print_row({kernels::stencil_variant_name(v), fmt(paper, 2), fmt(measured, 3),
                 fmt(measured - paper, 3), std::to_string(e.run.cycles),
                 std::to_string(e.run.perf.fpu_ops)});
    }
  }

  // Shape checks the paper's narrative depends on.
  int failures = 0;
  for (StencilKind kind : kKinds) {
    const auto& mm = find_entry(sweep, kind, StencilVariant::kBaseMM);
    const auto& base = find_entry(sweep, kind, StencilVariant::kBase);
    const auto& ch = find_entry(sweep, kind, StencilVariant::kChaining);
    const auto& chp = find_entry(sweep, kind, StencilVariant::kChainingPlus);
    auto check = [&](bool ok, const char* what) {
      std::printf("  [%s] %s (%s)\n", ok ? "ok" : "FAIL", what,
                  kernels::stencil_kind_name(kind));
      if (!ok) ++failures;
    };
    check(chp.run.fpu_utilization > base.run.fpu_utilization,
          "Chaining+ beats Base");
    // Model residual (see EXPERIMENTS.md): our FREP-replayed Base escapes
    // issue overhead the RTL partially pays, so plain Chaining trails Base
    // slightly here where the paper has them level; the bound documents it.
    check(ch.run.fpu_utilization >= base.run.fpu_utilization - 0.04,
          "Chaining within 4% of Base (paper: level)");
    check(base.run.fpu_utilization > mm.run.fpu_utilization,
          "Base beats Base--");
    check(chp.run.fpu_utilization > 0.93, "Chaining+ exceeds 0.93 (paper: >93%)");
  }
  std::printf("\nshape checks: %s\n", failures == 0 ? "all passed" : "FAILURES");
  return failures == 0 ? 0 : 1;
}
