#include "fuzz/fuzz.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

namespace sch::fuzz {

namespace {

std::string hex(u64 v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

void write_reproducers(const std::string& dir, const CampaignFailure& f,
                       std::ostream& log) {
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    log << "  (cannot create repro dir '" << dir << "': " << ec.message()
        << ")\n";
    return;
  }
  const std::string stem = dir + "/fuzz_" + hex(f.seed);
  {
    std::ofstream out(stem + ".json");
    out << spec_to_json(f.spec).dump(2) << "\n";
  }
  for (u32 h = 0; h < f.spec.num_harts; ++h) {
    std::ofstream out(stem + "_hart" + std::to_string(h) + ".s");
    out << render_asm(f.spec, h);
  }
  log << "  reproducers: " << stem << ".json (+" << f.spec.num_harts
      << " .s)\n";
}

} // namespace

u64 run_seed(u64 campaign_seed, u32 run_index) {
  return mix_seed(campaign_seed, 0xC0FFEEULL + run_index);
}

CampaignResult run_campaign(const CampaignOptions& options, std::ostream& log) {
  CampaignResult result;
  result.runs = options.runs;
  for (u32 i = 0; i < options.runs; ++i) {
    const u64 seed = run_seed(options.seed, i);
    const ProgramSpec spec = generate_spec(seed, options.gen);
    api::RunReport report = run_spec(spec, options.exec);
    if (report.ok) continue;

    ++result.failures;
    log << "FAIL [" << api::failure_kind_name(report.failure.kind)
        << "] run " << i << " seed 0x" << hex(seed) << ": " << report.error
        << "\n";

    CampaignFailure failure;
    failure.seed = seed;
    failure.spec = spec;
    if (options.minimize) {
      const api::FailureKind kind = report.failure.kind;
      MinimizeStats stats;
      failure.spec = minimize(
          spec,
          [&](const ProgramSpec& candidate) {
            const api::RunReport r = run_spec(candidate, options.exec);
            return !r.ok && r.failure.kind == kind;
          },
          &stats);
      log << "  minimized " << stats.initial_blocks << " -> "
          << stats.final_blocks << " blocks (" << stats.probes
          << " probes)\n";
      report = run_spec(failure.spec, options.exec);
    }
    failure.report = std::move(report);
    write_reproducers(options.repro_dir, failure, log);
    result.failed.push_back(std::move(failure));
  }
  return result;
}

} // namespace sch::fuzz
