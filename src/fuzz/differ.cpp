#include "fuzz/fuzz.hpp"

#include <algorithm>
#include <exception>
#include <sstream>

#include "api/engine.hpp"

namespace sch::fuzz {

namespace {

std::string seed_label(u64 seed) {
  std::ostringstream os;
  os << "fuzz/0x" << std::hex << seed;
  return os.str();
}

} // namespace

api::RunReport run_spec(const ProgramSpec& spec, const FuzzOptions& options) {
  api::RunRequest req;
  req.label = seed_label(spec.seed);
  req.engine = options.engine;
  req.validation = api::Validation::kNone;
  req.lockstep_compare_memory = options.engine == api::EngineSel::kBoth;
  req.config.max_cycles = options.max_cycles;
  req.config.deadlock_cycles = options.deadlock_cycles;
  req.config.max_wall_ms = options.max_wall_ms;
  try {
    req.programs = materialize(spec);
  } catch (const std::exception& e) {
    // A throwing generator is a fuzzer bug, but it must still surface as a
    // classified failed report, not an abort of the campaign.
    api::RunReport r;
    r.name = req.label;
    r.engine = options.engine;
    r.ok = false;
    r.error = std::string("generator exception: ") + e.what();
    r.failure.kind = api::FailureKind::kInternal;
    return r;
  }
  req.config.num_cores = static_cast<u32>(req.programs.size());
  api::Engine engine;
  return engine.run(req);
}

ProgramSpec minimize(const ProgramSpec& spec,
                     const std::function<bool(const ProgramSpec&)>& still_fails,
                     MinimizeStats* stats) {
  // Flatten the per-hart block lists into one item sequence so ddmin can
  // remove blocks across hart boundaries; rebuilding keeps num_harts (the
  // cluster shape is part of the reproducer, even when a hart goes empty).
  struct Item {
    u32 hart;
    BlockSpec block;
  };
  std::vector<Item> items;
  for (u32 h = 0; h < spec.harts.size(); ++h) {
    for (const BlockSpec& blk : spec.harts[h]) items.push_back({h, blk});
  }

  const auto rebuild = [&](const std::vector<Item>& keep) {
    ProgramSpec s;
    s.seed = spec.seed;
    s.num_harts = spec.num_harts;
    s.harts.assign(spec.num_harts, {});
    for (const Item& it : keep) s.harts[it.hart].push_back(it.block);
    return s;
  };

  MinimizeStats local;
  MinimizeStats& st = stats != nullptr ? *stats : local;
  st.initial_blocks = items.size();

  const auto probe = [&](const std::vector<Item>& keep) {
    ++st.probes;
    return still_fails(rebuild(keep));
  };

  // Classic ddmin: try dropping each chunk (keeping its complement); on
  // success restart with the reduced set at coarser granularity.
  usize chunks = 2;
  while (items.size() >= 2 && chunks <= items.size()) {
    bool reduced = false;
    const usize chunk_len = (items.size() + chunks - 1) / chunks;
    for (usize start = 0; start < items.size(); start += chunk_len) {
      std::vector<Item> keep;
      keep.reserve(items.size());
      for (usize i = 0; i < items.size(); ++i) {
        if (i < start || i >= std::min(start + chunk_len, items.size())) {
          keep.push_back(items[i]);
        }
      }
      if (keep.size() < items.size() && probe(keep)) {
        items = std::move(keep);
        chunks = std::max<usize>(chunks - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunks >= items.size()) break;
      chunks = std::min(items.size(), chunks * 2);
    }
  }

  st.final_blocks = items.size();
  return rebuild(items);
}

} // namespace sch::fuzz
