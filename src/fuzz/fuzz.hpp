// Differential fuzzing of the engine: a seeded, constrained random-program
// generator over the full ISA surface (Xchain/Xssr/Xfrep/Xdma + RV32IMFD),
// an ISS-vs-cycle differential executor, and a delta-debugging minimizer.
//
// Programs are built from independently-legal *blocks*. Every block leaves
// the machine clean (chain mask 0, SSR disabled, all chain FIFOs drained,
// DMA transfers polled to completion) and touches only scratch memory it
// allocated itself, so any subset of blocks is still a legal program -- the
// property that makes ddmin over blocks sound. The generator enforces the
// legality constraints the ISA demands by construction:
//   * chain blocks keep at most one outstanding value per chained register
//     and push strictly before the pop in program order (the in-order,
//     frozen-pipeline core deadlocks-by-design otherwise, cf. DESIGN.md);
//   * frep bodies are FP-only and never contain chain traffic;
//   * SSR streams are consumed with the exact element count their
//     bound/repeat shape produces, then disabled behind the CSR barrier;
//   * DMA copies stay inside the hart's scratch partitions and are polled
//     (dmstat) to completion before the destination is read;
//   * multi-hart specs give each hart a disjoint TCDM/main-memory partition
//     (the ISS runs harts sequentially, so cross-hart communication through
//     shared memory is out of scope for the differential check);
//   * no block reads cycle/instret-style counter CSRs (legitimately
//     engine-dependent) and no block uses fcvt.w.d on computed values
//     (out-of-range conversion is host/compiler dependent).
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "api/run_report.hpp"
#include "api/run_request.hpp"
#include "asm/program.hpp"
#include "common/status.hpp"
#include "scenario/json.hpp"

namespace sch::fuzz {

/// Deterministic 64-bit PRNG (splitmix64-scrambled xorshift64*). Stable
/// across platforms and hosts: a seed printed by CI reproduces anywhere.
class Rng {
 public:
  explicit Rng(u64 seed) {
    u64 z = seed + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    s_ = z ^ (z >> 31);
    if (s_ == 0) s_ = 0x9E3779B97F4A7C15ULL;
  }
  u64 next() {
    s_ ^= s_ >> 12;
    s_ ^= s_ << 25;
    s_ ^= s_ >> 27;
    return s_ * 0x2545F4914F6CDD1DULL;
  }
  /// Uniform in [lo, hi], inclusive.
  u32 range(u32 lo, u32 hi) {
    return lo + static_cast<u32>(next() % (static_cast<u64>(hi - lo) + 1));
  }
  bool chance(u32 percent) { return range(1, 100) <= percent; }
  /// Tame double on a 1/256 grid in [-8, 8]: keeps products bounded over a
  /// block's op chain while exercising the full FP datapath bit-exactly.
  double f64() { return (static_cast<double>(range(0, 4096)) - 2048.0) / 256.0; }

 private:
  u64 s_;
};

/// Deterministic seed derivation (hart seeds, per-run campaign seeds).
inline u64 mix_seed(u64 a, u64 b) {
  Rng r(a ^ (b * 0x9E3779B97F4A7C15ULL) ^ 0x6A09E667F3BCC909ULL);
  return r.next();
}

/// The generator's block vocabulary; each kind covers one ISA area.
enum class BlockKind : u8 {
  kIntAlu,     // RV32I register/immediate ALU ops
  kIntMulDiv,  // mul/divu/remu, including divide-by-zero
  kMemory,     // TCDM loads/stores (lw/sw/fld/fsd) in a scratch buffer
  kBranchLoop, // counted back-branch loop + forward skips
  kFpCompute,  // fadd/fmul/fmadd/fdiv/fsqrt/fsgnj/fmin/fmax/feq/fcvt.d.w
  kChain,      // balanced chain push/pop traffic over CSR 0x7C3
  kFrep,       // frep.o hardware loop with an FP-only body
  kSsr,        // 1-D SSR read (+optional repeat / write stream / frep body)
  kDma,        // dmsrc/dmdst/dmcpy[2d] + dmstat poll, TCDM<->main staging
  kCsr,        // mhartid/mnumharts/chain-mask CSR reads
  kCount,
};

const char* block_kind_name(BlockKind kind);
/// Inverse of block_kind_name(); false on unknown names.
bool parse_block_kind(const std::string& name, BlockKind& out);

/// One block: its kind plus the private seed all its choices derive from.
/// A block's emission depends only on (kind, seed, hart, position), so
/// removing other blocks never changes what this block does.
struct BlockSpec {
  BlockKind kind = BlockKind::kIntAlu;
  u64 seed = 0;
};

/// A complete fuzz case: one block list per hart.
struct ProgramSpec {
  u64 seed = 0;       // campaign seed this spec was generated from
  u32 num_harts = 1;
  std::vector<std::vector<BlockSpec>> harts;

  [[nodiscard]] usize total_blocks() const {
    usize n = 0;
    for (const auto& h : harts) n += h.size();
    return n;
  }
};

struct GenConfig {
  u32 min_blocks = 2;  // per hart
  u32 max_blocks = 6;  // per hart
  u32 max_harts = 4;   // harts drawn from {1, 1, 2, max_harts}
};

/// Draw a spec from `seed` (pure function of its arguments).
ProgramSpec generate_spec(u64 seed, const GenConfig& config = {});

/// Build one Program per hart. Hart h's data segment sits at
/// kTcdmBase + h * (kTcdmSize / num_harts); DMA main-memory staging is
/// partitioned the same way. Throws only on generator bugs.
std::vector<Program> materialize(const ProgramSpec& spec);

/// Render hart `hart`'s program as assembler text (the `.s` reproducer):
/// canonical disassembly plus .dword/.zero data directives. Branch targets
/// are numeric byte offsets, which the assembler round-trips.
std::string render_asm(const ProgramSpec& spec, u32 hart);

/// Spec <-> JSON (the machine-readable reproducer format; seeds are hex
/// strings so the full u64 range survives the i64 JSON number type).
scenario::Json spec_to_json(const ProgramSpec& spec);
Status spec_from_json(const scenario::Json& json, ProgramSpec& out);

/// Differential-execution budgets. Generated programs are small; these
/// bounds turn any wedge into a fast failed report instead of a hang.
struct FuzzOptions {
  api::EngineSel engine = api::EngineSel::kBoth;
  u64 max_cycles = 2'000'000;
  u64 deadlock_cycles = 20'000;
  u64 max_wall_ms = 20'000;
};

/// Run one spec through api::Engine (lockstep + full-memory compare when
/// the engine selection is kBoth). Never throws; every failure comes back
/// as a failed RunReport with a classified failure.kind.
api::RunReport run_spec(const ProgramSpec& spec, const FuzzOptions& options = {});

/// Delta-debugging (ddmin) over the spec's blocks: returns the smallest
/// found spec for which `still_fails` holds. `still_fails(spec)` must be
/// true for the input spec; the predicate is typically "run_spec fails with
/// the same failure.kind".
struct MinimizeStats {
  u32 probes = 0;          // predicate evaluations
  usize initial_blocks = 0;
  usize final_blocks = 0;
};
ProgramSpec minimize(const ProgramSpec& spec,
                     const std::function<bool(const ProgramSpec&)>& still_fails,
                     MinimizeStats* stats = nullptr);

/// A fuzzing campaign: `runs` specs drawn from per-run seeds derived off
/// `seed`, each executed differentially; failures are minimized (optional)
/// and written as .s + .json reproducers under `repro_dir`.
struct CampaignOptions {
  u64 seed = 1;
  u32 runs = 100;
  bool minimize = true;
  GenConfig gen{};
  FuzzOptions exec{};
  std::string repro_dir = ".";  // "" disables reproducer files
};

struct CampaignFailure {
  u64 seed = 0;           // per-run seed (reproduce: generate_spec(seed))
  ProgramSpec spec;       // minimized when CampaignOptions::minimize
  api::RunReport report;  // report of `spec`
};

struct CampaignResult {
  u32 runs = 0;
  u32 failures = 0;
  std::vector<CampaignFailure> failed;
};

/// Seed of run `run_index` within a campaign (printed on every failure).
u64 run_seed(u64 campaign_seed, u32 run_index);

/// Execute a campaign, logging failures/minimization progress to `log`.
CampaignResult run_campaign(const CampaignOptions& options, std::ostream& log);

} // namespace sch::fuzz
