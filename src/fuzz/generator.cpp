#include "fuzz/fuzz.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "asm/builder.hpp"
#include "isa/csr.hpp"
#include "isa/disasm.hpp"
#include "ssr/ssr_config.hpp"

namespace sch::fuzz {

const char* block_kind_name(BlockKind kind) {
  switch (kind) {
    case BlockKind::kIntAlu: return "int_alu";
    case BlockKind::kIntMulDiv: return "int_muldiv";
    case BlockKind::kMemory: return "memory";
    case BlockKind::kBranchLoop: return "branch_loop";
    case BlockKind::kFpCompute: return "fp_compute";
    case BlockKind::kChain: return "chain";
    case BlockKind::kFrep: return "frep";
    case BlockKind::kSsr: return "ssr";
    case BlockKind::kDma: return "dma";
    case BlockKind::kCsr: return "csr";
    case BlockKind::kCount: break;
  }
  return "?";
}

bool parse_block_kind(const std::string& name, BlockKind& out) {
  for (u32 k = 0; k < static_cast<u32>(BlockKind::kCount); ++k) {
    if (name == block_kind_name(static_cast<BlockKind>(k))) {
      out = static_cast<BlockKind>(k);
      return true;
    }
  }
  return false;
}

namespace {

// Register discipline: every block may clobber any register below, so
// blocks never depend on each other's register state (they reload what
// they need from their own data). x5..x7 are block-internal temporaries
// (addresses, loop counters); the operand pools feed the random choices.
constexpr u8 kT0 = 5, kT1 = 6, kT2 = 7;
constexpr u8 kIntPool[] = {10, 11, 12, 13, 14, 15, 16, 17, 28, 29, 30, 31};
constexpr u8 kFpPool[] = {3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15};
constexpr u8 kChainRegs[] = {16, 17, 18, 19, 20, 21, 22, 23}; // f16..f23
constexpr u8 kFreeFp[] = {24, 25, 26, 27, 28, 29, 30, 31};    // pop targets

template <usize N>
u8 pick(Rng& rng, const u8 (&pool)[N]) {
  return pool[rng.next() % N];
}

/// Per-hart main-memory scratch partition for DMA staging: 256 KiB per
/// hart, 4 KiB per block position -- always inside the 4 MiB main window.
Addr main_scratch(u32 hart, u32 block_index) {
  return memmap::kMainBase + static_cast<Addr>(hart % 4) * 0x40000 +
         static_cast<Addr>(block_index % 64) * 0x1000;
}

struct BlockCtx {
  u32 hart = 0;
  u32 num_harts = 1;
  u32 index = 0;  // position in the hart's block list (label uniqueness)

  [[nodiscard]] std::string lbl(const char* tag) const {
    return "b" + std::to_string(index) + "_" + tag;
  }
};

void emit_int_alu(ProgramBuilder& b, Rng& rng) {
  const u32 seeds = rng.range(2, 4);
  for (u32 i = 0; i < seeds; ++i) {
    b.li(pick(rng, kIntPool), static_cast<i64>(static_cast<i32>(rng.next())));
  }
  const u32 n = rng.range(4, 12);
  for (u32 i = 0; i < n; ++i) {
    const u8 rd = pick(rng, kIntPool);
    const u8 rs1 = pick(rng, kIntPool);
    const u8 rs2 = pick(rng, kIntPool);
    const i32 imm = static_cast<i32>(rng.range(0, 2047)) - 1024;
    switch (rng.range(0, 11)) {
      case 0: b.add(rd, rs1, rs2); break;
      case 1: b.sub(rd, rs1, rs2); break;
      case 2: b.op_xor(rd, rs1, rs2); break;
      case 3: b.op_or(rd, rs1, rs2); break;
      case 4: b.op_and(rd, rs1, rs2); break;
      case 5: b.sll(rd, rs1, rs2); break;
      case 6: b.addi(rd, rs1, imm); break;
      case 7: b.xori(rd, rs1, imm); break;
      case 8: b.slti(rd, rs1, imm); break;
      case 9: b.sltiu(rd, rs1, imm); break;
      case 10: b.slli(rd, rs1, static_cast<i32>(rng.range(0, 31))); break;
      case 11: b.srai(rd, rs1, static_cast<i32>(rng.range(0, 31))); break;
    }
  }
}

void emit_int_muldiv(ProgramBuilder& b, Rng& rng) {
  const u32 seeds = rng.range(2, 3);
  for (u32 i = 0; i < seeds; ++i) {
    b.li(pick(rng, kIntPool), static_cast<i64>(static_cast<i32>(rng.next())));
  }
  if (rng.chance(30)) b.li(pick(rng, kIntPool), 0);  // seed a zero divisor
  const u32 n = rng.range(3, 8);
  for (u32 i = 0; i < n; ++i) {
    const u8 rd = pick(rng, kIntPool);
    const u8 rs1 = pick(rng, kIntPool);
    const u8 rs2 = pick(rng, kIntPool);
    switch (rng.range(0, 2)) {
      case 0: b.mul(rd, rs1, rs2); break;
      case 1: b.divu(rd, rs1, rs2); break;  // x/0 == all-ones (RV spec)
      case 2: b.remu(rd, rs1, rs2); break;
    }
  }
}

void emit_memory(ProgramBuilder& b, Rng& rng) {
  b.data_align(8);
  const Addr buf = b.data_zero(64);
  b.la(kT0, buf);
  if (rng.chance(50)) {
    b.li(pick(rng, kIntPool), static_cast<i64>(static_cast<i32>(rng.next())));
  }
  const u32 n = rng.range(3, 8);
  for (u32 i = 0; i < n; ++i) {
    switch (rng.range(0, 3)) {
      case 0: b.sw(pick(rng, kIntPool), kT0, 4 * static_cast<i32>(rng.range(0, 15))); break;
      case 1: b.lw(pick(rng, kIntPool), kT0, 4 * static_cast<i32>(rng.range(0, 15))); break;
      case 2: b.fsd(pick(rng, kFpPool), kT0, 8 * static_cast<i32>(rng.range(0, 7))); break;
      case 3: b.fld(pick(rng, kFpPool), kT0, 8 * static_cast<i32>(rng.range(0, 7))); break;
    }
  }
}

void emit_branch_loop(ProgramBuilder& b, Rng& rng, const BlockCtx& ctx) {
  const u32 trip = rng.range(1, 6);
  const std::string head = ctx.lbl("loop");
  b.li(kT2, trip);
  b.li(kT0, 0);
  b.label(head);
  const u32 body = rng.range(1, 3);
  for (u32 i = 0; i < body; ++i) {
    const u8 rd = pick(rng, kIntPool);
    if (rng.chance(50)) {
      b.add(kT0, kT0, kT2);
    } else {
      b.addi(rd, rd, static_cast<i32>(rng.range(0, 15)));
    }
  }
  b.addi(kT2, kT2, -1);
  b.bnez(kT2, head);
  if (rng.chance(50)) {
    // Forward skip: beq on equal registers is always taken.
    const std::string skip = ctx.lbl("skip");
    const u8 r = pick(rng, kIntPool);
    b.beq(kT0, kT0, skip);
    b.addi(r, r, 1);  // skipped
    b.label(skip);
  }
}

void emit_fp_compute(ProgramBuilder& b, Rng& rng) {
  const u32 k = rng.range(2, 4);
  std::vector<double> consts;
  consts.reserve(k);
  for (u32 i = 0; i < k; ++i) consts.push_back(rng.f64());
  b.data_align(8);
  const Addr cbase = b.data_f64(consts);
  b.la(kT0, cbase);
  for (u32 i = 0; i < k; ++i) b.fld(kFpPool[i], kT0, 8 * static_cast<i32>(i));
  const u32 n = rng.range(3, 10);
  u8 last = kFpPool[0];
  for (u32 i = 0; i < n; ++i) {
    const u8 rd = pick(rng, kFpPool);
    const u8 a = pick(rng, kFpPool);
    const u8 c = pick(rng, kFpPool);
    const u8 d = pick(rng, kFpPool);
    switch (rng.range(0, 8)) {
      case 0: b.fadd_d(rd, a, c); break;
      case 1: b.fsub_d(rd, a, c); break;
      case 2: b.fmul_d(rd, a, c); break;
      case 3: b.fmadd_d(rd, a, c, d); break;
      case 4: b.fsgnj_d(rd, a, c); break;
      case 5: b.fmin_d(rd, a, c); break;
      case 6: b.fmax_d(rd, a, c); break;
      case 7: b.fdiv_d(rd, a, c); break;  // /0 -> inf, bit-exact both engines
      case 8:
        b.fmul_d(rd, a, a);   // square: non-negative operand ...
        b.fsqrt_d(rd, rd);    // ... so fsqrt never produces a NaN
        break;
    }
    last = rd;
  }
  if (rng.chance(40)) b.feq_d(pick(rng, kIntPool), last, pick(rng, kFpPool));
  if (rng.chance(30)) b.fcvt_d_w(pick(rng, kFpPool), pick(rng, kIntPool));
  b.data_align(8);
  const Addr out = b.data_zero(16);
  b.la(kT1, out);
  b.fsd(last, kT1, 0);
  if (rng.chance(50)) b.fsd(pick(rng, kFpPool), kT1, 8);
}

void emit_chain(ProgramBuilder& b, Rng& rng) {
  // Seed non-chained sources from data, *before* enabling the mask (an fld
  // into an enabled register would be a push).
  b.data_align(8);
  const Addr cbase = b.data_f64({rng.f64(), rng.f64(), rng.f64()});
  b.la(kT0, cbase);
  b.fld(3, kT0, 0);
  b.fld(4, kT0, 8);
  b.fld(5, kT0, 16);
  const u32 nch = rng.range(1, 2);
  const u8 c0 = pick(rng, kChainRegs);
  u8 c1 = pick(rng, kChainRegs);
  while (nch == 2 && c1 == c0) c1 = pick(rng, kChainRegs);
  const u32 mask = (1u << c0) | (nch == 2 ? (1u << c1) : 0u);
  b.li(kT1, static_cast<i64>(mask));
  b.csrw(isa::csr::kChainMask, kT1);
  const u8 srcs[] = {3, 4, 5};
  u8 last = 3;
  // Balanced push/pop traffic: <= 1 outstanding value per chained register,
  // and each push precedes its pop in program order -- the discipline that
  // keeps the in-order core deadlock-free (DESIGN.md scheduling hazard).
  const auto produce = [&](u8 c) { b.fadd_d(c, pick(rng, srcs), pick(rng, srcs)); };
  const auto consume = [&](u8 c) {
    const u8 rd = pick(rng, kFreeFp);
    b.fadd_d(rd, c, pick(rng, srcs));  // chained operand used exactly once
    last = rd;
  };
  const u32 pairs = rng.range(1, 3);
  for (u32 p = 0; p < pairs; ++p) {
    if (nch == 1) {
      produce(c0);
      consume(c0);
    } else if (rng.chance(50)) {
      produce(c0);
      consume(c0);
      produce(c1);
      consume(c1);
    } else {
      // Interleaved across two registers; still <= 1 outstanding per reg.
      produce(c0);
      produce(c1);
      consume(c0);
      consume(c1);
    }
  }
  b.csrwi(isa::csr::kChainMask, 0);  // all FIFOs drained by construction
  b.data_align(8);
  const Addr out = b.data_zero(8);
  b.la(kT1, out);
  b.fsd(last, kT1, 0);
}

void emit_frep(ProgramBuilder& b, Rng& rng) {
  b.data_align(8);
  const Addr cbase = b.data_f64({rng.f64(), rng.f64(), rng.f64(), rng.f64()});
  b.la(kT0, cbase);
  b.fld(8, kT0, 0);
  b.fld(9, kT0, 8);
  b.fld(10, kT0, 16);
  b.fld(11, kT0, 24);
  const u32 body = rng.range(1, 3);
  const u32 reps = rng.range(1, 6);
  b.li(kT2, static_cast<i64>(reps) - 1);
  b.frep_o(kT2, static_cast<i32>(body));
  for (u32 i = 0; i < body; ++i) {
    switch (rng.range(0, 2)) {  // FP-only body (frep legality)
      case 0: b.fadd_d(10, 10, 8); break;
      case 1: b.fmadd_d(11, 8, 9, 11); break;
      case 2: b.fmul_d(12, 10, 9); break;
    }
  }
  b.data_align(8);
  const Addr out = b.data_zero(24);
  b.la(kT1, out);
  b.fsd(10, kT1, 0);
  b.fsd(11, kT1, 8);
  b.fsd(12, kT1, 16);
}

void emit_ssr(ProgramBuilder& b, Rng& rng) {
  using ssr::CfgReg;
  using ssr::cfg_index;
  const u32 n = rng.range(2, 4);
  const u32 rpt = rng.chance(30) ? rng.range(1, 2) : 0;  // reads/elem - 1
  std::vector<double> elems;
  elems.reserve(n);
  for (u32 i = 0; i < n; ++i) elems.push_back(rng.f64());
  b.data_align(8);
  const Addr src = b.data_f64(elems);
  // Config registers persist across blocks, so every shape parameter is
  // written explicitly (never inherited).
  b.li(kT0, static_cast<i64>(n) - 1);
  b.scfgw(kT0, cfg_index(0, CfgReg::kBound0));
  b.li(kT0, 8);
  b.scfgw(kT0, cfg_index(0, CfgReg::kStride0));
  b.li(kT0, static_cast<i64>(rpt));
  b.scfgw(kT0, cfg_index(0, CfgReg::kRepeat));
  const bool write_stream = rpt == 0 && rng.chance(40);
  if (write_stream) {
    const Addr dst = b.data_zero(8 * n);
    b.li(kT0, static_cast<i64>(n) - 1);
    b.scfgw(kT0, cfg_index(1, CfgReg::kBound0));
    b.li(kT0, 8);
    b.scfgw(kT0, cfg_index(1, CfgReg::kStride0));
    b.li(kT0, 0);
    b.scfgw(kT0, cfg_index(1, CfgReg::kRepeat));
    b.la(kT0, dst);
    b.scfgw(kT0, cfg_index(1, CfgReg::kWptr0));  // arm 1-D write on ft1
  }
  if (rng.chance(25)) b.scfgr(pick(rng, kIntPool), cfg_index(0, CfgReg::kBound0));
  // Seed the accumulator before the streamers claim ft0/ft1/ft2.
  b.la(kT1, src);
  b.fld(20, kT1, 0);
  b.la(kT0, src);
  b.scfgw(kT0, cfg_index(0, CfgReg::kRptr0));  // arm 1-D read on ft0, last
  b.csrwi(isa::csr::kSsrEnable, 1);
  const u32 reads = n * (rpt + 1);
  if (write_stream) {
    // Each op consumes one read element and produces one write element:
    // exactly n reads and n writes, matching both shapes.
    for (u32 i = 0; i < reads; ++i) b.fadd_d(1, 0, 20);  // ft1 <- ft0 + f20
  } else if (rng.chance(50)) {
    // The paper's canonical pattern: frep body consuming the read stream.
    b.li(kT2, static_cast<i64>(reads) - 1);
    b.frep_o(kT2, 1);
    b.fadd_d(20, 20, 0);  // f20 += ft0
  } else {
    for (u32 i = 0; i < reads; ++i) b.fadd_d(20, 20, 0);
  }
  b.csrwi(isa::csr::kSsrEnable, 0);  // serializing stream-CSR write
  b.data_align(8);
  const Addr out = b.data_zero(8);
  b.la(kT1, out);
  b.fsd(20, kT1, 0);
  // The write stream's destination is deliberately not read back here: its
  // drain is only guaranteed quiescent at halt, where the lockstep memory
  // compare covers it.
}

void emit_dma(ProgramBuilder& b, Rng& rng, const BlockCtx& ctx) {
  const u32 n = rng.range(2, 8);
  std::vector<double> vals;
  vals.reserve(n);
  for (u32 i = 0; i < n; ++i) vals.push_back(rng.f64());
  b.data_align(8);
  const Addr src = b.data_f64(vals);
  const u32 bytes = 8 * n;
  const bool to_main = rng.chance(50);
  const Addr dst = to_main ? main_scratch(ctx.hart, ctx.index) : b.data_zero(bytes);
  b.la(kT0, src);
  b.dmsrc(kT0);
  b.la(kT1, dst);
  b.dmdst(kT1);
  b.li(kT2, bytes);
  b.dmcpy(10, kT2);  // a0 <- per-hart transfer id (1, 2, ... both engines)
  const std::string poll = ctx.lbl("poll");
  b.label(poll);
  b.dmstat(11, 1);   // outstanding count; retires every iteration, so the
  b.bnez(11, poll);  // spin never trips the progress watchdog
  b.la(kT1, dst);
  b.fld(22, kT1, 8 * static_cast<i32>(rng.range(0, n - 1)));
  b.data_align(8);
  const Addr out = b.data_zero(8);
  b.la(kT0, out);
  b.fsd(22, kT0, 0);
  if (rng.chance(35)) {
    // 2-D gather: rows x row_bytes with a source stride over a wider block.
    const u32 rows = rng.range(2, 3);
    const u32 row_bytes = 16;
    const i32 sstride = rng.chance(50) ? 16 : 24;
    std::vector<double> wide;
    wide.reserve(12);
    for (u32 i = 0; i < 12; ++i) wide.push_back(rng.f64());
    b.data_align(8);
    const Addr src2 = b.data_f64(wide);  // 96 B >= (rows-1)*stride + row_bytes
    const Addr dst2 = b.data_zero(rows * row_bytes);
    b.la(kT0, src2);
    b.dmsrc(kT0);
    b.la(kT1, dst2);
    b.dmdst(kT1);
    b.li(12, sstride);
    b.li(13, static_cast<i64>(row_bytes));  // packed destination
    b.dmstr(12, 13);
    b.li(kT2, static_cast<i64>(row_bytes));
    b.li(14, static_cast<i64>(rows));
    b.dmcpy2d(15, kT2, 14);
    const std::string poll2 = ctx.lbl("poll2");
    b.label(poll2);
    b.dmstat(11, 1);
    b.bnez(11, poll2);
    b.la(kT1, dst2);
    b.fld(23, kT1, 8 * static_cast<i32>(rng.range(0, rows * row_bytes / 8 - 1)));
    b.fsd(23, kT0, 0);  // kT0 still holds `out`
  }
}

void emit_csr(ProgramBuilder& b, Rng& rng) {
  b.csrr(pick(rng, kIntPool), isa::csr::kMhartid);
  b.csrr(pick(rng, kIntPool), isa::csr::kMnumharts);
  const u8 a = pick(rng, kIntPool);
  b.csrr(a, isa::csr::kMhartid);
  b.slli(a, a, static_cast<i32>(rng.range(0, 4)));
  if (rng.chance(50)) b.csrr(pick(rng, kIntPool), isa::csr::kChainMask);
  // Counter CSRs (cycle/instret) are deliberately never read: they are the
  // one architecturally-visible, legitimately engine-dependent state.
}

void emit_block(ProgramBuilder& b, const BlockSpec& blk, const BlockCtx& ctx) {
  Rng rng(blk.seed);
  switch (blk.kind) {
    case BlockKind::kIntAlu: emit_int_alu(b, rng); break;
    case BlockKind::kIntMulDiv: emit_int_muldiv(b, rng); break;
    case BlockKind::kMemory: emit_memory(b, rng); break;
    case BlockKind::kBranchLoop: emit_branch_loop(b, rng, ctx); break;
    case BlockKind::kFpCompute: emit_fp_compute(b, rng); break;
    case BlockKind::kChain: emit_chain(b, rng); break;
    case BlockKind::kFrep: emit_frep(b, rng); break;
    case BlockKind::kSsr: emit_ssr(b, rng); break;
    case BlockKind::kDma: emit_dma(b, rng, ctx); break;
    case BlockKind::kCsr: emit_csr(b, rng); break;
    case BlockKind::kCount: break;
  }
}

} // namespace

ProgramSpec generate_spec(u64 seed, const GenConfig& config) {
  ProgramSpec spec;
  spec.seed = seed;
  Rng rng(mix_seed(seed, 0xA11CE));
  const u32 max_harts = std::max<u32>(config.max_harts, 1);
  const u32 choices[4] = {1, 1, std::min<u32>(2, max_harts), max_harts};
  spec.num_harts = choices[rng.range(0, 3)];
  const u32 lo = std::max<u32>(config.min_blocks, 1);
  const u32 hi = std::max<u32>(config.max_blocks, lo);
  spec.harts.resize(spec.num_harts);
  for (u32 h = 0; h < spec.num_harts; ++h) {
    const u32 nb = rng.range(lo, hi);
    spec.harts[h].reserve(nb);
    for (u32 i = 0; i < nb; ++i) {
      BlockSpec blk;
      blk.kind = static_cast<BlockKind>(
          rng.range(0, static_cast<u32>(BlockKind::kCount) - 1));
      blk.seed = rng.next();
      spec.harts[h].push_back(blk);
    }
  }
  return spec;
}

std::vector<Program> materialize(const ProgramSpec& spec) {
  const u32 n = std::max<u32>(spec.num_harts, 1);
  std::vector<Program> programs;
  programs.reserve(n);
  for (u32 h = 0; h < n; ++h) {
    ProgramBuilder b(memmap::kTextBase,
                     memmap::kTcdmBase + h * (memmap::kTcdmSize / n));
    if (h < spec.harts.size()) {
      for (u32 i = 0; i < spec.harts[h].size(); ++i) {
        BlockCtx ctx;
        ctx.hart = h;
        ctx.num_harts = n;
        ctx.index = i;
        emit_block(b, spec.harts[h][i], ctx);
      }
    }
    b.ecall();
    programs.push_back(b.build());
  }
  return programs;
}

std::string render_asm(const ProgramSpec& spec, u32 hart) {
  const std::vector<Program> programs = materialize(spec);
  const Program& p = programs.at(hart);
  std::ostringstream os;
  os << "# fuzz reproducer: seed=0x" << std::hex << spec.seed << std::dec
     << " hart " << hart << "/" << spec.num_harts << "\n# blocks:";
  if (hart < spec.harts.size()) {
    for (const BlockSpec& blk : spec.harts[hart]) {
      os << " " << block_kind_name(blk.kind);
    }
  }
  os << "\n";
  if (p.data_base != memmap::kTcdmBase) {
    os << "# NOTE: assemble with data_base=0x" << std::hex << p.data_base
       << std::dec << " (hart partition)\n";
  }
  if (!p.data.empty()) {
    os << ".data\n";
    usize i = 0;
    while (i < p.data.size()) {
      usize z = i;
      while (z < p.data.size() && p.data[z] == 0) ++z;
      if (z - i >= 16) {  // compress long zero runs (scratch buffers)
        os << ".zero " << (z - i) << "\n";
        i = z;
        continue;
      }
      const usize chunk = std::min<usize>(8, p.data.size() - i);
      if (chunk == 8) {
        u64 v = 0;
        for (usize j = 0; j < 8; ++j) v |= static_cast<u64>(p.data[i + j]) << (8 * j);
        os << ".dword 0x" << std::hex << v << std::dec << "\n";
      } else {
        for (usize j = 0; j < chunk; ++j) {
          os << ".byte " << static_cast<u32>(p.data[i + j]) << "\n";
        }
      }
      i += chunk;
    }
  }
  os << ".text\n";
  for (const isa::Instr& in : p.instrs) os << isa::disassemble(in) << "\n";
  return os.str();
}

namespace {

std::string hex_u64(u64 v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

bool parse_hex_u64(const std::string& s, u64& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 0);
  return end != nullptr && *end == '\0';
}

} // namespace

scenario::Json spec_to_json(const ProgramSpec& spec) {
  using scenario::Json;
  Json o = Json::object();
  o.set("fuzz_spec", static_cast<i64>(1));
  o.set("seed", hex_u64(spec.seed));
  o.set("num_harts", static_cast<i64>(spec.num_harts));
  Json harts = Json::array();
  for (const auto& blocks : spec.harts) {
    Json arr = Json::array();
    for (const BlockSpec& blk : blocks) {
      Json bj = Json::object();
      bj.set("kind", std::string(block_kind_name(blk.kind)));
      bj.set("seed", hex_u64(blk.seed));
      arr.push_back(std::move(bj));
    }
    harts.push_back(std::move(arr));
  }
  o.set("harts", std::move(harts));
  return o;
}

Status spec_from_json(const scenario::Json& json, ProgramSpec& out) {
  using scenario::Json;
  if (!json.is_object()) return Status::error("fuzz spec: not a JSON object");
  const Json* seed = json.get("seed");
  const Json* num_harts = json.get("num_harts");
  const Json* harts = json.get("harts");
  if (seed == nullptr || !seed->is_string() ||
      !parse_hex_u64(seed->as_string(), out.seed)) {
    return Status::error("fuzz spec: missing/invalid 'seed' (hex string)");
  }
  if (num_harts == nullptr || !num_harts->is_integer() ||
      num_harts->as_i64() < 1 || num_harts->as_i64() > 64) {
    return Status::error("fuzz spec: missing/invalid 'num_harts'");
  }
  out.num_harts = static_cast<u32>(num_harts->as_i64());
  if (harts == nullptr || !harts->is_array() ||
      harts->items().size() != out.num_harts) {
    return Status::error("fuzz spec: 'harts' must be an array of num_harts "
                         "block lists");
  }
  out.harts.clear();
  for (const Json& arr : harts->items()) {
    if (!arr.is_array()) return Status::error("fuzz spec: hart entry not an array");
    std::vector<BlockSpec> blocks;
    for (const Json& bj : arr.items()) {
      const Json* kind = bj.get("kind");
      const Json* bseed = bj.get("seed");
      BlockSpec blk;
      if (kind == nullptr || !kind->is_string() ||
          !parse_block_kind(kind->as_string(), blk.kind)) {
        return Status::error("fuzz spec: block with missing/unknown 'kind'");
      }
      if (bseed == nullptr || !bseed->is_string() ||
          !parse_hex_u64(bseed->as_string(), blk.seed)) {
        return Status::error("fuzz spec: block with missing/invalid 'seed'");
      }
      blocks.push_back(blk);
    }
    out.harts.push_back(std::move(blocks));
  }
  return Status::ok();
}

} // namespace sch::fuzz
