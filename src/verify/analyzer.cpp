// Abstract interpretation core of the static chain-graph verifier.
//
// One `HartAnalyzer` runs a worklist fixpoint over a predecoded program with
// a constant-propagation lattice on the integer registers (mhartid and
// mnumharts pinned to the hart being analyzed, x0 pinned to zero), exact
// integer/branch semantics borrowed from exec::int_op / exec::branch_taken,
// chain-FIFO occupancy per architectural FP register, abstract SSR
// configuration blocks with affine window resolution, and latched DMA
// descriptor state. States merge at instruction granularity (join = drop to
// unknown on disagreement), so loops with data-dependent trip counts -- dmstat
// polls, barrier spins, group loops -- converge in a handful of visits
// instead of being unrolled. FREP bodies are folded closed-form: the body is
// walked once and its per-register token delta and prefix extremes are
// extrapolated across the (possibly unknown) repetition count.
//
// Memory effects (scalar accesses with statically known addresses, armed SSR
// windows, DMA descriptor windows) accumulate into per-hart footprints that
// analyze() intersects pairwise for cross-hart races, with two deliberate
// suppressions: identical replicas that never read mhartid touch identical
// addresses in the same order (benign by the cluster's determinism), and
// overlaps inside a kernel-declared `shared` region (barriers) are by design.
#include <algorithm>
#include <array>
#include <deque>
#include <optional>
#include <set>
#include <sstream>
#include <tuple>

#include "isa/csr.hpp"
#include "isa/reg.hpp"
#include "iss/exec_semantics.hpp"
#include "ssr/ssr_config.hpp"
#include "verify/verify.hpp"

namespace sch::verify {
namespace {

using isa::ExecHandler;
using isa::Instr;
using isa::Mnemonic;
using isa::PredecodedInstr;

/// Constant-propagation value: a known 32-bit constant or unknown ("top").
struct AbsVal {
  bool known = false;
  u32 v = 0;
  static AbsVal top() { return {}; }
  static AbsVal c(u32 x) { return {true, x}; }
  bool operator==(const AbsVal&) const = default;
};

AbsVal join(AbsVal a, AbsVal b) {
  return (a.known && b.known && a.v == b.v) ? a : AbsVal::top();
}

enum class Dir : u8 { kNone, kRead, kWrite, kTop };

/// Armed state of one streamer: direction plus the resolved byte window
/// [lo, hi) when every contributing config value was a known constant.
struct Stream {
  Dir dir = Dir::kNone;
  bool indirect = false;
  bool window_known = false;
  u64 lo = 0;
  u64 hi = 0;
  bool operator==(const Stream&) const = default;
};

/// Abstract mirror of one streamer's scfgw-visible configuration block.
struct StreamCfg {
  AbsVal repeat;
  AbsVal idx_cfg;
  AbsVal idx_base;
  std::array<AbsVal, ssr::kMaxDims> bounds{};
  std::array<AbsVal, ssr::kMaxDims> strides{};
  bool operator==(const StreamCfg&) const = default;
};

/// Per-instruction entry state of the abstract machine.
struct State {
  std::array<AbsVal, 32> x{};
  AbsVal ssr_en = AbsVal::c(0);
  AbsVal chain_mask = AbsVal::c(0);
  /// Chain-FIFO occupancy per FP register, clamped to capacity.
  std::array<u8, 32> lvl{};
  std::array<StreamCfg, ssr::kNumSsrs> cfg{};
  std::array<Stream, ssr::kNumSsrs> ssr{};
  AbsVal dma_src = AbsVal::c(0);
  AbsVal dma_dst = AbsVal::c(0);
  AbsVal dma_sstr = AbsVal::c(0);
  AbsVal dma_dstr = AbsVal::c(0);
  bool operator==(const State&) const = default;
};

/// One recorded memory access window of a hart (scalar, stream, or DMA).
struct FootRec {
  u64 lo = 0;
  u64 hi = 0;
  bool write = false;
  u32 idx = 0;       // instruction index that established the window
  const char* what;  // "store", "ssr read stream", "dma write", ...
};

struct HartFootprint {
  std::vector<FootRec> recs;
  bool overflow = false;  // capped; cross-hart verdicts are best-effort
};

constexpr u32 kMaxFootRecs = 4096;
/// Hard ceiling on abstract steps; the instruction-granularity merge makes
/// real programs converge in a few visits per instruction, so only a
/// pathological input can get near this.
constexpr u32 kMaxSteps = 2'000'000;

bool overlaps(u64 alo, u64 ahi, u64 blo, u64 bhi) {
  return alo < bhi && blo < ahi;
}

std::string hex(u64 v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

/// "[0x10000000,0x10000100) (x[] in tcdm)" -- window plus any declared
/// kernel regions it touches plus the address-map region.
std::string describe_window(u64 lo, u64 hi,
                            const std::vector<MemRegion>* regions) {
  std::string out = "[" + hex(lo) + "," + hex(hi) + ")";
  std::string names;
  if (regions != nullptr) {
    for (const MemRegion& r : *regions) {
      if (overlaps(lo, hi, r.base, r.base + r.bytes)) {
        if (!names.empty()) names += "+";
        names += r.name;
      }
    }
  }
  const char* map = "unmapped";
  if (lo >= memmap::kTcdmBase && hi <= memmap::kTcdmBase + memmap::kTcdmSize) {
    map = "tcdm";
  } else if (lo >= memmap::kMainBase &&
             hi <= memmap::kMainBase + memmap::kMainSize) {
    map = "main";
  }
  out += " (";
  if (!names.empty()) out += names + " in ";
  out += map;
  out += ")";
  return out;
}

bool window_mapped(u64 lo, u64 hi) {
  if (lo >= hi) return false;
  if (lo >= memmap::kTcdmBase && hi <= memmap::kTcdmBase + memmap::kTcdmSize) {
    return true;
  }
  return lo >= memmap::kMainBase && hi <= memmap::kMainBase + memmap::kMainSize;
}

/// Relative chain-FIFO trace of one register across one FREP body iteration.
struct ChainTrace {
  i64 cur = 0;
  i64 minp = 0;
  i64 maxp = 0;
  bool used = false;
};

/// Deferred producer-saturation event inside an FREP body (evaluated once
/// the entry level and repetition count are known).
struct SatEvent {
  u32 idx = 0;
  u8 reg = 0;
  i64 pre_rel = 0;  // level relative to iteration entry, before the push
};

/// Collects chain effects of an FREP body so they can be extrapolated across
/// the repetition count instead of unrolled.
struct FrepTracker {
  std::array<ChainTrace, 32> t{};
  std::vector<SatEvent> sat;
};

class HartAnalyzer {
 public:
  HartAnalyzer(const Program& p, const sim::SimConfig& cfg,
               const std::vector<MemRegion>* regions, u32 hart, u32 nharts,
               Report& rep, HartFootprint& foot)
      : p_(p), cfg_(cfg), regions_(regions), hart_(hart), nharts_(nharts),
        cap_(cfg.fpu_depth + 1), rep_(rep), foot_(foot) {}

  void run() {
    const u32 n = static_cast<u32>(p_.instrs.size());
    if (n == 0) return;
    in_.assign(n, std::nullopt);
    State init;
    for (auto& r : init.x) r = AbsVal::c(0);
    structural_frep_scan();
    merge_into(0, init, /*report_imbalance=*/false);
    u32 steps = 0;
    while (!wl_.empty()) {
      if (++steps > kMaxSteps) {
        emit(FindingKind::kAnalysisLimit, Severity::kWarning, wl_.front(), -1,
             "abstract-interpretation step budget exhausted; remaining paths "
             "unanalyzed");
        rep_.complete = false;
        return;
      }
      const u32 i = wl_.front();
      wl_.pop_front();
      on_wl_[i] = false;
      step(i);
    }
  }

 private:
  // --- findings -------------------------------------------------------------

  void emit(FindingKind kind, Severity sev, u32 idx, i32 reg,
            std::string msg) {
    // One finding per (kind, site, register); the gated-saturation diagnosis
    // additionally collapses to one per register so an unrolled producer run
    // reads as a single story.
    const u32 site = kind == FindingKind::kChainGatedSaturation ? 0 : idx;
    if (!emitted_.insert({static_cast<u8>(kind), site, reg}).second) return;
    Finding f;
    f.kind = kind;
    f.severity = sev;
    f.hart = static_cast<i32>(hart_);
    f.pc = idx < p_.instrs.size()
               ? static_cast<i64>(p_.text_base) + static_cast<i64>(idx) * 4
               : -1;
    f.reg = reg;
    f.message = std::move(msg);
    rep_.findings.push_back(std::move(f));
  }

  // --- footprints -----------------------------------------------------------

  void record_foot(u64 lo, u64 hi, bool write, u32 idx, const char* what) {
    if (lo >= hi) return;
    if (foot_.recs.size() >= kMaxFootRecs) {
      if (!foot_.overflow) {
        foot_.overflow = true;
        emit(FindingKind::kAnalysisLimit, Severity::kWarning, idx, -1,
             "memory-footprint table full; cross-hart race checking is "
             "best-effort past this point");
      }
      return;
    }
    if (foot_seen_.insert({lo, hi, write}).second) {
      foot_.recs.push_back({lo, hi, write, idx, what});
    }
  }

  // --- state plumbing -------------------------------------------------------

  static AbsVal rd_x(const State& s, u8 r) {
    return r == 0 ? AbsVal::c(0) : s.x[r];
  }
  static void wr_x(State& s, u8 r, AbsVal v) {
    if (r != 0) s.x[r] = v;
  }

  void merge_into(u32 idx, const State& s, bool report_imbalance = true) {
    if (!in_[idx].has_value()) {
      in_[idx] = s;
    } else {
      State& cur = *in_[idx];
      State merged = cur;
      for (u32 r = 0; r < 32; ++r) merged.x[r] = join(cur.x[r], s.x[r]);
      merged.ssr_en = join(cur.ssr_en, s.ssr_en);
      merged.chain_mask = join(cur.chain_mask, s.chain_mask);
      for (u32 r = 0; r < 32; ++r) {
        if (cur.lvl[r] != s.lvl[r]) {
          if (report_imbalance && chain_enabled(merged, static_cast<u8>(r))) {
            emit(FindingKind::kChainPathImbalance, Severity::kError, idx,
                 static_cast<i32>(r),
                 std::string("converging paths disagree on the chain-FIFO "
                             "occupancy of ") +
                     std::string(isa::fp_reg_name(static_cast<u8>(r))) + " (" +
                     std::to_string(cur.lvl[r]) + " vs " +
                     std::to_string(s.lvl[r]) +
                     " in-flight values): token balance depends on which "
                     "path executed");
          }
          merged.lvl[r] = std::max(cur.lvl[r], s.lvl[r]);
        }
      }
      for (u32 k = 0; k < ssr::kNumSsrs; ++k) {
        StreamCfg& mc = merged.cfg[k];
        const StreamCfg& sc = s.cfg[k];
        mc.repeat = join(mc.repeat, sc.repeat);
        mc.idx_cfg = join(mc.idx_cfg, sc.idx_cfg);
        mc.idx_base = join(mc.idx_base, sc.idx_base);
        for (u32 d = 0; d < ssr::kMaxDims; ++d) {
          mc.bounds[d] = join(mc.bounds[d], sc.bounds[d]);
          mc.strides[d] = join(mc.strides[d], sc.strides[d]);
        }
        if (!(merged.ssr[k] == s.ssr[k])) {
          Stream& ms = merged.ssr[k];
          if (ms.dir != s.ssr[k].dir) ms.dir = Dir::kTop;
          ms.window_known = false;
          ms.indirect = ms.indirect || s.ssr[k].indirect;
        }
      }
      merged.dma_src = join(cur.dma_src, s.dma_src);
      merged.dma_dst = join(cur.dma_dst, s.dma_dst);
      merged.dma_sstr = join(cur.dma_sstr, s.dma_sstr);
      merged.dma_dstr = join(cur.dma_dstr, s.dma_dstr);
      if (merged == cur) return;  // no change: fixpoint here
      cur = merged;
    }
    if (!on_wl_[idx]) {
      on_wl_[idx] = true;
      wl_.push_back(idx);
    }
  }

  // --- chain helpers --------------------------------------------------------

  bool chain_enabled(const State& s, u8 r) {
    if (chain_unknown_) return false;
    return s.chain_mask.known && ((s.chain_mask.v >> r) & 1u) != 0;
  }

  void chain_unknown_now(u32 idx) {
    if (chain_unknown_) return;
    chain_unknown_ = true;
    rep_.complete = false;
    emit(FindingKind::kAnalysisLimit, Severity::kWarning, idx, -1,
         "chain mask became statically unknown; chain token-balance checks "
         "disabled from here on");
  }

  std::string freg(u8 r) { return std::string(isa::fp_reg_name(r)); }

  // --- SSR helpers ----------------------------------------------------------

  /// Resolve the byte window of a stream armed with `dims` dimensions from
  /// base pointer `base`. Affine streams walk base + sum(stride_d * i_d);
  /// indirect streams walk the *index array* (the gathered data addresses
  /// are data-dependent and stay unknown -- a documented analysis limit).
  Stream resolve_window(const State& s, u32 k, u32 dims, AbsVal base,
                        Dir dir) {
    Stream out;
    out.dir = dir;
    const StreamCfg& c = s.cfg[k];
    out.indirect = c.idx_cfg.known && ((c.idx_cfg.v >> 16) & 1u) != 0;
    // In indirect mode the affine generator walks the *index array* (base
    // comes from the rptr/wptr write as usual); each fetched index is scaled
    // and added to idx_base to form the data address
    // (FunctionalStream::current_addr). The window below is therefore the
    // index-array window; the gathered data addresses are data-dependent and
    // stay unknown -- a documented analysis limit.
    const u64 elem = out.indirect ? 1ull << (c.idx_cfg.v & 0x3u) : 8;  // f64
    if (!base.known) return out;
    // The address generator uses *relative* stride semantics: a dim-d wrap
    // does not rewind the inner dims' travel, it only adds stride_d. The
    // pointer offset at logical index (i0..i3) is therefore sum(i_d * A_d)
    // with the effective per-tick advance A_d = stride_d +
    // sum_{e<d} bound_e * A_e (one dim-d tick follows a complete sweep of
    // the inner dims, wraps included; see AddrGen::advance).
    i64 lo = 0;
    i64 hi = 0;
    i64 inner_travel = 0;  // sum_{e<d} bound_e * A_e
    for (u32 d = 0; d < dims; ++d) {
      if (!c.bounds[d].known || !c.strides[d].known) return out;
      const i64 stride = static_cast<i64>(static_cast<i32>(c.strides[d].v));
      const i64 ticks = static_cast<i64>(c.bounds[d].v);
      const i64 advance = stride + inner_travel;  // A_d
      const i64 span = ticks * advance;
      if (span >= 0) {
        hi += span;
      } else {
        lo += span;
      }
      inner_travel += span;
    }
    out.window_known = true;
    out.lo = static_cast<u64>(static_cast<i64>(base.v) + lo);
    out.hi = static_cast<u64>(static_cast<i64>(base.v) + hi) + elem;
    return out;
  }

  /// Whether a stream's recorded window is written. An indirect stream's
  /// window covers its *index array*, which is only ever read -- the
  /// scattered/gathered data addresses are unknown.
  static bool window_written(const Stream& w) {
    return w.dir == Dir::kWrite && !w.indirect;
  }

  void arm_stream(State& s, u32 k, u32 dims, AbsVal base, Dir dir, u32 idx) {
    Stream w = resolve_window(s, k, dims, base, dir);
    const char* rw = window_written(w) ? "write" : "read";
    if (w.window_known) {
      if (!window_mapped(w.lo, w.hi)) {
        emit(FindingKind::kSsrOutOfBounds, Severity::kError, idx,
             static_cast<i32>(k),
             "ssr" + std::to_string(k) + " " + rw +
                 " stream window " + describe_window(w.lo, w.hi, regions_) +
                 " is not contained in a single mapped region "
                 "(tcdm " + describe_window(memmap::kTcdmBase,
                                            memmap::kTcdmBase +
                                                memmap::kTcdmSize, nullptr) +
                 ", main " + describe_window(memmap::kMainBase,
                                             memmap::kMainBase +
                                                 memmap::kMainSize, nullptr) +
                 ")");
      }
      for (u32 o = 0; o < ssr::kNumSsrs; ++o) {
        if (o == k) continue;
        const Stream& other = s.ssr[o];
        if (other.dir != Dir::kRead && other.dir != Dir::kWrite) continue;
        if (!other.window_known) continue;
        if (!window_written(other) && !window_written(w)) continue;
        if (overlaps(w.lo, w.hi, other.lo, other.hi)) {
          emit(FindingKind::kSsrOverlap, Severity::kError, idx,
               static_cast<i32>(k),
               "ssr" + std::to_string(k) + " " + rw +
                   " window " + describe_window(w.lo, w.hi, regions_) +
                   " overlaps concurrently armed ssr" + std::to_string(o) +
                   " " + (window_written(other) ? "write" : "read") +
                   " window " + describe_window(other.lo, other.hi, regions_) +
                   ": element order between the streams is timing-defined");
        }
      }
      record_foot(w.lo, w.hi, window_written(w), idx,
                  window_written(w) ? "ssr write stream" : "ssr read stream");
    }
    s.ssr[k] = w;
  }

  bool ssr_live(const State& s) { return s.ssr_en.known && s.ssr_en.v == 1; }

  // --- FP instruction effects ----------------------------------------------

  /// Chain/SSR effects of one FP-domain instruction. When `ft` is non-null
  /// the instruction executes inside an FREP body: chain levels update the
  /// relative trace instead of the state, and saturation events are deferred
  /// until the repetition count is applied.
  void fp_instr(u32 i, State& s, FrepTracker* ft = nullptr) {
    const Instr& in = p_.instrs[i];
    const PredecodedInstr& pr = p_.pre[i];
    const isa::MnemonicInfo& mi = *pr.mi;

    // Unique FP source registers (an instruction naming one register in
    // several slots pops it once -- Snitch semantics).
    std::array<u8, 3> srcs{};
    u32 nsrc = 0;
    auto add_src = [&](u8 r) {
      for (u32 k = 0; k < nsrc; ++k) {
        if (srcs[k] == r) return;
      }
      srcs[nsrc++] = r;
    };
    if (mi.rs1 == isa::RegClass::kFp) add_src(in.rs1);
    if (mi.rs2 == isa::RegClass::kFp) add_src(in.rs2);
    if (mi.rs3 == isa::RegClass::kFp) add_src(in.rs3);

    bool gathers = false;  // any source is a live indirect read stream
    std::array<bool, 32> popped{};
    for (u32 k = 0; k < nsrc; ++k) {
      const u8 r = srcs[k];
      if (ssr_live(s) && r < ssr::kNumSsrs && s.ssr[r].dir != Dir::kNone) {
        if (s.ssr[r].dir == Dir::kWrite) {
          emit(FindingKind::kSsrDirectionMismatch, Severity::kError, i,
               static_cast<i32>(r),
               "reads " + freg(r) +
                   " while it is armed as a write stream: the FP subsystem "
                   "faults on this at issue");
        } else if (s.ssr[r].dir == Dir::kRead) {
          gathers = gathers || s.ssr[r].indirect;
        }
        continue;  // Dir::kTop: conservatively no chain accounting either
      }
      if (!chain_enabled(s, r)) continue;
      popped[r] = true;
      if (ft != nullptr) {
        ChainTrace& t = ft->t[r];
        t.used = true;
        t.cur -= 1;
        t.minp = std::min(t.minp, t.cur);
      } else {
        if (s.lvl[r] == 0) {
          emit(FindingKind::kChainUnderflow, Severity::kError, i,
               static_cast<i32>(r),
               "pops chained " + freg(r) +
                   " with no value in flight on some path: this consumer "
                   "precedes every producer and stalls chain-empty forever "
                   "(guaranteed deadlock)");
        } else {
          s.lvl[r] -= 1;
        }
      }
    }

    if (!isa::writes_fp_rd(in.mn)) return;
    const u8 rd = in.rd;
    if (ssr_live(s) && rd < ssr::kNumSsrs && s.ssr[rd].dir != Dir::kNone) {
      if (s.ssr[rd].dir == Dir::kRead) {
        emit(FindingKind::kSsrDirectionMismatch, Severity::kError, i,
             static_cast<i32>(rd),
             "writes " + freg(rd) +
                 " while it is armed as a read stream: the FP subsystem "
                 "faults on this at issue");
      }
      return;
    }
    if (!chain_enabled(s, rd)) return;

    // Push into rd's chain FIFO at writeback.
    const bool push_only = !popped[rd];
    if (ft != nullptr) {
      ChainTrace& t = ft->t[rd];
      if (push_only && gathers) {
        ft->sat.push_back({i, rd, t.cur});
      }
      t.used = true;
      t.cur += 1;
      t.maxp = std::max(t.maxp, t.cur);
      return;
    }
    const u32 before = s.lvl[rd];
    if (push_only && gathers && before >= 2) {
      emit_gated_saturation(i, rd, before);
    }
    if (before + 1 > cap_) {
      emit(FindingKind::kChainOverflow, Severity::kError, i,
           static_cast<i32>(rd),
           "pushes value " + std::to_string(before + 1) +
               " into chained " + freg(rd) + " whose FIFO holds " +
               std::to_string(cap_) + " (fpu_depth+1) with no intervening "
               "pop: the writeback blocks chain-full, the frozen pipeline "
               "holds the issue latch, and no consumer can ever issue to "
               "drain it (guaranteed deadlock)");
      s.lvl[rd] = static_cast<u8>(cap_);
    } else {
      s.lvl[rd] = static_cast<u8>(before + 1);
    }
  }

  void emit_gated_saturation(u32 i, u8 rd, u64 before) {
    emit(FindingKind::kChainGatedSaturation, Severity::kWarning, i,
         static_cast<i32>(rd),
         "producer pushes into chained " + freg(rd) + " with " +
             std::to_string(before) +
             " values already in flight while its issue is gated on an "
             "indirect SSR gather. If the gather lags (cross-core TCDM "
             "contention), an earlier producer reaches writeback against a "
             "full FIFO; the blocked writeback freezes the FPU pipeline with "
             "this producer holding the single-entry issue latch, and the "
             "stream-gated consumer that would pop can then never issue. "
             "Chain-wait cycle: producer writeback -> chain-full -> "
             "pipeline freeze -> issue latch held -> consumer cannot issue "
             "-> no pop ever frees the FIFO. Whether the wedge closes "
             "depends on gather timing (schedule-dependent deadlock; the "
             "pinned 4-core box3d1r/star3d1r Chaining+ failures are this "
             "shape)");
  }

  // --- FREP -----------------------------------------------------------------

  /// Collect the body ranges of statically valid freps once, for the
  /// branch-into-body check.
  void structural_frep_scan() {
    for (u32 i = 0; i < p_.pre.size(); ++i) {
      if (p_.pre[i].handler != ExecHandler::kFrep) continue;
      if ((p_.pre[i].flags & isa::preflag::kFrepBodyOk) == 0) continue;
      const u32 body = static_cast<u32>(p_.instrs[i].imm);
      frep_bodies_.emplace_back(i + 1, i + body);
    }
    for (u32 i = 0; i < p_.pre.size(); ++i) {
      const ExecHandler h = p_.pre[i].handler;
      if (h != ExecHandler::kJal && h != ExecHandler::kBranch) continue;
      const u32 t = p_.pre[i].target_idx;
      if (t == Program::kNoIndex) continue;
      for (const auto& [lo, hi] : frep_bodies_) {
        if (t >= lo && t <= hi) {
          emit(FindingKind::kFrepBranchIntoBody, Severity::kError, i,
               -1,
               "branch/jump targets pc " + hex(p_.text_base + t * 4ull) +
                   ", the interior of the frep body at pc " +
                   hex(p_.text_base + (lo - 1) * 4ull) +
                   ": entering a body without the sequencer replaying it "
                   "executes the tail with unbalanced chain/stream traffic");
        }
      }
    }
  }

  /// Closed-form FREP interpretation: walk the body once collecting relative
  /// chain traces, then extrapolate across the repetition count.
  void do_frep(u32 i, State& s) {
    const Instr& in = p_.instrs[i];
    const u32 body = static_cast<u32>(in.imm);
    if ((p_.pre[i].flags & isa::preflag::kFrepBodyOk) == 0) {
      std::string why = "malformed frep body (";
      if (body == 0) {
        why += "empty body";
      } else if (i + body >= p_.instrs.size()) {
        why += "body runs past the end of the text segment";
      } else {
        why += "contains a non-FP-domain instruction or a nested frep";
      }
      why += "): both engines fault when this executes";
      emit(FindingKind::kFrepIllegalBody, Severity::kError, i, -1,
           std::move(why));
      return;  // runtime faults here; the path ends
    }
    if (body > cfg_.seq_buffer_depth) {
      emit(FindingKind::kFrepIllegalBody, Severity::kError, i, -1,
           "frep body of " + std::to_string(body) +
               " instructions exceeds seq_buffer_depth=" +
               std::to_string(cfg_.seq_buffer_depth) +
               ": the sequencer rejects it (sticky error) on the cycle "
               "engine");
      return;
    }
    const AbsVal reps_v = rd_x(s, in.rs1);
    const bool reps_known = reps_v.known;
    const u64 reps = reps_known ? static_cast<u64>(reps_v.v) + 1 : 0;
    const bool is_frep_i = in.mn == Mnemonic::kFrepI;

    FrepTracker ft;
    for (u32 b = i + 1; b <= i + body; ++b) {
      // frep.i replays each instruction `reps` times in place; frep.o
      // replays the whole body, which the relative-trace extrapolation
      // below models. For frep.i the per-instruction repetition factors
      // into the trace directly.
      if (is_frep_i && reps_known && reps > 1) {
        // Model: instr replayed reps times back to back.
        fp_instr_repeat_trace(b, s, ft, reps);
      } else if (is_frep_i && !reps_known) {
        fp_instr_repeat_trace(b, s, ft, 0);  // 0 = unknown
      } else {
        fp_instr(b, s, &ft);
      }
      // FP compares inside a body write integer registers.
      if (isa::writes_int_rd(p_.instrs[b].mn)) {
        wr_x(s, p_.instrs[b].rd, AbsVal::top());
      }
      // FP loads/stores in a body still touch memory.
      record_fp_mem(b, s);
    }

    const u64 iters = is_frep_i ? 1 : reps;  // frep.i trace already scaled
    const std::array<u8, 32> entry_lvl = s.lvl;
    for (u32 r = 0; r < 32; ++r) {
      const ChainTrace& t = ft.t[r];
      if (!t.used) continue;
      const i64 entry = s.lvl[r];
      const i64 d = t.cur;
      if (!reps_known) {
        if (d != 0) {
          emit(FindingKind::kChainFrepImbalance, Severity::kError, i,
               static_cast<i32>(r),
               "frep body changes the chain-FIFO occupancy of " + freg(r) +
                   " by " + std::to_string(d) +
                   " per iteration with a statically unknown repetition "
                   "count: the imbalance accumulates into " +
                   (d > 0 ? "overflow (wedged pipeline)"
                          : "underflow (chain-empty deadlock)"));
          s.lvl[r] = static_cast<u8>(d > 0 ? cap_ : 0);
          continue;
        }
        check_iter_extremes(i, r, entry, t);
        continue;
      }
      if (iters > 1 && d != 0) {
        emit(FindingKind::kChainFrepImbalance, Severity::kError, i,
             static_cast<i32>(r),
             "frep body changes the chain-FIFO occupancy of " + freg(r) +
                 " by " + std::to_string(d) + " per iteration across " +
                 std::to_string(iters) +
                 " iterations: token balance must be zero per iteration");
      }
      // Extremes over iteration j: level(j) = entry + j*d + prefix.
      const u64 jmax = iters > 0 ? iters - 1 : 0;
      const i64 jlo = d >= 0 ? 0 : static_cast<i64>(jmax);
      const i64 jhi = d >= 0 ? static_cast<i64>(jmax) : 0;
      if (entry + jlo * d + t.minp < 0) {
        emit(FindingKind::kChainUnderflow, Severity::kError, i,
             static_cast<i32>(r),
             "frep body pops chained " + freg(r) +
                 " below zero in-flight values: the consumer stalls "
                 "chain-empty forever (guaranteed deadlock)");
      }
      if (entry + jhi * d + t.maxp > static_cast<i64>(cap_)) {
        emit(FindingKind::kChainOverflow, Severity::kError, i,
             static_cast<i32>(r),
             "frep body pushes chained " + freg(r) + " beyond the " +
                 std::to_string(cap_) +
                 "-deep FIFO (fpu_depth+1) with no intervening pop: the "
                 "blocked writeback freezes the pipeline (guaranteed "
                 "deadlock)");
      }
      const i64 fin = entry + static_cast<i64>(iters) * d;
      s.lvl[r] = static_cast<u8>(std::clamp<i64>(fin, 0, cap_));
    }
    for (const SatEvent& e : ft.sat) {
      const i64 entry = entry_lvl[e.reg];
      const i64 d = ft.t[e.reg].cur;
      i64 worst = entry + e.pre_rel;
      if (reps_known && iters > 1) {
        worst = std::max(worst, entry + static_cast<i64>(iters - 1) * d +
                                    e.pre_rel);
      }
      if (worst >= 2) {
        emit_gated_saturation(e.idx, e.reg, static_cast<u64>(worst));
      }
    }
  }

  /// frep.i relative-trace helper: instruction at `b` replayed `reps` times
  /// (0 = statically unknown count).
  void fp_instr_repeat_trace(u32 b, State& s, FrepTracker& ft, u64 reps) {
    const Instr& in = p_.instrs[b];
    const PredecodedInstr& pr = p_.pre[b];
    const isa::MnemonicInfo& mi = *pr.mi;
    std::array<bool, 32> pops{};
    if (mi.rs1 == isa::RegClass::kFp && chain_src(s, in.rs1)) {
      pops[in.rs1] = true;
    }
    if (mi.rs2 == isa::RegClass::kFp && chain_src(s, in.rs2)) {
      pops[in.rs2] = true;
    }
    if (mi.rs3 == isa::RegClass::kFp && chain_src(s, in.rs3)) {
      pops[in.rs3] = true;
    }
    const bool pushes = isa::writes_fp_rd(in.mn) && chain_dest(s, in.rd);
    for (u32 r = 0; r < 32; ++r) {
      if (!pops[r]) continue;
      ChainTrace& t = ft.t[r];
      t.used = true;
      if (pushes && in.rd == r) {
        // pop+push per replay: needs >= 1 token, net zero.
        t.cur -= 1;
        t.minp = std::min(t.minp, t.cur);
        t.cur += 1;
        continue;
      }
      if (reps == 0) {
        emit(FindingKind::kChainFrepImbalance, Severity::kError, b,
             static_cast<i32>(r),
             "frep.i replays a pop-only consumer of chained " + freg(r) +
                 " an unknown number of times");
        continue;
      }
      t.cur -= static_cast<i64>(reps);
      t.minp = std::min(t.minp, t.cur);
    }
    if (pushes && !pops[in.rd]) {
      ChainTrace& t = ft.t[in.rd];
      t.used = true;
      if (reps == 0) {
        emit(FindingKind::kChainFrepImbalance, Severity::kError, b,
             static_cast<i32>(in.rd),
             "frep.i replays a push-only producer of chained " +
                 freg(in.rd) + " an unknown number of times");
        return;
      }
      t.cur += static_cast<i64>(reps);
      t.maxp = std::max(t.maxp, t.cur);
    }
  }

  bool chain_src(State& s, u8 r) {
    if (ssr_live(s) && r < ssr::kNumSsrs && s.ssr[r].dir != Dir::kNone) {
      return false;
    }
    return chain_enabled(s, r);
  }
  bool chain_dest(State& s, u8 r) { return chain_src(s, r); }

  void check_iter_extremes(u32 i, u32 r, i64 entry, const ChainTrace& t) {
    if (entry + t.minp < 0) {
      emit(FindingKind::kChainUnderflow, Severity::kError, i,
           static_cast<i32>(r),
           "frep body pops chained " + freg(static_cast<u8>(r)) +
               " below zero in-flight values (guaranteed deadlock)");
    }
    if (entry + t.maxp > static_cast<i64>(cap_)) {
      emit(FindingKind::kChainOverflow, Severity::kError, i,
           static_cast<i32>(r),
           "frep body pushes chained " + freg(static_cast<u8>(r)) +
               " beyond the FIFO capacity (guaranteed deadlock)");
    }
  }

  /// Record the memory window of an FP load/store when its address is known.
  void record_fp_mem(u32 b, State& s) {
    const PredecodedInstr& pr = p_.pre[b];
    if (pr.handler != ExecHandler::kFpLoad &&
        pr.handler != ExecHandler::kFpStore) {
      return;
    }
    const Instr& in = p_.instrs[b];
    const AbsVal base = rd_x(s, in.rs1);
    if (!base.known) return;
    const u64 lo = static_cast<u64>(
        static_cast<i64>(base.v) + static_cast<i64>(pr.aux));
    record_foot(lo, lo + pr.mem_bytes, pr.handler == ExecHandler::kFpStore, b,
                pr.handler == ExecHandler::kFpStore ? "fp store" : "fp load");
  }

  // --- DMA ------------------------------------------------------------------

  void do_dma_copy(u32 i, State& s, bool two_d) {
    const Instr& in = p_.instrs[i];
    const AbsVal bytes_v = rd_x(s, in.rs1);
    const AbsVal rows_v = two_d ? rd_x(s, in.rs2) : AbsVal::c(1);
    wr_x(s, in.rd, AbsVal::top());  // transfer id
    if (!bytes_v.known || !rows_v.known) return;
    const u64 bytes = bytes_v.v;
    const u64 rows = rows_v.v;
    if (bytes == 0 || rows == 0) return;  // engines fault with a message
    auto window = [&](AbsVal base, AbsVal stride) -> std::optional<std::pair<u64, u64>> {
      if (!base.known) return std::nullopt;
      const i64 str = rows > 1
                          ? (stride.known
                                 ? static_cast<i64>(static_cast<i32>(stride.v))
                                 : 0)
                          : static_cast<i64>(bytes);
      if (rows > 1 && !stride.known) return std::nullopt;
      const i64 b0 = static_cast<i64>(base.v);
      const i64 span = static_cast<i64>(rows - 1) * str;
      const i64 lo = span >= 0 ? b0 : b0 + span;
      const i64 hi = (span >= 0 ? b0 + span : b0) + static_cast<i64>(bytes);
      return std::make_pair(static_cast<u64>(lo), static_cast<u64>(hi));
    };
    const auto src = window(s.dma_src, s.dma_sstr);
    const auto dst = window(s.dma_dst, s.dma_dstr);
    auto check = [&](const std::optional<std::pair<u64, u64>>& w, bool write) {
      if (!w.has_value()) return;
      const auto [lo, hi] = *w;
      if (!window_mapped(lo, hi)) {
        emit(FindingKind::kDmaRace, Severity::kError, i, -1,
             std::string("dma ") + (write ? "destination" : "source") +
                 " window " + describe_window(lo, hi, regions_) +
                 " is not contained in a single mapped region");
      }
      for (u32 k = 0; ssr_live(s) && k < ssr::kNumSsrs; ++k) {
        const Stream& st = s.ssr[k];
        if ((st.dir != Dir::kRead && st.dir != Dir::kWrite) ||
            !st.window_known) {
          continue;
        }
        if (!write && !window_written(st)) continue;  // read/read is fine
        if (overlaps(lo, hi, st.lo, st.hi)) {
          emit(FindingKind::kDmaRace, Severity::kError, i,
               static_cast<i32>(k),
               std::string("dma ") + (write ? "write" : "read") + " window " +
                   describe_window(lo, hi, regions_) +
                   " overlaps the live ssr" + std::to_string(k) + " " +
                   (window_written(st) ? std::string("write") :
                                         std::string("read")) +
                   " stream window " + describe_window(st.lo, st.hi, regions_) +
                   ": DMA completion order against the stream is "
                   "timing-defined");
        }
      }
      record_foot(lo, hi, write, i, write ? "dma write" : "dma read");
    };
    check(src, false);
    check(dst, true);
  }

  // --- CSR ------------------------------------------------------------------

  void do_csr(u32 i, State& s) {
    const Instr& in = p_.instrs[i];
    const u32 addr = static_cast<u32>(p_.pre[i].aux);
    AbsVal operand;
    const bool reg_form = in.mn == Mnemonic::kCsrrw ||
                          in.mn == Mnemonic::kCsrrs ||
                          in.mn == Mnemonic::kCsrrc;
    operand = reg_form ? rd_x(s, in.rs1) : AbsVal::c(in.rs1);

    AbsVal old = AbsVal::top();
    switch (addr) {
      case isa::csr::kMhartid: old = AbsVal::c(hart_); break;
      case isa::csr::kMnumharts: old = AbsVal::c(nharts_); break;
      case isa::csr::kChainMask: old = s.chain_mask; break;
      case isa::csr::kSsrEnable: old = s.ssr_en; break;
      default: break;
    }

    // Write side (csrrw always; csrrs/csrrc only for a nonzero operand,
    // mirroring Iss::h_csr; an unknown operand may or may not write).
    AbsVal newv = AbsVal::top();
    bool writes = false;
    bool maybe_writes = false;
    switch (in.mn) {
      case Mnemonic::kCsrrw:
      case Mnemonic::kCsrrwi:
        writes = true;
        newv = operand;
        break;
      case Mnemonic::kCsrrs:
      case Mnemonic::kCsrrsi:
        if (operand.known) {
          writes = operand.v != 0;
          if (writes && old.known) newv = AbsVal::c(old.v | operand.v);
        } else {
          maybe_writes = true;
        }
        break;
      default:  // csrrc / csrrci
        if (operand.known) {
          writes = operand.v != 0;
          if (writes && old.known) newv = AbsVal::c(old.v & ~operand.v);
        } else {
          maybe_writes = true;
        }
        break;
    }
    if (addr == isa::csr::kChainMask) {
      if (writes) {
        if (!newv.known) {
          chain_unknown_now(i);
          s.chain_mask = AbsVal::top();
        } else {
          if (s.chain_mask.known && !chain_unknown_) {
            const u32 cleared = s.chain_mask.v & ~newv.v;
            for (u32 r = 0; r < 32; ++r) {
              if (((cleared >> r) & 1u) != 0 && s.lvl[r] > 0) {
                emit(FindingKind::kChainLeftover, Severity::kWarning, i,
                     static_cast<i32>(r),
                     "disables chaining for " + freg(static_cast<u8>(r)) +
                         " with " + std::to_string(s.lvl[r]) +
                         " value(s) still in flight: leftover tokens are "
                         "dropped and the architectural register value is "
                         "timing-defined");
                s.lvl[r] = 0;
              }
            }
          }
          s.chain_mask = newv;
        }
      } else if (maybe_writes) {
        chain_unknown_now(i);
        s.chain_mask = AbsVal::top();
      }
    } else if (addr == isa::csr::kSsrEnable) {
      if (writes) {
        s.ssr_en = newv.known ? AbsVal::c(newv.v & 1u) : AbsVal::top();
      } else if (maybe_writes) {
        s.ssr_en = AbsVal::top();
      }
    }
    wr_x(s, in.rd, old);
  }

  // --- main transfer function ----------------------------------------------

  void step(u32 i) {
    const Instr& in = p_.instrs[i];
    const PredecodedInstr& pr = p_.pre[i];
    State s = *in_[i];
    const u32 n = static_cast<u32>(p_.instrs.size());
    const auto linear_succ = [&]() {
      if (i + 1 < n) {
        merge_into(i + 1, s);
      } else {
        emit(FindingKind::kAnalysisLimit, Severity::kWarning, i, -1,
             "control reaches the end of the text segment without ecall");
      }
    };

    switch (pr.handler) {
      case ExecHandler::kInvalid:
        emit(FindingKind::kAnalysisLimit, Severity::kWarning, i, -1,
             "invalid instruction word: execution faults when this is "
             "reached");
        return;
      case ExecHandler::kLui:
        wr_x(s, in.rd, AbsVal::c(static_cast<u32>(pr.aux)));
        linear_succ();
        return;
      case ExecHandler::kAuipc:
        wr_x(s, in.rd,
             AbsVal::c(static_cast<u32>(p_.text_base + i * 4) +
                       static_cast<u32>(pr.aux)));
        linear_succ();
        return;
      case ExecHandler::kIntAluImm: {
        const AbsVal a = rd_x(s, in.rs1);
        wr_x(s, in.rd,
             a.known
                 ? AbsVal::c(exec::int_op(in.mn, a.v, static_cast<u32>(pr.aux)))
                 : AbsVal::top());
        linear_succ();
        return;
      }
      case ExecHandler::kIntAluReg:
      case ExecHandler::kIntMul:
      case ExecHandler::kIntDiv: {
        const AbsVal a = rd_x(s, in.rs1);
        const AbsVal b = rd_x(s, in.rs2);
        wr_x(s, in.rd, a.known && b.known
                           ? AbsVal::c(exec::int_op(in.mn, a.v, b.v))
                           : AbsVal::top());
        linear_succ();
        return;
      }
      case ExecHandler::kLoad:
      case ExecHandler::kLoadSext8:
      case ExecHandler::kLoadSext16: {
        const AbsVal base = rd_x(s, in.rs1);
        if (base.known) {
          const u64 lo = static_cast<u64>(static_cast<i64>(base.v) +
                                          static_cast<i64>(pr.aux));
          record_foot(lo, lo + pr.mem_bytes, false, i, "load");
        }
        wr_x(s, in.rd, AbsVal::top());
        linear_succ();
        return;
      }
      case ExecHandler::kStore: {
        const AbsVal base = rd_x(s, in.rs1);
        if (base.known) {
          const u64 lo = static_cast<u64>(static_cast<i64>(base.v) +
                                          static_cast<i64>(pr.aux));
          record_foot(lo, lo + pr.mem_bytes, true, i, "store");
        }
        linear_succ();
        return;
      }
      case ExecHandler::kCsr:
        do_csr(i, s);
        linear_succ();
        return;
      case ExecHandler::kEcall:
        if (!chain_unknown_ && s.chain_mask.known) {
          for (u32 r = 0; r < 32; ++r) {
            if (chain_enabled(s, static_cast<u8>(r)) && s.lvl[r] > 0) {
              emit(FindingKind::kChainLeftover, Severity::kWarning, i,
                   static_cast<i32>(r),
                   "program halts with " + std::to_string(s.lvl[r]) +
                       " unconsumed value(s) in chained " +
                       freg(static_cast<u8>(r)) +
                       ": a producer ran without its consumer");
            }
          }
        }
        return;  // clean halt: path ends
      case ExecHandler::kEbreak:
        return;  // debug halt: path ends
      case ExecHandler::kFence:
        linear_succ();
        return;
      case ExecHandler::kFpLoad:
      case ExecHandler::kFpStore:
        fp_instr(i, s);
        record_fp_mem(i, s);
        linear_succ();
        return;
      case ExecHandler::kFpMac:
      case ExecHandler::kFpDiv:
      case ExecHandler::kFpSqrt:
      case ExecHandler::kFpCvtI2F:
        fp_instr(i, s);
        linear_succ();
        return;
      case ExecHandler::kFpCmp:
      case ExecHandler::kFpCvtF2I:
        fp_instr(i, s);
        wr_x(s, in.rd, AbsVal::top());
        linear_succ();
        return;
      case ExecHandler::kFrep: {
        do_frep(i, s);
        const u32 body = static_cast<u32>(in.imm);
        if ((p_.pre[i].flags & isa::preflag::kFrepBodyOk) != 0 &&
            body <= cfg_.seq_buffer_depth) {
          const u32 next = i + 1 + body;
          if (next < n) {
            merge_into(next, s);
          } else {
            emit(FindingKind::kAnalysisLimit, Severity::kWarning, i, -1,
                 "control reaches the end of the text segment without ecall");
          }
        }
        return;
      }
      case ExecHandler::kJal: {
        wr_x(s, in.rd, AbsVal::c(static_cast<u32>(p_.text_base + i * 4 + 4)));
        if (pr.target_idx == Program::kNoIndex) {
          emit(FindingKind::kAnalysisLimit, Severity::kWarning, i, -1,
               "jump target leaves the text segment");
          rep_.complete = false;
          return;
        }
        merge_into(pr.target_idx, s);
        return;
      }
      case ExecHandler::kJalr: {
        const AbsVal base = rd_x(s, in.rs1);
        wr_x(s, in.rd, AbsVal::c(static_cast<u32>(p_.text_base + i * 4 + 4)));
        if (!base.known) {
          emit(FindingKind::kAnalysisLimit, Severity::kWarning, i, -1,
               "indirect jump with statically unknown target; paths beyond "
               "it are unanalyzed");
          rep_.complete = false;
          return;
        }
        const u32 target =
            (base.v + static_cast<u32>(pr.aux)) & ~1u;
        if (target < p_.text_base || target >= p_.text_base + n * 4 ||
            (target % 4) != 0) {
          emit(FindingKind::kAnalysisLimit, Severity::kWarning, i, -1,
               "indirect jump target " + hex(target) +
                   " leaves the text segment");
          rep_.complete = false;
          return;
        }
        merge_into((target - static_cast<u32>(p_.text_base)) / 4, s);
        return;
      }
      case ExecHandler::kBranch: {
        const AbsVal a = rd_x(s, in.rs1);
        const AbsVal b = rd_x(s, in.rs2);
        const auto take = [&]() {
          if (pr.target_idx == Program::kNoIndex) {
            emit(FindingKind::kAnalysisLimit, Severity::kWarning, i, -1,
                 "branch target leaves the text segment");
            rep_.complete = false;
            return;
          }
          merge_into(pr.target_idx, s);
        };
        if (a.known && b.known) {
          if (exec::branch_taken(in.mn, a.v, b.v)) {
            take();
          } else {
            linear_succ();
          }
        } else {
          take();
          linear_succ();
        }
        return;
      }
      case ExecHandler::kScfgW: {
        const i32 index = static_cast<i32>(pr.aux);
        const u32 ssr_id = ssr::cfg_ssr_of(index);
        const u32 reg = ssr::cfg_reg_of(index);
        const AbsVal v = rd_x(s, in.rs1);
        if (ssr_id < ssr::kNumSsrs && reg < ssr::kNumCfgRegs) {
          StreamCfg& c = s.cfg[ssr_id];
          const auto cr = static_cast<ssr::CfgReg>(reg);
          if (cr == ssr::CfgReg::kRepeat) {
            c.repeat = v;
          } else if (cr >= ssr::CfgReg::kBound0 &&
                     cr <= static_cast<ssr::CfgReg>(5)) {
            c.bounds[reg - static_cast<u32>(ssr::CfgReg::kBound0)] = v;
          } else if (cr >= ssr::CfgReg::kStride0 &&
                     cr <= static_cast<ssr::CfgReg>(9)) {
            c.strides[reg - static_cast<u32>(ssr::CfgReg::kStride0)] = v;
          } else if (cr == ssr::CfgReg::kIdxCfg) {
            c.idx_cfg = v;
          } else if (cr == ssr::CfgReg::kIdxBase) {
            c.idx_base = v;
          } else if (cr >= ssr::CfgReg::kRptr0 &&
                     cr <= static_cast<ssr::CfgReg>(15)) {
            arm_stream(s, ssr_id,
                       reg - static_cast<u32>(ssr::CfgReg::kRptr0) + 1, v,
                       Dir::kRead, i);
          } else if (cr >= ssr::CfgReg::kWptr0 &&
                     cr <= static_cast<ssr::CfgReg>(19)) {
            arm_stream(s, ssr_id,
                       reg - static_cast<u32>(ssr::CfgReg::kWptr0) + 1, v,
                       Dir::kWrite, i);
          }
        }
        linear_succ();
        return;
      }
      case ExecHandler::kScfgR:
        wr_x(s, in.rd, AbsVal::top());
        linear_succ();
        return;
      case ExecHandler::kDmaSrc:
        s.dma_src = rd_x(s, in.rs1);
        linear_succ();
        return;
      case ExecHandler::kDmaDst:
        s.dma_dst = rd_x(s, in.rs1);
        linear_succ();
        return;
      case ExecHandler::kDmaStr:
        s.dma_sstr = rd_x(s, in.rs1);
        s.dma_dstr = rd_x(s, in.rs2);
        linear_succ();
        return;
      case ExecHandler::kDmaCpy:
        do_dma_copy(i, s, false);
        linear_succ();
        return;
      case ExecHandler::kDmaCpy2d:
        do_dma_copy(i, s, true);
        linear_succ();
        return;
      case ExecHandler::kDmaStat:
        wr_x(s, in.rd, AbsVal::top());
        linear_succ();
        return;
      case ExecHandler::kCount:
        break;
    }
  }

  const Program& p_;
  const sim::SimConfig& cfg_;
  const std::vector<MemRegion>* regions_;
  u32 hart_;
  u32 nharts_;
  u32 cap_;
  Report& rep_;
  HartFootprint& foot_;

  std::vector<std::optional<State>> in_;
  std::deque<u32> wl_;
  std::vector<bool> on_wl_ = std::vector<bool>(p_.instrs.size(), false);
  std::set<std::tuple<u8, u32, i32>> emitted_;
  std::set<std::tuple<u64, u64, bool>> foot_seen_;
  std::vector<std::pair<u32, u32>> frep_bodies_;
  bool chain_unknown_ = false;
};

/// Whether the program ever reads mhartid (identical replicas that never do
/// execute identically on every hart).
bool reads_mhartid(const Program& p) {
  for (u32 i = 0; i < p.pre.size(); ++i) {
    if (p.pre[i].handler == ExecHandler::kCsr &&
        static_cast<u32>(p.pre[i].aux) == isa::csr::kMhartid) {
      return true;
    }
  }
  return false;
}

bool inside_shared_region(u64 lo, u64 hi,
                          const std::vector<MemRegion>* regions) {
  if (regions == nullptr) return false;
  for (const MemRegion& r : *regions) {
    if (r.shared && lo >= r.base && hi <= r.base + r.bytes) return true;
  }
  return false;
}

void cross_hart_races(const std::vector<const Program*>& prog_of,
                      const std::vector<HartFootprint>& foot,
                      const std::vector<bool>& hartid_dependent,
                      const std::vector<MemRegion>* regions, Report& rep) {
  const u32 n = static_cast<u32>(foot.size());
  u32 emitted = 0;
  constexpr u32 kMaxRaceFindings = 8;
  for (u32 h1 = 0; h1 < n && emitted < kMaxRaceFindings; ++h1) {
    for (u32 h2 = h1 + 1; h2 < n && emitted < kMaxRaceFindings; ++h2) {
      // Identical replicas with no mhartid dependence execute the same
      // access sequence: overlap is total but benign (deterministic
      // arbitration, identical values). Skip the pair.
      if (prog_of[h1] == prog_of[h2] && !hartid_dependent[h1]) continue;
      for (const FootRec& a : foot[h1].recs) {
        if (emitted >= kMaxRaceFindings) break;
        for (const FootRec& b : foot[h2].recs) {
          if (!a.write && !b.write) continue;
          if (!overlaps(a.lo, a.hi, b.lo, b.hi)) continue;
          const u64 olo = std::max(a.lo, b.lo);
          const u64 ohi = std::min(a.hi, b.hi);
          if (inside_shared_region(olo, ohi, regions)) continue;
          Finding f;
          f.kind = FindingKind::kInterHartRace;
          f.severity = Severity::kError;
          f.hart = static_cast<i32>(h1);
          f.pc = static_cast<i64>(prog_of[h1]->text_base) +
                 static_cast<i64>(a.idx) * 4;
          f.reg = -1;
          f.message = "hart " + std::to_string(h1) + " " + a.what + " " +
                      describe_window(a.lo, a.hi, regions) +
                      " overlaps hart " + std::to_string(h2) + " " + b.what +
                      " " + describe_window(b.lo, b.hi, regions) + " at " +
                      describe_window(olo, ohi, regions) +
                      " with at least one writer: the access order across "
                      "harts is timing-defined";
          rep.findings.push_back(std::move(f));
          if (++emitted >= kMaxRaceFindings) break;
        }
      }
    }
  }
}

} // namespace

Report analyze(const std::vector<Program>& programs,
               const sim::SimConfig& cfg,
               const std::vector<MemRegion>* regions) {
  Report rep;
  if (programs.empty()) return rep;
  const u32 n = cfg.num_cores;
  rep.harts_analyzed = n;

  // Programs must be predecoded; copy-and-predecode any that are not.
  std::vector<Program> predecoded_storage;
  predecoded_storage.reserve(programs.size());
  std::vector<const Program*> resolved(programs.size());
  for (usize k = 0; k < programs.size(); ++k) {
    if (programs[k].pre.size() == programs[k].instrs.size()) {
      resolved[k] = &programs[k];
    } else {
      predecoded_storage.push_back(programs[k]);
      predecoded_storage.back().predecode();
      resolved[k] = &predecoded_storage.back();
    }
  }

  std::vector<const Program*> prog_of(n);
  for (u32 h = 0; h < n; ++h) {
    prog_of[h] = resolved[std::min<usize>(h, resolved.size() - 1)];
  }

  std::vector<HartFootprint> foot(n);
  std::vector<bool> hartid_dependent(n, false);
  std::vector<bool> analyzed(n, false);
  for (u32 h = 0; h < n; ++h) {
    if (analyzed[h]) continue;
    const bool hid = reads_mhartid(*prog_of[h]);
    hartid_dependent[h] = hid;
    HartAnalyzer a(*prog_of[h], cfg, regions, h, n, rep, foot[h]);
    a.run();
    analyzed[h] = true;
    if (!hid) {
      // Identical replicas: findings and footprints are hart-independent.
      for (u32 h2 = h + 1; h2 < n; ++h2) {
        if (prog_of[h2] == prog_of[h] && !analyzed[h2]) {
          foot[h2] = foot[h];
          hartid_dependent[h2] = false;
          analyzed[h2] = true;
        }
      }
    } else {
      for (u32 h2 = h + 1; h2 < n; ++h2) {
        if (prog_of[h2] == prog_of[h]) hartid_dependent[h2] = true;
      }
    }
  }

  if (n > 1) {
    cross_hart_races(prog_of, foot, hartid_dependent, regions, rep);
  }
  return rep;
}

Report analyze(const Program& program, const sim::SimConfig& cfg,
               const std::vector<MemRegion>* regions) {
  return analyze(std::vector<Program>{program}, cfg, regions);
}

} // namespace sch::verify
