// Static chain-graph verifier: proves kernels deadlock-free and race-free
// before a single cycle is simulated.
//
// `analyze()` abstract-interprets a predecoded Program per hart -- constant
// propagation over the integer registers (with mhartid/mnumharts pinned per
// hart), chain-FIFO occupancy per architectural FP register, SSR stream
// windows, FREP body legality, and DMA descriptor windows -- then intersects
// the per-hart memory footprints for cross-hart races. Findings carry a
// kind / severity / hart / pc / register tuple plus a human explanation; the
// error-severity kinds are guaranteed-misbehavior proofs (the program cannot
// run to completion, or reads racy data), the warning kinds are
// schedule-dependent hazards (the pinned 4-core stencil deadlocks) and
// analysis limits.
//
// Consumed three ways: api::RunRequest::verify (off/warn/strict),
// `schsim lint`, and tests/test_verify.cpp. See docs/VERIFY.md.
#pragma once

#include <string>
#include <vector>

#include "asm/program.hpp"
#include "common/types.hpp"
#include "scenario/json.hpp"
#include "sim/sim_config.hpp"
#include "verify/mem_region.hpp"

namespace sch::verify {

/// What a finding is about. Keep in sync with finding_kind_name().
enum class FindingKind : u8 {
  /// Pop from a chained register with no producer in flight on any path:
  /// the consumer issues before its producer and stalls chain-empty forever.
  kChainUnderflow,
  /// More values pushed into a chain FIFO than fpu_depth+1 can hold with no
  /// intervening pop: the (capacity+1)-th producer's writeback blocks
  /// chain-full, freezing the FPU pipeline with the issue latch occupied, so
  /// the pop that would free a slot can never issue. Guaranteed wedge.
  kChainOverflow,
  /// Converging control-flow paths disagree on a chain FIFO's occupancy;
  /// balance depends on which path ran, so one of them mis-counts tokens.
  kChainPathImbalance,
  /// An FREP body changes a chain FIFO's occupancy per iteration; over
  /// reps > 1 iterations the imbalance accumulates into underflow/overflow.
  kChainFrepImbalance,
  /// A producer push with >= 2 values already in flight whose issue is gated
  /// on an indirect SSR gather. A gather gap under TCDM contention lets an
  /// earlier producer reach writeback against a full FIFO while this one
  /// holds the single-entry issue latch: writeback -> chain-full ->
  /// pipeline-freeze -> latch-held -> consumer-cannot-issue -> no-pop.
  /// Schedule-dependent (warning): the diagnosis of the two pinned 4-core
  /// stencil deadlocks.
  kChainGatedSaturation,
  /// Chaining disabled (or the program halts) while values remain in a chain
  /// FIFO: leftover tokens are silently dropped or poison the next consumer.
  kChainLeftover,
  /// An armed SSR window is not contained in a single memory region
  /// (TCDM or main memory).
  kSsrOutOfBounds,
  /// Two concurrently armed streams on one hart have overlapping windows and
  /// at least one writes: the read order against the write order is
  /// timing-defined.
  kSsrOverlap,
  /// An FP instruction reads a register armed as a write stream or writes a
  /// register armed as a read stream -- a hard model error at runtime.
  kSsrDirectionMismatch,
  /// A branch or jump targets the interior of an FREP body.
  kFrepBranchIntoBody,
  /// An FREP body is structurally illegal: empty, runs off the end of the
  /// program, contains a non-FP instruction or a nested FREP, or exceeds the
  /// sequencer ring buffer (seq_buffer_depth).
  kFrepIllegalBody,
  /// Two harts' memory footprints overlap with at least one writer and the
  /// programs are not identical replicas.
  kInterHartRace,
  /// A DMA descriptor window overlaps a live (armed + enabled) SSR stream
  /// window on the same hart, or is out of bounds.
  kDmaRace,
  /// The analysis hit a modeling limit (indirect jump with unknown target,
  /// unknown chain mask, footprint table overflow); results past this point
  /// are incomplete, not wrong.
  kAnalysisLimit,
};

enum class Severity : u8 { kWarning, kError };

[[nodiscard]] const char* finding_kind_name(FindingKind k);
[[nodiscard]] const char* severity_name(Severity s);

/// One diagnostic. `reg` is the chained FP register or SSR/DMA id the finding
/// is about (-1 when not applicable); `pc` is the byte address of the
/// offending instruction (-1 for whole-program findings).
struct Finding {
  FindingKind kind{};
  Severity severity = Severity::kError;
  i32 hart = -1;
  i64 pc = -1;
  i32 reg = -1;
  std::string message;
};

struct Report {
  /// Version of the `schsim lint --json` document this report serializes to
  /// (tools/check_lint_schema.py pins the layout).
  static constexpr i64 kLintSchemaVersion = 1;

  std::vector<Finding> findings;
  /// False when the analyzer bailed early (kAnalysisLimit explains why).
  bool complete = true;
  u32 harts_analyzed = 0;

  [[nodiscard]] u32 errors() const;
  [[nodiscard]] u32 warnings() const;
  /// No error-severity findings (warnings allowed).
  [[nodiscard]] bool ok() const { return errors() == 0; }
  [[nodiscard]] bool clean() const { return findings.empty(); }
  /// "2 errors, 1 warning; first: ..." -- empty string when clean.
  [[nodiscard]] std::string summary() const;
  [[nodiscard]] scenario::Json to_json() const;
};

/// Analyze one program replicated across cfg.num_cores harts (each hart sees
/// its own mhartid). `regions` optionally names the kernel's data windows.
[[nodiscard]] Report analyze(const Program& program, const sim::SimConfig& cfg,
                             const std::vector<MemRegion>* regions = nullptr);

/// Analyze per-hart programs (programs[h] runs on hart h). Harts beyond
/// programs.size() replicate programs.back(), matching engine semantics.
[[nodiscard]] Report analyze(const std::vector<Program>& programs,
                             const sim::SimConfig& cfg,
                             const std::vector<MemRegion>* regions = nullptr);

} // namespace sch::verify
