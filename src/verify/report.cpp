// Report surface of the static verifier: finding-kind names, the one-line
// summary used by strict-mode failure messages, and the `schsim lint --json`
// document (schema pinned by tools/check_lint_schema.py).
#include "verify/verify.hpp"

namespace sch::verify {

const char* finding_kind_name(FindingKind k) {
  switch (k) {
    case FindingKind::kChainUnderflow: return "chain_underflow";
    case FindingKind::kChainOverflow: return "chain_overflow";
    case FindingKind::kChainPathImbalance: return "chain_path_imbalance";
    case FindingKind::kChainFrepImbalance: return "chain_frep_imbalance";
    case FindingKind::kChainGatedSaturation: return "chain_gated_saturation";
    case FindingKind::kChainLeftover: return "chain_leftover";
    case FindingKind::kSsrOutOfBounds: return "ssr_out_of_bounds";
    case FindingKind::kSsrOverlap: return "ssr_overlap";
    case FindingKind::kSsrDirectionMismatch: return "ssr_direction_mismatch";
    case FindingKind::kFrepBranchIntoBody: return "frep_branch_into_body";
    case FindingKind::kFrepIllegalBody: return "frep_illegal_body";
    case FindingKind::kInterHartRace: return "inter_hart_race";
    case FindingKind::kDmaRace: return "dma_race";
    case FindingKind::kAnalysisLimit: return "analysis_limit";
  }
  return "unknown";
}

const char* severity_name(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

u32 Report::errors() const {
  u32 n = 0;
  for (const Finding& f : findings) {
    if (f.severity == Severity::kError) ++n;
  }
  return n;
}

u32 Report::warnings() const {
  return static_cast<u32>(findings.size()) - errors();
}

std::string Report::summary() const {
  if (findings.empty()) return "";
  const u32 ne = errors();
  const u32 nw = warnings();
  std::string out;
  if (ne > 0) {
    out += std::to_string(ne) + (ne == 1 ? " error" : " errors");
  }
  if (nw > 0) {
    if (!out.empty()) out += ", ";
    out += std::to_string(nw) + (nw == 1 ? " warning" : " warnings");
  }
  const Finding* first = nullptr;
  for (const Finding& f : findings) {
    if (f.severity == Severity::kError) {
      first = &f;
      break;
    }
  }
  if (first == nullptr) first = &findings.front();
  out += "; first: [";
  out += finding_kind_name(first->kind);
  out += "] ";
  if (first->hart >= 0) {
    out += "hart " + std::to_string(first->hart) + " ";
  }
  if (first->pc >= 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "pc 0x%llx ",
                  static_cast<unsigned long long>(first->pc));
    out += buf;
  }
  out += first->message;
  return out;
}

scenario::Json Report::to_json() const {
  scenario::Json doc = scenario::Json::object();
  doc.set("errors", static_cast<i64>(errors()));
  doc.set("warnings", static_cast<i64>(warnings()));
  doc.set("complete", complete);
  doc.set("harts_analyzed", static_cast<i64>(harts_analyzed));
  scenario::Json arr = scenario::Json::array();
  for (const Finding& f : findings) {
    scenario::Json j = scenario::Json::object();
    j.set("kind", finding_kind_name(f.kind));
    j.set("severity", severity_name(f.severity));
    j.set("hart", static_cast<i64>(f.hart));
    j.set("pc", f.pc);
    j.set("reg", static_cast<i64>(f.reg));
    j.set("message", f.message);
    arr.push_back(std::move(j));
  }
  doc.set("findings", std::move(arr));
  return doc;
}

} // namespace sch::verify
