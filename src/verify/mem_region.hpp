// Named memory window a kernel builder declares for its buffers. Kept in a
// leaf header so kernels can attach footprint metadata without depending on
// the whole verifier; verify.hpp re-exports it for analyze() callers.
#pragma once

#include <string>

#include "common/types.hpp"

namespace sch::verify {

/// One declared data window of a kernel (used to label addresses in finding
/// messages and to reason about kernel footprints without re-deriving
/// layouts).
struct MemRegion {
  std::string name;
  Addr base = 0;
  u64 bytes = 0;
  bool written = false;
  /// Intentionally shared across harts (barriers, reduction scratch guarded
  /// by a barrier): cross-hart overlaps inside this window are by design and
  /// excluded from kInterHartRace.
  bool shared = false;
};

} // namespace sch::verify
