// Server-side aggregate rollups over a batch of RunReports: the summary a
// fleet client wants without re-parsing every streamed row. Accumulates
// geomean cycles (log-sum over ok rows), utilization percentiles
// (nearest-rank), merged TCDM-conflict histograms (per-bank sums of the
// per-job top_banks sections) and a failure-kind census. Deterministic for
// a fixed report set: every statistic depends only on the report values,
// never on arrival order or timing.
#pragma once

#include <vector>

#include "api/run_report.hpp"

namespace sch::serve {

using Json = scenario::Json;

class Rollup {
 public:
  void add(const api::RunReport& report);

  [[nodiscard]] usize jobs() const { return jobs_; }
  [[nodiscard]] usize failures() const { return failures_; }

  /// Serialize the aggregates (see docs/SERVE.md "Rollups" for the exact
  /// definitions). Percentile ranks use the nearest-rank method on the
  /// sorted ok-row utilizations; geomean_cycles covers ok rows with
  /// cycles > 0 (0.0 when there are none).
  [[nodiscard]] Json to_json() const;

 private:
  usize jobs_ = 0;
  usize failures_ = 0;
  u64 failure_counts_[8] = {};  // indexed by FailureKind
  double log_cycles_sum_ = 0;
  usize cycle_rows_ = 0;
  u64 total_cycles_ = 0;
  u64 total_iss_instructions_ = 0;
  u64 total_useful_flops_ = 0;
  u64 tcdm_reads_ = 0;
  u64 tcdm_writes_ = 0;
  u64 tcdm_conflicts_ = 0;
  std::vector<double> utilizations_;            // ok rows only
  std::vector<std::pair<u32, u64>> bank_conflicts_;  // sparse bank -> sum
};

} // namespace sch::serve
