// Process-level sharding for `schsim serve --shards N`: fork N worker
// processes before any engine thread exists, each running a full Server
// session over a pipe pair, with the parent as a single-threaded
// multiplexer -- round-robin request dispatch, line-granular response
// forwarding. Shards share nothing (each has its own caches and worker
// pool), so a crash or wedge in one shard can never take down another;
// the cost is that responses from different shards interleave on stdout
// (each line is self-contained, so clients key on "id").
#pragma once

#include <iosfwd>

#include "serve/server.hpp"

namespace sch::serve {

/// Serve stdin -> stdout across `shards` forked workers, each configured
/// with `options`. Must be called while the process is still
/// single-threaded (fork + engine pools do not mix); `schsim serve` calls
/// it before touching any engine. Returns a process exit code (0 on a
/// clean EOF/shutdown drain). On platforms without fork the call fails
/// with a message on `log`.
int serve_sharded(const ServerOptions& options, u32 shards, std::ostream& log);

} // namespace sch::serve
