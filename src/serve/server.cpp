#include "serve/server.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <istream>
#include <limits>
#include <ostream>
#include <thread>
#include <vector>

#include "serve/fdstream.hpp"
#include "serve/rollup.hpp"

namespace sch::serve {

namespace {

using Clock = std::chrono::steady_clock;

Json cache_stats_to_json(u64 hits, u64 misses, u64 evictions, u64 entries) {
  Json o = Json::object();
  o.set("hits", hits);
  o.set("misses", misses);
  o.set("evictions", evictions);
  o.set("entries", entries);
  return o;
}

} // namespace

// --- line builders ----------------------------------------------------------

Json report_row(const api::RunReport& report, const scenario::Job& job) {
  Json row = report.to_json();
  row.set("sizes", scenario::sizes_to_json(job.sizes));
  row.set("sim", job.sim_echo.is_object() ? job.sim_echo : Json::object());
  row.set("repeat", static_cast<i64>(job.repeat_index));
  return row;
}

Json report_line(const Json& id, usize seq, usize of, bool cached, Json row) {
  Json line = Json::object();
  line.set("type", "report");
  line.set("id", id);
  line.set("seq", static_cast<i64>(seq));
  line.set("of", static_cast<i64>(of));
  line.set("cached", cached);
  line.set("report", std::move(row));
  return line;
}

Json error_line(const Json& id, const std::string& message) {
  Json line = Json::object();
  line.set("type", "error");
  line.set("id", id);
  line.set("error", message);
  // Reuse the schema-v4 failure taxonomy: every protocol-level defect is a
  // validation failure with no machine location.
  Json failure = Json::object();
  failure.set("kind", api::failure_kind_name(api::FailureKind::kValidation));
  failure.set("hart", static_cast<i64>(-1));
  failure.set("pc", static_cast<i64>(-1));
  failure.set("cycle", static_cast<i64>(-1));
  line.set("failure", std::move(failure));
  return line;
}

// --- ReportCache ------------------------------------------------------------

std::string ReportCache::make_key(const scenario::Job& job,
                                  api::EngineSel engine) {
  std::string key =
      api::BuildCache::make_key(job.kernel->name, job.variant, job.sizes,
                                job.config);
  key += "|engine=";
  key += api::engine_name(engine);
  key += ";verify=";
  key += std::to_string(static_cast<int>(job.verify));
  // repeat_index is deliberately absent: repeats of one shape are identical
  // runs, which is exactly what the memoization exploits.
  return key;
}

std::shared_ptr<const api::RunReport> ReportCache::get(const std::string& key) {
  if (capacity_ == 0) return nullptr;
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return it->second.report;
}

void ReportCache::put(const std::string& key,
                      std::shared_ptr<const api::RunReport> report) {
  if (capacity_ == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Concurrent duplicate run: keep the first, refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(report), lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

ReportCache::Stats ReportCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.entries = entries_.size();
  return s;
}

void ReportCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
}

// --- Server -----------------------------------------------------------------

Server::Server(ServerOptions options)
    : options_(options),
      build_cache_(options.build_cache_capacity),
      report_cache_(options.report_cache_capacity) {
  if (options_.threads != 0) {
    own_engine_.emplace(api::EngineConfig{.threads = options_.threads});
  }
}

Json Server::cache_stats_json() const {
  const api::BuildCache::Stats b = build_cache_.stats();
  const ReportCache::Stats r = report_cache_.stats();
  Json o = Json::object();
  o.set("build", cache_stats_to_json(b.hits, b.misses, b.evictions, b.entries));
  o.set("report", cache_stats_to_json(r.hits, r.misses, r.evictions, r.entries));
  return o;
}

namespace {

/// One submitted-or-memoized job inside a run unit.
struct JobItem {
  std::future<api::RunReport> future;             // live run (miss)
  std::shared_ptr<const api::RunReport> ready;    // memoized hit
  scenario::Job job;                              // echo metadata
  std::string cache_key;
};

/// One request's worth of responses, queued in request order. The reader
/// thread produces units (parsing + submitting ahead); the collector thread
/// consumes them strictly FIFO, so the response stream is deterministic --
/// request order, then job order -- while jobs themselves complete on the
/// pool in any order.
struct Unit {
  enum class Kind : u8 { kLines, kRun, kStats, kDrop, kBye };
  Kind kind = Kind::kLines;
  Json id;
  std::vector<Json> lines;    // kLines: pre-rendered responses
  std::vector<JobItem> jobs;  // kRun
  Clock::time_point start{};
};

class Session {
 public:
  Session(Server& server, std::istream& in, std::ostream& out)
      : server_(server), opts_(server.options()), in_(in), out_(out) {}

  bool run() {
    std::thread collector([this] { collect_loop(); });
    read_loop();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_reading_ = true;
    }
    cv_.notify_all();
    collector.join();
    return saw_shutdown_;
  }

 private:
  // --- reader side ---
  void read_loop() {
    std::vector<char> buf(opts_.max_line_bytes + 1);
    while (!saw_shutdown_) {
      in_.getline(buf.data(), static_cast<std::streamsize>(buf.size()));
      const auto got = static_cast<usize>(in_.gcount());
      if (in_.fail() && !in_.eof() && got + 1 >= buf.size()) {
        // Line longer than the configured maximum: structured error, then
        // skip to the next newline so the stream stays usable.
        in_.clear();
        in_.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
        push_lines(Json(), {error_line(Json(), "request line exceeds " +
                                                   std::to_string(opts_.max_line_bytes) +
                                                   " bytes")});
        continue;
      }
      if (in_.fail() && got == 0) break;  // EOF (or unreadable stream)
      handle_line(std::string(buf.data()));
      if (in_.eof()) break;
    }
  }

  void handle_line(std::string line) {
    while (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) return;
    Result<Json> parsed = Json::parse(line);
    if (!parsed.ok()) {
      push_lines(Json(), {error_line(Json(), "bad request: " +
                                                 parsed.status().message())});
      return;
    }
    Json req = std::move(parsed).value();
    if (!req.is_object()) {
      push_lines(Json(), {error_line(Json(), "bad request: line must be a "
                                             "JSON object")});
      return;
    }
    Json id;  // null unless the request carries one
    if (const Json* i = req.get("id")) id = *i;

    std::string op = "run";
    if (const Json* o = req.get("op")) {
      if (!o->is_string()) {
        push_lines(id, {error_line(id, "bad request: \"op\" must be a string")});
        return;
      }
      op = o->as_string();
    }
    if (op == "ping") {
      Json pong = Json::object();
      pong.set("type", "pong");
      pong.set("id", id);
      push_lines(id, {std::move(pong)});
    } else if (op == "stats") {
      push_unit(make_unit(Unit::Kind::kStats, id));
    } else if (op == "drop-caches") {
      push_unit(make_unit(Unit::Kind::kDrop, id));
    } else if (op == "shutdown") {
      push_unit(make_unit(Unit::Kind::kBye, id));
      saw_shutdown_ = true;
    } else if (op == "run") {
      handle_run(req, id);
    } else {
      push_lines(id, {error_line(id, "bad request: unknown op \"" + op + "\"")});
    }
  }

  void handle_run(const Json& req, const Json& id) {
    const auto reject = [&](const std::string& message) {
      push_lines(id, {error_line(id, message)});
    };

    api::EngineSel engine_sel = api::EngineSel::kCycle;
    if (const Json* e = req.get("engine")) {
      if (!e->is_string() || !api::parse_engine(e->as_string(), engine_sel)) {
        return reject("bad request: \"engine\" must be \"iss\", \"cycle\" or "
                      "\"both\"");
      }
    }
    scenario::Scenario sc;
    sc.name = "request";
    if (const Json* v = req.get("verify")) {
      if (!v->is_string() ||
          (v->as_string() != "off" && v->as_string() != "warn" &&
           v->as_string() != "strict")) {
        return reject("bad request: \"verify\" must be \"off\", \"warn\" or "
                      "\"strict\"");
      }
      sc.verify = v->as_string();
    }

    Json base_sim = Json::object();
    if (const Json* s = req.get("sim")) {
      if (!s->is_object()) return reject("bad request: \"sim\" must be an object");
      base_sim = *s;
    }
    u32 default_repeat = 1;
    if (const Json* r = req.get("repeat")) {
      if (!r->is_integer() || r->as_i64() < 1 || r->as_i64() > 1000) {
        return reject("bad request: \"repeat\" must be an integer in 1..1000");
      }
      default_repeat = static_cast<u32>(r->as_i64());
    }

    // Two request shapes (docs/SERVE.md): a batch {"runs": [...]} carrying
    // scenario runs[] entries verbatim, or the single-run shorthand with
    // kernel/variants/sizes inline. Key whitelists are strict, mirroring
    // the scenario parser: a typo is an error, never a silent no-op.
    const Json* runs = req.get("runs");
    if (runs != nullptr) {
      for (const auto& [k, v] : req.members()) {
        (void)v;
        if (k != "op" && k != "id" && k != "engine" && k != "verify" &&
            k != "runs" && k != "sim" && k != "repeat") {
          return reject("bad request: unknown key \"" + k + "\"");
        }
      }
      if (!runs->is_array() || runs->items().empty()) {
        return reject("bad request: \"runs\" must be a non-empty array");
      }
      for (usize i = 0; i < runs->items().size(); ++i) {
        Result<scenario::RunSpec> spec = scenario::parse_run_spec(
            runs->items()[i], i, base_sim, default_repeat);
        if (!spec.ok()) return reject("bad request: " + spec.status().message());
        sc.runs.push_back(std::move(spec).value());
      }
    } else if (req.get("kernel") != nullptr) {
      Json run = Json::object();
      for (const auto& [k, v] : req.members()) {
        if (k == "op" || k == "id" || k == "engine" || k == "verify" ||
            k == "sim" || k == "repeat") {
          continue;  // request-level keys, handled above
        }
        if (k != "kernel" && k != "variants" && k != "sizes") {
          return reject("bad request: unknown key \"" + k + "\"");
        }
        run.set(k, v);
      }
      Result<scenario::RunSpec> spec =
          scenario::parse_run_spec(run, 0, base_sim, default_repeat);
      if (!spec.ok()) return reject("bad request: " + spec.status().message());
      sc.runs.push_back(std::move(spec).value());
    } else {
      return reject("bad request: a run names a workload via \"kernel\" or "
                    "\"runs\"");
    }

    Result<std::vector<scenario::Job>> expanded = scenario::expand(sc);
    if (!expanded.ok()) {
      return reject("bad request: " + expanded.status().message());
    }
    std::vector<scenario::Job> jobs = std::move(expanded).value();
    if (jobs.size() > opts_.max_jobs_per_request) {
      return reject("bad request: expands to " + std::to_string(jobs.size()) +
                    " jobs (limit " + std::to_string(opts_.max_jobs_per_request) +
                    "; split the sweep)");
    }

    auto unit = make_unit(Unit::Kind::kRun, id);
    unit->jobs.reserve(jobs.size());
    for (scenario::Job& job : jobs) {
      JobItem item;
      item.cache_key = ReportCache::make_key(job, engine_sel);
      item.ready = server_.report_cache().get(item.cache_key);
      if (item.ready == nullptr) {
        acquire_inflight_slot();
        item.future = server_.engine().submit(scenario::to_request(
            job, engine_sel, &server_.build_cache()));
      }
      item.job = std::move(job);
      unit->jobs.push_back(std::move(item));
    }
    push_unit(std::move(unit));
  }

  // --- unit plumbing ---
  std::unique_ptr<Unit> make_unit(Unit::Kind kind, Json id) {
    auto unit = std::make_unique<Unit>();
    unit->kind = kind;
    unit->id = std::move(id);
    unit->start = Clock::now();
    return unit;
  }

  void push_lines(Json id, std::vector<Json> lines) {
    auto unit = make_unit(Unit::Kind::kLines, std::move(id));
    unit->lines = std::move(lines);
    push_unit(std::move(unit));
  }

  void push_unit(std::unique_ptr<Unit> unit) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(unit));
    }
    cv_.notify_all();
  }

  /// One slot per live (non-memoized) job, taken before submission and
  /// released by the collector after the report is consumed -- the reader's
  /// read-ahead can never hold more than max_inflight_jobs pending runs.
  void acquire_inflight_slot() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return inflight_ < opts_.max_inflight_jobs; });
    ++inflight_;
  }

  // --- collector side ---
  void collect_loop() {
    for (;;) {
      std::unique_ptr<Unit> unit;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return !queue_.empty() || done_reading_; });
        if (queue_.empty()) return;
        unit = std::move(queue_.front());
        queue_.pop_front();
      }
      collect(*unit);
    }
  }

  void collect(Unit& unit) {
    switch (unit.kind) {
      case Unit::Kind::kLines:
        for (const Json& line : unit.lines) emit(line);
        return;
      case Unit::Kind::kStats: {
        Json line = Json::object();
        line.set("type", "stats");
        line.set("id", unit.id);
        line.set("cache", server_.cache_stats_json());
        Json served = Json::object();
        served.set("requests", requests_);
        served.set("jobs", jobs_);
        served.set("failures", failures_);
        line.set("served", std::move(served));
        emit(line);
        return;
      }
      case Unit::Kind::kDrop: {
        server_.build_cache().clear();
        server_.report_cache().clear();
        Json line = Json::object();
        line.set("type", "dropped");
        line.set("id", unit.id);
        emit(line);
        return;
      }
      case Unit::Kind::kBye: {
        Json line = Json::object();
        line.set("type", "bye");
        line.set("id", unit.id);
        emit(line);
        return;
      }
      case Unit::Kind::kRun:
        break;
    }

    Rollup rollup;
    const usize n = unit.jobs.size();
    for (usize k = 0; k < n; ++k) {
      JobItem& item = unit.jobs[k];
      std::shared_ptr<const api::RunReport> report;
      const bool cached = item.ready != nullptr;
      if (cached) {
        report = item.ready;
      } else {
        report = std::make_shared<const api::RunReport>(item.future.get());
        server_.report_cache().put(item.cache_key, report);
        release_inflight_slot();
      }
      rollup.add(*report);
      emit(report_line(unit.id, k, n, cached, report_row(*report, item.job)));
    }
    ++requests_;
    jobs_ += n;
    failures_ += rollup.failures();

    Json done = Json::object();
    done.set("type", "done");
    done.set("id", unit.id);
    done.set("jobs", static_cast<i64>(n));
    done.set("failures", static_cast<i64>(rollup.failures()));
    done.set("rollup", rollup.to_json());
    done.set("cache", server_.cache_stats_json());
    done.set("wall_s",
             std::chrono::duration<double>(Clock::now() - unit.start).count());
    emit(done);
  }

  void release_inflight_slot() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --inflight_;
    }
    cv_.notify_all();
  }

  void emit(const Json& line) { out_ << line.dump() << "\n" << std::flush; }

  Server& server_;
  const ServerOptions& opts_;
  std::istream& in_;
  std::ostream& out_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Unit>> queue_;
  usize inflight_ = 0;
  bool done_reading_ = false;
  bool saw_shutdown_ = false;

  // Session-served tallies (reported by the stats op).
  u64 requests_ = 0;
  u64 jobs_ = 0;
  u64 failures_ = 0;
};

} // namespace

bool Server::serve(std::istream& in, std::ostream& out) {
  Session session(*this, in, out);
  return session.run();
}

// --- schsim run --stream ----------------------------------------------------

Result<StreamOutcome> run_scenario_streaming(const scenario::Scenario& scenario,
                                             const ScenarioStreamOptions& options,
                                             std::ostream& out,
                                             std::ostream& log) {
  Result<std::vector<scenario::Job>> expanded = scenario::expand(scenario);
  if (!expanded.ok()) return expanded.status();
  std::vector<scenario::Job> jobs = std::move(expanded).value();
  for (scenario::Job& job : jobs) {
    if (options.cores_override != 0) job.config.num_cores = options.cores_override;
    if (options.mem_latency_override != 0) {
      job.config.main_mem_latency = options.mem_latency_override;
    }
    if (options.mem_bw_override != 0) {
      job.config.main_mem_bytes_per_cycle = options.mem_bw_override;
    }
  }

  std::optional<api::Engine> own_engine;
  if (options.threads != 0) {
    own_engine.emplace(api::EngineConfig{.threads = options.threads});
  }
  api::Engine& engine = own_engine ? *own_engine : api::default_engine();
  api::BuildCache* cache =
      options.use_cache ? &api::default_build_cache() : nullptr;

  const auto t0 = Clock::now();
  std::vector<std::future<api::RunReport>> futures;
  futures.reserve(jobs.size());
  for (const scenario::Job& job : jobs) {
    futures.push_back(engine.submit(scenario::to_request(job, options.engine, cache)));
  }

  log << "scenario '" << scenario.name << "': streaming " << jobs.size()
      << " jobs (engine: " << api::engine_name(options.engine) << ")\n";

  const Json id = Json(scenario.name);
  Rollup rollup;
  StreamOutcome outcome;
  outcome.jobs = static_cast<u32>(jobs.size());
  for (usize k = 0; k < jobs.size(); ++k) {
    const api::RunReport report = futures[k].get();
    rollup.add(report);
    if (!report.ok) ++outcome.failures;
    out << report_line(id, k, jobs.size(), false, report_row(report, jobs[k]))
               .dump()
        << "\n"
        << std::flush;
  }

  Json done = Json::object();
  done.set("type", "done");
  done.set("id", id);
  done.set("jobs", static_cast<i64>(jobs.size()));
  done.set("failures", static_cast<i64>(outcome.failures));
  done.set("rollup", rollup.to_json());
  if (cache != nullptr) {
    const api::BuildCache::Stats b = cache->stats();
    Json c = Json::object();
    c.set("build", cache_stats_to_json(b.hits, b.misses, b.evictions, b.entries));
    done.set("cache", std::move(c));
  }
  done.set("wall_s", std::chrono::duration<double>(Clock::now() - t0).count());
  out << done.dump() << "\n" << std::flush;
  log << "streamed " << jobs.size() << " reports (" << outcome.failures
      << " failures)\n";
  return outcome;
}

// --- TCP listener -----------------------------------------------------------

#if defined(SCH_SERVE_HAVE_FDSTREAM)

} // namespace sch::serve

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

namespace sch::serve {

Status serve_listen(Server& server, u16 port, u16* bound_port,
                    std::ostream& log) {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) return Status::error("serve: socket() failed");
  int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(lfd);
    return Status::error("serve: cannot bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(lfd, 16) != 0) {
    ::close(lfd);
    return Status::error("serve: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len);
  const u16 actual = ntohs(addr.sin_port);
  if (bound_port != nullptr) *bound_port = actual;
  log << "serve: listening on 127.0.0.1:" << actual << "\n" << std::flush;

  std::atomic<bool> stop{false};
  std::vector<std::thread> sessions;
  for (;;) {
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR && !stop.load()) continue;
      break;  // listener shut down (or a fatal accept error)
    }
    sessions.emplace_back([&server, &stop, lfd, cfd] {
      FdStreamBuf ibuf(cfd, false);
      FdStreamBuf obuf(cfd, false);
      std::istream in(&ibuf);
      std::ostream out(&obuf);
      const bool shutdown_requested = server.serve(in, out);
      out.flush();
      ::close(cfd);
      if (shutdown_requested && !stop.exchange(true)) {
        ::shutdown(lfd, SHUT_RDWR);  // unblocks the accept loop
      }
    });
  }
  for (std::thread& t : sessions) t.join();
  ::close(lfd);
  return Status::ok();
}

#else // !SCH_SERVE_HAVE_FDSTREAM

Status serve_listen(Server&, u16, u16*, std::ostream&) {
  return Status::error("serve: TCP listener is unavailable on this platform "
                       "(stdin/stdout sessions still work)");
}

#endif

} // namespace sch::serve
