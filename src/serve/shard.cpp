#include "serve/shard.hpp"

#include <ostream>

#include "serve/fdstream.hpp"

#if defined(SCH_SERVE_HAVE_FDSTREAM)

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <istream>
#include <string>
#include <vector>

namespace sch::serve {

namespace {

/// Write all of `data` to `fd` (blocking fd), retrying on EINTR.
bool write_all(int fd, const char* data, usize size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<usize>(n);
  }
  return true;
}

void emit_parent_error(const std::string& message) {
  const std::string line = error_line(Json(), message).dump() + "\n";
  write_all(STDOUT_FILENO, line.data(), line.size());
}

struct Shard {
  pid_t pid = -1;
  int req_fd = -1;   // parent -> child (nonblocking)
  int resp_fd = -1;  // child -> parent
  std::string pending;   // request bytes not yet written
  std::string resp_buf;  // partial response line
  bool req_open = true;
  bool resp_open = true;
};

/// Child body: one full Server session over the pipe pair, then a hard
/// exit (no atexit/static teardown -- the parent's inherited state must
/// not be double-destroyed).
[[noreturn]] void shard_child(const ServerOptions& options, int req_fd,
                              int resp_fd) {
  {
    Server server(options);
    FdStreamBuf ibuf(req_fd, /*own=*/true);
    FdStreamBuf obuf(resp_fd, /*own=*/true);
    std::istream in(&ibuf);
    std::ostream out(&obuf);
    server.serve(in, out);
    out.flush();
  }
  ::_exit(0);
}

} // namespace

int serve_sharded(const ServerOptions& options, u32 shards, std::ostream& log) {
  if (shards < 1) shards = 1;
  std::vector<Shard> workers(shards);
  for (u32 i = 0; i < shards; ++i) {
    int req[2];
    int resp[2];
    if (::pipe(req) != 0 || ::pipe(resp) != 0) {
      log << "serve: pipe() failed\n";
      return 1;
    }
    log.flush();
    const pid_t pid = ::fork();
    if (pid < 0) {
      log << "serve: fork() failed\n";
      return 1;
    }
    if (pid == 0) {
      // Child: close every fd inherited from earlier shards plus the
      // parent ends of its own pipes, then serve.
      for (u32 j = 0; j < i; ++j) {
        ::close(workers[j].req_fd);
        ::close(workers[j].resp_fd);
      }
      ::close(req[1]);
      ::close(resp[0]);
      shard_child(options, req[0], resp[1]);
    }
    ::close(req[0]);
    ::close(resp[1]);
    ::fcntl(req[1], F_SETFL, O_NONBLOCK);
    workers[i].pid = pid;
    workers[i].req_fd = req[1];
    workers[i].resp_fd = resp[0];
  }
  log << "serve: " << shards << " shards forked\n";
  log.flush();

  // Parent event loop: multiplex stdin requests across shards and forward
  // complete response lines to stdout. All request writes go through
  // per-shard pending buffers drained on POLLOUT, so a shard with a full
  // request pipe can never deadlock the loop while another shard's
  // responses wait to be read.
  std::string stdin_buf;
  bool stdin_eof = false;
  bool discarding = false;  // inside an oversized request line
  u32 next_shard = 0;

  const auto dispatch_line = [&](std::string line) {
    while (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) return;
    // Broadcast shutdowns so every shard exits (a round-robin shutdown
    // would stop one shard and strand the rest).
    bool is_shutdown = false;
    if (line.find("shutdown") != std::string::npos) {
      Result<Json> parsed = Json::parse(line);
      if (parsed.ok()) {
        const Json req = std::move(parsed).value();
        const Json* op = req.is_object() ? req.get("op") : nullptr;
        is_shutdown =
            op != nullptr && op->is_string() && op->as_string() == "shutdown";
      }
    }
    line += '\n';
    if (is_shutdown) {
      for (Shard& w : workers) {
        if (w.req_open) w.pending += line;
      }
      stdin_eof = true;  // stop consuming stdin; drain and exit
      return;
    }
    for (u32 tried = 0; tried < shards; ++tried) {
      Shard& w = workers[next_shard];
      next_shard = (next_shard + 1) % shards;
      if (w.req_open) {
        w.pending += line;
        return;
      }
    }
    emit_parent_error("serve: no live shard to dispatch to");
  };

  const auto consume_stdin = [&](const char* data, usize size) {
    for (usize i = 0; i < size; ++i) {
      const char c = data[i];
      if (c == '\n') {
        if (discarding) {
          discarding = false;
        } else {
          dispatch_line(std::move(stdin_buf));
        }
        stdin_buf.clear();
        continue;
      }
      if (discarding) continue;
      stdin_buf += c;
      if (stdin_buf.size() > options.max_line_bytes) {
        emit_parent_error("request line exceeds " +
                          std::to_string(options.max_line_bytes) + " bytes");
        stdin_buf.clear();
        discarding = true;
      }
    }
  };

  char io_buf[65536];
  for (;;) {
    bool any_resp_open = false;
    for (const Shard& w : workers) any_resp_open |= w.resp_open;
    if (!any_resp_open) break;

    std::vector<pollfd> fds;
    std::vector<Shard*> fd_owner;  // parallel; nullptr = stdin
    usize total_pending = 0;
    for (Shard& w : workers) total_pending += w.pending.size();
    if (!stdin_eof && total_pending < (4u << 20)) {
      fds.push_back({STDIN_FILENO, POLLIN, 0});
      fd_owner.push_back(nullptr);
    }
    for (Shard& w : workers) {
      if (w.resp_open) {
        fds.push_back({w.resp_fd, POLLIN, 0});
        fd_owner.push_back(&w);
      }
      if (w.req_open && !w.pending.empty()) {
        fds.push_back({w.req_fd, POLLOUT, 0});
        fd_owner.push_back(&w);
      }
    }
    if (fds.empty()) break;
    const int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }

    for (usize i = 0; i < fds.size(); ++i) {
      const pollfd& p = fds[i];
      if (p.revents == 0) continue;
      if (fd_owner[i] == nullptr) {
        // stdin readable (or closed)
        const ssize_t n = ::read(STDIN_FILENO, io_buf, sizeof(io_buf));
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          stdin_eof = true;
          if (!stdin_buf.empty() && !discarding) {
            dispatch_line(std::move(stdin_buf));  // unterminated final line
            stdin_buf.clear();
          }
        } else {
          consume_stdin(io_buf, static_cast<usize>(n));
        }
        continue;
      }
      Shard& w = *fd_owner[i];
      if (p.fd == w.resp_fd) {
        const ssize_t n = ::read(w.resp_fd, io_buf, sizeof(io_buf));
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          w.resp_open = false;
          ::close(w.resp_fd);
          if (!w.resp_buf.empty()) {
            w.resp_buf += '\n';
            write_all(STDOUT_FILENO, w.resp_buf.data(), w.resp_buf.size());
            w.resp_buf.clear();
          }
        } else {
          // Forward only complete lines so shard outputs never interleave
          // mid-line on stdout.
          w.resp_buf.append(io_buf, static_cast<usize>(n));
          const usize last_nl = w.resp_buf.rfind('\n');
          if (last_nl != std::string::npos) {
            write_all(STDOUT_FILENO, w.resp_buf.data(), last_nl + 1);
            w.resp_buf.erase(0, last_nl + 1);
          }
        }
      } else if (p.fd == w.req_fd) {
        const ssize_t n =
            ::write(w.req_fd, w.pending.data(), w.pending.size());
        if (n < 0) {
          if (errno == EINTR || errno == EAGAIN) continue;
          // Shard died mid-request (EPIPE): drop its queue; its resp EOF
          // will follow.
          w.req_open = false;
          ::close(w.req_fd);
          w.pending.clear();
        } else {
          w.pending.erase(0, static_cast<usize>(n));
        }
      }
    }

    // After stdin EOF, close request pipes as they drain so shards see
    // their own EOF and finish.
    if (stdin_eof) {
      for (Shard& w : workers) {
        if (w.req_open && w.pending.empty()) {
          w.req_open = false;
          ::close(w.req_fd);
        }
      }
    }
  }

  int exit_code = 0;
  for (Shard& w : workers) {
    if (w.req_open) ::close(w.req_fd);
    if (w.resp_open) ::close(w.resp_fd);
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) exit_code = 1;
  }
  return exit_code;
}

} // namespace sch::serve

#else // !SCH_SERVE_HAVE_FDSTREAM

namespace sch::serve {

int serve_sharded(const ServerOptions&, u32, std::ostream& log) {
  log << "serve: --shards requires fork(); unavailable on this platform\n";
  return 1;
}

} // namespace sch::serve

#endif
