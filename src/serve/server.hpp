// NDJSON scenario service above api::Engine: one request line in, streamed
// report lines out. Each run request expands to jobs exactly like a
// scenario file (same schema, same strict validation), the jobs fan out
// across the engine worker pool, and every RunReport is emitted as its own
// response line the moment it completes -- never buffered into one
// document. Two caches amortize the per-request fixed costs:
//
//  * the build cache (api::BuildCache, shared with scenario sweeps) skips
//    kernel generation + predecode for repeated shapes;
//  * the report cache memoizes whole RunReports -- sound because reports
//    are bit-deterministic for a given (kernel, variant, sizes, config,
//    engine, verify) key apart from `wall_s` -- so a warm repeated request
//    skips simulation entirely (responses carry `"cached": true`).
//
// Protocol details, the cache-key contract and the rollup definitions are
// specified in docs/SERVE.md; tools/check_serve_schema.py pins the
// response schema.
#pragma once

#include <iosfwd>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "api/build_cache.hpp"
#include "api/engine.hpp"
#include "scenario/scenario_runner.hpp"

namespace sch::serve {

using Json = scenario::Json;

struct ServerOptions {
  /// Engine worker threads. 0 = share the process-wide default engine
  /// (SCH_SWEEP_THREADS / hardware concurrency); nonzero builds a dedicated
  /// pool of that width.
  u32 threads = 0;
  /// Capacity of the two caches (entries; 0 disables the cache).
  usize build_cache_capacity = 256;
  usize report_cache_capacity = 4096;
  /// A request line longer than this returns a structured error and is
  /// discarded up to the next newline; the session keeps going.
  usize max_line_bytes = 1u << 20;
  /// Upper bound on jobs one request may expand to (kernel x variants x
  /// sizes x repeat); larger requests are rejected with a structured error.
  usize max_jobs_per_request = 4096;
  /// Reader-side backpressure: stop parsing ahead while this many jobs are
  /// submitted but not yet collected (bounds memory on unbounded input).
  usize max_inflight_jobs = 1024;
};

/// Memoized whole-run reports (the serve layer's second-level cache). Keyed
/// like the build cache plus engine selection and verify policy -- every
/// field of the row is deterministic for that key except `wall_s`, which a
/// hit replays from the original run. Plain LRU; unlike BuildCache there is
/// no in-flight dedup (a concurrent duplicate just runs twice and the
/// second insert wins harmlessly).
class ReportCache {
 public:
  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 evictions = 0;
    u64 entries = 0;
  };

  explicit ReportCache(usize capacity) : capacity_(capacity) {}

  /// Null on miss (a miss is counted; pair each get with at most one put).
  std::shared_ptr<const api::RunReport> get(const std::string& key);
  void put(const std::string& key, std::shared_ptr<const api::RunReport> report);

  [[nodiscard]] Stats stats() const;
  void clear();

  static std::string make_key(const scenario::Job& job, api::EngineSel engine);

 private:
  struct Entry {
    std::shared_ptr<const api::RunReport> report;
    std::list<std::string>::iterator lru;
  };
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  usize capacity_;
  Stats stats_;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});

  /// Run one NDJSON session: read request lines from `in` until EOF or a
  /// shutdown op, stream response lines to `out`. Response order is request
  /// order and, within a request, job order -- but lines are written as
  /// soon as their job completes while later requests are already parsed
  /// and submitted (read-ahead keeps the pool saturated across small
  /// requests). Malformed input never ends the session; every defect maps
  /// to a structured error line. Returns true when a shutdown op ended the
  /// session (false on plain EOF).
  ///
  /// Reentrant: concurrent sessions on one Server share the engine and both
  /// caches; per-session state is local to this call.
  bool serve(std::istream& in, std::ostream& out);

  [[nodiscard]] api::BuildCache& build_cache() { return build_cache_; }
  [[nodiscard]] ReportCache& report_cache() { return report_cache_; }
  [[nodiscard]] api::Engine& engine() {
    return own_engine_ ? *own_engine_ : api::default_engine();
  }
  [[nodiscard]] const ServerOptions& options() const { return options_; }

  /// {"build": {hits,misses,evictions,entries}, "report": {...}} -- the
  /// object embedded in done/stats lines.
  [[nodiscard]] Json cache_stats_json() const;

 private:
  ServerOptions options_;
  std::optional<api::Engine> own_engine_;
  api::BuildCache build_cache_;
  ReportCache report_cache_;
};

/// Serve a TCP listener on 127.0.0.1:`port` (0 picks a free port, reported
/// through `bound_port` when non-null). One thread per connection, all
/// sharing `server` (and therefore its caches). Returns when a connection
/// sends a shutdown op; errors (bind/listen failures) come back as a
/// Status without touching the process.
Status serve_listen(Server& server, u16 port, u16* bound_port,
                    std::ostream& log);

// --- streaming writer reuse (schsim run --stream) --------------------------

struct ScenarioStreamOptions {
  api::EngineSel engine = api::EngineSel::kCycle;
  u32 threads = 0;
  bool use_cache = true;
  u32 cores_override = 0;
  u32 mem_latency_override = 0;
  u32 mem_bw_override = 0;
};

struct StreamOutcome {
  u32 jobs = 0;
  u32 failures = 0;
};

/// Run an expanded scenario emitting the serve-protocol NDJSON lines
/// (report per job, one trailing done line with the rollup) to `out`
/// incrementally -- the `schsim run --stream` path. Progress goes to `log`.
Result<StreamOutcome> run_scenario_streaming(const scenario::Scenario& scenario,
                                             const ScenarioStreamOptions& options,
                                             std::ostream& out,
                                             std::ostream& log);

// --- line builders (shared by Server, the sharded front-end and tests) -----

/// One report response line: {"type":"report","id":..,"seq":k,"of":N,
/// "cached":bool,"report":{row + sizes/sim/repeat echo}}.
Json report_line(const Json& id, usize seq, usize of, bool cached, Json row);
/// RunReport::to_json() plus the job echo (sizes/sim/repeat).
Json report_row(const api::RunReport& report, const scenario::Job& job);
/// {"type":"error","id":..,"error":msg,"failure":{validation,-1,-1,-1}}.
Json error_line(const Json& id, const std::string& message);

} // namespace sch::serve
