#include "serve/rollup.hpp"

#include <algorithm>
#include <cmath>

namespace sch::serve {

namespace {

/// Nearest-rank percentile of an ascending-sorted vector: the smallest
/// element with at least ceil(p/100 * N) values at or below it.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const usize rank = static_cast<usize>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  const usize idx = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

} // namespace

void Rollup::add(const api::RunReport& report) {
  ++jobs_;
  if (!report.ok) {
    ++failures_;
    const auto kind = static_cast<usize>(report.failure.kind);
    if (kind < 8) ++failure_counts_[kind];
    return;
  }
  if (report.cycles > 0) {
    log_cycles_sum_ += std::log(static_cast<double>(report.cycles));
    ++cycle_rows_;
    utilizations_.push_back(report.fpu_utilization);
  }
  total_cycles_ += report.cycles;
  total_iss_instructions_ += report.iss_instructions;
  total_useful_flops_ += report.useful_flops;
  tcdm_reads_ += report.tcdm_reads;
  tcdm_writes_ += report.tcdm_writes;
  tcdm_conflicts_ += report.tcdm_conflicts;
  for (const auto& [bank, conflicts] : report.tcdm_top_banks) {
    auto it = std::find_if(bank_conflicts_.begin(), bank_conflicts_.end(),
                           [&](const auto& e) { return e.first == bank; });
    if (it == bank_conflicts_.end()) {
      bank_conflicts_.emplace_back(bank, conflicts);
    } else {
      it->second += conflicts;
    }
  }
}

Json Rollup::to_json() const {
  Json o = Json::object();
  o.set("jobs", static_cast<i64>(jobs_));
  o.set("ok", static_cast<i64>(jobs_ - failures_));
  o.set("failures", static_cast<i64>(failures_));
  if (failures_ != 0) {
    Json kinds = Json::object();
    for (usize k = 0; k < 8; ++k) {
      if (failure_counts_[k] != 0) {
        kinds.set(api::failure_kind_name(static_cast<api::FailureKind>(k)),
                  static_cast<i64>(failure_counts_[k]));
      }
    }
    o.set("failure_kinds", std::move(kinds));
  }
  o.set("geomean_cycles",
        cycle_rows_ == 0
            ? 0.0
            : std::exp(log_cycles_sum_ / static_cast<double>(cycle_rows_)));
  o.set("total_cycles", total_cycles_);
  o.set("total_iss_instructions", total_iss_instructions_);
  o.set("total_useful_flops", total_useful_flops_);

  std::vector<double> sorted = utilizations_;
  std::sort(sorted.begin(), sorted.end());
  Json util = Json::object();
  util.set("p50", percentile(sorted, 50));
  util.set("p90", percentile(sorted, 90));
  util.set("p99", percentile(sorted, 99));
  o.set("fpu_utilization", std::move(util));

  Json tcdm = Json::object();
  tcdm.set("reads", tcdm_reads_);
  tcdm.set("writes", tcdm_writes_);
  tcdm.set("conflicts", tcdm_conflicts_);
  std::vector<std::pair<u32, u64>> banks = bank_conflicts_;
  std::sort(banks.begin(), banks.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (banks.size() > 8) banks.resize(8);
  Json top = Json::array();
  for (const auto& [bank, conflicts] : banks) {
    Json e = Json::object();
    e.set("bank", static_cast<i64>(bank));
    e.set("conflicts", conflicts);
    top.push_back(std::move(e));
  }
  tcdm.set("top_banks", std::move(top));
  o.set("tcdm", std::move(tcdm));
  return o;
}

} // namespace sch::serve
