// Minimal iostreams adapter over a POSIX file descriptor, used by the serve
// layer to run NDJSON sessions over pipes (forked shards) and sockets (the
// TCP listener) with the same Server::serve(istream&, ostream&) entry point
// that stdin/stdout sessions use. Unix-only; the serve front-ends that need
// it are compiled out elsewhere.
#pragma once

#if defined(__unix__) || defined(__APPLE__)
#define SCH_SERVE_HAVE_FDSTREAM 1

#include <unistd.h>

#include <cerrno>
#include <istream>
#include <ostream>
#include <streambuf>

namespace sch::serve {

class FdStreamBuf : public std::streambuf {
 public:
  /// Borrows `fd` unless `own` (then the destructor closes it after a final
  /// flush). One FdStreamBuf serves one direction; attach it to either an
  /// istream or an ostream, not both.
  explicit FdStreamBuf(int fd, bool own = false) : fd_(fd), own_(own) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof(out_));
  }
  ~FdStreamBuf() override {
    sync();
    if (own_) ::close(fd_);
  }
  FdStreamBuf(const FdStreamBuf&) = delete;
  FdStreamBuf& operator=(const FdStreamBuf&) = delete;

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t n;
    do {
      n = ::read(fd_, in_, sizeof(in_));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (flush_out() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_out(); }

 private:
  int flush_out() {
    const char* p = pbase();
    while (p < pptr()) {
      const ssize_t n = ::write(fd_, p, static_cast<size_t>(pptr() - p));
      if (n < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      p += n;
    }
    setp(out_, out_ + sizeof(out_));
    return 0;
  }

  int fd_;
  bool own_;
  char in_[8192];
  char out_[8192];
};

} // namespace sch::serve

#endif // unix
