#include "ssr/streamer.hpp"

#include <cassert>

#include "mem/memory.hpp"

namespace sch::ssr {

namespace {

/// Arbitrate `addr` for `requester` when it lies in the TCDM window; an
/// address outside the window (user-settable stream pointers can leave it)
/// bypasses the banks un-arbitrated and is counted instead of wrapping
/// into a bogus bank index. Returns false when the bank denied the access.
bool request_or_bypass(Tcdm& tcdm, u32 requester, Addr addr, bool is_write) {
  if (!Memory::in_tcdm(addr)) {
    tcdm.count_out_of_range();
    return true;
  }
  return tcdm.request(requester, addr, is_write);
}

} // namespace

Streamer::Streamer(const StreamerConfig& config)
    : scfg_(config),
      data_fifo_(config.data_fifo_depth),
      idx_q_(config.idx_queue_depth),
      write_fifo_(config.write_fifo_depth) {}

void Streamer::arm(const SsrRawConfig& cfg, Addr ptr, u32 dims, StreamDir dir) {
  cfg_ = cfg;
  dir_ = dir;
  // Repetition replays buffered data; the generator runs repeat-free.
  gen_.arm(ptr, dims, cfg.bounds, cfg.strides, 0);
  data_fifo_.clear();
  idx_q_.clear();
  write_fifo_.clear();
}

void Streamer::disarm() {
  dir_ = StreamDir::kNone;
  gen_.reset();
  data_fifo_.clear();
  idx_q_.clear();
  write_fifo_.clear();
}

bool Streamer::idle() const {
  if (dir_ == StreamDir::kNone) return true;
  if (dir_ == StreamDir::kRead) {
    return gen_.done() && idx_q_.empty() && data_fifo_.empty();
  }
  return write_fifo_.empty();
}

bool Streamer::can_pop() const {
  return dir_ == StreamDir::kRead && !data_fifo_.empty() &&
         data_fifo_.front().available_at <= now_;
}

u64 Streamer::pop() {
  assert(can_pop());
  DataEntry& e = data_fifo_.front();
  const u64 v = e.value;
  ++stats_.elements_popped;
  if (--e.copies == 0) data_fifo_.pop();
  return v;
}

bool Streamer::can_push() const {
  return dir_ == StreamDir::kWrite && write_fifo_.size() < scfg_.write_fifo_depth;
}

void Streamer::push(u64 value) {
  assert(can_push());
  write_fifo_.push(value);
  ++stats_.elements_pushed;
}

void Streamer::begin_cycle(Cycle now) { now_ = now; }

bool Streamer::fifo_has_room() const {
  return data_fifo_.size() < scfg_.data_fifo_depth;
}

void Streamer::fetch_index_word(Cycle now, Tcdm& tcdm, Memory& mem,
                                u32 requester) {
  const Addr word_addr = gen_.peek() & ~Addr{7};
  if (!request_or_bypass(tcdm, requester, word_addr, /*is_write=*/false)) {
    ++stats_.conflict_retries;
    return;
  }
  ++stats_.idx_reads;
  const u32 idx_bytes = 1u << cfg_.idx_size_log2();
  // Decode every index the fetched word covers (packed-index amortization).
  while (!gen_.done() && (gen_.peek() & ~Addr{7}) == word_addr &&
         idx_q_.size() < scfg_.idx_queue_depth) {
    const u64 idx = mem.load(gen_.peek(), idx_bytes);
    const Addr data_addr =
        cfg_.idx_base + static_cast<Addr>(idx << cfg_.idx_shift());
    idx_q_.push(IdxEntry{data_addr, now + 1});
    gen_.advance();
  }
}

bool Streamer::data_addr_known(Cycle now) const {
  if (!cfg_.indirect()) return !gen_.done();
  return !idx_q_.empty() && idx_q_.front().available_at <= now;
}

Addr Streamer::next_data_addr() const {
  return cfg_.indirect() ? idx_q_.front().data_addr : gen_.peek();
}

void Streamer::consume_data_addr() {
  if (cfg_.indirect()) {
    idx_q_.pop();
  } else {
    gen_.advance();
  }
}

void Streamer::tick_fetch(Cycle now, Tcdm& tcdm, Memory& mem, u32 requester) {
  if (dir_ == StreamDir::kNone) return;

  if (dir_ == StreamDir::kRead) {
    // Prefer a data fetch; fall back to an index-word fetch.
    if (data_addr_known(now) && fifo_has_room()) {
      const Addr addr = next_data_addr();
      if (!request_or_bypass(tcdm, requester, addr, /*is_write=*/false)) {
        ++stats_.conflict_retries;
        return;
      }
      ++stats_.data_reads;
      data_fifo_.push(DataEntry{mem.load(addr, 8), cfg_.repeat + 1, now + 1});
      consume_data_addr();
      return;
    }
    if (cfg_.indirect() && !gen_.done() &&
        idx_q_.size() < scfg_.idx_queue_depth) {
      fetch_index_word(now, tcdm, mem, requester);
    }
    return;
  }

  // Write stream: drain the FIFO head.
  if (write_fifo_.empty()) return;
  if (cfg_.indirect() && !data_addr_known(now)) {
    if (!gen_.done() && idx_q_.size() < scfg_.idx_queue_depth) {
      fetch_index_word(now, tcdm, mem, requester);
    }
    return;
  }
  if (!data_addr_known(now)) return; // affine stream exhausted: drop nothing, program bug
  const Addr addr = next_data_addr();
  if (!request_or_bypass(tcdm, requester, addr, /*is_write=*/true)) {
    ++stats_.conflict_retries;
    return;
  }
  ++stats_.data_writes;
  mem.store(addr, write_fifo_.front(), 8);
  write_fifo_.pop();
  consume_data_addr();
}

} // namespace sch::ssr
