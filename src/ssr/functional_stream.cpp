#include "ssr/functional_stream.hpp"

#include <cassert>

namespace sch::ssr {

void FunctionalStream::arm(const SsrRawConfig& cfg, Addr ptr, u32 dims,
                           StreamDir dir) {
  cfg_ = cfg;
  dir_ = dir;
  // Repetition is applied in the datapath, so the generator runs repeat-free.
  gen_.arm(ptr, dims, cfg.bounds, cfg.strides, 0);
  rep_left_ = 0;
  rep_valid_ = false;
  consumed_ = 0;
}

void FunctionalStream::disarm() {
  dir_ = StreamDir::kNone;
  gen_.reset();
}

bool FunctionalStream::done() const {
  if (dir_ == StreamDir::kNone) return true;
  return gen_.done() && rep_left_ == 0;
}

u64 FunctionalStream::total() const {
  if (dir_ == StreamDir::kNone) return 0;
  const u64 rep = dir_ == StreamDir::kRead ? cfg_.repeat + 1 : 1;
  return gen_.total() * rep;
}

Addr FunctionalStream::current_addr(const Memory& mem) const {
  const Addr elem_addr = gen_.peek();
  if (!cfg_.indirect()) return elem_addr;
  const u32 idx_bytes = 1u << cfg_.idx_size_log2();
  const u64 idx = mem.load(elem_addr, idx_bytes);
  return cfg_.idx_base + static_cast<Addr>(idx << cfg_.idx_shift());
}

std::optional<u64> FunctionalStream::read_next(const Memory& mem) {
  if (dir_ != StreamDir::kRead) return std::nullopt;
  if (rep_left_ > 0) {
    --rep_left_;
    ++consumed_;
    return rep_value_;
  }
  if (gen_.done()) return std::nullopt;
  const Addr addr = current_addr(mem);
  const u64 value = mem.load(addr, 8);
  gen_.advance();
  rep_value_ = value;
  rep_left_ = cfg_.repeat;
  ++consumed_;
  return value;
}

bool FunctionalStream::write_next(Memory& mem, u64 value) {
  if (dir_ != StreamDir::kWrite || gen_.done()) return false;
  const Addr addr = current_addr(mem);
  mem.store(addr, value, 8);
  gen_.advance();
  ++consumed_;
  return true;
}

} // namespace sch::ssr
