// Affine address generation: up to 4 nested hardware loops with relative
// strides (Snitch semantics: stride[d] is the pointer jump applied when
// dimension d increments; inner indices reset without pointer adjustment).
// Element repetition serves streams whose consumer reads each element
// multiple times (e.g. one stencil coefficient feeding U unrolled points).
#pragma once

#include <array>

#include "common/types.hpp"
#include "ssr/ssr_config.hpp"

namespace sch::ssr {

class AddrGen {
 public:
  AddrGen() = default;

  /// Arm with `dims` active dimensions (1..4) starting at `base`.
  void arm(Addr base, u32 dims, const std::array<u32, kMaxDims>& bounds,
           const std::array<i32, kMaxDims>& strides, u32 repeat);

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] bool done() const { return done_; }

  /// Current element address (valid while !done()).
  [[nodiscard]] Addr peek() const { return ptr_; }

  /// Consume one element occurrence (handles repetition).
  void advance();

  /// Total element occurrences the stream will produce.
  [[nodiscard]] u64 total() const { return total_; }
  [[nodiscard]] u64 produced() const { return produced_; }
  [[nodiscard]] u64 remaining() const { return total_ - produced_; }

  /// True while consecutive next addresses advance by exactly `step` bytes
  /// within the innermost dimension (used for packed index fetches).
  [[nodiscard]] bool inner_contiguous(u32 step) const;
  /// Occurrences left before the innermost dimension wraps.
  [[nodiscard]] u64 inner_remaining() const;

  void reset() { *this = AddrGen(); }

 private:
  bool armed_ = false;
  bool done_ = true;
  u32 dims_ = 0;
  std::array<u32, kMaxDims> bounds_{};
  std::array<i32, kMaxDims> strides_{};
  std::array<u32, kMaxDims> idx_{};
  u32 repeat_ = 0;
  u32 rep_left_ = 0;
  Addr ptr_ = 0;
  u64 total_ = 0;
  u64 produced_ = 0;
};

} // namespace sch::ssr
