#include "ssr/addr_gen.hpp"

#include <cassert>

namespace sch::ssr {

void AddrGen::arm(Addr base, u32 dims, const std::array<u32, kMaxDims>& bounds,
                  const std::array<i32, kMaxDims>& strides, u32 repeat) {
  assert(dims >= 1 && dims <= kMaxDims);
  armed_ = true;
  done_ = false;
  dims_ = dims;
  bounds_ = bounds;
  strides_ = strides;
  idx_.fill(0);
  repeat_ = repeat;
  rep_left_ = repeat;
  ptr_ = base;
  produced_ = 0;
  total_ = static_cast<u64>(repeat) + 1;
  for (u32 d = 0; d < dims_; ++d) total_ *= static_cast<u64>(bounds_[d]) + 1;
}

void AddrGen::advance() {
  assert(!done_);
  ++produced_;
  if (rep_left_ > 0) {
    --rep_left_;
    return;
  }
  rep_left_ = repeat_;
  for (u32 d = 0; d < dims_; ++d) {
    if (idx_[d] < bounds_[d]) {
      ++idx_[d];
      ptr_ = static_cast<Addr>(static_cast<i64>(ptr_) + strides_[d]);
      return;
    }
    idx_[d] = 0; // wrap; relative-stride semantics: no pointer correction
  }
  done_ = true;
}

bool AddrGen::inner_contiguous(u32 step) const {
  return repeat_ == 0 && dims_ >= 1 && strides_[0] == static_cast<i32>(step);
}

u64 AddrGen::inner_remaining() const {
  if (done_) return 0;
  return static_cast<u64>(bounds_[0] - idx_[0]) + 1;
}

} // namespace sch::ssr
