// Stream-semantic-register configuration space (Snitch-style, SARIS-extended).
//
// Three streamers map to ft0/ft1/ft2 when globally enabled via CSR 0x7C0.
// Configuration goes through `scfgw rs1, imm` / `scfgr rd, imm` with
// imm = reg_id * 4 + ssr_id. Writing RPTR[d] / WPTR[d] arms a (d+1)-dim
// read / write stream starting at the written pointer.
#pragma once

#include <array>

#include "common/types.hpp"

namespace sch::ssr {

inline constexpr u32 kNumSsrs = 3;
/// FP registers claimed by the streamers when SSRs are enabled.
inline constexpr u8 kSsrFpReg[kNumSsrs] = {0, 1, 2}; // ft0, ft1, ft2
inline constexpr u32 kMaxDims = 4;

/// Config register ids within one streamer's config block.
enum class CfgReg : u32 {
  kStatus = 0,
  kRepeat = 1,
  kBound0 = 2,  // .. kBound3 = 5: iterations-1 per dim
  kStride0 = 6, // .. kStride3 = 9: signed byte strides (relative jumps)
  kIdxCfg = 10, // bits[1:0] idx size log2; bits[9:4] data shift; bit[16] enable
  kIdxBase = 11,
  kRptr0 = 12,  // .. kRptr3 = 15: arm read stream with dims = d+1
  kWptr0 = 16,  // .. kWptr3 = 19: arm write stream with dims = d+1
};

inline constexpr u32 kNumCfgRegs = 20;

/// scfg immediate encoding.
constexpr i32 cfg_index(u32 ssr_id, CfgReg reg) {
  return static_cast<i32>(static_cast<u32>(reg) * 4 + ssr_id);
}
constexpr u32 cfg_ssr_of(i32 index) { return static_cast<u32>(index) % 4; }
constexpr u32 cfg_reg_of(i32 index) { return static_cast<u32>(index) / 4; }

/// Raw per-streamer configuration state.
struct SsrRawConfig {
  u32 repeat = 0;                       // element repetition count - 1
  std::array<u32, kMaxDims> bounds{};   // iterations - 1
  std::array<i32, kMaxDims> strides{};  // relative byte jumps
  u32 idx_cfg = 0;
  Addr idx_base = 0;

  [[nodiscard]] bool indirect() const { return ((idx_cfg >> 16) & 1u) != 0; }
  [[nodiscard]] u32 idx_size_log2() const { return idx_cfg & 0x3u; }
  [[nodiscard]] u32 idx_shift() const { return (idx_cfg >> 4) & 0x3Fu; }

  /// Write a config register; returns false for read-only/unknown ids.
  bool write(CfgReg reg, u32 value);
  /// Read a config register (status handled by the owner).
  [[nodiscard]] u32 read(CfgReg reg) const;
};

/// Direction of an armed stream.
enum class StreamDir : u8 { kNone, kRead, kWrite };

} // namespace sch::ssr
