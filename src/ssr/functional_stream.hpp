// Architectural (timing-free) stream model used by the functional ISS.
// Shares the address-generation semantics with the timing streamer; element
// repetition replays the fetched value without re-reading memory (the
// hardware has a repeat counter in the datapath, saving L1 bandwidth).
#pragma once

#include <optional>

#include "common/types.hpp"
#include "mem/memory.hpp"
#include "ssr/addr_gen.hpp"
#include "ssr/ssr_config.hpp"

namespace sch::ssr {

class FunctionalStream {
 public:
  /// Arm from raw config. `dims` in 1..4; dir read or write.
  void arm(const SsrRawConfig& cfg, Addr ptr, u32 dims, StreamDir dir);
  void disarm();

  [[nodiscard]] StreamDir dir() const { return dir_; }
  [[nodiscard]] bool active() const { return dir_ != StreamDir::kNone && !done(); }
  [[nodiscard]] bool done() const;

  /// Read the next element (64-bit raw). nullopt when the stream is
  /// exhausted or not a read stream (architectural error at the call site).
  std::optional<u64> read_next(const Memory& mem);

  /// Write the next element. Returns false when exhausted / not a write.
  bool write_next(Memory& mem, u64 value);

  /// Total element occurrences (fetches x repetition for reads).
  [[nodiscard]] u64 total() const;
  [[nodiscard]] u64 consumed() const { return consumed_; }

 private:
  /// Resolve the current element's data address (affine or indirect).
  Addr current_addr(const Memory& mem) const;

  SsrRawConfig cfg_;
  AddrGen gen_;
  StreamDir dir_ = StreamDir::kNone;
  u32 rep_left_ = 0;
  u64 rep_value_ = 0;
  bool rep_valid_ = false;
  u64 consumed_ = 0;
};

} // namespace sch::ssr
