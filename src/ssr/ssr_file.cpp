#include "ssr/ssr_file.hpp"

namespace sch::ssr {

Result<std::optional<ArmEvent>> apply_cfg_write(
    std::array<SsrRawConfig, kNumSsrs>& cfgs, i32 index, u32 value) {
  if (index < 0) return Status::error("scfgw: negative config index");
  const u32 ssr = cfg_ssr_of(index);
  const u32 reg = cfg_reg_of(index);
  if (ssr >= kNumSsrs || reg >= kNumCfgRegs) {
    return Status::error("scfgw: config index out of range: " +
                         std::to_string(index));
  }
  const auto creg = static_cast<CfgReg>(reg);
  const u32 rptr0 = static_cast<u32>(CfgReg::kRptr0);
  const u32 wptr0 = static_cast<u32>(CfgReg::kWptr0);
  if (reg >= rptr0 && reg <= rptr0 + 3) {
    return std::optional<ArmEvent>(
        ArmEvent{ssr, StreamDir::kRead, reg - rptr0 + 1, value});
  }
  if (reg >= wptr0 && reg <= wptr0 + 3) {
    return std::optional<ArmEvent>(
        ArmEvent{ssr, StreamDir::kWrite, reg - wptr0 + 1, value});
  }
  if (creg == CfgReg::kStatus) {
    return Status::error("scfgw: status register is read-only");
  }
  cfgs[ssr].write(creg, value);
  return std::optional<ArmEvent>(std::nullopt);
}

u32 apply_cfg_read(const std::array<SsrRawConfig, kNumSsrs>& cfgs, i32 index,
                   const std::array<bool, kNumSsrs>& active) {
  if (index < 0) return 0;
  const u32 ssr = cfg_ssr_of(index);
  const u32 reg = cfg_reg_of(index);
  if (ssr >= kNumSsrs || reg >= kNumCfgRegs) return 0;
  const auto creg = static_cast<CfgReg>(reg);
  if (creg == CfgReg::kStatus) return active[ssr] ? 1u : 0u;
  return cfgs[ssr].read(creg);
}

Status FunctionalSsrFile::cfg_write(i32 index, u32 value) {
  auto result = apply_cfg_write(cfgs_, index, value);
  if (!result.ok()) return result.status();
  if (const auto& arm = result.value(); arm.has_value()) {
    streams_[arm->ssr].arm(cfgs_[arm->ssr], arm->ptr, arm->dims, arm->dir);
  }
  return Status::ok();
}

u32 FunctionalSsrFile::cfg_read(i32 index) const {
  std::array<bool, kNumSsrs> active{};
  for (u32 i = 0; i < kNumSsrs; ++i) active[i] = streams_[i].active();
  return apply_cfg_read(cfgs_, index, active);
}

std::optional<u64> FunctionalSsrFile::read(u8 fp_reg, const Memory& mem) {
  if (!maps(fp_reg)) return std::nullopt;
  return streams_[fp_reg].read_next(mem);
}

bool FunctionalSsrFile::write(u8 fp_reg, Memory& mem, u64 value) {
  if (!maps(fp_reg)) return false;
  return streams_[fp_reg].write_next(mem, value);
}

} // namespace sch::ssr
