// Shared SSR configuration front-end: decodes scfgw/scfgr accesses into
// per-streamer config writes and arm events, for both the functional ISS
// (FunctionalSsrFile) and the cycle-level model (which owns Streamers).
#pragma once

#include <array>
#include <optional>

#include "common/status.hpp"
#include "common/types.hpp"
#include "mem/memory.hpp"
#include "ssr/functional_stream.hpp"
#include "ssr/ssr_config.hpp"

namespace sch::ssr {

/// Result of a config write that armed a stream.
struct ArmEvent {
  u32 ssr = 0;
  StreamDir dir = StreamDir::kNone;
  u32 dims = 0;
  Addr ptr = 0;
};

/// Decode a `scfgw` write. Updates `cfg` in place for plain register writes;
/// returns an ArmEvent for rptr/wptr writes. Returns error status for an
/// out-of-range index.
Result<std::optional<ArmEvent>> apply_cfg_write(
    std::array<SsrRawConfig, kNumSsrs>& cfgs, i32 index, u32 value);

/// Decode a `scfgr` read (status reads handled by the caller via `active`).
u32 apply_cfg_read(const std::array<SsrRawConfig, kNumSsrs>& cfgs, i32 index,
                   const std::array<bool, kNumSsrs>& active);

/// Architectural SSR register file for the ISS: three functional streams
/// plus the global enable bit (CSR 0x7C0).
class FunctionalSsrFile {
 public:
  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool e) { enabled_ = e; }

  /// True when FP register `r` is stream-mapped right now: SSRs are globally
  /// enabled AND streamer `r` has been armed. An unarmed ft0..ft2 behaves as
  /// a normal register, letting kernels that only use two streams keep the
  /// third register for data (the Chaining variant relies on this).
  [[nodiscard]] bool maps(u8 fp_reg) const {
    return enabled_ && fp_reg < kNumSsrs &&
           streams_[fp_reg].dir() != StreamDir::kNone;
  }

  /// Handle scfgw; error on bad index.
  Status cfg_write(i32 index, u32 value);
  /// Handle scfgr.
  [[nodiscard]] u32 cfg_read(i32 index) const;

  /// Architectural read of stream-mapped register `r` (pops one element).
  std::optional<u64> read(u8 fp_reg, const Memory& mem);
  /// Architectural write to stream-mapped register `r`.
  bool write(u8 fp_reg, Memory& mem, u64 value);

  [[nodiscard]] const FunctionalStream& stream(u32 i) const { return streams_[i]; }

 private:
  bool enabled_ = false;
  std::array<SsrRawConfig, kNumSsrs> cfgs_{};
  std::array<FunctionalStream, kNumSsrs> streams_{};
};

} // namespace sch::ssr
