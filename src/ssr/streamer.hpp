// Cycle-level stream register unit: prefetching read streams and draining
// write streams through a dedicated TCDM port, with bank-conflict retries.
//
// Timing model:
//  * one TCDM request per streamer per cycle (index fetch or data access);
//  * a granted access delivers data usable the following cycle;
//  * read data buffers in a small FIFO (default 4 entries); element
//    repetition replays a buffered entry without refetching;
//  * indirect streams fetch packed indices (8-byte words holding 8/4/2
//    indices) and translate data addresses as base + (idx << shift);
//  * write data buffers in a FIFO filled by FPU writeback; a full write
//    FIFO backpressures the FPU.
#pragma once

#include "common/fixed_queue.hpp"
#include "common/types.hpp"
#include "mem/memory.hpp"
#include "mem/tcdm.hpp"
#include "ssr/addr_gen.hpp"
#include "ssr/ssr_config.hpp"

namespace sch::ssr {

struct StreamerConfig {
  u32 data_fifo_depth = 4;
  u32 idx_queue_depth = 8;
  u32 write_fifo_depth = 4;
};

class Streamer {
 public:
  explicit Streamer(const StreamerConfig& config = {});

  void arm(const SsrRawConfig& cfg, Addr ptr, u32 dims, StreamDir dir);
  void disarm();

  [[nodiscard]] StreamDir dir() const { return dir_; }
  [[nodiscard]] bool armed() const { return dir_ != StreamDir::kNone; }

  /// All elements fetched and consumed (read) or drained to memory (write).
  [[nodiscard]] bool idle() const;

  // --- consumer interface (FP issue / writeback stages) ---
  [[nodiscard]] bool can_pop() const;
  u64 pop();
  [[nodiscard]] bool can_push() const;
  void push(u64 value);

  // --- simulation loop interface ---
  /// Commit data that became visible this cycle. Call before the FP stage.
  void begin_cycle(Cycle now);
  /// Issue at most one TCDM request as `requester` (a global requester id;
  /// see Tcdm::requester_id). Call after the FP stage.
  void tick_fetch(Cycle now, Tcdm& tcdm, Memory& mem, u32 requester);
  void tick_fetch(Cycle now, Tcdm& tcdm, Memory& mem, TcdmPortId port) {
    tick_fetch(now, tcdm, mem, static_cast<u32>(port));
  }

  struct Stats {
    u64 data_reads = 0;   // granted data fetches
    u64 idx_reads = 0;    // granted index-word fetches
    u64 data_writes = 0;  // granted write drains
    u64 conflict_retries = 0;
    u64 elements_popped = 0;
    u64 elements_pushed = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Occupancy views for traces (entry counts, staged entries included).
  [[nodiscard]] u32 read_fifo_level() const { return static_cast<u32>(data_fifo_.size()); }
  [[nodiscard]] u32 write_fifo_level() const { return static_cast<u32>(write_fifo_.size()); }

 private:
  struct DataEntry {
    u64 value;
    u32 copies;        // remaining pops this entry serves (repetition)
    Cycle available_at;
  };
  struct IdxEntry {
    Addr data_addr;
    Cycle available_at;
  };

  [[nodiscard]] bool fifo_has_room() const;
  [[nodiscard]] bool data_addr_known(Cycle now) const;
  [[nodiscard]] Addr next_data_addr() const;
  void consume_data_addr();
  void fetch_index_word(Cycle now, Tcdm& tcdm, Memory& mem, u32 requester);

  StreamerConfig scfg_;
  SsrRawConfig cfg_;
  AddrGen gen_;       // data addresses (affine) or index-array addresses (indirect)
  StreamDir dir_ = StreamDir::kNone;

  // Ring buffers over preallocated storage (hardware queues; the fetch loop
  // runs every cycle and must never allocate).
  FixedQueue<DataEntry> data_fifo_; // staged + visible entries (read side)
  FixedQueue<IdxEntry> idx_q_;      // translated data addresses (indirect)
  FixedQueue<u64> write_fifo_;

  Cycle now_ = 0;
  Stats stats_;
};

} // namespace sch::ssr
