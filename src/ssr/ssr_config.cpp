#include "ssr/ssr_config.hpp"

namespace sch::ssr {

bool SsrRawConfig::write(CfgReg reg, u32 value) {
  const u32 r = static_cast<u32>(reg);
  if (reg == CfgReg::kRepeat) { repeat = value; return true; }
  if (r >= static_cast<u32>(CfgReg::kBound0) && r <= static_cast<u32>(CfgReg::kBound0) + 3) {
    bounds[r - static_cast<u32>(CfgReg::kBound0)] = value;
    return true;
  }
  if (r >= static_cast<u32>(CfgReg::kStride0) && r <= static_cast<u32>(CfgReg::kStride0) + 3) {
    strides[r - static_cast<u32>(CfgReg::kStride0)] = static_cast<i32>(value);
    return true;
  }
  if (reg == CfgReg::kIdxCfg) { idx_cfg = value; return true; }
  if (reg == CfgReg::kIdxBase) { idx_base = value; return true; }
  return false; // rptr/wptr/status handled by the streamer owner
}

u32 SsrRawConfig::read(CfgReg reg) const {
  const u32 r = static_cast<u32>(reg);
  if (reg == CfgReg::kRepeat) return repeat;
  if (r >= static_cast<u32>(CfgReg::kBound0) && r <= static_cast<u32>(CfgReg::kBound0) + 3) {
    return bounds[r - static_cast<u32>(CfgReg::kBound0)];
  }
  if (r >= static_cast<u32>(CfgReg::kStride0) && r <= static_cast<u32>(CfgReg::kStride0) + 3) {
    return static_cast<u32>(strides[r - static_cast<u32>(CfgReg::kStride0)]);
  }
  if (reg == CfgReg::kIdxCfg) return idx_cfg;
  if (reg == CfgReg::kIdxBase) return idx_base;
  return 0;
}

} // namespace sch::ssr
