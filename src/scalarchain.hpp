// Umbrella header for the scalar-chaining reproduction library.
//
// Subsystems (see DESIGN.md for the full inventory):
//   isa/      RV32IMFD + Zicsr + Xssr/Xfrep/Xchain encodings and metadata
//   asm/      two-pass assembler + ProgramBuilder emission API
//   mem/      functional memory + banked-TCDM timing model
//   ssr/      stream semantic registers (affine + SARIS-style indirect)
//   core/     the paper's contribution: scalar chaining (CSR 0x7C3)
//   iss/      functional golden-reference ISS
//   sim/      cycle-level Snitch-like core model
//   energy/   calibrated event-based power model
//   kernels/  the paper's evaluation kernels (Fig. 1 vecop, Fig. 3 stencils)
//   api/      the unified execution engine every front-end routes through
//             (RunRequest -> Engine -> RunReport, with pluggable Observers)
//   fuzz/     differential fuzzing: constrained random programs, ISS-vs-
//             cycle lockstep execution, ddmin reproducer minimization
#pragma once

#include "api/build_cache.hpp"
#include "api/engine.hpp"
#include "asm/assembler.hpp"
#include "asm/builder.hpp"
#include "asm/program.hpp"
#include "core/arch_chain.hpp"
#include "core/chain_config.hpp"
#include "core/chain_unit.hpp"
#include "core/cost_model.hpp"
#include "energy/activity.hpp"
#include "energy/energy_model.hpp"
#include "fuzz/fuzz.hpp"
#include "isa/csr.hpp"
#include "isa/decode.hpp"
#include "isa/disasm.hpp"
#include "isa/encode.hpp"
#include "isa/reg.hpp"
#include "iss/iss.hpp"
#include "kernels/axpy.hpp"
#include "kernels/conv2d.hpp"
#include "kernels/dot.hpp"
#include "kernels/gemm.hpp"
#include "kernels/gemv.hpp"
#include "kernels/registry.hpp"
#include "kernels/stencil.hpp"
#include "kernels/vecop.hpp"
#include "mem/memory.hpp"
#include "mem/tcdm.hpp"
#include "scenario/scenario.hpp"
#include "scenario/scenario_runner.hpp"
#include "serve/rollup.hpp"
#include "serve/server.hpp"
#include "serve/shard.hpp"
#include "sim/simulator.hpp"
#include "ssr/ssr_file.hpp"
#include "verify/verify.hpp"
