// Microarchitectural parameters of the cycle-level core model. Defaults
// reproduce the Snitch configuration of the paper (3-stage FPU, 32-bank
// TCDM, 3 SSRs, FREP sequencer, pseudo dual-issue).
#pragma once

#include <memory>

#include "common/status.hpp"
#include "common/types.hpp"
#include "mem/tcdm.hpp"
#include "sim/fault_plan.hpp"
#include "ssr/streamer.hpp"

namespace sch::sim {

struct SimConfig {
  /// Pipelined FP compute depth (paper: 3 stages; "chaining benefits are
  /// increased for functional units with deeper pipelines").
  u32 fpu_depth = 3;
  /// Iterative (unpipelined) FP operation latencies.
  u32 fdiv_latency = 11;
  u32 fsqrt_latency = 21;

  /// Integer multiplier latency (pipelined).
  u32 int_mul_latency = 2;
  /// Integer divider latency (blocking).
  u32 int_div_latency = 20;

  /// Offload queue depth between the integer core and the FP subsystem.
  u32 fp_queue_depth = 8;
  /// FREP sequencer ring-buffer capacity (instructions).
  u32 seq_buffer_depth = 16;

  /// Extra cycles from TCDM grant to loaded data (1 = data next cycle,
  /// usable the cycle after: 2-cycle load-to-use).
  u32 load_latency = 1;
  /// Fixed latency of non-TCDM (bulk) memory accesses. Also the startup
  /// latency of every DMA transfer touching main memory.
  u32 main_mem_latency = 10;
  /// Main-memory bandwidth: bytes the DMA engine can stream per cycle once
  /// a transfer is past its startup latency.
  u32 main_mem_bytes_per_cycle = 8;
  /// Descriptor-FIFO depth of the cluster DMA engine; a dmcpy against a
  /// full queue retries (stall_dma_full) until a slot frees up.
  u32 dma_queue_depth = 4;

  /// Taken-branch fetch bubble.
  u32 taken_branch_penalty = 1;

  /// Forbid same-cycle chain-FIFO pop->push handoff (ablation A3).
  bool strict_chain_handoff = false;

  /// Cores in the cluster, all sharing the banked TCDM (each contributes its
  /// LSU port + three SSR ports to the arbiter). 1 reproduces the paper's
  /// single-core configuration bit-exactly.
  u32 num_cores = 1;
  /// Upper bound on num_cores (requester bookkeeping stays sane).
  static constexpr u32 kMaxCores = 64;

  TcdmConfig tcdm{};
  ssr::StreamerConfig ssr{};

  u64 max_cycles = 200'000'000;
  /// Abort when no instruction retires for this many cycles (deadlock
  /// detector for chain-FIFO underflow / exhausted-stream stalls).
  u64 deadlock_cycles = 50'000;
  /// Host wall-clock budget per run in milliseconds (0 = unlimited). Checked
  /// every few thousand cycles/steps by both engines; exceeding it halts
  /// with a failed budget_exceeded report, never an abort. Off by default so
  /// reports stay bit-identical across hosts; the fuzz harness sets it.
  u64 max_wall_ms = 0;

  /// Deliberate state corruptions applied by the cycle engine (see
  /// sim/fault_plan.hpp). Null = no faults; the ISS never applies them.
  std::shared_ptr<const FaultPlan> faults;

  /// Host-speed fast path: when every core has halted and the DMA engine is
  /// burning provably inert startup cycles, jump the cycle counter by the
  /// closed-form burn length instead of ticking through it. Timing-invisible
  /// by construction (the skipped cycles change no observable state) and
  /// automatically disabled whenever anything could watch individual cycles:
  /// api::Engine clears it when observers are attached, and Cluster ignores
  /// it under a fault plan or tracing. The fast-path-equivalence suite pins
  /// off-vs-on reports bit-identical.
  bool fast_forward = true;

  /// Forwarded into IssConfig::fast_dispatch by api::Engine: the functional
  /// ISS half of a run executes through the threaded superblock loop.
  /// Architecturally invisible; exposed here so the equivalence suite can
  /// force the portable step loop through one RunRequest knob.
  bool fast_dispatch = true;

  /// Maintain the per-cycle issue/stall strings that trace observers
  /// (api::TraceObserver, Fig. 1c/Fig. 2 views) consume. Costs string
  /// building on the hot path; enable for short runs only.
  bool trace = false;

  /// Structural sanity check. A zero depth on any of the queues below does
  /// not fail loudly at runtime -- it deadlocks the scoreboard or indexes an
  /// empty ring buffer -- so configuration errors are rejected up front with
  /// a message. Called by api::Engine before every run and by the Simulator
  /// constructor (which throws std::invalid_argument on failure).
  [[nodiscard]] Status validate() const {
    if (fpu_depth == 0) {
      return Status::error("SimConfig: fpu_depth must be >= 1 (a zero-stage "
                           "FPU pipeline cannot hold an op in flight)");
    }
    if (fp_queue_depth == 0) {
      return Status::error("SimConfig: fp_queue_depth must be >= 1 (offload "
                           "with a zero-entry queue deadlocks the int core)");
    }
    if (seq_buffer_depth == 0) {
      return Status::error("SimConfig: seq_buffer_depth must be >= 1 (the "
                           "FREP sequencer needs ring-buffer capacity)");
    }
    if (tcdm.num_banks == 0) {
      return Status::error("SimConfig: tcdm.num_banks must be >= 1 (bank "
                           "arbitration over zero banks divides by zero)");
    }
    if (main_mem_latency == 0) {
      return Status::error("SimConfig: main_mem_latency must be >= 1 (a "
                           "zero-latency bulk memory defeats the model)");
    }
    if (main_mem_bytes_per_cycle == 0) {
      return Status::error("SimConfig: main_mem_bytes_per_cycle must be >= 1 "
                           "(zero bandwidth wedges every DMA transfer)");
    }
    if (dma_queue_depth == 0) {
      return Status::error("SimConfig: dma_queue_depth must be >= 1 (a "
                           "zero-entry DMA queue deadlocks every dmcpy)");
    }
    if (ssr.data_fifo_depth == 0 || ssr.idx_queue_depth == 0 ||
        ssr.write_fifo_depth == 0) {
      return Status::error("SimConfig: ssr FIFO depths must be >= 1 (the "
                           "streamers are ring buffers over fixed storage)");
    }
    if (max_cycles == 0) {
      return Status::error("SimConfig: max_cycles must be >= 1");
    }
    if (num_cores == 0 || num_cores > kMaxCores) {
      return Status::error("SimConfig: num_cores must be in 1..64 (a cluster "
                           "needs at least one core)");
    }
    return Status::ok();
  }
};

} // namespace sch::sim
