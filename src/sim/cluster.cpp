#include "sim/cluster.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace sch::sim {

Cluster::Cluster(Program program, Memory& memory, const SimConfig& config)
    : Cluster(
          [&] {
            std::vector<Program> programs;
            programs.push_back(std::move(program));
            return programs;
          }(),
          memory, config) {}

Cluster::Cluster(std::vector<Program> programs, Memory& memory,
                 const SimConfig& config)
    : cfg_(config),
      mem_(memory),
      // One requester block per core plus the cluster DMA engine's port.
      tcdm_(config.tcdm,
            std::max<u32>(config.num_cores, 1) * kTcdmPortsPerCore + 1),
      dma_(dma::EngineConfig{config.main_mem_latency,
                             config.main_mem_bytes_per_cycle,
                             config.dma_queue_depth, 1024},
           memory, std::max<u32>(config.num_cores, 1),
           Tcdm::dma_requester_id(std::max<u32>(config.num_cores, 1))) {
  const Status valid = cfg_.validate();
  if (!valid.is_ok()) throw std::invalid_argument(valid.message());
  if (programs.empty()) {
    throw std::invalid_argument("Cluster: at least one program is required");
  }
  if (programs.size() != 1 && programs.size() != cfg_.num_cores) {
    throw std::invalid_argument(
        "Cluster: need one program total or one per core (" +
        std::to_string(programs.size()) + " programs for " +
        std::to_string(cfg_.num_cores) + " cores)");
  }
  cores_.reserve(cfg_.num_cores);
  for (u32 h = 0; h < cfg_.num_cores; ++h) {
    Program prog = programs.size() == 1 ? programs[0] : std::move(programs[h]);
    cores_.push_back(
        std::make_unique<Core>(std::move(prog), mem_, tcdm_, cfg_, h, &dma_));
  }
}

bool Cluster::fully_halted() const {
  for (const auto& core : cores_) {
    if (!core->fully_halted()) return false;
  }
  return true;
}

PerfCounters Cluster::perf() const {
  if (cores_.size() == 1) return cores_[0]->perf();
  PerfCounters agg;
  for (const auto& core : cores_) agg += core->perf();
  agg.cycles = cycle_; // cluster cycles, not the sum of active spans
  return agg;
}

void Cluster::apply_faults() {
  for (const Fault& f : cfg_.faults->faults) {
    switch (f.kind) {
      case FaultKind::kFlipFpReg:
        if (f.cycle == cycle_ && f.hart < num_cores()) {
          cores_[f.hart]->fp_mut().fregs()[f.reg % isa::kNumFpRegs] ^= f.bits;
        }
        break;
      case FaultKind::kDropChainEntry:
        if (f.cycle == cycle_ && f.hart < num_cores()) {
          cores_[f.hart]->fp_mut().chain_mut().drop(f.reg % isa::kNumFpRegs);
        }
        break;
      case FaultKind::kStallTcdmBank:
        if (cycle_ >= f.cycle && cycle_ - f.cycle < f.duration) {
          tcdm_.force_bank_busy(f.bank);
        }
        break;
      case FaultKind::kTruncateDmaBeat:
        if (f.cycle == cycle_) {
          dma_.inject_beat_drop(static_cast<u32>(f.duration));
        }
        break;
    }
  }
}

void Cluster::tick() {
  ++cycle_;
  tcdm_.begin_cycle();
  if (cfg_.faults != nullptr) apply_faults();

  // Rotate the service order each cycle so no requester is statically
  // favored in the bank arbiter (fair round-robin): the rotation covers the
  // cores plus one slot for the cluster DMA engine, which contends for
  // banks like any other requester but can never starve a core. An idle
  // engine makes no requests, so with DMA off the cores see exactly the
  // pre-Xdma arbitration.
  const u32 n = num_cores();
  const u32 slots = n + 1;
  const u32 start = static_cast<u32>(cycle_ % slots);
  for (u32 k = 0; k < slots; ++k) {
    const u32 slot = (start + k) % slots;
    if (slot < n) {
      cores_[slot]->tick(cycle_);
    } else {
      dma_.tick(cycle_, tcdm_);
    }
  }

  // Progress watchdog across the whole cluster (a spinning barrier still
  // retires branches and a draining DMA still moves bytes or burns startup
  // latency, so only a true wedge trips it -- even a transfer whose
  // startup alone exceeds deadlock_cycles counts as progress).
  u64 retired = dma_.stats().bytes_moved + dma_.stats().startup_cycles;
  for (const auto& core : cores_) {
    retired += core->perf().total_retired() + core->perf().offloads;
  }
  if (retired != last_progress_retired_) {
    last_progress_retired_ = retired;
    last_progress_cycle_ = cycle_;
  } else if (cycle_ - last_progress_cycle_ > cfg_.deadlock_cycles) {
    const PerfCounters p = perf();
    // Report the first still-running core's pc (the wedged one, usually).
    Addr pc = cores_[0]->int_core().pc();
    halt_hart_ = 0;
    for (u32 h = 0; h < num_cores(); ++h) {
      if (!cores_[h]->fully_halted()) {
        pc = cores_[h]->int_core().pc();
        halt_hart_ = static_cast<i32>(h);
        break;
      }
    }
    deadlocked_ = true;
    halt_pc_ = static_cast<i64>(pc);
    std::ostringstream os;
    os << "deadlock: no instruction retired for " << cfg_.deadlock_cycles
       << " cycles at cycle " << cycle_ << " (pc=0x" << std::hex << pc
       << std::dec << ", chain-empty=" << p.stall_chain_empty
       << ", ssr-empty=" << p.stall_ssr_empty
       << ", chain-full=" << p.stall_chain_full << ")";
    halt_ = HaltReason::kError;
    error_ = os.str();
  }

  for (u32 h = 0; h < n; ++h) {
    if (cores_[h]->has_error()) {
      halt_ = HaltReason::kError;
      error_ = n == 1 ? cores_[h]->error()
                      : "hart " + std::to_string(h) + ": " + cores_[h]->error();
      halt_hart_ = static_cast<i32>(h);
      halt_pc_ = static_cast<i64>(cores_[h]->int_core().pc());
      break;
    }
  }
}

bool Cluster::step() {
  if (halt_ != HaltReason::kNone) return false;
  if (!started_) {
    for (const auto& core : cores_) core->load_image();
    started_ = true;
    if (cfg_.max_wall_ms != 0) wall_start_ = std::chrono::steady_clock::now();
  }
  // Wall-clock budget, checked off the hot path (every 4096 cycles).
  if (cfg_.max_wall_ms != 0 && (cycle_ & 0xFFF) == 0) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - wall_start_);
    if (static_cast<u64>(elapsed.count()) > cfg_.max_wall_ms) {
      halt_ = HaltReason::kMaxSteps;
      error_ = "wall-clock budget exhausted (" +
               std::to_string(cfg_.max_wall_ms) + " ms) at cycle " +
               std::to_string(cycle_);
      return false;
    }
  }
  // Stall fast-forward: with every core drained (halted cores' ticks are
  // strict no-ops) and every DMA channel burning provably inert startup
  // latency, the next `horizon` ticks change nothing but counters. Jump
  // them in closed form and run the final burn cycle through the normal
  // tick so the epilogue below observes the exact slow-path states. Only
  // legal when nothing can watch individual cycles: api::Engine clears
  // fast_forward when observers are attached, and fault plans / tracing
  // disable it here (a fault could land mid-burn; a trace records every
  // cycle).
  if (cfg_.fast_forward && cfg_.faults == nullptr && !cfg_.trace &&
      fully_halted()) {
    const u32 horizon = dma_.startup_horizon();
    if (horizon > 1) {
      u64 skip = horizon - 1;
      // Keep the tick that crosses the cycle budget real as well.
      const u64 budget_room =
          cfg_.max_cycles > cycle_ + 1 ? cfg_.max_cycles - cycle_ - 1 : 0;
      skip = std::min<u64>(skip, budget_room);
      if (skip > 0) {
        dma_.skip_startup(static_cast<u32>(skip));
        cycle_ += skip;
        // The watchdog re-baselines on the next tick: startup_cycles grew,
        // so `retired` differs and last_progress_* snap to the new cycle,
        // exactly as they would have tick by tick.
      }
    }
  }
  tick();
  if (halt_ != HaltReason::kNone) return false;
  // The cluster keeps ticking a draining DMA queue after every core has
  // halted, so a final copy-back still commits its bytes.
  if (fully_halted() && dma_.idle()) {
    halt_ = cores_[0]->halt_reason();
    return false;
  }
  if (cycle_ >= cfg_.max_cycles) {
    halt_ = HaltReason::kMaxSteps;
    error_ = "cycle budget exhausted";
    return false;
  }
  return true;
}

HaltReason Cluster::run() {
  while (step()) {
  }
  return halt_;
}

} // namespace sch::sim
