#include "sim/fp_subsystem.hpp"

#include "isa/disasm.hpp"
#include "iss/exec_semantics.hpp"

namespace sch::sim {

using isa::ExecClass;
using isa::Instr;
using isa::Mnemonic;
using isa::RegClass;

FpSubsystem::FpSubsystem(const SimConfig& cfg, Memory& mem, Tcdm& tcdm,
                         PerfCounters& perf, u32 hartid)
    : cfg_(cfg),
      mem_(mem),
      tcdm_(tcdm),
      perf_(perf),
      lsu_req_(Tcdm::requester_id(hartid, TcdmPortId::kCoreLsu)),
      seq_(cfg.fp_queue_depth, cfg.seq_buffer_depth),
      pipe_(cfg.fpu_depth),
      chain_(cfg.strict_chain_handoff),
      streamers_{ssr::Streamer(cfg.ssr), ssr::Streamer(cfg.ssr),
                 ssr::Streamer(cfg.ssr)},
      trace_(cfg.trace) {}

void FpSubsystem::note_issue(const isa::Instr& in) {
  if (trace_) last_issue_ = isa::disassemble(in);
}

bool FpSubsystem::quiescent() const {
  if (!seq_.idle() || latch_.has_value() || !pipe_.empty() || div_.busy ||
      lsu_.busy) {
    return false;
  }
  for (const ssr::Streamer& s : streamers_) {
    if (s.dir() == ssr::StreamDir::kWrite && !s.idle()) return false;
  }
  return true;
}

void FpSubsystem::set_chain_mask(u32 mask) {
  // Disabling a register latches its unpopped element (if any) into the RF.
  const u32 old_mask = chain_.mask();
  for (u8 r = 0; r < isa::kNumFpRegs; ++r) {
    const bool was = ((old_mask >> r) & 1u) != 0;
    const bool now = ((mask >> r) & 1u) != 0;
    if (was && !now && chain_.valid(r)) fregs_[r] = chain_.value(r);
  }
  chain_.set_mask(mask);
}

Status FpSubsystem::cfg_write(i32 index, u32 value) {
  auto result = ssr::apply_cfg_write(ssr_cfgs_, index, value);
  if (!result.ok()) return result.status();
  if (const auto& arm = result.value(); arm.has_value()) {
    streamers_[arm->ssr].arm(ssr_cfgs_[arm->ssr], arm->ptr, arm->dims, arm->dir);
  }
  return Status::ok();
}

u32 FpSubsystem::cfg_read(i32 index) const {
  std::array<bool, ssr::kNumSsrs> active{};
  for (u32 i = 0; i < ssr::kNumSsrs; ++i) active[i] = !streamers_[i].idle();
  return ssr::apply_cfg_read(ssr_cfgs_, index, active);
}

void FpSubsystem::begin_cycle(Cycle now) {
  chain_.begin_cycle();
  for (ssr::Streamer& s : streamers_) s.begin_cycle(now);
  if (trace_) last_issue_.clear();
  last_stall_ = "";
}

FpSubsystem::SrcKind FpSubsystem::classify_src(u8 reg) const {
  if (ssr_enabled_ && reg < ssr::kNumSsrs &&
      streamers_[reg].dir() != ssr::StreamDir::kNone) {
    return SrcKind::kSsr;
  }
  if (chain_.enabled(reg)) return SrcKind::kChain;
  return SrcKind::kRf;
}

bool FpSubsystem::src_ready(u8 reg) {
  switch (classify_src(reg)) {
    case SrcKind::kSsr: {
      const ssr::Streamer& s = streamers_[reg];
      if (s.dir() != ssr::StreamDir::kRead) {
        fail("read of SSR register " + std::string(isa::fp_reg_name(reg)) +
             " armed as a write stream");
        return false;
      }
      if (!s.can_pop()) {
        ++perf_.stall_ssr_empty;
        last_stall_ = "ssr-empty";
        return false;
      }
      return true;
    }
    case SrcKind::kChain:
      if (!chain_.can_pop(reg)) {
        ++perf_.stall_chain_empty;
        last_stall_ = "chain-empty";
        return false;
      }
      return true;
    case SrcKind::kRf:
      if (busy_f_[reg] != 0) {
        ++perf_.stall_fp_raw;
        last_stall_ = "raw";
        return false;
      }
      return true;
  }
  return false;
}

u64 FpSubsystem::read_src(u8 reg) {
  switch (classify_src(reg)) {
    case SrcKind::kSsr:
      return streamers_[reg].pop();
    case SrcKind::kChain:
      return chain_.pop(reg);
    case SrcKind::kRf:
      ++perf_.rf_fp_reads;
      return fregs_[reg];
  }
  return 0;
}

std::optional<DestKind> FpSubsystem::resolve_dest(u8 rd) {
  if (ssr_enabled_ && rd < ssr::kNumSsrs &&
      streamers_[rd].dir() != ssr::StreamDir::kNone) {
    if (streamers_[rd].dir() != ssr::StreamDir::kWrite) {
      fail("write to SSR register " + std::string(isa::fp_reg_name(rd)) +
           " armed as a read stream");
      return std::nullopt;
    }
    return DestKind::kSsrWrite;
  }
  if (chain_.enabled(rd)) return DestKind::kChain; // no WAW for chained regs
  if (busy_f_[rd] != 0) {
    ++perf_.stall_fp_waw;
    last_stall_ = "waw";
    return std::nullopt;
  }
  return DestKind::kFpReg;
}

void FpSubsystem::fill_compute(const FpOp& op, [[maybe_unused]] Cycle now) {
  const Instr& in = op.in;
  const isa::MnemonicInfo& mi = op.meta();
  const bool is_div = mi.exec == ExecClass::kFpDiv || mi.exec == ExecClass::kFpSqrt;
  if (is_div && div_.busy) {
    ++perf_.stall_fpu_busy;
    last_stall_ = "div-busy";
    return;
  }

  // Gather the *unique* FP source registers: an instruction naming the same
  // stream/chain register in several operand slots pops it once and feeds
  // all slots (fmv.d/fabs.d from a stream are idiomatic; Snitch semantics).
  std::array<u8, 3> uniq{};
  u32 n_uniq = 0;
  auto add_src = [&](u8 reg) {
    for (u32 i = 0; i < n_uniq; ++i) {
      if (uniq[i] == reg) return;
    }
    uniq[n_uniq++] = reg;
  };
  if (mi.rs1 == RegClass::kFp) add_src(in.rs1);
  if (mi.rs2 == RegClass::kFp) add_src(in.rs2);
  if (mi.rs3 == RegClass::kFp) add_src(in.rs3);
  for (u32 i = 0; i < n_uniq; ++i) {
    if (!src_ready(uniq[i])) return;
  }

  DestKind dest = DestKind::kIntReg;
  if (mi.rd == RegClass::kFp) {
    const auto d = resolve_dest(in.rd);
    if (!d) return;
    dest = *d;
  }

  // Commit: pop/read each unique operand once and fan the value out.
  std::array<u64, 3> uniq_val{};
  for (u32 i = 0; i < n_uniq; ++i) uniq_val[i] = read_src(uniq[i]);
  auto val_of = [&](u8 reg) -> u64 {
    for (u32 i = 0; i < n_uniq; ++i) {
      if (uniq[i] == reg) return uniq_val[i];
    }
    return 0;
  };
  u64 a = 0, b = 0, c = 0;
  if (mi.rs1 == RegClass::kFp) a = val_of(in.rs1);
  if (mi.rs2 == RegClass::kFp) b = val_of(in.rs2);
  if (mi.rs3 == RegClass::kFp) c = val_of(in.rs3);

  u64 result = 0;
  switch (mi.exec) {
    case ExecClass::kFpMac:
    case ExecClass::kFpDiv:
    case ExecClass::kFpSqrt:
      result = exec::fp_compute(in.mn, a, b, c);
      break;
    case ExecClass::kFpCmp:
    case ExecClass::kFpCvtF2I:
      result = exec::fp_to_int(in.mn, a, b);
      break;
    case ExecClass::kFpCvtI2F:
      result = exec::int_to_fp(in.mn, op.int_operand);
      break;
    default:
      fail("fill_compute: unexpected exec class");
      return;
  }

  FpuSlot slot;
  slot.busy = true;
  slot.mn = in.mn;
  slot.rd = in.rd;
  slot.dest = dest;
  slot.result = result;
  slot.seq = ++issue_seq_;
  if (dest == DestKind::kFpReg) ++busy_f_[in.rd];

  latch_ = LatchEntry{slot, is_div ? ExecClass::kFpDiv : ExecClass::kFpMac};
  note_issue(in);
  seq_.pop_front();
  ++perf_.fp_instrs;
  if (is_div) {
    ++perf_.fp_div_ops;
  } else {
    ++perf_.fp_mac_ops;
  }
}

void FpSubsystem::fill_load(const FpOp& op, Cycle now, CorePort& port) {
  const Instr& in = op.in;
  const isa::MnemonicInfo& mi = op.meta();
  if (lsu_.busy) {
    ++perf_.stall_fp_lsu;
    last_stall_ = "lsu-busy";
    return;
  }
  const auto d = resolve_dest(in.rd);
  if (!d) return;
  const Addr ea = op.int_operand;
  if (!mem_.valid(ea, mi.mem_bytes)) {
    fail("fp load from unmapped address");
    return;
  }
  Cycle ready_at;
  if (Memory::in_tcdm(ea)) {
    if (port.used) {
      ++perf_.stall_fp_lsu;
      last_stall_ = "lsu-port";
      return;
    }
    if (!tcdm_.request(lsu_req_, ea, /*is_write=*/false)) {
      ++perf_.stall_fp_lsu;
      last_stall_ = "lsu-bank";
      return;
    }
    port.used = true;
    ready_at = now + 1 + cfg_.load_latency;
  } else {
    ready_at = now + cfg_.main_mem_latency;
  }
  const u64 raw = mem_.load(ea, mi.mem_bytes);
  lsu_.busy = true;
  lsu_.rd = in.rd;
  lsu_.dest = *d;
  lsu_.value = mi.mem_bytes == 4 ? exec::box32(static_cast<u32>(raw)) : raw;
  lsu_.ready_at = ready_at;
  if (*d == DestKind::kFpReg) ++busy_f_[in.rd];
  note_issue(in);
  seq_.pop_front();
  ++perf_.fp_instrs;
  ++perf_.fp_loads;
}

void FpSubsystem::fill_store(const FpOp& op, Cycle now, CorePort& port) {
  const Instr& in = op.in;
  const isa::MnemonicInfo& mi = op.meta();
  if (!src_ready(in.rs2)) return;
  const Addr ea = op.int_operand;
  if (!mem_.valid(ea, mi.mem_bytes)) {
    fail("fp store to unmapped address");
    return;
  }
  if (Memory::in_tcdm(ea)) {
    if (port.used) {
      ++perf_.stall_fp_lsu;
      last_stall_ = "lsu-port";
      return;
    }
    if (!tcdm_.request(lsu_req_, ea, /*is_write=*/true)) {
      ++perf_.stall_fp_lsu;
      last_stall_ = "lsu-bank";
      return;
    }
    port.used = true;
  }
  const u64 v = read_src(in.rs2);
  mem_.store(ea, mi.mem_bytes == 4 ? exec::unbox32(v) : v, mi.mem_bytes);
  note_issue(in);
  seq_.pop_front();
  ++perf_.fp_instrs;
  ++perf_.fp_stores;
  (void)now;
}

void FpSubsystem::try_fill_latch(Cycle now, CorePort& port) {
  if (latch_.has_value()) return;
  const FpOp* op = seq_.peek();
  if (seq_.has_error()) {
    fail(seq_.error());
    return;
  }
  if (op == nullptr) {
    ++perf_.fp_queue_empty;
    return;
  }
  switch (op->meta().exec) {
    case ExecClass::kFpMac:
    case ExecClass::kFpDiv:
    case ExecClass::kFpSqrt:
    case ExecClass::kFpCmp:
    case ExecClass::kFpCvtF2I:
    case ExecClass::kFpCvtI2F:
      fill_compute(*op, now);
      return;
    case ExecClass::kFpLoad:
      fill_load(*op, now, port);
      return;
    case ExecClass::kFpStore:
      fill_store(*op, now, port);
      return;
    default:
      fail("non-FP instruction reached the FP issue stage: " +
           isa::disassemble(op->in));
  }
}

bool FpSubsystem::try_writeback(const FpuSlot& slot, Cycle now) {
  switch (slot.dest) {
    case DestKind::kFpReg:
      fregs_[slot.rd] = slot.result;
      --busy_f_[slot.rd];
      ++perf_.rf_fp_writes;
      return true;
    case DestKind::kChain:
      if (!chain_.can_push(slot.rd)) {
        ++perf_.stall_chain_full;
        chain_.count_backpressure();
        return false;
      }
      chain_.push(slot.rd, slot.result);
      return true;
    case DestKind::kSsrWrite:
      if (!streamers_[slot.rd].can_push()) {
        ++perf_.stall_ssr_wfull;
        return false;
      }
      streamers_[slot.rd].push(slot.result);
      return true;
    case DestKind::kIntReg:
      if (int_wb_) int_wb_({slot.rd, static_cast<u32>(slot.result), now + 1});
      return true;
    case DestKind::kNone:
      return true;
  }
  return true;
}

void FpSubsystem::tick_lsu(Cycle now) {
  if (!lsu_.busy || now < lsu_.ready_at) return;
  FpuSlot slot;
  slot.busy = true;
  slot.rd = lsu_.rd;
  slot.dest = lsu_.dest;
  slot.result = lsu_.value;
  if (try_writeback(slot, now)) lsu_.busy = false;
}

void FpSubsystem::drain_latch(Cycle now) {
  if (!latch_.has_value()) return;
  if (latch_->unit == ExecClass::kFpDiv) {
    if (div_.busy) return;
    div_.busy = true;
    div_.slot = latch_->slot;
    const bool is_sqrt = latch_->slot.mn == Mnemonic::kFsqrtD ||
                         latch_->slot.mn == Mnemonic::kFsqrtS;
    div_.done_at = now + (is_sqrt ? cfg_.fsqrt_latency : cfg_.fdiv_latency);
    ++perf_.fpu_ops;
    latch_.reset();
    return;
  }
  if (!pipe_.stage0_free()) {
    if (last_stall_[0] == '\0') last_stall_ = "pipe-frozen";
    ++perf_.stall_fpu_busy;
    return;
  }
  pipe_.insert(latch_->slot);
  ++perf_.fpu_ops;
  latch_.reset();
}

void FpSubsystem::tick(Cycle now, CorePort& port) {
  if (has_error()) return;

  // 1. LSU completion (loads land in RF/chain FIFO).
  tick_lsu(now);

  // 2. Issue stage: operand pops happen here, before writeback pushes.
  try_fill_latch(now, port);

  // 3. Pipeline writeback + advance (pushes into chain/SSR FIFOs). A blocked
  //    writeback freezes the whole pipeline: this is the paper's chaining
  //    backpressure (and the SSR write-FIFO backpressure).
  bool wb_used = false;
  if (pipe_.last().busy) {
    if (try_writeback(pipe_.last(), now)) {
      pipe_.clear_last();
      pipe_.advance();
      wb_used = true;
    }
  } else {
    pipe_.advance();
  }

  // 4. Iterative unit shares the single writeback port with the pipeline.
  if (div_.ready(now) && !wb_used) {
    if (try_writeback(div_.slot, now)) div_.busy = false;
  }

  // 5. Move the latched instruction into its unit if possible.
  drain_latch(now);
}

} // namespace sch::sim
