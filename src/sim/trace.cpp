#include "sim/trace.hpp"

#include <iomanip>
#include <sstream>

namespace sch::sim {

std::string Trace::format_issue_table() const {
  std::ostringstream os;
  os << std::left << std::setw(7) << "cycle" << std::setw(34) << "int issue"
     << std::setw(34) << "fp issue" << "fp stall\n";
  for (const TraceEntry& e : entries_) {
    os << std::left << std::setw(7) << e.cycle << std::setw(34)
       << (e.int_issue.empty() ? "-" : e.int_issue) << std::setw(34)
       << (e.fp_issue.empty() ? "-" : e.fp_issue)
       << (e.fp_stall.empty() ? "" : e.fp_stall) << "\n";
  }
  return os.str();
}

std::string Trace::format_dataflow(usize max_rows) const {
  std::ostringstream os;
  os << "cycle | FPU stages (issue seq, stage0=youngest) | chain reg | "
        "ssr read FIFOs | ssr write FIFOs\n";
  usize rows = 0;
  for (const TraceEntry& e : entries_) {
    if (rows++ >= max_rows) {
      os << "... (" << entries_.size() - max_rows << " more cycles)\n";
      break;
    }
    os << std::setw(5) << e.cycle << " | ";
    for (u32 s = 0; s < e.fpu_depth; ++s) {
      if (e.fpu_stage_seq[s] == 0) {
        os << "[ . ]";
      } else {
        os << "[" << std::setw(3) << e.fpu_stage_seq[s] << "]";
      }
    }
    os << " | ";
    if (e.chain_tracked) {
      os << "f" << static_cast<int>(e.chain_reg)
         << (e.chain_valid ? " full " : " empty");
    } else {
      os << "   --   ";
    }
    os << " | " << e.ssr_read_fifo[0] << "/" << e.ssr_read_fifo[1] << "/"
       << e.ssr_read_fifo[2];
    os << " | " << e.ssr_write_fifo[0] << "/" << e.ssr_write_fifo[1] << "/"
       << e.ssr_write_fifo[2] << "\n";
  }
  return os.str();
}

} // namespace sch::sim
