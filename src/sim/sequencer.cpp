#include "sim/sequencer.hpp"

namespace sch::sim {

using isa::Mnemonic;

void Sequencer::start_frep(const FpOp& marker) {
  if (state_ != State::kIdle) {
    error_ = "nested frep";
    return;
  }
  const u32 body = static_cast<u32>(marker.in.imm);
  if (body == 0) {
    error_ = "frep with empty body";
    return;
  }
  if (body > buffer_depth_) {
    error_ = "frep body of " + std::to_string(body) +
             " instructions exceeds the " + std::to_string(buffer_depth_) +
             "-entry sequencer buffer";
    return;
  }
  inner_mode_ = marker.in.mn == Mnemonic::kFrepI;
  body_len_ = body;
  total_passes_ = marker.int_operand + 1;
  capture_left_ = body;
  buffer_.clear();
  replay_pass_ = 0;
  replay_idx_ = 0;
  inner_rep_ = 0;
  state_ = State::kCapturing;
  ++stats_.freps_executed;
}

const FpOp* Sequencer::peek() {
  if (has_error()) return nullptr;
  if (state_ == State::kReplaying) return &buffer_[replay_idx_];
  // Consume frep markers at the queue head.
  while (!queue_.empty() && (queue_.front().in.mn == Mnemonic::kFrepO ||
                             queue_.front().in.mn == Mnemonic::kFrepI)) {
    const FpOp marker = queue_.pop();
    start_frep(marker);
    if (has_error()) return nullptr;
  }
  if (queue_.empty()) return nullptr;
  if (state_ == State::kCapturing && !queue_.front().meta().fp_domain) {
    error_ = "frep body contains a non-FP instruction";
    return nullptr;
  }
  return &queue_.front();
}

void Sequencer::pop_front() {
  if (state_ == State::kReplaying) {
    ++stats_.replayed_ops;
    if (inner_mode_) {
      ++inner_rep_;
      if (inner_rep_ >= total_passes_) {
        // Done repeating this instruction; capture the next or finish.
        state_ = capture_left_ > 0 ? State::kCapturing : State::kIdle;
      }
      return;
    }
    ++replay_idx_;
    if (replay_idx_ >= body_len_) {
      replay_idx_ = 0;
      ++replay_pass_;
      if (replay_pass_ >= total_passes_) state_ = State::kIdle;
    }
    return;
  }

  const FpOp op = queue_.pop();
  if (state_ == State::kCapturing) {
    buffer_.push_back(op);
    --capture_left_;
    if (inner_mode_) {
      if (total_passes_ > 1) {
        state_ = State::kReplaying;
        replay_idx_ = static_cast<u32>(buffer_.size()) - 1;
        inner_rep_ = 1;
      } else if (capture_left_ == 0) {
        state_ = State::kIdle;
      }
      return;
    }
    if (capture_left_ == 0) {
      if (total_passes_ > 1) {
        state_ = State::kReplaying;
        replay_pass_ = 1;
        replay_idx_ = 0;
      } else {
        state_ = State::kIdle;
      }
    }
  }
}

} // namespace sch::sim
