// Historical name of the cycle-level model. The single-core Simulator grew
// into a Cluster of chaining cores sharing the banked TCDM; with the default
// num_cores == 1 the cluster is cycle-for-cycle identical to the original
// single-core model, so the old name is kept as an alias and every
// single-core accessor (core(), fp(), perf(), arch_state()) still works.
#pragma once

#include "sim/cluster.hpp"

namespace sch::sim {

using Simulator = Cluster;

} // namespace sch::sim
