// Top-level cycle-level simulator: wires the integer core, FP subsystem,
// SSR streamers and banked TCDM into one synchronous model and runs it to
// completion. See DESIGN.md §4 for the per-cycle phase ordering.
#pragma once

#include <memory>
#include <string>

#include "asm/program.hpp"
#include "iss/arch_state.hpp"
#include "mem/memory.hpp"
#include "mem/tcdm.hpp"
#include "sim/fp_subsystem.hpp"
#include "sim/int_core.hpp"
#include "sim/perf.hpp"
#include "sim/sim_config.hpp"

namespace sch::sim {

class Simulator {
 public:
  /// The simulator keeps its own copy of the program (so temporaries are
  /// safe); `memory` must outlive the simulator. Throws
  /// std::invalid_argument when `config.validate()` fails.
  Simulator(Program program, Memory& memory, const SimConfig& config = {});

  /// Run to halt. Loads the program's data image first.
  HaltReason run();

  /// Single-step one cycle (tests/traces). Returns false once halted.
  bool step();

  [[nodiscard]] Cycle cycles() const { return cycle_; }
  [[nodiscard]] const PerfCounters& perf() const { return perf_; }
  [[nodiscard]] const Tcdm& tcdm() const { return tcdm_; }
  [[nodiscard]] const FpSubsystem& fp() const { return *fp_; }
  [[nodiscard]] const IntCore& core() const { return *core_; }
  [[nodiscard]] HaltReason halt_reason() const { return halt_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Architectural state snapshot (for ISS cross-validation).
  [[nodiscard]] ArchState arch_state() const;

 private:
  void tick();
  [[nodiscard]] bool fully_halted() const;

  Program prog_;
  Memory& mem_;
  SimConfig cfg_;
  PerfCounters perf_;
  Tcdm tcdm_;
  std::unique_ptr<FpSubsystem> fp_;
  std::unique_ptr<IntCore> core_;

  Cycle cycle_ = 0;
  u32 ssr_rr_ = 0; // round-robin rotation of SSR port order
  u64 last_progress_retired_ = 0;
  Cycle last_progress_cycle_ = 0;
  HaltReason halt_ = HaltReason::kNone;
  std::string error_;
  bool started_ = false;
};

} // namespace sch::sim
