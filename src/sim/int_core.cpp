#include "sim/int_core.hpp"

#include <algorithm>
#include <sstream>

#include "isa/csr.hpp"
#include "isa/disasm.hpp"
#include "iss/exec_semantics.hpp"

namespace sch::sim {

using isa::ExecClass;
using isa::Instr;
using isa::Mnemonic;

IntCore::IntCore(const Program& prog, Memory& mem, Tcdm& tcdm,
                 const SimConfig& cfg, PerfCounters& perf, FpSubsystem& fp)
    : prog_(prog), mem_(mem), tcdm_(tcdm), cfg_(cfg), perf_(perf), fp_(fp),
      pc_(prog.text_base) {}

void IntCore::fail(const std::string& message) {
  if (halt_ != HaltReason::kNone) return;
  halt_ = HaltReason::kError;
  std::ostringstream os;
  os << "pc=0x" << std::hex << pc_ << std::dec << ": " << message;
  error_ = os.str();
}

void IntCore::schedule_write(u8 rd, u32 value, Cycle ready_at) {
  if (rd == 0) return;
  busy_x_[rd] = true;
  pending_.push_back({rd, value, ready_at});
}

void IntCore::commit_pending(Cycle now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->ready_at <= now) {
      write_x(it->rd, it->value);
      busy_x_[it->rd] = false;
      ++perf_.rf_int_writes;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

u32 IntCore::csr_read(u32 addr, Cycle now) const {
  switch (addr) {
    case isa::csr::kCycle:
    case isa::csr::kMcycle:
      return static_cast<u32>(now);
    case isa::csr::kInstret:
    case isa::csr::kMinstret:
      return static_cast<u32>(perf_.total_retired());
    case isa::csr::kMhartid:
      return 0;
    case isa::csr::kSsrEnable:
      return fp_.ssr_enabled() ? 1u : 0u;
    case isa::csr::kChainMask:
      return fp_.chain_mask();
    default:
      return 0;
  }
}

void IntCore::csr_apply(u32 addr, u32 value) {
  switch (addr) {
    case isa::csr::kSsrEnable:
      fp_.set_ssr_enable((value & 1u) != 0);
      return;
    case isa::csr::kChainMask:
      fp_.set_chain_mask(value);
      return;
    default:
      return; // other CSRs are read-only or no-op in this model
  }
}

void IntCore::exec_offload(const Instr& in, [[maybe_unused]] Cycle now) {
  const isa::MnemonicInfo& mi = in.meta();
  // Integer operands are captured at offload time.
  const bool needs_rs1 = mi.rs1 == isa::RegClass::kInt;
  if (needs_rs1 && !ready_x(in.rs1)) {
    ++perf_.stall_int_raw;
    return;
  }
  // FP->int results write back asynchronously; guard in-order WAW.
  const bool writes_int = mi.rd == isa::RegClass::kInt;
  if (writes_int && !ready_x(in.rd)) {
    ++perf_.stall_int_raw;
    return;
  }
  if (!fp_.offload_ready()) {
    ++perf_.stall_offload_full;
    return;
  }

  FpOp op;
  op.in = in;
  if (needs_rs1) {
    ++perf_.rf_int_reads;
    const u32 rs1 = read_x(in.rs1);
    op.int_operand = (mi.exec == ExecClass::kFpLoad || mi.exec == ExecClass::kFpStore)
                         ? rs1 + static_cast<u32>(in.imm)
                         : rs1;
  }
  if (writes_int) busy_x_[in.rd] = true; // released by the FP writeback
  fp_.offload(op);
  ++perf_.offloads;
  last_issue_ = "offload " + isa::disassemble(in);
  pc_ += 4;
}

void IntCore::exec_int(const Instr& in, Cycle now, CorePort& port) {
  const isa::MnemonicInfo& mi = in.meta();
  switch (mi.exec) {
    case ExecClass::kIntAlu: {
      u32 result;
      if (in.mn == Mnemonic::kLui) {
        result = static_cast<u32>(in.imm) << 12;
      } else if (in.mn == Mnemonic::kAuipc) {
        result = pc_ + (static_cast<u32>(in.imm) << 12);
      } else {
        if (!ready_x(in.rs1) ||
            (mi.rs2 == isa::RegClass::kInt && !ready_x(in.rs2))) {
          ++perf_.stall_int_raw;
          return;
        }
        ++perf_.rf_int_reads;
        const u32 a = read_x(in.rs1);
        u32 b;
        if (mi.fmt == isa::Format::kI) {
          b = static_cast<u32>(in.imm);
        } else {
          ++perf_.rf_int_reads;
          b = read_x(in.rs2);
        }
        result = exec::int_op(in.mn, a, b);
      }
      if (!ready_x(in.rd)) {
        ++perf_.stall_int_raw;
        return;
      }
      write_x(in.rd, result);
      ++perf_.rf_int_writes;
      ++perf_.int_alu_ops;
      ++perf_.int_instrs;
      last_issue_ = isa::disassemble(in);
      pc_ += 4;
      return;
    }
    case ExecClass::kIntMul: {
      if (!ready_x(in.rs1) || !ready_x(in.rs2) || !ready_x(in.rd)) {
        ++perf_.stall_int_raw;
        return;
      }
      perf_.rf_int_reads += 2;
      const u32 result = exec::int_op(in.mn, read_x(in.rs1), read_x(in.rs2));
      schedule_write(in.rd, result, now + cfg_.int_mul_latency);
      ++perf_.int_mul_ops;
      ++perf_.int_instrs;
      last_issue_ = isa::disassemble(in);
      pc_ += 4;
      return;
    }
    case ExecClass::kIntDiv: {
      if (!ready_x(in.rs1) || !ready_x(in.rs2) || !ready_x(in.rd)) {
        ++perf_.stall_int_raw;
        return;
      }
      perf_.rf_int_reads += 2;
      const u32 result = exec::int_op(in.mn, read_x(in.rs1), read_x(in.rs2));
      write_x(in.rd, result);
      ++perf_.rf_int_writes;
      div_busy_until_ = now + cfg_.int_div_latency; // blocking divider
      ++perf_.int_div_ops;
      ++perf_.int_instrs;
      last_issue_ = isa::disassemble(in);
      pc_ += 4;
      return;
    }
    case ExecClass::kLoad: {
      if (!ready_x(in.rs1) || !ready_x(in.rd)) {
        ++perf_.stall_int_raw;
        return;
      }
      const Addr ea = read_x(in.rs1) + static_cast<u32>(in.imm);
      if (!mem_.valid(ea, mi.mem_bytes)) {
        fail("load from unmapped address");
        return;
      }
      Cycle ready_at;
      if (Memory::in_tcdm(ea)) {
        if (port.used) {
          ++perf_.stall_int_lsu;
          return;
        }
        if (!tcdm_.request(TcdmPortId::kCoreLsu, ea, false)) {
          ++perf_.stall_int_lsu;
          return;
        }
        port.used = true;
        ready_at = now + 1 + cfg_.load_latency;
      } else {
        ready_at = now + cfg_.main_mem_latency;
      }
      ++perf_.rf_int_reads;
      u64 v = mem_.load(ea, mi.mem_bytes);
      if (in.mn == Mnemonic::kLb) v = static_cast<u32>(static_cast<i32>(static_cast<i8>(v)));
      if (in.mn == Mnemonic::kLh) v = static_cast<u32>(static_cast<i32>(static_cast<i16>(v)));
      schedule_write(in.rd, static_cast<u32>(v), ready_at);
      ++perf_.int_loads;
      ++perf_.int_instrs;
      last_issue_ = isa::disassemble(in);
      pc_ += 4;
      return;
    }
    case ExecClass::kStore: {
      if (!ready_x(in.rs1) || !ready_x(in.rs2)) {
        ++perf_.stall_int_raw;
        return;
      }
      const Addr ea = read_x(in.rs1) + static_cast<u32>(in.imm);
      if (!mem_.valid(ea, mi.mem_bytes)) {
        fail("store to unmapped address");
        return;
      }
      if (Memory::in_tcdm(ea)) {
        if (port.used) {
          ++perf_.stall_int_lsu;
          return;
        }
        if (!tcdm_.request(TcdmPortId::kCoreLsu, ea, true)) {
          ++perf_.stall_int_lsu;
          return;
        }
        port.used = true;
      }
      perf_.rf_int_reads += 2;
      mem_.store(ea, read_x(in.rs2), mi.mem_bytes);
      ++perf_.int_stores;
      ++perf_.int_instrs;
      last_issue_ = isa::disassemble(in);
      pc_ += 4;
      return;
    }
    case ExecClass::kBranch: {
      if (!ready_x(in.rs1) || !ready_x(in.rs2)) {
        ++perf_.stall_int_raw;
        return;
      }
      perf_.rf_int_reads += 2;
      ++perf_.branches;
      ++perf_.int_instrs;
      last_issue_ = isa::disassemble(in);
      if (exec::branch_taken(in.mn, read_x(in.rs1), read_x(in.rs2))) {
        pc_ += static_cast<u32>(in.imm);
        bubbles_ = cfg_.taken_branch_penalty;
      } else {
        pc_ += 4;
      }
      return;
    }
    case ExecClass::kJump: {
      if (in.mn == Mnemonic::kJalr && !ready_x(in.rs1)) {
        ++perf_.stall_int_raw;
        return;
      }
      if (!ready_x(in.rd)) {
        ++perf_.stall_int_raw;
        return;
      }
      const u32 link = pc_ + 4;
      if (in.mn == Mnemonic::kJal) {
        pc_ += static_cast<u32>(in.imm);
      } else {
        ++perf_.rf_int_reads;
        pc_ = (read_x(in.rs1) + static_cast<u32>(in.imm)) & ~1u;
      }
      write_x(in.rd, link);
      ++perf_.rf_int_writes;
      bubbles_ = cfg_.taken_branch_penalty;
      ++perf_.int_instrs;
      last_issue_ = isa::disassemble(in);
      return;
    }
    case ExecClass::kCsr: {
      const u32 addr = static_cast<u32>(in.imm);
      // Stream/chaining CSR writes serialize against in-flight FP work, so
      // enabling/disabling SSRs or chaining never races the FPU pipeline.
      if (isa::csr::is_stream_csr(addr) && !fp_.quiescent()) {
        ++perf_.stall_csr_barrier;
        return;
      }
      u32 operand = 0;
      const bool reg_form = in.mn == Mnemonic::kCsrrw ||
                            in.mn == Mnemonic::kCsrrs || in.mn == Mnemonic::kCsrrc;
      if (reg_form) {
        if (!ready_x(in.rs1)) {
          ++perf_.stall_int_raw;
          return;
        }
        ++perf_.rf_int_reads;
        operand = read_x(in.rs1);
      } else {
        operand = in.rs1; // zimm
      }
      if (!ready_x(in.rd)) {
        ++perf_.stall_int_raw;
        return;
      }
      const u32 old = csr_read(addr, now);
      switch (in.mn) {
        case Mnemonic::kCsrrw: case Mnemonic::kCsrrwi:
          csr_apply(addr, operand);
          break;
        case Mnemonic::kCsrrs: case Mnemonic::kCsrrsi:
          if (operand != 0) csr_apply(addr, old | operand);
          break;
        default:
          if (operand != 0) csr_apply(addr, old & ~operand);
      }
      write_x(in.rd, old);
      ++perf_.csr_ops;
      ++perf_.int_instrs;
      last_issue_ = isa::disassemble(in);
      pc_ += 4;
      return;
    }
    case ExecClass::kScfg: {
      if (in.mn == Mnemonic::kScfgw) {
        if (!ready_x(in.rs1)) {
          ++perf_.stall_int_raw;
          return;
        }
        ++perf_.rf_int_reads;
        const Status s = fp_.cfg_write(in.imm, read_x(in.rs1));
        if (!s.is_ok()) {
          fail(s.message());
          return;
        }
      } else {
        if (!ready_x(in.rd)) {
          ++perf_.stall_int_raw;
          return;
        }
        write_x(in.rd, fp_.cfg_read(in.imm));
        ++perf_.rf_int_writes;
      }
      ++perf_.csr_ops;
      ++perf_.int_instrs;
      last_issue_ = isa::disassemble(in);
      pc_ += 4;
      return;
    }
    case ExecClass::kSystem: {
      if (in.mn == Mnemonic::kEcall) {
        halt_ = HaltReason::kEcall;
        return;
      }
      if (in.mn == Mnemonic::kEbreak) {
        halt_ = HaltReason::kEbreak;
        return;
      }
      // fence: wait for FP-subsystem quiescence (memory ordering barrier).
      if (!fp_.quiescent()) {
        ++perf_.stall_csr_barrier;
        return;
      }
      ++perf_.int_instrs;
      last_issue_ = isa::disassemble(in);
      pc_ += 4;
      return;
    }
    default:
      fail("unhandled instruction on the integer core: " + isa::disassemble(in));
  }
}

void IntCore::tick(Cycle now, CorePort& port) {
  last_issue_.clear();
  if (halt_ != HaltReason::kNone) return;
  if (now < div_busy_until_) {
    ++perf_.int_div_busy;
    return;
  }
  if (bubbles_ > 0) {
    --bubbles_;
    ++perf_.branch_bubbles;
    return;
  }
  const Instr* in = prog_.fetch(pc_);
  if (in == nullptr) {
    halt_ = HaltReason::kOffText;
    return;
  }
  if (!in->valid()) {
    fail("illegal instruction encoding");
    return;
  }
  if (in->meta().fp_domain) {
    exec_offload(*in, now);
  } else {
    exec_int(*in, now, port);
  }
}

} // namespace sch::sim
