#include "sim/int_core.hpp"

#include <cassert>
#include <sstream>

#include "isa/csr.hpp"
#include "isa/disasm.hpp"
#include "iss/exec_semantics.hpp"

namespace sch::sim {

using isa::ExecHandler;
using isa::Instr;
using isa::Mnemonic;
using isa::PredecodedInstr;

IntCore::IntCore(const Program& prog, Memory& mem, Tcdm& tcdm,
                 const SimConfig& cfg, PerfCounters& perf, FpSubsystem& fp,
                 u32 hartid, dma::Engine* dma)
    : prog_(prog), mem_(mem), tcdm_(tcdm), cfg_(cfg), perf_(perf), fp_(fp),
      dma_(dma), trace_(cfg.trace), hartid_(hartid),
      lsu_req_(Tcdm::requester_id(hartid, TcdmPortId::kCoreLsu)),
      pc_(prog.text_base) {}

void IntCore::fail(const std::string& message) {
  if (halt_ != HaltReason::kNone) return;
  halt_ = HaltReason::kError;
  std::ostringstream os;
  os << "pc=0x" << std::hex << pc_ << std::dec << ": " << message;
  error_ = os.str();
}

void IntCore::note_issue(const Instr& in) {
  if (trace_) last_issue_ = isa::disassemble(in);
}

void IntCore::schedule_write(u8 rd, u32 value, Cycle ready_at) {
  if (rd == 0) return;
  busy_x_[rd] = true;
  assert(pending_size_ < pending_.size() &&
         "pending writeback queue exceeds one in-flight write per register");
  pending_[pending_size_++] = {rd, value, ready_at};
}

void IntCore::commit_pending(Cycle now) {
  u32 i = 0;
  while (i < pending_size_) {
    if (pending_[i].ready_at <= now) {
      write_x(pending_[i].rd, pending_[i].value);
      busy_x_[pending_[i].rd] = false;
      ++perf_.rf_int_writes;
      pending_[i] = pending_[--pending_size_]; // swap-remove; order is free
    } else {
      ++i;
    }
  }
}

u32 IntCore::csr_read(u32 addr, Cycle now) const {
  switch (addr) {
    case isa::csr::kCycle:
    case isa::csr::kMcycle:
      return static_cast<u32>(now);
    case isa::csr::kInstret:
    case isa::csr::kMinstret:
      return static_cast<u32>(perf_.total_retired());
    case isa::csr::kMhartid:
      return hartid_;
    case isa::csr::kMnumharts:
      return cfg_.num_cores;
    case isa::csr::kSsrEnable:
      return fp_.ssr_enabled() ? 1u : 0u;
    case isa::csr::kChainMask:
      return fp_.chain_mask();
    default:
      return 0;
  }
}

void IntCore::csr_apply(u32 addr, u32 value) {
  switch (addr) {
    case isa::csr::kSsrEnable:
      fp_.set_ssr_enable((value & 1u) != 0);
      return;
    case isa::csr::kChainMask:
      fp_.set_chain_mask(value);
      return;
    default:
      return; // other CSRs are read-only or no-op in this model
  }
}

void IntCore::exec_offload(const Instr& in, const PredecodedInstr& pre,
                           [[maybe_unused]] Cycle now) {
  const isa::MnemonicInfo& mi = *pre.mi;
  // Integer operands are captured at offload time.
  const bool needs_rs1 = mi.rs1 == isa::RegClass::kInt;
  if (needs_rs1 && !ready_x(in.rs1)) {
    ++perf_.stall_int_raw;
    return;
  }
  // FP->int results write back asynchronously; guard in-order WAW.
  const bool writes_int = mi.rd == isa::RegClass::kInt;
  if (writes_int && !ready_x(in.rd)) {
    ++perf_.stall_int_raw;
    return;
  }
  if (!fp_.offload_ready()) {
    ++perf_.stall_offload_full;
    return;
  }

  FpOp op;
  op.in = in;
  op.mi = pre.mi;
  if (needs_rs1) {
    ++perf_.rf_int_reads;
    const u32 rs1 = read_x(in.rs1);
    op.int_operand = (pre.handler == ExecHandler::kFpLoad ||
                      pre.handler == ExecHandler::kFpStore)
                         ? rs1 + static_cast<u32>(pre.aux)
                         : rs1;
  }
  // Released by the FP writeback; x0 is exempt (the writeback drops it, so
  // marking it busy would wedge every later x0-reading instruction).
  if (writes_int && in.rd != 0) busy_x_[in.rd] = true;
  fp_.offload(op);
  ++perf_.offloads;
  if (trace_) last_issue_ = "offload " + isa::disassemble(in);
  pc_ += 4;
}

// --- handler-table targets --------------------------------------------------

void IntCore::h_unexpected(const Instr& in, const PredecodedInstr&, Cycle,
                           CorePort&) {
  fail("unhandled instruction on the integer core: " + isa::disassemble(in));
}

void IntCore::h_lui(const Instr& in, const PredecodedInstr& pre, Cycle,
                    CorePort&) {
  if (!ready_x(in.rd)) {
    ++perf_.stall_int_raw;
    return;
  }
  write_x(in.rd, static_cast<u32>(pre.aux));
  ++perf_.rf_int_writes;
  ++perf_.int_alu_ops;
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

void IntCore::h_auipc(const Instr& in, const PredecodedInstr& pre, Cycle,
                      CorePort&) {
  if (!ready_x(in.rd)) {
    ++perf_.stall_int_raw;
    return;
  }
  write_x(in.rd, pc_ + static_cast<u32>(pre.aux));
  ++perf_.rf_int_writes;
  ++perf_.int_alu_ops;
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

void IntCore::h_alu_imm(const Instr& in, const PredecodedInstr& pre, Cycle,
                        CorePort&) {
  if (!ready_x(in.rs1)) {
    ++perf_.stall_int_raw;
    return;
  }
  ++perf_.rf_int_reads;
  const u32 result =
      exec::int_op(in.mn, read_x(in.rs1), static_cast<u32>(pre.aux));
  if (!ready_x(in.rd)) {
    ++perf_.stall_int_raw;
    return;
  }
  write_x(in.rd, result);
  ++perf_.rf_int_writes;
  ++perf_.int_alu_ops;
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

void IntCore::h_alu_reg(const Instr& in, const PredecodedInstr&, Cycle,
                        CorePort&) {
  if (!ready_x(in.rs1) || !ready_x(in.rs2)) {
    ++perf_.stall_int_raw;
    return;
  }
  perf_.rf_int_reads += 2;
  const u32 result = exec::int_op(in.mn, read_x(in.rs1), read_x(in.rs2));
  if (!ready_x(in.rd)) {
    ++perf_.stall_int_raw;
    return;
  }
  write_x(in.rd, result);
  ++perf_.rf_int_writes;
  ++perf_.int_alu_ops;
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

void IntCore::h_mul(const Instr& in, const PredecodedInstr&, Cycle now,
                    CorePort&) {
  if (!ready_x(in.rs1) || !ready_x(in.rs2) || !ready_x(in.rd)) {
    ++perf_.stall_int_raw;
    return;
  }
  perf_.rf_int_reads += 2;
  const u32 result = exec::int_op(in.mn, read_x(in.rs1), read_x(in.rs2));
  schedule_write(in.rd, result, now + cfg_.int_mul_latency);
  ++perf_.int_mul_ops;
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

void IntCore::h_div(const Instr& in, const PredecodedInstr&, Cycle now,
                    CorePort&) {
  if (!ready_x(in.rs1) || !ready_x(in.rs2) || !ready_x(in.rd)) {
    ++perf_.stall_int_raw;
    return;
  }
  perf_.rf_int_reads += 2;
  const u32 result = exec::int_op(in.mn, read_x(in.rs1), read_x(in.rs2));
  write_x(in.rd, result);
  ++perf_.rf_int_writes;
  div_busy_until_ = now + cfg_.int_div_latency; // blocking divider
  ++perf_.int_div_ops;
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

bool IntCore::load_issue(const Instr& in, const PredecodedInstr& pre,
                         Cycle now, CorePort& port, Cycle& ready_at,
                         u64& value) {
  if (!ready_x(in.rs1) || !ready_x(in.rd)) {
    ++perf_.stall_int_raw;
    return false;
  }
  const Addr ea = read_x(in.rs1) + static_cast<u32>(pre.aux);
  if (!mem_.valid(ea, pre.mem_bytes)) {
    fail("load from unmapped address");
    return false;
  }
  // Program-order interlock against offloaded FP stores to this address.
  if (fp_.mem_hazard(ea, pre.mem_bytes, /*int_is_write=*/false)) {
    ++perf_.stall_int_lsu;
    return false;
  }
  if (Memory::in_tcdm(ea)) {
    if (port.used) {
      ++perf_.stall_int_lsu;
      return false;
    }
    if (!tcdm_.request(lsu_req_, ea, false)) {
      ++perf_.stall_int_lsu;
      return false;
    }
    port.used = true;
    ready_at = now + 1 + cfg_.load_latency;
  } else {
    ready_at = now + cfg_.main_mem_latency;
  }
  ++perf_.rf_int_reads;
  value = mem_.load(ea, pre.mem_bytes);
  return true;
}

void IntCore::h_load(const Instr& in, const PredecodedInstr& pre, Cycle now,
                     CorePort& port) {
  Cycle ready_at = 0;
  u64 v = 0;
  if (!load_issue(in, pre, now, port, ready_at, v)) return;
  schedule_write(in.rd, static_cast<u32>(v), ready_at);
  ++perf_.int_loads;
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

void IntCore::h_load_s8(const Instr& in, const PredecodedInstr& pre, Cycle now,
                        CorePort& port) {
  Cycle ready_at = 0;
  u64 v = 0;
  if (!load_issue(in, pre, now, port, ready_at, v)) return;
  const u32 sext = static_cast<u32>(static_cast<i32>(static_cast<i8>(v)));
  schedule_write(in.rd, sext, ready_at);
  ++perf_.int_loads;
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

void IntCore::h_load_s16(const Instr& in, const PredecodedInstr& pre,
                         Cycle now, CorePort& port) {
  Cycle ready_at = 0;
  u64 v = 0;
  if (!load_issue(in, pre, now, port, ready_at, v)) return;
  const u32 sext = static_cast<u32>(static_cast<i32>(static_cast<i16>(v)));
  schedule_write(in.rd, sext, ready_at);
  ++perf_.int_loads;
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

void IntCore::h_store(const Instr& in, const PredecodedInstr& pre, Cycle,
                      CorePort& port) {
  if (!ready_x(in.rs1) || !ready_x(in.rs2)) {
    ++perf_.stall_int_raw;
    return;
  }
  const Addr ea = read_x(in.rs1) + static_cast<u32>(pre.aux);
  if (!mem_.valid(ea, pre.mem_bytes)) {
    fail("store to unmapped address");
    return;
  }
  // Program-order interlock against offloaded FP loads/stores to this
  // address: the store must not overtake an older queued fld/fsd.
  if (fp_.mem_hazard(ea, pre.mem_bytes, /*int_is_write=*/true)) {
    ++perf_.stall_int_lsu;
    return;
  }
  if (Memory::in_tcdm(ea)) {
    if (port.used) {
      ++perf_.stall_int_lsu;
      return;
    }
    if (!tcdm_.request(lsu_req_, ea, true)) {
      ++perf_.stall_int_lsu;
      return;
    }
    port.used = true;
  }
  perf_.rf_int_reads += 2;
  mem_.store(ea, read_x(in.rs2), pre.mem_bytes);
  ++perf_.int_stores;
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

void IntCore::h_branch(const Instr& in, const PredecodedInstr& pre, Cycle,
                       CorePort&) {
  if (!ready_x(in.rs1) || !ready_x(in.rs2)) {
    ++perf_.stall_int_raw;
    return;
  }
  perf_.rf_int_reads += 2;
  ++perf_.branches;
  ++perf_.int_instrs;
  note_issue(in);
  if (exec::branch_taken(in.mn, read_x(in.rs1), read_x(in.rs2))) {
    pc_ += static_cast<u32>(pre.aux);
    bubbles_ = cfg_.taken_branch_penalty;
  } else {
    pc_ += 4;
  }
}

void IntCore::h_jal(const Instr& in, const PredecodedInstr& pre, Cycle,
                    CorePort&) {
  if (!ready_x(in.rd)) {
    ++perf_.stall_int_raw;
    return;
  }
  const u32 link = pc_ + 4;
  pc_ += static_cast<u32>(pre.aux);
  write_x(in.rd, link);
  ++perf_.rf_int_writes;
  bubbles_ = cfg_.taken_branch_penalty;
  ++perf_.int_instrs;
  note_issue(in);
}

void IntCore::h_jalr(const Instr& in, const PredecodedInstr& pre, Cycle,
                     CorePort&) {
  if (!ready_x(in.rs1)) {
    ++perf_.stall_int_raw;
    return;
  }
  if (!ready_x(in.rd)) {
    ++perf_.stall_int_raw;
    return;
  }
  const u32 link = pc_ + 4;
  ++perf_.rf_int_reads;
  pc_ = (read_x(in.rs1) + static_cast<u32>(pre.aux)) & ~1u;
  write_x(in.rd, link);
  ++perf_.rf_int_writes;
  bubbles_ = cfg_.taken_branch_penalty;
  ++perf_.int_instrs;
  note_issue(in);
}

void IntCore::h_csr(const Instr& in, const PredecodedInstr& pre, Cycle now,
                    CorePort&) {
  const u32 addr = static_cast<u32>(pre.aux);
  // Stream/chaining CSR writes serialize against in-flight FP work, so
  // enabling/disabling SSRs or chaining never races the FPU pipeline.
  if (isa::csr::is_stream_csr(addr) && !fp_.quiescent()) {
    ++perf_.stall_csr_barrier;
    return;
  }
  u32 operand = 0;
  const bool reg_form = in.mn == Mnemonic::kCsrrw ||
                        in.mn == Mnemonic::kCsrrs || in.mn == Mnemonic::kCsrrc;
  if (reg_form) {
    if (!ready_x(in.rs1)) {
      ++perf_.stall_int_raw;
      return;
    }
    ++perf_.rf_int_reads;
    operand = read_x(in.rs1);
  } else {
    operand = in.rs1; // zimm
  }
  if (!ready_x(in.rd)) {
    ++perf_.stall_int_raw;
    return;
  }
  const u32 old = csr_read(addr, now);
  switch (in.mn) {
    case Mnemonic::kCsrrw: case Mnemonic::kCsrrwi:
      csr_apply(addr, operand);
      break;
    case Mnemonic::kCsrrs: case Mnemonic::kCsrrsi:
      if (operand != 0) csr_apply(addr, old | operand);
      break;
    default:
      if (operand != 0) csr_apply(addr, old & ~operand);
  }
  write_x(in.rd, old);
  ++perf_.csr_ops;
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

void IntCore::h_ecall(const Instr&, const PredecodedInstr&, Cycle, CorePort&) {
  halt_ = HaltReason::kEcall;
}

void IntCore::h_ebreak(const Instr&, const PredecodedInstr&, Cycle, CorePort&) {
  halt_ = HaltReason::kEbreak;
}

void IntCore::h_fence(const Instr& in, const PredecodedInstr&, Cycle,
                      CorePort&) {
  // fence: wait for FP-subsystem quiescence (memory ordering barrier).
  if (!fp_.quiescent()) {
    ++perf_.stall_csr_barrier;
    return;
  }
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

void IntCore::h_scfg_w(const Instr& in, const PredecodedInstr&, Cycle,
                       CorePort&) {
  if (!ready_x(in.rs1)) {
    ++perf_.stall_int_raw;
    return;
  }
  ++perf_.rf_int_reads;
  const Status s = fp_.cfg_write(in.imm, read_x(in.rs1));
  if (!s.is_ok()) {
    fail(s.message());
    return;
  }
  ++perf_.csr_ops;
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

void IntCore::h_scfg_r(const Instr& in, const PredecodedInstr&, Cycle,
                       CorePort&) {
  if (!ready_x(in.rd)) {
    ++perf_.stall_int_raw;
    return;
  }
  write_x(in.rd, fp_.cfg_read(in.imm));
  ++perf_.rf_int_writes;
  ++perf_.csr_ops;
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

// --- Xdma ------------------------------------------------------------------

void IntCore::h_dma_src(const Instr& in, const PredecodedInstr&, Cycle,
                        CorePort&) {
  if (!ready_x(in.rs1)) {
    ++perf_.stall_int_raw;
    return;
  }
  if (dma_ == nullptr) {
    fail("dmsrc without a cluster DMA engine");
    return;
  }
  ++perf_.rf_int_reads;
  dma_->set_src(hartid_, read_x(in.rs1));
  ++perf_.csr_ops;
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

void IntCore::h_dma_dst(const Instr& in, const PredecodedInstr&, Cycle,
                        CorePort&) {
  if (!ready_x(in.rs1)) {
    ++perf_.stall_int_raw;
    return;
  }
  if (dma_ == nullptr) {
    fail("dmdst without a cluster DMA engine");
    return;
  }
  ++perf_.rf_int_reads;
  dma_->set_dst(hartid_, read_x(in.rs1));
  ++perf_.csr_ops;
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

void IntCore::h_dma_str(const Instr& in, const PredecodedInstr&, Cycle,
                        CorePort&) {
  if (!ready_x(in.rs1) || !ready_x(in.rs2)) {
    ++perf_.stall_int_raw;
    return;
  }
  if (dma_ == nullptr) {
    fail("dmstr without a cluster DMA engine");
    return;
  }
  perf_.rf_int_reads += 2;
  dma_->set_strides(hartid_, static_cast<i32>(read_x(in.rs1)),
                    static_cast<i32>(read_x(in.rs2)));
  ++perf_.csr_ops;
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

void IntCore::dma_issue(const Instr& in, Cycle now, u32 row_bytes, u32 rows) {
  // Cheap queue check first: a retry against a full queue must not re-walk
  // the O(rows) footprint validation every cycle (the latches cannot change
  // while this hart is stalled here).
  if (!dma_->can_issue(hartid_)) {
    ++perf_.stall_dma_full;
    dma_->note_queue_full();
    return;
  }
  const Status valid =
      dma::validate_copy(mem_, dma_->snapshot(hartid_, row_bytes, rows));
  if (!valid.is_ok()) {
    fail(valid.message());
    return;
  }
  const u32 id = dma_->issue(hartid_, row_bytes, rows, now);
  write_x(in.rd, id);
  ++perf_.rf_int_writes;
  ++perf_.csr_ops;
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

void IntCore::h_dma_cpy(const Instr& in, const PredecodedInstr&, Cycle now,
                        CorePort&) {
  if (!ready_x(in.rs1) || !ready_x(in.rd)) {
    ++perf_.stall_int_raw;
    return;
  }
  if (dma_ == nullptr) {
    fail("dmcpy without a cluster DMA engine");
    return;
  }
  ++perf_.rf_int_reads;
  dma_issue(in, now, read_x(in.rs1), 1);
}

void IntCore::h_dma_cpy2d(const Instr& in, const PredecodedInstr&, Cycle now,
                          CorePort&) {
  if (!ready_x(in.rs1) || !ready_x(in.rs2) || !ready_x(in.rd)) {
    ++perf_.stall_int_raw;
    return;
  }
  if (dma_ == nullptr) {
    fail("dmcpy2d without a cluster DMA engine");
    return;
  }
  perf_.rf_int_reads += 2;
  dma_issue(in, now, read_x(in.rs1), read_x(in.rs2));
}

void IntCore::h_dma_stat(const Instr& in, const PredecodedInstr& pre, Cycle,
                         CorePort&) {
  if (!ready_x(in.rd)) {
    ++perf_.stall_int_raw;
    return;
  }
  if (dma_ == nullptr) {
    fail("dmstat without a cluster DMA engine");
    return;
  }
  const u32 sel = static_cast<u32>(pre.aux);
  write_x(in.rd, sel == 0 ? dma_->completed(hartid_)
                          : dma_->outstanding(hartid_));
  ++perf_.rf_int_writes;
  ++perf_.csr_ops;
  ++perf_.int_instrs;
  note_issue(in);
  pc_ += 4;
}

const IntCore::Handler
    IntCore::kHandlers[static_cast<usize>(ExecHandler::kCount)] = {
        &IntCore::h_unexpected, // kInvalid (rejected before dispatch)
        &IntCore::h_lui,        // kLui
        &IntCore::h_auipc,      // kAuipc
        &IntCore::h_alu_imm,    // kIntAluImm
        &IntCore::h_alu_reg,    // kIntAluReg
        &IntCore::h_mul,        // kIntMul
        &IntCore::h_div,        // kIntDiv
        &IntCore::h_jal,        // kJal
        &IntCore::h_jalr,       // kJalr
        &IntCore::h_branch,     // kBranch
        &IntCore::h_load,       // kLoad
        &IntCore::h_load_s8,    // kLoadSext8
        &IntCore::h_load_s16,   // kLoadSext16
        &IntCore::h_store,      // kStore
        &IntCore::h_csr,        // kCsr
        &IntCore::h_ecall,      // kEcall
        &IntCore::h_ebreak,     // kEbreak
        &IntCore::h_fence,      // kFence
        &IntCore::h_unexpected, // kFpLoad (FP-domain: offloaded, not here)
        &IntCore::h_unexpected, // kFpStore
        &IntCore::h_unexpected, // kFpMac
        &IntCore::h_unexpected, // kFpDiv
        &IntCore::h_unexpected, // kFpSqrt
        &IntCore::h_unexpected, // kFpCmp
        &IntCore::h_unexpected, // kFpCvtF2I
        &IntCore::h_unexpected, // kFpCvtI2F
        &IntCore::h_unexpected, // kFrep
        &IntCore::h_scfg_w,     // kScfgW
        &IntCore::h_scfg_r,     // kScfgR
        &IntCore::h_dma_src,    // kDmaSrc
        &IntCore::h_dma_dst,    // kDmaDst
        &IntCore::h_dma_str,    // kDmaStr
        &IntCore::h_dma_cpy,    // kDmaCpy
        &IntCore::h_dma_cpy2d,  // kDmaCpy2d
        &IntCore::h_dma_stat,   // kDmaStat
};

void IntCore::tick(Cycle now, CorePort& port) {
  if (trace_) last_issue_.clear();
  if (halt_ != HaltReason::kNone) return;
  if (now < div_busy_until_) {
    ++perf_.int_div_busy;
    return;
  }
  if (bubbles_ > 0) {
    --bubbles_;
    ++perf_.branch_bubbles;
    return;
  }
  const u32 idx = prog_.text_index(pc_);
  if (idx == Program::kNoIndex) {
    halt_ = HaltReason::kOffText;
    return;
  }
  const PredecodedInstr& pre = prog_.pre[idx];
  if (pre.handler == ExecHandler::kInvalid) {
    fail("illegal instruction encoding");
    return;
  }
  const Instr& in = prog_.instrs[idx];
  if (pre.fp_domain) {
    exec_offload(in, pre, now);
  } else {
    (this->*kHandlers[static_cast<usize>(pre.handler)])(in, pre, now, port);
  }
}

} // namespace sch::sim
