// One chaining core of the cluster: the integer core, the FP subsystem
// (offload queue, FREP sequencer, FPU, chain unit) and the three SSR
// streamers, wired to the cluster-shared Memory and banked Tcdm. The
// Cluster invokes tick() once per cycle in a rotating core order; within the
// tick the core runs the same phase sequence the single-core Simulator
// always ran (commit pending writes, FP tick, integer tick, SSR fetches with
// the rotating streamer priority).
#pragma once

#include <memory>
#include <string>

#include "asm/program.hpp"
#include "dma/dma.hpp"
#include "iss/arch_state.hpp"
#include "mem/memory.hpp"
#include "mem/tcdm.hpp"
#include "sim/fp_subsystem.hpp"
#include "sim/int_core.hpp"
#include "sim/perf.hpp"
#include "sim/sim_config.hpp"

namespace sch::sim {

class Core {
 public:
  /// The core keeps its own copy of the program; `memory`, `tcdm`, `config`
  /// and `dma` are cluster-owned and must outlive the core. `hartid` is the
  /// mhartid CSR value and selects the core's TCDM requester block.
  Core(Program program, Memory& memory, Tcdm& tcdm, const SimConfig& config,
       u32 hartid, dma::Engine* dma = nullptr);

  /// Load this core's program data image into the shared memory. The
  /// cluster calls this once, in hartid order, before the first cycle.
  void load_image();

  /// Run one cycle of every unit. A fully-halted core is a no-op (its
  /// perf().cycles stops counting, so per-core cycle counts report the
  /// core's active span under load imbalance).
  void tick(Cycle now);

  /// Integer core halted, FP subsystem drained, no pending writebacks.
  [[nodiscard]] bool fully_halted() const {
    return core_->halting() && fp_->quiescent() && core_->pending_empty();
  }

  [[nodiscard]] u32 hartid() const { return hartid_; }
  [[nodiscard]] const Program& program() const { return prog_; }
  [[nodiscard]] const PerfCounters& perf() const { return perf_; }
  [[nodiscard]] const IntCore& int_core() const { return *core_; }
  [[nodiscard]] const FpSubsystem& fp() const { return *fp_; }
  /// Mutable FP-subsystem access for fault injection (sim::FaultPlan).
  [[nodiscard]] FpSubsystem& fp_mut() { return *fp_; }
  [[nodiscard]] HaltReason halt_reason() const { return core_->halt_reason(); }
  /// Cycle at which the core fully halted (0 while still running).
  [[nodiscard]] Cycle halted_at() const { return halted_at_; }

  [[nodiscard]] bool has_error() const {
    return fp_->has_error() || core_->has_error();
  }
  /// FP-subsystem errors win (mirrors the original Simulator check order).
  [[nodiscard]] const std::string& error() const {
    return fp_->has_error() ? fp_->error() : core_->error();
  }

  /// Architectural state snapshot (for ISS cross-validation).
  [[nodiscard]] ArchState arch_state() const;

 private:
  Program prog_;
  Memory& mem_;
  Tcdm& tcdm_;
  const SimConfig& cfg_;
  const u32 hartid_;
  PerfCounters perf_;
  std::unique_ptr<FpSubsystem> fp_;
  std::unique_ptr<IntCore> core_;
  u32 ssr_rr_ = 0; // round-robin rotation of this core's SSR port order
  Cycle halted_at_ = 0;
};

} // namespace sch::sim
