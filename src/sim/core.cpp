#include "sim/core.hpp"

namespace sch::sim {

Core::Core(Program program, Memory& memory, Tcdm& tcdm,
           const SimConfig& config, u32 hartid, dma::Engine* dma)
    : prog_(std::move(program)),
      mem_(memory),
      tcdm_(tcdm),
      cfg_(config),
      hartid_(hartid) {
  prog_.ensure_predecoded();
  fp_ = std::make_unique<FpSubsystem>(cfg_, mem_, tcdm_, perf_, hartid_);
  core_ = std::make_unique<IntCore>(prog_, mem_, tcdm_, cfg_, perf_, *fp_,
                                    hartid_, dma);
  fp_->set_int_wb_sink([this](const IntWriteback& wb) {
    core_->schedule_write(wb.rd, wb.value, wb.ready_at);
  });
}

void Core::load_image() {
  mem_.load_image(prog_.data_base, prog_.data);
}

void Core::tick(Cycle now) {
  if (halted_at_ != 0) return; // drained; freeze per-core counters
  fp_->begin_cycle(now);
  CorePort port;

  core_->commit_pending(now);
  fp_->tick(now, port);
  core_->tick(now, port);

  // SSR streamers fetch last: the core's LSU has bank priority within the
  // cycle; the three streamer ports rotate round-robin among themselves.
  static constexpr TcdmPortId kSsrPorts[3] = {
      TcdmPortId::kSsr0, TcdmPortId::kSsr1, TcdmPortId::kSsr2};
  for (u32 k = 0; k < ssr::kNumSsrs; ++k) {
    const u32 i = (ssr_rr_ + k) % ssr::kNumSsrs;
    fp_->streamer(i).tick_fetch(now, tcdm_, mem_,
                                Tcdm::requester_id(hartid_, kSsrPorts[i]));
  }
  ssr_rr_ = (ssr_rr_ + 1) % ssr::kNumSsrs;

  ++perf_.cycles;
  if (fully_halted()) halted_at_ = now;
}

ArchState Core::arch_state() const {
  ArchState s;
  s.pc = core_->pc();
  for (u8 r = 0; r < isa::kNumIntRegs; ++r) s.x[r] = core_->regs()[r];
  s.f = fp_->fregs();
  return s;
}

} // namespace sch::sim
