// FP subsystem of the pseudo-dual-issue core: offload queue + FREP sequencer,
// issue stage with scoreboard, pipelined FPU, iterative div/sqrt unit, FP
// load/store unit, the three SSR streamers, and the chaining unit.
//
// Issue protocol (see DESIGN.md §4): when the next instruction's operands are
// ready, they are read/popped atomically into a one-entry issue latch (the
// FPU input register); the latch drains into the FPU the same cycle unless
// the pipeline is frozen by writeback backpressure. Pops happen before the
// pipeline's writeback pushes within a cycle, so a value written back in
// cycle t is poppable in t+1 (issue-to-use = depth + 1).
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <string>

#include "asm/program.hpp"
#include "core/chain_unit.hpp"
#include "isa/reg.hpp"
#include "mem/memory.hpp"
#include "mem/tcdm.hpp"
#include "sim/fpu.hpp"
#include "sim/perf.hpp"
#include "sim/sequencer.hpp"
#include "sim/sim_config.hpp"
#include "ssr/ssr_file.hpp"
#include "ssr/streamer.hpp"

namespace sch::sim {

/// Per-cycle shared structural state (the core's single TCDM port).
struct CorePort {
  bool used = false;
};

/// Writeback from the FP domain into the integer register file.
struct IntWriteback {
  u8 rd;
  u32 value;
  Cycle ready_at;
};

class FpSubsystem {
 public:
  /// `hartid` selects this subsystem's TCDM requester block (it shares the
  /// owning core's LSU port priority).
  FpSubsystem(const SimConfig& cfg, Memory& mem, Tcdm& tcdm,
              PerfCounters& perf, u32 hartid = 0);

  /// Wire the channel for FP->integer writebacks (compares, conversions).
  void set_int_wb_sink(std::function<void(const IntWriteback&)> sink) {
    int_wb_ = std::move(sink);
  }

  // --- integer-core interface ---
  [[nodiscard]] bool offload_ready() const { return !seq_.queue_full(); }
  void offload(FpOp op) { seq_.push(std::move(op)); }

  /// Ordering interlock for the integer LSU: true while a pending (queued
  /// or frep-replayed, not yet executed) fld/fsd overlaps the access and at
  /// least one side writes. Issued ops are not hazards -- their memory
  /// effect is applied at FP issue time. SSR/DMA traffic is exempt: those
  /// streams are architecturally asynchronous and synchronized explicitly
  /// (SSR disable barrier, dmstat polling).
  [[nodiscard]] bool mem_hazard(u32 addr, u32 bytes, bool int_is_write) const {
    return seq_.pending_mem_overlap(addr, bytes, int_is_write);
  }

  /// Everything drained: queue, latch, pipeline, div unit, LSU, write streams.
  [[nodiscard]] bool quiescent() const;

  void set_ssr_enable(bool enable) { ssr_enabled_ = enable; }
  [[nodiscard]] bool ssr_enabled() const { return ssr_enabled_; }
  void set_chain_mask(u32 mask);
  [[nodiscard]] u32 chain_mask() const { return chain_.mask(); }

  Status cfg_write(i32 index, u32 value);
  [[nodiscard]] u32 cfg_read(i32 index) const;

  // --- simulation loop interface ---
  void begin_cycle(Cycle now);
  void tick(Cycle now, CorePort& port);
  ssr::Streamer& streamer(u32 i) { return streamers_[i]; }
  [[nodiscard]] const ssr::Streamer& streamer(u32 i) const { return streamers_[i]; }

  [[nodiscard]] bool has_error() const { return !error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

  // --- observability ---
  [[nodiscard]] const std::array<u64, isa::kNumFpRegs>& fregs() const { return fregs_; }
  [[nodiscard]] std::array<u64, isa::kNumFpRegs>& fregs() { return fregs_; }
  [[nodiscard]] const chain::ChainUnit& chain() const { return chain_; }
  /// Mutable chain-unit access for fault injection (sim::FaultPlan).
  [[nodiscard]] chain::ChainUnit& chain_mut() { return chain_; }
  [[nodiscard]] const FpuPipeline& pipeline() const { return pipe_; }
  [[nodiscard]] const Sequencer& sequencer() const { return seq_; }
  /// Disassembly of the op issued this cycle ("" if none) for the trace.
  /// Only maintained when SimConfig::trace is set.
  [[nodiscard]] const std::string& last_issue() const { return last_issue_; }
  /// Stall cause tag of this cycle ("" if none). Stored as a pointer to a
  /// string literal so the hot loop never touches a std::string.
  [[nodiscard]] const char* last_stall() const { return last_stall_; }

 private:
  enum class SrcKind : u8 { kRf, kSsr, kChain };

  struct LatchEntry {
    FpuSlot slot;
    isa::ExecClass unit;
  };

  struct LsuPending {
    bool busy = false;
    u8 rd = 0;
    DestKind dest = DestKind::kNone;
    u64 value = 0;
    Cycle ready_at = 0;
  };

  void fail(const std::string& message) { if (error_.empty()) error_ = message; }
  /// Record this cycle's issued op for the trace (no-op unless tracing).
  void note_issue(const isa::Instr& in);

  /// Classify a source register under current SSR/chain mappings.
  SrcKind classify_src(u8 reg) const;
  /// True when the source operand can be read/popped this cycle; on false,
  /// bumps the corresponding stall counter.
  bool src_ready(u8 reg);
  /// Read/pop the source operand value (commits SSR/chain pops).
  u64 read_src(u8 reg);
  /// Resolve the destination kind for an FP-destination instruction.
  std::optional<DestKind> resolve_dest(u8 rd);

  void try_fill_latch(Cycle now, CorePort& port);
  void fill_compute(const FpOp& op, Cycle now);
  void fill_load(const FpOp& op, Cycle now, CorePort& port);
  void fill_store(const FpOp& op, Cycle now, CorePort& port);
  /// Attempt writeback of `slot`; returns false when blocked (backpressure).
  bool try_writeback(const FpuSlot& slot, Cycle now);
  void tick_lsu(Cycle now);
  void drain_latch(Cycle now);

  const SimConfig& cfg_;
  Memory& mem_;
  Tcdm& tcdm_;
  PerfCounters& perf_;
  const u32 lsu_req_; // the owning core's LSU requester id in the shared TCDM

  Sequencer seq_;
  FpuPipeline pipe_;
  IterativeUnit div_;
  LsuPending lsu_;
  chain::ChainUnit chain_;

  std::array<u64, isa::kNumFpRegs> fregs_{};
  std::array<u8, isa::kNumFpRegs> busy_f_{}; // outstanding writes per register

  bool ssr_enabled_ = false;
  std::array<ssr::SsrRawConfig, ssr::kNumSsrs> ssr_cfgs_{};
  std::array<ssr::Streamer, ssr::kNumSsrs> streamers_;

  std::optional<LatchEntry> latch_;
  std::function<void(const IntWriteback&)> int_wb_;
  std::string error_;
  const bool trace_;
  std::string last_issue_;
  const char* last_stall_ = "";
  u64 issue_seq_ = 0;
};

} // namespace sch::sim
