// Pipelined FPU model. Results are computed at issue (functional-ahead) and
// carried through the pipeline; writeback applies them to the destination:
// FP register file, chain FIFO (push), SSR write stream, or the integer
// core (compares/conversions). A blocked writeback freezes the pipeline --
// this freeze is exactly the chaining backpressure mechanism of the paper.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"
#include "isa/instr.hpp"

namespace sch::sim {

/// Where a result goes at writeback.
enum class DestKind : u8 { kNone, kFpReg, kChain, kSsrWrite, kIntReg };

struct FpuSlot {
  bool busy = false;
  isa::Mnemonic mn = isa::Mnemonic::kInvalid;
  u8 rd = 0;
  DestKind dest = DestKind::kNone;
  u64 result = 0;
  u64 seq = 0; // issue order, for traces
};

class FpuPipeline {
 public:
  explicit FpuPipeline(u32 depth) : stages_(depth) {}

  [[nodiscard]] u32 depth() const { return static_cast<u32>(stages_.size()); }
  [[nodiscard]] bool stage0_free() const { return !stages_.front().busy; }
  [[nodiscard]] const FpuSlot& last() const { return stages_.back(); }
  [[nodiscard]] const FpuSlot& stage(u32 i) const { return stages_[i]; }
  [[nodiscard]] bool empty() const {
    for (const FpuSlot& s : stages_) {
      if (s.busy) return false;
    }
    return true;
  }

  /// Insert into stage 0 (issue). Requires stage0_free().
  void insert(const FpuSlot& slot) { stages_.front() = slot; }

  /// Advance one cycle after the last stage was written back (or was empty):
  /// shifts every slot forward and clears stage 0.
  void advance() {
    for (usize i = stages_.size(); i-- > 1;) stages_[i] = stages_[i - 1];
    stages_.front() = FpuSlot{};
  }

  /// Clear the last stage in place (writeback done, used before advance()).
  void clear_last() { stages_.back() = FpuSlot{}; }

 private:
  std::vector<FpuSlot> stages_;
};

/// Iterative (unpipelined) unit for fdiv/fsqrt.
struct IterativeUnit {
  bool busy = false;
  FpuSlot slot{};
  Cycle done_at = 0;

  [[nodiscard]] bool ready(Cycle now) const { return busy && now >= done_at; }
};

} // namespace sch::sim
