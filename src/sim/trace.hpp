// Per-cycle trace recording for the Fig. 1c-style issue trace and the
// Fig. 2-style dataflow snapshot (FPU pipeline occupancy + chain register
// state + SSR FIFO levels, with issue sequence numbers as the paper's
// numbered tokens).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace sch::sim {

struct TraceEntry {
  Cycle cycle = 0;
  std::string int_issue;  // integer-core action ("" = bubble/stall)
  std::string fp_issue;   // FP issue-stage action ("" = none)
  std::string fp_stall;   // FP stall cause ("" = none)

  // Fig. 2 snapshot: issue sequence number occupying each FPU stage
  // (0 = empty), taken at end of cycle; stage[0] is the youngest.
  std::array<u64, 8> fpu_stage_seq{};
  u32 fpu_depth = 0;

  // First chaining-enabled register's state (the paper tracks ft3).
  bool chain_tracked = false;
  u8 chain_reg = 0;
  bool chain_valid = false;
  u64 chain_value = 0;

  std::array<u32, 3> ssr_read_fifo{};  // visible read-FIFO entries
  std::array<u32, 3> ssr_write_fifo{}; // pending write-FIFO entries
};

class Trace {
 public:
  explicit Trace(bool enabled) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const { return enabled_; }
  void record(TraceEntry entry) {
    if (enabled_) entries_.push_back(std::move(entry));
  }
  [[nodiscard]] const std::vector<TraceEntry>& entries() const { return entries_; }

  /// Render the issue trace as a Fig. 1c-style table.
  [[nodiscard]] std::string format_issue_table() const;
  /// Render pipeline/chain occupancy over time (Fig. 2 tokens).
  [[nodiscard]] std::string format_dataflow(usize max_rows = 64) const;

 private:
  bool enabled_;
  std::vector<TraceEntry> entries_;
};

} // namespace sch::sim
