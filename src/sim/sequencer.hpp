// FP offload queue + FREP hardware-loop sequencer.
//
// The integer core pushes FP-domain instructions (with integer operands
// captured at offload time) into a bounded queue. The sequencer presents a
// front() instruction to the FP issue stage. A frep.o/frep.i marker puts the
// sequencer into capture mode: the next `body` instructions are copied into
// a ring buffer as they flow through, then replayed without integer-core
// involvement -- which is how SARIS-style kernels hide loop overhead.
// Bodies larger than the buffer are rejected (model error), which matters:
// chaining variants keep coefficients in named registers and their unrolled
// bodies exceed the buffer, so they cannot use FREP (see DESIGN.md §5).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/fixed_queue.hpp"
#include "common/types.hpp"
#include "isa/instr.hpp"

namespace sch::sim {

/// An offloaded FP-domain instruction with captured integer operands.
struct FpOp {
  isa::Instr in;
  /// For fld/fsd: effective address; for int->FP ops and frep: rs1 value.
  u32 int_operand = 0;
  u64 seq = 0;
  /// Cached metadata, captured from the predecoded stream at offload time
  /// (may be null for hand-built ops in tests; meta() falls back).
  const isa::MnemonicInfo* mi = nullptr;

  [[nodiscard]] const isa::MnemonicInfo& meta() const {
    return mi != nullptr ? *mi : in.meta();
  }
};

class Sequencer {
 public:
  Sequencer(u32 queue_depth, u32 buffer_depth)
      : queue_(queue_depth), buffer_depth_(buffer_depth) {}

  [[nodiscard]] bool queue_full() const { return queue_.full(); }
  [[nodiscard]] bool queue_empty() const { return queue_.empty(); }

  /// Push from the integer core (offload). frep markers configure the
  /// sequencer when they reach the queue head.
  void push(FpOp op) { queue_.push(std::move(op)); }

  /// Next instruction for the FP issue stage (replay takes priority),
  /// consuming frep markers on the way. nullptr when nothing is available.
  /// Sets `error` (sticky) when a frep body is malformed. The pointer is
  /// valid until the next push/pop_front.
  const FpOp* peek();

  /// Copying convenience wrapper around peek() (tests).
  std::optional<FpOp> front() {
    const FpOp* op = peek();
    return op != nullptr ? std::optional<FpOp>(*op) : std::nullopt;
  }

  /// Consume the instruction returned by peek()/front().
  void pop_front();

  /// No queued work, no replay in progress.
  [[nodiscard]] bool idle() const {
    return queue_.empty() && state_ == State::kIdle;
  }

  /// True when a not-yet-executed FP memory op overlaps [addr, addr+bytes)
  /// and at least one side writes. Queued fld/fsd carry their effective
  /// address (captured at offload); a frep body in capture or replay will
  /// re-execute its memory ops on the remaining passes, so the ring buffer
  /// counts as pending too. This is the int-LSU ordering interlock: the
  /// integer core consults it before a load/store so that same-address
  /// accesses commit in program order across the offload boundary.
  [[nodiscard]] bool pending_mem_overlap(u32 addr, u32 bytes,
                                         bool int_is_write) const {
    const auto hazard = [&](const FpOp& op) {
      const isa::MnemonicInfo& mi = op.meta();
      const bool is_store = mi.exec == isa::ExecClass::kFpStore;
      if (mi.exec != isa::ExecClass::kFpLoad && !is_store) return false;
      if (!int_is_write && !is_store) return false;  // read vs read
      return op.int_operand < addr + bytes &&
             addr < op.int_operand + mi.mem_bytes;
    };
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (hazard(queue_.at(i))) return true;
    }
    if (state_ != State::kIdle) {
      for (const FpOp& op : buffer_) {
        if (hazard(op)) return true;
      }
    }
    return false;
  }

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] bool has_error() const { return !error_.empty(); }

  struct Stats {
    u64 replayed_ops = 0; // ops issued from the ring buffer (passes 2..N)
    u64 freps_executed = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  enum class State : u8 { kIdle, kCapturing, kReplaying };

  void start_frep(const FpOp& marker);

  FixedQueue<FpOp> queue_;
  u32 buffer_depth_;

  State state_ = State::kIdle;
  bool inner_mode_ = false;     // frep.i: repeat each instruction in place
  std::vector<FpOp> buffer_;
  u32 body_len_ = 0;
  u32 total_passes_ = 0;        // rs1 + 1
  u32 capture_left_ = 0;
  u32 replay_pass_ = 0;         // current pass (0 = capture pass)
  u32 replay_idx_ = 0;
  u32 inner_rep_ = 0;           // frep.i repetition counter for current instr

  std::string error_;
  Stats stats_;
};

} // namespace sch::sim
