// Integer core of the pseudo-dual-issue pair: fetch/issue at most one
// instruction per cycle; FP-domain instructions are offloaded into the FP
// subsystem's queue with their integer operands captured (addresses for
// fld/fsd, rs1 values for int->FP ops and frep), after which the core moves
// on -- FP stalls only reach the core through a full offload queue.
//
// Issue dispatches through the program's predecoded handler records; delayed
// register writebacks live in a fixed-capacity array (bounded by one
// outstanding write per architectural register), so the per-cycle loop is
// allocation-free.
#pragma once

#include <array>
#include <string>

#include "asm/program.hpp"
#include "dma/dma.hpp"
#include "iss/arch_state.hpp"
#include "mem/memory.hpp"
#include "mem/tcdm.hpp"
#include "sim/fp_subsystem.hpp"
#include "sim/perf.hpp"
#include "sim/sim_config.hpp"

namespace sch::sim {

class IntCore {
 public:
  /// `hartid` selects this core's mhartid CSR value and its TCDM requester
  /// block (hartid * kTcdmPortsPerCore + role). `dma` is the cluster-shared
  /// DMA engine the Xdma instructions program (may be null in unit tests
  /// that never execute dm* instructions).
  IntCore(const Program& prog, Memory& mem, Tcdm& tcdm, const SimConfig& cfg,
          PerfCounters& perf, FpSubsystem& fp, u32 hartid = 0,
          dma::Engine* dma = nullptr);

  /// Commit scheduled register writes (loads, muls, FP->int results) whose
  /// latency has elapsed. Call at the start of each cycle.
  void commit_pending(Cycle now);

  void tick(Cycle now, CorePort& port);

  /// Schedule a delayed integer register write (also used by the FP
  /// subsystem for compare/convert writebacks).
  void schedule_write(u8 rd, u32 value, Cycle ready_at);

  [[nodiscard]] bool halting() const { return halt_ != HaltReason::kNone; }
  /// No scheduled register writes outstanding (halt must wait for these).
  [[nodiscard]] bool pending_empty() const { return pending_size_ == 0; }
  [[nodiscard]] HaltReason halt_reason() const { return halt_; }
  [[nodiscard]] bool has_error() const { return !error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

  [[nodiscard]] const std::array<u32, isa::kNumIntRegs>& regs() const { return x_; }
  [[nodiscard]] Addr pc() const { return pc_; }
  /// Disassembly of this cycle's integer-core action (trace support; only
  /// maintained when SimConfig::trace is set).
  [[nodiscard]] const std::string& last_issue() const { return last_issue_; }

 private:
  struct Pending {
    u8 rd;
    u32 value;
    Cycle ready_at;
  };

  using Handler = void (IntCore::*)(const isa::Instr&,
                                    const isa::PredecodedInstr&, Cycle,
                                    CorePort&);
  static const Handler kHandlers[static_cast<usize>(isa::ExecHandler::kCount)];

  void fail(const std::string& message);
  [[nodiscard]] u32 read_x(u8 r) const { return x_[r]; }
  void write_x(u8 r, u32 v) {
    if (r != 0) x_[r] = v;
  }
  [[nodiscard]] bool ready_x(u8 r) const { return !busy_x_[r]; }
  void note_issue(const isa::Instr& in);

  void exec_offload(const isa::Instr& in, const isa::PredecodedInstr& pre,
                    Cycle now);
  u32 csr_read(u32 addr, Cycle now) const;
  void csr_apply(u32 addr, u32 value);

  // Handler-table targets (one per isa::ExecHandler, specials pre-resolved).
  void h_unexpected(const isa::Instr&, const isa::PredecodedInstr&, Cycle,
                    CorePort&);
  void h_lui(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_auipc(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_alu_imm(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_alu_reg(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_mul(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_div(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_jal(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_jalr(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_branch(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_load(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_load_s8(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_load_s16(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_store(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_csr(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_ecall(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_ebreak(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_fence(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_scfg_w(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_scfg_r(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_dma_src(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_dma_dst(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_dma_str(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_dma_cpy(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_dma_cpy2d(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);
  void h_dma_stat(const isa::Instr&, const isa::PredecodedInstr&, Cycle, CorePort&);

  /// Shared tail of dmcpy/dmcpy2d once operands are read: validate, check
  /// queue space, issue, and write the transfer id into rd.
  void dma_issue(const isa::Instr& in, Cycle now, u32 row_bytes, u32 rows);

  /// Shared tail of an integer load once the effective address is accepted.
  bool load_issue(const isa::Instr& in, const isa::PredecodedInstr& pre,
                  Cycle now, CorePort& port, Cycle& ready_at, u64& value);

  const Program& prog_;
  Memory& mem_;
  Tcdm& tcdm_;
  const SimConfig& cfg_;
  PerfCounters& perf_;
  FpSubsystem& fp_;
  dma::Engine* dma_;
  const bool trace_;
  const u32 hartid_;
  const u32 lsu_req_; // this core's LSU requester id in the shared TCDM

  Addr pc_;
  std::array<u32, isa::kNumIntRegs> x_{};
  std::array<bool, isa::kNumIntRegs> busy_x_{};
  /// Outstanding delayed writebacks. Bounded by kNumIntRegs: issue stalls on
  /// a busy rd, so at most one write per register is in flight.
  std::array<Pending, isa::kNumIntRegs> pending_{};
  u32 pending_size_ = 0;
  u32 bubbles_ = 0;
  Cycle div_busy_until_ = 0;
  HaltReason halt_ = HaltReason::kNone;
  std::string error_;
  std::string last_issue_;
};

} // namespace sch::sim
