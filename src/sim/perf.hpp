// Performance counters with stall attribution. The FPU-utilization metric
// (Fig. 3 left) is fpu_ops / cycles; the stall taxonomy feeds EXPERIMENTS.md
// and the energy model's activity factors.
#pragma once

#include "common/types.hpp"

namespace sch::sim {

struct PerfCounters {
  u64 cycles = 0;

  // Retire counts.
  u64 int_instrs = 0;   // executed on the integer core (non-offloaded)
  u64 fp_instrs = 0;    // issued by the FP subsystem (compute + fld/fsd)
  u64 offloads = 0;     // instructions pushed into the FP queue
  u64 fpu_ops = 0;      // FP compute operations entering the FPU pipeline

  // Instruction mix (for the energy model).
  u64 int_alu_ops = 0;
  u64 int_mul_ops = 0;
  u64 int_div_ops = 0;
  u64 int_loads = 0;
  u64 int_stores = 0;
  u64 branches = 0;
  u64 csr_ops = 0;
  u64 fp_mac_ops = 0;   // pipelined FP compute
  u64 fp_div_ops = 0;   // div + sqrt
  u64 fp_loads = 0;
  u64 fp_stores = 0;

  // Register-file activity (energy model).
  u64 rf_int_reads = 0;
  u64 rf_int_writes = 0;
  u64 rf_fp_reads = 0;
  u64 rf_fp_writes = 0;

  // FP issue-stall attribution (cycles where an FP instruction was available
  // but could not issue).
  u64 stall_fp_raw = 0;         // scoreboard RAW on a normal register
  u64 stall_fp_waw = 0;         // scoreboard WAW on a normal register
  u64 stall_chain_empty = 0;    // chain FIFO valid bit clear (consumer early)
  u64 stall_chain_full = 0;     // writeback backpressure (producer early)
  u64 stall_ssr_empty = 0;      // read-stream FIFO empty
  u64 stall_ssr_wfull = 0;      // write-stream FIFO full at writeback
  u64 stall_fpu_busy = 0;       // structural: div unit / frozen pipeline
  u64 stall_fp_lsu = 0;         // fld/fsd TCDM port or bank denied
  u64 fp_queue_empty = 0;       // FP issue idle with nothing queued

  // Integer-core stalls.
  u64 stall_offload_full = 0;   // FP queue full
  u64 stall_int_raw = 0;        // load-use / FP->int / mul in flight
  u64 stall_int_lsu = 0;        // TCDM port or bank denied
  u64 stall_csr_barrier = 0;    // stream-CSR write awaiting FP quiescence
  u64 stall_dma_full = 0;       // dmcpy retrying against a full DMA queue
  u64 branch_bubbles = 0;
  u64 int_div_busy = 0;         // blocking divider cycles

  [[nodiscard]] double fpu_utilization() const {
    return cycles == 0 ? 0.0 : static_cast<double>(fpu_ops) / static_cast<double>(cycles);
  }
  [[nodiscard]] u64 total_retired() const { return int_instrs + fp_instrs; }

  /// Field-wise sum (cluster aggregation). Lives next to the field list so
  /// a new counter cannot be forgotten; `cycles` is summed too — the
  /// cluster overwrites it with its own cycle count afterwards.
  PerfCounters& operator+=(const PerfCounters& o) {
    cycles += o.cycles;
    int_instrs += o.int_instrs;
    fp_instrs += o.fp_instrs;
    offloads += o.offloads;
    fpu_ops += o.fpu_ops;
    int_alu_ops += o.int_alu_ops;
    int_mul_ops += o.int_mul_ops;
    int_div_ops += o.int_div_ops;
    int_loads += o.int_loads;
    int_stores += o.int_stores;
    branches += o.branches;
    csr_ops += o.csr_ops;
    fp_mac_ops += o.fp_mac_ops;
    fp_div_ops += o.fp_div_ops;
    fp_loads += o.fp_loads;
    fp_stores += o.fp_stores;
    rf_int_reads += o.rf_int_reads;
    rf_int_writes += o.rf_int_writes;
    rf_fp_reads += o.rf_fp_reads;
    rf_fp_writes += o.rf_fp_writes;
    stall_fp_raw += o.stall_fp_raw;
    stall_fp_waw += o.stall_fp_waw;
    stall_chain_empty += o.stall_chain_empty;
    stall_chain_full += o.stall_chain_full;
    stall_ssr_empty += o.stall_ssr_empty;
    stall_ssr_wfull += o.stall_ssr_wfull;
    stall_fpu_busy += o.stall_fpu_busy;
    stall_fp_lsu += o.stall_fp_lsu;
    fp_queue_empty += o.fp_queue_empty;
    stall_offload_full += o.stall_offload_full;
    stall_int_raw += o.stall_int_raw;
    stall_int_lsu += o.stall_int_lsu;
    stall_csr_barrier += o.stall_csr_barrier;
    stall_dma_full += o.stall_dma_full;
    branch_bubbles += o.branch_bubbles;
    int_div_busy += o.int_div_busy;
    return *this;
  }

  /// Field-wise equality (defaulted, so a new counter is included
  /// automatically). The fast-path equivalence suite pins reports produced
  /// with the host-speed fast paths off vs on bit-identical through this.
  [[nodiscard]] bool operator==(const PerfCounters&) const = default;
};

} // namespace sch::sim
