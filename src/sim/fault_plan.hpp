// Fault-injection plan for robustness testing: a list of deliberate state
// corruptions the cycle-level Cluster applies at given cycles so the
// detectors (lockstep compare, golden check, watchdog, bus-error reporting)
// can be *proven* to fire. The plan rides on SimConfig; a null plan costs
// one pointer check per cycle. The functional ISS never applies faults, so
// an EngineSel::kBoth run always compares a corrupted cycle engine against
// a clean reference.
//
// Always compiled (not NDEBUG-gated): the default build type is Release and
// the fault tests in tests/test_fault.cpp must pass there too.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace sch::sim {

enum class FaultKind : u8 {
  /// XOR `bits` into hart `hart`'s architectural FP register `reg` at the
  /// start of cycle `cycle`. Detector: lockstep compare / golden check.
  kFlipFpReg,
  /// Clear the chain-unit valid bit of register `reg` on hart `hart` at
  /// cycle `cycle` (the pushed value vanishes; its consumer waits forever).
  /// Detector: cluster watchdog (deadlock).
  kDropChainEntry,
  /// Hold TCDM bank `bank` busy for `duration` cycles starting at `cycle`
  /// (every request is denied and counted as a conflict). A finite stall is
  /// timing-only -- the run must still pass; an effectively-infinite one
  /// wedges any access to that bank. Detector: watchdog (deadlock).
  kStallTcdmBank,
  /// Arm at cycle `cycle`: the next `duration` DMA beats skip their memory
  /// commit (bytes still count as moved; the data never lands). Detector:
  /// lockstep compare / golden check on the destination.
  kTruncateDmaBeat,
};

inline const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFlipFpReg: return "flip_fp_reg";
    case FaultKind::kDropChainEntry: return "drop_chain_entry";
    case FaultKind::kStallTcdmBank: return "stall_tcdm_bank";
    case FaultKind::kTruncateDmaBeat: return "truncate_dma_beat";
  }
  return "?";
}

struct Fault {
  FaultKind kind = FaultKind::kFlipFpReg;
  Cycle cycle = 0;   // cluster cycle at whose start the fault fires
  u32 hart = 0;      // kFlipFpReg / kDropChainEntry
  u8 reg = 0;        // FP register index (masked to the register count)
  u64 bits = 1;      // kFlipFpReg XOR mask
  u32 bank = 0;      // kStallTcdmBank
  u64 duration = 1;  // kStallTcdmBank: cycles held; kTruncateDmaBeat: beats
};

struct FaultPlan {
  std::vector<Fault> faults;
};

} // namespace sch::sim
