#include "sim/simulator.hpp"

#include <sstream>
#include <stdexcept>

namespace sch::sim {

Simulator::Simulator(Program program, Memory& memory, const SimConfig& config)
    : prog_(std::move(program)),
      mem_(memory),
      cfg_(config),
      tcdm_(config.tcdm) {
  const Status valid = cfg_.validate();
  if (!valid.is_ok()) throw std::invalid_argument(valid.message());
  prog_.predecode();
  fp_ = std::make_unique<FpSubsystem>(cfg_, mem_, tcdm_, perf_);
  core_ = std::make_unique<IntCore>(prog_, mem_, tcdm_, cfg_, perf_, *fp_);
  fp_->set_int_wb_sink([this](const IntWriteback& wb) {
    core_->schedule_write(wb.rd, wb.value, wb.ready_at);
  });
}

bool Simulator::fully_halted() const {
  return core_->halting() && fp_->quiescent() && core_->pending_empty();
}

void Simulator::tick() {
  ++cycle_;
  tcdm_.begin_cycle();
  fp_->begin_cycle(cycle_);
  CorePort port;

  core_->commit_pending(cycle_);
  fp_->tick(cycle_, port);
  core_->tick(cycle_, port);

  // SSR streamers fetch last: the core's LSU has bank priority within the
  // cycle; the three streamer ports rotate round-robin among themselves.
  static constexpr TcdmPortId kPorts[3] = {TcdmPortId::kSsr0, TcdmPortId::kSsr1,
                                           TcdmPortId::kSsr2};
  for (u32 k = 0; k < ssr::kNumSsrs; ++k) {
    const u32 i = (ssr_rr_ + k) % ssr::kNumSsrs;
    fp_->streamer(i).tick_fetch(cycle_, tcdm_, mem_, kPorts[i]);
  }
  ssr_rr_ = (ssr_rr_ + 1) % ssr::kNumSsrs;

  ++perf_.cycles;

  // Progress watchdog.
  const u64 retired = perf_.total_retired() + perf_.offloads;
  if (retired != last_progress_retired_) {
    last_progress_retired_ = retired;
    last_progress_cycle_ = cycle_;
  } else if (cycle_ - last_progress_cycle_ > cfg_.deadlock_cycles) {
    std::ostringstream os;
    os << "deadlock: no instruction retired for " << cfg_.deadlock_cycles
       << " cycles at cycle " << cycle_ << " (pc=0x" << std::hex << core_->pc()
       << std::dec << ", chain-empty=" << perf_.stall_chain_empty
       << ", ssr-empty=" << perf_.stall_ssr_empty
       << ", chain-full=" << perf_.stall_chain_full << ")";
    halt_ = HaltReason::kError;
    error_ = os.str();
  }

  if (fp_->has_error()) {
    halt_ = HaltReason::kError;
    error_ = fp_->error();
  } else if (core_->has_error()) {
    halt_ = HaltReason::kError;
    error_ = core_->error();
  }
}

bool Simulator::step() {
  if (halt_ != HaltReason::kNone) return false;
  if (!started_) {
    mem_.load_image(prog_.data_base, prog_.data);
    started_ = true;
  }
  tick();
  if (halt_ != HaltReason::kNone) return false;
  if (fully_halted()) {
    halt_ = core_->halt_reason();
    return false;
  }
  if (cycle_ >= cfg_.max_cycles) {
    halt_ = HaltReason::kMaxSteps;
    error_ = "cycle budget exhausted";
    return false;
  }
  return true;
}

HaltReason Simulator::run() {
  while (step()) {
  }
  return halt_;
}

ArchState Simulator::arch_state() const {
  ArchState s;
  s.pc = core_->pc();
  for (u8 r = 0; r < isa::kNumIntRegs; ++r) s.x[r] = core_->regs()[r];
  s.f = fp_->fregs();
  return s;
}

} // namespace sch::sim
