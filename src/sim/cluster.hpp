// Top-level cycle-level model: a cluster of N chaining cores sharing one
// banked TCDM and one functional Memory. Each cycle the cluster rotates the
// core service order (fair cross-core round-robin into the bank arbiter) and
// runs every core's phase sequence; within a core the LSU keeps its bank
// priority and the SSR ports keep their private rotation, exactly as in the
// original single-core model. With num_cores == 1 the cluster is
// cycle-for-cycle identical to the pre-cluster Simulator, which is why
// `sim::Simulator` is now an alias of this class (see sim/simulator.hpp).
//
// Cores communicate only through the shared memory (e.g. the sense-reversing
// barrier in kernels/barrier.hpp); the cluster is fully deterministic for a
// fixed configuration and program set.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "dma/dma.hpp"
#include "iss/arch_state.hpp"
#include "mem/memory.hpp"
#include "mem/tcdm.hpp"
#include "sim/core.hpp"
#include "sim/perf.hpp"
#include "sim/sim_config.hpp"

namespace sch::sim {

class Cluster {
 public:
  /// One program, replicated to every core (cores partition work by the
  /// mhartid/mnumharts CSRs). `memory` must outlive the cluster. Throws
  /// std::invalid_argument when `config.validate()` fails.
  Cluster(Program program, Memory& memory, const SimConfig& config = {});

  /// One program per core (`programs.size()` must equal config.num_cores;
  /// a single entry replicates). All programs share one address space; data
  /// images are loaded in hartid order before the first cycle.
  Cluster(std::vector<Program> programs, Memory& memory,
          const SimConfig& config = {});

  /// Run to halt. Loads the program data image(s) first.
  HaltReason run();

  /// Single-step one cycle (tests/traces). Returns false once halted.
  bool step();

  [[nodiscard]] Cycle cycles() const { return cycle_; }
  [[nodiscard]] u32 num_cores() const { return static_cast<u32>(cores_.size()); }
  [[nodiscard]] const Tcdm& tcdm() const { return tcdm_; }
  [[nodiscard]] const dma::Engine& dma() const { return dma_; }
  [[nodiscard]] HaltReason halt_reason() const { return halt_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  // --- structured halt information (api::Engine failure classification) ---
  /// True when the progress watchdog fired (error() describes the wedge).
  [[nodiscard]] bool deadlocked() const { return deadlocked_; }
  /// Faulting hart of an abnormal halt (-1 when unknown / not hart-specific).
  [[nodiscard]] i32 halt_hart() const { return halt_hart_; }
  /// Faulting pc of an abnormal halt (-1 when unknown).
  [[nodiscard]] i64 halt_pc() const { return halt_pc_; }

  /// Aggregate counters snapshot: every field summed across cores except
  /// `cycles`, which is the cluster cycle count. With one core this is
  /// exactly that core's counter block (see core_at(h).perf() for live
  /// per-core references).
  [[nodiscard]] PerfCounters perf() const;

  [[nodiscard]] const Core& core_at(u32 hartid) const { return *cores_[hartid]; }

  // --- single-core-compatible accessors (hart 0) ---
  [[nodiscard]] const IntCore& core() const { return cores_[0]->int_core(); }
  [[nodiscard]] const FpSubsystem& fp() const { return cores_[0]->fp(); }

  /// Architectural state snapshot of one hart (for ISS cross-validation).
  [[nodiscard]] ArchState arch_state(u32 hartid = 0) const {
    return cores_[hartid]->arch_state();
  }

 private:
  void tick();
  /// Apply every fault of cfg_.faults due this cycle (see sim/fault_plan.hpp).
  void apply_faults();
  [[nodiscard]] bool fully_halted() const;

  SimConfig cfg_;
  Memory& mem_;
  Tcdm tcdm_;
  dma::Engine dma_;
  std::vector<std::unique_ptr<Core>> cores_;

  Cycle cycle_ = 0;
  u64 last_progress_retired_ = 0;
  Cycle last_progress_cycle_ = 0;
  HaltReason halt_ = HaltReason::kNone;
  std::string error_;
  bool started_ = false;
  bool deadlocked_ = false;
  i32 halt_hart_ = -1;
  i64 halt_pc_ = -1;
  /// Host time of the first step (wall-clock budget reference; only read
  /// when cfg_.max_wall_ms != 0, so budget-free runs stay deterministic).
  std::chrono::steady_clock::time_point wall_start_;
};

} // namespace sch::sim
