#include "isa/opcode.hpp"

#include <array>

namespace sch::isa {
namespace {

using M = Mnemonic;
using F = Format;
using R = RegClass;
using E = ExecClass;

constexpr usize kCount = static_cast<usize>(M::kCount);

constexpr std::array<MnemonicInfo, kCount> build_table() {
  std::array<MnemonicInfo, kCount> t{};
  auto set = [&t](M mn, MnemonicInfo inf) { t[static_cast<usize>(mn)] = inf; };

  set(M::kInvalid, {"<invalid>", F::kNone, R::kNone, R::kNone, R::kNone, R::kNone, E::kSystem, false, 0, false});

  // RV32I -------------------------------------------------------------------
  set(M::kLui,   {"lui",   F::kU, R::kInt, R::kNone, R::kNone, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kAuipc, {"auipc", F::kU, R::kInt, R::kNone, R::kNone, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kJal,   {"jal",   F::kJ, R::kInt, R::kNone, R::kNone, R::kNone, E::kJump,   false, 0, false});
  set(M::kJalr,  {"jalr",  F::kI, R::kInt, R::kInt,  R::kNone, R::kNone, E::kJump,   false, 0, false});
  set(M::kBeq,   {"beq",   F::kB, R::kNone, R::kInt, R::kInt, R::kNone, E::kBranch, false, 0, false});
  set(M::kBne,   {"bne",   F::kB, R::kNone, R::kInt, R::kInt, R::kNone, E::kBranch, false, 0, false});
  set(M::kBlt,   {"blt",   F::kB, R::kNone, R::kInt, R::kInt, R::kNone, E::kBranch, false, 0, false});
  set(M::kBge,   {"bge",   F::kB, R::kNone, R::kInt, R::kInt, R::kNone, E::kBranch, false, 0, false});
  set(M::kBltu,  {"bltu",  F::kB, R::kNone, R::kInt, R::kInt, R::kNone, E::kBranch, false, 0, false});
  set(M::kBgeu,  {"bgeu",  F::kB, R::kNone, R::kInt, R::kInt, R::kNone, E::kBranch, false, 0, false});
  set(M::kLb,    {"lb",    F::kI, R::kInt, R::kInt, R::kNone, R::kNone, E::kLoad,  false, 1, false});
  set(M::kLh,    {"lh",    F::kI, R::kInt, R::kInt, R::kNone, R::kNone, E::kLoad,  false, 2, false});
  set(M::kLw,    {"lw",    F::kI, R::kInt, R::kInt, R::kNone, R::kNone, E::kLoad,  false, 4, false});
  set(M::kLbu,   {"lbu",   F::kI, R::kInt, R::kInt, R::kNone, R::kNone, E::kLoad,  false, 1, false});
  set(M::kLhu,   {"lhu",   F::kI, R::kInt, R::kInt, R::kNone, R::kNone, E::kLoad,  false, 2, false});
  set(M::kSb,    {"sb",    F::kS, R::kNone, R::kInt, R::kInt, R::kNone, E::kStore, false, 1, false});
  set(M::kSh,    {"sh",    F::kS, R::kNone, R::kInt, R::kInt, R::kNone, E::kStore, false, 2, false});
  set(M::kSw,    {"sw",    F::kS, R::kNone, R::kInt, R::kInt, R::kNone, E::kStore, false, 4, false});
  set(M::kAddi,  {"addi",  F::kI, R::kInt, R::kInt, R::kNone, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kSlti,  {"slti",  F::kI, R::kInt, R::kInt, R::kNone, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kSltiu, {"sltiu", F::kI, R::kInt, R::kInt, R::kNone, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kXori,  {"xori",  F::kI, R::kInt, R::kInt, R::kNone, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kOri,   {"ori",   F::kI, R::kInt, R::kInt, R::kNone, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kAndi,  {"andi",  F::kI, R::kInt, R::kInt, R::kNone, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kSlli,  {"slli",  F::kI, R::kInt, R::kInt, R::kNone, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kSrli,  {"srli",  F::kI, R::kInt, R::kInt, R::kNone, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kSrai,  {"srai",  F::kI, R::kInt, R::kInt, R::kNone, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kAdd,   {"add",   F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kSub,   {"sub",   F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kSll,   {"sll",   F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kSlt,   {"slt",   F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kSltu,  {"sltu",  F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kXor,   {"xor",   F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kSrl,   {"srl",   F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kSra,   {"sra",   F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kOr,    {"or",    F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kAnd,   {"and",   F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kIntAlu, false, 0, false});
  set(M::kFence, {"fence", F::kNone, R::kNone, R::kNone, R::kNone, R::kNone, E::kSystem, false, 0, false});
  set(M::kEcall, {"ecall", F::kNone, R::kNone, R::kNone, R::kNone, R::kNone, E::kSystem, false, 0, false});
  set(M::kEbreak,{"ebreak",F::kNone, R::kNone, R::kNone, R::kNone, R::kNone, E::kSystem, false, 0, false});

  // RV32M -------------------------------------------------------------------
  set(M::kMul,    {"mul",    F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kIntMul, false, 0, false});
  set(M::kMulh,   {"mulh",   F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kIntMul, false, 0, false});
  set(M::kMulhsu, {"mulhsu", F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kIntMul, false, 0, false});
  set(M::kMulhu,  {"mulhu",  F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kIntMul, false, 0, false});
  set(M::kDiv,    {"div",    F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kIntDiv, false, 0, false});
  set(M::kDivu,   {"divu",   F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kIntDiv, false, 0, false});
  set(M::kRem,    {"rem",    F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kIntDiv, false, 0, false});
  set(M::kRemu,   {"remu",   F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kIntDiv, false, 0, false});

  // Zicsr -------------------------------------------------------------------
  set(M::kCsrrw,  {"csrrw",  F::kCsr,  R::kInt, R::kInt,  R::kNone, R::kNone, E::kCsr, false, 0, false});
  set(M::kCsrrs,  {"csrrs",  F::kCsr,  R::kInt, R::kInt,  R::kNone, R::kNone, E::kCsr, false, 0, false});
  set(M::kCsrrc,  {"csrrc",  F::kCsr,  R::kInt, R::kInt,  R::kNone, R::kNone, E::kCsr, false, 0, false});
  set(M::kCsrrwi, {"csrrwi", F::kCsrI, R::kInt, R::kNone, R::kNone, R::kNone, E::kCsr, false, 0, false});
  set(M::kCsrrsi, {"csrrsi", F::kCsrI, R::kInt, R::kNone, R::kNone, R::kNone, E::kCsr, false, 0, false});
  set(M::kCsrrci, {"csrrci", F::kCsrI, R::kInt, R::kNone, R::kNone, R::kNone, E::kCsr, false, 0, false});

  // RV32F -------------------------------------------------------------------
  set(M::kFlw,    {"flw",    F::kI, R::kFp, R::kInt, R::kNone, R::kNone, E::kFpLoad,  true, 4, true});
  set(M::kFsw,    {"fsw",    F::kS, R::kNone, R::kInt, R::kFp, R::kNone, E::kFpStore, true, 4, true});
  set(M::kFmaddS, {"fmadd.s", F::kR4, R::kFp, R::kFp, R::kFp, R::kFp,   E::kFpMac, true, 0, true});
  set(M::kFmsubS, {"fmsub.s", F::kR4, R::kFp, R::kFp, R::kFp, R::kFp,   E::kFpMac, true, 0, true});
  set(M::kFnmsubS,{"fnmsub.s",F::kR4, R::kFp, R::kFp, R::kFp, R::kFp,   E::kFpMac, true, 0, true});
  set(M::kFnmaddS,{"fnmadd.s",F::kR4, R::kFp, R::kFp, R::kFp, R::kFp,   E::kFpMac, true, 0, true});
  set(M::kFaddS,  {"fadd.s",  F::kR,  R::kFp, R::kFp, R::kFp, R::kNone, E::kFpMac, true, 0, true});
  set(M::kFsubS,  {"fsub.s",  F::kR,  R::kFp, R::kFp, R::kFp, R::kNone, E::kFpMac, true, 0, true});
  set(M::kFmulS,  {"fmul.s",  F::kR,  R::kFp, R::kFp, R::kFp, R::kNone, E::kFpMac, true, 0, true});
  set(M::kFdivS,  {"fdiv.s",  F::kR,  R::kFp, R::kFp, R::kFp, R::kNone, E::kFpDiv, true, 0, true});
  set(M::kFsqrtS, {"fsqrt.s", F::kR,  R::kFp, R::kFp, R::kNone, R::kNone, E::kFpSqrt, true, 0, true});
  set(M::kFsgnjS, {"fsgnj.s", F::kR,  R::kFp, R::kFp, R::kFp, R::kNone, E::kFpMac, true, 0, true});
  set(M::kFsgnjnS,{"fsgnjn.s",F::kR,  R::kFp, R::kFp, R::kFp, R::kNone, E::kFpMac, true, 0, true});
  set(M::kFsgnjxS,{"fsgnjx.s",F::kR,  R::kFp, R::kFp, R::kFp, R::kNone, E::kFpMac, true, 0, true});
  set(M::kFminS,  {"fmin.s",  F::kR,  R::kFp, R::kFp, R::kFp, R::kNone, E::kFpMac, true, 0, true});
  set(M::kFmaxS,  {"fmax.s",  F::kR,  R::kFp, R::kFp, R::kFp, R::kNone, E::kFpMac, true, 0, true});
  set(M::kFcvtWS, {"fcvt.w.s", F::kR, R::kInt, R::kFp, R::kNone, R::kNone, E::kFpCvtF2I, true, 0, true});
  set(M::kFcvtWuS,{"fcvt.wu.s",F::kR, R::kInt, R::kFp, R::kNone, R::kNone, E::kFpCvtF2I, true, 0, true});
  set(M::kFmvXW,  {"fmv.x.w", F::kR,  R::kInt, R::kFp, R::kNone, R::kNone, E::kFpCvtF2I, true, 0, true});
  set(M::kFeqS,   {"feq.s",   F::kR,  R::kInt, R::kFp, R::kFp, R::kNone, E::kFpCmp, true, 0, true});
  set(M::kFltS,   {"flt.s",   F::kR,  R::kInt, R::kFp, R::kFp, R::kNone, E::kFpCmp, true, 0, true});
  set(M::kFleS,   {"fle.s",   F::kR,  R::kInt, R::kFp, R::kFp, R::kNone, E::kFpCmp, true, 0, true});
  set(M::kFclassS,{"fclass.s",F::kR,  R::kInt, R::kFp, R::kNone, R::kNone, E::kFpCmp, true, 0, true});
  set(M::kFcvtSW, {"fcvt.s.w", F::kR, R::kFp, R::kInt, R::kNone, R::kNone, E::kFpCvtI2F, true, 0, true});
  set(M::kFcvtSWu,{"fcvt.s.wu",F::kR, R::kFp, R::kInt, R::kNone, R::kNone, E::kFpCvtI2F, true, 0, true});
  set(M::kFmvWX,  {"fmv.w.x",  F::kR, R::kFp, R::kInt, R::kNone, R::kNone, E::kFpCvtI2F, true, 0, true});

  // RV32D -------------------------------------------------------------------
  set(M::kFld,    {"fld",    F::kI, R::kFp, R::kInt, R::kNone, R::kNone, E::kFpLoad,  true, 8, false});
  set(M::kFsd,    {"fsd",    F::kS, R::kNone, R::kInt, R::kFp, R::kNone, E::kFpStore, true, 8, false});
  set(M::kFmaddD, {"fmadd.d", F::kR4, R::kFp, R::kFp, R::kFp, R::kFp,   E::kFpMac, true, 0, false});
  set(M::kFmsubD, {"fmsub.d", F::kR4, R::kFp, R::kFp, R::kFp, R::kFp,   E::kFpMac, true, 0, false});
  set(M::kFnmsubD,{"fnmsub.d",F::kR4, R::kFp, R::kFp, R::kFp, R::kFp,   E::kFpMac, true, 0, false});
  set(M::kFnmaddD,{"fnmadd.d",F::kR4, R::kFp, R::kFp, R::kFp, R::kFp,   E::kFpMac, true, 0, false});
  set(M::kFaddD,  {"fadd.d",  F::kR,  R::kFp, R::kFp, R::kFp, R::kNone, E::kFpMac, true, 0, false});
  set(M::kFsubD,  {"fsub.d",  F::kR,  R::kFp, R::kFp, R::kFp, R::kNone, E::kFpMac, true, 0, false});
  set(M::kFmulD,  {"fmul.d",  F::kR,  R::kFp, R::kFp, R::kFp, R::kNone, E::kFpMac, true, 0, false});
  set(M::kFdivD,  {"fdiv.d",  F::kR,  R::kFp, R::kFp, R::kFp, R::kNone, E::kFpDiv, true, 0, false});
  set(M::kFsqrtD, {"fsqrt.d", F::kR,  R::kFp, R::kFp, R::kNone, R::kNone, E::kFpSqrt, true, 0, false});
  set(M::kFsgnjD, {"fsgnj.d", F::kR,  R::kFp, R::kFp, R::kFp, R::kNone, E::kFpMac, true, 0, false});
  set(M::kFsgnjnD,{"fsgnjn.d",F::kR,  R::kFp, R::kFp, R::kFp, R::kNone, E::kFpMac, true, 0, false});
  set(M::kFsgnjxD,{"fsgnjx.d",F::kR,  R::kFp, R::kFp, R::kFp, R::kNone, E::kFpMac, true, 0, false});
  set(M::kFminD,  {"fmin.d",  F::kR,  R::kFp, R::kFp, R::kFp, R::kNone, E::kFpMac, true, 0, false});
  set(M::kFmaxD,  {"fmax.d",  F::kR,  R::kFp, R::kFp, R::kFp, R::kNone, E::kFpMac, true, 0, false});
  set(M::kFcvtSD, {"fcvt.s.d", F::kR, R::kFp, R::kFp, R::kNone, R::kNone, E::kFpMac, true, 0, true});
  set(M::kFcvtDS, {"fcvt.d.s", F::kR, R::kFp, R::kFp, R::kNone, R::kNone, E::kFpMac, true, 0, false});
  set(M::kFeqD,   {"feq.d",   F::kR,  R::kInt, R::kFp, R::kFp, R::kNone, E::kFpCmp, true, 0, false});
  set(M::kFltD,   {"flt.d",   F::kR,  R::kInt, R::kFp, R::kFp, R::kNone, E::kFpCmp, true, 0, false});
  set(M::kFleD,   {"fle.d",   F::kR,  R::kInt, R::kFp, R::kFp, R::kNone, E::kFpCmp, true, 0, false});
  set(M::kFclassD,{"fclass.d",F::kR,  R::kInt, R::kFp, R::kNone, R::kNone, E::kFpCmp, true, 0, false});
  set(M::kFcvtWD, {"fcvt.w.d", F::kR, R::kInt, R::kFp, R::kNone, R::kNone, E::kFpCvtF2I, true, 0, false});
  set(M::kFcvtWuD,{"fcvt.wu.d",F::kR, R::kInt, R::kFp, R::kNone, R::kNone, E::kFpCvtF2I, true, 0, false});
  set(M::kFcvtDW, {"fcvt.d.w", F::kR, R::kFp, R::kInt, R::kNone, R::kNone, E::kFpCvtI2F, true, 0, false});
  set(M::kFcvtDWu,{"fcvt.d.wu",F::kR, R::kFp, R::kInt, R::kNone, R::kNone, E::kFpCvtI2F, true, 0, false});

  // Custom extensions -------------------------------------------------------
  // frep.o rs1, imm: repeat the next `imm` FP instructions (rs1)+1 times.
  set(M::kFrepO, {"frep.o", F::kI, R::kNone, R::kInt, R::kNone, R::kNone, E::kFrep, true, 0, false});
  set(M::kFrepI, {"frep.i", F::kI, R::kNone, R::kInt, R::kNone, R::kNone, E::kFrep, true, 0, false});
  // scfgw rs1, imm: write SSR config word `imm` with the value of rs1.
  set(M::kScfgw, {"scfgw", F::kI, R::kNone, R::kInt, R::kNone, R::kNone, E::kScfg, false, 0, false});
  // scfgr rd, imm: read SSR config word `imm` into rd.
  set(M::kScfgr, {"scfgr", F::kI, R::kInt, R::kNone, R::kNone, R::kNone, E::kScfg, false, 0, false});
  // Xdma: cluster DMA engine (custom-1 space next to Xssr; see docs/ISA.md).
  // dmsrc rs1 / dmdst rs1: latch the source / destination base address.
  set(M::kDmSrc, {"dmsrc", F::kI, R::kNone, R::kInt, R::kNone, R::kNone, E::kDma, false, 0, false});
  set(M::kDmDst, {"dmdst", F::kI, R::kNone, R::kInt, R::kNone, R::kNone, E::kDma, false, 0, false});
  // dmstr rs1, rs2: latch 2-D row strides (rs1 = source, rs2 = destination).
  set(M::kDmStr, {"dmstr", F::kR, R::kNone, R::kInt, R::kInt, R::kNone, E::kDma, false, 0, false});
  // dmcpy rd, rs1: start a 1-D copy of rs1 bytes; rd <- transfer id.
  set(M::kDmCpy, {"dmcpy", F::kI, R::kInt, R::kInt, R::kNone, R::kNone, E::kDma, false, 0, false});
  // dmcpy2d rd, rs1, rs2: start a 2-D copy, rs2 rows of rs1 bytes.
  set(M::kDmCpy2d, {"dmcpy2d", F::kR, R::kInt, R::kInt, R::kInt, R::kNone, E::kDma, false, 0, false});
  // dmstat rd, imm: read DMA status word `imm` (0 completed, 1 outstanding).
  set(M::kDmStat, {"dmstat", F::kI, R::kInt, R::kNone, R::kNone, R::kNone, E::kDma, false, 0, false});

  return t;
}

const std::array<MnemonicInfo, kCount> kTable = build_table();

} // namespace

const MnemonicInfo& info(Mnemonic mn) {
  const auto idx = static_cast<usize>(mn);
  return kTable[idx < kCount ? idx : 0];
}

std::string_view name(Mnemonic mn) { return info(mn).name; }

} // namespace sch::isa
