// Decoded-instruction value type shared by the ISS, timing model, assembler
// and disassembler.
#pragma once

#include "common/types.hpp"
#include "isa/opcode.hpp"

namespace sch::isa {

/// A fully decoded instruction. `imm` holds the sign-extended immediate;
/// for CSR instructions it holds the CSR address (zero-extended) and `rs1`
/// doubles as the 5-bit zimm for the immediate forms. For shifts it holds
/// the shamt. For frep it holds the body-length field.
struct Instr {
  Mnemonic mn = Mnemonic::kInvalid;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  u8 rs3 = 0;
  i32 imm = 0;
  u8 rm = 0;      // FP rounding-mode field (funct3) where applicable
  u32 raw = 0;    // original encoding word (0 if synthesized)

  [[nodiscard]] const MnemonicInfo& meta() const { return info(mn); }
  [[nodiscard]] bool valid() const { return mn != Mnemonic::kInvalid; }

  bool operator==(const Instr& other) const {
    return mn == other.mn && rd == other.rd && rs1 == other.rs1 &&
           rs2 == other.rs2 && rs3 == other.rs3 && imm == other.imm &&
           rm == other.rm;
  }
};

} // namespace sch::isa
