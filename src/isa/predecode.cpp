#include "isa/predecode.hpp"

namespace sch::isa {
namespace {

ExecHandler classify(const Instr& in, const MnemonicInfo& mi) {
  switch (mi.exec) {
    case ExecClass::kIntAlu:
      if (in.mn == Mnemonic::kLui) return ExecHandler::kLui;
      if (in.mn == Mnemonic::kAuipc) return ExecHandler::kAuipc;
      return mi.fmt == Format::kI ? ExecHandler::kIntAluImm
                                  : ExecHandler::kIntAluReg;
    case ExecClass::kIntMul: return ExecHandler::kIntMul;
    case ExecClass::kIntDiv: return ExecHandler::kIntDiv;
    case ExecClass::kJump:
      return in.mn == Mnemonic::kJal ? ExecHandler::kJal : ExecHandler::kJalr;
    case ExecClass::kBranch: return ExecHandler::kBranch;
    case ExecClass::kLoad:
      if (in.mn == Mnemonic::kLb) return ExecHandler::kLoadSext8;
      if (in.mn == Mnemonic::kLh) return ExecHandler::kLoadSext16;
      return ExecHandler::kLoad;
    case ExecClass::kStore: return ExecHandler::kStore;
    case ExecClass::kCsr: return ExecHandler::kCsr;
    case ExecClass::kSystem:
      if (in.mn == Mnemonic::kEcall) return ExecHandler::kEcall;
      if (in.mn == Mnemonic::kEbreak) return ExecHandler::kEbreak;
      return ExecHandler::kFence;
    case ExecClass::kFpLoad: return ExecHandler::kFpLoad;
    case ExecClass::kFpStore: return ExecHandler::kFpStore;
    case ExecClass::kFpMac: return ExecHandler::kFpMac;
    case ExecClass::kFpDiv: return ExecHandler::kFpDiv;
    case ExecClass::kFpSqrt: return ExecHandler::kFpSqrt;
    case ExecClass::kFpCmp: return ExecHandler::kFpCmp;
    case ExecClass::kFpCvtF2I: return ExecHandler::kFpCvtF2I;
    case ExecClass::kFpCvtI2F: return ExecHandler::kFpCvtI2F;
    case ExecClass::kFrep: return ExecHandler::kFrep;
    case ExecClass::kScfg:
      return in.mn == Mnemonic::kScfgw ? ExecHandler::kScfgW
                                       : ExecHandler::kScfgR;
    case ExecClass::kDma:
      switch (in.mn) {
        case Mnemonic::kDmSrc: return ExecHandler::kDmaSrc;
        case Mnemonic::kDmDst: return ExecHandler::kDmaDst;
        case Mnemonic::kDmStr: return ExecHandler::kDmaStr;
        case Mnemonic::kDmCpy: return ExecHandler::kDmaCpy;
        case Mnemonic::kDmCpy2d: return ExecHandler::kDmaCpy2d;
        default: return ExecHandler::kDmaStat;
      }
  }
  return ExecHandler::kInvalid;
}

i32 precompute_aux(const Instr& in, ExecHandler h) {
  switch (h) {
    case ExecHandler::kLui:
    case ExecHandler::kAuipc:
      return static_cast<i32>(static_cast<u32>(in.imm) << 12);
    default:
      return in.imm;
  }
}

} // namespace

PredecodedInstr predecode(const Instr& in) {
  PredecodedInstr p;
  p.mi = &info(in.mn);
  if (!in.valid()) return p; // kInvalid handler, sentinel metadata
  p.handler = classify(in, *p.mi);
  p.aux = precompute_aux(in, p.handler);
  p.fp_domain = p.mi->fp_domain;
  p.mem_bytes = p.mi->mem_bytes;
  return p;
}

void link_superblocks(std::vector<PredecodedInstr>& pre) {
  const usize n = pre.size();
  constexpr u32 kNoIndex = 0xFFFF'FFFF;

  // Backward pass: straight-line run lengths.
  u32 run = 0;
  for (usize i = n; i-- > 0;) {
    run = exec_handler_linear(pre[i].handler) ? run + 1 : 0;
    pre[i].run_len = run;
  }

  for (usize i = 0; i < n; ++i) {
    PredecodedInstr& p = pre[i];
    switch (p.handler) {
      case ExecHandler::kJal:
      case ExecHandler::kBranch: {
        // aux is the pc-relative byte delta of the taken path.
        const i64 t = static_cast<i64>(i) * 4 + p.aux;
        p.target_idx = (t >= 0 && t < static_cast<i64>(n) * 4 && (t & 3) == 0)
                           ? static_cast<u32>(t >> 2)
                           : kNoIndex;
        break;
      }
      case ExecHandler::kFrep: {
        // Static body validation, once per site: non-empty, fully inside
        // the text segment, FP-domain only, no nested frep.
        const u32 body = static_cast<u32>(p.aux);
        bool ok = body != 0 && i + body < n;
        for (u32 b = 1; ok && b <= body; ++b) {
          ok = pre[i + b].fp_domain &&
               pre[i + b].handler != ExecHandler::kFrep;
        }
        if (ok) p.flags |= preflag::kFrepBodyOk;
        break;
      }
      default:
        break;
    }
  }
}

} // namespace sch::isa
