// Disassembler: Instr -> canonical assembly text (the same spelling the
// assembler accepts, enabling text round-trip tests).
#pragma once

#include <string>

#include "isa/instr.hpp"

namespace sch::isa {

/// Render `instr` as assembly text, e.g. "fmadd.d ft3, ft0, ft1, ft3".
/// Branch/jump targets are shown as relative byte offsets.
std::string disassemble(const Instr& instr);

/// Decode and render a raw instruction word.
std::string disassemble(u32 word);

} // namespace sch::isa
