// Instruction encoding: Instr -> 32-bit word. The inverse of decode();
// round-trip identity is enforced by tests over the whole mnemonic space.
#pragma once

#include "common/types.hpp"
#include "isa/instr.hpp"

namespace sch::isa {

/// Encode a decoded instruction into its 32-bit representation.
/// Asserts on malformed operands (immediates out of range are the
/// assembler's responsibility to reject first).
u32 encode(const Instr& instr);

// Convenience builders used by the ProgramBuilder and tests. Immediates are
// the architectural values (byte offsets for branches, not pre-shifted).
Instr make_r(Mnemonic mn, u8 rd, u8 rs1, u8 rs2, u8 rm = 0);
Instr make_r4(Mnemonic mn, u8 rd, u8 rs1, u8 rs2, u8 rs3, u8 rm = 0);
Instr make_i(Mnemonic mn, u8 rd, u8 rs1, i32 imm);
Instr make_s(Mnemonic mn, u8 rs1, u8 rs2, i32 imm);
Instr make_b(Mnemonic mn, u8 rs1, u8 rs2, i32 offset);
Instr make_u(Mnemonic mn, u8 rd, i32 imm20);
Instr make_j(Mnemonic mn, u8 rd, i32 offset);
Instr make_csr(Mnemonic mn, u8 rd, u8 rs1_or_zimm, u32 csr_addr);

} // namespace sch::isa
