// Instruction decoding: 32-bit word -> Instr.
#pragma once

#include "common/types.hpp"
#include "isa/instr.hpp"

namespace sch::isa {

/// Decode a 32-bit instruction word. Unknown encodings yield
/// Instr{.mn = Mnemonic::kInvalid} with `raw` preserved.
Instr decode(u32 word);

} // namespace sch::isa
