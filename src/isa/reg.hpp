// Architectural register names (numeric + ABI) for the modeled RV32 core.
#pragma once

#include <array>
#include <optional>
#include <string_view>

#include "common/types.hpp"

namespace sch::isa {

inline constexpr unsigned kNumIntRegs = 32;
inline constexpr unsigned kNumFpRegs = 32;

/// Integer ABI register indices.
enum IntReg : u8 {
  kZero = 0, kRa = 1, kSp = 2, kGp = 3, kTp = 4,
  kT0 = 5, kT1 = 6, kT2 = 7,
  kS0 = 8, kS1 = 9,
  kA0 = 10, kA1 = 11, kA2 = 12, kA3 = 13, kA4 = 14, kA5 = 15, kA6 = 16, kA7 = 17,
  kS2 = 18, kS3 = 19, kS4 = 20, kS5 = 21, kS6 = 22, kS7 = 23, kS8 = 24, kS9 = 25,
  kS10 = 26, kS11 = 27,
  kT3 = 28, kT4 = 29, kT5 = 30, kT6 = 31,
};

/// FP ABI register indices. The three SSR-mapped registers are ft0..ft2
/// (f0..f2); the paper's chained accumulator example uses ft3 (f3).
enum FpReg : u8 {
  kFt0 = 0, kFt1 = 1, kFt2 = 2, kFt3 = 3, kFt4 = 4, kFt5 = 5, kFt6 = 6, kFt7 = 7,
  kFs0 = 8, kFs1 = 9,
  kFa0 = 10, kFa1 = 11, kFa2 = 12, kFa3 = 13, kFa4 = 14, kFa5 = 15, kFa6 = 16,
  kFa7 = 17,
  kFs2 = 18, kFs3 = 19, kFs4 = 20, kFs5 = 21, kFs6 = 22, kFs7 = 23, kFs8 = 24,
  kFs9 = 25, kFs10 = 26, kFs11 = 27,
  kFt8 = 28, kFt9 = 29, kFt10 = 30, kFt11 = 31,
};

/// ABI name of integer register `r` ("zero", "ra", ..., "t6").
std::string_view int_reg_name(u8 r);
/// ABI name of FP register `r` ("ft0", ..., "ft11").
std::string_view fp_reg_name(u8 r);

/// Parse an integer register name: numeric ("x7") or ABI ("t2").
std::optional<u8> parse_int_reg(std::string_view name);
/// Parse an FP register name: numeric ("f3") or ABI ("ft3").
std::optional<u8> parse_fp_reg(std::string_view name);

} // namespace sch::isa
