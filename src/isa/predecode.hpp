// Predecoded execution records. Decoding resolves each instruction's static
// properties once at program-load time -- metadata pointer, a pre-classified
// execution handler id (mnemonic specials like lui/jal/lb folded in), and
// the precomputed immediate/target the handler needs -- so the per-step hot
// paths of the ISS and the cycle-level core dispatch through a handler table
// instead of re-deriving everything from the mnemonic on every execution.
#pragma once

#include "isa/instr.hpp"
#include "isa/opcode.hpp"

namespace sch::isa {

/// Hot-path dispatch classes. Unlike ExecClass, mnemonic special cases that
/// the execution engines would otherwise re-test per step (lui vs auipc,
/// jal vs jalr, I- vs R-format ALU, load sign-extension width, scfgw vs
/// scfgr, ecall/ebreak/fence) are distinct handlers.
enum class ExecHandler : u8 {
  kInvalid = 0,
  kLui,
  kAuipc,
  kIntAluImm,   // I-format ALU (addi/slti/../shift-immediates)
  kIntAluReg,   // R-format ALU
  kIntMul,
  kIntDiv,
  kJal,
  kJalr,
  kBranch,
  kLoad,        // lw/lbu/lhu (no sign extension)
  kLoadSext8,   // lb
  kLoadSext16,  // lh
  kStore,
  kCsr,
  kEcall,
  kEbreak,
  kFence,
  kFpLoad,
  kFpStore,
  kFpMac,
  kFpDiv,
  kFpSqrt,
  kFpCmp,
  kFpCvtF2I,
  kFpCvtI2F,
  kFrep,
  kScfgW,
  kScfgR,
  kDmaSrc,
  kDmaDst,
  kDmaStr,
  kDmaCpy,
  kDmaCpy2d,
  kDmaStat,
  kCount,
};

/// Per-instruction record resolved once at load.
struct PredecodedInstr {
  /// Cached metadata (never null; kInvalid's sentinel entry for bad words).
  const MnemonicInfo* mi = nullptr;
  ExecHandler handler = ExecHandler::kInvalid;
  /// Handler-specific precomputed immediate: the full upper-immediate value
  /// for lui/auipc (imm << 12), the PC-relative delta for branches/jal, the
  /// CSR address for CSR ops, otherwise the sign-extended immediate.
  i32 aux = 0;
  bool fp_domain = false;
  u8 mem_bytes = 0;
};

/// Resolve the execution record for one decoded instruction.
[[nodiscard]] PredecodedInstr predecode(const Instr& in);

} // namespace sch::isa
