// Predecoded execution records. Decoding resolves each instruction's static
// properties once at program-load time -- metadata pointer, a pre-classified
// execution handler id (mnemonic specials like lui/jal/lb folded in), and
// the precomputed immediate/target the handler needs -- so the per-step hot
// paths of the ISS and the cycle-level core dispatch through a handler table
// instead of re-deriving everything from the mnemonic on every execution.
#pragma once

#include <vector>

#include "isa/instr.hpp"
#include "isa/opcode.hpp"

namespace sch::isa {

/// Hot-path dispatch classes. Unlike ExecClass, mnemonic special cases that
/// the execution engines would otherwise re-test per step (lui vs auipc,
/// jal vs jalr, I- vs R-format ALU, load sign-extension width, scfgw vs
/// scfgr, ecall/ebreak/fence) are distinct handlers.
enum class ExecHandler : u8 {
  kInvalid = 0,
  kLui,
  kAuipc,
  kIntAluImm,   // I-format ALU (addi/slti/../shift-immediates)
  kIntAluReg,   // R-format ALU
  kIntMul,
  kIntDiv,
  kJal,
  kJalr,
  kBranch,
  kLoad,        // lw/lbu/lhu (no sign extension)
  kLoadSext8,   // lb
  kLoadSext16,  // lh
  kStore,
  kCsr,
  kEcall,
  kEbreak,
  kFence,
  kFpLoad,
  kFpStore,
  kFpMac,
  kFpDiv,
  kFpSqrt,
  kFpCmp,
  kFpCvtF2I,
  kFpCvtI2F,
  kFrep,
  kScfgW,
  kScfgR,
  kDmaSrc,
  kDmaDst,
  kDmaStr,
  kDmaCpy,
  kDmaCpy2d,
  kDmaStat,
  kCount,
};

/// True when `h` can never transfer control or halt the machine cleanly:
/// executing it advances the pc by exactly 4 (it may still fault, which the
/// engines detect through their halt flag). The superblock pass strings
/// runs of linear instructions together so the hot loops execute them
/// without per-instruction re-validation.
[[nodiscard]] constexpr bool exec_handler_linear(ExecHandler h) {
  switch (h) {
    case ExecHandler::kInvalid:
    case ExecHandler::kJal:
    case ExecHandler::kJalr:
    case ExecHandler::kBranch:
    case ExecHandler::kFrep:
    case ExecHandler::kEcall:
    case ExecHandler::kEbreak:
      return false;
    default:
      return true;
  }
}

/// PredecodedInstr::flags bits, resolved by the whole-program superblock
/// pass (link_superblocks); the per-instruction predecode() cannot see
/// neighbors and leaves them clear.
namespace preflag {
/// frep marker whose body was statically validated (non-empty, inside the
/// text segment, FP-domain only, no nesting). A clear bit on a kFrep record
/// means executing it must fail; the engines re-walk the body then to
/// produce the exact offset-naming diagnostic.
inline constexpr u8 kFrepBodyOk = 1u << 0;
} // namespace preflag

/// Per-instruction record resolved once at load.
struct PredecodedInstr {
  /// Cached metadata (never null; kInvalid's sentinel entry for bad words).
  const MnemonicInfo* mi = nullptr;
  ExecHandler handler = ExecHandler::kInvalid;
  /// Handler-specific precomputed immediate: the full upper-immediate value
  /// for lui/auipc (imm << 12), the PC-relative delta for branches/jal, the
  /// CSR address for CSR ops, otherwise the sign-extended immediate.
  i32 aux = 0;
  bool fp_domain = false;
  u8 mem_bytes = 0;
  /// preflag:: bits (superblock pass).
  u8 flags = 0;
  /// Straight-line superblock length starting at this instruction: this
  /// record and the next run_len-1 are all linear (exec_handler_linear) and
  /// inside the text segment. 0 for non-linear records (superblock pass).
  u32 run_len = 0;
  /// Taken-target text index for kJal/kBranch records; 0xFFFF'FFFF
  /// (Program::kNoIndex) when the target leaves the text segment or is
  /// misaligned (superblock pass).
  u32 target_idx = 0xFFFF'FFFF;
};

/// Resolve the execution record for one decoded instruction.
[[nodiscard]] PredecodedInstr predecode(const Instr& in);

/// Whole-program superblock pass over a predecoded stream: computes
/// straight-line run lengths, resolves branch/jal taken-target indices, and
/// statically validates frep bodies, so the execution engines validate each
/// static block once instead of re-checking every dynamic instruction.
/// Program::predecode() runs it after the per-instruction pass; any in-place
/// program edit must rebuild via Program::predecode() (full rebuild -- the
/// invalidation hook -- so stale block metadata can never survive an edit).
void link_superblocks(std::vector<PredecodedInstr>& pre);

} // namespace sch::isa
