// Control-and-status-register addresses, including the custom extension CSRs.
#pragma once

#include "common/types.hpp"

namespace sch::isa::csr {

// Standard user-level FP CSRs.
inline constexpr u32 kFflags = 0x001;
inline constexpr u32 kFrm = 0x002;
inline constexpr u32 kFcsr = 0x003;

// Standard counters.
inline constexpr u32 kCycle = 0xC00;
inline constexpr u32 kInstret = 0xC02;
inline constexpr u32 kMcycle = 0xB00;
inline constexpr u32 kMinstret = 0xB02;
inline constexpr u32 kMhartid = 0xF14;
/// Read-only core count of the cluster (custom, Snitch-runtime-style): lets
/// one program partition work by hartid without baking the cluster size into
/// the binary.
inline constexpr u32 kMnumharts = 0xFC1;

// Snitch-style custom extension CSRs.
/// Stream-semantic-register global enable (bit 0), as in Snitch.
inline constexpr u32 kSsrEnable = 0x7C0;
/// Scalar-chaining register mask: one bit per architectural FP register
/// (paper, Section II: "a custom CSR (at address 0x7c3) hosting a 32-bit
/// mask ... to dynamically enable and disable chaining").
inline constexpr u32 kChainMask = 0x7C3;

/// True when `addr` is one of the custom stream/chaining CSRs whose writes
/// must be serialized against in-flight FP-subsystem work.
constexpr bool is_stream_csr(u32 addr) { return addr >= 0x7C0 && addr <= 0x7CF; }

} // namespace sch::isa::csr
