// Mnemonic-level instruction vocabulary and static metadata. The metadata
// table drives the decoder, encoder, disassembler, functional ISS and the
// timing model, so instruction behaviour is defined in exactly one place.
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace sch::isa {

/// Every instruction the core understands. RV32IMFD + Zicsr + the custom
/// Xfrep (hardware loop), Xssr (stream config) and Xdma (cluster DMA)
/// extensions.
enum class Mnemonic : u16 {
  kInvalid = 0,
  // --- RV32I ---
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kFence, kEcall, kEbreak,
  // --- RV32M ---
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  // --- Zicsr ---
  kCsrrw, kCsrrs, kCsrrc, kCsrrwi, kCsrrsi, kCsrrci,
  // --- RV32F ---
  kFlw, kFsw,
  kFmaddS, kFmsubS, kFnmsubS, kFnmaddS,
  kFaddS, kFsubS, kFmulS, kFdivS, kFsqrtS,
  kFsgnjS, kFsgnjnS, kFsgnjxS, kFminS, kFmaxS,
  kFcvtWS, kFcvtWuS, kFmvXW, kFeqS, kFltS, kFleS, kFclassS,
  kFcvtSW, kFcvtSWu, kFmvWX,
  // --- RV32D ---
  kFld, kFsd,
  kFmaddD, kFmsubD, kFnmsubD, kFnmaddD,
  kFaddD, kFsubD, kFmulD, kFdivD, kFsqrtD,
  kFsgnjD, kFsgnjnD, kFsgnjxD, kFminD, kFmaxD,
  kFcvtSD, kFcvtDS, kFeqD, kFltD, kFleD, kFclassD,
  kFcvtWD, kFcvtWuD, kFcvtDW, kFcvtDWu,
  // --- Xfrep (Snitch-style FP hardware loop) ---
  kFrepO, kFrepI,
  // --- Xssr (stream configuration) ---
  kScfgw, kScfgr,
  // --- Xdma (cluster DMA engine) ---
  kDmSrc, kDmDst, kDmStr, kDmCpy, kDmCpy2d, kDmStat,

  kCount,
};

/// Instruction encoding formats (RISC-V manual nomenclature).
enum class Format : u8 { kR, kR4, kI, kS, kB, kU, kJ, kCsr, kCsrI, kNone };

/// Register-file class of an operand slot.
enum class RegClass : u8 { kNone, kInt, kFp };

/// Execution resource / latency class, consumed by the timing model.
enum class ExecClass : u8 {
  kIntAlu,    // 1-cycle integer ops, lui/auipc
  kIntMul,    // pipelined integer multiply
  kIntDiv,    // iterative integer divide
  kLoad,      // integer load
  kStore,     // integer store
  kBranch,    // conditional branch
  kJump,      // jal/jalr
  kCsr,       // CSR access
  kSystem,    // fence/ecall/ebreak
  kFpMac,     // pipelined FP compute (add/sub/mul/fma/sgnj/minmax/cvt f<->f)
  kFpDiv,     // iterative FP divide
  kFpSqrt,    // iterative FP square root
  kFpCmp,     // FP compare/classify -> integer result
  kFpCvtF2I,  // FP -> int conversions / fmv.x.w
  kFpCvtI2F,  // int -> FP conversions / fmv.w.x
  kFpLoad,    // flw/fld (FP-domain, address from integer rs1)
  kFpStore,   // fsw/fsd
  kFrep,      // hardware-loop marker (consumed by the sequencer)
  kScfg,      // stream config access
  kDma,       // cluster DMA engine access (Xdma)
};

/// Static description of one mnemonic.
struct MnemonicInfo {
  std::string_view name;  // canonical assembly spelling, e.g. "fmadd.d"
  Format fmt = Format::kNone;
  RegClass rd = RegClass::kNone;
  RegClass rs1 = RegClass::kNone;
  RegClass rs2 = RegClass::kNone;
  RegClass rs3 = RegClass::kNone;
  ExecClass exec = ExecClass::kIntAlu;
  /// Executed in the FP subsystem (pseudo-dual-issue offload).
  bool fp_domain = false;
  /// Memory access size in bytes (loads/stores), else 0.
  u8 mem_bytes = 0;
  /// Uses the single-precision (NaN-boxed) FP format.
  bool is_single = false;
};

/// Metadata for `mn`; `kInvalid` returns a sentinel entry.
const MnemonicInfo& info(Mnemonic mn);

/// Canonical spelling ("fmadd.d"); "<invalid>" for kInvalid.
std::string_view name(Mnemonic mn);

/// True when the mnemonic writes an integer destination register.
inline bool writes_int_rd(Mnemonic mn) { return info(mn).rd == RegClass::kInt; }
/// True when the mnemonic writes an FP destination register.
inline bool writes_fp_rd(Mnemonic mn) { return info(mn).rd == RegClass::kFp; }

} // namespace sch::isa
