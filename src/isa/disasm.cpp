#include "isa/disasm.hpp"

#include <sstream>

#include "isa/decode.hpp"
#include "isa/reg.hpp"

namespace sch::isa {
namespace {

std::string reg_name(RegClass cls, u8 r) {
  switch (cls) {
    case RegClass::kInt: return std::string(int_reg_name(r));
    case RegClass::kFp: return std::string(fp_reg_name(r));
    default: return "?";
  }
}

} // namespace

std::string disassemble(const Instr& in) {
  const MnemonicInfo& mi = in.meta();
  std::ostringstream os;
  os << mi.name;
  if (!in.valid()) return os.str();

  auto rd = [&] { return reg_name(mi.rd, in.rd); };
  auto rs1 = [&] { return reg_name(mi.rs1, in.rs1); };
  auto rs2 = [&] { return reg_name(mi.rs2, in.rs2); };
  auto rs3 = [&] { return reg_name(mi.rs3, in.rs3); };

  // Xdma operand shapes do not follow the stock format printers.
  switch (in.mn) {
    case Mnemonic::kDmSrc: case Mnemonic::kDmDst:
      os << " " << rs1();
      return os.str();
    case Mnemonic::kDmStr:
      os << " " << rs1() << ", " << rs2();
      return os.str();
    case Mnemonic::kDmCpy:
      os << " " << rd() << ", " << rs1();
      return os.str();
    case Mnemonic::kDmCpy2d:
      os << " " << rd() << ", " << rs1() << ", " << rs2();
      return os.str();
    case Mnemonic::kDmStat:
      os << " " << rd() << ", " << in.imm;
      return os.str();
    default:
      break;
  }

  switch (mi.fmt) {
    case Format::kR:
      if (mi.rs2 == RegClass::kNone) {
        os << " " << rd() << ", " << rs1();
      } else {
        os << " " << rd() << ", " << rs1() << ", " << rs2();
      }
      break;
    case Format::kR4:
      os << " " << rd() << ", " << rs1() << ", " << rs2() << ", " << rs3();
      break;
    case Format::kI:
      if (mi.exec == ExecClass::kLoad || mi.exec == ExecClass::kFpLoad ||
          in.mn == Mnemonic::kJalr) {
        os << " " << rd() << ", " << in.imm << "(" << rs1() << ")";
      } else if (in.mn == Mnemonic::kFrepO || in.mn == Mnemonic::kFrepI) {
        os << " " << rs1() << ", " << in.imm;
      } else if (in.mn == Mnemonic::kScfgw) {
        os << " " << rs1() << ", " << in.imm;
      } else if (in.mn == Mnemonic::kScfgr) {
        os << " " << rd() << ", " << in.imm;
      } else {
        os << " " << rd() << ", " << rs1() << ", " << in.imm;
      }
      break;
    case Format::kS:
      os << " " << rs2() << ", " << in.imm << "(" << rs1() << ")";
      break;
    case Format::kB:
      os << " " << rs1() << ", " << rs2() << ", " << in.imm;
      break;
    case Format::kU:
      os << " " << rd() << ", 0x" << std::hex << in.imm;
      break;
    case Format::kJ:
      os << " " << rd() << ", " << in.imm;
      break;
    case Format::kCsr:
      os << " " << rd() << ", 0x" << std::hex << in.imm << std::dec << ", "
         << reg_name(RegClass::kInt, in.rs1);
      break;
    case Format::kCsrI:
      os << " " << rd() << ", 0x" << std::hex << in.imm << std::dec << ", "
         << static_cast<int>(in.rs1);
      break;
    case Format::kNone:
      break;
  }
  return os.str();
}

std::string disassemble(u32 word) { return disassemble(decode(word)); }

} // namespace sch::isa
