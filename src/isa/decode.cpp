#include "isa/decode.hpp"

#include "common/bitfield.hpp"

namespace sch::isa {
namespace {

Instr invalid(u32 raw) {
  Instr i;
  i.raw = raw;
  return i;
}

i32 imm_i(u32 w) { return sign_extend(bits(w, 31, 20), 12); }
i32 imm_s(u32 w) {
  return sign_extend((bits(w, 31, 25) << 5) | bits(w, 11, 7), 12);
}
i32 imm_b(u32 w) {
  const u32 u = (bit(w, 31) << 12) | (bit(w, 7) << 11) |
                (bits(w, 30, 25) << 5) | (bits(w, 11, 8) << 1);
  return sign_extend(u, 13);
}
i32 imm_j(u32 w) {
  const u32 u = (bit(w, 31) << 20) | (bits(w, 19, 12) << 12) |
                (bit(w, 20) << 11) | (bits(w, 30, 21) << 1);
  return sign_extend(u, 21);
}

Instr fill(Mnemonic mn, u32 w) {
  Instr i;
  i.mn = mn;
  i.raw = w;
  i.rd = static_cast<u8>(bits(w, 11, 7));
  i.rs1 = static_cast<u8>(bits(w, 19, 15));
  i.rs2 = static_cast<u8>(bits(w, 24, 20));
  i.rs3 = static_cast<u8>(bits(w, 31, 27));
  i.rm = static_cast<u8>(bits(w, 14, 12));
  return i;
}

Instr decode_op_fp(u32 w) {
  const u32 funct5 = bits(w, 31, 27);
  const u32 fmt = bits(w, 26, 25);
  const u32 f3 = bits(w, 14, 12);
  const u32 rs2 = bits(w, 24, 20);
  if (fmt > 1) return invalid(w);
  const bool d = fmt == 1;
  Mnemonic mn = Mnemonic::kInvalid;
  switch (funct5) {
    case 0x00: mn = d ? Mnemonic::kFaddD : Mnemonic::kFaddS; break;
    case 0x01: mn = d ? Mnemonic::kFsubD : Mnemonic::kFsubS; break;
    case 0x02: mn = d ? Mnemonic::kFmulD : Mnemonic::kFmulS; break;
    case 0x03: mn = d ? Mnemonic::kFdivD : Mnemonic::kFdivS; break;
    case 0x04:
      switch (f3) {
        case 0: mn = d ? Mnemonic::kFsgnjD : Mnemonic::kFsgnjS; break;
        case 1: mn = d ? Mnemonic::kFsgnjnD : Mnemonic::kFsgnjnS; break;
        case 2: mn = d ? Mnemonic::kFsgnjxD : Mnemonic::kFsgnjxS; break;
        default: return invalid(w);
      }
      break;
    case 0x05:
      switch (f3) {
        case 0: mn = d ? Mnemonic::kFminD : Mnemonic::kFminS; break;
        case 1: mn = d ? Mnemonic::kFmaxD : Mnemonic::kFmaxS; break;
        default: return invalid(w);
      }
      break;
    case 0x08:
      if (!d && rs2 == 1) mn = Mnemonic::kFcvtSD;
      else if (d && rs2 == 0) mn = Mnemonic::kFcvtDS;
      else return invalid(w);
      break;
    case 0x0B:
      if (rs2 != 0) return invalid(w);
      mn = d ? Mnemonic::kFsqrtD : Mnemonic::kFsqrtS;
      break;
    case 0x14:
      switch (f3) {
        case 2: mn = d ? Mnemonic::kFeqD : Mnemonic::kFeqS; break;
        case 1: mn = d ? Mnemonic::kFltD : Mnemonic::kFltS; break;
        case 0: mn = d ? Mnemonic::kFleD : Mnemonic::kFleS; break;
        default: return invalid(w);
      }
      break;
    case 0x18:
      if (rs2 == 0) mn = d ? Mnemonic::kFcvtWD : Mnemonic::kFcvtWS;
      else if (rs2 == 1) mn = d ? Mnemonic::kFcvtWuD : Mnemonic::kFcvtWuS;
      else return invalid(w);
      break;
    case 0x1A:
      if (rs2 == 0) mn = d ? Mnemonic::kFcvtDW : Mnemonic::kFcvtSW;
      else if (rs2 == 1) mn = d ? Mnemonic::kFcvtDWu : Mnemonic::kFcvtSWu;
      else return invalid(w);
      break;
    case 0x1C:
      if (rs2 != 0) return invalid(w);
      if (f3 == 0 && !d) mn = Mnemonic::kFmvXW;
      else if (f3 == 1) mn = d ? Mnemonic::kFclassD : Mnemonic::kFclassS;
      else return invalid(w);
      break;
    case 0x1E:
      if (rs2 != 0 || f3 != 0 || d) return invalid(w);
      mn = Mnemonic::kFmvWX;
      break;
    default:
      return invalid(w);
  }
  Instr i = fill(mn, w);
  i.rs3 = 0;
  i.imm = 0;
  // funct5 groups where the rs2 field is an opcode modifier, not a register.
  if (funct5 == 0x08 || funct5 == 0x0B || funct5 == 0x18 || funct5 == 0x1A ||
      funct5 == 0x1C || funct5 == 0x1E) {
    i.rs2 = 0;
  }
  return i;
}

} // namespace

Instr decode(u32 w) {
  const u32 opcode = bits(w, 6, 0);
  const u32 f3 = bits(w, 14, 12);
  const u32 f7 = bits(w, 31, 25);

  switch (opcode) {
    case 0x37: { // LUI
      Instr i = fill(Mnemonic::kLui, w);
      i.imm = static_cast<i32>(bits(w, 31, 12));
      i.rs1 = i.rs2 = i.rs3 = 0; i.rm = 0;
      return i;
    }
    case 0x17: { // AUIPC
      Instr i = fill(Mnemonic::kAuipc, w);
      i.imm = static_cast<i32>(bits(w, 31, 12));
      i.rs1 = i.rs2 = i.rs3 = 0; i.rm = 0;
      return i;
    }
    case 0x6F: { // JAL
      Instr i = fill(Mnemonic::kJal, w);
      i.imm = imm_j(w);
      i.rs1 = i.rs2 = i.rs3 = 0; i.rm = 0;
      return i;
    }
    case 0x67: { // JALR
      if (f3 != 0) return invalid(w);
      Instr i = fill(Mnemonic::kJalr, w);
      i.imm = imm_i(w);
      i.rs2 = i.rs3 = 0; i.rm = 0;
      return i;
    }
    case 0x63: { // BRANCH
      static constexpr Mnemonic kB[] = {Mnemonic::kBeq,  Mnemonic::kBne,
                                        Mnemonic::kInvalid, Mnemonic::kInvalid,
                                        Mnemonic::kBlt,  Mnemonic::kBge,
                                        Mnemonic::kBltu, Mnemonic::kBgeu};
      if (kB[f3] == Mnemonic::kInvalid) return invalid(w);
      Instr i = fill(kB[f3], w);
      i.imm = imm_b(w);
      i.rd = i.rs3 = 0; i.rm = 0;
      return i;
    }
    case 0x03: { // LOAD
      static constexpr Mnemonic kL[] = {Mnemonic::kLb, Mnemonic::kLh,
                                        Mnemonic::kLw, Mnemonic::kInvalid,
                                        Mnemonic::kLbu, Mnemonic::kLhu,
                                        Mnemonic::kInvalid, Mnemonic::kInvalid};
      if (kL[f3] == Mnemonic::kInvalid) return invalid(w);
      Instr i = fill(kL[f3], w);
      i.imm = imm_i(w);
      i.rs2 = i.rs3 = 0; i.rm = 0;
      return i;
    }
    case 0x07: { // LOAD-FP
      Mnemonic mn = f3 == 2 ? Mnemonic::kFlw : f3 == 3 ? Mnemonic::kFld : Mnemonic::kInvalid;
      if (mn == Mnemonic::kInvalid) return invalid(w);
      Instr i = fill(mn, w);
      i.imm = imm_i(w);
      i.rs2 = i.rs3 = 0; i.rm = 0;
      return i;
    }
    case 0x23: { // STORE
      static constexpr Mnemonic kS[] = {Mnemonic::kSb, Mnemonic::kSh,
                                        Mnemonic::kSw, Mnemonic::kInvalid};
      if (f3 > 2) return invalid(w);
      Instr i = fill(kS[f3], w);
      i.imm = imm_s(w);
      i.rd = i.rs3 = 0; i.rm = 0;
      return i;
    }
    case 0x27: { // STORE-FP
      Mnemonic mn = f3 == 2 ? Mnemonic::kFsw : f3 == 3 ? Mnemonic::kFsd : Mnemonic::kInvalid;
      if (mn == Mnemonic::kInvalid) return invalid(w);
      Instr i = fill(mn, w);
      i.imm = imm_s(w);
      i.rd = i.rs3 = 0; i.rm = 0;
      return i;
    }
    case 0x13: { // OP-IMM
      Mnemonic mn;
      switch (f3) {
        case 0x0: mn = Mnemonic::kAddi; break;
        case 0x2: mn = Mnemonic::kSlti; break;
        case 0x3: mn = Mnemonic::kSltiu; break;
        case 0x4: mn = Mnemonic::kXori; break;
        case 0x6: mn = Mnemonic::kOri; break;
        case 0x7: mn = Mnemonic::kAndi; break;
        case 0x1:
          if (f7 != 0) return invalid(w);
          mn = Mnemonic::kSlli;
          break;
        case 0x5:
          if (f7 == 0x00) mn = Mnemonic::kSrli;
          else if (f7 == 0x20) mn = Mnemonic::kSrai;
          else return invalid(w);
          break;
        default: return invalid(w);
      }
      Instr i = fill(mn, w);
      i.imm = (mn == Mnemonic::kSlli || mn == Mnemonic::kSrli || mn == Mnemonic::kSrai)
                  ? static_cast<i32>(bits(w, 24, 20))
                  : imm_i(w);
      i.rs2 = i.rs3 = 0; i.rm = 0;
      return i;
    }
    case 0x33: { // OP
      Mnemonic mn = Mnemonic::kInvalid;
      if (f7 == 0x00) {
        static constexpr Mnemonic kA[] = {Mnemonic::kAdd, Mnemonic::kSll,
                                          Mnemonic::kSlt, Mnemonic::kSltu,
                                          Mnemonic::kXor, Mnemonic::kSrl,
                                          Mnemonic::kOr,  Mnemonic::kAnd};
        mn = kA[f3];
      } else if (f7 == 0x20) {
        if (f3 == 0) mn = Mnemonic::kSub;
        else if (f3 == 5) mn = Mnemonic::kSra;
      } else if (f7 == 0x01) {
        static constexpr Mnemonic kM[] = {Mnemonic::kMul,  Mnemonic::kMulh,
                                          Mnemonic::kMulhsu, Mnemonic::kMulhu,
                                          Mnemonic::kDiv,  Mnemonic::kDivu,
                                          Mnemonic::kRem,  Mnemonic::kRemu};
        mn = kM[f3];
      }
      if (mn == Mnemonic::kInvalid) return invalid(w);
      Instr i = fill(mn, w);
      i.rs3 = 0; i.rm = 0; i.imm = 0;
      return i;
    }
    case 0x0F: { // MISC-MEM
      Instr i = fill(Mnemonic::kFence, w);
      i.rd = i.rs1 = i.rs2 = i.rs3 = 0; i.rm = 0; i.imm = 0;
      return i;
    }
    case 0x73: { // SYSTEM
      if (f3 == 0) {
        if (w == 0x00000073) { Instr i; i.mn = Mnemonic::kEcall; i.raw = w; return i; }
        if (w == 0x00100073) { Instr i; i.mn = Mnemonic::kEbreak; i.raw = w; return i; }
        return invalid(w);
      }
      static constexpr Mnemonic kC[] = {Mnemonic::kInvalid, Mnemonic::kCsrrw,
                                        Mnemonic::kCsrrs,  Mnemonic::kCsrrc,
                                        Mnemonic::kInvalid, Mnemonic::kCsrrwi,
                                        Mnemonic::kCsrrsi, Mnemonic::kCsrrci};
      if (kC[f3] == Mnemonic::kInvalid) return invalid(w);
      Instr i = fill(kC[f3], w);
      i.imm = static_cast<i32>(bits(w, 31, 20));
      i.rs2 = i.rs3 = 0; i.rm = 0;
      return i;
    }
    case 0x43: case 0x47: case 0x4B: case 0x4F: { // FMADD family
      const u32 fmt = bits(w, 26, 25);
      if (fmt > 1) return invalid(w);
      const bool d = fmt == 1;
      Mnemonic mn;
      switch (opcode) {
        case 0x43: mn = d ? Mnemonic::kFmaddD : Mnemonic::kFmaddS; break;
        case 0x47: mn = d ? Mnemonic::kFmsubD : Mnemonic::kFmsubS; break;
        case 0x4B: mn = d ? Mnemonic::kFnmsubD : Mnemonic::kFnmsubS; break;
        default:   mn = d ? Mnemonic::kFnmaddD : Mnemonic::kFnmaddS; break;
      }
      Instr i = fill(mn, w);
      i.imm = 0;
      return i;
    }
    case 0x53:
      return decode_op_fp(w);
    case 0x0B: { // custom-0: frep
      Mnemonic mn = f3 == 0 ? Mnemonic::kFrepO : f3 == 1 ? Mnemonic::kFrepI : Mnemonic::kInvalid;
      if (mn == Mnemonic::kInvalid) return invalid(w);
      Instr i = fill(mn, w);
      i.imm = imm_i(w);
      i.rd = i.rs2 = i.rs3 = 0; i.rm = 0;
      return i;
    }
    case 0x2B: { // custom-1: scfg (f3 0-1) + Xdma (f3 2-7)
      static constexpr Mnemonic kD[] = {
          Mnemonic::kScfgw, Mnemonic::kScfgr, Mnemonic::kDmSrc,
          Mnemonic::kDmDst, Mnemonic::kDmStr, Mnemonic::kDmCpy,
          Mnemonic::kDmCpy2d, Mnemonic::kDmStat};
      const Mnemonic mn = kD[f3];
      Instr i = fill(mn, w);
      i.rs3 = 0; i.rm = 0; i.imm = 0;
      switch (mn) {
        case Mnemonic::kScfgw:
          i.imm = imm_i(w); i.rd = 0; i.rs2 = 0; break;
        case Mnemonic::kScfgr:
          i.imm = imm_i(w); i.rs1 = 0; i.rs2 = 0; break;
        case Mnemonic::kDmSrc: case Mnemonic::kDmDst:
          i.rd = 0; i.rs2 = 0; break;
        case Mnemonic::kDmStr:
          i.rd = 0; break;
        case Mnemonic::kDmCpy:
          i.rs2 = 0; break;
        case Mnemonic::kDmCpy2d:
          break;
        default: // kDmStat
          i.imm = imm_i(w); i.rs1 = 0; i.rs2 = 0; break;
      }
      return i;
    }
    default:
      return invalid(w);
  }
}

} // namespace sch::isa
