#include "isa/encode.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "common/bitfield.hpp"

namespace sch::isa {
namespace {

// Major opcodes (RISC-V base opcode map, inst[6:0]).
constexpr u32 kLoad = 0x03, kLoadFp = 0x07, kCustom0 = 0x0B, kMiscMem = 0x0F,
              kOpImm = 0x13, kAuipcOp = 0x17, kStore = 0x23, kStoreFp = 0x27,
              kCustom1 = 0x2B, kOp = 0x33, kLuiOp = 0x37, kMadd = 0x43,
              kMsub = 0x47, kNmsub = 0x4B, kNmadd = 0x4F, kOpFp = 0x53,
              kBranchOp = 0x63, kJalrOp = 0x67, kJalOp = 0x6F, kSystem = 0x73;

struct RSpec { u32 opcode, funct3, funct7; };
struct ISpec { u32 opcode, funct3; };

RSpec r_spec(Mnemonic mn) {
  switch (mn) {
    case Mnemonic::kAdd:  return {kOp, 0x0, 0x00};
    case Mnemonic::kSub:  return {kOp, 0x0, 0x20};
    case Mnemonic::kSll:  return {kOp, 0x1, 0x00};
    case Mnemonic::kSlt:  return {kOp, 0x2, 0x00};
    case Mnemonic::kSltu: return {kOp, 0x3, 0x00};
    case Mnemonic::kXor:  return {kOp, 0x4, 0x00};
    case Mnemonic::kSrl:  return {kOp, 0x5, 0x00};
    case Mnemonic::kSra:  return {kOp, 0x5, 0x20};
    case Mnemonic::kOr:   return {kOp, 0x6, 0x00};
    case Mnemonic::kAnd:  return {kOp, 0x7, 0x00};
    case Mnemonic::kMul:    return {kOp, 0x0, 0x01};
    case Mnemonic::kMulh:   return {kOp, 0x1, 0x01};
    case Mnemonic::kMulhsu: return {kOp, 0x2, 0x01};
    case Mnemonic::kMulhu:  return {kOp, 0x3, 0x01};
    case Mnemonic::kDiv:    return {kOp, 0x4, 0x01};
    case Mnemonic::kDivu:   return {kOp, 0x5, 0x01};
    case Mnemonic::kRem:    return {kOp, 0x6, 0x01};
    case Mnemonic::kRemu:   return {kOp, 0x7, 0x01};
    default: throw std::logic_error("r_spec: not an integer R-type");
  }
}

// FP OP encodings: funct7 = (funct5 << 2) | fmt, fmt: S=0, D=1.
// `f3` < 0 means the rounding-mode field carries instr.rm.
struct FpSpec { u32 funct5, fmt; i32 f3; u32 rs2_field; bool rs2_is_reg; };

FpSpec fp_spec(Mnemonic mn) {
  switch (mn) {
    case Mnemonic::kFaddS:   return {0x00, 0, -1, 0, true};
    case Mnemonic::kFaddD:   return {0x00, 1, -1, 0, true};
    case Mnemonic::kFsubS:   return {0x01, 0, -1, 0, true};
    case Mnemonic::kFsubD:   return {0x01, 1, -1, 0, true};
    case Mnemonic::kFmulS:   return {0x02, 0, -1, 0, true};
    case Mnemonic::kFmulD:   return {0x02, 1, -1, 0, true};
    case Mnemonic::kFdivS:   return {0x03, 0, -1, 0, true};
    case Mnemonic::kFdivD:   return {0x03, 1, -1, 0, true};
    case Mnemonic::kFsgnjS:  return {0x04, 0, 0, 0, true};
    case Mnemonic::kFsgnjnS: return {0x04, 0, 1, 0, true};
    case Mnemonic::kFsgnjxS: return {0x04, 0, 2, 0, true};
    case Mnemonic::kFsgnjD:  return {0x04, 1, 0, 0, true};
    case Mnemonic::kFsgnjnD: return {0x04, 1, 1, 0, true};
    case Mnemonic::kFsgnjxD: return {0x04, 1, 2, 0, true};
    case Mnemonic::kFminS:   return {0x05, 0, 0, 0, true};
    case Mnemonic::kFmaxS:   return {0x05, 0, 1, 0, true};
    case Mnemonic::kFminD:   return {0x05, 1, 0, 0, true};
    case Mnemonic::kFmaxD:   return {0x05, 1, 1, 0, true};
    case Mnemonic::kFcvtSD:  return {0x08, 0, -1, 1, false};
    case Mnemonic::kFcvtDS:  return {0x08, 1, -1, 0, false};
    case Mnemonic::kFsqrtS:  return {0x0B, 0, -1, 0, false};
    case Mnemonic::kFsqrtD:  return {0x0B, 1, -1, 0, false};
    case Mnemonic::kFeqS:    return {0x14, 0, 2, 0, true};
    case Mnemonic::kFltS:    return {0x14, 0, 1, 0, true};
    case Mnemonic::kFleS:    return {0x14, 0, 0, 0, true};
    case Mnemonic::kFeqD:    return {0x14, 1, 2, 0, true};
    case Mnemonic::kFltD:    return {0x14, 1, 1, 0, true};
    case Mnemonic::kFleD:    return {0x14, 1, 0, 0, true};
    case Mnemonic::kFcvtWS:  return {0x18, 0, -1, 0, false};
    case Mnemonic::kFcvtWuS: return {0x18, 0, -1, 1, false};
    case Mnemonic::kFcvtWD:  return {0x18, 1, -1, 0, false};
    case Mnemonic::kFcvtWuD: return {0x18, 1, -1, 1, false};
    case Mnemonic::kFcvtSW:  return {0x1A, 0, -1, 0, false};
    case Mnemonic::kFcvtSWu: return {0x1A, 0, -1, 1, false};
    case Mnemonic::kFcvtDW:  return {0x1A, 1, -1, 0, false};
    case Mnemonic::kFcvtDWu: return {0x1A, 1, -1, 1, false};
    case Mnemonic::kFmvXW:   return {0x1C, 0, 0, 0, false};
    case Mnemonic::kFclassS: return {0x1C, 0, 1, 0, false};
    case Mnemonic::kFclassD: return {0x1C, 1, 1, 0, false};
    case Mnemonic::kFmvWX:   return {0x1E, 0, 0, 0, false};
    default: throw std::logic_error("fp_spec: not an FP R-type");
  }
}

ISpec i_spec(Mnemonic mn) {
  switch (mn) {
    case Mnemonic::kJalr:  return {kJalrOp, 0x0};
    case Mnemonic::kLb:    return {kLoad, 0x0};
    case Mnemonic::kLh:    return {kLoad, 0x1};
    case Mnemonic::kLw:    return {kLoad, 0x2};
    case Mnemonic::kLbu:   return {kLoad, 0x4};
    case Mnemonic::kLhu:   return {kLoad, 0x5};
    case Mnemonic::kFlw:   return {kLoadFp, 0x2};
    case Mnemonic::kFld:   return {kLoadFp, 0x3};
    case Mnemonic::kAddi:  return {kOpImm, 0x0};
    case Mnemonic::kSlti:  return {kOpImm, 0x2};
    case Mnemonic::kSltiu: return {kOpImm, 0x3};
    case Mnemonic::kXori:  return {kOpImm, 0x4};
    case Mnemonic::kOri:   return {kOpImm, 0x6};
    case Mnemonic::kAndi:  return {kOpImm, 0x7};
    case Mnemonic::kSlli:  return {kOpImm, 0x1};
    case Mnemonic::kSrli:  return {kOpImm, 0x5};
    case Mnemonic::kSrai:  return {kOpImm, 0x5};
    case Mnemonic::kFrepO: return {kCustom0, 0x0};
    case Mnemonic::kFrepI: return {kCustom0, 0x1};
    case Mnemonic::kScfgw: return {kCustom1, 0x0};
    case Mnemonic::kScfgr: return {kCustom1, 0x1};
    case Mnemonic::kDmSrc: return {kCustom1, 0x2};
    case Mnemonic::kDmDst: return {kCustom1, 0x3};
    case Mnemonic::kDmCpy: return {kCustom1, 0x5};
    case Mnemonic::kDmStat: return {kCustom1, 0x7};
    default: throw std::logic_error("i_spec: not an I-type");
  }
}

u32 enc_i(u32 opcode, u32 f3, u8 rd, u8 rs1, i32 imm) {
  assert(fits_simm(imm, 12));
  return place(static_cast<u32>(imm), 12, 20) | place(rs1, 5, 15) |
         place(f3, 3, 12) | place(rd, 5, 7) | opcode;
}

u32 enc_s(u32 opcode, u32 f3, u8 rs1, u8 rs2, i32 imm) {
  assert(fits_simm(imm, 12));
  const u32 u = static_cast<u32>(imm);
  return place(bits(u, 11, 5), 7, 25) | place(rs2, 5, 20) | place(rs1, 5, 15) |
         place(f3, 3, 12) | place(bits(u, 4, 0), 5, 7) | opcode;
}

u32 enc_b(u32 opcode, u32 f3, u8 rs1, u8 rs2, i32 offset) {
  assert(fits_simm(offset, 13) && (offset & 1) == 0);
  const u32 u = static_cast<u32>(offset);
  return place(bit(u, 12), 1, 31) | place(bits(u, 10, 5), 6, 25) |
         place(rs2, 5, 20) | place(rs1, 5, 15) | place(f3, 3, 12) |
         place(bits(u, 4, 1), 4, 8) | place(bit(u, 11), 1, 7) | opcode;
}

u32 enc_j(u32 opcode, u8 rd, i32 offset) {
  assert(fits_simm(offset, 21) && (offset & 1) == 0);
  const u32 u = static_cast<u32>(offset);
  return place(bit(u, 20), 1, 31) | place(bits(u, 10, 1), 10, 21) |
         place(bit(u, 11), 1, 20) | place(bits(u, 19, 12), 8, 12) |
         place(rd, 5, 7) | opcode;
}

} // namespace

u32 encode(const Instr& in) {
  const MnemonicInfo& mi = info(in.mn);
  switch (in.mn) {
    case Mnemonic::kLui:
      return place(static_cast<u32>(in.imm), 20, 12) | place(in.rd, 5, 7) | kLuiOp;
    case Mnemonic::kAuipc:
      return place(static_cast<u32>(in.imm), 20, 12) | place(in.rd, 5, 7) | kAuipcOp;
    case Mnemonic::kJal:
      return enc_j(kJalOp, in.rd, in.imm);
    case Mnemonic::kBeq:  return enc_b(kBranchOp, 0x0, in.rs1, in.rs2, in.imm);
    case Mnemonic::kBne:  return enc_b(kBranchOp, 0x1, in.rs1, in.rs2, in.imm);
    case Mnemonic::kBlt:  return enc_b(kBranchOp, 0x4, in.rs1, in.rs2, in.imm);
    case Mnemonic::kBge:  return enc_b(kBranchOp, 0x5, in.rs1, in.rs2, in.imm);
    case Mnemonic::kBltu: return enc_b(kBranchOp, 0x6, in.rs1, in.rs2, in.imm);
    case Mnemonic::kBgeu: return enc_b(kBranchOp, 0x7, in.rs1, in.rs2, in.imm);
    case Mnemonic::kSb: return enc_s(kStore, 0x0, in.rs1, in.rs2, in.imm);
    case Mnemonic::kSh: return enc_s(kStore, 0x1, in.rs1, in.rs2, in.imm);
    case Mnemonic::kSw: return enc_s(kStore, 0x2, in.rs1, in.rs2, in.imm);
    case Mnemonic::kFsw: return enc_s(kStoreFp, 0x2, in.rs1, in.rs2, in.imm);
    case Mnemonic::kFsd: return enc_s(kStoreFp, 0x3, in.rs1, in.rs2, in.imm);
    case Mnemonic::kSlli:
      return enc_i(kOpImm, 0x1, in.rd, in.rs1, in.imm & 0x1F);
    case Mnemonic::kSrli:
      return enc_i(kOpImm, 0x5, in.rd, in.rs1, in.imm & 0x1F);
    case Mnemonic::kSrai:
      return enc_i(kOpImm, 0x5, in.rd, in.rs1, (in.imm & 0x1F) | 0x400);
    case Mnemonic::kFence:  return 0x0000000F;
    case Mnemonic::kEcall:  return 0x00000073;
    case Mnemonic::kEbreak: return 0x00100073;
    case Mnemonic::kCsrrw:
      return enc_i(kSystem, 0x1, in.rd, in.rs1, 0) | place(static_cast<u32>(in.imm), 12, 20);
    case Mnemonic::kCsrrs:
      return enc_i(kSystem, 0x2, in.rd, in.rs1, 0) | place(static_cast<u32>(in.imm), 12, 20);
    case Mnemonic::kCsrrc:
      return enc_i(kSystem, 0x3, in.rd, in.rs1, 0) | place(static_cast<u32>(in.imm), 12, 20);
    case Mnemonic::kCsrrwi:
      return enc_i(kSystem, 0x5, in.rd, in.rs1, 0) | place(static_cast<u32>(in.imm), 12, 20);
    case Mnemonic::kCsrrsi:
      return enc_i(kSystem, 0x6, in.rd, in.rs1, 0) | place(static_cast<u32>(in.imm), 12, 20);
    case Mnemonic::kCsrrci:
      return enc_i(kSystem, 0x7, in.rd, in.rs1, 0) | place(static_cast<u32>(in.imm), 12, 20);
    // Xdma two-source forms use an R-type layout in the custom-1 space.
    case Mnemonic::kDmStr:
      return place(in.rs2, 5, 20) | place(in.rs1, 5, 15) | place(0x4u, 3, 12) |
             kCustom1;
    case Mnemonic::kDmCpy2d:
      return place(in.rs2, 5, 20) | place(in.rs1, 5, 15) | place(0x6u, 3, 12) |
             place(in.rd, 5, 7) | kCustom1;
    default:
      break;
  }

  switch (mi.fmt) {
    case Format::kR: {
      if (mi.exec == ExecClass::kIntAlu || mi.exec == ExecClass::kIntMul ||
          mi.exec == ExecClass::kIntDiv) {
        const RSpec s = r_spec(in.mn);
        return place(s.funct7, 7, 25) | place(in.rs2, 5, 20) |
               place(in.rs1, 5, 15) | place(s.funct3, 3, 12) |
               place(in.rd, 5, 7) | s.opcode;
      }
      const FpSpec s = fp_spec(in.mn);
      const u32 funct7 = (s.funct5 << 2) | s.fmt;
      const u32 f3 = s.f3 >= 0 ? static_cast<u32>(s.f3) : in.rm;
      const u32 rs2 = s.rs2_is_reg ? in.rs2 : s.rs2_field;
      return place(funct7, 7, 25) | place(rs2, 5, 20) | place(in.rs1, 5, 15) |
             place(f3, 3, 12) | place(in.rd, 5, 7) | kOpFp;
    }
    case Format::kR4: {
      u32 opcode = 0;
      switch (in.mn) {
        case Mnemonic::kFmaddS: case Mnemonic::kFmaddD: opcode = kMadd; break;
        case Mnemonic::kFmsubS: case Mnemonic::kFmsubD: opcode = kMsub; break;
        case Mnemonic::kFnmsubS: case Mnemonic::kFnmsubD: opcode = kNmsub; break;
        case Mnemonic::kFnmaddS: case Mnemonic::kFnmaddD: opcode = kNmadd; break;
        default: throw std::logic_error("encode: bad R4 mnemonic");
      }
      const u32 fmt = mi.is_single ? 0u : 1u;
      return place(in.rs3, 5, 27) | place(fmt, 2, 25) | place(in.rs2, 5, 20) |
             place(in.rs1, 5, 15) | place(in.rm, 3, 12) | place(in.rd, 5, 7) |
             opcode;
    }
    case Format::kI: {
      const ISpec s = i_spec(in.mn);
      return enc_i(s.opcode, s.funct3, in.rd, in.rs1, in.imm);
    }
    default:
      throw std::logic_error(std::string("encode: unhandled mnemonic ") +
                             std::string(name(in.mn)));
  }
}

Instr make_r(Mnemonic mn, u8 rd, u8 rs1, u8 rs2, u8 rm) {
  Instr i;
  i.mn = mn; i.rd = rd; i.rs1 = rs1; i.rs2 = rs2; i.rm = rm;
  i.raw = encode(i);
  return i;
}

Instr make_r4(Mnemonic mn, u8 rd, u8 rs1, u8 rs2, u8 rs3, u8 rm) {
  Instr i;
  i.mn = mn; i.rd = rd; i.rs1 = rs1; i.rs2 = rs2; i.rs3 = rs3; i.rm = rm;
  i.raw = encode(i);
  return i;
}

Instr make_i(Mnemonic mn, u8 rd, u8 rs1, i32 imm) {
  Instr i;
  i.mn = mn; i.rd = rd; i.rs1 = rs1; i.imm = imm;
  i.raw = encode(i);
  return i;
}

Instr make_s(Mnemonic mn, u8 rs1, u8 rs2, i32 imm) {
  Instr i;
  i.mn = mn; i.rs1 = rs1; i.rs2 = rs2; i.imm = imm;
  i.raw = encode(i);
  return i;
}

Instr make_b(Mnemonic mn, u8 rs1, u8 rs2, i32 offset) {
  Instr i;
  i.mn = mn; i.rs1 = rs1; i.rs2 = rs2; i.imm = offset;
  i.raw = encode(i);
  return i;
}

Instr make_u(Mnemonic mn, u8 rd, i32 imm20) {
  Instr i;
  i.mn = mn; i.rd = rd; i.imm = imm20;
  i.raw = encode(i);
  return i;
}

Instr make_j(Mnemonic mn, u8 rd, i32 offset) {
  Instr i;
  i.mn = mn; i.rd = rd; i.imm = offset;
  i.raw = encode(i);
  return i;
}

Instr make_csr(Mnemonic mn, u8 rd, u8 rs1_or_zimm, u32 csr_addr) {
  Instr i;
  i.mn = mn; i.rd = rd; i.rs1 = rs1_or_zimm; i.imm = static_cast<i32>(csr_addr);
  i.raw = encode(i);
  return i;
}

} // namespace sch::isa
