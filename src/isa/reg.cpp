#include "isa/reg.hpp"

#include <charconv>

namespace sch::isa {
namespace {

constexpr std::array<std::string_view, kNumIntRegs> kIntNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

constexpr std::array<std::string_view, kNumFpRegs> kFpNames = {
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6",  "ft7",
    "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4",  "fa5",
    "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6",  "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11"};

std::optional<u8> parse_numeric(std::string_view name, char prefix) {
  if (name.size() < 2 || name.size() > 3 || name[0] != prefix) return std::nullopt;
  unsigned value = 0;
  const char* begin = name.data() + 1;
  const char* end = name.data() + name.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || value >= 32) return std::nullopt;
  return static_cast<u8>(value);
}

} // namespace

std::string_view int_reg_name(u8 r) { return kIntNames.at(r); }
std::string_view fp_reg_name(u8 r) { return kFpNames.at(r); }

std::optional<u8> parse_int_reg(std::string_view name) {
  for (u8 i = 0; i < kNumIntRegs; ++i) {
    if (kIntNames[i] == name) return i;
  }
  if (name == "fp") return u8{8}; // alias for s0
  return parse_numeric(name, 'x');
}

std::optional<u8> parse_fp_reg(std::string_view name) {
  for (u8 i = 0; i < kNumFpRegs; ++i) {
    if (kFpNames[i] == name) return i;
  }
  return parse_numeric(name, 'f');
}

} // namespace sch::isa
