// Functional instruction-set simulator ("spike-style" golden reference).
// Executes one instruction per step with full architectural semantics of the
// custom extensions (SSR streams, FREP hardware loops, scalar chaining), but
// no timing. The cycle-level simulator is cross-validated against it.
#pragma once

#include <string>

#include "asm/program.hpp"
#include "common/types.hpp"
#include "core/arch_chain.hpp"
#include "iss/arch_state.hpp"
#include "mem/memory.hpp"
#include "ssr/ssr_file.hpp"

namespace sch {

struct IssConfig {
  u64 max_steps = 200'000'000;
};

class Iss {
 public:
  /// The ISS keeps its own copy of the program (so temporaries are safe);
  /// `memory` must outlive the ISS.
  Iss(Program program, Memory& memory, const IssConfig& config = {});

  /// Execute one instruction. Returns false when halted.
  bool step();

  /// Run until halt (ecall/ebreak/off-text/error/step budget).
  HaltReason run();

  [[nodiscard]] const ArchState& state() const { return state_; }
  [[nodiscard]] ArchState& state() { return state_; }
  [[nodiscard]] HaltReason halt_reason() const { return halt_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] u64 instret() const { return instret_; }
  [[nodiscard]] const ssr::FunctionalSsrFile& ssrs() const { return ssrs_; }
  [[nodiscard]] const chain::ArchChainFile& chains() const { return chains_; }

 private:
  void exec(const isa::Instr& in);
  void halt_error(const std::string& message);

  /// Operand read honoring SSR mapping and chaining FIFO semantics.
  u64 read_fp(u8 reg);
  /// Destination write honoring SSR mapping and chaining FIFO semantics.
  void write_fp(u8 reg, u64 value);

  u32 csr_read(u32 addr);
  void csr_write(u32 addr, u32 value);

  void exec_frep(const isa::Instr& in);

  Program prog_;
  Memory& mem_;
  IssConfig cfg_;
  ArchState state_;
  ssr::FunctionalSsrFile ssrs_;
  chain::ArchChainFile chains_;
  HaltReason halt_ = HaltReason::kNone;
  std::string error_;
  u64 instret_ = 0;
  bool in_frep_ = false;
};

} // namespace sch
