// Functional instruction-set simulator ("spike-style" golden reference).
// Executes one instruction per step with full architectural semantics of the
// custom extensions (SSR streams, FREP hardware loops, scalar chaining), but
// no timing. The cycle-level simulator is cross-validated against it.
//
// Execution dispatches through the program's predecoded handler records
// (isa::PredecodedInstr): mnemonic specials, metadata lookups and immediate
// shifts are resolved once at load instead of on every dynamic instruction.
#pragma once

#include <string>
#include <vector>

#include "asm/program.hpp"
#include "common/types.hpp"
#include "core/arch_chain.hpp"
#include "dma/dma.hpp"
#include "iss/arch_state.hpp"
#include "mem/memory.hpp"
#include "ssr/ssr_file.hpp"

namespace sch {

struct IssConfig {
  u64 max_steps = 200'000'000;
  /// Host wall-clock budget in milliseconds (0 = unlimited). Checked every
  /// few thousand steps by run(); exceeding it halts with kMaxSteps and a
  /// "wall-clock budget exhausted" error (mirrors sim::SimConfig::max_wall_ms).
  u64 max_wall_ms = 0;
  /// Value of the mhartid CSR (multi-core validation runs one ISS per hart).
  u32 hartid = 0;
  /// Value of the mnumharts CSR (cluster core count the program sees).
  u32 num_harts = 1;
  /// Load the program's data image in the constructor. Engines running
  /// several harts sequentially against one Memory preload every image once
  /// and disable this, so hart N does not clobber hart N-1's output.
  bool load_image = true;
  /// run() executes through the threaded superblock loop (computed-goto
  /// dispatch, per-block instead of per-instruction validation; see
  /// Iss::run_burst). Architecturally invisible -- identical halt state,
  /// instret and memory image; the fast-path-equivalence suite pins the two
  /// paths against each other. Compilers without label-address support fall
  /// back to the handler table regardless of this flag.
  bool fast_dispatch = true;
};

class Iss {
 public:
  /// The ISS keeps its own copy of the program (so temporaries are safe);
  /// `memory` must outlive the ISS.
  Iss(Program program, Memory& memory, const IssConfig& config = {});

  /// Execute one instruction. Returns false when halted.
  bool step();

  /// Run until halt (ecall/ebreak/off-text/error/step budget).
  HaltReason run();

  [[nodiscard]] const ArchState& state() const { return state_; }
  [[nodiscard]] ArchState& state() { return state_; }
  [[nodiscard]] HaltReason halt_reason() const { return halt_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] u64 instret() const { return instret_; }
  [[nodiscard]] const ssr::FunctionalSsrFile& ssrs() const { return ssrs_; }
  [[nodiscard]] const chain::ArchChainFile& chains() const { return chains_; }

 private:
  using Handler = void (Iss::*)(const isa::Instr&, const isa::PredecodedInstr&);
  static const Handler kHandlers[static_cast<usize>(isa::ExecHandler::kCount)];

  /// Dispatch one predecoded instruction through the handler table.
  void exec(u32 idx) {
    const isa::PredecodedInstr& pre = prog_.pre[idx];
    (this->*kHandlers[static_cast<usize>(pre.handler)])(prog_.instrs[idx], pre);
  }

  void halt_error(const std::string& message);

  /// Operand read honoring SSR mapping and chaining FIFO semantics.
  u64 read_fp(u8 reg);
  /// Destination write honoring SSR mapping and chaining FIFO semantics.
  void write_fp(u8 reg, u64 value);

  u32 csr_read(u32 addr);
  void csr_write(u32 addr, u32 value);

  // Handler-table targets (one per isa::ExecHandler, specials pre-resolved).
  void h_invalid(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_lui(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_auipc(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_alu_imm(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_alu_reg(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_mul_div(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_jal(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_jalr(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_branch(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_load(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_load_s8(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_load_s16(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_store(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_csr(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_ecall(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_ebreak(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_fence(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_fp_load(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_fp_store(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_fp_compute(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_fp_to_int(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_fp_from_int(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_frep(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_scfg_w(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_scfg_r(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_dma_src(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_dma_dst(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_dma_str(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_dma_cpy(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_dma_cpy2d(const isa::Instr& in, const isa::PredecodedInstr& pre);
  void h_dma_stat(const isa::Instr& in, const isa::PredecodedInstr& pre);

  /// Run a frep whose body was statically validated at predecode time
  /// (preflag::kFrepBodyOk); re-walks the body for the exact diagnostic
  /// when the flag says the body is malformed.
  void exec_frep(const isa::Instr& in);

  /// Threaded superblock executor: run until halt or `instret_ >= stop_at`,
  /// checked once per superblock instead of once per instruction. run()
  /// slices bursts at the wall-clock/step-budget boundaries so the budget
  /// semantics match the step() loop exactly.
  void run_burst(u64 stop_at);

  Program prog_;
  Memory& mem_;
  IssConfig cfg_;
  ArchState state_;
  ssr::FunctionalSsrFile ssrs_;
  chain::ArchChainFile chains_;
  dma::FunctionalDma dma_;
  HaltReason halt_ = HaltReason::kNone;
  std::string error_;
  u64 instret_ = 0;
  bool in_frep_ = false;
};

} // namespace sch
