#include "iss/iss.hpp"

#include <sstream>

#include "isa/csr.hpp"
#include "isa/disasm.hpp"
#include "iss/exec_semantics.hpp"

namespace sch {

using isa::ExecClass;
using isa::Instr;
using isa::Mnemonic;

Iss::Iss(Program program, Memory& memory, const IssConfig& config)
    : prog_(std::move(program)), mem_(memory), cfg_(config) {
  state_.pc = prog_.text_base;
  mem_.load_image(prog_.data_base, prog_.data);
}

void Iss::halt_error(const std::string& message) {
  halt_ = HaltReason::kError;
  std::ostringstream os;
  os << "pc=0x" << std::hex << state_.pc << std::dec << ": " << message;
  error_ = os.str();
}

u64 Iss::read_fp(u8 reg) {
  if (ssrs_.maps(reg)) {
    auto v = ssrs_.read(reg, mem_);
    if (!v) {
      halt_error("read of SSR register " + std::string(isa::fp_reg_name(reg)) +
                 " with no active/remaining read stream");
      return 0;
    }
    return *v;
  }
  if (chains_.enabled(reg)) {
    auto v = chains_.pop(reg);
    if (!v) {
      halt_error("chain FIFO underflow on " + std::string(isa::fp_reg_name(reg)));
      return 0;
    }
    return *v;
  }
  return state_.f[reg];
}

void Iss::write_fp(u8 reg, u64 value) {
  if (ssrs_.maps(reg)) {
    if (!ssrs_.write(reg, mem_, value)) {
      halt_error("write to SSR register " + std::string(isa::fp_reg_name(reg)) +
                 " with no active/remaining write stream");
    }
    return;
  }
  if (chains_.enabled(reg)) {
    chains_.push(reg, value);
    return;
  }
  state_.f[reg] = value;
}

u32 Iss::csr_read(u32 addr) {
  switch (addr) {
    case isa::csr::kFflags: return state_.fcsr & 0x1F;
    case isa::csr::kFrm: return (state_.fcsr >> 5) & 0x7;
    case isa::csr::kFcsr: return state_.fcsr;
    case isa::csr::kCycle:
    case isa::csr::kMcycle:
      // The ISS has no cycle notion; expose instret as a monotonic proxy.
      return static_cast<u32>(instret_);
    case isa::csr::kInstret:
    case isa::csr::kMinstret:
      return static_cast<u32>(instret_);
    case isa::csr::kMhartid: return 0;
    case isa::csr::kSsrEnable: return ssrs_.enabled() ? 1u : 0u;
    case isa::csr::kChainMask: return chains_.mask().value();
    default: return 0;
  }
}

void Iss::csr_write(u32 addr, u32 value) {
  switch (addr) {
    case isa::csr::kFflags:
      state_.fcsr = (state_.fcsr & ~0x1Fu) | (value & 0x1Fu);
      return;
    case isa::csr::kFrm:
      state_.fcsr = (state_.fcsr & ~0xE0u) | ((value & 0x7u) << 5);
      return;
    case isa::csr::kFcsr:
      state_.fcsr = value & 0xFFu;
      return;
    case isa::csr::kSsrEnable:
      ssrs_.set_enabled((value & 1u) != 0);
      return;
    case isa::csr::kChainMask: {
      // Disabling a register latches the oldest unpopped element.
      for (const auto& e : chains_.set_mask(value)) {
        if (e.latched_value) state_.f[e.reg] = *e.latched_value;
      }
      return;
    }
    default:
      return; // unimplemented CSRs write as no-ops
  }
}

void Iss::exec_frep(const Instr& in) {
  if (in_frep_) {
    halt_error("nested frep");
    return;
  }
  const u32 reps = state_.read_x(in.rs1) + 1;
  const u32 body = static_cast<u32>(in.imm);
  if (body == 0) {
    halt_error("frep with empty body");
    return;
  }
  const Addr body_base = state_.pc + 4;
  // Validate the body: FP-domain instructions only.
  for (u32 i = 0; i < body; ++i) {
    const Instr* bi = prog_.fetch(body_base + 4 * i);
    if (bi == nullptr || !bi->valid() || !bi->meta().fp_domain) {
      halt_error("frep body contains a non-FP instruction at offset " +
                 std::to_string(i));
      return;
    }
    if (bi->mn == Mnemonic::kFrepO || bi->mn == Mnemonic::kFrepI) {
      halt_error("nested frep");
      return;
    }
  }
  in_frep_ = true;
  const Addr saved_next = body_base + 4 * body;
  if (in.mn == Mnemonic::kFrepO) {
    for (u32 r = 0; r < reps && halt_ == HaltReason::kNone; ++r) {
      for (u32 i = 0; i < body && halt_ == HaltReason::kNone; ++i) {
        state_.pc = body_base + 4 * i;
        exec(*prog_.fetch(state_.pc));
        ++instret_;
      }
    }
  } else { // frep.i: repeat each instruction individually
    for (u32 i = 0; i < body && halt_ == HaltReason::kNone; ++i) {
      state_.pc = body_base + 4 * i;
      for (u32 r = 0; r < reps && halt_ == HaltReason::kNone; ++r) {
        exec(*prog_.fetch(state_.pc));
        ++instret_;
      }
    }
  }
  in_frep_ = false;
  state_.pc = saved_next - 4; // step() adds 4
}

void Iss::exec(const Instr& in) {
  const isa::MnemonicInfo& mi = in.meta();
  switch (mi.exec) {
    case ExecClass::kIntAlu: {
      if (in.mn == Mnemonic::kLui) {
        state_.write_x(in.rd, static_cast<u32>(in.imm) << 12);
        return;
      }
      if (in.mn == Mnemonic::kAuipc) {
        state_.write_x(in.rd, state_.pc + (static_cast<u32>(in.imm) << 12));
        return;
      }
      const u32 a = state_.read_x(in.rs1);
      const u32 b = mi.fmt == isa::Format::kI ? static_cast<u32>(in.imm)
                                              : state_.read_x(in.rs2);
      state_.write_x(in.rd, exec::int_op(in.mn, a, b));
      return;
    }
    case ExecClass::kIntMul:
    case ExecClass::kIntDiv:
      state_.write_x(in.rd, exec::int_op(in.mn, state_.read_x(in.rs1),
                                         state_.read_x(in.rs2)));
      return;
    case ExecClass::kJump: {
      const u32 link = state_.pc + 4;
      if (in.mn == Mnemonic::kJal) {
        state_.pc = state_.pc + static_cast<u32>(in.imm) - 4;
      } else {
        const u32 target = (state_.read_x(in.rs1) + static_cast<u32>(in.imm)) & ~1u;
        state_.pc = target - 4;
      }
      state_.write_x(in.rd, link);
      return;
    }
    case ExecClass::kBranch:
      if (exec::branch_taken(in.mn, state_.read_x(in.rs1), state_.read_x(in.rs2))) {
        state_.pc = state_.pc + static_cast<u32>(in.imm) - 4;
      }
      return;
    case ExecClass::kLoad: {
      const Addr addr = state_.read_x(in.rs1) + static_cast<u32>(in.imm);
      if (!mem_.valid(addr, mi.mem_bytes)) {
        halt_error("load from unmapped address");
        return;
      }
      u64 v = mem_.load(addr, mi.mem_bytes);
      if (in.mn == Mnemonic::kLb) v = static_cast<u32>(static_cast<i32>(static_cast<i8>(v)));
      if (in.mn == Mnemonic::kLh) v = static_cast<u32>(static_cast<i32>(static_cast<i16>(v)));
      state_.write_x(in.rd, static_cast<u32>(v));
      return;
    }
    case ExecClass::kStore: {
      const Addr addr = state_.read_x(in.rs1) + static_cast<u32>(in.imm);
      if (!mem_.valid(addr, mi.mem_bytes)) {
        halt_error("store to unmapped address");
        return;
      }
      mem_.store(addr, state_.read_x(in.rs2), mi.mem_bytes);
      return;
    }
    case ExecClass::kFpLoad: {
      const Addr addr = state_.read_x(in.rs1) + static_cast<u32>(in.imm);
      if (!mem_.valid(addr, mi.mem_bytes)) {
        halt_error("fp load from unmapped address");
        return;
      }
      const u64 raw = mem_.load(addr, mi.mem_bytes);
      write_fp(in.rd, mi.mem_bytes == 4 ? exec::box32(static_cast<u32>(raw)) : raw);
      return;
    }
    case ExecClass::kFpStore: {
      const Addr addr = state_.read_x(in.rs1) + static_cast<u32>(in.imm);
      if (!mem_.valid(addr, mi.mem_bytes)) {
        halt_error("fp store to unmapped address");
        return;
      }
      const u64 v = read_fp(in.rs2);
      mem_.store(addr, mi.mem_bytes == 4 ? exec::unbox32(v) : v, mi.mem_bytes);
      return;
    }
    case ExecClass::kFpMac:
    case ExecClass::kFpDiv:
    case ExecClass::kFpSqrt: {
      // An instruction naming the same stream/chain register in several
      // operand slots pops it once and feeds all slots (Snitch semantics;
      // matches the cycle-level model).
      u8 seen[3];
      u64 vals[3];
      u32 n = 0;
      auto read_once = [&](u8 r) -> u64 {
        for (u32 i = 0; i < n; ++i) {
          if (seen[i] == r) return vals[i];
        }
        seen[n] = r;
        vals[n] = read_fp(r);
        return vals[n++];
      };
      const u64 a = read_once(in.rs1);
      const u64 b = mi.rs2 == isa::RegClass::kFp ? read_once(in.rs2) : 0;
      const u64 c = mi.rs3 == isa::RegClass::kFp ? read_once(in.rs3) : 0;
      if (halt_ != HaltReason::kNone) return;
      write_fp(in.rd, exec::fp_compute(in.mn, a, b, c));
      return;
    }
    case ExecClass::kFpCmp:
    case ExecClass::kFpCvtF2I: {
      const u64 a = read_fp(in.rs1);
      const u64 b = mi.rs2 == isa::RegClass::kFp
                        ? (in.rs2 == in.rs1 ? a : read_fp(in.rs2))
                        : 0;
      if (halt_ != HaltReason::kNone) return;
      state_.write_x(in.rd, exec::fp_to_int(in.mn, a, b));
      return;
    }
    case ExecClass::kFpCvtI2F:
      write_fp(in.rd, exec::int_to_fp(in.mn, state_.read_x(in.rs1)));
      return;
    case ExecClass::kCsr: {
      const u32 addr = static_cast<u32>(in.imm);
      const u32 old = csr_read(addr);
      u32 operand = 0;
      switch (in.mn) {
        case Mnemonic::kCsrrw: case Mnemonic::kCsrrs: case Mnemonic::kCsrrc:
          operand = state_.read_x(in.rs1);
          break;
        default:
          operand = in.rs1; // zimm
      }
      switch (in.mn) {
        case Mnemonic::kCsrrw: case Mnemonic::kCsrrwi:
          csr_write(addr, operand);
          break;
        case Mnemonic::kCsrrs: case Mnemonic::kCsrrsi:
          if (operand != 0) csr_write(addr, old | operand);
          break;
        default:
          if (operand != 0) csr_write(addr, old & ~operand);
      }
      state_.write_x(in.rd, old);
      return;
    }
    case ExecClass::kSystem:
      if (in.mn == Mnemonic::kEcall) { halt_ = HaltReason::kEcall; return; }
      if (in.mn == Mnemonic::kEbreak) { halt_ = HaltReason::kEbreak; return; }
      return; // fence: no-op in a single-hart model
    case ExecClass::kFrep:
      exec_frep(in);
      return;
    case ExecClass::kScfg: {
      if (in.mn == Mnemonic::kScfgw) {
        const Status s = ssrs_.cfg_write(in.imm, state_.read_x(in.rs1));
        if (!s.is_ok()) halt_error(s.message());
      } else {
        state_.write_x(in.rd, ssrs_.cfg_read(in.imm));
      }
      return;
    }
  }
  halt_error("unhandled instruction: " + isa::disassemble(in));
}

bool Iss::step() {
  if (halt_ != HaltReason::kNone) return false;
  const Instr* in = prog_.fetch(state_.pc);
  if (in == nullptr) {
    halt_ = HaltReason::kOffText;
    return false;
  }
  if (!in->valid()) {
    halt_error("illegal instruction encoding 0x" + std::to_string(in->raw));
    return false;
  }
  exec(*in);
  ++instret_;
  if (halt_ != HaltReason::kNone) return false;
  state_.pc += 4;
  return true;
}

HaltReason Iss::run() {
  while (halt_ == HaltReason::kNone) {
    if (instret_ >= cfg_.max_steps) {
      halt_ = HaltReason::kMaxSteps;
      break;
    }
    step();
  }
  return halt_;
}

} // namespace sch
