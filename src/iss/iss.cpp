#include "iss/iss.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <sstream>

#include "isa/csr.hpp"
#include "isa/disasm.hpp"
#include "iss/exec_semantics.hpp"

namespace sch {

using isa::ExecHandler;
using isa::Instr;
using isa::Mnemonic;
using isa::PredecodedInstr;

// Threaded dispatch needs the GNU address-of-label extension; elsewhere
// run() falls back to the portable handler-table step loop.
#if defined(__GNUC__) || defined(__clang__)
#define SCH_ISS_THREADED_DISPATCH 1
#else
#define SCH_ISS_THREADED_DISPATCH 0
#endif

Iss::Iss(Program program, Memory& memory, const IssConfig& config)
    : prog_(std::move(program)), mem_(memory), cfg_(config) {
  prog_.ensure_predecoded();
  state_.pc = prog_.text_base;
  if (cfg_.load_image) mem_.load_image(prog_.data_base, prog_.data);
}

void Iss::halt_error(const std::string& message) {
  halt_ = HaltReason::kError;
  std::ostringstream os;
  os << "pc=0x" << std::hex << state_.pc << std::dec << ": " << message;
  error_ = os.str();
}

u64 Iss::read_fp(u8 reg) {
  if (ssrs_.maps(reg)) {
    auto v = ssrs_.read(reg, mem_);
    if (!v) {
      halt_error("read of SSR register " + std::string(isa::fp_reg_name(reg)) +
                 " with no active/remaining read stream");
      return 0;
    }
    return *v;
  }
  if (chains_.enabled(reg)) {
    auto v = chains_.pop(reg);
    if (!v) {
      halt_error("chain FIFO underflow on " + std::string(isa::fp_reg_name(reg)));
      return 0;
    }
    return *v;
  }
  return state_.f[reg];
}

void Iss::write_fp(u8 reg, u64 value) {
  if (ssrs_.maps(reg)) {
    if (!ssrs_.write(reg, mem_, value)) {
      halt_error("write to SSR register " + std::string(isa::fp_reg_name(reg)) +
                 " with no active/remaining write stream");
    }
    return;
  }
  if (chains_.enabled(reg)) {
    chains_.push(reg, value);
    return;
  }
  state_.f[reg] = value;
}

u32 Iss::csr_read(u32 addr) {
  switch (addr) {
    case isa::csr::kFflags: return state_.fcsr & 0x1F;
    case isa::csr::kFrm: return (state_.fcsr >> 5) & 0x7;
    case isa::csr::kFcsr: return state_.fcsr;
    case isa::csr::kCycle:
    case isa::csr::kMcycle:
      // The ISS has no cycle notion; expose instret as a monotonic proxy.
      return static_cast<u32>(instret_);
    case isa::csr::kInstret:
    case isa::csr::kMinstret:
      return static_cast<u32>(instret_);
    case isa::csr::kMhartid: return cfg_.hartid;
    case isa::csr::kMnumharts: return cfg_.num_harts;
    case isa::csr::kSsrEnable: return ssrs_.enabled() ? 1u : 0u;
    case isa::csr::kChainMask: return chains_.mask().value();
    default: return 0;
  }
}

void Iss::csr_write(u32 addr, u32 value) {
  switch (addr) {
    case isa::csr::kFflags:
      state_.fcsr = (state_.fcsr & ~0x1Fu) | (value & 0x1Fu);
      return;
    case isa::csr::kFrm:
      state_.fcsr = (state_.fcsr & ~0xE0u) | ((value & 0x7u) << 5);
      return;
    case isa::csr::kFcsr:
      state_.fcsr = value & 0xFFu;
      return;
    case isa::csr::kSsrEnable:
      ssrs_.set_enabled((value & 1u) != 0);
      return;
    case isa::csr::kChainMask: {
      // Disabling a register latches the oldest unpopped element.
      for (const auto& e : chains_.set_mask(value)) {
        if (e.latched_value) state_.f[e.reg] = *e.latched_value;
      }
      return;
    }
    default:
      return; // unimplemented CSRs write as no-ops
  }
}

// --- handler-table targets --------------------------------------------------

void Iss::h_invalid(const Instr& in, const PredecodedInstr&) {
  halt_error("unhandled instruction: " + isa::disassemble(in));
}

void Iss::h_lui(const Instr& in, const PredecodedInstr& pre) {
  state_.write_x(in.rd, static_cast<u32>(pre.aux));
}

void Iss::h_auipc(const Instr& in, const PredecodedInstr& pre) {
  state_.write_x(in.rd, state_.pc + static_cast<u32>(pre.aux));
}

void Iss::h_alu_imm(const Instr& in, const PredecodedInstr& pre) {
  state_.write_x(in.rd, exec::int_op(in.mn, state_.read_x(in.rs1),
                                     static_cast<u32>(pre.aux)));
}

void Iss::h_alu_reg(const Instr& in, const PredecodedInstr&) {
  state_.write_x(in.rd, exec::int_op(in.mn, state_.read_x(in.rs1),
                                     state_.read_x(in.rs2)));
}

void Iss::h_mul_div(const Instr& in, const PredecodedInstr&) {
  state_.write_x(in.rd, exec::int_op(in.mn, state_.read_x(in.rs1),
                                     state_.read_x(in.rs2)));
}

void Iss::h_jal(const Instr& in, const PredecodedInstr& pre) {
  const u32 link = state_.pc + 4;
  state_.pc = state_.pc + static_cast<u32>(pre.aux) - 4;
  state_.write_x(in.rd, link);
}

void Iss::h_jalr(const Instr& in, const PredecodedInstr& pre) {
  const u32 link = state_.pc + 4;
  const u32 target = (state_.read_x(in.rs1) + static_cast<u32>(pre.aux)) & ~1u;
  state_.pc = target - 4;
  state_.write_x(in.rd, link);
}

void Iss::h_branch(const Instr& in, const PredecodedInstr& pre) {
  if (exec::branch_taken(in.mn, state_.read_x(in.rs1), state_.read_x(in.rs2))) {
    state_.pc = state_.pc + static_cast<u32>(pre.aux) - 4;
  }
}

void Iss::h_load(const Instr& in, const PredecodedInstr& pre) {
  const Addr addr = state_.read_x(in.rs1) + static_cast<u32>(pre.aux);
  if (!mem_.valid(addr, pre.mem_bytes)) {
    halt_error("load from unmapped address");
    return;
  }
  state_.write_x(in.rd, static_cast<u32>(mem_.load(addr, pre.mem_bytes)));
}

void Iss::h_load_s8(const Instr& in, const PredecodedInstr& pre) {
  const Addr addr = state_.read_x(in.rs1) + static_cast<u32>(pre.aux);
  if (!mem_.valid(addr, 1)) {
    halt_error("load from unmapped address");
    return;
  }
  const auto v = static_cast<i8>(mem_.load(addr, 1));
  state_.write_x(in.rd, static_cast<u32>(static_cast<i32>(v)));
}

void Iss::h_load_s16(const Instr& in, const PredecodedInstr& pre) {
  const Addr addr = state_.read_x(in.rs1) + static_cast<u32>(pre.aux);
  if (!mem_.valid(addr, 2)) {
    halt_error("load from unmapped address");
    return;
  }
  const auto v = static_cast<i16>(mem_.load(addr, 2));
  state_.write_x(in.rd, static_cast<u32>(static_cast<i32>(v)));
}

void Iss::h_store(const Instr& in, const PredecodedInstr& pre) {
  const Addr addr = state_.read_x(in.rs1) + static_cast<u32>(pre.aux);
  if (!mem_.valid(addr, pre.mem_bytes)) {
    halt_error("store to unmapped address");
    return;
  }
  mem_.store(addr, state_.read_x(in.rs2), pre.mem_bytes);
}

void Iss::h_csr(const Instr& in, const PredecodedInstr& pre) {
  const u32 addr = static_cast<u32>(pre.aux);
  const u32 old = csr_read(addr);
  u32 operand = 0;
  switch (in.mn) {
    case Mnemonic::kCsrrw: case Mnemonic::kCsrrs: case Mnemonic::kCsrrc:
      operand = state_.read_x(in.rs1);
      break;
    default:
      operand = in.rs1; // zimm
  }
  switch (in.mn) {
    case Mnemonic::kCsrrw: case Mnemonic::kCsrrwi:
      csr_write(addr, operand);
      break;
    case Mnemonic::kCsrrs: case Mnemonic::kCsrrsi:
      if (operand != 0) csr_write(addr, old | operand);
      break;
    default:
      if (operand != 0) csr_write(addr, old & ~operand);
  }
  state_.write_x(in.rd, old);
}

void Iss::h_ecall(const Instr&, const PredecodedInstr&) {
  halt_ = HaltReason::kEcall;
}

void Iss::h_ebreak(const Instr&, const PredecodedInstr&) {
  halt_ = HaltReason::kEbreak;
}

void Iss::h_fence(const Instr&, const PredecodedInstr&) {
  // fence: no-op in a single-hart model
}

void Iss::h_fp_load(const Instr& in, const PredecodedInstr& pre) {
  const Addr addr = state_.read_x(in.rs1) + static_cast<u32>(pre.aux);
  if (!mem_.valid(addr, pre.mem_bytes)) {
    halt_error("fp load from unmapped address");
    return;
  }
  const u64 raw = mem_.load(addr, pre.mem_bytes);
  write_fp(in.rd, pre.mem_bytes == 4 ? exec::box32(static_cast<u32>(raw)) : raw);
}

void Iss::h_fp_store(const Instr& in, const PredecodedInstr& pre) {
  const Addr addr = state_.read_x(in.rs1) + static_cast<u32>(pre.aux);
  if (!mem_.valid(addr, pre.mem_bytes)) {
    halt_error("fp store to unmapped address");
    return;
  }
  const u64 v = read_fp(in.rs2);
  mem_.store(addr, pre.mem_bytes == 4 ? exec::unbox32(v) : v, pre.mem_bytes);
}

void Iss::h_fp_compute(const Instr& in, const PredecodedInstr& pre) {
  // An instruction naming the same stream/chain register in several operand
  // slots pops it once and feeds all slots (Snitch semantics; matches the
  // cycle-level model).
  const isa::MnemonicInfo& mi = *pre.mi;
  u8 seen[3];
  u64 vals[3];
  u32 n = 0;
  auto read_once = [&](u8 r) -> u64 {
    for (u32 i = 0; i < n; ++i) {
      if (seen[i] == r) return vals[i];
    }
    seen[n] = r;
    vals[n] = read_fp(r);
    return vals[n++];
  };
  const u64 a = read_once(in.rs1);
  const u64 b = mi.rs2 == isa::RegClass::kFp ? read_once(in.rs2) : 0;
  const u64 c = mi.rs3 == isa::RegClass::kFp ? read_once(in.rs3) : 0;
  if (halt_ != HaltReason::kNone) return;
  write_fp(in.rd, exec::fp_compute(in.mn, a, b, c));
}

void Iss::h_fp_to_int(const Instr& in, const PredecodedInstr& pre) {
  const u64 a = read_fp(in.rs1);
  const u64 b = pre.mi->rs2 == isa::RegClass::kFp
                    ? (in.rs2 == in.rs1 ? a : read_fp(in.rs2))
                    : 0;
  if (halt_ != HaltReason::kNone) return;
  state_.write_x(in.rd, exec::fp_to_int(in.mn, a, b));
}

void Iss::h_fp_from_int(const Instr& in, const PredecodedInstr&) {
  write_fp(in.rd, exec::int_to_fp(in.mn, state_.read_x(in.rs1)));
}

void Iss::h_frep(const Instr& in, const PredecodedInstr&) {
  exec_frep(in);
}

void Iss::h_scfg_w(const Instr& in, const PredecodedInstr&) {
  const Status s = ssrs_.cfg_write(in.imm, state_.read_x(in.rs1));
  if (!s.is_ok()) halt_error(s.message());
}

void Iss::h_scfg_r(const Instr& in, const PredecodedInstr&) {
  state_.write_x(in.rd, ssrs_.cfg_read(in.imm));
}

// Xdma: the functional model copies instantly at issue; dmstat reports all
// transfers completed, which matches the cycle engine at every
// well-synchronized poll (see dma/dma.hpp).

void Iss::h_dma_src(const Instr& in, const PredecodedInstr&) {
  dma_.set_src(state_.read_x(in.rs1));
}

void Iss::h_dma_dst(const Instr& in, const PredecodedInstr&) {
  dma_.set_dst(state_.read_x(in.rs1));
}

void Iss::h_dma_str(const Instr& in, const PredecodedInstr&) {
  dma_.set_strides(static_cast<i32>(state_.read_x(in.rs1)),
                   static_cast<i32>(state_.read_x(in.rs2)));
}

void Iss::h_dma_cpy(const Instr& in, const PredecodedInstr&) {
  const Result<u32> id = dma_.copy(mem_, state_.read_x(in.rs1), 1);
  if (!id.ok()) {
    halt_error(id.status().message());
    return;
  }
  state_.write_x(in.rd, id.value());
}

void Iss::h_dma_cpy2d(const Instr& in, const PredecodedInstr&) {
  const Result<u32> id =
      dma_.copy(mem_, state_.read_x(in.rs1), state_.read_x(in.rs2));
  if (!id.ok()) {
    halt_error(id.status().message());
    return;
  }
  state_.write_x(in.rd, id.value());
}

void Iss::h_dma_stat(const Instr& in, const PredecodedInstr& pre) {
  const u32 sel = static_cast<u32>(pre.aux);
  state_.write_x(in.rd, sel == 0 ? dma_.completed() : dma_.outstanding());
}

const Iss::Handler Iss::kHandlers[static_cast<usize>(ExecHandler::kCount)] = {
    &Iss::h_invalid,     // kInvalid
    &Iss::h_lui,         // kLui
    &Iss::h_auipc,       // kAuipc
    &Iss::h_alu_imm,     // kIntAluImm
    &Iss::h_alu_reg,     // kIntAluReg
    &Iss::h_mul_div,     // kIntMul
    &Iss::h_mul_div,     // kIntDiv
    &Iss::h_jal,         // kJal
    &Iss::h_jalr,        // kJalr
    &Iss::h_branch,      // kBranch
    &Iss::h_load,        // kLoad
    &Iss::h_load_s8,     // kLoadSext8
    &Iss::h_load_s16,    // kLoadSext16
    &Iss::h_store,       // kStore
    &Iss::h_csr,         // kCsr
    &Iss::h_ecall,       // kEcall
    &Iss::h_ebreak,      // kEbreak
    &Iss::h_fence,       // kFence
    &Iss::h_fp_load,     // kFpLoad
    &Iss::h_fp_store,    // kFpStore
    &Iss::h_fp_compute,  // kFpMac
    &Iss::h_fp_compute,  // kFpDiv
    &Iss::h_fp_compute,  // kFpSqrt
    &Iss::h_fp_to_int,   // kFpCmp
    &Iss::h_fp_to_int,   // kFpCvtF2I
    &Iss::h_fp_from_int, // kFpCvtI2F
    &Iss::h_frep,        // kFrep
    &Iss::h_scfg_w,      // kScfgW
    &Iss::h_scfg_r,      // kScfgR
    &Iss::h_dma_src,     // kDmaSrc
    &Iss::h_dma_dst,     // kDmaDst
    &Iss::h_dma_str,     // kDmaStr
    &Iss::h_dma_cpy,     // kDmaCpy
    &Iss::h_dma_cpy2d,   // kDmaCpy2d
    &Iss::h_dma_stat,    // kDmaStat
};

void Iss::exec_frep(const Instr& in) {
  if (in_frep_) {
    halt_error("nested frep");
    return;
  }
  const u32 reps = state_.read_x(in.rs1) + 1;
  const u32 body = static_cast<u32>(in.imm);
  if (body == 0) {
    halt_error("frep with empty body");
    return;
  }
  // Only reachable through dispatch on a fetched instruction, so the pc is
  // always a valid text index.
  const u32 site = prog_.text_index(state_.pc);
  assert(site != Program::kNoIndex);
  const u32 body_idx = site + 1;
  // The body (FP-domain instructions only, no nesting, inside the text
  // segment) was validated once per static site at predecode time; a clear
  // flag means the body is malformed, and the walk below only runs then to
  // name the first offending offset.
  if ((prog_.pre[site].flags & isa::preflag::kFrepBodyOk) == 0) {
    for (u32 i = 0; i < body; ++i) {
      const u32 idx = body_idx + i;
      if (idx >= prog_.instrs.size() || !prog_.pre[idx].fp_domain) {
        halt_error("frep body contains a non-FP instruction at offset " +
                   std::to_string(i));
        return;
      }
      if (prog_.pre[idx].handler == ExecHandler::kFrep) {
        halt_error("nested frep");
        return;
      }
    }
    assert(!"frep body flagged invalid at predecode but revalidates clean");
  }
  in_frep_ = true;
  const Addr body_base = state_.pc + 4;
  const Addr saved_next = body_base + 4 * body;
  if (in.mn == Mnemonic::kFrepO) {
    for (u32 r = 0; r < reps && halt_ == HaltReason::kNone; ++r) {
      for (u32 i = 0; i < body && halt_ == HaltReason::kNone; ++i) {
        state_.pc = body_base + 4 * i;
        exec(body_idx + i);
        ++instret_;
      }
    }
  } else { // frep.i: repeat each instruction individually
    for (u32 i = 0; i < body && halt_ == HaltReason::kNone; ++i) {
      state_.pc = body_base + 4 * i;
      for (u32 r = 0; r < reps && halt_ == HaltReason::kNone; ++r) {
        exec(body_idx + i);
        ++instret_;
      }
    }
  }
  in_frep_ = false;
  state_.pc = saved_next - 4; // step() adds 4
}

bool Iss::step() {
  if (halt_ != HaltReason::kNone) return false;
  const u32 idx = prog_.text_index(state_.pc);
  if (idx == Program::kNoIndex) {
    halt_ = HaltReason::kOffText;
    return false;
  }
  const PredecodedInstr& pre = prog_.pre[idx];
  if (pre.handler == ExecHandler::kInvalid && !prog_.instrs[idx].valid()) {
    halt_error("illegal instruction encoding 0x" +
               std::to_string(prog_.instrs[idx].raw));
    return false;
  }
  exec(idx);
  ++instret_;
  if (halt_ != HaltReason::kNone) return false;
  state_.pc += 4;
  return true;
}

// Threaded superblock executor. Dispatch is a computed goto through a
// label-address table (one label per ExecHandler, same order as the enum);
// the label bodies call the exact member handlers the table path uses, so
// there is a single source of truth for instruction semantics. Superblocks
// (PredecodedInstr::run_len) let straight-line runs execute with only the
// per-instruction halt check: bounds, budget and dispatch-class validation
// happen once per static block. Control flow re-enters through the block
// header; jal/branch use the predecoded taken-target index instead of
// re-deriving the text index from the pc.
#if SCH_ISS_THREADED_DISPATCH
void Iss::run_burst(u64 stop_at) {
  static const void* kLabels[static_cast<usize>(ExecHandler::kCount)] = {
      &&L_invalid,   // kInvalid
      &&L_lui,       // kLui
      &&L_auipc,     // kAuipc
      &&L_alu_imm,   // kIntAluImm
      &&L_alu_reg,   // kIntAluReg
      &&L_mul_div,   // kIntMul
      &&L_mul_div,   // kIntDiv
      &&L_jal,       // kJal
      &&L_jalr,      // kJalr
      &&L_branch,    // kBranch
      &&L_load,      // kLoad
      &&L_load_s8,   // kLoadSext8
      &&L_load_s16,  // kLoadSext16
      &&L_store,     // kStore
      &&L_csr,       // kCsr
      &&L_ecall,     // kEcall
      &&L_ebreak,    // kEbreak
      &&L_fence,     // kFence
      &&L_fp_load,   // kFpLoad
      &&L_fp_store,  // kFpStore
      &&L_fp_comp,   // kFpMac
      &&L_fp_comp,   // kFpDiv
      &&L_fp_comp,   // kFpSqrt
      &&L_fp_to_i,   // kFpCmp
      &&L_fp_to_i,   // kFpCvtF2I
      &&L_fp_fr_i,   // kFpCvtI2F
      &&L_frep,      // kFrep
      &&L_scfg_w,    // kScfgW
      &&L_scfg_r,    // kScfgR
      &&L_dma_src,   // kDmaSrc
      &&L_dma_dst,   // kDmaDst
      &&L_dma_str,   // kDmaStr
      &&L_dma_cpy,   // kDmaCpy
      &&L_dma_cpy2d, // kDmaCpy2d
      &&L_dma_stat,  // kDmaStat
  };
  const u32 n = static_cast<u32>(prog_.instrs.size());
  u32 idx = prog_.text_index(state_.pc);
  if (idx == Program::kNoIndex) {
    halt_ = HaltReason::kOffText;
    return;
  }
  u32 run_left;  // instructions until the superblock (or budget) boundary

block_entry:  // idx is a valid text index here
  if (instret_ >= stop_at) return;
  run_left = prog_.pre[idx].run_len;
  if (run_left == 0) run_left = 1;  // control flow / invalid execute solo
  if (stop_at - instret_ < run_left) {
    run_left = static_cast<u32>(stop_at - instret_);
  }
dispatch:
  goto *kLabels[static_cast<usize>(prog_.pre[idx].handler)];

// Linear instructions: pc advances by 4 and idx by 1; within a superblock
// only the halt flag needs checking (the block header validated the rest).
#define SCH_ISS_LINEAR(label, handler)                    \
  label:                                                  \
  handler(prog_.instrs[idx], prog_.pre[idx]);             \
  ++instret_;                                             \
  if (halt_ != HaltReason::kNone) return;                 \
  state_.pc += 4;                                         \
  ++idx;                                                  \
  if (--run_left != 0) goto dispatch;                     \
  if (idx >= n) {                                         \
    halt_ = HaltReason::kOffText;                         \
    return;                                               \
  }                                                       \
  goto block_entry;

  SCH_ISS_LINEAR(L_lui, h_lui)
  SCH_ISS_LINEAR(L_auipc, h_auipc)
  SCH_ISS_LINEAR(L_alu_imm, h_alu_imm)
  SCH_ISS_LINEAR(L_alu_reg, h_alu_reg)
  SCH_ISS_LINEAR(L_mul_div, h_mul_div)
  SCH_ISS_LINEAR(L_load, h_load)
  SCH_ISS_LINEAR(L_load_s8, h_load_s8)
  SCH_ISS_LINEAR(L_load_s16, h_load_s16)
  SCH_ISS_LINEAR(L_store, h_store)
  SCH_ISS_LINEAR(L_csr, h_csr)
  SCH_ISS_LINEAR(L_fence, h_fence)
  SCH_ISS_LINEAR(L_fp_load, h_fp_load)
  SCH_ISS_LINEAR(L_fp_store, h_fp_store)
  SCH_ISS_LINEAR(L_fp_comp, h_fp_compute)
  SCH_ISS_LINEAR(L_fp_to_i, h_fp_to_int)
  SCH_ISS_LINEAR(L_fp_fr_i, h_fp_from_int)
  SCH_ISS_LINEAR(L_scfg_w, h_scfg_w)
  SCH_ISS_LINEAR(L_scfg_r, h_scfg_r)
  SCH_ISS_LINEAR(L_dma_src, h_dma_src)
  SCH_ISS_LINEAR(L_dma_dst, h_dma_dst)
  SCH_ISS_LINEAR(L_dma_str, h_dma_str)
  SCH_ISS_LINEAR(L_dma_cpy, h_dma_cpy)
  SCH_ISS_LINEAR(L_dma_cpy2d, h_dma_cpy2d)
  SCH_ISS_LINEAR(L_dma_stat, h_dma_stat)
#undef SCH_ISS_LINEAR

L_jal: {
  // h_jal semantics inlined so the precomputed target index replaces the
  // pc -> index recomputation (step() adds 4 after the handler; here the
  // final pc is written directly).
  const Instr& in = prog_.instrs[idx];
  const u32 link = state_.pc + 4;
  state_.pc += static_cast<u32>(prog_.pre[idx].aux);
  state_.write_x(in.rd, link);
  ++instret_;
  idx = prog_.pre[idx].target_idx;
  if (idx == Program::kNoIndex) {
    halt_ = HaltReason::kOffText;
    return;
  }
  goto block_entry;
}

L_branch: {
  const Instr& in = prog_.instrs[idx];
  ++instret_;
  if (exec::branch_taken(in.mn, state_.read_x(in.rs1),
                         state_.read_x(in.rs2))) {
    state_.pc += static_cast<u32>(prog_.pre[idx].aux);
    idx = prog_.pre[idx].target_idx;
    if (idx == Program::kNoIndex) {
      halt_ = HaltReason::kOffText;
      return;
    }
  } else {
    state_.pc += 4;
    if (++idx >= n) {
      halt_ = HaltReason::kOffText;
      return;
    }
  }
  goto block_entry;
}

L_jalr:
  h_jalr(prog_.instrs[idx], prog_.pre[idx]);
  ++instret_;
  state_.pc += 4;  // h_jalr stored target - 4, mirroring step()
  idx = prog_.text_index(state_.pc);
  if (idx == Program::kNoIndex) {
    halt_ = HaltReason::kOffText;
    return;
  }
  goto block_entry;

L_frep:
  h_frep(prog_.instrs[idx], prog_.pre[idx]);
  ++instret_;
  if (halt_ != HaltReason::kNone) return;
  state_.pc += 4;  // exec_frep left pc at (loop exit - 4)
  idx = prog_.text_index(state_.pc);
  if (idx == Program::kNoIndex) {
    halt_ = HaltReason::kOffText;
    return;
  }
  goto block_entry;

L_ecall:
  h_ecall(prog_.instrs[idx], prog_.pre[idx]);
  ++instret_;
  return;

L_ebreak:
  h_ebreak(prog_.instrs[idx], prog_.pre[idx]);
  ++instret_;
  return;

L_invalid:
  if (!prog_.instrs[idx].valid()) {
    halt_error("illegal instruction encoding 0x" +
               std::to_string(prog_.instrs[idx].raw));
    return;
  }
  h_invalid(prog_.instrs[idx], prog_.pre[idx]);
  ++instret_;
  return;
}
#else
void Iss::run_burst(u64 stop_at) {
  // Portability fallback: the handler-table step loop, sliced identically.
  while (halt_ == HaltReason::kNone && instret_ < stop_at) step();
}
#endif

HaltReason Iss::run() {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point wall_start =
      cfg_.max_wall_ms != 0 ? Clock::now() : Clock::time_point{};
  while (halt_ == HaltReason::kNone) {
    if (instret_ >= cfg_.max_steps) {
      halt_ = HaltReason::kMaxSteps;
      break;
    }
    // Wall-clock budget, checked off the hot path (every 8192 steps).
    if (cfg_.max_wall_ms != 0 && (instret_ & 0x1FFF) == 0) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                wall_start);
      if (static_cast<u64>(elapsed.count()) > cfg_.max_wall_ms) {
        halt_ = HaltReason::kMaxSteps;
        error_ = "wall-clock budget exhausted (" +
                 std::to_string(cfg_.max_wall_ms) + " ms) after " +
                 std::to_string(instret_) + " instructions";
        break;
      }
    }
    if (cfg_.fast_dispatch) {
      // Burst to the next step-budget or wall-check boundary; budgets are
      // re-checked between instructions exactly as the step() loop does.
      run_burst(std::min<u64>(cfg_.max_steps, (instret_ | 0x1FFF) + 1));
    } else {
      step();
    }
  }
  return halt_;
}

} // namespace sch
