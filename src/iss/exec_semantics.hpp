// Pure instruction semantics shared by the functional ISS and the cycle-level
// simulator, so architectural behaviour is defined exactly once. FP arithmetic
// uses native IEEE-754 host types with RISC-V NaN-boxing for single precision
// (not a bit-exact softfloat; see DESIGN.md §4).
#pragma once

#include "common/types.hpp"
#include "isa/instr.hpp"

namespace sch::exec {

// --- NaN boxing -------------------------------------------------------------
/// Box a 32-bit single-precision pattern into a 64-bit register (high 1s).
u64 box32(u32 bits);
/// Unbox: returns the f32 pattern, or the canonical NaN when improperly boxed.
u32 unbox32(u64 value);

u64 bits_of_f64(double v);
double f64_of_bits(u64 bits);
u32 bits_of_f32(float v);
float f32_of_bits(u32 bits);

/// Canonical quiet NaNs.
inline constexpr u32 kCanonicalNan32 = 0x7FC0'0000u;
inline constexpr u64 kCanonicalNan64 = 0x7FF8'0000'0000'0000ull;

// --- integer ----------------------------------------------------------------
/// ALU/MUL/DIV semantics (imm already folded into rs2 by the caller for
/// immediate forms). Covers every ExecClass::kIntAlu/kIntMul/kIntDiv mnemonic.
u32 int_op(isa::Mnemonic mn, u32 rs1, u32 rs2);

/// Conditional-branch predicate.
bool branch_taken(isa::Mnemonic mn, u32 rs1, u32 rs2);

// --- floating point ----------------------------------------------------------
/// FP -> FP operation (add/sub/mul/div/sqrt/sgnj/minmax/fma family and
/// float<->double conversions). Operands/result are 64-bit register values.
u64 fp_compute(isa::Mnemonic mn, u64 a, u64 b, u64 c);

/// FP -> integer operations (compares, fclass, fcvt.w[u], fmv.x.w).
u32 fp_to_int(isa::Mnemonic mn, u64 a, u64 b);

/// Integer -> FP operations (fcvt.{s,d}.{w,wu}, fmv.w.x).
u64 int_to_fp(isa::Mnemonic mn, u32 x);

} // namespace sch::exec
