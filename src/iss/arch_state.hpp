// Architectural register state shared vocabulary for both engines.
#pragma once

#include <array>

#include "common/types.hpp"
#include "isa/reg.hpp"

namespace sch {

struct ArchState {
  std::array<u32, isa::kNumIntRegs> x{};  // x0 kept 0 by the writers
  std::array<u64, isa::kNumFpRegs> f{};
  Addr pc = 0;
  u32 fcsr = 0;

  void write_x(u8 r, u32 v) {
    if (r != 0) x[r] = v;
  }
  [[nodiscard]] u32 read_x(u8 r) const { return x[r]; }
};

/// Why an engine stopped.
enum class HaltReason : u8 {
  kNone,         // still running
  kEcall,        // clean exit (a0 = exit code)
  kEbreak,
  kOffText,      // pc ran past the text segment (fell off the end)
  kMaxSteps,     // step/cycle budget exhausted
  kError,        // architectural error (see message)
};

} // namespace sch
