#include "iss/exec_semantics.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace sch::exec {
namespace {

using isa::Mnemonic;

bool is_nan32(u32 b) {
  return (b & 0x7F80'0000u) == 0x7F80'0000u && (b & 0x007F'FFFFu) != 0;
}
bool is_nan64(u64 b) {
  return (b & 0x7FF0'0000'0000'0000ull) == 0x7FF0'0000'0000'0000ull &&
         (b & 0x000F'FFFF'FFFF'FFFFull) != 0;
}

double canonicalize64(double v) {
  return std::isnan(v) ? f64_of_bits(kCanonicalNan64) : v;
}
float canonicalize32(float v) {
  return std::isnan(v) ? f32_of_bits(kCanonicalNan32) : v;
}

// RISC-V fmin/fmax: if exactly one operand is NaN, return the other; if both,
// return the canonical NaN; -0.0 is considered less than +0.0.
template <typename T>
T rv_minmax(T a, T b, bool is_max) {
  const bool na = std::isnan(a);
  const bool nb = std::isnan(b);
  if (na && nb) {
    if constexpr (sizeof(T) == 8) return f64_of_bits(kCanonicalNan64);
    else return f32_of_bits(kCanonicalNan32);
  }
  if (na) return b;
  if (nb) return a;
  if (a == T{0} && b == T{0}) {
    // -0.0 orders below +0.0.
    const bool a_neg = std::signbit(a);
    if (is_max) return a_neg ? b : a;
    return a_neg ? a : b;
  }
  return is_max ? (a > b ? a : b) : (a < b ? a : b);
}

u32 sgnj32(u32 a, u32 b, int mode) {
  const u32 mag = a & 0x7FFF'FFFFu;
  const u32 sa = a & 0x8000'0000u;
  const u32 sb = b & 0x8000'0000u;
  switch (mode) {
    case 0: return mag | sb;          // fsgnj
    case 1: return mag | (sb ^ 0x8000'0000u); // fsgnjn
    default: return mag | (sa ^ sb);  // fsgnjx
  }
}

u64 sgnj64(u64 a, u64 b, int mode) {
  const u64 mag = a & 0x7FFF'FFFF'FFFF'FFFFull;
  const u64 sa = a & 0x8000'0000'0000'0000ull;
  const u64 sb = b & 0x8000'0000'0000'0000ull;
  switch (mode) {
    case 0: return mag | sb;
    case 1: return mag | (sb ^ 0x8000'0000'0000'0000ull);
    default: return mag | (sa ^ sb);
  }
}

template <typename T>
u32 fclass_bits(T v, u64 raw_bits, bool raw_is_nan_signaling) {
  if (std::isnan(v)) return raw_is_nan_signaling ? (1u << 8) : (1u << 9);
  const bool neg = std::signbit(v);
  if (std::isinf(v)) return neg ? (1u << 0) : (1u << 7);
  if (v == T{0}) return neg ? (1u << 3) : (1u << 4);
  const bool subnormal = std::fpclassify(v) == FP_SUBNORMAL;
  if (neg) return subnormal ? (1u << 2) : (1u << 1);
  return subnormal ? (1u << 5) : (1u << 6);
  (void)raw_bits;
}

i32 cvt_to_i32(double v) {
  if (std::isnan(v)) return std::numeric_limits<i32>::max();
  const double r = std::nearbyint(v);
  if (r >= 2147483648.0) return std::numeric_limits<i32>::max();
  if (r < -2147483648.0) return std::numeric_limits<i32>::min();
  return static_cast<i32>(r);
}

u32 cvt_to_u32(double v) {
  if (std::isnan(v)) return std::numeric_limits<u32>::max();
  const double r = std::nearbyint(v);
  if (r >= 4294967296.0) return std::numeric_limits<u32>::max();
  if (r < 0.0) return 0;
  return static_cast<u32>(r);
}

} // namespace

u64 box32(u32 bits) { return 0xFFFF'FFFF'0000'0000ull | bits; }

u32 unbox32(u64 value) {
  if ((value >> 32) != 0xFFFF'FFFFull) return kCanonicalNan32;
  return static_cast<u32>(value);
}

u64 bits_of_f64(double v) {
  u64 b;
  std::memcpy(&b, &v, 8);
  return b;
}
double f64_of_bits(u64 bits) {
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}
u32 bits_of_f32(float v) {
  u32 b;
  std::memcpy(&b, &v, 4);
  return b;
}
float f32_of_bits(u32 bits) {
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

u32 int_op(Mnemonic mn, u32 a, u32 b) {
  const i32 sa = static_cast<i32>(a);
  const i32 sb = static_cast<i32>(b);
  switch (mn) {
    case Mnemonic::kAdd: case Mnemonic::kAddi: return a + b;
    case Mnemonic::kSub: return a - b;
    case Mnemonic::kSll: case Mnemonic::kSlli: return a << (b & 31);
    case Mnemonic::kSrl: case Mnemonic::kSrli: return a >> (b & 31);
    case Mnemonic::kSra: case Mnemonic::kSrai:
      return static_cast<u32>(sa >> (b & 31));
    case Mnemonic::kSlt: case Mnemonic::kSlti: return sa < sb ? 1 : 0;
    case Mnemonic::kSltu: case Mnemonic::kSltiu: return a < b ? 1 : 0;
    case Mnemonic::kXor: case Mnemonic::kXori: return a ^ b;
    case Mnemonic::kOr: case Mnemonic::kOri: return a | b;
    case Mnemonic::kAnd: case Mnemonic::kAndi: return a & b;
    case Mnemonic::kMul: return a * b;
    case Mnemonic::kMulh:
      return static_cast<u32>((static_cast<i64>(sa) * static_cast<i64>(sb)) >> 32);
    case Mnemonic::kMulhsu:
      return static_cast<u32>((static_cast<i64>(sa) * static_cast<i64>(static_cast<u64>(b))) >> 32);
    case Mnemonic::kMulhu:
      return static_cast<u32>((static_cast<u64>(a) * static_cast<u64>(b)) >> 32);
    case Mnemonic::kDiv:
      if (b == 0) return 0xFFFF'FFFFu;
      if (sa == std::numeric_limits<i32>::min() && sb == -1) return a;
      return static_cast<u32>(sa / sb);
    case Mnemonic::kDivu:
      return b == 0 ? 0xFFFF'FFFFu : a / b;
    case Mnemonic::kRem:
      if (b == 0) return a;
      if (sa == std::numeric_limits<i32>::min() && sb == -1) return 0;
      return static_cast<u32>(sa % sb);
    case Mnemonic::kRemu:
      return b == 0 ? a : a % b;
    default:
      throw std::logic_error("int_op: not an integer computation mnemonic");
  }
}

bool branch_taken(Mnemonic mn, u32 a, u32 b) {
  const i32 sa = static_cast<i32>(a);
  const i32 sb = static_cast<i32>(b);
  switch (mn) {
    case Mnemonic::kBeq: return a == b;
    case Mnemonic::kBne: return a != b;
    case Mnemonic::kBlt: return sa < sb;
    case Mnemonic::kBge: return sa >= sb;
    case Mnemonic::kBltu: return a < b;
    case Mnemonic::kBgeu: return a >= b;
    default:
      throw std::logic_error("branch_taken: not a branch mnemonic");
  }
}

u64 fp_compute(Mnemonic mn, u64 a, u64 b, u64 c) {
  switch (mn) {
    // --- double precision ---
    case Mnemonic::kFaddD:
      return bits_of_f64(canonicalize64(f64_of_bits(a) + f64_of_bits(b)));
    case Mnemonic::kFsubD:
      return bits_of_f64(canonicalize64(f64_of_bits(a) - f64_of_bits(b)));
    case Mnemonic::kFmulD:
      return bits_of_f64(canonicalize64(f64_of_bits(a) * f64_of_bits(b)));
    case Mnemonic::kFdivD:
      return bits_of_f64(canonicalize64(f64_of_bits(a) / f64_of_bits(b)));
    case Mnemonic::kFsqrtD:
      return bits_of_f64(canonicalize64(std::sqrt(f64_of_bits(a))));
    case Mnemonic::kFmaddD:
      return bits_of_f64(canonicalize64(std::fma(f64_of_bits(a), f64_of_bits(b), f64_of_bits(c))));
    case Mnemonic::kFmsubD:
      return bits_of_f64(canonicalize64(std::fma(f64_of_bits(a), f64_of_bits(b), -f64_of_bits(c))));
    case Mnemonic::kFnmsubD:
      return bits_of_f64(canonicalize64(std::fma(-f64_of_bits(a), f64_of_bits(b), f64_of_bits(c))));
    case Mnemonic::kFnmaddD:
      return bits_of_f64(canonicalize64(std::fma(-f64_of_bits(a), f64_of_bits(b), -f64_of_bits(c))));
    case Mnemonic::kFsgnjD: return sgnj64(a, b, 0);
    case Mnemonic::kFsgnjnD: return sgnj64(a, b, 1);
    case Mnemonic::kFsgnjxD: return sgnj64(a, b, 2);
    case Mnemonic::kFminD:
      return bits_of_f64(rv_minmax(f64_of_bits(a), f64_of_bits(b), false));
    case Mnemonic::kFmaxD:
      return bits_of_f64(rv_minmax(f64_of_bits(a), f64_of_bits(b), true));
    case Mnemonic::kFcvtSD:
      return box32(bits_of_f32(canonicalize32(static_cast<float>(f64_of_bits(a)))));
    case Mnemonic::kFcvtDS:
      return bits_of_f64(canonicalize64(static_cast<double>(f32_of_bits(unbox32(a)))));

    // --- single precision (NaN-boxed) ---
    case Mnemonic::kFaddS:
      return box32(bits_of_f32(canonicalize32(f32_of_bits(unbox32(a)) + f32_of_bits(unbox32(b)))));
    case Mnemonic::kFsubS:
      return box32(bits_of_f32(canonicalize32(f32_of_bits(unbox32(a)) - f32_of_bits(unbox32(b)))));
    case Mnemonic::kFmulS:
      return box32(bits_of_f32(canonicalize32(f32_of_bits(unbox32(a)) * f32_of_bits(unbox32(b)))));
    case Mnemonic::kFdivS:
      return box32(bits_of_f32(canonicalize32(f32_of_bits(unbox32(a)) / f32_of_bits(unbox32(b)))));
    case Mnemonic::kFsqrtS:
      return box32(bits_of_f32(canonicalize32(std::sqrt(f32_of_bits(unbox32(a))))));
    case Mnemonic::kFmaddS:
      return box32(bits_of_f32(canonicalize32(
          std::fma(f32_of_bits(unbox32(a)), f32_of_bits(unbox32(b)), f32_of_bits(unbox32(c))))));
    case Mnemonic::kFmsubS:
      return box32(bits_of_f32(canonicalize32(
          std::fma(f32_of_bits(unbox32(a)), f32_of_bits(unbox32(b)), -f32_of_bits(unbox32(c))))));
    case Mnemonic::kFnmsubS:
      return box32(bits_of_f32(canonicalize32(
          std::fma(-f32_of_bits(unbox32(a)), f32_of_bits(unbox32(b)), f32_of_bits(unbox32(c))))));
    case Mnemonic::kFnmaddS:
      return box32(bits_of_f32(canonicalize32(
          std::fma(-f32_of_bits(unbox32(a)), f32_of_bits(unbox32(b)), -f32_of_bits(unbox32(c))))));
    case Mnemonic::kFsgnjS: return box32(sgnj32(unbox32(a), unbox32(b), 0));
    case Mnemonic::kFsgnjnS: return box32(sgnj32(unbox32(a), unbox32(b), 1));
    case Mnemonic::kFsgnjxS: return box32(sgnj32(unbox32(a), unbox32(b), 2));
    case Mnemonic::kFminS:
      return box32(bits_of_f32(rv_minmax(f32_of_bits(unbox32(a)), f32_of_bits(unbox32(b)), false)));
    case Mnemonic::kFmaxS:
      return box32(bits_of_f32(rv_minmax(f32_of_bits(unbox32(a)), f32_of_bits(unbox32(b)), true)));
    default:
      throw std::logic_error("fp_compute: unhandled mnemonic");
  }
}

u32 fp_to_int(Mnemonic mn, u64 a, u64 b) {
  switch (mn) {
    case Mnemonic::kFeqD: {
      const double x = f64_of_bits(a), y = f64_of_bits(b);
      return (!std::isnan(x) && !std::isnan(y) && x == y) ? 1 : 0;
    }
    case Mnemonic::kFltD: {
      const double x = f64_of_bits(a), y = f64_of_bits(b);
      return (!std::isnan(x) && !std::isnan(y) && x < y) ? 1 : 0;
    }
    case Mnemonic::kFleD: {
      const double x = f64_of_bits(a), y = f64_of_bits(b);
      return (!std::isnan(x) && !std::isnan(y) && x <= y) ? 1 : 0;
    }
    case Mnemonic::kFeqS: {
      const float x = f32_of_bits(unbox32(a)), y = f32_of_bits(unbox32(b));
      return (!std::isnan(x) && !std::isnan(y) && x == y) ? 1 : 0;
    }
    case Mnemonic::kFltS: {
      const float x = f32_of_bits(unbox32(a)), y = f32_of_bits(unbox32(b));
      return (!std::isnan(x) && !std::isnan(y) && x < y) ? 1 : 0;
    }
    case Mnemonic::kFleS: {
      const float x = f32_of_bits(unbox32(a)), y = f32_of_bits(unbox32(b));
      return (!std::isnan(x) && !std::isnan(y) && x <= y) ? 1 : 0;
    }
    case Mnemonic::kFclassD: {
      const double v = f64_of_bits(a);
      const bool signaling = is_nan64(a) && ((a >> 51) & 1) == 0;
      return fclass_bits(v, a, signaling);
    }
    case Mnemonic::kFclassS: {
      const u32 ub = unbox32(a);
      const float v = f32_of_bits(ub);
      const bool signaling = is_nan32(ub) && ((ub >> 22) & 1) == 0;
      return fclass_bits(v, ub, signaling);
    }
    case Mnemonic::kFcvtWD: return static_cast<u32>(cvt_to_i32(f64_of_bits(a)));
    case Mnemonic::kFcvtWuD: return cvt_to_u32(f64_of_bits(a));
    case Mnemonic::kFcvtWS:
      return static_cast<u32>(cvt_to_i32(static_cast<double>(f32_of_bits(unbox32(a)))));
    case Mnemonic::kFcvtWuS:
      return cvt_to_u32(static_cast<double>(f32_of_bits(unbox32(a))));
    case Mnemonic::kFmvXW: return unbox32(a);
    default:
      throw std::logic_error("fp_to_int: unhandled mnemonic");
  }
}

u64 int_to_fp(Mnemonic mn, u32 x) {
  switch (mn) {
    case Mnemonic::kFcvtDW:
      return bits_of_f64(static_cast<double>(static_cast<i32>(x)));
    case Mnemonic::kFcvtDWu:
      return bits_of_f64(static_cast<double>(x));
    case Mnemonic::kFcvtSW:
      return box32(bits_of_f32(static_cast<float>(static_cast<i32>(x))));
    case Mnemonic::kFcvtSWu:
      return box32(bits_of_f32(static_cast<float>(x)));
    case Mnemonic::kFmvWX:
      return box32(x);
    default:
      throw std::logic_error("int_to_fp: unhandled mnemonic");
  }
}

} // namespace sch::exec
