#include "kernels/partition.hpp"

#include "isa/csr.hpp"
#include "ssr/ssr_config.hpp"

namespace sch::kernels {

void emit_group_partition(ProgramBuilder& b, u32 groups, u8 hart_reg,
                          u8 nharts_reg, u8 gs_reg, u8 cnt_reg, u8 tmp,
                          const std::string& empty_label) {
  b.csrr(hart_reg, isa::csr::kMhartid);
  b.csrr(nharts_reg, isa::csr::kMnumharts);
  b.li(tmp, static_cast<i64>(groups));
  // gs = hart * groups / nharts
  b.mul(gs_reg, hart_reg, tmp);
  b.divu(gs_reg, gs_reg, nharts_reg);
  // cnt = (hart + 1) * groups / nharts - gs
  b.addi(cnt_reg, hart_reg, 1);
  b.mul(cnt_reg, cnt_reg, tmp);
  b.divu(cnt_reg, cnt_reg, nharts_reg);
  b.sub(cnt_reg, cnt_reg, gs_reg);
  b.beqz(cnt_reg, empty_label);
}

void emit_linear_slice_ssrs(ProgramBuilder& b, u32 group_elems, u8 gs_reg,
                            u8 cnt_reg, u8 bound_reg, u8 off_reg, u8 tmp,
                            std::initializer_list<SliceStream> streams) {
  using ssr::CfgReg;
  b.li(tmp, static_cast<i64>(group_elems));
  b.mul(bound_reg, cnt_reg, tmp);
  b.addi(bound_reg, bound_reg, -1);
  b.li(tmp, static_cast<i64>(8 * group_elems));
  b.mul(off_reg, gs_reg, tmp);
  for (const SliceStream& s : streams) {
    b.scfgw(bound_reg, ssr::cfg_index(s.ssr_id, CfgReg::kBound0));
    b.li(tmp, 8);
    b.scfgw(tmp, ssr::cfg_index(s.ssr_id, CfgReg::kStride0));
    b.la(tmp, s.base);
    b.add(tmp, tmp, off_reg);
    b.scfgw(tmp, ssr::cfg_index(s.ssr_id, s.is_write ? CfgReg::kWptr0
                                                     : CfgReg::kRptr0));
  }
}

} // namespace sch::kernels
