// Open kernel registry: every kernel family publishes its name, scheduling
// variants, size parameters and a builder function, so front-ends (the
// scenario runner, `schsim list-kernels`, benches) reach every workload
// through one lookup instead of bespoke per-kernel main()s.
//
// In-tree kernels register through a `register_*` function defined next to
// the builder (see registry.cpp's builtin table); embedders extend the set
// at runtime with Registry::add or a static KernelRegistrar object. See
// docs/ADDING_A_KERNEL.md for the full recipe.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "kernels/kernel_common.hpp"

namespace sch::kernels {

/// Named integer size parameters for a kernel build, e.g. {"n": 256} or
/// {"m": 32, "n": 24}. Builders fall back to the registered defaults for
/// absent names and reject unknown ones.
using SizeMap = std::map<std::string, i64>;

struct ParamSpec {
  std::string name;
  i64 default_value = 0;
  std::string help;
};

/// One kernel family in the registry.
struct KernelEntry {
  std::string name;         // registry key, e.g. "axpy", "box3d1r"
  std::string description;  // one line, shown by `schsim list-kernels`
  /// Scheduling variants in canonical order (least to most chained).
  std::vector<std::string> variants;
  /// The variant pair the chained-vs-baseline comparison reports on.
  std::string baseline_variant;
  std::string chained_variant;
  std::vector<ParamSpec> params;
  /// Build the program + golden output for (variant, sizes). Throws
  /// std::invalid_argument on bad variant names or size constraints.
  std::function<BuiltKernel(const std::string& variant, const SizeMap& sizes)>
      build;

  [[nodiscard]] bool has_variant(const std::string& v) const;
  [[nodiscard]] const ParamSpec* find_param(const std::string& name) const;
  /// Registered defaults merged with `overrides` (which must all be known
  /// parameter names; throws std::invalid_argument otherwise).
  [[nodiscard]] SizeMap resolve_sizes(const SizeMap& overrides) const;
};

class Registry {
 public:
  /// The process-wide registry; built-in kernels are registered on first use.
  static Registry& instance();

  /// Throws std::invalid_argument on a duplicate name.
  void add(KernelEntry entry);

  [[nodiscard]] const KernelEntry* find(const std::string& name) const;
  /// All entries, name-sorted (deterministic listing order).
  [[nodiscard]] std::vector<const KernelEntry*> entries() const;
  [[nodiscard]] usize size() const { return entries_.size(); }

 private:
  std::map<std::string, KernelEntry> entries_;
};

/// Registers `entry` into Registry::instance() at construction; declare one
/// at namespace scope to self-register an out-of-tree kernel.
struct KernelRegistrar {
  explicit KernelRegistrar(KernelEntry entry);
};

/// Read a named size parameter, falling back to `fallback`.
i64 size_or(const SizeMap& sizes, const std::string& name, i64 fallback);

} // namespace sch::kernels
