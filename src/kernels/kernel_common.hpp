// Shared vocabulary for generated kernels: built program + data-layout
// handles + expected results + register-pressure accounting.
#pragma once

#include <string>
#include <vector>

#include "asm/program.hpp"
#include "common/types.hpp"
#include "verify/mem_region.hpp"

namespace sch::kernels {

/// Register-pressure accounting for a kernel variant (the paper's Fig. 1b
/// cost: a software FIFO spends architectural registers; chaining does not).
struct RegisterReport {
  u32 fp_regs_used = 0;        // architectural FP registers the kernel names
  u32 accumulator_regs = 0;    // registers spent on in-flight partial results
  u32 coefficient_regs = 0;    // registers holding resident coefficients
  u32 chained_regs = 0;        // registers with FIFO semantics
  u32 ssr_regs = 0;            // registers claimed by armed streams
};

/// A generated kernel: program image, where the output lives, what it should
/// contain, and bookkeeping for the benches.
struct BuiltKernel {
  Program program;
  std::string name;
  Addr out_base = 0;
  std::vector<double> expected;  // golden output (same operation order)
  RegisterReport regs;
  u64 useful_flops = 0;          // FP compute ops the kernel must execute
  /// Declared data windows (inputs, outputs, coefficient tables, barrier
  /// words): consumed by verify::analyze to label finding addresses and to
  /// whitelist intentionally shared synchronization windows.
  std::vector<verify::MemRegion> regions;
};

} // namespace sch::kernels
