// Extension workload (beyond the paper's evaluation): dense matrix-vector
// product y = A*x, demonstrating scalar chaining on reduction chains.
//
// Four matrix rows are interleaved to hide the FMA latency (exactly the
// stencil's trick). Without chaining the four running sums occupy four
// architectural registers and the FREP body is four distinct instructions.
// With chaining the FIFO rotates the four partial sums through ONE chained
// register -- and because every body instruction is then textually
// identical (fmadd ft3, ft0, ft1, ft3), the FREP body collapses to a single
// instruction replayed 4n times.
#pragma once

#include "kernels/kernel_common.hpp"

namespace sch::kernels {

// kChainedPar is the chained schedule, cluster-parallel: each hart claims a
// balanced share of the m/4 row groups at runtime (mhartid/mnumharts) and
// arms its SSRs with computed bounds/pointers, so one binary row-partitions
// y = A*x across any cluster size.
//
// kChainedDma / kChainedDbuf start with A, x and y in MAIN memory and stage
// row blocks of `rtile` rows through each hart's private TCDM window with
// the Xdma engine (x is copied once per hart in the prologue). kChainedDma
// runs copy -> wait -> compute -> drain per block (no overlap);
// kChainedDbuf double-buffers the A blocks so the next block's DMA overlaps
// the current block's compute and the y copy-back drains in the background.
enum class GemvVariant : u8 {
  kUnrolledAcc, kChained, kChainedPar, kChainedDma, kChainedDbuf,
};

const char* gemv_variant_name(GemvVariant variant);

struct GemvParams {
  u32 m = 32;  // rows, multiple of 4 (and of `rtile` for DMA variants)
  u32 n = 24;  // columns
  /// Rows per DMA-staged block of the main-memory variants; a multiple of 4
  /// dividing m. Each hart's TCDM footprint is (n + 2*rtile*n + 2*rtile)*8
  /// bytes.
  u32 rtile = 8;
};

/// Build the kernel, its data image and the golden output (bit-exact FMA
/// ordering).
BuiltKernel build_gemv(GemvVariant variant, const GemvParams& params = {});

} // namespace sch::kernels
