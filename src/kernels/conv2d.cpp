#include "kernels/conv2d.hpp"

#include <cmath>
#include <stdexcept>

#include "asm/builder.hpp"
#include "isa/csr.hpp"
#include "isa/reg.hpp"
#include "kernels/registry.hpp"
#include "ssr/ssr_config.hpp"

namespace sch::kernels {

using ssr::CfgReg;

namespace {

constexpr u32 kTaps = 9;    // 3x3 filter
constexpr u8 kCoef0 = 4;    // f4..f12: resident filter weights
constexpr u8 kAccReg = 3;   // ft3: (chained) accumulator

double img_value(u32 i) {
  return 0.0078125 * static_cast<double>((i * 23 + 11) % 193) - 0.75;
}

/// Distinct dyadic filter weights.
double weight_value(u32 t) {
  return 0.03125 * static_cast<double>(t + 1) - 0.1875;
}

/// Arm the indirect u16-index gather on `ssr_id` (same idiom as the
/// stencils: shift 3 for f64 elements).
void arm_gather(ProgramBuilder& b, u32 ssr_id, Addr idx_array, u32 n_elems,
                Addr data_base) {
  b.li(isa::kT0, static_cast<i64>(n_elems - 1));
  b.scfgw(isa::kT0, ssr::cfg_index(ssr_id, CfgReg::kBound0));
  b.li(isa::kT0, 2); // u16 index array stride
  b.scfgw(isa::kT0, ssr::cfg_index(ssr_id, CfgReg::kStride0));
  b.li(isa::kT0, (1 << 16) | (3 << 4) | 1);
  b.scfgw(isa::kT0, ssr::cfg_index(ssr_id, CfgReg::kIdxCfg));
  b.li(isa::kT1, static_cast<i64>(data_base));
  b.scfgw(isa::kT1, ssr::cfg_index(ssr_id, CfgReg::kIdxBase));
  b.li(isa::kT1, static_cast<i64>(idx_array));
  b.scfgw(isa::kT1, ssr::cfg_index(ssr_id, CfgReg::kRptr0));
}

void arm_write(ProgramBuilder& b, u32 ssr_id, Addr out_base, u32 n) {
  b.li(isa::kT0, static_cast<i64>(n - 1));
  b.scfgw(isa::kT0, ssr::cfg_index(ssr_id, CfgReg::kBound0));
  b.li(isa::kT0, 8);
  b.scfgw(isa::kT0, ssr::cfg_index(ssr_id, CfgReg::kStride0));
  b.li(isa::kT1, static_cast<i64>(out_base));
  b.scfgw(isa::kT1, ssr::cfg_index(ssr_id, CfgReg::kWptr0));
}

} // namespace

const char* conv2d_variant_name(Conv2dVariant v) {
  return v == Conv2dVariant::kBaseline ? "baseline" : "chained";
}

u32 conv2d_output_points(const Conv2dParams& p) {
  return (p.h - 2) * (p.w - 2);
}

BuiltKernel build_conv2d(Conv2dVariant variant, const Conv2dParams& p) {
  if (p.h < 3 || p.w < 3) {
    throw std::invalid_argument("conv2d: image too small for a 3x3 filter");
  }
  const u32 points = conv2d_output_points(p);
  if (points % 4 != 0) {
    throw std::invalid_argument("conv2d: output points must be a multiple of 4");
  }
  const u32 cells = p.h * p.w;
  if (cells > 0xFFFF) {
    throw std::invalid_argument("conv2d: image exceeds 16-bit index range");
  }

  ProgramBuilder b;
  std::vector<double> img(cells);
  for (u32 i = 0; i < cells; ++i) img[i] = img_value(i);
  std::vector<double> wgt(kTaps);
  for (u32 t = 0; t < kTaps; ++t) wgt[t] = weight_value(t);

  // Tap t visits img[y + t/3][x + t%3] with the FLIPPED weight w[8-t]
  // (true convolution, not correlation).
  auto tap_index = [&](u32 y, u32 x, u32 t) {
    return static_cast<u16>((y + t / 3) * p.w + (x + t % 3));
  };
  auto point_coords = [&](u32 pt, u32& y, u32& x) {
    y = pt / (p.w - 2);
    x = pt % (p.w - 2);
  };

  // Gather index arrays. The baseline walks point-major (9 taps per point)
  // on a single stream -- its serial schedule demands well under one
  // element per cycle. The chained interleave consumes one element per
  // cycle, more than one indirect streamer can sustain (index fetches share
  // the TCDM port), so it splits even/odd points across SSR0/SSR1 exactly
  // like the SARIS stencils: per group and tap, even carries points {0,2}
  // and odd carries points {1,3}.
  std::vector<u16> idx_even, idx_odd;
  if (variant == Conv2dVariant::kBaseline) {
    idx_even.reserve(static_cast<usize>(points) * kTaps);
    for (u32 pt = 0; pt < points; ++pt) {
      u32 y, x;
      point_coords(pt, y, x);
      for (u32 t = 0; t < kTaps; ++t) idx_even.push_back(tap_index(y, x, t));
    }
  } else {
    idx_even.reserve(static_cast<usize>(points) * kTaps / 2);
    idx_odd.reserve(static_cast<usize>(points) * kTaps / 2);
    for (u32 g = 0; g < points / 4; ++g) {
      for (u32 t = 0; t < kTaps; ++t) {
        for (u32 j : {0u, 2u}) {
          u32 y, x;
          point_coords(g * 4 + j, y, x);
          idx_even.push_back(tap_index(y, x, t));
        }
        for (u32 j : {1u, 3u}) {
          u32 y, x;
          point_coords(g * 4 + j, y, x);
          idx_odd.push_back(tap_index(y, x, t));
        }
      }
    }
  }

  const Addr img_base = b.data_f64(img);
  const Addr wgt_base = b.data_f64(wgt);
  const Addr out_base = b.data_zero(points * 8);
  const Addr idx_even_base = b.data_u16(idx_even);
  const Addr idx_odd_base = idx_odd.empty() ? 0 : b.data_u16(idx_odd);

  BuiltKernel out;
  out.name = std::string("conv2d/") + conv2d_variant_name(variant);
  out.out_base = out_base;
  out.regions = {{"img", img_base, img.size() * 8ull},
                 {"wgt", wgt_base, wgt.size() * 8ull},
                 {"out", out_base, points * 8ull, /*written=*/true},
                 {"idx_even", idx_even_base, idx_even.size() * 2ull}};
  if (!idx_odd.empty()) {
    out.regions.push_back({"idx_odd", idx_odd_base, idx_odd.size() * 2ull});
  }
  out.expected.resize(points);
  for (u32 pt = 0; pt < points; ++pt) {
    u32 y, x;
    point_coords(pt, y, x);
    double acc = 0.0; // tap 0 is an fmul == fma(v, w, 0), bit-exact
    for (u32 t = 0; t < kTaps; ++t) {
      acc = std::fma(img[tap_index(y, x, t)], wgt[kTaps - 1 - t], acc);
    }
    out.expected[pt] = acc;
  }
  out.useful_flops = static_cast<u64>(points) * kTaps;

  if (variant == Conv2dVariant::kBaseline) {
    arm_gather(b, 0, idx_even_base, points * kTaps, img_base);
  } else {
    arm_gather(b, 0, idx_even_base, points * kTaps / 2, img_base);
    arm_gather(b, 1, idx_odd_base, points * kTaps / 2, img_base);
  }
  arm_write(b, 2, out_base, points);

  // Filter weights resident in f4..f12 (tap order already flipped).
  b.la(isa::kA0, wgt_base);
  for (u32 t = 0; t < kTaps; ++t) {
    b.fld(static_cast<u8>(kCoef0 + t), isa::kA0,
          static_cast<i32>(8 * (kTaps - 1 - t)));
  }
  const auto coef_reg = [](u32 t) { return static_cast<u8>(kCoef0 + t); };

  b.csrwi(isa::csr::kSsrEnable, 1);

  if (variant == Conv2dVariant::kChained) {
    b.li(isa::kT0, 1 << kAccReg); // chain ft3
    b.csrs(isa::csr::kChainMask, isa::kT0);
    // Tap-major interleave of 4 output points through the chained
    // accumulator; the last tap pops the sum straight into the write stream.
    b.li(isa::kT2, static_cast<i64>(points / 4));
    b.label("group");
    for (u32 t = 0; t < kTaps; ++t) {
      for (u32 j = 0; j < 4; ++j) {
        const u8 gsrc = (j % 2 == 0) ? isa::kFt0 : isa::kFt1;
        if (t == 0) {
          b.fmul_d(kAccReg, gsrc, coef_reg(0));
        } else if (t == kTaps - 1) {
          b.fmadd_d(isa::kFt2, gsrc, coef_reg(t), kAccReg);
        } else {
          b.fmadd_d(kAccReg, gsrc, coef_reg(t), kAccReg);
        }
      }
    }
    b.addi(isa::kT2, isa::kT2, -1);
    b.bnez(isa::kT2, "group");
    b.csrw(isa::csr::kChainMask, 0);
    out.regs.chained_regs = 1;
  } else {
    // The whole kernel is one FREP: a 9-tap serial body replayed once per
    // output point.
    b.li(isa::kT3, static_cast<i64>(points) - 1);
    b.frep_o(isa::kT3, static_cast<i32>(kTaps));
    b.fmul_d(kAccReg, isa::kFt0, coef_reg(0));
    for (u32 t = 1; t + 1 < kTaps; ++t) {
      b.fmadd_d(kAccReg, isa::kFt0, coef_reg(t), kAccReg);
    }
    b.fmadd_d(isa::kFt2, isa::kFt0, coef_reg(kTaps - 1), kAccReg);
  }

  b.csrwi(isa::csr::kSsrEnable, 0);
  b.ecall();

  const bool two_gathers = variant == Conv2dVariant::kChained;
  out.regs.ssr_regs = two_gathers ? 3 : 2; // gathers + SSR2 write
  out.regs.accumulator_regs = 1;
  out.regs.coefficient_regs = kTaps;
  out.regs.fp_regs_used =
      out.regs.ssr_regs + 1 /*ft3*/ + kTaps;

  out.program = b.build();
  return out;
}

void register_conv2d_kernels(Registry& r) {
  r.add(KernelEntry{
      .name = "conv2d",
      .description = "3x3 valid convolution via indirect gather: serial taps "
                     "vs 4-point chained interleave",
      .variants = {"baseline", "chained"},
      .baseline_variant = "baseline",
      .chained_variant = "chained",
      .params = {{"h", 10, "image height ((h-2)*(w-2) multiple of 4)"},
                 {"w", 14, "image width"}},
      .build = [](const std::string& variant, const SizeMap& sizes) {
        Conv2dParams p;
        p.h = static_cast<u32>(size_or(sizes, "h", p.h));
        p.w = static_cast<u32>(size_or(sizes, "w", p.w));
        for (Conv2dVariant v :
             {Conv2dVariant::kBaseline, Conv2dVariant::kChained}) {
          if (variant == conv2d_variant_name(v)) return build_conv2d(v, p);
        }
        throw std::invalid_argument("conv2d: unknown variant '" + variant + "'");
      }});
}

} // namespace sch::kernels
