// TCDM-based sense-reversing cluster barrier, emitted into generated
// kernels so the harts of a cluster can synchronize phases of partitioned
// work. The modeled ISA has no atomics, so the barrier is the classic
// centralized sense-reversing construction over plain loads/stores:
//
//   words (u32, in the kernel's TCDM data segment):
//     sense          global release flag, flipped by hart 0 each episode
//     arrive[h]      per-hart arrival flag, holds the hart's local sense
//
//   per episode, each hart:
//     1. flips its local sense (kept in a register across episodes)
//     2. publishes it to arrive[hartid]
//     3. hart 0 waits until every arrive[i] equals the new sense, then
//        writes the global sense word (release); harts != 0 spin on the
//        global sense word
//
// Spinning harts keep retiring branches, so the cluster's deadlock watchdog
// never trips on a healthy barrier. The emitted code partitions by the
// runtime mhartid/mnumharts CSRs; the same program works at any cluster
// size up to `max_harts`.
#pragma once

#include <string>

#include "asm/builder.hpp"

namespace sch::kernels {

/// Barrier storage allocated in `b`'s data segment.
struct BarrierData {
  Addr sense = 0;   // global sense word
  Addr arrive = 0;  // max_harts arrival words
};

/// Reserve zero-initialized barrier words for up to `max_harts` harts.
BarrierData alloc_barrier(ProgramBuilder& b, u32 max_harts);

/// Emit one barrier episode. `sense_reg` carries the hart's local sense and
/// must be initialized to 0 once before the first episode and preserved
/// between episodes; `hart_reg` holds mhartid and `nharts_reg` holds
/// mnumharts (both read-only here). `tmp0..tmp2` are scratch. Labels are
/// prefixed with `label_prefix`, which must be unique per emitted episode.
void emit_barrier(ProgramBuilder& b, const BarrierData& bar, u8 hart_reg,
                  u8 nharts_reg, u8 sense_reg, u8 tmp0, u8 tmp1, u8 tmp2,
                  const std::string& label_prefix);

} // namespace sch::kernels
