// Dense GEMM C = A*B (A is MxK, B is KxN, C is MxN): a 2-D grid of
// independent reduction chains, the workhorse dataflow the paper's
// evaluation never reaches.
//  * kBaseline - the natural i/j/k loop order: one accumulator, a
//                1-instruction FREP body per (i,j) element; the serial
//                k-chain stalls fpu_depth cycles per fmadd;
//  * kChained  - four rows are interleaved through ONE chained accumulator
//                (the gemv trick lifted to a full matrix): the FIFO rotates
//                the four in-flight partial sums, the FREP body stays a
//                single instruction replayed 4K times, and utilization
//                approaches 1.
// All addressing lives in the 3-/4-D affine SSR streams (A on SSR0, B on
// SSR1 popped 4x per element in the chained variant, C written through
// SSR2); the integer core only counts groups. Both variants accumulate each
// C element in the same k order, so they share one bit-exact golden.
#pragma once

#include "kernels/kernel_common.hpp"

namespace sch::kernels {

enum class GemmVariant : u8 { kBaseline, kChained };

const char* gemm_variant_name(GemmVariant variant);

struct GemmParams {
  u32 m = 16;  // rows of A/C; multiple of 4
  u32 k = 16;  // inner (reduction) dimension
  u32 n = 16;  // columns of B/C
};

/// Build the kernel, its data image and the golden output (bit-exact FMA
/// ordering, identical across variants).
BuiltKernel build_gemm(GemmVariant variant, const GemmParams& params = {});

} // namespace sch::kernels
