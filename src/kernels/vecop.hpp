// The paper's running example (Fig. 1): the vector operation a = b * (c + d)
// on a stream-fed scalar core, in four scheduling variants:
//  * kBaseline   - Fig. 1a: one fadd/fmul pair per element; the RAW
//                  dependency wastes fpu_depth cycles per element;
//  * kUnrolled   - Fig. 1b: 4x unrolled software FIFO using ft3..ft6
//                  (+3 architectural registers);
//  * kChained    - Fig. 1c: scalar chaining on ft3 (CSR 0x7C3 mask = 8),
//                  same schedule with zero extra registers;
//  * kChainedFrep - chaining + FREP hardware loop (the 8-instruction body
//                  fits the sequencer, eliminating loop overhead too).
//  * kChainedPar - the chained+frep schedule, cluster-parallel: each hart
//                  claims a balanced share of the n/unroll element groups at
//                  runtime via mhartid/mnumharts (disjoint output slices).
#pragma once

#include "kernels/kernel_common.hpp"

namespace sch::kernels {

enum class VecopVariant : u8 {
  kBaseline,
  kUnrolled,
  kChained,
  kChainedFrep,
  kChainedPar,
};

const char* vecop_variant_name(VecopVariant variant);

struct VecopParams {
  u32 n = 256;       // elements; multiple of `unroll`
  double b = 2.0;    // the scalar constant
  /// Software-FIFO depth for kUnrolled/kChained/kChainedFrep (2..8). Must be
  /// >= fpu_depth + 1 to hide the FMA latency and <= fpu_depth + 1 for the
  /// chained variants to avoid FIFO overflow, i.e. exactly depth + 1.
  u32 unroll = 4;
};

/// Build the kernel and its golden output.
BuiltKernel build_vecop(VecopVariant variant, const VecopParams& params = {});

} // namespace sch::kernels
