// Dot product r = sum(x[i] * y[i]): the pure reduction dataflow, where the
// whole kernel is ONE dependency chain through the accumulator.
//  * kBaseline - the natural scalar loop: a single accumulator updated by a
//                1-instruction FREP body `fmadd ft3, ft0, ft1, ft3`; every
//                fmadd waits fpu_depth cycles for the previous one, so FPU
//                utilization collapses to ~1/fpu_depth;
//  * kChained  - ft3 is chained and seeded with `unroll` zeros: the SAME
//                1-instruction body now rotates `unroll` independent partial
//                sums through the FIFO, and the serial chain disappears. The
//                partials are drained and reduced sequentially at the end.
// The two variants accumulate in different orders, so each carries its own
// bit-exact golden value. SSR0 streams x, SSR1 streams y; the scalar result
// is stored with a plain fsd.
#pragma once

#include "kernels/kernel_common.hpp"

namespace sch::kernels {

enum class DotVariant : u8 { kBaseline, kChained };

const char* dot_variant_name(DotVariant variant);

struct DotParams {
  u32 n = 256;  // elements; multiple of `unroll`
  /// Rotating partial sums for kChained (2..8); must be <= fpu_depth + 1.
  u32 unroll = 4;
};

/// Build the kernel and its golden output (FMA accumulation order of the
/// selected variant).
BuiltKernel build_dot(DotVariant variant, const DotParams& params = {});

} // namespace sch::kernels
