// AXPY with an explicit mul->add dependency: z = a*x + y evaluated un-fused
// (one fmul, one fadd, two roundings per element), the minimal producer/
// consumer dataflow beyond Fig. 1's vecop:
//  * kBaseline - one fmul->fadd pair per element inside a 2-instruction FREP
//                body; the RAW dependency on the product wastes ~fpu_depth
//                cycles per element;
//  * kChained  - the product register ft3 is chained: `unroll` products are
//                pushed back-to-back and popped by the adds, hiding the FMA
//                latency with ZERO extra architectural registers.
//  * kChainedPar - the chained schedule, cluster-parallel: each hart reads
//                mhartid/mnumharts at runtime and claims a balanced share of
//                the n/unroll element groups (disjoint output slices, no
//                barrier needed); one binary works at any cluster size.
//  * kChainedDma - data starts in MAIN memory: each hart stages its tiles
//                through its private TCDM window with the Xdma engine,
//                strictly copy -> wait -> compute -> wait (no overlap); the
//                honest lower bound the dbuf variant must beat.
//  * kChainedDbuf - the same staging, double-buffered: the DMA copies tile
//                i+1 while the FPU computes tile i and the copy-back of
//                tile i-1 drains in the background, so the main-memory
//                latency is hidden behind compute.
// SSR0 streams x, SSR1 streams y, SSR2 absorbs z (out-of-place so the golden
// output is aliasing-free).
#pragma once

#include "kernels/kernel_common.hpp"

namespace sch::kernels {

enum class AxpyVariant : u8 {
  kBaseline, kChained, kChainedPar, kChainedDma, kChainedDbuf,
};

const char* axpy_variant_name(AxpyVariant variant);

struct AxpyParams {
  u32 n = 256;     // elements; multiple of `unroll` (and of `tile` for the
                   // main-memory variants)
  double a = 1.5;  // the scalar constant (exactly representable)
  /// Chained interleave depth (2..8); must be <= fpu_depth + 1 (the logical
  /// chain-FIFO capacity) or the chained variant deadlocks.
  u32 unroll = 4;
  /// Elements per staged tile of the main-memory variants; multiple of
  /// `unroll`, divides `n`. Each hart's double-buffer footprint is
  /// 6*tile*8 bytes of TCDM.
  u32 tile = 64;
};

/// Build the kernel and its golden output (two roundings per element,
/// never contracted to an FMA).
BuiltKernel build_axpy(AxpyVariant variant, const AxpyParams& params = {});

} // namespace sch::kernels
