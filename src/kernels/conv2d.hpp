// 2-D convolution (3x3 filter, "valid" extent) over a row-major image: a
// sliding-window dataflow with a flipped filter, fed by a SARIS-style
// indirect gather stream (16-bit index array on SSR0) so window rows and
// output-row wraps need no affine gymnastics.
//  * kBaseline - the natural per-output loop: 9 serial fmul/fmadd taps into
//                one accumulator, as a 9-instruction FREP body replayed once
//                per output point; every tap stalls on the previous one;
//  * kChained  - 4 output points interleave through one chained accumulator
//                (tap-major order): 36 independent ops per group, no serial
//                chain, one architectural register.
// All 9 filter weights stay resident in f4..f12 in both variants; the
// output is written through the SSR2 write stream. Both variants apply taps
// in the same per-point order, so they share one bit-exact golden.
#pragma once

#include "kernels/kernel_common.hpp"

namespace sch::kernels {

enum class Conv2dVariant : u8 { kBaseline, kChained };

const char* conv2d_variant_name(Conv2dVariant variant);

struct Conv2dParams {
  u32 h = 10;  // image height incl. the 1-pixel valid border
  u32 w = 14;  // image width; (h-2)*(w-2) must be a multiple of 4
};

/// Output points (h-2)*(w-2).
u32 conv2d_output_points(const Conv2dParams& params);

/// Build the kernel, its image/filter data and the golden output.
BuiltKernel build_conv2d(Conv2dVariant variant, const Conv2dParams& params = {});

} // namespace sch::kernels
