#include "kernels/gemv.hpp"

#include <cmath>
#include <stdexcept>

#include "asm/builder.hpp"
#include "isa/csr.hpp"
#include "isa/reg.hpp"
#include "kernels/dma_util.hpp"
#include "kernels/partition.hpp"
#include "kernels/registry.hpp"
#include "ssr/ssr_config.hpp"

namespace sch::kernels {

using ssr::CfgReg;

namespace {

double a_value(u32 r, u32 c) {
  return 0.0625 * static_cast<double>((r * 13 + c * 7 + 1) % 97) - 3.0;
}
double x_value(u32 c) {
  return 0.125 * static_cast<double>((c * 11 + 5) % 41) - 2.5;
}

void cfg(ProgramBuilder& b, u32 ssr_id, CfgReg reg, i64 value) {
  b.li(isa::kT0, value);
  b.scfgw(isa::kT0, ssr::cfg_index(ssr_id, reg));
}

CfgReg plus(CfgReg base, u32 d) {
  return static_cast<CfgReg>(static_cast<u32>(base) + d);
}

} // namespace

const char* gemv_variant_name(GemvVariant v) {
  switch (v) {
    case GemvVariant::kUnrolledAcc: return "unrolled-acc";
    case GemvVariant::kChained: return "chained";
    case GemvVariant::kChainedPar: return "chained_par";
    case GemvVariant::kChainedDma: return "chained_dma";
    case GemvVariant::kChainedDbuf: return "chained_dbuf";
  }
  return "?";
}

namespace {

/// Cluster-parallel chained GEMV: row groups of 4 are split across harts at
/// runtime; every SSR bound/pointer that depends on the hart's share is
/// computed in registers before arming.
BuiltKernel build_gemv_par(const GemvParams& p) {
  ProgramBuilder b;

  std::vector<double> a(static_cast<usize>(p.m) * p.n), x(p.n);
  for (u32 r = 0; r < p.m; ++r) {
    for (u32 c = 0; c < p.n; ++c) a[r * p.n + c] = a_value(r, c);
  }
  for (u32 c = 0; c < p.n; ++c) x[c] = x_value(c);
  const Addr a_base = b.data_f64(a);
  const Addr x_base = b.data_f64(x);
  const Addr y_base = b.data_zero(p.m * 8);

  BuiltKernel out;
  out.name = std::string("gemv/") + gemv_variant_name(GemvVariant::kChainedPar);
  out.out_base = y_base;
  out.regions = {{"A", a_base, static_cast<u64>(p.m) * p.n * 8},
                 {"x", x_base, p.n * 8ull},
                 {"y", y_base, p.m * 8ull, /*written=*/true}};
  out.expected.resize(p.m);
  for (u32 r = 0; r < p.m; ++r) {
    double acc = 0.0;
    for (u32 c = 0; c < p.n; ++c) acc = std::fma(a[r * p.n + c], x[c], acc);
    out.expected[r] = acc;
  }
  out.useful_flops = static_cast<u64>(p.m) * p.n;
  out.regs.ssr_regs = 3;
  out.regs.accumulator_regs = 1;
  out.regs.chained_regs = 1;
  out.regs.fp_regs_used = 4;

  const i64 row = static_cast<i64>(p.n) * 8;
  const u32 groups = p.m / 4;

  // a3 = hartid, a4 = nharts, s0 = first row group, a5 = group count.
  emit_group_partition(b, groups, isa::kA3, isa::kA4, isa::kS0, isa::kA5,
                       isa::kT0, "par_done");
  b.addi(isa::kA6, isa::kA5, -1);          // group bound = cnt - 1
  b.li(isa::kT1, static_cast<i64>(4 * row)); // bytes per 4-row group
  b.mul(isa::kA7, isa::kS0, isa::kT1);     // A byte offset of the slice

  // SSR0: this hart's slice of A in 4-row-interleaved k-major order.
  cfg(b, 0, CfgReg::kBound0, 3);
  cfg(b, 0, plus(CfgReg::kStride0, 0), row);
  cfg(b, 0, plus(CfgReg::kBound0, 1), p.n - 1);
  cfg(b, 0, plus(CfgReg::kStride0, 1), 8 - 3 * row);
  b.scfgw(isa::kA6, ssr::cfg_index(0, plus(CfgReg::kBound0, 2)));
  cfg(b, 0, plus(CfgReg::kStride0, 2), 8);
  b.la(isa::kT1, a_base);
  b.add(isa::kT1, isa::kT1, isa::kA7);
  b.scfgw(isa::kT1, ssr::cfg_index(0, plus(CfgReg::kRptr0, 2)));

  // SSR1: x, each element popped 4x, wrapped per group of this hart's share.
  cfg(b, 1, CfgReg::kRepeat, 3);
  cfg(b, 1, CfgReg::kBound0, p.n - 1);
  cfg(b, 1, plus(CfgReg::kStride0, 0), 8);
  b.scfgw(isa::kA6, ssr::cfg_index(1, plus(CfgReg::kBound0, 1)));
  cfg(b, 1, plus(CfgReg::kStride0, 1), -static_cast<i64>(p.n - 1) * 8);
  b.li(isa::kT1, static_cast<i64>(x_base));
  b.scfgw(isa::kT1, ssr::cfg_index(1, plus(CfgReg::kRptr0, 1)));

  // SSR2: this hart's y slice, contiguous (4 rows per group).
  b.slli(isa::kT1, isa::kA5, 2);
  b.addi(isa::kT1, isa::kT1, -1);
  b.scfgw(isa::kT1, ssr::cfg_index(2, CfgReg::kBound0));
  cfg(b, 2, plus(CfgReg::kStride0, 0), 8);
  b.slli(isa::kT1, isa::kS0, 5); // first group * 4 rows * 8 bytes
  b.la(isa::kT2, y_base);
  b.add(isa::kT1, isa::kT1, isa::kT2);
  b.scfgw(isa::kT1, ssr::cfg_index(2, CfgReg::kWptr0));

  b.csrwi(isa::csr::kSsrEnable, 1);
  b.li(isa::kT0, 8); // chain ft3
  b.csrs(isa::csr::kChainMask, isa::kT0);
  b.mv(isa::kT2, isa::kA5); // group counter
  b.li(isa::kT3, static_cast<i64>(4 * p.n - 1));

  b.label("par_group");
  for (int i = 0; i < 4; ++i) b.fcvt_d_w(isa::kFt3, 0);
  b.frep_o(isa::kT3, 1);
  b.fmadd_d(isa::kFt3, isa::kFt0, isa::kFt1, isa::kFt3);
  for (int i = 0; i < 4; ++i) b.fmv_d(isa::kFt2, isa::kFt3); // drain -> y
  b.addi(isa::kT2, isa::kT2, -1);
  b.bnez(isa::kT2, "par_group");

  b.csrw(isa::csr::kChainMask, 0);
  b.csrwi(isa::csr::kSsrEnable, 0);
  b.label("par_done");
  b.ecall();

  out.program = b.build();
  return out;
}

/// Main-memory GEMV staged through TCDM with the Xdma engine: x is copied
/// into each hart's window once, then blocks of `rtile` rows of A stream
/// through two ping-pong buffers while the per-block y slice is computed
/// into a TCDM staging buffer and DMA'd back out. `overlap` selects
/// double-buffering (prefetch block i+1 during compute of block i) versus
/// the strict copy-then-compute sequence.
BuiltKernel build_gemv_dbuf(const GemvParams& p, bool overlap) {
  const u32 rt = p.rtile;
  const u32 blocks = p.m / rt;
  const i64 row = static_cast<i64>(p.n) * 8;
  const i64 xb = row;                          // x buffer bytes
  const i64 ab = static_cast<i64>(rt) * row;   // A block bytes
  const i64 yb = static_cast<i64>(rt) * 8;     // y block bytes
  ProgramBuilder b(memmap::kTextBase, memmap::kMainBase);

  std::vector<double> a(static_cast<usize>(p.m) * p.n), x(p.n);
  for (u32 r = 0; r < p.m; ++r) {
    for (u32 c = 0; c < p.n; ++c) a[r * p.n + c] = a_value(r, c);
  }
  for (u32 c = 0; c < p.n; ++c) x[c] = x_value(c);
  const Addr a_base = b.data_f64(a);
  const Addr x_base = b.data_f64(x);
  const Addr y_base = b.data_zero(p.m * 8);

  BuiltKernel out;
  out.name = std::string("gemv/") +
             gemv_variant_name(overlap ? GemvVariant::kChainedDbuf
                                       : GemvVariant::kChainedDma);
  out.out_base = y_base;
  out.regions = {{"A (main)", a_base, static_cast<u64>(p.m) * p.n * 8},
                 {"x (main)", x_base, p.n * 8ull},
                 {"y (main)", y_base, p.m * 8ull, /*written=*/true},
                 {"tcdm staging", memmap::kTcdmBase, memmap::kTcdmSize,
                  /*written=*/true}};
  out.expected.resize(p.m);
  for (u32 r = 0; r < p.m; ++r) {
    double acc = 0.0;
    for (u32 c = 0; c < p.n; ++c) acc = std::fma(a[r * p.n + c], x[c], acc);
    out.expected[r] = acc;
  }
  out.useful_flops = static_cast<u64>(p.m) * p.n;
  out.regs.ssr_regs = 3;
  out.regs.accumulator_regs = 1;
  out.regs.chained_regs = 1;
  out.regs.fp_regs_used = 4;

  // a3 = hartid, a4 = nharts, s0 = first block, a5 = block count.
  emit_group_partition(b, blocks, isa::kA3, isa::kA4, isa::kS0, isa::kA5,
                       isa::kT0, "gd_done");

  // Per-hart TCDM window: [x][A ping][A pong][y ping][y pong].
  b.li(isa::kT0, xb + 2 * ab + 2 * yb);
  b.mul(isa::kS1, isa::kA3, isa::kT0);
  b.li(isa::kT0, static_cast<i64>(memmap::kTcdmBase));
  b.add(isa::kS1, isa::kS1, isa::kT0);
  b.li(isa::kA6, ab);
  b.li(isa::kA7, yb);
  b.li(isa::kT0, xb);
  b.add(isa::kS2, isa::kS1, isa::kT0);   // s2 = A ping
  b.add(isa::kS3, isa::kS2, isa::kA6);   // s3 = A pong
  b.add(isa::kS4, isa::kS3, isa::kA6);   // s4 = y ping
  b.add(isa::kS5, isa::kS4, isa::kA7);   // s5 = y pong

  // Main-memory block cursors of this hart's slice.
  b.mul(isa::kT1, isa::kS0, isa::kA6);
  b.la(isa::kS6, a_base);
  b.add(isa::kS6, isa::kS6, isa::kT1);
  b.mul(isa::kT1, isa::kS0, isa::kA7);
  b.la(isa::kS7, y_base);
  b.add(isa::kS7, isa::kS7, isa::kT1);

  // Block-shaped SSR bounds/strides, set once; pointers re-arm per block.
  // SSR0: the A block in 4-row-interleaved k-major order.
  cfg(b, 0, CfgReg::kBound0, 3);
  cfg(b, 0, plus(CfgReg::kStride0, 0), row);
  cfg(b, 0, plus(CfgReg::kBound0, 1), p.n - 1);
  cfg(b, 0, plus(CfgReg::kStride0, 1), 8 - 3 * row);
  cfg(b, 0, plus(CfgReg::kBound0, 2), rt / 4 - 1);
  cfg(b, 0, plus(CfgReg::kStride0, 2), 8);
  // SSR1: x, each element popped 4x, wrapped per group of the block.
  cfg(b, 1, CfgReg::kRepeat, 3);
  cfg(b, 1, CfgReg::kBound0, p.n - 1);
  cfg(b, 1, plus(CfgReg::kStride0, 0), 8);
  cfg(b, 1, plus(CfgReg::kBound0, 1), rt / 4 - 1);
  cfg(b, 1, plus(CfgReg::kStride0, 1), -static_cast<i64>(p.n - 1) * 8);
  // SSR2: the block's y slice, contiguous.
  cfg(b, 2, CfgReg::kBound0, rt - 1);
  cfg(b, 2, plus(CfgReg::kStride0, 0), 8);

  b.li(isa::kT0, 8); // chain ft3
  b.csrs(isa::csr::kChainMask, isa::kT0);
  b.li(isa::kT3, static_cast<i64>(4 * p.n - 1));
  b.mv(isa::kS8, isa::kA5); // block loop counter

  // Prologue: stage x once, then the first A block; the A copy's id is the
  // newest, so waiting on it covers the x copy too (FIFO completion).
  b.la(isa::kT0, x_base);
  b.dmsrc(isa::kT0);
  b.dmdst(isa::kS1);
  b.li(isa::kT0, xb);
  b.dmcpy(isa::kT6, isa::kT0);
  const auto fetch_block = [&](u8 buf, u8 want_rd) {
    emit_dma_copy(b, isa::kS6, buf, isa::kA6, want_rd);
    b.add(isa::kS6, isa::kS6, isa::kA6);
  };
  if (overlap) fetch_block(isa::kS2, isa::kS9);

  b.label("gd_block");
  if (!overlap) fetch_block(isa::kS2, isa::kS9);
  emit_dma_wait(b, isa::kT5, isa::kS9, "gd_wait");
  if (overlap) {
    b.addi(isa::kT0, isa::kS8, -1);
    b.beqz(isa::kT0, "gd_skip_pf");
    fetch_block(isa::kS3, isa::kS11);
    b.label("gd_skip_pf");
  }

  // Arm the streams at the current buffers and run the chained block.
  b.scfgw(isa::kS2, ssr::cfg_index(0, plus(CfgReg::kRptr0, 2)));
  b.scfgw(isa::kS1, ssr::cfg_index(1, plus(CfgReg::kRptr0, 1)));
  b.scfgw(isa::kS4, ssr::cfg_index(2, CfgReg::kWptr0));
  b.csrwi(isa::csr::kSsrEnable, 1);
  b.li(isa::kT2, static_cast<i64>(rt / 4)); // group counter within the block
  b.label("gd_group");
  for (int i = 0; i < 4; ++i) b.fcvt_d_w(isa::kFt3, 0);
  b.frep_o(isa::kT3, 1);
  b.fmadd_d(isa::kFt3, isa::kFt0, isa::kFt1, isa::kFt3);
  for (int i = 0; i < 4; ++i) b.fmv_d(isa::kFt2, isa::kFt3); // drain -> y buf
  b.addi(isa::kT2, isa::kT2, -1);
  b.bnez(isa::kT2, "gd_group");
  // Serializes on FP quiescence: the y staging buffer is fully drained
  // before the copy-back below reads it.
  b.csrwi(isa::csr::kSsrEnable, 0);

  emit_dma_copy(b, isa::kS4, isa::kS7, isa::kA7, isa::kT6);
  b.add(isa::kS7, isa::kS7, isa::kA7);

  if (overlap) {
    b.mv(isa::kS9, isa::kS11);
    b.mv(isa::kT0, isa::kS2); // swap A buffers
    b.mv(isa::kS2, isa::kS3);
    b.mv(isa::kS3, isa::kT0);
    b.mv(isa::kT0, isa::kS4); // swap y buffers
    b.mv(isa::kS4, isa::kS5);
    b.mv(isa::kS5, isa::kT0);
  } else {
    emit_dma_drain(b, isa::kT5, "gd_ydrain");
  }
  b.addi(isa::kS8, isa::kS8, -1);
  b.bnez(isa::kS8, "gd_block");

  if (overlap) emit_dma_drain(b, isa::kT5, "gd_drain");
  b.csrw(isa::csr::kChainMask, 0);
  b.label("gd_done");
  b.ecall();

  out.program = b.build();
  return out;
}

} // namespace

BuiltKernel build_gemv(GemvVariant variant, const GemvParams& p) {
  if (p.m == 0 || p.m % 4 != 0 || p.n == 0) {
    throw std::invalid_argument("gemv: m must be a positive multiple of 4");
  }
  if (variant == GemvVariant::kChainedPar) return build_gemv_par(p);
  if (variant == GemvVariant::kChainedDma ||
      variant == GemvVariant::kChainedDbuf) {
    if (p.rtile == 0 || p.rtile % 4 != 0 || p.m % p.rtile != 0) {
      throw std::invalid_argument(
          "gemv: rtile must be a positive multiple of 4 dividing m");
    }
    const u64 per_hart =
        (static_cast<u64>(p.n) + 2ull * p.rtile * p.n + 2ull * p.rtile) * 8;
    if (per_hart > memmap::kTcdmSize) {
      throw std::invalid_argument(
          "gemv: rtile double-buffer exceeds the TCDM (each hart's window is "
          "(n + 2*rtile*n + 2*rtile)*8 bytes; num_cores windows must all "
          "fit, so multi-core runs need proportionally smaller rtile)");
    }
    return build_gemv_dbuf(p, variant == GemvVariant::kChainedDbuf);
  }
  ProgramBuilder b;

  std::vector<double> a(static_cast<usize>(p.m) * p.n), x(p.n);
  for (u32 r = 0; r < p.m; ++r) {
    for (u32 c = 0; c < p.n; ++c) a[r * p.n + c] = a_value(r, c);
  }
  for (u32 c = 0; c < p.n; ++c) x[c] = x_value(c);
  const Addr a_base = b.data_f64(a);
  const Addr x_base = b.data_f64(x);
  const Addr y_base = b.data_zero(p.m * 8);

  BuiltKernel out;
  out.name = std::string("gemv/") + gemv_variant_name(variant);
  out.out_base = y_base;
  out.regions = {{"A", a_base, static_cast<u64>(p.m) * p.n * 8},
                 {"x", x_base, p.n * 8ull},
                 {"y", y_base, p.m * 8ull, /*written=*/true}};
  out.expected.resize(p.m);
  for (u32 r = 0; r < p.m; ++r) {
    double acc = 0.0;
    for (u32 c = 0; c < p.n; ++c) acc = std::fma(a[r * p.n + c], x[c], acc);
    out.expected[r] = acc;
  }
  out.useful_flops = static_cast<u64>(p.m) * p.n;

  const i64 row = static_cast<i64>(p.n) * 8;

  // SSR0: A in 4-row-interleaved k-major order.
  //   d0: the 4 rows of a group     (stride = row pitch)
  //   d1: the n columns             (stride = back 3 rows, over 1 column)
  //   d2: the m/4 groups            (stride = 8, see layout arithmetic)
  cfg(b, 0, CfgReg::kBound0, 3);
  cfg(b, 0, plus(CfgReg::kStride0, 0), row);
  cfg(b, 0, plus(CfgReg::kBound0, 1), p.n - 1);
  cfg(b, 0, plus(CfgReg::kStride0, 1), 8 - 3 * row);
  cfg(b, 0, plus(CfgReg::kBound0, 2), p.m / 4 - 1);
  cfg(b, 0, plus(CfgReg::kStride0, 2), 8);
  b.li(isa::kT1, static_cast<i64>(a_base));
  b.scfgw(isa::kT1, ssr::cfg_index(0, plus(CfgReg::kRptr0, 2)));

  // SSR1: x, each element popped 4x (one per interleaved row), wrapped per
  // group.
  cfg(b, 1, CfgReg::kRepeat, 3);
  cfg(b, 1, CfgReg::kBound0, p.n - 1);
  cfg(b, 1, plus(CfgReg::kStride0, 0), 8);
  cfg(b, 1, plus(CfgReg::kBound0, 1), p.m / 4 - 1);
  cfg(b, 1, plus(CfgReg::kStride0, 1), -static_cast<i64>(p.n - 1) * 8);
  b.li(isa::kT1, static_cast<i64>(x_base));
  b.scfgw(isa::kT1, ssr::cfg_index(1, plus(CfgReg::kRptr0, 1)));

  // SSR2: y writeback, contiguous.
  cfg(b, 2, CfgReg::kBound0, p.m - 1);
  cfg(b, 2, plus(CfgReg::kStride0, 0), 8);
  b.li(isa::kT1, static_cast<i64>(y_base));
  b.scfgw(isa::kT1, ssr::cfg_index(2, CfgReg::kWptr0));

  b.csrwi(isa::csr::kSsrEnable, 1);

  if (variant == GemvVariant::kChained) {
    b.li(isa::kT0, 8); // chain ft3
    b.csrs(isa::csr::kChainMask, isa::kT0);
  }
  b.li(isa::kT2, static_cast<i64>(p.m / 4)); // group counter
  b.li(isa::kT3, variant == GemvVariant::kChained
                     ? static_cast<i64>(4 * p.n - 1)
                     : static_cast<i64>(p.n - 1));

  b.label("group");
  if (variant == GemvVariant::kChained) {
    // Four zero partial sums into the FIFO, then ONE fmadd replayed 4n
    // times: the FIFO rotates the four in-flight sums by construction.
    for (int i = 0; i < 4; ++i) b.fcvt_d_w(isa::kFt3, 0);
    b.frep_o(isa::kT3, 1);
    b.fmadd_d(isa::kFt3, isa::kFt0, isa::kFt1, isa::kFt3);
    for (int i = 0; i < 4; ++i) b.fmv_d(isa::kFt2, isa::kFt3); // drain -> y
    out.regs.accumulator_regs = 1;
    out.regs.chained_regs = 1;
    out.regs.fp_regs_used = 4; // ft0..ft2 + ft3
  } else {
    // Four accumulator registers, four-instruction FREP body.
    for (int i = 0; i < 4; ++i) b.fcvt_d_w(static_cast<u8>(isa::kFt4 + i), 0);
    b.frep_o(isa::kT3, 4);
    for (int i = 0; i < 4; ++i) {
      const u8 acc = static_cast<u8>(isa::kFt4 + i);
      b.fmadd_d(acc, isa::kFt0, isa::kFt1, acc);
    }
    for (int i = 0; i < 4; ++i) {
      b.fmv_d(isa::kFt2, static_cast<u8>(isa::kFt4 + i));
    }
    out.regs.accumulator_regs = 4;
    out.regs.fp_regs_used = 7; // ft0..ft2 + ft4..ft7
  }
  b.addi(isa::kT2, isa::kT2, -1);
  b.bnez(isa::kT2, "group");

  if (variant == GemvVariant::kChained) b.csrw(isa::csr::kChainMask, 0);
  b.csrwi(isa::csr::kSsrEnable, 0);
  b.ecall();

  out.regs.ssr_regs = 3;
  out.program = b.build();
  return out;
}

void register_gemv_kernels(Registry& r) {
  r.add(KernelEntry{
      .name = "gemv",
      .description = "dense y = A*x, 4-row reduction interleave through SSRs",
      .variants = {"unrolled-acc", "chained", "chained_par", "chained_dma",
                   "chained_dbuf"},
      .baseline_variant = "unrolled-acc",
      .chained_variant = "chained",
      .params = {{"m", 32, "rows (multiple of 4)"}, {"n", 24, "columns"},
                 {"rtile", 8, "rows per DMA-staged block (main-memory "
                              "variants; multiple of 4 dividing m)"}},
      .build = [](const std::string& variant, const SizeMap& sizes) {
        GemvParams p;
        p.m = static_cast<u32>(size_or(sizes, "m", p.m));
        p.n = static_cast<u32>(size_or(sizes, "n", p.n));
        p.rtile = static_cast<u32>(size_or(sizes, "rtile", p.rtile));
        for (GemvVariant v : {GemvVariant::kUnrolledAcc, GemvVariant::kChained,
                              GemvVariant::kChainedPar,
                              GemvVariant::kChainedDma,
                              GemvVariant::kChainedDbuf}) {
          if (variant == gemv_variant_name(v)) return build_gemv(v, p);
        }
        throw std::invalid_argument("gemv: unknown variant '" + variant + "'");
      }});
}

} // namespace sch::kernels
