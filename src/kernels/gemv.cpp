#include "kernels/gemv.hpp"

#include <cmath>
#include <stdexcept>

#include "asm/builder.hpp"
#include "isa/csr.hpp"
#include "isa/reg.hpp"
#include "kernels/partition.hpp"
#include "kernels/registry.hpp"
#include "ssr/ssr_config.hpp"

namespace sch::kernels {

using ssr::CfgReg;

namespace {

double a_value(u32 r, u32 c) {
  return 0.0625 * static_cast<double>((r * 13 + c * 7 + 1) % 97) - 3.0;
}
double x_value(u32 c) {
  return 0.125 * static_cast<double>((c * 11 + 5) % 41) - 2.5;
}

void cfg(ProgramBuilder& b, u32 ssr_id, CfgReg reg, i64 value) {
  b.li(isa::kT0, value);
  b.scfgw(isa::kT0, ssr::cfg_index(ssr_id, reg));
}

CfgReg plus(CfgReg base, u32 d) {
  return static_cast<CfgReg>(static_cast<u32>(base) + d);
}

} // namespace

const char* gemv_variant_name(GemvVariant v) {
  switch (v) {
    case GemvVariant::kUnrolledAcc: return "unrolled-acc";
    case GemvVariant::kChained: return "chained";
    case GemvVariant::kChainedPar: return "chained_par";
  }
  return "?";
}

namespace {

/// Cluster-parallel chained GEMV: row groups of 4 are split across harts at
/// runtime; every SSR bound/pointer that depends on the hart's share is
/// computed in registers before arming.
BuiltKernel build_gemv_par(const GemvParams& p) {
  ProgramBuilder b;

  std::vector<double> a(static_cast<usize>(p.m) * p.n), x(p.n);
  for (u32 r = 0; r < p.m; ++r) {
    for (u32 c = 0; c < p.n; ++c) a[r * p.n + c] = a_value(r, c);
  }
  for (u32 c = 0; c < p.n; ++c) x[c] = x_value(c);
  const Addr a_base = b.data_f64(a);
  const Addr x_base = b.data_f64(x);
  const Addr y_base = b.data_zero(p.m * 8);

  BuiltKernel out;
  out.name = std::string("gemv/") + gemv_variant_name(GemvVariant::kChainedPar);
  out.out_base = y_base;
  out.expected.resize(p.m);
  for (u32 r = 0; r < p.m; ++r) {
    double acc = 0.0;
    for (u32 c = 0; c < p.n; ++c) acc = std::fma(a[r * p.n + c], x[c], acc);
    out.expected[r] = acc;
  }
  out.useful_flops = static_cast<u64>(p.m) * p.n;
  out.regs.ssr_regs = 3;
  out.regs.accumulator_regs = 1;
  out.regs.chained_regs = 1;
  out.regs.fp_regs_used = 4;

  const i64 row = static_cast<i64>(p.n) * 8;
  const u32 groups = p.m / 4;

  // a3 = hartid, a4 = nharts, s0 = first row group, a5 = group count.
  emit_group_partition(b, groups, isa::kA3, isa::kA4, isa::kS0, isa::kA5,
                       isa::kT0, "par_done");
  b.addi(isa::kA6, isa::kA5, -1);          // group bound = cnt - 1
  b.li(isa::kT1, static_cast<i64>(4 * row)); // bytes per 4-row group
  b.mul(isa::kA7, isa::kS0, isa::kT1);     // A byte offset of the slice

  // SSR0: this hart's slice of A in 4-row-interleaved k-major order.
  cfg(b, 0, CfgReg::kBound0, 3);
  cfg(b, 0, plus(CfgReg::kStride0, 0), row);
  cfg(b, 0, plus(CfgReg::kBound0, 1), p.n - 1);
  cfg(b, 0, plus(CfgReg::kStride0, 1), 8 - 3 * row);
  b.scfgw(isa::kA6, ssr::cfg_index(0, plus(CfgReg::kBound0, 2)));
  cfg(b, 0, plus(CfgReg::kStride0, 2), 8);
  b.la(isa::kT1, a_base);
  b.add(isa::kT1, isa::kT1, isa::kA7);
  b.scfgw(isa::kT1, ssr::cfg_index(0, plus(CfgReg::kRptr0, 2)));

  // SSR1: x, each element popped 4x, wrapped per group of this hart's share.
  cfg(b, 1, CfgReg::kRepeat, 3);
  cfg(b, 1, CfgReg::kBound0, p.n - 1);
  cfg(b, 1, plus(CfgReg::kStride0, 0), 8);
  b.scfgw(isa::kA6, ssr::cfg_index(1, plus(CfgReg::kBound0, 1)));
  cfg(b, 1, plus(CfgReg::kStride0, 1), -static_cast<i64>(p.n - 1) * 8);
  b.li(isa::kT1, static_cast<i64>(x_base));
  b.scfgw(isa::kT1, ssr::cfg_index(1, plus(CfgReg::kRptr0, 1)));

  // SSR2: this hart's y slice, contiguous (4 rows per group).
  b.slli(isa::kT1, isa::kA5, 2);
  b.addi(isa::kT1, isa::kT1, -1);
  b.scfgw(isa::kT1, ssr::cfg_index(2, CfgReg::kBound0));
  cfg(b, 2, plus(CfgReg::kStride0, 0), 8);
  b.slli(isa::kT1, isa::kS0, 5); // first group * 4 rows * 8 bytes
  b.la(isa::kT2, y_base);
  b.add(isa::kT1, isa::kT1, isa::kT2);
  b.scfgw(isa::kT1, ssr::cfg_index(2, CfgReg::kWptr0));

  b.csrwi(isa::csr::kSsrEnable, 1);
  b.li(isa::kT0, 8); // chain ft3
  b.csrs(isa::csr::kChainMask, isa::kT0);
  b.mv(isa::kT2, isa::kA5); // group counter
  b.li(isa::kT3, static_cast<i64>(4 * p.n - 1));

  b.label("par_group");
  for (int i = 0; i < 4; ++i) b.fcvt_d_w(isa::kFt3, 0);
  b.frep_o(isa::kT3, 1);
  b.fmadd_d(isa::kFt3, isa::kFt0, isa::kFt1, isa::kFt3);
  for (int i = 0; i < 4; ++i) b.fmv_d(isa::kFt2, isa::kFt3); // drain -> y
  b.addi(isa::kT2, isa::kT2, -1);
  b.bnez(isa::kT2, "par_group");

  b.csrw(isa::csr::kChainMask, 0);
  b.csrwi(isa::csr::kSsrEnable, 0);
  b.label("par_done");
  b.ecall();

  out.program = b.build();
  return out;
}

} // namespace

BuiltKernel build_gemv(GemvVariant variant, const GemvParams& p) {
  if (p.m == 0 || p.m % 4 != 0 || p.n == 0) {
    throw std::invalid_argument("gemv: m must be a positive multiple of 4");
  }
  if (variant == GemvVariant::kChainedPar) return build_gemv_par(p);
  ProgramBuilder b;

  std::vector<double> a(static_cast<usize>(p.m) * p.n), x(p.n);
  for (u32 r = 0; r < p.m; ++r) {
    for (u32 c = 0; c < p.n; ++c) a[r * p.n + c] = a_value(r, c);
  }
  for (u32 c = 0; c < p.n; ++c) x[c] = x_value(c);
  const Addr a_base = b.data_f64(a);
  const Addr x_base = b.data_f64(x);
  const Addr y_base = b.data_zero(p.m * 8);

  BuiltKernel out;
  out.name = std::string("gemv/") + gemv_variant_name(variant);
  out.out_base = y_base;
  out.expected.resize(p.m);
  for (u32 r = 0; r < p.m; ++r) {
    double acc = 0.0;
    for (u32 c = 0; c < p.n; ++c) acc = std::fma(a[r * p.n + c], x[c], acc);
    out.expected[r] = acc;
  }
  out.useful_flops = static_cast<u64>(p.m) * p.n;

  const i64 row = static_cast<i64>(p.n) * 8;

  // SSR0: A in 4-row-interleaved k-major order.
  //   d0: the 4 rows of a group     (stride = row pitch)
  //   d1: the n columns             (stride = back 3 rows, over 1 column)
  //   d2: the m/4 groups            (stride = 8, see layout arithmetic)
  cfg(b, 0, CfgReg::kBound0, 3);
  cfg(b, 0, plus(CfgReg::kStride0, 0), row);
  cfg(b, 0, plus(CfgReg::kBound0, 1), p.n - 1);
  cfg(b, 0, plus(CfgReg::kStride0, 1), 8 - 3 * row);
  cfg(b, 0, plus(CfgReg::kBound0, 2), p.m / 4 - 1);
  cfg(b, 0, plus(CfgReg::kStride0, 2), 8);
  b.li(isa::kT1, static_cast<i64>(a_base));
  b.scfgw(isa::kT1, ssr::cfg_index(0, plus(CfgReg::kRptr0, 2)));

  // SSR1: x, each element popped 4x (one per interleaved row), wrapped per
  // group.
  cfg(b, 1, CfgReg::kRepeat, 3);
  cfg(b, 1, CfgReg::kBound0, p.n - 1);
  cfg(b, 1, plus(CfgReg::kStride0, 0), 8);
  cfg(b, 1, plus(CfgReg::kBound0, 1), p.m / 4 - 1);
  cfg(b, 1, plus(CfgReg::kStride0, 1), -static_cast<i64>(p.n - 1) * 8);
  b.li(isa::kT1, static_cast<i64>(x_base));
  b.scfgw(isa::kT1, ssr::cfg_index(1, plus(CfgReg::kRptr0, 1)));

  // SSR2: y writeback, contiguous.
  cfg(b, 2, CfgReg::kBound0, p.m - 1);
  cfg(b, 2, plus(CfgReg::kStride0, 0), 8);
  b.li(isa::kT1, static_cast<i64>(y_base));
  b.scfgw(isa::kT1, ssr::cfg_index(2, CfgReg::kWptr0));

  b.csrwi(isa::csr::kSsrEnable, 1);

  if (variant == GemvVariant::kChained) {
    b.li(isa::kT0, 8); // chain ft3
    b.csrs(isa::csr::kChainMask, isa::kT0);
  }
  b.li(isa::kT2, static_cast<i64>(p.m / 4)); // group counter
  b.li(isa::kT3, variant == GemvVariant::kChained
                     ? static_cast<i64>(4 * p.n - 1)
                     : static_cast<i64>(p.n - 1));

  b.label("group");
  if (variant == GemvVariant::kChained) {
    // Four zero partial sums into the FIFO, then ONE fmadd replayed 4n
    // times: the FIFO rotates the four in-flight sums by construction.
    for (int i = 0; i < 4; ++i) b.fcvt_d_w(isa::kFt3, 0);
    b.frep_o(isa::kT3, 1);
    b.fmadd_d(isa::kFt3, isa::kFt0, isa::kFt1, isa::kFt3);
    for (int i = 0; i < 4; ++i) b.fmv_d(isa::kFt2, isa::kFt3); // drain -> y
    out.regs.accumulator_regs = 1;
    out.regs.chained_regs = 1;
    out.regs.fp_regs_used = 4; // ft0..ft2 + ft3
  } else {
    // Four accumulator registers, four-instruction FREP body.
    for (int i = 0; i < 4; ++i) b.fcvt_d_w(static_cast<u8>(isa::kFt4 + i), 0);
    b.frep_o(isa::kT3, 4);
    for (int i = 0; i < 4; ++i) {
      const u8 acc = static_cast<u8>(isa::kFt4 + i);
      b.fmadd_d(acc, isa::kFt0, isa::kFt1, acc);
    }
    for (int i = 0; i < 4; ++i) {
      b.fmv_d(isa::kFt2, static_cast<u8>(isa::kFt4 + i));
    }
    out.regs.accumulator_regs = 4;
    out.regs.fp_regs_used = 7; // ft0..ft2 + ft4..ft7
  }
  b.addi(isa::kT2, isa::kT2, -1);
  b.bnez(isa::kT2, "group");

  if (variant == GemvVariant::kChained) b.csrw(isa::csr::kChainMask, 0);
  b.csrwi(isa::csr::kSsrEnable, 0);
  b.ecall();

  out.regs.ssr_regs = 3;
  out.program = b.build();
  return out;
}

void register_gemv_kernels(Registry& r) {
  r.add(KernelEntry{
      .name = "gemv",
      .description = "dense y = A*x, 4-row reduction interleave through SSRs",
      .variants = {"unrolled-acc", "chained", "chained_par"},
      .baseline_variant = "unrolled-acc",
      .chained_variant = "chained",
      .params = {{"m", 32, "rows (multiple of 4)"}, {"n", 24, "columns"}},
      .build = [](const std::string& variant, const SizeMap& sizes) {
        GemvParams p;
        p.m = static_cast<u32>(size_or(sizes, "m", p.m));
        p.n = static_cast<u32>(size_or(sizes, "n", p.n));
        for (GemvVariant v : {GemvVariant::kUnrolledAcc, GemvVariant::kChained,
                              GemvVariant::kChainedPar}) {
          if (variant == gemv_variant_name(v)) return build_gemv(v, p);
        }
        throw std::invalid_argument("gemv: unknown variant '" + variant + "'");
      }});
}

} // namespace sch::kernels
