#include "kernels/axpy.hpp"

#include <stdexcept>

#include "asm/builder.hpp"
#include "isa/csr.hpp"
#include "isa/reg.hpp"
#include "kernels/dma_util.hpp"
#include "kernels/partition.hpp"
#include "kernels/registry.hpp"
#include "ssr/ssr_config.hpp"

namespace sch::kernels {

namespace {

/// Deterministic dyadic input patterns (exactly representable in f64).
double x_value(u32 i) { return 0.125 * static_cast<double>((i * 11 + 2) % 64) - 4.0; }
double y_value(u32 i) { return 0.25 * static_cast<double>((i * 5 + 3) % 48) - 6.0; }

void arm_linear(ProgramBuilder& b, u32 ssr_id, u32 n, Addr base, bool is_write) {
  using ssr::CfgReg;
  b.li(isa::kT0, static_cast<i64>(n - 1));
  b.scfgw(isa::kT0, ssr::cfg_index(ssr_id, CfgReg::kBound0));
  b.li(isa::kT0, 8);
  b.scfgw(isa::kT0, ssr::cfg_index(ssr_id, CfgReg::kStride0));
  b.li(isa::kT1, static_cast<i64>(base));
  b.scfgw(isa::kT1, ssr::cfg_index(ssr_id, is_write ? CfgReg::kWptr0 : CfgReg::kRptr0));
}

} // namespace

const char* axpy_variant_name(AxpyVariant v) {
  switch (v) {
    case AxpyVariant::kBaseline: return "baseline";
    case AxpyVariant::kChained: return "chained";
    case AxpyVariant::kChainedPar: return "chained_par";
    case AxpyVariant::kChainedDma: return "chained_dma";
    case AxpyVariant::kChainedDbuf: return "chained_dbuf";
  }
  return "?";
}

namespace {

/// Cluster-parallel chained AXPY: the same chained schedule, but each hart
/// claims a balanced share of the n/unroll element groups at runtime (by
/// mhartid/mnumharts) and arms its SSRs with computed bounds/pointers. The
/// output slices are disjoint, so no barrier is needed and the golden output
/// is partition-independent.
BuiltKernel build_axpy_par(const AxpyParams& p) {
  const u32 u = p.unroll;
  const u32 groups = p.n / u;
  using ssr::CfgReg;
  ProgramBuilder b;

  std::vector<double> x(p.n), y(p.n);
  for (u32 i = 0; i < p.n; ++i) {
    x[i] = x_value(i);
    y[i] = y_value(i);
  }
  const Addr x_base = b.data_f64(x);
  const Addr y_base = b.data_f64(y);
  const Addr z_base = b.data_zero(p.n * 8);
  const Addr a_addr = b.data_f64({p.a});

  BuiltKernel out;
  out.name = std::string("axpy/") + axpy_variant_name(AxpyVariant::kChainedPar);
  out.out_base = z_base;
  out.regions = {{"x", x_base, p.n * 8ull},
                 {"y", y_base, p.n * 8ull},
                 {"z", z_base, p.n * 8ull, /*written=*/true},
                 {"a", a_addr, 8}};
  out.expected.resize(p.n);
  for (u32 i = 0; i < p.n; ++i) {
    volatile const double t = p.a * x[i];
    out.expected[i] = t + y[i];
  }
  out.useful_flops = 2ull * p.n;
  out.regs.ssr_regs = 3;
  out.regs.fp_regs_used = 5;
  out.regs.accumulator_regs = 1;
  out.regs.chained_regs = 1;

  // a3 = hartid, a4 = nharts, s0 = first group, a5 = group count.
  emit_group_partition(b, groups, isa::kA3, isa::kA4, isa::kS0, isa::kA5,
                       isa::kT0, "par_done");
  emit_linear_slice_ssrs(b, u, isa::kS0, isa::kA5, isa::kT0, isa::kA7,
                         isa::kT1,
                         {{0, x_base, false}, {1, y_base, false},
                          {2, z_base, true}});

  b.la(isa::kA0, a_addr);
  b.fld(isa::kFa1, isa::kA0, 0);
  b.csrwi(isa::csr::kSsrEnable, 1);
  b.li(isa::kT2, 8); // chain ft3
  b.csrs(isa::csr::kChainMask, isa::kT2);

  b.addi(isa::kT3, isa::kA5, -1); // FREP reps = group count - 1
  b.frep_o(isa::kT3, static_cast<i32>(2 * u));
  for (u32 i = 0; i < u; ++i) b.fmul_d(isa::kFt3, isa::kFt0, isa::kFa1);
  for (u32 i = 0; i < u; ++i) b.fadd_d(isa::kFt2, isa::kFt3, isa::kFt1);

  b.csrw(isa::csr::kChainMask, 0);
  b.csrwi(isa::csr::kSsrEnable, 0);
  b.label("par_done");
  b.ecall();

  out.program = b.build();
  return out;
}

/// Main-memory AXPY staged through TCDM with the Xdma engine. Data (x, y, z
/// and the scalar) lives in bulk memory; each hart claims a balanced share
/// of the n/tile tiles and streams them through a private TCDM window of
/// two buffers x 3 regions (x, y, z) x tile elements. With `overlap` the
/// loop prefetches tile i+1 while computing tile i and lets the copy-back
/// of tile i-1 drain in the background (double-buffering); without it every
/// transfer is issued and waited for in place (the copy-then-compute lower
/// bound). Correctness leans on two ordering facts: per-hart transfers
/// complete in issue order (shared FIFO), and the ssr_enable=0 write
/// serializes on FP quiescence, so the copy-back never reads a half-drained
/// z buffer.
BuiltKernel build_axpy_dbuf(const AxpyParams& p, bool overlap) {
  const u32 u = p.unroll;
  const u32 tile = p.tile;
  const u32 tiles = p.n / tile;
  const i64 tile_bytes = static_cast<i64>(tile) * 8;
  using ssr::CfgReg;
  ProgramBuilder b(memmap::kTextBase, memmap::kMainBase);

  std::vector<double> x(p.n), y(p.n);
  for (u32 i = 0; i < p.n; ++i) {
    x[i] = x_value(i);
    y[i] = y_value(i);
  }
  const Addr x_base = b.data_f64(x);
  const Addr y_base = b.data_f64(y);
  const Addr z_base = b.data_zero(p.n * 8);
  const Addr a_addr = b.data_f64({p.a});

  BuiltKernel out;
  out.name = std::string("axpy/") +
             axpy_variant_name(overlap ? AxpyVariant::kChainedDbuf
                                       : AxpyVariant::kChainedDma);
  out.out_base = z_base;
  out.regions = {{"x (main)", x_base, p.n * 8ull},
                 {"y (main)", y_base, p.n * 8ull},
                 {"z (main)", z_base, p.n * 8ull, /*written=*/true},
                 {"a (main)", a_addr, 8},
                 {"tcdm staging", memmap::kTcdmBase, memmap::kTcdmSize,
                  /*written=*/true}};
  out.expected.resize(p.n);
  for (u32 i = 0; i < p.n; ++i) {
    volatile const double t = p.a * x[i];
    out.expected[i] = t + y[i];
  }
  out.useful_flops = 2ull * p.n;
  out.regs.ssr_regs = 3;
  out.regs.fp_regs_used = 5;
  out.regs.accumulator_regs = 1;
  out.regs.chained_regs = 1;

  // a3 = hartid, a4 = nharts, s0 = first tile, a5 = tile count.
  emit_group_partition(b, tiles, isa::kA3, isa::kA4, isa::kS0, isa::kA5,
                       isa::kT0, "dbuf_done");

  // s1 = this hart's TCDM window: two buffers x 3 tile regions (x, y, z).
  b.li(isa::kT0, 6 * tile_bytes);
  b.mul(isa::kS1, isa::kA3, isa::kT0);
  b.li(isa::kT0, static_cast<i64>(memmap::kTcdmBase));
  b.add(isa::kS1, isa::kS1, isa::kT0);
  b.li(isa::kA6, tile_bytes);              // a6 = bytes per tile region
  b.mv(isa::kS2, isa::kS1);                // s2 = current buffer
  b.li(isa::kT0, 3 * tile_bytes);
  b.add(isa::kS3, isa::kS1, isa::kT0);     // s3 = next buffer

  // Main-memory tile cursors of this hart's slice.
  b.mul(isa::kT1, isa::kS0, isa::kA6);
  b.la(isa::kS4, x_base);
  b.add(isa::kS4, isa::kS4, isa::kT1);
  b.la(isa::kS5, y_base);
  b.add(isa::kS5, isa::kS5, isa::kT1);
  b.la(isa::kS6, z_base);
  b.add(isa::kS6, isa::kS6, isa::kT1);

  // Tile-shaped SSR bounds/strides, set once; only pointers re-arm per tile.
  for (u32 s = 0; s < 3; ++s) {
    b.li(isa::kT0, static_cast<i64>(tile) - 1);
    b.scfgw(isa::kT0, ssr::cfg_index(s, CfgReg::kBound0));
    b.li(isa::kT0, 8);
    b.scfgw(isa::kT0, ssr::cfg_index(s, CfgReg::kStride0));
  }

  b.la(isa::kT0, a_addr);
  b.fld(isa::kFa1, isa::kT0, 0);
  b.li(isa::kT0, 8); // chain ft3
  b.csrs(isa::csr::kChainMask, isa::kT0);
  b.li(isa::kA7, static_cast<i64>(tile / u) - 1); // FREP reps per tile
  b.mv(isa::kS7, isa::kA5);                       // tile loop counter

  // Fetch x and y of one tile into the buffer at `buf`; the y copy's id
  // (the newest) lands in want_rd.
  const auto fetch_tile = [&](u8 buf, u8 want_rd) {
    emit_dma_copy(b, isa::kS4, buf, isa::kA6, isa::kT6);
    b.add(isa::kT0, buf, isa::kA6);
    b.dmsrc(isa::kS5);
    b.dmdst(isa::kT0);
    b.dmcpy(want_rd, isa::kA6);
    b.add(isa::kS4, isa::kS4, isa::kA6);
    b.add(isa::kS5, isa::kS5, isa::kA6);
  };

  if (overlap) fetch_tile(isa::kS2, isa::kS8); // prologue: tile 0 in flight

  b.label("dbuf_tile");
  if (!overlap) fetch_tile(isa::kS2, isa::kS8);
  emit_dma_wait(b, isa::kT5, isa::kS8, "dbuf_wait");
  if (overlap) {
    // Prefetch the next tile into the other buffer (skipped on the last).
    b.addi(isa::kT0, isa::kS7, -1);
    b.beqz(isa::kT0, "dbuf_skip_pf");
    fetch_tile(isa::kS3, isa::kS9);
    b.label("dbuf_skip_pf");
  }

  // Arm the streams at the current buffer and run the chained tile.
  b.scfgw(isa::kS2, ssr::cfg_index(0, CfgReg::kRptr0));
  b.add(isa::kT0, isa::kS2, isa::kA6);
  b.scfgw(isa::kT0, ssr::cfg_index(1, CfgReg::kRptr0));
  b.add(isa::kT0, isa::kT0, isa::kA6);
  b.scfgw(isa::kT0, ssr::cfg_index(2, CfgReg::kWptr0));
  b.csrwi(isa::csr::kSsrEnable, 1);
  b.frep_o(isa::kA7, static_cast<i32>(2 * u));
  for (u32 i = 0; i < u; ++i) b.fmul_d(isa::kFt3, isa::kFt0, isa::kFa1);
  for (u32 i = 0; i < u; ++i) b.fadd_d(isa::kFt2, isa::kFt3, isa::kFt1);
  // The stream-CSR write below serializes on FP quiescence, so the z region
  // is fully drained before the copy-back reads it.
  b.csrwi(isa::csr::kSsrEnable, 0);

  // Copy-back this tile's z region.
  b.add(isa::kT0, isa::kS2, isa::kA6);
  b.add(isa::kT0, isa::kT0, isa::kA6);
  emit_dma_copy(b, isa::kT0, isa::kS6, isa::kA6, isa::kT6);
  b.add(isa::kS6, isa::kS6, isa::kA6);

  if (overlap) {
    b.mv(isa::kS8, isa::kS9); // the prefetch is what the next tile waits on
    b.mv(isa::kT0, isa::kS2); // swap buffers
    b.mv(isa::kS2, isa::kS3);
    b.mv(isa::kS3, isa::kT0);
  } else {
    emit_dma_drain(b, isa::kT5, "dbuf_zdrain"); // full serialization
  }
  b.addi(isa::kS7, isa::kS7, -1);
  b.bnez(isa::kS7, "dbuf_tile");

  if (overlap) emit_dma_drain(b, isa::kT5, "dbuf_drain");
  b.csrw(isa::csr::kChainMask, 0);
  b.label("dbuf_done");
  b.ecall();

  out.program = b.build();
  return out;
}

} // namespace

BuiltKernel build_axpy(AxpyVariant variant, const AxpyParams& p) {
  if (p.unroll < 2 || p.unroll > 8) {
    throw std::invalid_argument("axpy: unroll must be in 2..8");
  }
  if (p.n == 0 || p.n % p.unroll != 0) {
    throw std::invalid_argument("axpy: n must be a positive multiple of unroll");
  }
  if (variant == AxpyVariant::kChainedPar) return build_axpy_par(p);
  if (variant == AxpyVariant::kChainedDma ||
      variant == AxpyVariant::kChainedDbuf) {
    if (p.tile == 0 || p.tile % p.unroll != 0 || p.n % p.tile != 0) {
      throw std::invalid_argument(
          "axpy: tile must be a positive multiple of unroll dividing n");
    }
    if (6ull * p.tile * 8 > memmap::kTcdmSize) {
      throw std::invalid_argument(
          "axpy: tile double-buffer exceeds the TCDM (each hart's window is "
          "6*tile*8 bytes; num_cores windows must all fit, so multi-core "
          "runs need proportionally smaller tiles)");
    }
    return build_axpy_dbuf(p, variant == AxpyVariant::kChainedDbuf);
  }
  const u32 u = p.unroll;
  ProgramBuilder b;

  std::vector<double> x(p.n), y(p.n);
  for (u32 i = 0; i < p.n; ++i) {
    x[i] = x_value(i);
    y[i] = y_value(i);
  }
  const Addr x_base = b.data_f64(x);
  const Addr y_base = b.data_f64(y);
  const Addr z_base = b.data_zero(p.n * 8);
  const Addr a_addr = b.data_f64({p.a});

  BuiltKernel out;
  out.name = std::string("axpy/") + axpy_variant_name(variant);
  out.out_base = z_base;
  out.regions = {{"x", x_base, p.n * 8ull},
                 {"y", y_base, p.n * 8ull},
                 {"z", z_base, p.n * 8ull, /*written=*/true},
                 {"a", a_addr, 8}};
  out.expected.resize(p.n);
  for (u32 i = 0; i < p.n; ++i) {
    // The hardware executes a separate fmul and fadd (two roundings); the
    // volatile intermediate stops the compiler from contracting to an FMA.
    volatile const double t = p.a * x[i];
    out.expected[i] = t + y[i];
  }
  out.useful_flops = 2ull * p.n;

  arm_linear(b, 0, p.n, x_base, false);
  arm_linear(b, 1, p.n, y_base, false);
  arm_linear(b, 2, p.n, z_base, true);

  b.la(isa::kA0, a_addr);
  b.fld(isa::kFa1, isa::kA0, 0);
  b.csrwi(isa::csr::kSsrEnable, 1);

  out.regs.ssr_regs = 3;
  out.regs.fp_regs_used = 5; // ft0..ft3 + fa1
  out.regs.accumulator_regs = 1;

  if (variant == AxpyVariant::kChained) {
    b.li(isa::kT2, 8); // chain ft3
    b.csrs(isa::csr::kChainMask, isa::kT2);
    out.regs.chained_regs = 1;
  }

  b.li(isa::kT3, variant == AxpyVariant::kChained
                     ? static_cast<i64>(p.n / u) - 1
                     : static_cast<i64>(p.n) - 1);
  if (variant == AxpyVariant::kChained) {
    // u products pushed back-to-back, popped by the adds: the mul->add
    // latency is hidden inside the chain FIFO.
    b.frep_o(isa::kT3, static_cast<i32>(2 * u));
    for (u32 i = 0; i < u; ++i) b.fmul_d(isa::kFt3, isa::kFt0, isa::kFa1);
    for (u32 i = 0; i < u; ++i) b.fadd_d(isa::kFt2, isa::kFt3, isa::kFt1);
  } else {
    // The natural scalar schedule: the fadd waits fpu_depth cycles for its
    // product every element.
    b.frep_o(isa::kT3, 2);
    b.fmul_d(isa::kFt3, isa::kFt0, isa::kFa1);
    b.fadd_d(isa::kFt2, isa::kFt3, isa::kFt1);
  }

  if (variant == AxpyVariant::kChained) b.csrw(isa::csr::kChainMask, 0);
  b.csrwi(isa::csr::kSsrEnable, 0);
  b.ecall();

  out.program = b.build();
  return out;
}

void register_axpy_kernels(Registry& r) {
  r.add(KernelEntry{
      .name = "axpy",
      .description = "z = a*x + y un-fused: mul->add producer/consumer chain",
      .variants = {"baseline", "chained", "chained_par", "chained_dma",
                   "chained_dbuf"},
      .baseline_variant = "baseline",
      .chained_variant = "chained",
      .params = {{"n", 256, "elements (multiple of unroll)"},
                 {"unroll", 4, "chained interleave depth (<= fpu_depth + 1)"},
                 {"tile", 64, "elements per DMA-staged tile (main-memory "
                              "variants; multiple of unroll dividing n)"}},
      .build = [](const std::string& variant, const SizeMap& sizes) {
        AxpyParams p;
        p.n = static_cast<u32>(size_or(sizes, "n", p.n));
        p.unroll = static_cast<u32>(size_or(sizes, "unroll", p.unroll));
        p.tile = static_cast<u32>(size_or(sizes, "tile", p.tile));
        for (AxpyVariant v : {AxpyVariant::kBaseline, AxpyVariant::kChained,
                              AxpyVariant::kChainedPar,
                              AxpyVariant::kChainedDma,
                              AxpyVariant::kChainedDbuf}) {
          if (variant == axpy_variant_name(v)) return build_axpy(v, p);
        }
        throw std::invalid_argument("axpy: unknown variant '" + variant + "'");
      }});
}

} // namespace sch::kernels
