// One-call kernel execution: run a BuiltKernel on the functional ISS and/or
// the cycle-level simulator, validate the output against the golden
// reference, and collect performance + energy numbers.
#pragma once

#include <string>

#include "energy/energy_model.hpp"
#include "kernels/kernel_common.hpp"
#include "sim/perf.hpp"
#include "sim/sim_config.hpp"

namespace sch::kernels {

struct RunResult {
  bool ok = false;            // halted cleanly and matched the golden output
  std::string error;          // failure description when !ok
  u64 cycles = 0;
  double fpu_utilization = 0;
  sim::PerfCounters perf;
  energy::EnergyReport energy;
  u64 tcdm_reads = 0;
  u64 tcdm_writes = 0;
  u64 tcdm_conflicts = 0;
  u64 mismatches = 0;         // first-run output mismatches vs golden
};

/// Run on the cycle-level simulator; validates bit-exactly against
/// kernel.expected.
RunResult run_on_simulator(const BuiltKernel& kernel,
                           const sim::SimConfig& config = {},
                           const energy::EnergyConfig& energy_config = {});

/// Run on the functional ISS only (validation + instruction count).
struct IssRunResult {
  bool ok = false;
  std::string error;
  u64 instructions = 0;
  u64 mismatches = 0;
};
IssRunResult run_on_iss(const BuiltKernel& kernel);

} // namespace sch::kernels
