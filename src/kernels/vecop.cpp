#include "kernels/vecop.hpp"

#include <cassert>
#include <stdexcept>

#include "asm/builder.hpp"
#include "isa/csr.hpp"
#include "isa/reg.hpp"
#include "kernels/partition.hpp"
#include "kernels/registry.hpp"
#include "ssr/ssr_config.hpp"

namespace sch::kernels {

using isa::FpReg;
using isa::IntReg;

namespace {

/// Deterministic input patterns (exactly representable in f64).
double c_value(u32 i) { return 0.25 * static_cast<double>((i * 7 + 3) % 64) - 4.0; }
double d_value(u32 i) { return 0.5 * static_cast<double>((i * 13 + 1) % 32) - 8.0; }

/// Configure an SSR as a 1-D f64 stream of `n` elements from/to `base`.
void arm_linear_stream(ProgramBuilder& b, u32 ssr_id, u32 n, Addr base,
                       bool is_write) {
  using ssr::CfgReg;
  b.li(isa::kT0, static_cast<i64>(n - 1));
  b.scfgw(isa::kT0, ssr::cfg_index(ssr_id, CfgReg::kBound0));
  b.li(isa::kT0, 8);
  b.scfgw(isa::kT0, ssr::cfg_index(ssr_id, CfgReg::kStride0));
  b.li(isa::kT1, static_cast<i64>(base));
  b.scfgw(isa::kT1, ssr::cfg_index(ssr_id, is_write ? CfgReg::kWptr0 : CfgReg::kRptr0));
}

} // namespace

const char* vecop_variant_name(VecopVariant v) {
  switch (v) {
    case VecopVariant::kBaseline: return "baseline";
    case VecopVariant::kUnrolled: return "unrolled";
    case VecopVariant::kChained: return "chained";
    case VecopVariant::kChainedFrep: return "chained+frep";
    case VecopVariant::kChainedPar: return "chained_par";
  }
  return "?";
}

namespace {

/// Cluster-parallel chained+frep vecop: each hart claims a balanced share
/// of the n/unroll element groups at runtime and arms its SSRs with
/// computed bounds/pointers (see kernels/partition.hpp).
BuiltKernel build_vecop_par(const VecopParams& p) {
  const u32 u = p.unroll;
  const u32 groups = p.n / u;
  using ssr::CfgReg;
  ProgramBuilder b;

  std::vector<double> c(p.n), d(p.n);
  for (u32 i = 0; i < p.n; ++i) {
    c[i] = c_value(i);
    d[i] = d_value(i);
  }
  const Addr c_base = b.data_f64(c);
  const Addr d_base = b.data_f64(d);
  const Addr a_base = b.data_zero(p.n * 8);
  const Addr b_addr = b.data_f64({p.b});

  BuiltKernel out;
  out.expected.resize(p.n);
  for (u32 i = 0; i < p.n; ++i) out.expected[i] = p.b * (c[i] + d[i]);
  out.out_base = a_base;
  out.name =
      std::string("vecop/") + vecop_variant_name(VecopVariant::kChainedPar);
  out.useful_flops = 2ull * p.n;
  out.regions = {{"c", c_base, p.n * 8ull},
                 {"d", d_base, p.n * 8ull},
                 {"a", a_base, p.n * 8ull, /*written=*/true},
                 {"b", b_addr, 8}};
  out.regs.ssr_regs = 3;
  out.regs.fp_regs_used = 5; // ft0..ft3 + fa1
  out.regs.accumulator_regs = 1;
  out.regs.chained_regs = 1;

  // a3 = hartid, a4 = nharts, s0 = first group, a5 = group count.
  emit_group_partition(b, groups, isa::kA3, isa::kA4, isa::kS0, isa::kA5,
                       isa::kT0, "par_done");
  emit_linear_slice_ssrs(b, u, isa::kS0, isa::kA5, isa::kT0, isa::kA7,
                         isa::kT1,
                         {{0, c_base, false}, {1, d_base, false},
                          {2, a_base, true}});

  b.la(isa::kA0, b_addr);
  b.fld(isa::kFa1, isa::kA0, 0);
  b.csrwi(isa::csr::kSsrEnable, 1);
  b.li(isa::kT2, 8); // chain ft3
  b.csrs(isa::csr::kChainMask, isa::kT2);

  b.addi(isa::kT3, isa::kA5, -1); // FREP reps = group count - 1
  b.frep_o(isa::kT3, static_cast<i32>(2 * u));
  for (u32 i = 0; i < u; ++i) b.fadd_d(isa::kFt3, isa::kFt0, isa::kFt1);
  for (u32 i = 0; i < u; ++i) b.fmul_d(isa::kFt2, isa::kFt3, isa::kFa1);

  b.csrw(isa::csr::kChainMask, 0);
  b.csrwi(isa::csr::kSsrEnable, 0);
  b.label("par_done");
  b.ecall();

  out.program = b.build();
  return out;
}

} // namespace

BuiltKernel build_vecop(VecopVariant variant, const VecopParams& p) {
  if (p.unroll < 2 || p.unroll > 8) {
    throw std::invalid_argument("vecop: unroll must be in 2..8");
  }
  if (p.n == 0 || p.n % p.unroll != 0) {
    throw std::invalid_argument("vecop: n must be a positive multiple of unroll");
  }
  if (variant == VecopVariant::kChainedPar) return build_vecop_par(p);
  const u32 u = p.unroll;
  ProgramBuilder b;

  // --- data segment ---
  std::vector<double> c(p.n), d(p.n);
  for (u32 i = 0; i < p.n; ++i) {
    c[i] = c_value(i);
    d[i] = d_value(i);
  }
  const Addr c_base = b.data_f64(c);
  const Addr d_base = b.data_f64(d);
  const Addr a_base = b.data_zero(p.n * 8);
  const Addr b_addr = b.data_f64({p.b});

  // --- golden (same operation order: add then mul, one rounding each) ---
  BuiltKernel out;
  out.expected.resize(p.n);
  for (u32 i = 0; i < p.n; ++i) out.expected[i] = p.b * (c[i] + d[i]);
  out.out_base = a_base;
  out.name = std::string("vecop/") + vecop_variant_name(variant);
  out.useful_flops = 2ull * p.n;
  out.regions = {{"c", c_base, p.n * 8ull},
                 {"d", d_base, p.n * 8ull},
                 {"a", a_base, p.n * 8ull, /*written=*/true},
                 {"b", b_addr, 8}};

  // --- streams: SSR0 = c (read), SSR1 = d (read), SSR2 = a (write) ---
  arm_linear_stream(b, 0, p.n, c_base, false);
  arm_linear_stream(b, 1, p.n, d_base, false);
  arm_linear_stream(b, 2, p.n, a_base, true);

  // b constant in fa1 (above the widest accumulator block ft3..f10).
  b.la(isa::kA0, b_addr);
  b.fld(isa::kFa1, isa::kA0, 0);
  b.csrwi(isa::csr::kSsrEnable, 1);

  out.regs.ssr_regs = 3;
  out.regs.fp_regs_used = 4; // ft0..ft2 + fa1

  switch (variant) {
    case VecopVariant::kChainedPar:
      break; // dispatched to build_vecop_par above
    case VecopVariant::kBaseline: {
      // Fig. 1a: per element, fadd -> fmul with the RAW stall.
      b.li(isa::kA1, 0);
      b.li(isa::kA2, static_cast<i64>(p.n));
      b.label("loop");
      b.fadd_d(isa::kFt3, isa::kFt0, isa::kFt1);
      b.fmul_d(isa::kFt2, isa::kFt3, isa::kFa1);
      b.addi(isa::kA1, isa::kA1, 1);
      b.bne(isa::kA1, isa::kA2, "loop");
      out.regs.fp_regs_used += 1;
      out.regs.accumulator_regs = 1;
      break;
    }
    case VecopVariant::kUnrolled: {
      // Fig. 1b: the software FIFO costs u-1 extra registers on top of ft3.
      b.li(isa::kA1, 0);
      b.li(isa::kA2, static_cast<i64>(p.n / u));
      b.label("loop");
      for (u32 i = 0; i < u; ++i) {
        b.fadd_d(static_cast<u8>(isa::kFt3 + i), isa::kFt0, isa::kFt1);
      }
      for (u32 i = 0; i < u; ++i) {
        b.fmul_d(isa::kFt2, static_cast<u8>(isa::kFt3 + i), isa::kFa1);
      }
      b.addi(isa::kA1, isa::kA1, 1);
      b.bne(isa::kA1, isa::kA2, "loop");
      out.regs.fp_regs_used += u;
      out.regs.accumulator_regs = u;
      break;
    }
    case VecopVariant::kChained: {
      // Fig. 1c: chaining mask bit 3 (ft3); same u-deep schedule, zero extra
      // architectural registers.
      b.li(isa::kT2, 8);
      b.csrs(isa::csr::kChainMask, isa::kT2);
      b.li(isa::kA1, 0);
      b.li(isa::kA2, static_cast<i64>(p.n / u));
      b.label("loop");
      for (u32 i = 0; i < u; ++i) b.fadd_d(isa::kFt3, isa::kFt0, isa::kFt1);
      for (u32 i = 0; i < u; ++i) b.fmul_d(isa::kFt2, isa::kFt3, isa::kFa1);
      b.addi(isa::kA1, isa::kA1, 1);
      b.bne(isa::kA1, isa::kA2, "loop");
      b.csrw(isa::csr::kChainMask, 0);
      out.regs.fp_regs_used += 1;
      out.regs.accumulator_regs = 1;
      out.regs.chained_regs = 1;
      break;
    }
    case VecopVariant::kChainedFrep: {
      // Chaining + hardware loop: the uniform 2u-instruction body fits the
      // sequencer; the integer core only sets it up.
      b.li(isa::kT2, 8);
      b.csrs(isa::csr::kChainMask, isa::kT2);
      b.li(isa::kT3, static_cast<i64>(p.n / u - 1));
      b.frep_o(isa::kT3, static_cast<i32>(2 * u));
      for (u32 i = 0; i < u; ++i) b.fadd_d(isa::kFt3, isa::kFt0, isa::kFt1);
      for (u32 i = 0; i < u; ++i) b.fmul_d(isa::kFt2, isa::kFt3, isa::kFa1);
      b.csrw(isa::csr::kChainMask, 0);
      out.regs.fp_regs_used += 1;
      out.regs.accumulator_regs = 1;
      out.regs.chained_regs = 1;
      break;
    }
  }

  b.csrwi(isa::csr::kSsrEnable, 0);
  b.ecall();

  out.program = b.build();
  return out;
}

void register_vecop_kernels(Registry& r) {
  r.add(KernelEntry{
      .name = "vecop",
      .description = "Fig. 1 stream vecop a = b*(c+d), fadd->fmul per element",
      .variants = {"baseline", "unrolled", "chained", "chained+frep",
                   "chained_par"},
      .baseline_variant = "baseline",
      .chained_variant = "chained+frep",
      .params = {{"n", 256, "elements (multiple of unroll)"},
                 {"unroll", 4, "interleave depth (chained: = fpu_depth + 1)"}},
      .build = [](const std::string& variant, const SizeMap& sizes) {
        VecopParams p;
        p.n = static_cast<u32>(size_or(sizes, "n", p.n));
        p.unroll = static_cast<u32>(size_or(sizes, "unroll", p.unroll));
        for (VecopVariant v :
             {VecopVariant::kBaseline, VecopVariant::kUnrolled,
              VecopVariant::kChained, VecopVariant::kChainedFrep,
              VecopVariant::kChainedPar}) {
          if (variant == vecop_variant_name(v)) return build_vecop(v, p);
        }
        throw std::invalid_argument("vecop: unknown variant '" + variant + "'");
      }});
}

} // namespace sch::kernels
