#include "kernels/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace sch::kernels {

// Registration functions defined next to each in-tree kernel builder. The
// explicit call table (instead of per-TU static initializers alone) keeps
// the built-ins linker-proof: a static library drops unreferenced objects,
// and with them any self-registering global they contain.
void register_vecop_kernels(Registry& r);
void register_stencil_kernels(Registry& r);
void register_gemv_kernels(Registry& r);
void register_axpy_kernels(Registry& r);
void register_dot_kernels(Registry& r);
void register_gemm_kernels(Registry& r);
void register_conv2d_kernels(Registry& r);

bool KernelEntry::has_variant(const std::string& v) const {
  return std::find(variants.begin(), variants.end(), v) != variants.end();
}

const ParamSpec* KernelEntry::find_param(const std::string& param) const {
  for (const ParamSpec& p : params) {
    if (p.name == param) return &p;
  }
  return nullptr;
}

SizeMap KernelEntry::resolve_sizes(const SizeMap& overrides) const {
  SizeMap out;
  for (const ParamSpec& p : params) out[p.name] = p.default_value;
  for (const auto& [k, v] : overrides) {
    if (find_param(k) == nullptr) {
      throw std::invalid_argument(name + ": unknown size parameter '" + k + "'");
    }
    // Builders narrow to u32: reject values the cast would mangle (a
    // negative size would otherwise wrap to a ~4-billion-element kernel).
    if (v < 0 || v > 0x7FFFFFFF) {
      throw std::invalid_argument(name + ": size parameter '" + k +
                                  "' out of range (0..2^31-1)");
    }
    out[k] = v;
  }
  return out;
}

Registry& Registry::instance() {
  static Registry& reg = *[] {
    auto* r = new Registry();
    register_vecop_kernels(*r);
    register_stencil_kernels(*r);
    register_gemv_kernels(*r);
    register_axpy_kernels(*r);
    register_dot_kernels(*r);
    register_gemm_kernels(*r);
    register_conv2d_kernels(*r);
    return r;
  }();
  return reg;
}

void Registry::add(KernelEntry entry) {
  if (entry.name.empty() || !entry.build) {
    throw std::invalid_argument("registry: entry needs a name and a builder");
  }
  if (entries_.count(entry.name) != 0) {
    throw std::invalid_argument("registry: duplicate kernel '" + entry.name + "'");
  }
  entries_.emplace(entry.name, std::move(entry));
}

const KernelEntry* Registry::find(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<const KernelEntry*> Registry::entries() const {
  std::vector<const KernelEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [_, e] : entries_) out.push_back(&e);
  return out; // std::map iteration is already name-sorted
}

KernelRegistrar::KernelRegistrar(KernelEntry entry) {
  Registry::instance().add(std::move(entry));
}

i64 size_or(const SizeMap& sizes, const std::string& name, i64 fallback) {
  const auto it = sizes.find(name);
  return it == sizes.end() ? fallback : it->second;
}

} // namespace sch::kernels
