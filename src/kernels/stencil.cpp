#include "kernels/stencil.hpp"

#include <array>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "asm/builder.hpp"
#include "isa/csr.hpp"
#include "isa/reg.hpp"
#include "kernels/registry.hpp"
#include "ssr/ssr_config.hpp"

namespace sch::kernels {

using isa::FpReg;
using ssr::CfgReg;

namespace {

constexpr u32 kBoxNbr = 27;

// FP register map (see header table). f0..f2 are ft0..ft2.
constexpr u8 kAcc0 = 3;      // f3..f6: accumulators (non-chained variants)
constexpr u8 kChainReg = 3;  // ft3: the chained accumulator
constexpr u8 kOmega = 7;     // j3d27pt relaxation factor
constexpr u8 kTransient0 = 8; // f8..f11: rotating reload slots (Base--/Base-)

// Integer register map.
constexpr u8 kCfgTmp = isa::kT0;
constexpr u8 kCfgTmp2 = isa::kT1;
constexpr u8 kGroupCnt = isa::kT2;
constexpr u8 kFrepReps = isa::kT3;
constexpr u8 kStorePtr = isa::kS1;
constexpr u8 kCoefPtr = isa::kS2;
constexpr u8 kAddrTmp = isa::kA0;

struct Layout {
  u32 nx, ny, nz;
  u32 points;          // interior points
  u32 groups;          // points / unroll
  Addr in_base = 0;
  Addr out_base = 0;
  Addr coef_base = 0;
  Addr idx_even_base = 0;
  Addr idx_odd_base = 0;

  [[nodiscard]] u32 lin(u32 x, u32 y, u32 z) const { return x + nx * (y + ny * z); }

  /// Interior point i -> grid coordinates (x fastest, row-major interior).
  void point_coords(u32 i, u32& x, u32& y, u32& z) const {
    const u32 ix = nx - 2, iy = ny - 2;
    x = 1 + i % ix;
    y = 1 + (i / ix) % iy;
    z = 1 + i / (ix * iy);
  }
};

/// Neighbor offsets in canonical k order. Box stencils enumerate the full
/// 3x3x3 cube (dx fastest); the star control uses center + 6 faces.
void neighbor(StencilKind kind, u32 k, i32& dx, i32& dy, i32& dz) {
  if (kind == StencilKind::kStar3d1r) {
    static constexpr i32 kStar[7][3] = {{0, 0, 0},  {-1, 0, 0}, {1, 0, 0},
                                        {0, -1, 0}, {0, 1, 0},  {0, 0, -1},
                                        {0, 0, 1}};
    dx = kStar[k][0];
    dy = kStar[k][1];
    dz = kStar[k][2];
    return;
  }
  dx = static_cast<i32>(k % 3) - 1;
  dy = static_cast<i32>((k / 3) % 3) - 1;
  dz = static_cast<i32>(k / 9) - 1;
}

/// Exactly-representable input pattern.
double input_value(u32 i) {
  return static_cast<double>((i * 31 + 7) % 257) * 0.0078125 - 1.0;
}

std::vector<double> make_coefficients(StencilKind kind) {
  const u32 nbr = stencil_neighbors(kind);
  std::vector<double> c(nbr);
  if (kind == StencilKind::kBox3d1r || kind == StencilKind::kStar3d1r) {
    // Distinct dyadic weights per offset (a general filter).
    for (u32 k = 0; k < nbr; ++k) {
      c[k] = 0.015625 * static_cast<double>(k + 1) - 0.125;
    }
  } else {
    // Jacobi 27-point: distance-class weights.
    for (u32 k = 0; k < nbr; ++k) {
      i32 dx, dy, dz;
      neighbor(kind, k, dx, dy, dz);
      const int dist = std::abs(dx) + std::abs(dy) + std::abs(dz);
      switch (dist) {
        case 0: c[k] = 0.25; break;      // center
        case 1: c[k] = 0.0625; break;    // 6 faces
        case 2: c[k] = 0.03125; break;   // 12 edges
        default: c[k] = 0.015625; break; // 8 corners
      }
    }
  }
  return c;
}

constexpr double kOmegaValue = 0.75;

/// Maximum coefficients the RF can keep resident for Base--/Base- under the
/// fixed register map (the honest arithmetic behind "register-limited"):
/// resident coefficients occupy a contiguous high block f(32-R)..f31 above
/// the accumulators (f3..f6), omega (f7), transient reload slots (f8..f11)
/// and, for j3d27pt with explicit stores, the drain scratches (f12..f14 +
/// ft2). The remaining low registers are the pointer/staging margin the
/// SARIS kernels keep.
u32 max_resident_coefs(StencilKind kind, StencilVariant variant) {
  const bool ssr_writeback = variant == StencilVariant::kBaseM;
  if (kind == StencilKind::kJ3d27pt && !ssr_writeback) return 17; // f15..f31
  return 20;                                                      // f12..f31
}

struct GoldenResult {
  std::vector<double> out;
  u64 flops;
};

GoldenResult golden(StencilKind kind, const Layout& lay,
                    const std::vector<double>& in,
                    const std::vector<double>& coef) {
  GoldenResult g;
  g.out.resize(lay.points);
  g.flops = 0;
  const u32 nbr = stencil_neighbors(kind);
  for (u32 p = 0; p < lay.points; ++p) {
    u32 x, y, z;
    lay.point_coords(p, x, y, z);
    double acc = 0.0;
    for (u32 k = 0; k < nbr; ++k) {
      i32 dx, dy, dz;
      neighbor(kind, k, dx, dy, dz);
      const double v = in[lay.lin(x + dx, y + dy, z + dz)];
      acc = std::fma(v, coef[k], acc); // k=0: fma(v,c,0) == fmul, bit-exact
      ++g.flops;
    }
    if (kind == StencilKind::kJ3d27pt) {
      acc *= kOmegaValue;
      ++g.flops;
    }
    g.out[p] = acc;
  }
  return g;
}

/// Build the even/odd 16-bit gather index arrays: per group, k-major, two
/// entries per k per array (points {0,2} even, {1,3} odd).
void build_index_arrays(StencilKind kind, const Layout& lay,
                        std::vector<u16>& even, std::vector<u16>& odd) {
  const u32 nbr = stencil_neighbors(kind);
  even.clear();
  odd.clear();
  even.reserve(lay.groups * nbr * 2);
  odd.reserve(lay.groups * nbr * 2);
  for (u32 g = 0; g < lay.groups; ++g) {
    const u32 p0 = g * 4;
    for (u32 k = 0; k < nbr; ++k) {
      i32 dx, dy, dz;
      neighbor(kind, k, dx, dy, dz);
      auto woff = [&](u32 p) {
        u32 x, y, z;
        lay.point_coords(p, x, y, z);
        return static_cast<u16>(lay.lin(x + dx, y + dy, z + dz));
      };
      even.push_back(woff(p0 + 0));
      even.push_back(woff(p0 + 2));
      odd.push_back(woff(p0 + 1));
      odd.push_back(woff(p0 + 3));
    }
  }
}

/// Arm an indirect 1-D u16-index gather stream on `ssr_id`.
void arm_gather(ProgramBuilder& b, u32 ssr_id, Addr idx_array, u32 n_elems,
                Addr data_base) {
  b.li(kCfgTmp, static_cast<i64>(n_elems - 1));
  b.scfgw(kCfgTmp, ssr::cfg_index(ssr_id, CfgReg::kBound0));
  b.li(kCfgTmp, 2); // u16 index array
  b.scfgw(kCfgTmp, ssr::cfg_index(ssr_id, CfgReg::kStride0));
  // idx cfg: indirection enable | shift=3 (f64 elements) | idx size log2 = 1.
  b.li(kCfgTmp, (1 << 16) | (3 << 4) | 1);
  b.scfgw(kCfgTmp, ssr::cfg_index(ssr_id, CfgReg::kIdxCfg));
  b.li(kCfgTmp2, static_cast<i64>(data_base));
  b.scfgw(kCfgTmp2, ssr::cfg_index(ssr_id, CfgReg::kIdxBase));
  b.li(kCfgTmp2, static_cast<i64>(idx_array));
  b.scfgw(kCfgTmp2, ssr::cfg_index(ssr_id, CfgReg::kRptr0));
}

/// Arm the coefficient stream (Base): `nbr` coefficients, each repeated 4x,
/// looping back for every group.
void arm_coef_stream(ProgramBuilder& b, u32 ssr_id, Addr coef_base, u32 groups,
                     u32 nbr) {
  b.li(kCfgTmp, 3); // repeat = 3 -> 4 pops per element
  b.scfgw(kCfgTmp, ssr::cfg_index(ssr_id, CfgReg::kRepeat));
  b.li(kCfgTmp, nbr - 1);
  b.scfgw(kCfgTmp, ssr::cfg_index(ssr_id, CfgReg::kBound0));
  b.li(kCfgTmp, 8);
  b.scfgw(kCfgTmp, ssr::cfg_index(ssr_id, CfgReg::kStride0));
  b.li(kCfgTmp, static_cast<i64>(groups - 1));
  b.scfgw(kCfgTmp, ssr::cfg_index(ssr_id, static_cast<CfgReg>(
                       static_cast<u32>(CfgReg::kBound0) + 1)));
  b.li(kCfgTmp, -static_cast<i64>((nbr - 1) * 8)); // wrap to coef[0]
  b.scfgw(kCfgTmp, ssr::cfg_index(ssr_id, static_cast<CfgReg>(
                       static_cast<u32>(CfgReg::kStride0) + 1)));
  b.li(kCfgTmp2, static_cast<i64>(coef_base));
  b.scfgw(kCfgTmp2, ssr::cfg_index(ssr_id, static_cast<CfgReg>(
                        static_cast<u32>(CfgReg::kRptr0) + 1))); // 2-D
}

/// Arm the compacted output write stream.
void arm_write_stream(ProgramBuilder& b, u32 ssr_id, Addr out_base, u32 n) {
  b.li(kCfgTmp, static_cast<i64>(n - 1));
  b.scfgw(kCfgTmp, ssr::cfg_index(ssr_id, CfgReg::kBound0));
  b.li(kCfgTmp, 8);
  b.scfgw(kCfgTmp, ssr::cfg_index(ssr_id, CfgReg::kStride0));
  b.li(kCfgTmp2, static_cast<i64>(out_base));
  b.scfgw(kCfgTmp2, ssr::cfg_index(ssr_id, CfgReg::kWptr0));
}

} // namespace

const char* stencil_kind_name(StencilKind kind) {
  switch (kind) {
    case StencilKind::kBox3d1r: return "box3d1r";
    case StencilKind::kJ3d27pt: return "j3d27pt";
    case StencilKind::kStar3d1r: return "star3d1r";
  }
  return "?";
}

u32 stencil_neighbors(StencilKind kind) {
  return kind == StencilKind::kStar3d1r ? 7u : kBoxNbr;
}

const char* stencil_variant_name(StencilVariant v) {
  switch (v) {
    case StencilVariant::kBaseMM: return "Base--";
    case StencilVariant::kBaseM: return "Base-";
    case StencilVariant::kBase: return "Base";
    case StencilVariant::kChaining: return "Chaining";
    case StencilVariant::kChainingPlus: return "Chaining+";
  }
  return "?";
}

u32 stencil_interior_points(const StencilParams& p) {
  return (p.nx - 2) * (p.ny - 2) * (p.nz - 2);
}

BuiltKernel build_stencil(StencilKind kind, StencilVariant variant,
                          const StencilParams& p) {
  if (p.unroll != 4) {
    throw std::invalid_argument("stencil: only unroll=4 is implemented "
                                "(= FPU depth + 1, the chain FIFO capacity)");
  }
  if (p.nx < 3 || p.ny < 3 || p.nz < 3) {
    throw std::invalid_argument("stencil: grid too small for radius 1");
  }
  Layout lay;
  lay.nx = p.nx;
  lay.ny = p.ny;
  lay.nz = p.nz;
  lay.points = stencil_interior_points(p);
  if (lay.points % 4 != 0) {
    throw std::invalid_argument("stencil: interior points must be a multiple of 4");
  }
  lay.groups = lay.points / 4;
  const u32 cells = p.nx * p.ny * p.nz;
  if (cells > 0xFFFF) {
    throw std::invalid_argument("stencil: grid exceeds 16-bit index range");
  }

  const u32 nbr = stencil_neighbors(kind);
  const bool j3d = kind == StencilKind::kJ3d27pt;
  const bool chained = variant == StencilVariant::kChaining ||
                       variant == StencilVariant::kChainingPlus;
  const bool ssr_writeback = variant == StencilVariant::kBaseM ||
                             variant == StencilVariant::kChainingPlus;
  const bool coef_streamed = variant == StencilVariant::kBase;
  const bool coef_resident_all = chained;

  // --- data segment ---------------------------------------------------------
  ProgramBuilder b;
  std::vector<double> in(cells);
  for (u32 i = 0; i < cells; ++i) in[i] = input_value(i);
  const std::vector<double> coef = make_coefficients(kind);
  std::vector<u16> idx_even, idx_odd;
  build_index_arrays(kind, lay, idx_even, idx_odd);

  lay.in_base = b.data_f64(in);
  lay.out_base = b.data_zero(lay.points * 8);
  lay.coef_base = b.data_f64(coef);
  const Addr omega_addr = b.data_f64({kOmegaValue});
  lay.idx_even_base = b.data_u16(idx_even);
  lay.idx_odd_base = b.data_u16(idx_odd);

  const usize data_bytes = b.data_here() - memmap::kTcdmBase;
  if (data_bytes > memmap::kTcdmSize) {
    throw std::invalid_argument("stencil: working set exceeds the TCDM");
  }

  BuiltKernel out;
  out.name = std::string(stencil_kind_name(kind)) + "/" +
             stencil_variant_name(variant);
  out.out_base = lay.out_base;
  out.regions = {{"in", lay.in_base, cells * 8ull},
                 {"out", lay.out_base, lay.points * 8ull, /*written=*/true},
                 {"coef", lay.coef_base, coef.size() * 8ull},
                 {"omega", omega_addr, 8},
                 {"idx_even", lay.idx_even_base, idx_even.size() * 2ull},
                 {"idx_odd", lay.idx_odd_base, idx_odd.size() * 2ull}};
  GoldenResult g = golden(kind, lay, in, coef);
  out.expected = std::move(g.out);
  out.useful_flops = g.flops;

  // --- streams --------------------------------------------------------------
  const u32 gather_elems = lay.groups * nbr * 2;
  if (coef_streamed) {
    // Base: SSR0 = even gather, SSR1 = coef stream, SSR2 = odd gather.
    arm_gather(b, 0, lay.idx_even_base, gather_elems, lay.in_base);
    arm_coef_stream(b, 1, lay.coef_base, lay.groups, nbr);
    arm_gather(b, 2, lay.idx_odd_base, gather_elems, lay.in_base);
  } else {
    arm_gather(b, 0, lay.idx_even_base, gather_elems, lay.in_base);
    arm_gather(b, 1, lay.idx_odd_base, gather_elems, lay.in_base);
    if (ssr_writeback) arm_write_stream(b, 2, lay.out_base, lay.points);
  }
  const u8 even_reg = isa::kFt0;
  const u8 odd_reg = coef_streamed ? isa::kFt2 : isa::kFt1;
  const u8 coef_stream_reg = isa::kFt1; // Base only

  // --- coefficient residency -------------------------------------------------
  // Chained variants keep all 27 in f5..f31; Base--/Base- keep the maximum
  // the register map allows (tail coefficients reload through f8..f11).
  u32 resident = 0;
  u8 resident_first = 0;
  if (coef_resident_all) {
    resident = nbr;
    resident_first = 5;
  } else if (!coef_streamed) {
    const u32 max_resident = max_resident_coefs(kind, variant);
    resident = p.resident_coefs == 0 ? max_resident
                                     : std::min(p.resident_coefs, max_resident);
    resident = std::min(resident, nbr);
    resident_first = static_cast<u8>(32 - resident);
  }
  const u32 reloaded = coef_streamed ? 0 : nbr - resident;

  b.la(kCoefPtr, lay.coef_base);
  auto coef_reg_of = [&](u32 k) -> u8 {
    // Resident tail-first: coefficients [0, resident) live in registers;
    // [resident, 27) rotate through the transient slots.
    if (k < resident) return static_cast<u8>(resident_first + k);
    return static_cast<u8>(kTransient0 + (k - resident) % 4);
  };
  if (!coef_streamed) {
    for (u32 k = 0; k < resident; ++k) {
      b.fld(coef_reg_of(k), kCoefPtr, static_cast<i32>(8 * k));
    }
  }
  // Omega lives in f7 for the accumulator-register variants; the chained
  // variants dedicate f5..f31 to coefficients, leaving f4 for omega.
  const u8 omega_reg = chained ? u8{4} : kOmega;
  if (j3d) {
    b.la(kAddrTmp, omega_addr);
    b.fld(omega_reg, kAddrTmp, 0);
  }

  b.csrwi(isa::csr::kSsrEnable, 1);
  if (chained) {
    u32 mask = 1u << kChainReg;
    // j3d27pt/Chaining also chains ft2 for the scale+store drain.
    if (j3d && variant == StencilVariant::kChaining) mask |= 1u << isa::kFt2;
    b.li(kCfgTmp, static_cast<i64>(mask));
    b.csrs(isa::csr::kChainMask, kCfgTmp);
    out.regs.chained_regs = (j3d && variant == StencilVariant::kChaining) ? 2 : 1;
  }

  const bool explicit_store = !ssr_writeback;
  if (explicit_store) b.la(kStorePtr, lay.out_base);
  b.li(kGroupCnt, static_cast<i64>(lay.groups));
  if (coef_streamed) b.li(kFrepReps, static_cast<i64>(nbr) - 1);

  // --- the group loop ---------------------------------------------------------
  b.label("group");

  if (coef_streamed) {
    // Base: zero the four accumulators, then a FREP-replayed 4-instruction
    // body (one fmadd per interleaved point) runs 27 times while the integer
    // core prepares the next group.
    for (u32 j = 0; j < 4; ++j) b.fcvt_d_w(static_cast<u8>(kAcc0 + j), 0);
    b.frep_o(kFrepReps, 4);
    b.fmadd_d(kAcc0 + 0, even_reg, coef_stream_reg, kAcc0 + 0);
    b.fmadd_d(kAcc0 + 1, odd_reg, coef_stream_reg, kAcc0 + 1);
    b.fmadd_d(kAcc0 + 2, even_reg, coef_stream_reg, kAcc0 + 2);
    b.fmadd_d(kAcc0 + 3, odd_reg, coef_stream_reg, kAcc0 + 3);
  } else if (chained) {
    // k-major interleave through the single chained accumulator: the FIFO
    // holds the four in-flight partial sums in the FPU pipeline registers.
    for (u32 k = 0; k < nbr; ++k) {
      const u8 ck = coef_reg_of(k);
      for (u32 jj = 0; jj < 4; ++jj) {
        const u8 gsrc = (jj % 2 == 0) ? even_reg : odd_reg;
        if (k == 0) {
          b.fmul_d(kChainReg, gsrc, ck); // push: no accumulator input yet
        } else if (k == nbr - 1 && variant == StencilVariant::kChainingPlus &&
                   !j3d) {
          // box3d1r/Chaining+: final fmadd writes the stream directly.
          b.fmadd_d(isa::kFt2, gsrc, ck, kChainReg);
        } else {
          b.fmadd_d(kChainReg, gsrc, ck, kChainReg);
        }
      }
    }
  } else {
    // Base--/Base-: integer-core-issued unrolled body with four accumulator
    // registers; tail coefficients stream through the transient slots via
    // fld one k-step ahead of use.
    for (u32 k = 0; k < nbr; ++k) {
      if (k + 1 < nbr && k + 1 >= resident) {
        b.fld(coef_reg_of(k + 1), kCoefPtr, static_cast<i32>(8 * (k + 1)));
      }
      const u8 ck = coef_reg_of(k);
      for (u32 jj = 0; jj < 4; ++jj) {
        const u8 gsrc = (jj % 2 == 0) ? even_reg : odd_reg;
        const u8 acc = static_cast<u8>(kAcc0 + jj);
        if (k == 0) {
          b.fmul_d(acc, gsrc, ck);
        } else {
          b.fmadd_d(acc, gsrc, ck, acc);
        }
      }
    }
  }

  // --- drain / writeback -------------------------------------------------------
  if (chained) {
    if (j3d) {
      // Scale by omega while draining. Chaining+: fmul pops ft3 and pushes
      // the write stream; Chaining: fmul pushes the *chained* ft2, popped by
      // the stores -- no scratch registers needed either way.
      for (u32 jj = 0; jj < 4; ++jj) b.fmul_d(isa::kFt2, kChainReg, omega_reg);
      if (explicit_store) {
        for (u32 jj = 0; jj < 4; ++jj) {
          b.fsd(isa::kFt2, kStorePtr, static_cast<i32>(8 * jj));
        }
      }
    } else if (explicit_store) {
      for (u32 jj = 0; jj < 4; ++jj) {
        b.fsd(kChainReg, kStorePtr, static_cast<i32>(8 * jj));
      }
    }
    // box3d1r/Chaining+ folded the drain into the last fmadd.
  } else {
    if (j3d) {
      if (ssr_writeback) {
        for (u32 jj = 0; jj < 4; ++jj) {
          b.fmul_d(isa::kFt2, static_cast<u8>(kAcc0 + jj), kOmega);
        }
      } else {
        // Scale into scratches, then store (interleaved to hide the FMA
        // latency). Base-- frees ft2 (no third stream) and keeps f12..f14
        // below the resident block; Base (all three SSRs busy, no resident
        // coefficients) uses the free mid registers f8..f11 instead.
        const bool ft2_free = !coef_streamed;
        const std::array<u8, 4> scratch =
            ft2_free ? std::array<u8, 4>{isa::kFt2, 12, 13, 14}
                     : std::array<u8, 4>{8, 9, 10, 11};
        for (u32 jj = 0; jj < 4; ++jj) {
          b.fmul_d(scratch[jj], static_cast<u8>(kAcc0 + jj), kOmega);
        }
        for (u32 jj = 0; jj < 4; ++jj) {
          b.fsd(scratch[jj], kStorePtr, static_cast<i32>(8 * jj));
        }
      }
    } else {
      if (ssr_writeback) {
        for (u32 jj = 0; jj < 4; ++jj) {
          b.fmv_d(isa::kFt2, static_cast<u8>(kAcc0 + jj));
        }
      } else {
        for (u32 jj = 0; jj < 4; ++jj) {
          b.fsd(static_cast<u8>(kAcc0 + jj), kStorePtr, static_cast<i32>(8 * jj));
        }
      }
    }
  }

  if (explicit_store) b.addi(kStorePtr, kStorePtr, 32);
  b.addi(kGroupCnt, kGroupCnt, -1);
  b.bnez(kGroupCnt, "group");

  if (chained) b.csrw(isa::csr::kChainMask, 0);
  b.csrwi(isa::csr::kSsrEnable, 0);
  b.ecall();

  // --- register report ----------------------------------------------------------
  out.regs.ssr_regs = coef_streamed || ssr_writeback ? 3 : 2;
  out.regs.accumulator_regs = chained ? 1 : 4;
  out.regs.coefficient_regs = coef_streamed ? 0 : resident;
  u32 used = out.regs.ssr_regs + out.regs.accumulator_regs +
             out.regs.coefficient_regs + (j3d ? 1 : 0);
  if (reloaded > 0) used += 4;                          // transient slots
  if (!chained && j3d && !ssr_writeback) used += 4;     // drain scratches
  out.regs.fp_regs_used = used;

  out.program = b.build();
  return out;
}

void register_stencil_kernels(Registry& r) {
  struct Kind {
    StencilKind kind;
    const char* description;
  };
  for (const Kind& k :
       {Kind{StencilKind::kBox3d1r,
             "SARIS 27-point box stencil (Fig. 3), indirect-gather streams"},
        Kind{StencilKind::kJ3d27pt,
             "SARIS 27-point Jacobi stencil (Fig. 3) with omega scaling"},
        Kind{StencilKind::kStar3d1r,
             "7-point star stencil, the not-register-limited negative control"}}) {
    r.add(KernelEntry{
        .name = stencil_kind_name(k.kind),
        .description = k.description,
        .variants = {"Base--", "Base-", "Base", "Chaining", "Chaining+"},
        .baseline_variant = "Base--",
        .chained_variant = "Chaining+",
        .params = {{"nx", 12, "grid x incl. radius-1 halo"},
                   {"ny", 12, "grid y incl. radius-1 halo"},
                   {"nz", 12, "grid z incl. radius-1 halo"}},
        .build = [kind = k.kind](const std::string& variant,
                                 const SizeMap& sizes) {
          StencilParams p;
          p.nx = static_cast<u32>(size_or(sizes, "nx", p.nx));
          p.ny = static_cast<u32>(size_or(sizes, "ny", p.ny));
          p.nz = static_cast<u32>(size_or(sizes, "nz", p.nz));
          for (StencilVariant v :
               {StencilVariant::kBaseMM, StencilVariant::kBaseM,
                StencilVariant::kBase, StencilVariant::kChaining,
                StencilVariant::kChainingPlus}) {
            if (variant == stencil_variant_name(v)) {
              return build_stencil(kind, v, p);
            }
          }
          throw std::invalid_argument(std::string(stencil_kind_name(kind)) +
                                      ": unknown variant '" + variant + "'");
        }});
  }
}

} // namespace sch::kernels
