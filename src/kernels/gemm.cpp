#include "kernels/gemm.hpp"

#include <cmath>
#include <stdexcept>

#include "asm/builder.hpp"
#include "isa/csr.hpp"
#include "isa/reg.hpp"
#include "kernels/registry.hpp"
#include "ssr/ssr_config.hpp"

namespace sch::kernels {

using ssr::CfgReg;

namespace {

double a_value(u32 r, u32 c) {
  return 0.03125 * static_cast<double>((r * 17 + c * 5 + 2) % 89) - 1.25;
}
double b_value(u32 r, u32 c) {
  return 0.0625 * static_cast<double>((r * 7 + c * 11 + 3) % 61) - 2.0;
}

void cfg(ProgramBuilder& b, u32 ssr_id, CfgReg reg, i64 value) {
  b.li(isa::kT0, value);
  b.scfgw(isa::kT0, ssr::cfg_index(ssr_id, reg));
}

CfgReg plus(CfgReg base, u32 d) {
  return static_cast<CfgReg>(static_cast<u32>(base) + d);
}

} // namespace

const char* gemm_variant_name(GemmVariant v) {
  return v == GemmVariant::kBaseline ? "baseline" : "chained";
}

BuiltKernel build_gemm(GemmVariant variant, const GemmParams& p) {
  if (p.m == 0 || p.m % 4 != 0 || p.k == 0 || p.n == 0) {
    throw std::invalid_argument("gemm: m must be a positive multiple of 4 and "
                                "k, n positive");
  }
  ProgramBuilder b;

  std::vector<double> a(static_cast<usize>(p.m) * p.k);
  std::vector<double> bm(static_cast<usize>(p.k) * p.n);
  for (u32 r = 0; r < p.m; ++r) {
    for (u32 c = 0; c < p.k; ++c) a[r * p.k + c] = a_value(r, c);
  }
  for (u32 r = 0; r < p.k; ++r) {
    for (u32 c = 0; c < p.n; ++c) bm[r * p.n + c] = b_value(r, c);
  }
  const Addr a_base = b.data_f64(a);
  const Addr b_base = b.data_f64(bm);
  const Addr c_base = b.data_zero(p.m * p.n * 8);

  BuiltKernel out;
  out.name = std::string("gemm/") + gemm_variant_name(variant);
  out.out_base = c_base;
  out.regions = {{"A", a_base, static_cast<u64>(p.m) * p.k * 8},
                 {"B", b_base, static_cast<u64>(p.k) * p.n * 8},
                 {"C", c_base, static_cast<u64>(p.m) * p.n * 8,
                  /*written=*/true}};
  out.expected.resize(static_cast<usize>(p.m) * p.n);
  for (u32 r = 0; r < p.m; ++r) {
    for (u32 j = 0; j < p.n; ++j) {
      double acc = 0.0;
      for (u32 kk = 0; kk < p.k; ++kk) {
        acc = std::fma(a[r * p.k + kk], bm[kk * p.n + j], acc);
      }
      out.expected[r * p.n + j] = acc;
    }
  }
  out.useful_flops = static_cast<u64>(p.m) * p.k * p.n;

  const i64 arow = static_cast<i64>(p.k) * 8; // A row pitch in bytes
  const i64 brow = static_cast<i64>(p.n) * 8; // B/C row pitch in bytes

  if (variant == GemmVariant::kChained) {
    // SSR0: A in 4-row-interleaved k-major order, each group re-streamed
    // once per B column.
    //   d0: the 4 rows of a group      d2: the N per-column repeats
    //   d1: the K reduction steps      d3: the M/4 groups
    cfg(b, 0, CfgReg::kBound0, 3);
    cfg(b, 0, plus(CfgReg::kStride0, 0), arow);
    cfg(b, 0, plus(CfgReg::kBound0, 1), p.k - 1);
    cfg(b, 0, plus(CfgReg::kStride0, 1), 8 - 3 * arow);
    cfg(b, 0, plus(CfgReg::kBound0, 2), p.n - 1);
    cfg(b, 0, plus(CfgReg::kStride0, 2), -(3 * arow + static_cast<i64>(p.k - 1) * 8));
    cfg(b, 0, plus(CfgReg::kBound0, 3), p.m / 4 - 1);
    cfg(b, 0, plus(CfgReg::kStride0, 3), 8);
    b.li(isa::kT1, static_cast<i64>(a_base));
    b.scfgw(isa::kT1, ssr::cfg_index(0, plus(CfgReg::kRptr0, 3)));

    // SSR1: B column-major walk, each element popped 4x (once per
    // interleaved row), whole matrix re-streamed per group.
    cfg(b, 1, CfgReg::kRepeat, 3);
    cfg(b, 1, CfgReg::kBound0, p.k - 1);
    cfg(b, 1, plus(CfgReg::kStride0, 0), brow);
    cfg(b, 1, plus(CfgReg::kBound0, 1), p.n - 1);
    cfg(b, 1, plus(CfgReg::kStride0, 1), 8 - static_cast<i64>(p.k - 1) * brow);
    cfg(b, 1, plus(CfgReg::kBound0, 2), p.m / 4 - 1);
    cfg(b, 1, plus(CfgReg::kStride0, 2),
        -(static_cast<i64>(p.k - 1) * brow + static_cast<i64>(p.n - 1) * 8));
    b.li(isa::kT1, static_cast<i64>(b_base));
    b.scfgw(isa::kT1, ssr::cfg_index(1, plus(CfgReg::kRptr0, 2)));

    // SSR2: C writeback in group-interleaved order (4 rows, then columns,
    // then groups).
    cfg(b, 2, CfgReg::kBound0, 3);
    cfg(b, 2, plus(CfgReg::kStride0, 0), brow);
    cfg(b, 2, plus(CfgReg::kBound0, 1), p.n - 1);
    cfg(b, 2, plus(CfgReg::kStride0, 1), 8 - 3 * brow);
    cfg(b, 2, plus(CfgReg::kBound0, 2), p.m / 4 - 1);
    cfg(b, 2, plus(CfgReg::kStride0, 2), 8);
    b.li(isa::kT1, static_cast<i64>(c_base));
    b.scfgw(isa::kT1, ssr::cfg_index(2, plus(CfgReg::kWptr0, 2)));
  } else {
    // SSR0: A row-serial, each row re-streamed once per B column.
    cfg(b, 0, CfgReg::kBound0, p.k - 1);
    cfg(b, 0, plus(CfgReg::kStride0, 0), 8);
    cfg(b, 0, plus(CfgReg::kBound0, 1), p.n - 1);
    cfg(b, 0, plus(CfgReg::kStride0, 1), -static_cast<i64>(p.k - 1) * 8);
    cfg(b, 0, plus(CfgReg::kBound0, 2), p.m - 1);
    cfg(b, 0, plus(CfgReg::kStride0, 2), 8);
    b.li(isa::kT1, static_cast<i64>(a_base));
    b.scfgw(isa::kT1, ssr::cfg_index(0, plus(CfgReg::kRptr0, 2)));

    // SSR1: B column walks, whole matrix re-streamed per row of A.
    cfg(b, 1, CfgReg::kBound0, p.k - 1);
    cfg(b, 1, plus(CfgReg::kStride0, 0), brow);
    cfg(b, 1, plus(CfgReg::kBound0, 1), p.n - 1);
    cfg(b, 1, plus(CfgReg::kStride0, 1), 8 - static_cast<i64>(p.k - 1) * brow);
    cfg(b, 1, plus(CfgReg::kBound0, 2), p.m - 1);
    cfg(b, 1, plus(CfgReg::kStride0, 2),
        -(static_cast<i64>(p.k - 1) * brow + static_cast<i64>(p.n - 1) * 8));
    b.li(isa::kT1, static_cast<i64>(b_base));
    b.scfgw(isa::kT1, ssr::cfg_index(1, plus(CfgReg::kRptr0, 2)));

    // SSR2: C row-major sequential writeback.
    cfg(b, 2, CfgReg::kBound0, p.m * p.n - 1);
    cfg(b, 2, plus(CfgReg::kStride0, 0), 8);
    b.li(isa::kT1, static_cast<i64>(c_base));
    b.scfgw(isa::kT1, ssr::cfg_index(2, CfgReg::kWptr0));
  }

  b.csrwi(isa::csr::kSsrEnable, 1);

  if (variant == GemmVariant::kChained) {
    b.li(isa::kT0, 8); // chain ft3
    b.csrs(isa::csr::kChainMask, isa::kT0);
    b.li(isa::kT2, static_cast<i64>(p.m / 4) * p.n); // (group, column) pairs
    b.li(isa::kT3, static_cast<i64>(4 * p.k) - 1);
    b.label("cell");
    for (int i = 0; i < 4; ++i) b.fcvt_d_w(isa::kFt3, 0);
    b.frep_o(isa::kT3, 1);
    b.fmadd_d(isa::kFt3, isa::kFt0, isa::kFt1, isa::kFt3);
    for (int i = 0; i < 4; ++i) b.fmv_d(isa::kFt2, isa::kFt3);
    b.addi(isa::kT2, isa::kT2, -1);
    b.bnez(isa::kT2, "cell");
    b.csrw(isa::csr::kChainMask, 0);
    out.regs.accumulator_regs = 1;
    out.regs.chained_regs = 1;
    out.regs.fp_regs_used = 4; // ft0..ft3
  } else {
    b.li(isa::kT2, static_cast<i64>(p.m) * p.n); // C elements
    b.li(isa::kT3, static_cast<i64>(p.k) - 1);
    b.label("cell");
    b.fcvt_d_w(isa::kFt3, 0);
    b.frep_o(isa::kT3, 1);
    b.fmadd_d(isa::kFt3, isa::kFt0, isa::kFt1, isa::kFt3);
    b.fmv_d(isa::kFt2, isa::kFt3);
    b.addi(isa::kT2, isa::kT2, -1);
    b.bnez(isa::kT2, "cell");
    out.regs.accumulator_regs = 1;
    out.regs.fp_regs_used = 4; // ft0..ft3
  }

  b.csrwi(isa::csr::kSsrEnable, 0);
  b.ecall();

  out.regs.ssr_regs = 3;
  out.program = b.build();
  return out;
}

void register_gemm_kernels(Registry& r) {
  r.add(KernelEntry{
      .name = "gemm",
      .description = "dense C = A*B: a grid of reduction chains, 4-row "
                     "chained interleave",
      .variants = {"baseline", "chained"},
      .baseline_variant = "baseline",
      .chained_variant = "chained",
      .params = {{"m", 16, "rows of A/C (multiple of 4)"},
                 {"k", 16, "reduction dimension"},
                 {"n", 16, "columns of B/C"}},
      .build = [](const std::string& variant, const SizeMap& sizes) {
        GemmParams p;
        p.m = static_cast<u32>(size_or(sizes, "m", p.m));
        p.k = static_cast<u32>(size_or(sizes, "k", p.k));
        p.n = static_cast<u32>(size_or(sizes, "n", p.n));
        for (GemmVariant v : {GemmVariant::kBaseline, GemmVariant::kChained}) {
          if (variant == gemm_variant_name(v)) return build_gemm(v, p);
        }
        throw std::invalid_argument("gemm: unknown variant '" + variant + "'");
      }});
}

} // namespace sch::kernels
