// SARIS-style 27-point stencil kernels (box3d1r, j3d27pt) in the paper's
// five variants (Fig. 3). All variants interleave U=4 output points to hide
// the 3-stage FMA latency and gather inputs through indirect SSR streams
// with 16-bit index arrays (even/odd points split across two streamers).
//
// | variant    | SSR0        | SSR1        | SSR2         | coefficients    | writeback  | chain |
// |------------|-------------|-------------|--------------|-----------------|------------|-------|
// | Base--     | gather even | gather odd  | --           | fld (partial RF)| fsd        | off   |
// | Base-      | gather even | gather odd  | write stream | fld (partial RF)| SSR2       | off   |
// | Base [7]   | gather even | coef stream | gather odd   | streamed L1     | fsd        | off   |
// | Chaining   | gather even | gather odd  | --           | resident in RF  | fsd        | on    |
// | Chaining+  | gather even | gather odd  | write stream | resident in RF  | SSR2       | on    |
//
// The register arithmetic is the paper's story: without chaining the four
// interleaved partial sums occupy four architectural registers and the 27
// coefficients do not fit in the register file; with chaining one chained
// register holds all four in-flight partial sums (they live in the FPU
// pipeline registers), freeing enough registers to keep every coefficient
// resident. Output is written compacted (one f64 per interior point in
// row-major interior order); the golden reference uses the same layout and
// the same FMA ordering, so results must match bit-exactly.
#pragma once

#include "kernels/kernel_common.hpp"

namespace sch::kernels {

// kStar3d1r (7-point) is an extension negative control: its coefficient set
// fits the register file even without chaining, so the paper's advantage
// should collapse (bench/ext_star_control).
enum class StencilKind : u8 { kBox3d1r, kJ3d27pt, kStar3d1r };

/// Neighbors in the stencil's support (27 for the paper's kernels, 7 for the
/// star control).
u32 stencil_neighbors(StencilKind kind);
enum class StencilVariant : u8 { kBaseMM, kBaseM, kBase, kChaining, kChainingPlus };

const char* stencil_kind_name(StencilKind kind);
const char* stencil_variant_name(StencilVariant variant);

struct StencilParams {
  u32 nx = 12, ny = 12, nz = 12; // grid incl. radius-1 halo
  /// Interleaved output points (= FPU depth + 1 = chain FIFO capacity).
  u32 unroll = 4;
  /// Coefficients kept resident in the RF for Base--/Base-; 0 = the maximum
  /// the register file allows for the variant/kind (see stencil.cpp).
  u32 resident_coefs = 0;
};

/// Number of interior points (must be a multiple of `unroll`).
u32 stencil_interior_points(const StencilParams& params);

/// Build the kernel program, its input data image and the golden output.
BuiltKernel build_stencil(StencilKind kind, StencilVariant variant,
                          const StencilParams& params = {});

} // namespace sch::kernels
