// Xdma emission helpers shared by the double-buffered streaming kernels:
// issue helpers around dmsrc/dmdst/dmcpy and the two lockstep-safe wait
// idioms (poll the per-hart completed count up to a known id; drain until
// nothing is outstanding). Both idioms leave the poll register with the
// same final value on the functional ISS and the cycle engine, so kernels
// built from them cross-validate under `--engine both`.
#pragma once

#include <string>

#include "asm/builder.hpp"

namespace sch::kernels {

/// Emit dmsrc/dmdst from `src_reg`/`dst_reg` and a 1-D dmcpy of `bytes_reg`
/// bytes; the per-hart transfer id lands in `id_rd`.
void emit_dma_copy(ProgramBuilder& b, u8 src_reg, u8 dst_reg, u8 bytes_reg,
                   u8 id_rd);

/// Spin until this hart's completed-transfer count reaches `want_reg`
/// (normally the id returned by the newest dmcpy). `poll_reg` is clobbered;
/// `label` must be unique per emitted wait.
void emit_dma_wait(ProgramBuilder& b, u8 poll_reg, u8 want_reg,
                   const std::string& label);

/// Spin until this hart has no outstanding transfers (`poll_reg` ends 0).
void emit_dma_drain(ProgramBuilder& b, u8 poll_reg, const std::string& label);

} // namespace sch::kernels
