#include "kernels/runner.hpp"

#include <cmath>
#include <sstream>

#include "energy/activity.hpp"
#include "iss/iss.hpp"
#include "mem/memory.hpp"
#include "sim/simulator.hpp"

namespace sch::kernels {
namespace {

u64 count_mismatches(const Memory& mem, const BuiltKernel& k,
                     std::string& detail) {
  u64 bad = 0;
  for (u32 i = 0; i < k.expected.size(); ++i) {
    const double got = mem.load_f64(k.out_base + 8 * i);
    const double want = k.expected[i];
    const bool equal = (got == want) || (std::isnan(got) && std::isnan(want));
    if (!equal) {
      if (bad == 0) {
        std::ostringstream os;
        os << "first mismatch at element " << i << ": got " << got
           << ", want " << want;
        detail = os.str();
      }
      ++bad;
    }
  }
  return bad;
}

} // namespace

RunResult run_on_simulator(const BuiltKernel& kernel,
                           const sim::SimConfig& config,
                           const energy::EnergyConfig& energy_config) {
  RunResult r;
  Memory mem;
  sim::Simulator s(kernel.program, mem, config);
  const HaltReason halt = s.run();
  r.cycles = s.cycles();
  r.perf = s.perf();
  r.fpu_utilization = s.perf().fpu_utilization();
  r.energy = energy::evaluate_run(s, energy_config);
  r.tcdm_reads = s.tcdm().stats().reads;
  r.tcdm_writes = s.tcdm().stats().writes;
  r.tcdm_conflicts = s.tcdm().stats().conflicts;
  if (halt != HaltReason::kEcall) {
    r.error = kernel.name + ": simulator halted abnormally: " +
              (s.error().empty() ? "(no message)" : s.error());
    return r;
  }
  std::string detail;
  r.mismatches = count_mismatches(mem, kernel, detail);
  if (r.mismatches != 0) {
    std::ostringstream os;
    os << kernel.name << ": " << r.mismatches << " output mismatches; " << detail;
    r.error = os.str();
    return r;
  }
  r.ok = true;
  return r;
}

IssRunResult run_on_iss(const BuiltKernel& kernel) {
  IssRunResult r;
  Memory mem;
  Iss iss(kernel.program, mem);
  const HaltReason halt = iss.run();
  r.instructions = iss.instret();
  if (halt != HaltReason::kEcall) {
    r.error = kernel.name + ": ISS halted abnormally: " +
              (iss.error().empty() ? "(no message)" : iss.error());
    return r;
  }
  std::string detail;
  r.mismatches = count_mismatches(mem, kernel, detail);
  if (r.mismatches != 0) {
    r.error = kernel.name + ": ISS output mismatch; " + detail;
    return r;
  }
  r.ok = true;
  return r;
}

} // namespace sch::kernels
