// Runtime work partitioning for cluster kernels: one program, replicated to
// every core, splits its iteration groups by the mhartid/mnumharts CSRs, so
// the binary never bakes in the cluster size. The partition is the standard
// balanced split: hart h of N owns groups [h*G/N, (h+1)*G/N), which covers
// every group exactly once for any G and N.
#pragma once

#include <initializer_list>
#include <string>

#include "asm/builder.hpp"

namespace sch::kernels {

/// Emit the partition prologue: reads mhartid into `hart_reg` and mnumharts
/// into `nharts_reg`, computes this hart's first group into `gs_reg` and its
/// group count into `cnt_reg`, and branches to `empty_label` when the hart
/// owns no groups (callers place that label after the compute section).
/// `tmp` is scratch. `groups` is the build-time total group count.
void emit_group_partition(ProgramBuilder& b, u32 groups, u8 hart_reg,
                          u8 nharts_reg, u8 gs_reg, u8 cnt_reg, u8 tmp,
                          const std::string& empty_label);

/// One contiguous f64 stream of a sliced 1-D kernel.
struct SliceStream {
  u32 ssr_id;
  Addr base;      // full-array base; the hart's offset is added at runtime
  bool is_write;
};

/// Emit the slice SSR arming shared by the linear _par kernels: for a hart
/// owning `cnt_reg` groups of `group_elems` elements starting at group
/// `gs_reg`, arms every stream with bound = cnt*group_elems - 1, stride 8
/// and pointer base + gs*group_elems*8. `bound_reg`/`off_reg` receive the
/// computed bound and byte offset; `tmp` is scratch.
void emit_linear_slice_ssrs(ProgramBuilder& b, u32 group_elems, u8 gs_reg,
                            u8 cnt_reg, u8 bound_reg, u8 off_reg, u8 tmp,
                            std::initializer_list<SliceStream> streams);

} // namespace sch::kernels
