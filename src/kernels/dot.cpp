#include "kernels/dot.hpp"

#include <cmath>
#include <stdexcept>

#include "asm/builder.hpp"
#include "isa/csr.hpp"
#include "isa/reg.hpp"
#include "kernels/registry.hpp"
#include "ssr/ssr_config.hpp"

namespace sch::kernels {

namespace {

double x_value(u32 i) { return 0.0625 * static_cast<double>((i * 7 + 1) % 96) - 3.0; }
double y_value(u32 i) { return 0.125 * static_cast<double>((i * 13 + 4) % 56) - 3.5; }

void arm_read(ProgramBuilder& b, u32 ssr_id, u32 n, Addr base) {
  using ssr::CfgReg;
  b.li(isa::kT0, static_cast<i64>(n - 1));
  b.scfgw(isa::kT0, ssr::cfg_index(ssr_id, CfgReg::kBound0));
  b.li(isa::kT0, 8);
  b.scfgw(isa::kT0, ssr::cfg_index(ssr_id, CfgReg::kStride0));
  b.li(isa::kT1, static_cast<i64>(base));
  b.scfgw(isa::kT1, ssr::cfg_index(ssr_id, CfgReg::kRptr0));
}

} // namespace

const char* dot_variant_name(DotVariant v) {
  return v == DotVariant::kBaseline ? "baseline" : "chained";
}

BuiltKernel build_dot(DotVariant variant, const DotParams& p) {
  if (p.unroll < 2 || p.unroll > 8) {
    throw std::invalid_argument("dot: unroll must be in 2..8");
  }
  if (p.n == 0 || p.n % p.unroll != 0) {
    throw std::invalid_argument("dot: n must be a positive multiple of unroll");
  }
  const u32 u = p.unroll;
  ProgramBuilder b;

  std::vector<double> x(p.n), y(p.n);
  for (u32 i = 0; i < p.n; ++i) {
    x[i] = x_value(i);
    y[i] = y_value(i);
  }
  const Addr x_base = b.data_f64(x);
  const Addr y_base = b.data_f64(y);
  const Addr r_base = b.data_zero(8);

  BuiltKernel out;
  out.name = std::string("dot/") + dot_variant_name(variant);
  out.out_base = r_base;
  out.regions = {{"x", x_base, p.n * 8ull},
                 {"y", y_base, p.n * 8ull},
                 {"r", r_base, 8, /*written=*/true}};
  out.expected.resize(1);
  if (variant == DotVariant::kBaseline) {
    double acc = 0.0;
    for (u32 i = 0; i < p.n; ++i) acc = std::fma(x[i], y[i], acc);
    out.expected[0] = acc;
  } else {
    // `u` rotating partials (partial j sees elements j, j+u, ...), then a
    // sequential drain reduction.
    std::vector<double> s(u, 0.0);
    for (u32 i = 0; i < p.n; ++i) s[i % u] = std::fma(x[i], y[i], s[i % u]);
    double acc = s[0];
    for (u32 j = 1; j < u; ++j) acc += s[j];
    out.expected[0] = acc;
  }
  out.useful_flops = p.n;

  arm_read(b, 0, p.n, x_base);
  arm_read(b, 1, p.n, y_base);
  b.csrwi(isa::csr::kSsrEnable, 1);

  out.regs.ssr_regs = 2;
  out.regs.accumulator_regs = 1;

  if (variant == DotVariant::kChained) {
    b.li(isa::kT2, 8); // chain ft3
    b.csrs(isa::csr::kChainMask, isa::kT2);
    out.regs.chained_regs = 1;
    // Seed the FIFO with u zero partials, then rotate them through the SAME
    // single-instruction body the baseline uses.
    for (u32 j = 0; j < u; ++j) b.fcvt_d_w(isa::kFt3, 0);
  } else {
    b.fcvt_d_w(isa::kFt3, 0);
  }

  b.li(isa::kT3, static_cast<i64>(p.n) - 1);
  b.frep_o(isa::kT3, 1);
  b.fmadd_d(isa::kFt3, isa::kFt0, isa::kFt1, isa::kFt3);

  b.la(isa::kA0, r_base);
  if (variant == DotVariant::kChained) {
    // Drain with u consecutive pops FIRST (a consumer that stalls between
    // pops would deadlock: the blocked producer writeback freezes the whole
    // FPU pipeline, including the instructions the consumer waits on), then
    // reduce the scratches sequentially.
    for (u32 j = 0; j < u; ++j) {
      b.fmv_d(static_cast<u8>(isa::kFt4 + j), isa::kFt3);
    }
    for (u32 j = 1; j < u; ++j) {
      b.fadd_d(isa::kFt4, isa::kFt4, static_cast<u8>(isa::kFt4 + j));
    }
    b.csrw(isa::csr::kChainMask, 0);
    b.fsd(isa::kFt4, isa::kA0, 0);
    out.regs.fp_regs_used = 3 + u; // ft0, ft1, ft3 + u drain scratches
  } else {
    b.fsd(isa::kFt3, isa::kA0, 0);
    out.regs.fp_regs_used = 3; // ft0, ft1, ft3
  }
  b.csrwi(isa::csr::kSsrEnable, 0);
  b.ecall();

  out.program = b.build();
  return out;
}

void register_dot_kernels(Registry& r) {
  r.add(KernelEntry{
      .name = "dot",
      .description = "dot product: one serial reduction chain vs rotating "
                     "chained partials",
      .variants = {"baseline", "chained"},
      .baseline_variant = "baseline",
      .chained_variant = "chained",
      .params = {{"n", 256, "elements (multiple of unroll)"},
                 {"unroll", 4, "rotating partial sums (<= fpu_depth + 1)"}},
      .build = [](const std::string& variant, const SizeMap& sizes) {
        DotParams p;
        p.n = static_cast<u32>(size_or(sizes, "n", p.n));
        p.unroll = static_cast<u32>(size_or(sizes, "unroll", p.unroll));
        for (DotVariant v : {DotVariant::kBaseline, DotVariant::kChained}) {
          if (variant == dot_variant_name(v)) return build_dot(v, p);
        }
        throw std::invalid_argument("dot: unknown variant '" + variant + "'");
      }});
}

} // namespace sch::kernels
