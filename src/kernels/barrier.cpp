#include "kernels/barrier.hpp"

namespace sch::kernels {

BarrierData alloc_barrier(ProgramBuilder& b, u32 max_harts) {
  BarrierData bar;
  bar.sense = b.data_align(4);
  b.data_zero(4);
  bar.arrive = b.data_zero(max_harts * 4);
  return bar;
}

void emit_barrier(ProgramBuilder& b, const BarrierData& bar, u8 hart_reg,
                  u8 nharts_reg, u8 sense_reg, u8 tmp0, u8 tmp1, u8 tmp2,
                  const std::string& label_prefix) {
  const std::string gather = label_prefix + "_gather";
  const std::string gather_spin = label_prefix + "_gather_spin";
  const std::string release = label_prefix + "_release";
  const std::string wait = label_prefix + "_wait";
  const std::string done = label_prefix + "_done";

  // Flip the local sense and publish arrival.
  b.xori(sense_reg, sense_reg, 1);
  b.slli(tmp0, hart_reg, 2);
  b.la(tmp1, bar.arrive);
  b.add(tmp1, tmp1, tmp0);
  b.sw(sense_reg, tmp1, 0);

  b.bnez(hart_reg, wait);

  // Hart 0: gather every other hart's arrival, then release.
  b.li(tmp0, 1); // hart index being gathered
  b.label(gather);
  b.bge(tmp0, nharts_reg, release);
  b.la(tmp1, bar.arrive);
  b.slli(tmp2, tmp0, 2);
  b.add(tmp1, tmp1, tmp2);
  b.label(gather_spin);
  b.lw(tmp2, tmp1, 0);
  b.bne(tmp2, sense_reg, gather_spin);
  b.addi(tmp0, tmp0, 1);
  b.j(gather);
  b.label(release);
  b.la(tmp1, bar.sense);
  b.sw(sense_reg, tmp1, 0);
  b.j(done);

  // Harts != 0: spin on the global sense word.
  b.label(wait);
  b.la(tmp1, bar.sense);
  b.label(wait + "_spin");
  b.lw(tmp2, tmp1, 0);
  b.bne(tmp2, sense_reg, wait + "_spin");

  b.label(done);
}

} // namespace sch::kernels
