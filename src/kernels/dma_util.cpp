#include "kernels/dma_util.hpp"

namespace sch::kernels {

void emit_dma_copy(ProgramBuilder& b, u8 src_reg, u8 dst_reg, u8 bytes_reg,
                   u8 id_rd) {
  b.dmsrc(src_reg);
  b.dmdst(dst_reg);
  b.dmcpy(id_rd, bytes_reg);
}

void emit_dma_wait(ProgramBuilder& b, u8 poll_reg, u8 want_reg,
                   const std::string& label) {
  b.label(label);
  b.dmstat(poll_reg, 0);
  b.blt(poll_reg, want_reg, label);
}

void emit_dma_drain(ProgramBuilder& b, u8 poll_reg, const std::string& label) {
  b.label(label);
  b.dmstat(poll_reg, 1);
  b.bnez(poll_reg, label);
}

} // namespace sch::kernels
