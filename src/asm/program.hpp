// Program image: encoded text segment, initial data image, and symbols.
// Produced by the text assembler or the ProgramBuilder; consumed by the ISS
// and the cycle-level simulator.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/instr.hpp"
#include "isa/predecode.hpp"

namespace sch {

/// Default address map of the modeled system (see DESIGN.md §4).
namespace memmap {
/// Instruction memory base (ideal fetch; Snitch-style private I-cache).
inline constexpr Addr kTextBase = 0x8000'0000;
/// L1 tightly-coupled data memory (banked scratchpad).
inline constexpr Addr kTcdmBase = 0x1000'0000;
inline constexpr u32 kTcdmSize = 128 * 1024;
/// Bulk memory region (higher latency).
inline constexpr Addr kMainBase = 0x2000'0000;
inline constexpr u32 kMainSize = 4 * 1024 * 1024;

/// True when `addr` falls into the L1 TCDM region (bank-arbitrated). The
/// one definition of the window; Memory::in_tcdm and the Tcdm arbiter both
/// delegate here.
constexpr bool in_tcdm(Addr addr) {
  return addr >= kTcdmBase && addr < kTcdmBase + kTcdmSize;
}
} // namespace memmap

class Program {
 public:
  Addr text_base = memmap::kTextBase;
  Addr data_base = memmap::kTcdmBase;

  /// Encoded instruction words, text_base-relative.
  std::vector<u32> words;
  /// Decoded mirror of `words` (kept in sync; fast path for simulation).
  std::vector<isa::Instr> instrs;
  /// Predecoded execution records, parallel to `instrs`. Built once by
  /// predecode(); the execution engines dispatch through these instead of
  /// re-deriving metadata per step.
  std::vector<isa::PredecodedInstr> pre;
  /// Initial data image, data_base-relative.
  std::vector<u8> data;
  /// Label/symbol table (both text and data symbols).
  std::map<std::string, Addr> symbols;
  /// 1-based source line per instruction (0 when synthesized by a builder).
  std::vector<u32> source_lines;

  [[nodiscard]] usize num_instrs() const { return words.size(); }
  [[nodiscard]] Addr end_of_text() const {
    return text_base + static_cast<Addr>(words.size() * 4);
  }

  /// Address of `label`; throws std::out_of_range when undefined.
  [[nodiscard]] Addr symbol(const std::string& label) const {
    return symbols.at(label);
  }

  /// Fetch the decoded instruction at `pc`; returns nullptr outside text.
  [[nodiscard]] const isa::Instr* fetch(Addr pc) const {
    if (pc < text_base || (pc - text_base) % 4 != 0) return nullptr;
    const usize idx = (pc - text_base) / 4;
    return idx < instrs.size() ? &instrs[idx] : nullptr;
  }

  /// Sentinel returned by text_index() for addresses outside the text
  /// segment (or misaligned ones).
  static constexpr u32 kNoIndex = 0xFFFF'FFFF;

  /// Instruction index of `pc`, or kNoIndex when off-text/misaligned.
  [[nodiscard]] u32 text_index(Addr pc) const {
    if (pc < text_base) return kNoIndex;
    const Addr off = pc - text_base;
    if ((off & 3u) != 0) return kNoIndex;
    const usize idx = off >> 2;
    return idx < instrs.size() ? static_cast<u32>(idx) : kNoIndex;
  }

  /// Rebuild the predecoded execution stream from `instrs`, including the
  /// superblock metadata (straight-line run lengths, branch targets, static
  /// frep-body validation -- see isa::link_superblocks). Always a full
  /// rebuild (linear, off the hot path) so in-place instruction edits can
  /// never leave stale records or stale block boundaries; this call is the
  /// invalidation hook for program edits. The ISS and simulator call it on
  /// construction so hand-assembled Programs work too.
  void predecode() {
    pre.clear();
    pre.reserve(instrs.size());
    for (const isa::Instr& in : instrs) pre.push_back(isa::predecode(in));
    isa::link_superblocks(pre);
  }

  /// Predecode only if `pre` is not already a full mirror of `instrs`. The
  /// engines call this on construction: a Program copied out of the build
  /// cache arrives predecoded and skips the pass entirely, while programs
  /// edited in place after a predecode must call predecode() themselves
  /// (the documented invalidation hook above).
  void ensure_predecoded() {
    if (pre.size() != instrs.size()) predecode();
  }
};

} // namespace sch
