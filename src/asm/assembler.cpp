#include "asm/assembler.hpp"

#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <vector>

#include "asm/lexer.hpp"
#include "common/bitfield.hpp"
#include "isa/csr.hpp"
#include "isa/encode.hpp"
#include "isa/reg.hpp"

namespace sch::assembler {
namespace {

using isa::Instr;
using isa::Mnemonic;

const std::map<std::string, u32, std::less<>>& csr_names() {
  static const std::map<std::string, u32, std::less<>> kMap = {
      {"fflags", isa::csr::kFflags},   {"frm", isa::csr::kFrm},
      {"fcsr", isa::csr::kFcsr},       {"cycle", isa::csr::kCycle},
      {"instret", isa::csr::kInstret}, {"mcycle", isa::csr::kMcycle},
      {"minstret", isa::csr::kMinstret}, {"mhartid", isa::csr::kMhartid},
      {"mnumharts", isa::csr::kMnumharts},
      {"ssr_enable", isa::csr::kSsrEnable},
      {"chain_mask", isa::csr::kChainMask},
  };
  return kMap;
}

const std::map<std::string_view, Mnemonic>& mnemonic_map() {
  static const std::map<std::string_view, Mnemonic>* kMap = [] {
    auto* m = new std::map<std::string_view, Mnemonic>();
    for (u16 i = 1; i < static_cast<u16>(Mnemonic::kCount); ++i) {
      const auto mn = static_cast<Mnemonic>(i);
      m->emplace(isa::name(mn), mn);
    }
    return m;
  }();
  return *kMap;
}

enum class Section { kText, kData };

struct Statement {
  u32 line = 0;
  std::string mnemonic;          // lowercase instruction or pseudo name
  std::vector<Token> operands;   // tokens after the mnemonic (incl. kEnd)
  Addr addr = 0;                 // assigned in pass 1
  u32 n_words = 1;               // expansion size in words
};

struct DataItem {
  u32 line = 0;
  std::string directive;
  std::vector<Token> operands;
  Addr addr = 0;
  u32 n_bytes = 0;
};

[[noreturn]] void fail(u32 line, const std::string& what) {
  throw std::invalid_argument("line " + std::to_string(line) + ": " + what);
}

/// Token-stream cursor with operand-level parsing helpers.
class Cursor {
 public:
  Cursor(const std::vector<Token>& toks, u32 line,
         const std::map<std::string, Addr>& symbols)
      : toks_(toks), line_(line), symbols_(symbols) {}

  [[nodiscard]] const Token& peek() const { return toks_[pos_]; }
  [[nodiscard]] bool at_end() const { return peek().kind == TokKind::kEnd; }

  const Token& next() {
    const Token& t = toks_[pos_];
    if (t.kind != TokKind::kEnd) ++pos_;
    return t;
  }

  void expect(TokKind kind, const char* what) {
    if (peek().kind != kind) fail(line_, std::string("expected ") + what);
    next();
  }

  void comma() { expect(TokKind::kComma, "','"); }

  void end() {
    if (!at_end()) fail(line_, "trailing operands: '" + peek().text + "'");
  }

  u8 int_reg() {
    const Token& t = next();
    if (t.kind != TokKind::kIdent) fail(line_, "expected integer register");
    const std::string name = strip_percent(t.text);
    if (auto r = isa::parse_int_reg(name)) return *r;
    // Inline-asm style placeholders (the paper's %[i]) may be bound to a
    // register index through .equ.
    if (auto a = alias(name)) return *a;
    fail(line_, "unknown integer register '" + t.text + "'");
  }

  u8 fp_reg() {
    const Token& t = next();
    if (t.kind != TokKind::kIdent) fail(line_, "expected FP register");
    const std::string name = strip_percent(t.text);
    if (auto r = isa::parse_fp_reg(name)) return *r;
    if (auto a = alias(name)) return *a;
    fail(line_, "unknown FP register '" + t.text + "'");
  }

  /// Constant expression: term (('+'|'-') term)*, term = int | symbol.
  i64 imm_expr() {
    i64 value = term();
    while (peek().kind == TokKind::kPlus || peek().kind == TokKind::kMinus) {
      const bool add = next().kind == TokKind::kPlus;
      const i64 rhs = term();
      value = add ? value + rhs : value - rhs;
    }
    return value;
  }

  /// `imm(reg)` memory operand; the immediate part may be empty: `(reg)`.
  std::pair<u8, i32> mem_operand() {
    i64 imm = 0;
    if (peek().kind != TokKind::kLParen) imm = imm_expr();
    expect(TokKind::kLParen, "'('");
    const u8 base = int_reg();
    expect(TokKind::kRParen, "')'");
    if (!fits_simm(imm, 12)) fail(line_, "memory offset out of range");
    return {base, static_cast<i32>(imm)};
  }

  /// Branch/jump target: label or numeric byte offset.
  i64 target_offset(Addr pc) {
    if (peek().kind == TokKind::kIdent && !is_symbol_free(peek().text)) {
      const std::string name = strip_percent(next().text);
      auto it = symbols_.find(name);
      if (it == symbols_.end()) fail(line_, "undefined label '" + name + "'");
      return static_cast<i64>(it->second) - static_cast<i64>(pc);
    }
    return imm_expr();
  }

  u32 csr_address() {
    if (peek().kind == TokKind::kIdent) {
      const std::string name = strip_percent(next().text);
      auto it = csr_names().find(name);
      if (it == csr_names().end()) fail(line_, "unknown CSR name '" + name + "'");
      return it->second;
    }
    const i64 v = imm_expr();
    if (!fits_uimm(v, 12)) fail(line_, "CSR address out of range");
    return static_cast<u32>(v);
  }

 private:
  // The paper's listings use inline-asm style operands like %[mask]; accept
  // them by stripping the wrapper and treating the inner name as-is.
  static std::string strip_percent(const std::string& s) {
    if (s.size() >= 3 && s[0] == '%' && s[1] == '[' && s.back() == ']') {
      return s.substr(2, s.size() - 3);
    }
    return s;
  }

  bool is_symbol_free(const std::string& text) const {
    // Idents that parse as registers are not labels.
    const std::string s = strip_percent(text);
    return isa::parse_int_reg(s).has_value() || isa::parse_fp_reg(s).has_value();
  }

  std::optional<u8> alias(const std::string& name) const {
    auto it = symbols_.find(name);
    if (it == symbols_.end() || it->second >= 32) return std::nullopt;
    return static_cast<u8>(it->second);
  }

  i64 term() {
    const Token& t = next();
    if (t.kind == TokKind::kInt) return t.ival;
    if (t.kind == TokKind::kMinus) {
      const Token& u = next();
      if (u.kind != TokKind::kInt) fail(line_, "expected integer after '-'");
      return -u.ival;
    }
    if (t.kind == TokKind::kIdent) {
      const std::string name = strip_percent(t.text);
      auto it = symbols_.find(name);
      if (it == symbols_.end()) fail(line_, "undefined symbol '" + name + "'");
      return static_cast<i64>(it->second);
    }
    fail(line_, "expected immediate, got '" + t.text + "'");
  }

  const std::vector<Token>& toks_;
  u32 pos_ = 0;
  u32 line_;
  const std::map<std::string, Addr>& symbols_;
};

/// Expansion size (in words) of an instruction or pseudo, for pass 1.
/// `symbols` holds .equ constants defined so far (li needs the value).
u32 size_of(const std::string& mn, const std::vector<Token>& ops, u32 line,
            const std::map<std::string, Addr>& equs) {
  if (mn == "li") {
    // li rd, imm -- 1 word if the constant fits 12 bits, else up to 2.
    Cursor c(ops, line, equs);
    c.int_reg();
    c.comma();
    const i64 v = c.imm_expr();
    if (fits_simm(v, 12)) return 1;
    const i32 lo = sign_extend(static_cast<u32>(v) & 0xFFF, 12);
    return lo == 0 ? 1 : 2;
  }
  if (mn == "la") return 2;
  return 1;
}

class AssemblerImpl {
 public:
  explicit AssemblerImpl(const Options& opt) {
    prog_.text_base = opt.text_base;
    prog_.data_base = opt.data_base;
  }

  Program run(std::string_view source) {
    pass1(source);
    pass2();
    prog_.predecode();
    return std::move(prog_);
  }

 private:
  void pass1(std::string_view source) {
    u32 line_no = 0;
    Addr text_pc = prog_.text_base;
    Addr data_pc = prog_.data_base;
    Section section = Section::kText;

    usize start = 0;
    while (start <= source.size()) {
      const usize nl = source.find('\n', start);
      const std::string_view line =
          source.substr(start, nl == std::string_view::npos ? std::string_view::npos
                                                            : nl - start);
      ++line_no;
      start = nl == std::string_view::npos ? source.size() + 1 : nl + 1;

      std::vector<Token> toks;
      try {
        toks = tokenize_line(line);
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
      usize pos = 0;

      // Leading labels: ident ':'.
      while (toks[pos].kind == TokKind::kIdent && toks[pos + 1].kind == TokKind::kColon) {
        define_symbol(toks[pos].text, section == Section::kText ? text_pc : data_pc, line_no);
        pos += 2;
      }
      if (toks[pos].kind == TokKind::kEnd) continue;

      if (toks[pos].kind == TokKind::kDirective) {
        const std::string dir = toks[pos].text;
        std::vector<Token> rest(toks.begin() + static_cast<long>(pos) + 1, toks.end());
        if (dir == "text") { section = Section::kText; continue; }
        if (dir == "data") { section = Section::kData; continue; }
        if (dir == "global" || dir == "globl" || dir == "section" || dir == "option") continue;
        if (dir == "equ" || dir == "set") {
          Cursor c(rest, line_no, prog_.symbols);
          const Token& name = c.next();
          if (name.kind != TokKind::kIdent) fail(line_no, ".equ: expected name");
          c.comma();
          const i64 v = c.imm_expr();
          c.end();
          define_symbol(name.text, static_cast<Addr>(v), line_no);
          continue;
        }
        if (section != Section::kData) fail(line_no, "data directive outside .data: ." + dir);
        DataItem item{line_no, dir, rest, data_pc, 0};
        item.n_bytes = data_item_size(item, data_pc);
        data_pc += item.n_bytes;
        data_items_.push_back(std::move(item));
        continue;
      }

      if (toks[pos].kind != TokKind::kIdent) {
        fail(line_no, "expected instruction, got '" + toks[pos].text + "'");
      }
      if (section != Section::kText) fail(line_no, "instruction outside .text");

      Statement st;
      st.line = line_no;
      st.mnemonic = toks[pos].text;
      st.operands.assign(toks.begin() + static_cast<long>(pos) + 1, toks.end());
      st.addr = text_pc;
      st.n_words = size_of(st.mnemonic, st.operands, line_no, prog_.symbols);
      text_pc += st.n_words * 4;
      statements_.push_back(std::move(st));
    }
  }

  void pass2() {
    // Materialize data items first so text encoding may reference data symbols
    // (already defined in pass 1 anyway).
    for (const DataItem& item : data_items_) encode_data(item);
    for (const Statement& st : statements_) {
      const usize before = prog_.words.size();
      encode_statement(st);
      const usize emitted = prog_.words.size() - before;
      if (emitted != st.n_words) {
        fail(st.line, "internal: size mismatch for '" + st.mnemonic + "'");
      }
    }
  }

  void define_symbol(const std::string& name, Addr value, u32 line) {
    if (prog_.symbols.count(name) != 0) fail(line, "duplicate symbol '" + name + "'");
    prog_.symbols[name] = value;
  }

  u32 data_item_size(const DataItem& item, Addr pc) const {
    Cursor c(item.operands, item.line, prog_.symbols);
    const std::string& d = item.directive;
    auto count_list = [&]() {
      u32 n = 1;
      for (const Token& t : item.operands) {
        if (t.kind == TokKind::kComma) ++n;
      }
      return n;
    };
    if (d == "word") return 4 * count_list();
    if (d == "dword") return 8 * count_list();
    if (d == "half") return 2 * count_list();
    if (d == "byte") return 1 * count_list();
    if (d == "double") return 8 * count_list();
    if (d == "float") return 4 * count_list();
    if (d == "zero" || d == "space") {
      const i64 n = c.imm_expr();
      if (n < 0) fail(item.line, ".zero: negative size");
      return static_cast<u32>(n);
    }
    if (d == "align") {
      const i64 p = c.imm_expr();
      if (p < 0 || p > 16) fail(item.line, ".align: bad power");
      const u64 a = u64{1} << p;
      return static_cast<u32>(align_up(pc, a) - pc);
    }
    if (d == "balign") {
      const i64 a = c.imm_expr();
      if (a <= 0 || !is_pow2(static_cast<u64>(a))) fail(item.line, ".balign: bad alignment");
      return static_cast<u32>(align_up(pc, static_cast<u64>(a)) - pc);
    }
    fail(item.line, "unknown directive '." + d + "'");
  }

  void push_data_bytes(u64 v, u32 nbytes) {
    for (u32 i = 0; i < nbytes; ++i) prog_.data.push_back(static_cast<u8>(v >> (8 * i)));
  }

  void encode_data(const DataItem& item) {
    // Data image is contiguous from data_base; pad to this item's address.
    const Addr want = item.addr;
    const Addr have = prog_.data_base + static_cast<Addr>(prog_.data.size());
    for (Addr a = have; a < want; ++a) prog_.data.push_back(0);

    const std::string& d = item.directive;
    Cursor c(item.operands, item.line, prog_.symbols);
    if (d == "zero" || d == "space") {
      const i64 n = c.imm_expr();
      c.end();
      for (i64 i = 0; i < n; ++i) prog_.data.push_back(0);
      return;
    }
    if (d == "align" || d == "balign") {
      for (u32 i = 0; i < item.n_bytes; ++i) prog_.data.push_back(0);
      return;
    }
    const u32 elem = d == "word" ? 4 : d == "dword" ? 8 : d == "half" ? 2 :
                     d == "byte" ? 1 : d == "double" ? 8 : d == "float" ? 4 : 0;
    const bool is_fp = d == "double" || d == "float";
    while (true) {
      if (is_fp) {
        const Token& t = c.peek();
        double v = 0;
        if (t.kind == TokKind::kFloat) { v = t.fval; c.next(); }
        else if (t.kind == TokKind::kMinus) {
          c.next();
          const Token& u = c.next();
          if (u.kind == TokKind::kFloat) v = -u.fval;
          else if (u.kind == TokKind::kInt) v = -static_cast<double>(u.ival);
          else fail(item.line, "expected numeric literal");
        } else if (t.kind == TokKind::kInt) { v = static_cast<double>(t.ival); c.next(); }
        else fail(item.line, "expected numeric literal");
        if (d == "double") {
          u64 b = 0;
          std::memcpy(&b, &v, 8);
          push_data_bytes(b, 8);
        } else {
          const float f = static_cast<float>(v);
          u32 b = 0;
          std::memcpy(&b, &f, 4);
          push_data_bytes(b, 4);
        }
      } else {
        const i64 v = c.imm_expr();
        push_data_bytes(static_cast<u64>(v), elem);
      }
      if (c.at_end()) break;
      c.comma();
    }
  }

  void emit(Instr in, u32 line) {
    prog_.instrs.push_back(in);
    prog_.words.push_back(in.raw);
    prog_.source_lines.push_back(line);
  }

  void encode_statement(const Statement& st) {
    const std::string& mn = st.mnemonic;
    Cursor c(st.operands, st.line, prog_.symbols);
    const u32 line = st.line;
    const Addr pc = st.addr;

    // --- pseudo-instructions -------------------------------------------
    if (mn == "nop") { c.end(); emit(isa::make_i(Mnemonic::kAddi, 0, 0, 0), line); return; }
    if (mn == "mv") {
      const u8 rd = c.int_reg(); c.comma(); const u8 rs = c.int_reg(); c.end();
      emit(isa::make_i(Mnemonic::kAddi, rd, rs, 0), line); return;
    }
    if (mn == "not") {
      const u8 rd = c.int_reg(); c.comma(); const u8 rs = c.int_reg(); c.end();
      emit(isa::make_i(Mnemonic::kXori, rd, rs, -1), line); return;
    }
    if (mn == "neg") {
      const u8 rd = c.int_reg(); c.comma(); const u8 rs = c.int_reg(); c.end();
      emit(isa::make_r(Mnemonic::kSub, rd, 0, rs), line); return;
    }
    if (mn == "li") {
      const u8 rd = c.int_reg(); c.comma(); const i64 v = c.imm_expr(); c.end();
      if (fits_simm(v, 12)) { emit(isa::make_i(Mnemonic::kAddi, rd, 0, static_cast<i32>(v)), line); return; }
      const i32 lo = sign_extend(static_cast<u32>(v) & 0xFFF, 12);
      const i32 hi = static_cast<i32>((static_cast<u32>(static_cast<i32>(v) - lo) >> 12) & 0xFFFFF);
      emit(isa::make_u(Mnemonic::kLui, rd, hi), line);
      if (lo != 0) emit(isa::make_i(Mnemonic::kAddi, rd, rd, lo), line);
      return;
    }
    if (mn == "la") {
      const u8 rd = c.int_reg(); c.comma(); const i64 v = c.imm_expr(); c.end();
      const i32 lo = sign_extend(static_cast<u32>(v) & 0xFFF, 12);
      const i32 hi = static_cast<i32>((static_cast<u32>(static_cast<i32>(v) - lo) >> 12) & 0xFFFFF);
      emit(isa::make_u(Mnemonic::kLui, rd, hi), line);
      emit(isa::make_i(Mnemonic::kAddi, rd, rd, lo), line);
      return;
    }
    if (mn == "j") {
      const i64 off = c.target_offset(pc); c.end();
      emit(isa::make_j(Mnemonic::kJal, 0, static_cast<i32>(off)), line); return;
    }
    if (mn == "jr") {
      const u8 rs = c.int_reg(); c.end();
      emit(isa::make_i(Mnemonic::kJalr, 0, rs, 0), line); return;
    }
    if (mn == "ret") { c.end(); emit(isa::make_i(Mnemonic::kJalr, 0, isa::kRa, 0), line); return; }
    if (mn == "call") {
      const i64 off = c.target_offset(pc); c.end();
      emit(isa::make_j(Mnemonic::kJal, isa::kRa, static_cast<i32>(off)), line); return;
    }
    if (mn == "beqz" || mn == "bnez" || mn == "bltz" || mn == "bgez" ||
        mn == "blez" || mn == "bgtz") {
      const u8 rs = c.int_reg(); c.comma(); const i64 off = c.target_offset(pc); c.end();
      const i32 o = static_cast<i32>(off);
      if (mn == "beqz") emit(isa::make_b(Mnemonic::kBeq, rs, 0, o), line);
      else if (mn == "bnez") emit(isa::make_b(Mnemonic::kBne, rs, 0, o), line);
      else if (mn == "bltz") emit(isa::make_b(Mnemonic::kBlt, rs, 0, o), line);
      else if (mn == "bgez") emit(isa::make_b(Mnemonic::kBge, rs, 0, o), line);
      else if (mn == "blez") emit(isa::make_b(Mnemonic::kBge, 0, rs, o), line);
      else emit(isa::make_b(Mnemonic::kBlt, 0, rs, o), line);
      return;
    }
    if (mn == "bgt" || mn == "ble" || mn == "bgtu" || mn == "bleu") {
      const u8 a = c.int_reg(); c.comma(); const u8 b = c.int_reg(); c.comma();
      const i64 off = c.target_offset(pc); c.end();
      const i32 o = static_cast<i32>(off);
      if (mn == "bgt") emit(isa::make_b(Mnemonic::kBlt, b, a, o), line);
      else if (mn == "ble") emit(isa::make_b(Mnemonic::kBge, b, a, o), line);
      else if (mn == "bgtu") emit(isa::make_b(Mnemonic::kBltu, b, a, o), line);
      else emit(isa::make_b(Mnemonic::kBgeu, b, a, o), line);
      return;
    }
    if (mn == "bneq") { // paper's Fig. 1 spelling of bne
      const u8 a = c.int_reg(); c.comma(); const u8 b = c.int_reg(); c.comma();
      const i64 off = c.target_offset(pc); c.end();
      emit(isa::make_b(Mnemonic::kBne, a, b, static_cast<i32>(off)), line);
      return;
    }
    if (mn == "fmv.d" || mn == "fabs.d" || mn == "fneg.d" || mn == "fmv.s" ||
        mn == "fabs.s" || mn == "fneg.s") {
      const u8 rd = c.fp_reg(); c.comma(); const u8 rs = c.fp_reg(); c.end();
      const bool dbl = mn[mn.size() - 1] == 'd';
      Mnemonic m;
      if (mn.substr(1, 2) == "mv") m = dbl ? Mnemonic::kFsgnjD : Mnemonic::kFsgnjS;
      else if (mn.substr(1, 3) == "abs") m = dbl ? Mnemonic::kFsgnjxD : Mnemonic::kFsgnjxS;
      else m = dbl ? Mnemonic::kFsgnjnD : Mnemonic::kFsgnjnS;
      emit(isa::make_r(m, rd, rs, rs), line);
      return;
    }
    if (mn == "csrr") {
      const u8 rd = c.int_reg(); c.comma(); const u32 a = c.csr_address(); c.end();
      emit(isa::make_csr(Mnemonic::kCsrrs, rd, 0, a), line); return;
    }
    if (mn == "csrw" || mn == "csrs" || mn == "csrc") {
      const u32 a = c.csr_address(); c.comma(); const u8 rs = c.int_reg(); c.end();
      const Mnemonic m = mn == "csrw" ? Mnemonic::kCsrrw : mn == "csrs" ? Mnemonic::kCsrrs : Mnemonic::kCsrrc;
      emit(isa::make_csr(m, 0, rs, a), line); return;
    }
    if (mn == "csrwi" || mn == "csrsi" || mn == "csrci") {
      const u32 a = c.csr_address(); c.comma(); const i64 z = c.imm_expr(); c.end();
      if (!fits_uimm(z, 5)) fail(line, "zimm out of range");
      const Mnemonic m = mn == "csrwi" ? Mnemonic::kCsrrwi : mn == "csrsi" ? Mnemonic::kCsrrsi : Mnemonic::kCsrrci;
      emit(isa::make_csr(m, 0, static_cast<u8>(z), a), line); return;
    }

    // --- real instructions via the metadata table ------------------------
    auto it = mnemonic_map().find(mn);
    if (it == mnemonic_map().end()) fail(line, "unknown mnemonic '" + mn + "'");
    const Mnemonic m = it->second;
    const isa::MnemonicInfo& mi = isa::info(m);

    auto reg = [&](isa::RegClass cls) -> u8 {
      return cls == isa::RegClass::kFp ? c.fp_reg() : c.int_reg();
    };

    // Xdma operand shapes (custom-1 space) before the stock format parsers.
    switch (m) {
      case Mnemonic::kDmSrc: case Mnemonic::kDmDst: {
        const u8 rs1 = c.int_reg(); c.end();
        emit(isa::make_i(m, 0, rs1, 0), line);
        return;
      }
      case Mnemonic::kDmStr: {
        const u8 rs1 = c.int_reg(); c.comma();
        const u8 rs2 = c.int_reg(); c.end();
        emit(isa::make_r(m, 0, rs1, rs2), line);
        return;
      }
      case Mnemonic::kDmCpy: {
        const u8 rd = c.int_reg(); c.comma();
        const u8 rs1 = c.int_reg(); c.end();
        emit(isa::make_i(m, rd, rs1, 0), line);
        return;
      }
      case Mnemonic::kDmCpy2d: {
        const u8 rd = c.int_reg(); c.comma();
        const u8 rs1 = c.int_reg(); c.comma();
        const u8 rs2 = c.int_reg(); c.end();
        emit(isa::make_r(m, rd, rs1, rs2), line);
        return;
      }
      case Mnemonic::kDmStat: {
        const u8 rd = c.int_reg(); c.comma();
        const i64 imm = c.imm_expr(); c.end();
        if (!fits_simm(imm, 12)) fail(line, "immediate out of range");
        emit(isa::make_i(m, rd, 0, static_cast<i32>(imm)), line);
        return;
      }
      default:
        break;
    }

    switch (mi.fmt) {
      case isa::Format::kR: {
        const u8 rd = reg(mi.rd); c.comma();
        const u8 rs1 = reg(mi.rs1);
        u8 rs2 = 0;
        if (mi.rs2 != isa::RegClass::kNone) { c.comma(); rs2 = reg(mi.rs2); }
        c.end();
        emit(isa::make_r(m, rd, rs1, rs2), line);
        return;
      }
      case isa::Format::kR4: {
        const u8 rd = c.fp_reg(); c.comma();
        const u8 rs1 = c.fp_reg(); c.comma();
        const u8 rs2 = c.fp_reg(); c.comma();
        const u8 rs3 = c.fp_reg(); c.end();
        emit(isa::make_r4(m, rd, rs1, rs2, rs3), line);
        return;
      }
      case isa::Format::kI: {
        if (mi.exec == isa::ExecClass::kLoad || mi.exec == isa::ExecClass::kFpLoad) {
          const u8 rd = reg(mi.rd); c.comma();
          auto [base, imm] = c.mem_operand(); c.end();
          emit(isa::make_i(m, rd, base, imm), line);
          return;
        }
        if (m == Mnemonic::kJalr) {
          const u8 rd = c.int_reg(); c.comma();
          if (c.peek().kind == TokKind::kIdent) {
            const u8 rs1 = c.int_reg();
            i64 imm = 0;
            if (!c.at_end()) { c.comma(); imm = c.imm_expr(); }
            c.end();
            emit(isa::make_i(m, rd, rs1, static_cast<i32>(imm)), line);
          } else {
            auto [base, imm] = c.mem_operand(); c.end();
            emit(isa::make_i(m, rd, base, imm), line);
          }
          return;
        }
        if (m == Mnemonic::kFrepO || m == Mnemonic::kFrepI || m == Mnemonic::kScfgw) {
          const u8 rs1 = c.int_reg(); c.comma();
          const i64 imm = c.imm_expr(); c.end();
          if (!fits_simm(imm, 12)) fail(line, "immediate out of range");
          emit(isa::make_i(m, 0, rs1, static_cast<i32>(imm)), line);
          return;
        }
        if (m == Mnemonic::kScfgr) {
          const u8 rd = c.int_reg(); c.comma();
          const i64 imm = c.imm_expr(); c.end();
          if (!fits_simm(imm, 12)) fail(line, "immediate out of range");
          emit(isa::make_i(m, rd, 0, static_cast<i32>(imm)), line);
          return;
        }
        const u8 rd = c.int_reg(); c.comma();
        const u8 rs1 = c.int_reg(); c.comma();
        const i64 imm = c.imm_expr(); c.end();
        const bool shift = m == Mnemonic::kSlli || m == Mnemonic::kSrli || m == Mnemonic::kSrai;
        if (shift ? !fits_uimm(imm, 5) : !fits_simm(imm, 12)) {
          fail(line, "immediate out of range");
        }
        emit(isa::make_i(m, rd, rs1, static_cast<i32>(imm)), line);
        return;
      }
      case isa::Format::kS: {
        const u8 rs2 = reg(mi.rs2); c.comma();
        auto [base, imm] = c.mem_operand(); c.end();
        emit(isa::make_s(m, base, rs2, imm), line);
        return;
      }
      case isa::Format::kB: {
        const u8 rs1 = c.int_reg(); c.comma();
        const u8 rs2 = c.int_reg(); c.comma();
        const i64 off = c.target_offset(pc); c.end();
        if (!fits_simm(off, 13)) fail(line, "branch target out of range");
        emit(isa::make_b(m, rs1, rs2, static_cast<i32>(off)), line);
        return;
      }
      case isa::Format::kU: {
        const u8 rd = c.int_reg(); c.comma();
        const i64 imm = c.imm_expr(); c.end();
        if (!fits_uimm(imm, 20)) fail(line, "20-bit immediate out of range");
        emit(isa::make_u(m, rd, static_cast<i32>(imm)), line);
        return;
      }
      case isa::Format::kJ: {
        u8 rd = isa::kRa;
        // Optional rd operand: "jal target" or "jal rd, target".
        if (c.peek().kind == TokKind::kIdent &&
            isa::parse_int_reg(c.peek().text).has_value()) {
          rd = c.int_reg();
          c.comma();
        }
        const i64 off = c.target_offset(pc); c.end();
        if (!fits_simm(off, 21)) fail(line, "jump target out of range");
        emit(isa::make_j(m, rd, static_cast<i32>(off)), line);
        return;
      }
      case isa::Format::kCsr: {
        const u8 rd = c.int_reg(); c.comma();
        const u32 a = c.csr_address(); c.comma();
        const u8 rs1 = c.int_reg(); c.end();
        emit(isa::make_csr(m, rd, rs1, a), line);
        return;
      }
      case isa::Format::kCsrI: {
        const u8 rd = c.int_reg(); c.comma();
        const u32 a = c.csr_address(); c.comma();
        const i64 z = c.imm_expr(); c.end();
        if (!fits_uimm(z, 5)) fail(line, "zimm out of range");
        emit(isa::make_csr(m, rd, static_cast<u8>(z), a), line);
        return;
      }
      case isa::Format::kNone: {
        c.end();
        Instr in;
        in.mn = m;
        in.raw = isa::encode(in);
        emit(in, line);
        return;
      }
    }
    fail(line, "internal: unhandled format");
  }

  Program prog_;
  std::vector<Statement> statements_;
  std::vector<DataItem> data_items_;
};

} // namespace

Result<Program> assemble(std::string_view source, const Options& options) {
  try {
    AssemblerImpl impl(options);
    return impl.run(source);
  } catch (const std::invalid_argument& e) {
    return Status::error(e.what());
  } catch (const std::out_of_range& e) {
    return Status::error(e.what());
  }
}

} // namespace sch::assembler
