// ProgramBuilder: typed C++ API for emitting kernels programmatically.
// This is the interface the kernel generators use; the text assembler is the
// human-facing equivalent. Forward label references are backpatched at
// build() time.
#pragma once

#include <cassert>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "isa/csr.hpp"
#include "isa/encode.hpp"
#include "isa/reg.hpp"

namespace sch {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(Addr text_base = memmap::kTextBase,
                          Addr data_base = memmap::kTcdmBase);

  // --- labels -------------------------------------------------------------
  /// Define `name` at the current text position.
  void label(const std::string& name);
  /// Current text address.
  [[nodiscard]] Addr here() const;

  // --- raw emission -------------------------------------------------------
  /// Append an already-formed instruction.
  void emit(isa::Instr instr);

  // --- RV32I --------------------------------------------------------------
  void lui(u8 rd, i32 imm20);
  void auipc(u8 rd, i32 imm20);
  void jal(u8 rd, const std::string& target);
  void jalr(u8 rd, u8 rs1, i32 imm = 0);
  void beq(u8 rs1, u8 rs2, const std::string& target);
  void bne(u8 rs1, u8 rs2, const std::string& target);
  void blt(u8 rs1, u8 rs2, const std::string& target);
  void bge(u8 rs1, u8 rs2, const std::string& target);
  void bltu(u8 rs1, u8 rs2, const std::string& target);
  void bgeu(u8 rs1, u8 rs2, const std::string& target);
  void lw(u8 rd, u8 rs1, i32 imm);
  void sw(u8 rs2, u8 rs1, i32 imm);
  void addi(u8 rd, u8 rs1, i32 imm);
  void slti(u8 rd, u8 rs1, i32 imm);
  void sltiu(u8 rd, u8 rs1, i32 imm);
  void xori(u8 rd, u8 rs1, i32 imm);
  void ori(u8 rd, u8 rs1, i32 imm);
  void andi(u8 rd, u8 rs1, i32 imm);
  void slli(u8 rd, u8 rs1, i32 shamt);
  void srli(u8 rd, u8 rs1, i32 shamt);
  void srai(u8 rd, u8 rs1, i32 shamt);
  void add(u8 rd, u8 rs1, u8 rs2);
  void sub(u8 rd, u8 rs1, u8 rs2);
  void mul(u8 rd, u8 rs1, u8 rs2);
  void divu(u8 rd, u8 rs1, u8 rs2);
  void remu(u8 rd, u8 rs1, u8 rs2);
  void sll(u8 rd, u8 rs1, u8 rs2);
  void op_and(u8 rd, u8 rs1, u8 rs2);
  void op_or(u8 rd, u8 rs1, u8 rs2);
  void op_xor(u8 rd, u8 rs1, u8 rs2);

  // --- pseudo-instructions --------------------------------------------------
  void nop();
  void ecall();
  void ebreak();
  /// Load a 32-bit constant (1 or 2 instructions).
  void li(u8 rd, i64 value);
  /// Load an absolute address (always lui+addi for stable sizing).
  void la(u8 rd, Addr addr);
  void mv(u8 rd, u8 rs1);
  void j(const std::string& target);
  void ret();
  void beqz(u8 rs1, const std::string& target);
  void bnez(u8 rs1, const std::string& target);

  // --- CSR ------------------------------------------------------------------
  void csrrw(u8 rd, u32 csr, u8 rs1);
  void csrrs(u8 rd, u32 csr, u8 rs1);
  void csrrc(u8 rd, u32 csr, u8 rs1);
  void csrw(u32 csr, u8 rs1) { csrrw(0, csr, rs1); }
  void csrs(u32 csr, u8 rs1) { csrrs(0, csr, rs1); }
  void csrc(u32 csr, u8 rs1) { csrrc(0, csr, rs1); }
  void csrr(u8 rd, u32 csr) { csrrs(rd, csr, 0); }
  void csrwi(u32 csr, u8 zimm);
  void csrsi(u32 csr, u8 zimm);
  void csrci(u32 csr, u8 zimm);

  // --- RV32F/D ---------------------------------------------------------------
  void flw(u8 frd, u8 rs1, i32 imm);
  void fsw(u8 frs2, u8 rs1, i32 imm);
  void fld(u8 frd, u8 rs1, i32 imm);
  void fsd(u8 frs2, u8 rs1, i32 imm);
  void fadd_d(u8 frd, u8 frs1, u8 frs2);
  void fsub_d(u8 frd, u8 frs1, u8 frs2);
  void fmul_d(u8 frd, u8 frs1, u8 frs2);
  void fdiv_d(u8 frd, u8 frs1, u8 frs2);
  void fsqrt_d(u8 frd, u8 frs1);
  void fmadd_d(u8 frd, u8 frs1, u8 frs2, u8 frs3);
  void fmsub_d(u8 frd, u8 frs1, u8 frs2, u8 frs3);
  void fnmadd_d(u8 frd, u8 frs1, u8 frs2, u8 frs3);
  void fnmsub_d(u8 frd, u8 frs1, u8 frs2, u8 frs3);
  void fsgnj_d(u8 frd, u8 frs1, u8 frs2);
  void fmv_d(u8 frd, u8 frs1) { fsgnj_d(frd, frs1, frs1); }
  void fmin_d(u8 frd, u8 frs1, u8 frs2);
  void fmax_d(u8 frd, u8 frs1, u8 frs2);
  void fadd_s(u8 frd, u8 frs1, u8 frs2);
  void fmul_s(u8 frd, u8 frs1, u8 frs2);
  void fmadd_s(u8 frd, u8 frs1, u8 frs2, u8 frs3);
  void fcvt_d_w(u8 frd, u8 rs1);
  void fcvt_w_d(u8 rd, u8 frs1);
  void fmv_x_w(u8 rd, u8 frs1);
  void fmv_w_x(u8 frd, u8 rs1);
  void feq_d(u8 rd, u8 frs1, u8 frs2);
  void flt_d(u8 rd, u8 frs1, u8 frs2);

  // --- custom extensions ------------------------------------------------------
  /// Hardware loop: repeat the next `n_instr` FP instructions (rs1)+1 times.
  void frep_o(u8 rs1, i32 n_instr);
  void frep_i(u8 rs1, i32 n_instr);
  /// SSR config write: config word index <- rs1.
  void scfgw(u8 rs1, i32 cfg_index);
  /// SSR config read: rd <- config word index.
  void scfgr(u8 rd, i32 cfg_index);
  /// Xdma: latch the DMA source / destination base address.
  void dmsrc(u8 rs1);
  void dmdst(u8 rs1);
  /// Xdma: latch 2-D row strides (rs1 = source, rs2 = destination).
  void dmstr(u8 rs1, u8 rs2);
  /// Xdma: start a 1-D copy of rs1 bytes; rd <- per-hart transfer id.
  void dmcpy(u8 rd, u8 rs1);
  /// Xdma: start a 2-D copy of rs2 rows of rs1 bytes each.
  void dmcpy2d(u8 rd, u8 rs1, u8 rs2);
  /// Xdma status read: sel 0 = completed count, 1 = outstanding count.
  void dmstat(u8 rd, i32 sel);

  // --- data segment -----------------------------------------------------------
  /// Align the data cursor to `align` bytes (power of two).
  Addr data_align(u32 align);
  /// Append doubles; returns the base address of the block.
  Addr data_f64(const std::vector<double>& values);
  /// Append 32-bit words; returns the base address.
  Addr data_u32(const std::vector<u32>& values);
  /// Append 16-bit values (index arrays); returns the base address.
  Addr data_u16(const std::vector<u16>& values);
  /// Reserve `bytes` zero-initialized bytes; returns the base address.
  Addr data_zero(u32 bytes);
  /// Define a data symbol at the current data cursor.
  void data_label(const std::string& name);

  /// Current data cursor address.
  [[nodiscard]] Addr data_here() const;

  /// Resolve labels and produce the final program. Throws on undefined or
  /// out-of-range references.
  Program build();

 private:
  struct Fixup {
    usize word_index;
    std::string label;
  };

  void emit_branch(isa::Mnemonic mn, u8 rs1, u8 rs2, const std::string& target);

  Program prog_;
  std::vector<Fixup> fixups_;
};

} // namespace sch
