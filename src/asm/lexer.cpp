#include "asm/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace sch::assembler {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '%';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '%' || c == '[' || c == ']';
}

[[noreturn]] void fail(u32 col, const std::string& what) {
  throw std::invalid_argument("col " + std::to_string(col + 1) + ": " + what);
}

} // namespace

std::vector<Token> tokenize_line(std::string_view line) {
  std::vector<Token> out;
  usize i = 0;
  const usize n = line.size();
  while (i < n) {
    const char c = line[i];
    const u32 col = static_cast<u32>(i);
    if (c == '#' || (c == '/' && i + 1 < n && line[i + 1] == '/')) break;
    if (std::isspace(static_cast<unsigned char>(c))) { ++i; continue; }
    switch (c) {
      case ',': out.push_back({TokKind::kComma, ",", 0, 0, col}); ++i; continue;
      case '(': out.push_back({TokKind::kLParen, "(", 0, 0, col}); ++i; continue;
      case ')': out.push_back({TokKind::kRParen, ")", 0, 0, col}); ++i; continue;
      case ':': out.push_back({TokKind::kColon, ":", 0, 0, col}); ++i; continue;
      case '+': out.push_back({TokKind::kPlus, "+", 0, 0, col}); ++i; continue;
      case '"': {
        usize j = i + 1;
        std::string s;
        while (j < n && line[j] != '"') s += line[j++];
        if (j >= n) fail(col, "unterminated string");
        out.push_back({TokKind::kString, s, 0, 0, col});
        i = j + 1;
        continue;
      }
      default: break;
    }
    if (c == '-') {
      // Minus may start a numeric literal or act as an operator; the parser
      // decides. Emit operator token unless a digit follows directly and the
      // previous token cannot end an expression.
      const bool digit_follows = i + 1 < n && std::isdigit(static_cast<unsigned char>(line[i + 1]));
      const bool prev_is_value = !out.empty() && (out.back().kind == TokKind::kInt ||
                                                  out.back().kind == TokKind::kIdent ||
                                                  out.back().kind == TokKind::kRParen);
      if (!digit_follows || prev_is_value) {
        out.push_back({TokKind::kMinus, "-", 0, 0, col});
        ++i;
        continue;
      }
      // fall through to numeric literal including the sign
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      usize j = i;
      if (line[j] == '-') ++j;
      bool is_float = false;
      bool is_hex = false;
      if (j + 1 < n && line[j] == '0' && (line[j + 1] == 'x' || line[j + 1] == 'X')) {
        is_hex = true;
        j += 2;
        const usize digits_start = j;
        while (j < n && std::isxdigit(static_cast<unsigned char>(line[j]))) ++j;
        if (j == digits_start) fail(col, "hex literal without digits");
      } else {
        while (j < n && std::isdigit(static_cast<unsigned char>(line[j]))) ++j;
        if (j < n && line[j] == '.') {
          is_float = true;
          ++j;
          while (j < n && std::isdigit(static_cast<unsigned char>(line[j]))) ++j;
        }
        if (j < n && (line[j] == 'e' || line[j] == 'E')) {
          is_float = true;
          ++j;
          if (j < n && (line[j] == '+' || line[j] == '-')) ++j;
          while (j < n && std::isdigit(static_cast<unsigned char>(line[j]))) ++j;
        }
      }
      const std::string text(line.substr(i, j - i));
      Token t;
      t.col = col;
      t.text = text;
      if (is_float) {
        t.kind = TokKind::kFloat;
        t.fval = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = TokKind::kInt;
        errno = 0;
        if (is_hex) {
          // Full-width bit pattern: `.dword 0xc01f600000000000` (an f64
          // image) must round-trip, so hex carries all 64 bits and
          // contexts that need a small value range-check ival themselves.
          t.ival = static_cast<i64>(std::strtoull(text.c_str(), nullptr, 16));
        } else {
          t.ival = std::strtoll(text.c_str(), nullptr, 10);
        }
        if (errno != 0) fail(col, "integer literal out of range: " + text);
      }
      out.push_back(t);
      i = j;
      continue;
    }
    if (c == '.') {
      usize j = i + 1;
      while (j < n && is_ident_char(line[j])) ++j;
      if (j == i + 1) fail(col, "stray '.'");
      out.push_back({TokKind::kDirective, std::string(line.substr(i + 1, j - i - 1)), 0, 0, col});
      i = j;
      continue;
    }
    if (is_ident_start(c)) {
      usize j = i;
      while (j < n && is_ident_char(line[j])) ++j;
      out.push_back({TokKind::kIdent, std::string(line.substr(i, j - i)), 0, 0, col});
      i = j;
      continue;
    }
    fail(col, std::string("unexpected character '") + c + "'");
  }
  out.push_back({TokKind::kEnd, "", 0, 0, static_cast<u32>(n)});
  return out;
}

} // namespace sch::assembler
