// Line-oriented lexer for the RISC-V assembly dialect accepted by the
// Assembler. Comments: '#' and '//' to end of line.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace sch::assembler {

enum class TokKind : u8 {
  kIdent,     // mnemonic, label, register, directive name (without '.')
  kDirective, // identifier that started with '.'
  kInt,       // integer literal (value in `ival`)
  kFloat,     // floating literal (value in `fval`)
  kComma,
  kLParen,
  kRParen,
  kColon,
  kMinus,
  kPlus,
  kString,    // quoted string (contents in `text`)
  kEnd,       // end of line
};

struct Token {
  TokKind kind;
  std::string text;
  i64 ival = 0;
  double fval = 0.0;
  u32 col = 0;
};

/// Tokenize one source line. Throws std::invalid_argument with a
/// column-annotated message on malformed literals.
std::vector<Token> tokenize_line(std::string_view line);

} // namespace sch::assembler
