#include "asm/builder.hpp"

#include <cstring>
#include <stdexcept>

#include "common/bitfield.hpp"
#include "isa/decode.hpp"

namespace sch {

using isa::Instr;
using isa::Mnemonic;

ProgramBuilder::ProgramBuilder(Addr text_base, Addr data_base) {
  prog_.text_base = text_base;
  prog_.data_base = data_base;
}

void ProgramBuilder::label(const std::string& name) {
  if (prog_.symbols.count(name) != 0) {
    throw std::invalid_argument("duplicate label: " + name);
  }
  prog_.symbols[name] = here();
}

Addr ProgramBuilder::here() const {
  return prog_.text_base + static_cast<Addr>(prog_.words.size() * 4);
}

void ProgramBuilder::emit(Instr instr) {
  prog_.instrs.push_back(instr);
  prog_.words.push_back(instr.raw);
  prog_.source_lines.push_back(0);
}

// --- RV32I -------------------------------------------------------------------

void ProgramBuilder::lui(u8 rd, i32 imm20) { emit(isa::make_u(Mnemonic::kLui, rd, imm20)); }
void ProgramBuilder::auipc(u8 rd, i32 imm20) { emit(isa::make_u(Mnemonic::kAuipc, rd, imm20)); }

void ProgramBuilder::jal(u8 rd, const std::string& target) {
  fixups_.push_back({prog_.words.size(), target});
  emit(isa::make_j(Mnemonic::kJal, rd, 0));
}

void ProgramBuilder::jalr(u8 rd, u8 rs1, i32 imm) {
  emit(isa::make_i(Mnemonic::kJalr, rd, rs1, imm));
}

void ProgramBuilder::emit_branch(Mnemonic mn, u8 rs1, u8 rs2,
                                 const std::string& target) {
  fixups_.push_back({prog_.words.size(), target});
  emit(isa::make_b(mn, rs1, rs2, 0));
}

void ProgramBuilder::beq(u8 a, u8 b, const std::string& t) { emit_branch(Mnemonic::kBeq, a, b, t); }
void ProgramBuilder::bne(u8 a, u8 b, const std::string& t) { emit_branch(Mnemonic::kBne, a, b, t); }
void ProgramBuilder::blt(u8 a, u8 b, const std::string& t) { emit_branch(Mnemonic::kBlt, a, b, t); }
void ProgramBuilder::bge(u8 a, u8 b, const std::string& t) { emit_branch(Mnemonic::kBge, a, b, t); }
void ProgramBuilder::bltu(u8 a, u8 b, const std::string& t) { emit_branch(Mnemonic::kBltu, a, b, t); }
void ProgramBuilder::bgeu(u8 a, u8 b, const std::string& t) { emit_branch(Mnemonic::kBgeu, a, b, t); }

void ProgramBuilder::lw(u8 rd, u8 rs1, i32 imm) { emit(isa::make_i(Mnemonic::kLw, rd, rs1, imm)); }
void ProgramBuilder::sw(u8 rs2, u8 rs1, i32 imm) { emit(isa::make_s(Mnemonic::kSw, rs1, rs2, imm)); }
void ProgramBuilder::addi(u8 rd, u8 rs1, i32 imm) { emit(isa::make_i(Mnemonic::kAddi, rd, rs1, imm)); }
void ProgramBuilder::slti(u8 rd, u8 rs1, i32 imm) { emit(isa::make_i(Mnemonic::kSlti, rd, rs1, imm)); }
void ProgramBuilder::sltiu(u8 rd, u8 rs1, i32 imm) { emit(isa::make_i(Mnemonic::kSltiu, rd, rs1, imm)); }
void ProgramBuilder::xori(u8 rd, u8 rs1, i32 imm) { emit(isa::make_i(Mnemonic::kXori, rd, rs1, imm)); }
void ProgramBuilder::ori(u8 rd, u8 rs1, i32 imm) { emit(isa::make_i(Mnemonic::kOri, rd, rs1, imm)); }
void ProgramBuilder::andi(u8 rd, u8 rs1, i32 imm) { emit(isa::make_i(Mnemonic::kAndi, rd, rs1, imm)); }
void ProgramBuilder::slli(u8 rd, u8 rs1, i32 s) { emit(isa::make_i(Mnemonic::kSlli, rd, rs1, s)); }
void ProgramBuilder::srli(u8 rd, u8 rs1, i32 s) { emit(isa::make_i(Mnemonic::kSrli, rd, rs1, s)); }
void ProgramBuilder::srai(u8 rd, u8 rs1, i32 s) { emit(isa::make_i(Mnemonic::kSrai, rd, rs1, s)); }
void ProgramBuilder::add(u8 rd, u8 rs1, u8 rs2) { emit(isa::make_r(Mnemonic::kAdd, rd, rs1, rs2)); }
void ProgramBuilder::sub(u8 rd, u8 rs1, u8 rs2) { emit(isa::make_r(Mnemonic::kSub, rd, rs1, rs2)); }
void ProgramBuilder::mul(u8 rd, u8 rs1, u8 rs2) { emit(isa::make_r(Mnemonic::kMul, rd, rs1, rs2)); }
void ProgramBuilder::divu(u8 rd, u8 rs1, u8 rs2) { emit(isa::make_r(Mnemonic::kDivu, rd, rs1, rs2)); }
void ProgramBuilder::remu(u8 rd, u8 rs1, u8 rs2) { emit(isa::make_r(Mnemonic::kRemu, rd, rs1, rs2)); }
void ProgramBuilder::sll(u8 rd, u8 rs1, u8 rs2) { emit(isa::make_r(Mnemonic::kSll, rd, rs1, rs2)); }
void ProgramBuilder::op_and(u8 rd, u8 rs1, u8 rs2) { emit(isa::make_r(Mnemonic::kAnd, rd, rs1, rs2)); }
void ProgramBuilder::op_or(u8 rd, u8 rs1, u8 rs2) { emit(isa::make_r(Mnemonic::kOr, rd, rs1, rs2)); }
void ProgramBuilder::op_xor(u8 rd, u8 rs1, u8 rs2) { emit(isa::make_r(Mnemonic::kXor, rd, rs1, rs2)); }

// --- pseudo ------------------------------------------------------------------

void ProgramBuilder::nop() { addi(0, 0, 0); }

void ProgramBuilder::ecall() {
  Instr i;
  i.mn = Mnemonic::kEcall;
  i.raw = isa::encode(i);
  emit(i);
}

void ProgramBuilder::ebreak() {
  Instr i;
  i.mn = Mnemonic::kEbreak;
  i.raw = isa::encode(i);
  emit(i);
}

void ProgramBuilder::li(u8 rd, i64 value) {
  if (!fits_simm(value, 32) && !fits_uimm(value, 32)) {
    throw std::out_of_range("li: value does not fit 32 bits");
  }
  const i32 v = static_cast<i32>(value);
  if (fits_simm(v, 12)) {
    addi(rd, 0, v);
    return;
  }
  const i32 lo = sign_extend(static_cast<u32>(v) & 0xFFF, 12);
  const i32 hi = static_cast<i32>((static_cast<u32>(v - lo) >> 12) & 0xFFFFF);
  lui(rd, hi);
  if (lo != 0) addi(rd, rd, lo);
}

void ProgramBuilder::la(u8 rd, Addr addr) {
  const i32 v = static_cast<i32>(addr);
  const i32 lo = sign_extend(static_cast<u32>(v) & 0xFFF, 12);
  const i32 hi = static_cast<i32>((static_cast<u32>(v - lo) >> 12) & 0xFFFFF);
  lui(rd, hi);
  addi(rd, rd, lo);
}

void ProgramBuilder::mv(u8 rd, u8 rs1) { addi(rd, rs1, 0); }
void ProgramBuilder::j(const std::string& target) { jal(0, target); }
void ProgramBuilder::ret() { jalr(0, isa::kRa, 0); }
void ProgramBuilder::beqz(u8 rs1, const std::string& t) { beq(rs1, 0, t); }
void ProgramBuilder::bnez(u8 rs1, const std::string& t) { bne(rs1, 0, t); }

// --- CSR ------------------------------------------------------------------

void ProgramBuilder::csrrw(u8 rd, u32 csr, u8 rs1) { emit(isa::make_csr(Mnemonic::kCsrrw, rd, rs1, csr)); }
void ProgramBuilder::csrrs(u8 rd, u32 csr, u8 rs1) { emit(isa::make_csr(Mnemonic::kCsrrs, rd, rs1, csr)); }
void ProgramBuilder::csrrc(u8 rd, u32 csr, u8 rs1) { emit(isa::make_csr(Mnemonic::kCsrrc, rd, rs1, csr)); }
void ProgramBuilder::csrwi(u32 csr, u8 zimm) { emit(isa::make_csr(Mnemonic::kCsrrwi, 0, zimm, csr)); }
void ProgramBuilder::csrsi(u32 csr, u8 zimm) { emit(isa::make_csr(Mnemonic::kCsrrsi, 0, zimm, csr)); }
void ProgramBuilder::csrci(u32 csr, u8 zimm) { emit(isa::make_csr(Mnemonic::kCsrrci, 0, zimm, csr)); }

// --- FP ------------------------------------------------------------------

void ProgramBuilder::flw(u8 frd, u8 rs1, i32 imm) { emit(isa::make_i(Mnemonic::kFlw, frd, rs1, imm)); }
void ProgramBuilder::fsw(u8 frs2, u8 rs1, i32 imm) { emit(isa::make_s(Mnemonic::kFsw, rs1, frs2, imm)); }
void ProgramBuilder::fld(u8 frd, u8 rs1, i32 imm) { emit(isa::make_i(Mnemonic::kFld, frd, rs1, imm)); }
void ProgramBuilder::fsd(u8 frs2, u8 rs1, i32 imm) { emit(isa::make_s(Mnemonic::kFsd, rs1, frs2, imm)); }

void ProgramBuilder::fadd_d(u8 rd, u8 a, u8 b) { emit(isa::make_r(Mnemonic::kFaddD, rd, a, b)); }
void ProgramBuilder::fsub_d(u8 rd, u8 a, u8 b) { emit(isa::make_r(Mnemonic::kFsubD, rd, a, b)); }
void ProgramBuilder::fmul_d(u8 rd, u8 a, u8 b) { emit(isa::make_r(Mnemonic::kFmulD, rd, a, b)); }
void ProgramBuilder::fdiv_d(u8 rd, u8 a, u8 b) { emit(isa::make_r(Mnemonic::kFdivD, rd, a, b)); }
void ProgramBuilder::fsqrt_d(u8 rd, u8 a) { emit(isa::make_r(Mnemonic::kFsqrtD, rd, a, 0)); }
void ProgramBuilder::fmadd_d(u8 rd, u8 a, u8 b, u8 c) { emit(isa::make_r4(Mnemonic::kFmaddD, rd, a, b, c)); }
void ProgramBuilder::fmsub_d(u8 rd, u8 a, u8 b, u8 c) { emit(isa::make_r4(Mnemonic::kFmsubD, rd, a, b, c)); }
void ProgramBuilder::fnmadd_d(u8 rd, u8 a, u8 b, u8 c) { emit(isa::make_r4(Mnemonic::kFnmaddD, rd, a, b, c)); }
void ProgramBuilder::fnmsub_d(u8 rd, u8 a, u8 b, u8 c) { emit(isa::make_r4(Mnemonic::kFnmsubD, rd, a, b, c)); }
void ProgramBuilder::fsgnj_d(u8 rd, u8 a, u8 b) { emit(isa::make_r(Mnemonic::kFsgnjD, rd, a, b)); }
void ProgramBuilder::fmin_d(u8 rd, u8 a, u8 b) { emit(isa::make_r(Mnemonic::kFminD, rd, a, b)); }
void ProgramBuilder::fmax_d(u8 rd, u8 a, u8 b) { emit(isa::make_r(Mnemonic::kFmaxD, rd, a, b)); }
void ProgramBuilder::fadd_s(u8 rd, u8 a, u8 b) { emit(isa::make_r(Mnemonic::kFaddS, rd, a, b)); }
void ProgramBuilder::fmul_s(u8 rd, u8 a, u8 b) { emit(isa::make_r(Mnemonic::kFmulS, rd, a, b)); }
void ProgramBuilder::fmadd_s(u8 rd, u8 a, u8 b, u8 c) { emit(isa::make_r4(Mnemonic::kFmaddS, rd, a, b, c)); }
void ProgramBuilder::fcvt_d_w(u8 frd, u8 rs1) { emit(isa::make_r(Mnemonic::kFcvtDW, frd, rs1, 0)); }
void ProgramBuilder::fcvt_w_d(u8 rd, u8 frs1) { emit(isa::make_r(Mnemonic::kFcvtWD, rd, frs1, 0)); }
void ProgramBuilder::fmv_x_w(u8 rd, u8 frs1) { emit(isa::make_r(Mnemonic::kFmvXW, rd, frs1, 0)); }
void ProgramBuilder::fmv_w_x(u8 frd, u8 rs1) { emit(isa::make_r(Mnemonic::kFmvWX, frd, rs1, 0)); }
void ProgramBuilder::feq_d(u8 rd, u8 a, u8 b) { emit(isa::make_r(Mnemonic::kFeqD, rd, a, b)); }
void ProgramBuilder::flt_d(u8 rd, u8 a, u8 b) { emit(isa::make_r(Mnemonic::kFltD, rd, a, b)); }

// --- custom --------------------------------------------------------------

void ProgramBuilder::frep_o(u8 rs1, i32 n_instr) { emit(isa::make_i(Mnemonic::kFrepO, 0, rs1, n_instr)); }
void ProgramBuilder::frep_i(u8 rs1, i32 n_instr) { emit(isa::make_i(Mnemonic::kFrepI, 0, rs1, n_instr)); }
void ProgramBuilder::scfgw(u8 rs1, i32 idx) { emit(isa::make_i(Mnemonic::kScfgw, 0, rs1, idx)); }
void ProgramBuilder::scfgr(u8 rd, i32 idx) { emit(isa::make_i(Mnemonic::kScfgr, rd, 0, idx)); }
void ProgramBuilder::dmsrc(u8 rs1) { emit(isa::make_i(Mnemonic::kDmSrc, 0, rs1, 0)); }
void ProgramBuilder::dmdst(u8 rs1) { emit(isa::make_i(Mnemonic::kDmDst, 0, rs1, 0)); }
void ProgramBuilder::dmstr(u8 rs1, u8 rs2) { emit(isa::make_r(Mnemonic::kDmStr, 0, rs1, rs2)); }
void ProgramBuilder::dmcpy(u8 rd, u8 rs1) { emit(isa::make_i(Mnemonic::kDmCpy, rd, rs1, 0)); }
void ProgramBuilder::dmcpy2d(u8 rd, u8 rs1, u8 rs2) { emit(isa::make_r(Mnemonic::kDmCpy2d, rd, rs1, rs2)); }
void ProgramBuilder::dmstat(u8 rd, i32 sel) { emit(isa::make_i(Mnemonic::kDmStat, rd, 0, sel)); }

// --- data ----------------------------------------------------------------

Addr ProgramBuilder::data_here() const {
  return prog_.data_base + static_cast<Addr>(prog_.data.size());
}

Addr ProgramBuilder::data_align(u32 align) {
  if (!is_pow2(align)) throw std::invalid_argument("data_align: not a power of two");
  while ((prog_.data.size() % align) != 0) prog_.data.push_back(0);
  return data_here();
}

Addr ProgramBuilder::data_f64(const std::vector<double>& values) {
  const Addr base = data_align(8);
  for (double v : values) {
    u64 bitsv = 0;
    std::memcpy(&bitsv, &v, sizeof bitsv);
    for (int i = 0; i < 8; ++i) prog_.data.push_back(static_cast<u8>(bitsv >> (8 * i)));
  }
  return base;
}

Addr ProgramBuilder::data_u32(const std::vector<u32>& values) {
  const Addr base = data_align(4);
  for (u32 v : values) {
    for (int i = 0; i < 4; ++i) prog_.data.push_back(static_cast<u8>(v >> (8 * i)));
  }
  return base;
}

Addr ProgramBuilder::data_u16(const std::vector<u16>& values) {
  const Addr base = data_align(2);
  for (u16 v : values) {
    prog_.data.push_back(static_cast<u8>(v & 0xFF));
    prog_.data.push_back(static_cast<u8>(v >> 8));
  }
  return base;
}

Addr ProgramBuilder::data_zero(u32 bytes) {
  const Addr base = data_here();
  prog_.data.insert(prog_.data.end(), bytes, 0);
  return base;
}

void ProgramBuilder::data_label(const std::string& name) {
  if (prog_.symbols.count(name) != 0) {
    throw std::invalid_argument("duplicate label: " + name);
  }
  prog_.symbols[name] = data_here();
}

// --- finalize --------------------------------------------------------------

Program ProgramBuilder::build() {
  for (const Fixup& fx : fixups_) {
    auto it = prog_.symbols.find(fx.label);
    if (it == prog_.symbols.end()) {
      throw std::invalid_argument("undefined label: " + fx.label);
    }
    const Addr pc = prog_.text_base + static_cast<Addr>(fx.word_index * 4);
    const i64 offset = static_cast<i64>(it->second) - static_cast<i64>(pc);
    isa::Instr& in = prog_.instrs[fx.word_index];
    const unsigned width = in.mn == Mnemonic::kJal ? 21 : 13;
    if (!fits_simm(offset, width)) {
      throw std::out_of_range("branch target out of range: " + fx.label);
    }
    in.imm = static_cast<i32>(offset);
    in.raw = isa::encode(in);
    prog_.words[fx.word_index] = in.raw;
  }
  fixups_.clear();
  prog_.predecode();
  return prog_;
}

} // namespace sch
