// Two-pass text assembler for the modeled core's dialect:
// RV32IMFD + Zicsr + Xfrep/Xssr custom instructions, the usual pseudo-
// instructions, labels, and a small set of data directives. The paper's
// listings (Fig. 1) assemble verbatim, including the nonstandard `bneq`
// spelling used there (alias of `bne`).
#pragma once

#include <string>
#include <string_view>

#include "asm/program.hpp"
#include "common/status.hpp"

namespace sch::assembler {

struct Options {
  Addr text_base = memmap::kTextBase;
  Addr data_base = memmap::kTcdmBase;
};

/// Assemble `source` into a Program. Errors carry "line N: ..." context.
Result<Program> assemble(std::string_view source, const Options& options = {});

} // namespace sch::assembler
