// Keyed build cache: the serving layer's amortizer of per-request fixed
// costs. A registry-form workload normally pays kernel generation (program
// emission + golden-output computation) and predecode on every run; the
// cache keys the finished, predecoded BuiltKernel by
// (kernel, variant, resolved sizes, timing-relevant SimConfig fields) and
// hands out ref-counted shared pointers, so repeated requests -- a fleet of
// clients sweeping the same shapes, or one scenario with repeats -- skip
// build and predecode entirely.
//
// Concurrency contract: get_or_build is safe to call from any number of
// engine workers. Concurrent lookups of one absent key build it exactly
// once (in-flight entries are awaited, not duplicated), and the counters
// are exact: every lookup is either the unique creator of its entry (one
// miss) or found it present/in flight (one hit), so for a fixed job set
// hits/misses are independent of scheduling. Eviction is LRU over ready
// entries; evicted kernels stay alive for any run still holding the shared
// pointer (ref-counted, never invalidated mid-run).
#pragma once

#include <condition_variable>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "kernels/registry.hpp"
#include "sim/sim_config.hpp"

namespace sch::api {

class BuildCache {
 public:
  using Ptr = std::shared_ptr<const kernels::BuiltKernel>;

  /// Lifetime counters (monotonic) plus the current entry count. A lookup
  /// that waits on another thread's in-flight build counts as a hit: the
  /// build was skipped from that caller's point of view.
  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 evictions = 0;
    u64 entries = 0;
  };

  /// `capacity` bounds the number of ready entries (LRU eviction beyond
  /// it). Zero disables caching: every get_or_build builds fresh.
  explicit BuildCache(usize capacity = 1024) : capacity_(capacity) {}

  /// Return the cached (built + predecoded) kernel for the key, building it
  /// on a miss. Build failures (std::invalid_argument from the registry
  /// builder) propagate to every waiter and are never cached, so a later
  /// request with the same bad key re-reports the same error.
  Ptr get_or_build(const kernels::KernelEntry& entry, const std::string& variant,
                   const kernels::SizeMap& resolved_sizes,
                   const sim::SimConfig& config);

  [[nodiscard]] Stats stats() const;
  /// Drop every ready entry (in-flight builds complete but are not
  /// re-inserted... they are: in-flight nodes are unaffected and insert
  /// normally). Does not reset the lifetime counters.
  void clear();

  [[nodiscard]] usize capacity() const { return capacity_; }

  /// The cache key: kernel/variant/sizes plus the SimConfig fingerprint.
  static std::string make_key(const std::string& kernel,
                              const std::string& variant,
                              const kernels::SizeMap& resolved_sizes,
                              const sim::SimConfig& config);

  /// Serialization of every timing-relevant SimConfig field (the cache-key
  /// contract, documented in docs/SERVE.md): core/cluster shape (num_cores,
  /// tcdm banks/word size), pipeline depths and latencies, queue depths,
  /// memory latency/bandwidth, branch penalty, chain-handoff policy,
  /// budgets, and the host fast-path flags. Pure observability knobs that
  /// cannot influence a build or a report (trace, max_wall_ms, fault plans)
  /// are deliberately excluded.
  static std::string config_fingerprint(const sim::SimConfig& config);

 private:
  struct Node {
    Ptr value;                 // null while the build is in flight
    std::string error;         // builder exception message (terminal state)
    bool done = false;         // value or error is final
    std::list<std::string>::iterator lru;  // valid only when value != null
    bool in_lru = false;
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, std::shared_ptr<Node>> entries_;
  std::list<std::string> lru_;  // front = most recently used
  usize capacity_;
  Stats stats_;
};

/// Process-wide shared cache (what the scenario runner and `schsim serve`
/// use unless given their own instance).
BuildCache& default_build_cache();

} // namespace sch::api
