// A RunRequest names one unit of execution for api::Engine: a workload (a
// registry kernel, a prebuilt kernel, or a raw assembled program), an engine
// selection (ISS, cycle-level, or both in lockstep), configuration
// overrides, a validation policy and an optional set of observers. Every
// front-end -- benches, the scenario runner, schsim, tests, embedders --
// describes work in this one vocabulary.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "api/run_report.hpp"
#include "asm/program.hpp"
#include "energy/energy_model.hpp"
#include "kernels/kernel_common.hpp"
#include "kernels/registry.hpp"
#include "sim/sim_config.hpp"
#include "verify/verify.hpp"

namespace sch::api {

class Observer;
class BuildCache;

/// Output-validation policy.
enum class Validation : u8 {
  kGolden,  // compare the output region against the workload's golden vector
  kNone,    // run only (raw programs have no golden; forced to kNone)
};

/// Static-verification policy (verify::analyze before execution).
enum class VerifyPolicy : u8 {
  kOff,     // do not run the static analyzer
  kWarn,    // analyze; findings go to verify_sink but never fail the run
  kStrict,  // analyze; error findings fail the run (FailureKind::kValidation)
            // before the engine spins a single cycle
};

struct RunRequest {
  // --- Workload: exactly one of the three forms. Precedence when several
  // are set: prebuilt kernel > registry lookup > raw program. ---

  /// (a) Registry form: kernel family name + variant + size overrides.
  /// Sizes are resolved against the registry defaults; unknown kernels,
  /// variants or size names fail the report (never abort).
  std::string kernel;
  std::string variant;
  kernels::SizeMap sizes;

  /// (b) Prebuilt form: a BuiltKernel from any builder (tests, custom
  /// embedders); carries its own golden vector.
  std::optional<kernels::BuiltKernel> built;

  /// (c) Raw-program form: an assembled Program and no golden reference.
  /// With config.num_cores > 1 the program is replicated to every core of
  /// the cluster (programs partition work by the mhartid/mnumharts CSRs).
  std::optional<Program> program;

  /// (d) Cluster raw form: one program per core (config.num_cores must
  /// equal programs.size()). No golden reference; all programs share one
  /// address space and their data images load in hartid order.
  std::vector<Program> programs;

  /// Report label override; defaults to the kernel's name ("kernel/variant"
  /// for registry workloads, "program" for raw programs).
  std::string label;

  EngineSel engine = EngineSel::kCycle;
  sim::SimConfig config{};
  energy::EnergyConfig energy{};
  Validation validation = Validation::kGolden;

  /// Static verification before execution. kWarn records findings in
  /// `verify_sink` (when set) and proceeds; kStrict additionally converts
  /// error-severity findings into a failed-validation report without
  /// spinning the engine. Warnings never fail a run.
  VerifyPolicy verify = VerifyPolicy::kOff;
  /// Borrowed out-param: receives the analyzer report when `verify` is not
  /// kOff. Must outlive the run (Engine::submit runs on a worker thread).
  verify::Report* verify_sink = nullptr;

  /// kBoth only: additionally compare the final TCDM and main-memory images
  /// of the two engines byte-for-byte. This is what makes raw-program
  /// differential fuzzing sound (raw programs have no golden region): a
  /// store that lands differently on the two engines fails the lockstep
  /// check even when no register still holds the value. Off by default --
  /// kernels validate their output region instead.
  bool lockstep_compare_memory = false;

  /// Borrowed probes, invoked during execution (see api/observer.hpp).
  /// Must outlive the run; with Engine::submit they are called from a
  /// worker thread, so shared observers must synchronize internally.
  std::vector<Observer*> observers;

  /// Borrowed build cache consulted by the registry-form path (form (a)
  /// above): a hit hands the engine a shared, already-predecoded
  /// BuiltKernel instead of rebuilding it. Null = build fresh (default,
  /// bit-identical behavior). Must outlive the run; BuildCache is
  /// internally synchronized, so one cache may back any number of
  /// concurrently-submitted requests.
  BuildCache* cache = nullptr;

  // --- convenience constructors ---
  static RunRequest for_kernel(std::string kernel, std::string variant,
                               kernels::SizeMap sizes = {},
                               EngineSel engine = EngineSel::kCycle) {
    RunRequest r;
    r.kernel = std::move(kernel);
    r.variant = std::move(variant);
    r.sizes = std::move(sizes);
    r.engine = engine;
    return r;
  }

  static RunRequest for_built(kernels::BuiltKernel k,
                              EngineSel engine = EngineSel::kCycle) {
    RunRequest r;
    r.built = std::move(k);
    r.engine = engine;
    return r;
  }

  static RunRequest for_program(Program p, std::string label = "program",
                                EngineSel engine = EngineSel::kCycle) {
    RunRequest r;
    r.program = std::move(p);
    r.label = std::move(label);
    r.engine = engine;
    r.validation = Validation::kNone;
    return r;
  }

  /// One program per cluster core; sets config.num_cores to match.
  static RunRequest for_programs(std::vector<Program> programs,
                                 std::string label = "programs",
                                 EngineSel engine = EngineSel::kCycle) {
    RunRequest r;
    r.config.num_cores = static_cast<u32>(programs.size());
    r.programs = std::move(programs);
    r.label = std::move(label);
    r.engine = engine;
    r.validation = Validation::kNone;
    return r;
  }
};

} // namespace sch::api
