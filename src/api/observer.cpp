#include "api/observer.hpp"

#include <ostream>

#include "ssr/ssr_file.hpp"

namespace sch::api {

void TraceObserver::on_cycle(const sim::Simulator& simulator) {
  sim::TraceEntry e;
  e.cycle = simulator.cycles();
  e.int_issue = simulator.core().last_issue();
  e.fp_issue = simulator.fp().last_issue();
  e.fp_stall = simulator.fp().last_stall();
  const sim::FpuPipeline& pipe = simulator.fp().pipeline();
  e.fpu_depth = pipe.depth();
  for (u32 s = 0; s < pipe.depth() && s < 8; ++s) {
    e.fpu_stage_seq[s] = pipe.stage(s).busy ? pipe.stage(s).seq : 0;
  }
  const u32 mask = simulator.fp().chain_mask();
  if (mask != 0) {
    u8 reg = 0;
    while (((mask >> reg) & 1u) == 0) ++reg;
    e.chain_tracked = true;
    e.chain_reg = reg;
    e.chain_valid = simulator.fp().chain().valid(reg);
    e.chain_value = simulator.fp().chain().value(reg);
  }
  for (u32 i = 0; i < ssr::kNumSsrs; ++i) {
    e.ssr_read_fifo[i] = simulator.fp().streamer(i).read_fifo_level();
    e.ssr_write_fifo[i] = simulator.fp().streamer(i).write_fifo_level();
  }
  trace_.record(std::move(e));
}

void ProgressObserver::on_run_start(const RunRequest& request,
                                    const std::string& name) {
  (void)request;
  const std::lock_guard<std::mutex> lock(mutex_);
  out_ << "run  " << name << "\n";
}

void ProgressObserver::on_halt(const RunReport& report,
                               const sim::Simulator* simulator,
                               const Memory* memory) {
  (void)simulator;
  (void)memory;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (report.ok) {
    out_ << "halt " << report.name << ": " << report.cycles << " cycles, util "
         << static_cast<int>(report.fpu_utilization * 1000) / 1000.0 << "\n";
  } else {
    out_ << "halt " << report.name << ": FAIL: " << report.error << "\n";
  }
}

} // namespace sch::api
