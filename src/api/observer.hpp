// Pluggable run probes. An Observer attaches to a RunRequest and receives
// callbacks as the engine executes it, so instrumentation (per-cycle traces,
// progress reporting, memory inspection, custom counters) lives outside the
// core and needs no recompilation of the simulator. The built-in clients:
//
//   TraceObserver     records the Fig. 1c issue trace / Fig. 2 dataflow
//                     snapshot per cycle (what sim::Simulator used to record
//                     internally behind SimConfig::trace).
//   ProgressObserver  prints one line per run start/halt to a stream
//                     (thread-safe; usable with Engine::submit).
//
// Callback contract: on_run_start fires once before execution; on_cycle
// after every simulated cycle of the cycle-level engine; on_retire whenever
// the retired-instruction count advances; on_halt once with the finished
// report and the final machine state -- `memory` is the view of whichever
// engine ran (the cycle-level engine's for kCycle/kBoth, the ISS's for
// kIss), while `simulator` is null unless the cycle-level engine ran.
// Observers attached to a submitted request are called from the worker
// thread executing it.
#pragma once

#include <iosfwd>
#include <mutex>

#include "api/run_report.hpp"
#include "mem/memory.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace sch::api {

struct RunRequest;

class Observer {
 public:
  virtual ~Observer() = default;

  /// Before execution. `name` is the resolved workload label.
  virtual void on_run_start(const RunRequest& request, const std::string& name) {
    (void)request;
    (void)name;
  }

  /// After every cycle-level simulator cycle (never for kIss).
  virtual void on_cycle(const sim::Simulator& simulator) { (void)simulator; }

  /// When the retired-instruction count advances, with the delta.
  virtual void on_retire(const sim::Simulator& simulator, u64 newly_retired) {
    (void)simulator;
    (void)newly_retired;
  }

  /// Once, with the finished report. `memory` is the final memory of
  /// whichever engine ran (cycle-level preferred for kBoth); `simulator` is
  /// null when the cycle-level engine did not run.
  virtual void on_halt(const RunReport& report, const sim::Simulator* simulator,
                       const Memory* memory) {
    (void)report;
    (void)simulator;
    (void)memory;
  }
};

/// Records the per-cycle issue trace and pipeline/chain/SSR occupancy
/// snapshot from the public simulator surface. Set SimConfig::trace on the
/// request so the core maintains the issue/stall strings this consumes.
class TraceObserver : public Observer {
 public:
  void on_cycle(const sim::Simulator& simulator) override;

  [[nodiscard]] const sim::Trace& trace() const { return trace_; }

 private:
  sim::Trace trace_{true};
};

/// Prints "run <name>" / "halt <name>: ..." lines. Thread-safe, so one
/// instance can watch a whole submitted batch.
class ProgressObserver : public Observer {
 public:
  explicit ProgressObserver(std::ostream& out) : out_(out) {}

  void on_run_start(const RunRequest& request, const std::string& name) override;
  void on_halt(const RunReport& report, const sim::Simulator* simulator,
               const Memory* memory) override;

 private:
  std::ostream& out_;
  std::mutex mutex_;
};

} // namespace sch::api
