#include "api/build_cache.hpp"

#include <sstream>
#include <stdexcept>

namespace sch::api {

std::string BuildCache::config_fingerprint(const sim::SimConfig& c) {
  std::ostringstream os;
  os << "fpu_depth=" << c.fpu_depth
     << ";fdiv=" << c.fdiv_latency
     << ";fsqrt=" << c.fsqrt_latency
     << ";int_mul=" << c.int_mul_latency
     << ";int_div=" << c.int_div_latency
     << ";fp_queue=" << c.fp_queue_depth
     << ";seq_buffer=" << c.seq_buffer_depth
     << ";load_latency=" << c.load_latency
     << ";mem_latency=" << c.main_mem_latency
     << ";mem_bw=" << c.main_mem_bytes_per_cycle
     << ";dma_queue=" << c.dma_queue_depth
     << ";branch_penalty=" << c.taken_branch_penalty
     << ";strict_handoff=" << (c.strict_chain_handoff ? 1 : 0)
     << ";cores=" << c.num_cores
     << ";banks=" << c.tcdm.num_banks
     << ";bank_word_log2=" << c.tcdm.bank_word_log2
     << ";fast_arb=" << (c.tcdm.fast_arb ? 1 : 0)
     << ";ssr_data_fifo=" << c.ssr.data_fifo_depth
     << ";ssr_idx_queue=" << c.ssr.idx_queue_depth
     << ";ssr_write_fifo=" << c.ssr.write_fifo_depth
     << ";max_cycles=" << c.max_cycles
     << ";deadlock=" << c.deadlock_cycles
     << ";fast_forward=" << (c.fast_forward ? 1 : 0)
     << ";fast_dispatch=" << (c.fast_dispatch ? 1 : 0);
  // Excluded on purpose: trace, max_wall_ms and the fault plan are host
  // observability knobs -- no build output can depend on them, and keying on
  // the wall budget would shred hit rates across otherwise-identical fleet
  // requests.
  return os.str();
}

std::string BuildCache::make_key(const std::string& kernel,
                                 const std::string& variant,
                                 const kernels::SizeMap& resolved_sizes,
                                 const sim::SimConfig& config) {
  std::ostringstream os;
  os << kernel << '|' << variant << '|';
  for (const auto& [name, value] : resolved_sizes) {
    os << name << '=' << value << ',';
  }
  os << '|' << config_fingerprint(config);
  return os.str();
}

BuildCache::Ptr BuildCache::get_or_build(const kernels::KernelEntry& entry,
                                         const std::string& variant,
                                         const kernels::SizeMap& resolved_sizes,
                                         const sim::SimConfig& config) {
  const auto build_fresh = [&]() -> Ptr {
    auto built = std::make_shared<kernels::BuiltKernel>(
        entry.build(variant, resolved_sizes));
    // Predecode once here so every consumer of the cached kernel (the
    // engines copy the Program and call ensure_predecoded) skips the pass.
    built->program.predecode();
    return built;
  };

  if (capacity_ == 0) return build_fresh();

  const std::string key = make_key(entry.name, variant, resolved_sizes, config);
  std::shared_ptr<Node> node;
  bool creator = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      node = std::make_shared<Node>();
      entries_.emplace(key, node);
      creator = true;
      ++stats_.misses;
    } else {
      node = it->second;
      ++stats_.hits;
      if (node->in_lru) lru_.splice(lru_.begin(), lru_, node->lru);
    }
    if (!creator) {
      cv_.wait(lock, [&] { return node->done; });
      if (node->value != nullptr) return node->value;
      throw std::invalid_argument(node->error);
    }
  }

  // Creator path: build outside the lock so a slow build never serializes
  // lookups of unrelated keys.
  Ptr built;
  std::string error;
  try {
    built = build_fresh();
  } catch (const std::exception& e) {
    error = e.what();
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    node->done = true;
    if (built != nullptr) {
      node->value = built;
      lru_.push_front(key);
      node->lru = lru_.begin();
      node->in_lru = true;
      while (lru_.size() > capacity_) {
        auto victim = entries_.find(lru_.back());
        if (victim != entries_.end()) entries_.erase(victim);
        lru_.pop_back();
        ++stats_.evictions;
      }
    } else {
      // Failed builds are never cached: erase so the next lookup of the key
      // re-misses and re-reports the same error. Guard against the node
      // having been evicted/cleared-and-replaced meanwhile.
      node->error = error;
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second == node) entries_.erase(it);
    }
    stats_.entries = entries_.size();
  }
  cv_.notify_all();
  if (built == nullptr) throw std::invalid_argument(error);
  return built;
}

BuildCache::Stats BuildCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.entries = entries_.size();
  return s;
}

void BuildCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  // In-flight nodes (not yet in the LRU) stay: their creators still hold the
  // shared node and will insert it on completion.
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second->in_lru) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  lru_.clear();
  for (auto& [key, node] : entries_) node->in_lru = false;
  stats_.entries = entries_.size();
}

BuildCache& default_build_cache() {
  static BuildCache cache;
  return cache;
}

} // namespace sch::api
