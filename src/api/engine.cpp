#include "api/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "api/build_cache.hpp"
#include "energy/activity.hpp"
#include "isa/reg.hpp"
#include "iss/iss.hpp"
#include "mem/memory.hpp"
#include "sim/simulator.hpp"

namespace sch::api {

namespace {

using Clock = std::chrono::steady_clock;

bool clean_halt(HaltReason halt) {
  return halt == HaltReason::kEcall || halt == HaltReason::kEbreak;
}

/// Count golden-output mismatches in `mem` (NaN-aware bit-exact compare).
u64 count_mismatches(const Memory& mem, const kernels::BuiltKernel& k,
                     std::string& detail) {
  u64 bad = 0;
  for (u32 i = 0; i < k.expected.size(); ++i) {
    const double got = mem.load_f64(k.out_base + 8 * i);
    const double want = k.expected[i];
    const bool equal = (got == want) || (std::isnan(got) && std::isnan(want));
    if (!equal) {
      if (bad == 0) {
        std::ostringstream os;
        os << "first mismatch at element " << i << ": got " << got << ", want "
           << want;
        detail = os.str();
      }
      ++bad;
    }
  }
  return bad;
}

/// Record the first failure (message + structured classification); later
/// calls only clear `ok` so the first cause is the one reported.
void fail(RunReport& report, FailureKind kind, const std::string& message,
          i32 hart = -1, i64 pc = -1, i64 cycle = -1) {
  if (report.error.empty()) {
    report.error = message;
    report.failure.kind = kind;
    report.failure.hart = hart;
    report.failure.pc = pc;
    report.failure.cycle = cycle;
  }
  report.ok = false;
}

/// Classify an engine error string into a FailureKind. The producers of
/// these messages (Memory, Iss, the core models) are in lower layers that
/// know nothing about the report taxonomy, so the mapping lives here.
FailureKind classify_error_message(const std::string& message) {
  if (message.find("bus error") != std::string::npos ||
      message.find("unmapped") != std::string::npos) {
    return FailureKind::kBusError;
  }
  if (message.find("chain FIFO underflow") != std::string::npos ||
      message.find("deadlock") != std::string::npos) {
    return FailureKind::kDeadlock;
  }
  if (message.find("budget exhausted") != std::string::npos) {
    return FailureKind::kBudgetExceeded;
  }
  // Everything else is a program/config-level fault the validation layer
  // surfaced (illegal instruction, bad frep body, SSR misuse, ...).
  return FailureKind::kValidation;
}

/// Step the cycle-level simulator to completion, fanning out observer
/// callbacks. With no observers this is exactly Simulator::run().
void drive_simulator(sim::Simulator& simulator,
                     const std::vector<Observer*>& observers) {
  if (observers.empty()) {
    simulator.run();
    return;
  }
  Cycle notified = 0;
  u64 retired = 0;
  for (bool running = true; running;) {
    running = simulator.step();
    if (simulator.cycles() > notified) {
      notified = simulator.cycles();
      for (Observer* o : observers) o->on_cycle(simulator);
      const u64 now_retired = simulator.perf().total_retired();
      if (now_retired != retired) {
        for (Observer* o : observers) o->on_retire(simulator, now_retired - retired);
        retired = now_retired;
      }
    }
  }
}

RunReport execute(const RunRequest& request) {
  const auto t0 = Clock::now();
  RunReport report;
  report.engine = request.engine;
  report.kernel = request.kernel;
  report.variant = request.variant;

  // Resolve the report label first so on_run_start fires for every request,
  // including ones that fail during build or validation below.
  if (!request.label.empty()) {
    report.name = request.label;
  } else if (request.built.has_value()) {
    report.name = request.built->name;
  } else if (!request.kernel.empty()) {
    report.name = request.kernel + "/" + request.variant;
  } else {
    report.name = "program";
  }
  for (Observer* o : request.observers) o->on_run_start(request, report.name);

  // Early exits still complete the observer lifecycle (no machine state).
  const auto finish_failed = [&](FailureKind kind, const std::string& message) {
    fail(report, kind, message);
    report.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
    for (Observer* o : request.observers) o->on_halt(report, nullptr, nullptr);
    return report;
  };

  // --- resolve the workload -------------------------------------------------
  kernels::BuiltKernel registry_built;  // storage for registry-form builds
  BuildCache::Ptr cached_built;         // keep-alive for cache hits
  const kernels::BuiltKernel* built = nullptr;
  const Program* program = nullptr;          // single program (replicated)
  const std::vector<Program>* programs = nullptr;  // one per core
  Validation validation = request.validation;

  if (request.built.has_value()) {
    built = &*request.built;
  } else if (!request.kernel.empty()) {
    const kernels::KernelEntry* entry =
        kernels::Registry::instance().find(request.kernel);
    if (entry == nullptr) {
      return finish_failed(FailureKind::kValidation,
                           report.name + ": unknown kernel \"" + request.kernel +
                               "\" (see `schsim list-kernels`)");
    }
    try {
      if (request.cache != nullptr) {
        cached_built = request.cache->get_or_build(
            *entry, request.variant, entry->resolve_sizes(request.sizes),
            request.config);
        built = cached_built.get();
      } else {
        registry_built =
            entry->build(request.variant, entry->resolve_sizes(request.sizes));
        built = &registry_built;
      }
    } catch (const std::exception& e) {
      return finish_failed(FailureKind::kValidation,
                           report.name + ": " + e.what());
    }
  } else if (!request.programs.empty()) {
    programs = &request.programs;
    validation = Validation::kNone;  // no golden reference exists
  } else if (request.program.has_value()) {
    program = &*request.program;
    validation = Validation::kNone;  // no golden reference exists
  } else {
    return finish_failed(FailureKind::kValidation,
                         "RunRequest names no workload (kernel, built or program)");
  }

  if (built != nullptr) {
    report.regs = built->regs;
    report.useful_flops = built->useful_flops;
  }

  const Status config_ok = request.config.validate();
  if (!config_ok.is_ok()) {
    return finish_failed(FailureKind::kValidation,
                         report.name + ": " + config_ok.message());
  }
  const u32 num_cores = request.config.num_cores;
  report.num_cores = num_cores;
  if (programs != nullptr && programs->size() != num_cores) {
    return finish_failed(FailureKind::kValidation,
                         report.name + ": " + std::to_string(programs->size()) +
                             " programs for " + std::to_string(num_cores) +
                             " cores (config.num_cores must match)");
  }
  // Program of hart h (one per core, or one replicated across the cluster).
  const auto hart_program = [&](u32 h) -> const Program& {
    if (programs != nullptr) return (*programs)[h];
    return built != nullptr ? built->program : *program;
  };

  // --- static verification --------------------------------------------------
  // Before any engine spins: abstract-interpret every hart's program for
  // chain-FIFO deadlocks, stream windows, FREP legality and cross-hart
  // races. kStrict turns error findings into a failed report here.
  if (request.verify != VerifyPolicy::kOff) {
    verify::Report vr;
    if (programs != nullptr) {
      vr = verify::analyze(*programs, request.config);
    } else {
      vr = verify::analyze(hart_program(0), request.config,
                           built != nullptr ? &built->regions : nullptr);
    }
    const std::string summary = vr.summary();
    const bool strict_fail =
        request.verify == VerifyPolicy::kStrict && !vr.ok();
    if (request.verify_sink != nullptr) {
      *request.verify_sink = std::move(vr);
    }
    if (strict_fail) {
      return finish_failed(FailureKind::kValidation,
                           report.name + ": static verification failed: " +
                               summary);
    }
  }

  // --- functional ISS -------------------------------------------------------
  // Harts run sequentially against one memory: every data image is loaded
  // first, then hart 0..N-1 each execute to completion. This validates any
  // program whose harts communicate only through disjoint memory (the _par
  // kernels); programs that spin on another hart's stores (barriers) are
  // cycle-engine-only and would exhaust the ISS step budget here.
  // Both engine sections run under a catch-all: a stray access to unmapped
  // memory anywhere on the execution path (e.g. an SSR stream pointed at a
  // hole in the address map) surfaces as a failed bus-error report instead
  // of an exception escaping Engine::run mid-batch.
  Memory iss_mem;
  std::vector<ArchState> iss_states;
  if (request.engine == EngineSel::kIss || request.engine == EngineSel::kBoth) {
    try {
    iss_mem.load_image(hart_program(0).data_base, hart_program(0).data);
    if (programs != nullptr) {
      for (u32 h = 1; h < num_cores; ++h) {
        iss_mem.load_image(hart_program(h).data_base, hart_program(h).data);
      }
    }
    for (u32 h = 0; h < num_cores; ++h) {
      IssConfig iss_cfg;
      iss_cfg.hartid = h;
      iss_cfg.num_harts = num_cores;
      iss_cfg.load_image = false;  // preloaded above
      // Per-request budgets: the cycle budget bounds the ISS too (pseudo
      // dual-issue retires at most ~2 instructions per cycle, so 2x is the
      // matching step budget), and the wall budget carries over unchanged.
      iss_cfg.max_steps = request.config.max_cycles > (~u64{0} >> 1)
                              ? ~u64{0}
                              : 2 * request.config.max_cycles;
      iss_cfg.max_wall_ms = request.config.max_wall_ms;
      iss_cfg.fast_dispatch = request.config.fast_dispatch;
      Iss iss(hart_program(h), iss_mem, iss_cfg);
      const HaltReason halt = iss.run();
      report.iss_instructions += iss.instret();
      iss_states.push_back(iss.state());
      if (!clean_halt(halt)) {
        const std::string who =
            num_cores == 1 ? "ISS" : "ISS hart " + std::to_string(h);
        const FailureKind kind = halt == HaltReason::kMaxSteps
                                     ? FailureKind::kBudgetExceeded
                                     : classify_error_message(iss.error());
        fail(report, kind,
             report.name + ": " + who + " halted abnormally: " +
                 (iss.error().empty() ? "(no message)" : iss.error()),
             static_cast<i32>(h), static_cast<i64>(iss.state().pc));
        break;
      }
    }
    } catch (const std::exception& e) {
      fail(report, classify_error_message(e.what()) == FailureKind::kBusError
                       ? FailureKind::kBusError
                       : FailureKind::kInternal,
           report.name + ": ISS: " + e.what());
    }
    if (report.error.empty() && validation == Validation::kGolden &&
        built != nullptr) {
      std::string detail;
      const u64 bad = count_mismatches(iss_mem, *built, detail);
      if (bad != 0) {
        report.mismatches += bad;
        std::ostringstream os;
        os << report.name << ": ISS: " << bad << " output mismatches; " << detail;
        fail(report, FailureKind::kGoldenMismatch, os.str());
      }
    }
  }

  // --- cycle-level simulator ------------------------------------------------
  Memory sim_mem;
  std::optional<sim::Simulator> simulator;
  if (request.engine == EngineSel::kCycle || request.engine == EngineSel::kBoth) {
    // Observers see every individual cycle (on_cycle fires per step), so the
    // stall fast-forward -- invisible in the final report but not to a
    // per-cycle callback -- must not skip any.
    sim::SimConfig sim_cfg = request.config;
    if (!request.observers.empty()) sim_cfg.fast_forward = false;
    try {
      if (programs != nullptr) {
        simulator.emplace(*programs, sim_mem, sim_cfg);
      } else {
        simulator.emplace(hart_program(0), sim_mem, sim_cfg);
      }
      drive_simulator(*simulator, request.observers);
    } catch (const std::invalid_argument& e) {
      // Cluster construction rejects bad configurations/program sets.
      return finish_failed(FailureKind::kValidation,
                           report.name + ": simulator: " + e.what());
    } catch (const std::exception& e) {
      return finish_failed(
          classify_error_message(e.what()) == FailureKind::kBusError
              ? FailureKind::kBusError
              : FailureKind::kInternal,
          report.name + ": simulator: " + e.what());
    }
    report.cycles = simulator->cycles();
    report.perf = simulator->perf();
    // Cluster-mean utilization: reduces to fpu_ops / cycles for one core.
    report.fpu_utilization = simulator->perf().fpu_utilization() / num_cores;
    for (u32 h = 0; h < num_cores; ++h) {
      const sim::Core& core = simulator->core_at(h);
      RunReport::CoreReport cr;
      cr.cycles = core.perf().cycles;
      cr.perf = core.perf();
      cr.fpu_utilization = core.perf().fpu_utilization();
      report.cores.push_back(std::move(cr));
    }
    report.energy = energy::evaluate_run(*simulator, request.energy);
    report.tcdm_reads = simulator->tcdm().stats().reads;
    report.tcdm_writes = simulator->tcdm().stats().writes;
    report.tcdm_conflicts = simulator->tcdm().stats().conflicts;
    report.tcdm_out_of_range = simulator->tcdm().stats().out_of_range;
    report.tcdm_top_banks = simulator->tcdm().top_conflict_banks(8);
    const dma::EngineStats& ds = simulator->dma().stats();
    report.dma.transfers = ds.transfers_completed;
    report.dma.bytes = ds.bytes_moved;
    report.dma.busy_cycles = ds.busy_cycles;
    report.dma.startup_cycles = ds.startup_cycles;
    report.dma.tcdm_conflicts = ds.tcdm_conflicts;
    report.dma.queue_full_stalls = ds.queue_full_stalls;
    report.dma.achieved_bytes_per_cycle = ds.achieved_bytes_per_cycle();
    if (!clean_halt(simulator->halt_reason())) {
      FailureKind kind;
      if (simulator->halt_reason() == HaltReason::kMaxSteps) {
        kind = FailureKind::kBudgetExceeded;
      } else if (simulator->deadlocked()) {
        kind = FailureKind::kDeadlock;
      } else {
        kind = classify_error_message(simulator->error());
      }
      fail(report, kind,
           report.name + ": simulator halted abnormally: " +
               (simulator->error().empty() ? "(no message)" : simulator->error()),
           simulator->halt_hart(), simulator->halt_pc(),
           static_cast<i64>(simulator->cycles()));
    } else if (validation == Validation::kGolden && built != nullptr) {
      std::string detail;
      const u64 bad = count_mismatches(sim_mem, *built, detail);
      if (bad != 0) {
        report.mismatches += bad;
        std::ostringstream os;
        os << report.name << ": " << bad << " output mismatches; " << detail;
        fail(report, FailureKind::kGoldenMismatch, os.str());
      }
    }
  }

  // --- lockstep cross-check -------------------------------------------------
  if (request.engine == EngineSel::kBoth && report.error.empty()) {
    std::string first;
    for (u32 h = 0; h < num_cores; ++h) {
      const std::string hart_tag =
          num_cores == 1 ? "" : "hart " + std::to_string(h) + " ";
      const ArchState& a = iss_states[h];
      const ArchState b = simulator->arch_state(h);
      for (u8 r = 0; r < isa::kNumIntRegs; ++r) {
        if (a.x[r] != b.x[r]) {
          ++report.lockstep_mismatches;
          if (first.empty()) {
            std::ostringstream os;
            os << hart_tag << "x" << static_cast<int>(r) << ": iss=" << a.x[r]
               << " cycle=" << b.x[r];
            first = os.str();
          }
        }
      }
      for (u8 r = 0; r < isa::kNumFpRegs; ++r) {
        if (a.f[r] != b.f[r]) {
          ++report.lockstep_mismatches;
          if (first.empty()) {
            std::ostringstream os;
            os << hart_tag << "f" << static_cast<int>(r) << ": iss=0x"
               << std::hex << a.f[r] << " cycle=0x" << b.f[r];
            first = os.str();
          }
        }
      }
    }
    if (built != nullptr) {
      for (u32 i = 0; i < built->expected.size(); ++i) {
        const Addr addr = built->out_base + 8 * i;
        if (iss_mem.load_f64(addr) != sim_mem.load_f64(addr) &&
            !(std::isnan(iss_mem.load_f64(addr)) &&
              std::isnan(sim_mem.load_f64(addr)))) {
          ++report.lockstep_mismatches;
          if (first.empty()) {
            std::ostringstream os;
            os << "output element " << i << ": iss=" << iss_mem.load_f64(addr)
               << " cycle=" << sim_mem.load_f64(addr);
            first = os.str();
          }
        }
      }
    }
    if (request.lockstep_compare_memory) {
      // Raw-program fuzzing: no golden region exists, so compare the entire
      // TCDM and main-memory images byte-for-byte (bit-exact; mismatching
      // bytes are counted at 8-byte-word granularity to keep counts sane).
      const auto compare_region = [&](Addr base, u32 size, const char* label) {
        const std::vector<u8> a = iss_mem.read_block(base, size);
        const std::vector<u8> b = sim_mem.read_block(base, size);
        for (u32 off = 0; off < size; off += 8) {
          const u32 chunk = std::min<u32>(8, size - off);
          if (std::memcmp(a.data() + off, b.data() + off, chunk) != 0) {
            ++report.lockstep_mismatches;
            if (first.empty()) {
              std::ostringstream os;
              os << label << "[0x" << std::hex << base + off << std::dec
                 << "]: iss=0x" << std::hex << iss_mem.load(base + off, chunk)
                 << " cycle=0x" << sim_mem.load(base + off, chunk);
              first = os.str();
            }
          }
        }
      };
      compare_region(memmap::kTcdmBase, memmap::kTcdmSize, "tcdm");
      compare_region(memmap::kMainBase, memmap::kMainSize, "main");
    }
    if (report.lockstep_mismatches != 0) {
      std::ostringstream os;
      os << report.name << ": lockstep divergence, " << report.lockstep_mismatches
         << " state mismatches between ISS and cycle engine; first: " << first;
      fail(report, FailureKind::kLockstepMismatch, os.str());
    }
  }

  report.ok = report.error.empty();
  report.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  const Memory* final_mem = simulator.has_value() ? &sim_mem
                            : !iss_states.empty() ? &iss_mem
                                                  : nullptr;
  const sim::Simulator* final_sim =
      simulator.has_value() ? &*simulator : nullptr;
  for (Observer* o : request.observers) o->on_halt(report, final_sim, final_mem);
  return report;
}

} // namespace

u32 Engine::default_worker_count() {
  if (const char* env = std::getenv("SCH_SWEEP_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<u32>(n);
  }
  const u32 hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

Engine::Engine(EngineConfig config)
    : threads_(config.threads != 0 ? config.threads : default_worker_count()) {}

Engine::~Engine() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : pool_) t.join();
}

RunReport Engine::run(const RunRequest& request) { return execute(request); }

void Engine::ensure_pool() {
  // Callers hold mutex_. The pool grows one worker per submission up to the
  // configured width, so a sync-only engine never pays for threads and a
  // small batch never spawns more workers than it has jobs.
  if (pool_.size() < threads_) {
    pool_.emplace_back([this] { worker_loop(); });
  }
}

void Engine::worker_loop() {
  for (;;) {
    std::packaged_task<RunReport()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<RunReport> Engine::submit(RunRequest request) {
  std::packaged_task<RunReport()> task(
      [request = std::move(request)] { return execute(request); });
  std::future<RunReport> future = task.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ensure_pool();
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

std::vector<RunReport> Engine::run_batch(std::vector<RunRequest> requests) {
  std::vector<std::future<RunReport>> futures;
  futures.reserve(requests.size());
  for (RunRequest& r : requests) futures.push_back(submit(std::move(r)));
  std::vector<RunReport> reports;
  reports.reserve(futures.size());
  for (std::future<RunReport>& f : futures) reports.push_back(f.get());
  return reports;
}

Engine& default_engine() {
  static Engine engine;
  return engine;
}

RunReport run(const RunRequest& request) { return default_engine().run(request); }

RunReport run_built(kernels::BuiltKernel kernel, const sim::SimConfig& config) {
  RunRequest request = RunRequest::for_built(std::move(kernel));
  request.config = config;
  return run(request);
}

RunReport run_built_iss(kernels::BuiltKernel kernel) {
  return run(RunRequest::for_built(std::move(kernel), EngineSel::kIss));
}

} // namespace sch::api
