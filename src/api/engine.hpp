// The unified execution engine: the single entry point through which every
// front-end (benches, the scenario runner, schsim, tests, embedders) runs a
// workload. One engine owns one worker pool; `run()` executes a request
// synchronously in the caller's thread, `submit()` enqueues it on the pool
// and returns a future. Reports are self-contained and deterministic (all
// fields except wall_s are bit-identical across thread counts), and report
// order is the future-collection order -- scheduling never reorders results.
//
//   api::Engine engine;                       // SCH_SWEEP_THREADS / hw pool
//   auto report = engine.run(api::RunRequest::for_kernel("vecop", "chained"));
//   auto future = engine.submit(std::move(request));
//
// `default_engine()` is the process-wide shared instance that replaces the
// scenario runner's private pool and bench_common's hand-rolled fan-out.
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "api/observer.hpp"
#include "api/run_report.hpp"
#include "api/run_request.hpp"

namespace sch::api {

struct EngineConfig {
  /// Worker threads for submit(). 0 selects the SCH_SWEEP_THREADS env var
  /// when set, else hardware concurrency.
  u32 threads = 0;
};

class Engine {
 public:
  explicit Engine(EngineConfig config = {});
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Execute synchronously in the calling thread. Never throws: build
  /// errors, invalid configurations, abnormal halts, validation and
  /// lockstep mismatches all surface as a failed RunReport.
  [[nodiscard]] RunReport run(const RunRequest& request);

  /// Enqueue on the worker pool (spawned lazily on first use) and return a
  /// future for the report. Collect futures in submission order for a
  /// deterministic batch; each report's content is independent of
  /// scheduling.
  [[nodiscard]] std::future<RunReport> submit(RunRequest request);

  /// submit() every request, wait, and return reports in request order.
  [[nodiscard]] std::vector<RunReport> run_batch(std::vector<RunRequest> requests);

  /// Worker threads submit() will use.
  [[nodiscard]] u32 worker_count() const { return threads_; }

  /// The pool-sizing policy for threads == 0: SCH_SWEEP_THREADS when set
  /// (>= 1), else hardware concurrency (>= 1).
  static u32 default_worker_count();

 private:
  void worker_loop();
  void ensure_pool();

  u32 threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<RunReport()>> queue_;
  std::vector<std::thread> pool_;
  bool stopping_ = false;
};

/// Process-wide shared engine (one pool for all front-ends; created on
/// first use with the default worker-count policy).
Engine& default_engine();

/// Convenience: default_engine().run(request).
[[nodiscard]] RunReport run(const RunRequest& request);

/// Convenience: run a prebuilt kernel synchronously on the cycle-level
/// engine (golden-validated) through the default engine.
[[nodiscard]] RunReport run_built(kernels::BuiltKernel kernel,
                                  const sim::SimConfig& config = {});

/// Same, on the functional ISS.
[[nodiscard]] RunReport run_built_iss(kernels::BuiltKernel kernel);

} // namespace sch::api
