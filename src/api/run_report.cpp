#include "api/run_report.hpp"

namespace sch::api {

const char* engine_name(EngineSel sel) {
  switch (sel) {
    case EngineSel::kIss: return "iss";
    case EngineSel::kCycle: return "cycle";
    case EngineSel::kBoth: return "both";
  }
  return "?";
}

bool parse_engine(const std::string& name, EngineSel& out) {
  if (name == "iss") { out = EngineSel::kIss; return true; }
  if (name == "cycle") { out = EngineSel::kCycle; return true; }
  if (name == "both") { out = EngineSel::kBoth; return true; }
  return false;
}

const char* failure_kind_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone: return "none";
    case FailureKind::kValidation: return "validation";
    case FailureKind::kBusError: return "bus_error";
    case FailureKind::kDeadlock: return "deadlock";
    case FailureKind::kLockstepMismatch: return "lockstep_mismatch";
    case FailureKind::kGoldenMismatch: return "golden_mismatch";
    case FailureKind::kBudgetExceeded: return "budget_exceeded";
    case FailureKind::kInternal: return "internal";
  }
  return "?";
}

namespace {

Json stalls_json(const sim::PerfCounters& p) {
  Json o = Json::object();
  o.set("fp_raw", p.stall_fp_raw);
  o.set("fp_waw", p.stall_fp_waw);
  o.set("chain_empty", p.stall_chain_empty);
  o.set("chain_full", p.stall_chain_full);
  o.set("ssr_empty", p.stall_ssr_empty);
  o.set("ssr_wfull", p.stall_ssr_wfull);
  o.set("fpu_busy", p.stall_fpu_busy);
  o.set("fp_lsu", p.stall_fp_lsu);
  o.set("offload_full", p.stall_offload_full);
  o.set("int_raw", p.stall_int_raw);
  o.set("int_lsu", p.stall_int_lsu);
  o.set("csr_barrier", p.stall_csr_barrier);
  o.set("dma_full", p.stall_dma_full);
  o.set("branch_bubbles", p.branch_bubbles);
  return o;
}

} // namespace

Json RunReport::to_json() const {
  Json row = Json::object();
  row.set("schema", kSchemaVersion);
  row.set("name", name);
  row.set("kernel", kernel);
  row.set("variant", variant);
  row.set("engine", engine_name(engine));
  row.set("ok", ok);
  if (!ok) {
    row.set("error", error);
    Json fj = Json::object();
    fj.set("kind", std::string(failure_kind_name(failure.kind)));
    fj.set("hart", static_cast<i64>(failure.hart));
    fj.set("pc", failure.pc);
    fj.set("cycle", failure.cycle);
    row.set("failure", std::move(fj));
  }
  row.set("cycles", cycles);
  row.set("retired", perf.total_retired());
  row.set("fpu_ops", perf.fpu_ops);
  row.set("fpu_utilization", fpu_utilization);
  row.set("useful_flops", useful_flops);
  row.set("iss_instructions", iss_instructions);
  row.set("mismatches", mismatches);
  row.set("lockstep_mismatches", lockstep_mismatches);
  row.set("stalls", stalls_json(perf));
  Json tcdm = Json::object();
  tcdm.set("reads", tcdm_reads);
  tcdm.set("writes", tcdm_writes);
  tcdm.set("conflicts", tcdm_conflicts);
  tcdm.set("out_of_range", tcdm_out_of_range);
  Json top = Json::array();
  for (const auto& [bank, conflicts] : tcdm_top_banks) {
    Json entry = Json::object();
    entry.set("bank", static_cast<i64>(bank));
    entry.set("conflicts", conflicts);
    top.push_back(std::move(entry));
  }
  tcdm.set("top_banks", std::move(top));
  row.set("tcdm", std::move(tcdm));
  Json dm = Json::object();
  dm.set("transfers", dma.transfers);
  dm.set("bytes", dma.bytes);
  dm.set("busy_cycles", dma.busy_cycles);
  dm.set("startup_cycles", dma.startup_cycles);
  dm.set("tcdm_conflicts", dma.tcdm_conflicts);
  dm.set("queue_full_stalls", dma.queue_full_stalls);
  dm.set("achieved_bytes_per_cycle", dma.achieved_bytes_per_cycle);
  row.set("dma", std::move(dm));
  row.set("num_cores", static_cast<i64>(num_cores));
  Json core_rows = Json::array();
  for (usize h = 0; h < cores.size(); ++h) {
    const CoreReport& c = cores[h];
    Json cr = Json::object();
    cr.set("hart", static_cast<i64>(h));
    cr.set("cycles", c.cycles);
    cr.set("retired", c.perf.total_retired());
    cr.set("fpu_ops", c.perf.fpu_ops);
    cr.set("fpu_utilization", c.fpu_utilization);
    cr.set("stalls", stalls_json(c.perf));
    core_rows.push_back(std::move(cr));
  }
  row.set("cores", std::move(core_rows));
  Json en = Json::object();
  en.set("power_mw", energy.power_mw);
  en.set("energy_per_cycle_pj", energy.energy_per_cycle_pj);
  en.set("fpu_ops_per_joule", energy.fpu_ops_per_joule);
  row.set("energy", std::move(en));
  Json rr = Json::object();
  rr.set("fp_used", static_cast<i64>(regs.fp_regs_used));
  rr.set("accumulator", static_cast<i64>(regs.accumulator_regs));
  rr.set("chained", static_cast<i64>(regs.chained_regs));
  rr.set("ssr", static_cast<i64>(regs.ssr_regs));
  row.set("regs", std::move(rr));
  row.set("wall_s", wall_s);
  return row;
}

} // namespace sch::api
