// The one structured result every front-end consumes. A RunReport carries
// everything the scenario report writer, the BENCH_*.json emitters and the
// tests used to pull out of three unrelated structs (kernels::RunResult,
// kernels::IssRunResult and the ad-hoc fields of bench::SweepEntry):
// cycle-level counters, stall taxonomy, TCDM traffic, energy, ISS
// instruction counts, validation mismatches and the kernel's register
// bookkeeping. `to_json()` is the versioned serialization shared by
// `schsim run` reports and the bench JSON files.
#pragma once

#include <string>

#include "energy/energy_model.hpp"
#include "kernels/kernel_common.hpp"
#include "scenario/json.hpp"
#include "sim/perf.hpp"

namespace sch::api {

using Json = scenario::Json;

/// Which execution engine(s) a request runs on.
enum class EngineSel : u8 {
  kIss,    // functional golden-reference ISS only
  kCycle,  // cycle-level simulator only
  kBoth,   // both, with a lockstep cross-check of the final state
};

/// "iss" / "cycle" / "both".
const char* engine_name(EngineSel sel);
/// Inverse of engine_name(); false on unknown names.
bool parse_engine(const std::string& name, EngineSel& out);

struct RunReport {
  /// Version of the JSON serialization below. Bump on any key change and
  /// update tools/check_report_schema.py + the golden test in
  /// tests/test_api.cpp.
  static constexpr i64 kSchemaVersion = 1;

  std::string name;     // workload label, e.g. "vecop/chained+frep"
  std::string kernel;   // registry name ("" for raw-program workloads)
  std::string variant;  // registry variant ("" for raw-program workloads)
  EngineSel engine = EngineSel::kCycle;

  bool ok = false;      // halted cleanly, validated, engines agreed
  std::string error;    // failure description when !ok

  // Cycle-level engine results (zero when engine == kIss).
  u64 cycles = 0;
  double fpu_utilization = 0;
  sim::PerfCounters perf;
  u64 tcdm_reads = 0;
  u64 tcdm_writes = 0;
  u64 tcdm_conflicts = 0;
  energy::EnergyReport energy;

  // ISS results (zero when engine == kCycle).
  u64 iss_instructions = 0;

  // Validation.
  u64 mismatches = 0;           // golden-output mismatches
  u64 lockstep_mismatches = 0;  // kBoth: ISS-vs-cycle state divergences

  // Kernel bookkeeping (defaults for raw-program workloads).
  kernels::RegisterReport regs;
  u64 useful_flops = 0;

  // Host wall-clock of build + execute + validate. The only field that is
  // not deterministic across runs; comparisons must exclude it.
  double wall_s = 0;

  /// Versioned serialization ("schema": kSchemaVersion first). The scenario
  /// report writer appends its per-job echo (sizes/sim/repeat) to this
  /// object; benches embed it as-is.
  [[nodiscard]] Json to_json() const;
};

} // namespace sch::api
