// The one structured result every front-end consumes. A RunReport carries
// everything the scenario report writer, the BENCH_*.json emitters and the
// tests used to pull out of three unrelated structs (kernels::RunResult,
// kernels::IssRunResult and the ad-hoc fields of bench::SweepEntry):
// cycle-level counters, stall taxonomy, TCDM traffic, energy, ISS
// instruction counts, validation mismatches and the kernel's register
// bookkeeping. `to_json()` is the versioned serialization shared by
// `schsim run` reports and the bench JSON files.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "energy/energy_model.hpp"
#include "kernels/kernel_common.hpp"
#include "scenario/json.hpp"
#include "sim/perf.hpp"

namespace sch::api {

using Json = scenario::Json;

/// Which execution engine(s) a request runs on.
enum class EngineSel : u8 {
  kIss,    // functional golden-reference ISS only
  kCycle,  // cycle-level simulator only
  kBoth,   // both, with a lockstep cross-check of the final state
};

/// "iss" / "cycle" / "both".
const char* engine_name(EngineSel sel);
/// Inverse of engine_name(); false on unknown names.
bool parse_engine(const std::string& name, EngineSel& out);

/// Structured classification of a failed run (RunReport::failure). Every
/// failure path through api::Engine maps to exactly one kind; `error` stays
/// the human-readable description.
enum class FailureKind : u8 {
  kNone,             // report is ok
  kValidation,       // bad request/config/kernel or a program-level fault
  kBusError,         // access to unmapped memory on either engine
  kDeadlock,         // watchdog fired / chain-FIFO underflow
  kLockstepMismatch, // ISS and cycle engine disagree on final state
  kGoldenMismatch,   // output region differs from the golden vector
  kBudgetExceeded,   // cycle, step or wall-clock budget exhausted
  kInternal,         // unexpected exception (engine bug; please report)
};

/// "validation" / "bus_error" / ... (schema v4 failure.kind values).
const char* failure_kind_name(FailureKind kind);

/// Where a failure happened, as far as the engine knows. -1 = unknown.
struct FailureInfo {
  FailureKind kind = FailureKind::kNone;
  i32 hart = -1;   // faulting hart (-1: unknown or not hart-specific)
  i64 pc = -1;     // faulting pc
  i64 cycle = -1;  // cycle-engine cycle at the failure
};

struct RunReport {
  /// Version of the JSON serialization below. Bump on any key change and
  /// update tools/check_report_schema.py + the golden test in
  /// tests/test_api.cpp.
  /// v2: cluster support -- adds "num_cores", the per-core "cores" sections
  /// and the TCDM "out_of_range"/"top_banks" contention keys; every v1 key
  /// is unchanged (a num_cores=1 report matches a v1 report field-for-field
  /// apart from the new sections).
  /// v3: Xdma -- adds the "dma" section (transfers/bytes/busy_cycles/
  /// startup_cycles/tcdm_conflicts/queue_full_stalls/achieved
  /// bytes-per-cycle) and the "dma_full" stall key; every v2 key is
  /// unchanged (a DMA-free run reports an all-zero section).
  /// v4: robustness -- failed rows add a structured "failure" section
  /// (kind/hart/pc/cycle, -1 for unknown fields) next to the existing
  /// "error" message; ok rows are unchanged apart from the version bump.
  static constexpr i64 kSchemaVersion = 4;

  /// Per-core cycle-engine section of a cluster run.
  struct CoreReport {
    u64 cycles = 0;  // cycles the core was active (stops at its halt)
    double fpu_utilization = 0;
    sim::PerfCounters perf;
  };

  std::string name;     // workload label, e.g. "vecop/chained+frep"
  std::string kernel;   // registry name ("" for raw-program workloads)
  std::string variant;  // registry variant ("" for raw-program workloads)
  EngineSel engine = EngineSel::kCycle;

  bool ok = false;      // halted cleanly, validated, engines agreed
  std::string error;    // failure description when !ok
  FailureInfo failure;  // structured classification when !ok (schema v4)

  // Cycle-level engine results (zero when engine == kIss). With a cluster,
  // `cycles` is the cluster cycle count, `perf` aggregates all cores and
  // `fpu_utilization` is the per-core mean (total fpu_ops / (cycles *
  // num_cores)); the per-core breakdown lives in `cores`.
  u64 cycles = 0;
  double fpu_utilization = 0;
  sim::PerfCounters perf;
  u32 num_cores = 1;
  std::vector<CoreReport> cores;  // size num_cores when the cycle engine ran
  u64 tcdm_reads = 0;
  u64 tcdm_writes = 0;
  u64 tcdm_conflicts = 0;
  u64 tcdm_out_of_range = 0;
  /// Hottest banks by conflict count (bank index, conflicts), hottest
  /// first; at most 8 entries, zero-conflict banks omitted.
  std::vector<std::pair<u32, u64>> tcdm_top_banks;

  /// Cluster DMA engine activity (all zero when the workload issues no
  /// transfers or the cycle engine did not run).
  struct DmaReport {
    u64 transfers = 0;      // completed transfers
    u64 bytes = 0;          // bytes moved
    u64 busy_cycles = 0;    // cycles with >= 1 channel active
    u64 startup_cycles = 0; // CHANNEL-cycles spent in main-memory latency
                            // (can exceed busy_cycles when several harts'
                            // transfers start up concurrently)
    u64 tcdm_conflicts = 0; // beats denied by the bank arbiter
    u64 queue_full_stalls = 0;
    double achieved_bytes_per_cycle = 0;
  };
  DmaReport dma;
  energy::EnergyReport energy;

  // ISS results (zero when engine == kCycle).
  u64 iss_instructions = 0;

  // Validation.
  u64 mismatches = 0;           // golden-output mismatches
  u64 lockstep_mismatches = 0;  // kBoth: ISS-vs-cycle state divergences

  // Kernel bookkeeping (defaults for raw-program workloads).
  kernels::RegisterReport regs;
  u64 useful_flops = 0;

  // Host wall-clock of build + execute + validate. The only field that is
  // not deterministic across runs; comparisons must exclude it.
  double wall_s = 0;

  /// Versioned serialization ("schema": kSchemaVersion first). The scenario
  /// report writer appends its per-job echo (sizes/sim/repeat) to this
  /// object; benches embed it as-is.
  [[nodiscard]] Json to_json() const;
};

} // namespace sch::api
