#include "scenario/scenario.hpp"

#include <fstream>
#include <limits>
#include <sstream>

namespace sch::scenario {

namespace {

Status type_error(const std::string& where, const char* want) {
  return Status::error("scenario: " + where + " must be " + want);
}

/// Merge `over` on top of `base` (both objects); run-level keys win.
Json merge_objects(const Json& base, const Json& over) {
  Json out = Json::object();
  for (const auto& [k, v] : base.members()) {
    if (over.get(k) == nullptr) out.set(k, v);
  }
  for (const auto& [k, v] : over.members()) out.set(k, v);
  return out;
}

Result<kernels::SizeMap> parse_size_object(const Json& obj, usize run_index) {
  const std::string where = "runs[" + std::to_string(run_index) + "].sizes";
  if (!obj.is_object()) return type_error(where + "[]", "an object");
  kernels::SizeMap sizes;
  for (const auto& [k, v] : obj.members()) {
    if (!v.is_integer()) {
      return type_error(where + "." + k, "an integer");
    }
    sizes[k] = v.as_i64();
  }
  return sizes;
}

} // namespace

Result<RunSpec> parse_run_spec(const Json& run, usize index,
                               const Json& base_sim, u32 default_repeat) {
  const std::string where = "runs[" + std::to_string(index) + "]";
  if (!run.is_object()) return type_error(where, "an object");
  for (const auto& [k, _] : run.members()) {
    if (k != "kernel" && k != "variants" && k != "sizes" && k != "sim" &&
        k != "repeat") {
      return Status::error("scenario: " + where + ": unknown key \"" + k + "\"");
    }
  }

  RunSpec spec;
  const Json* kernel = run.get("kernel");
  if (kernel == nullptr || !kernel->is_string() || kernel->as_string().empty()) {
    return type_error(where + ".kernel", "a non-empty string");
  }
  spec.kernel = kernel->as_string();

  if (const Json* variants = run.get("variants")) {
    if (!variants->is_array()) return type_error(where + ".variants", "an array");
    for (const Json& v : variants->items()) {
      if (!v.is_string()) return type_error(where + ".variants[]", "a string");
      spec.variants.push_back(v.as_string());
    }
    if (spec.variants.empty()) {
      return type_error(where + ".variants", "a non-empty array");
    }
  }

  if (const Json* sizes = run.get("sizes")) {
    if (!sizes->is_array()) return type_error(where + ".sizes", "an array");
    for (const Json& s : sizes->items()) {
      Result<kernels::SizeMap> r = parse_size_object(s, index);
      if (!r.ok()) return r.status();
      spec.sizes.push_back(std::move(r).value());
    }
    if (spec.sizes.empty()) return type_error(where + ".sizes", "a non-empty array");
  }

  spec.repeat = default_repeat;
  if (const Json* repeat = run.get("repeat")) {
    if (!repeat->is_integer() || repeat->as_i64() < 1 ||
        repeat->as_i64() > 1000) {
      return type_error(where + ".repeat", "an integer in 1..1000");
    }
    spec.repeat = static_cast<u32>(repeat->as_i64());
  }

  const Json* run_sim = run.get("sim");
  if (run_sim != nullptr && !run_sim->is_object()) {
    return type_error(where + ".sim", "an object");
  }
  spec.sim = run_sim ? merge_objects(base_sim, *run_sim) : base_sim;

  // Validate override keys/types now so a bad scenario fails before any
  // simulation starts.
  sim::SimConfig probe;
  Status s = apply_sim_overrides(spec.sim, probe);
  if (!s.is_ok()) return Status::error(s.message() + " (in " + where + ")");
  return spec;
}

Result<Scenario> parse_scenario(const std::string& json_text) {
  Result<Json> doc = Json::parse(json_text);
  if (!doc.ok()) return doc.status();
  const Json root = std::move(doc).value();
  if (!root.is_object()) return type_error("document", "an object");
  for (const auto& [k, _] : root.members()) {
    if (k != "name" && k != "output" && k != "sim" && k != "repeat" &&
        k != "runs" && k != "verify") {
      return Status::error("scenario: unknown top-level key \"" + k + "\"");
    }
  }

  Scenario sc;
  const Json* name = root.get("name");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    return type_error("name", "a non-empty string");
  }
  sc.name = name->as_string();

  if (const Json* output = root.get("output")) {
    if (!output->is_string()) return type_error("output", "a string");
    sc.output = output->as_string();
  }

  if (const Json* verify = root.get("verify")) {
    if (!verify->is_string() ||
        (verify->as_string() != "off" && verify->as_string() != "warn" &&
         verify->as_string() != "strict")) {
      return type_error("verify", "\"off\", \"warn\" or \"strict\"");
    }
    sc.verify = verify->as_string();
  }

  Json base_sim = Json::object();
  if (const Json* sim = root.get("sim")) {
    if (!sim->is_object()) return type_error("sim", "an object");
    base_sim = *sim;
  }

  u32 default_repeat = 1;
  if (const Json* repeat = root.get("repeat")) {
    if (!repeat->is_integer() || repeat->as_i64() < 1 ||
        repeat->as_i64() > 1000) {
      return type_error("repeat", "an integer in 1..1000");
    }
    default_repeat = static_cast<u32>(repeat->as_i64());
  }

  const Json* runs = root.get("runs");
  if (runs == nullptr || !runs->is_array() || runs->items().empty()) {
    return type_error("runs", "a non-empty array");
  }
  for (usize i = 0; i < runs->items().size(); ++i) {
    Result<RunSpec> r =
        parse_run_spec(runs->items()[i], i, base_sim, default_repeat);
    if (!r.ok()) return r.status();
    sc.runs.push_back(std::move(r).value());
  }
  return sc;
}

Result<Scenario> load_scenario_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::error("scenario: cannot open " + path);
  std::stringstream ss;
  ss << file.rdbuf();
  Result<Scenario> r = parse_scenario(ss.str());
  if (!r.ok()) return Status::error(path + ": " + r.status().message());
  return r;
}

Status apply_sim_overrides(const Json& overrides, sim::SimConfig& config) {
  if (overrides.is_null()) return Status::ok();
  if (!overrides.is_object()) return type_error("sim", "an object");
  for (const auto& [key, v] : overrides.members()) {
    if (key == "strict_handoff") {
      if (!v.is_bool()) return type_error("sim." + key, "a bool");
      config.strict_chain_handoff = v.as_bool();
      continue;
    }
    const bool is_u64_key = key == "max_cycles" || key == "deadlock_cycles";
    const i64 min = key == "taken_branch_penalty" ? 0 : 1;
    // u32-destined keys must be representable: a silently-truncated
    // override would configure a different simulator than the report echoes.
    const i64 max = is_u64_key   ? std::numeric_limits<i64>::max()
                    : key == "cores" ? sim::SimConfig::kMaxCores
                                     : 0xFFFFFFFFll;
    if (!v.is_integer() || v.as_i64() < min || v.as_i64() > max) {
      return type_error("sim." + key, min == 0 ? "a non-negative integer"
                                               : "a positive integer in range");
    }
    const u64 n = static_cast<u64>(v.as_i64());
    if (key == "fpu_depth") config.fpu_depth = static_cast<u32>(n);
    else if (key == "fdiv_latency") config.fdiv_latency = static_cast<u32>(n);
    else if (key == "fsqrt_latency") config.fsqrt_latency = static_cast<u32>(n);
    else if (key == "int_mul_latency") config.int_mul_latency = static_cast<u32>(n);
    else if (key == "int_div_latency") config.int_div_latency = static_cast<u32>(n);
    else if (key == "fp_queue_depth") config.fp_queue_depth = static_cast<u32>(n);
    else if (key == "seq_buffer_depth") config.seq_buffer_depth = static_cast<u32>(n);
    else if (key == "load_latency") config.load_latency = static_cast<u32>(n);
    else if (key == "main_mem_latency") config.main_mem_latency = static_cast<u32>(n);
    else if (key == "main_mem_bytes_per_cycle") config.main_mem_bytes_per_cycle = static_cast<u32>(n);
    else if (key == "dma_queue_depth") config.dma_queue_depth = static_cast<u32>(n);
    else if (key == "taken_branch_penalty") config.taken_branch_penalty = static_cast<u32>(n);
    else if (key == "tcdm_banks") config.tcdm.num_banks = static_cast<u32>(n);
    else if (key == "cores") config.num_cores = static_cast<u32>(n);
    else if (key == "max_cycles") config.max_cycles = n;
    else if (key == "deadlock_cycles") config.deadlock_cycles = n;
    else {
      return Status::error("scenario: unknown sim override \"" + key + "\"");
    }
  }
  return Status::ok();
}

} // namespace sch::scenario
