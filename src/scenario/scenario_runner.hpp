// Batch execution of an expanded scenario: every job is a self-contained
// build + simulate + validate, fanned out across the same std::thread
// worker-pool pattern as bench::run_stencil_sweep, with results landing in
// deterministic per-job slots (report order never depends on scheduling).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "kernels/registry.hpp"
#include "kernels/runner.hpp"
#include "scenario/scenario.hpp"

namespace sch::scenario {

/// One fully-resolved simulation job.
struct Job {
  const kernels::KernelEntry* kernel = nullptr;
  std::string variant;
  kernels::SizeMap sizes;  // registry defaults + scenario overrides
  sim::SimConfig config;
  Json sim_echo;           // the override object, echoed into the report
  u32 repeat_index = 0;
};

struct JobResult {
  kernels::RunResult run;
  kernels::RegisterReport regs;
  u64 useful_flops = 0;
  double wall_s = 0;  // host wall-clock of build + simulate + validate
};

/// Expand kernel x variants x sizes x repeat, in file order. Unknown
/// kernels, variants and size-parameter names are errors.
Result<std::vector<Job>> expand(const Scenario& scenario);

/// Worker threads for `jobs` configurations: SCH_SWEEP_THREADS when set,
/// else hardware concurrency, capped at the job count.
u32 worker_count(u32 jobs);

/// Run all jobs on the worker pool; results[i] corresponds to jobs[i]. A
/// job whose build throws or whose output mismatches the golden reports
/// ok=false with the error message -- it never aborts the batch.
std::vector<JobResult> run_jobs(const std::vector<Job>& jobs);

/// Assemble the machine-readable report (BENCH_*.json-compatible shape).
Json make_report(const Scenario& scenario, const std::vector<Job>& jobs,
                 const std::vector<JobResult>& results);

struct ScenarioOutcome {
  u32 jobs = 0;
  u32 failures = 0;
  std::string report_path;
};

/// Load + expand + run + report in one call (the `schsim run` entry point).
/// `output_override`, when non-empty, wins over the scenario's "output";
/// otherwise "" derives BENCH_scenario_<name>.json. Progress lines go to
/// `log`.
Result<ScenarioOutcome> run_scenario_file(const std::string& path,
                                          const std::string& output_override,
                                          std::ostream& log);

} // namespace sch::scenario
