// Batch execution of an expanded scenario through the unified execution
// engine: every job becomes one api::RunRequest, the batch goes through
// api::Engine::submit on the shared worker pool, and reports come back in
// deterministic per-job order (report order never depends on scheduling).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "api/build_cache.hpp"
#include "api/engine.hpp"
#include "kernels/registry.hpp"
#include "scenario/scenario.hpp"

namespace sch::scenario {

/// One fully-resolved simulation job.
struct Job {
  const kernels::KernelEntry* kernel = nullptr;
  std::string variant;
  kernels::SizeMap sizes;  // registry defaults + scenario overrides
  sim::SimConfig config;
  Json sim_echo;           // the override object, echoed into the report
  u32 repeat_index = 0;
  /// Scenario-wide static-verification policy (see Scenario::verify).
  api::VerifyPolicy verify = api::VerifyPolicy::kOff;
};

/// Expand kernel x variants x sizes x repeat, in file order. Unknown
/// kernels, variants and size-parameter names are errors.
Result<std::vector<Job>> expand(const Scenario& scenario);

/// Translate one job into the engine vocabulary. `cache` (borrowed,
/// nullable, must outlive the run) lets repeated shapes share one build.
api::RunRequest to_request(const Job& job,
                           api::EngineSel engine = api::EngineSel::kCycle,
                           api::BuildCache* cache = nullptr);

/// Submit all jobs to `engine`; reports[i] corresponds to jobs[i]. A job
/// whose build throws or whose output mismatches the golden reports
/// ok=false with the error message -- it never aborts the batch.
std::vector<api::RunReport> run_jobs(const std::vector<Job>& jobs,
                                     api::Engine& engine,
                                     api::EngineSel engine_sel = api::EngineSel::kCycle,
                                     api::BuildCache* cache = nullptr);

/// The sizes echo object used in report rows ({"n": 256, ...}); exposed for
/// the serve layer's streamed report lines.
Json sizes_to_json(const kernels::SizeMap& sizes);

/// Same, on the process-wide api::default_engine().
std::vector<api::RunReport> run_jobs(const std::vector<Job>& jobs);

/// Assemble the machine-readable report: per-job RunReport::to_json() rows
/// (the versioned schema) plus the job echo (sizes/sim/repeat).
Json make_report(const Scenario& scenario, const std::vector<Job>& jobs,
                 const std::vector<api::RunReport>& reports, u32 workers);

struct ScenarioOutcome {
  u32 jobs = 0;
  u32 failures = 0;
  std::string report_path;
};

/// Front-end knobs forwarded by `schsim run`.
struct ScenarioRunOptions {
  std::string output_override;  // non-empty wins over the scenario's "output"
  u32 threads = 0;              // 0 => SCH_SWEEP_THREADS / hw concurrency
  api::EngineSel engine = api::EngineSel::kCycle;
  /// Non-zero forces every job's cluster core count (`--cores N`), winning
  /// over any scenario "cores" override.
  u32 cores_override = 0;
  /// Non-zero forces every job's main-memory latency (`--mem-latency N`) /
  /// bandwidth in bytes per cycle (`--mem-bw N`), winning over scenario
  /// "main_mem_latency" / "main_mem_bytes_per_cycle" overrides.
  u32 mem_latency_override = 0;
  u32 mem_bw_override = 0;
  /// Consult the process-wide build cache (api::default_build_cache()) for
  /// registry builds, so repeated shapes within a sweep -- and across sweeps
  /// in one process -- skip kernel build + predecode. `--no-cache` clears it
  /// (bit-identical reports either way; the determinism suite pins this).
  bool use_cache = true;
};

/// Load + expand + run + report in one call (the `schsim run` entry point).
/// When `options.output_override` and the scenario's "output" are both
/// empty, derives "BENCH_scenario_<name>.json". Progress lines go to `log`.
Result<ScenarioOutcome> run_scenario_file(const std::string& path,
                                          const ScenarioRunOptions& options,
                                          std::ostream& log);

} // namespace sch::scenario
