// Declarative scenario files: one JSON document describes a batch of
// simulations (kernel x variants x sizes x sim-config overrides x repeat)
// that the runner expands into a deterministic job list. Schema:
//
//   {
//     "name": "smoke",                 // report label (required)
//     "output": "report.json",         // default report path (optional)
//     "sim": { "fpu_depth": 3 },       // base overrides for every run (opt)
//     "repeat": 1,                     // default repeat count (optional)
//     "runs": [                        // at least one run
//       {
//         "kernel": "axpy",            // registry name (required)
//         "variants": ["baseline", "chained"],  // default: all registered
//         "sizes": [{"n": 256}, {"n": 1024}],   // default: registry defaults
//         "sim": { "fpu_depth": 5 },   // merged over the base overrides
//         "repeat": 3                  // timing repeats of each job
//       }
//     ]
//   }
//
// `//` line comments are allowed (see scenario/json.hpp). Sim-config
// override keys are validated against a fixed table (scenario.cpp); unknown
// keys, kernels, variants and size parameters are hard errors, not silent
// no-ops.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "kernels/registry.hpp"
#include "scenario/json.hpp"
#include "sim/sim_config.hpp"

namespace sch::scenario {

/// One `runs[]` entry, unexpanded.
struct RunSpec {
  std::string kernel;
  std::vector<std::string> variants;    // empty => all registered variants
  std::vector<kernels::SizeMap> sizes;  // empty => registered defaults
  u32 repeat = 1;
  Json sim;  // merged base+run override object (possibly empty object)
};

struct Scenario {
  std::string name;
  std::string output;  // "" => caller derives a path
  /// Static-verification policy applied to every job: "" or "off" (skip),
  /// "warn" (analyze, report findings, still run), "strict" (error findings
  /// fail the job before execution). Top-level `"verify"` key.
  std::string verify;
  std::vector<RunSpec> runs;
};

/// Parse and structurally validate a scenario document.
Result<Scenario> parse_scenario(const std::string& json_text);

/// Parse and validate one `runs[]`-shaped object (strict unknown-key
/// rejection, sim-override probe). `index` only labels error messages;
/// `base_sim` is merged under the entry's own "sim". Exposed for the serve
/// layer, whose NDJSON run requests carry the same shape inline.
Result<RunSpec> parse_run_spec(const Json& run, usize index,
                               const Json& base_sim, u32 default_repeat);

/// Read `path` and parse it.
Result<Scenario> load_scenario_file(const std::string& path);

/// Apply a `"sim"` override object onto `config`. Accepted keys:
/// fpu_depth, fdiv_latency, fsqrt_latency, int_mul_latency,
/// int_div_latency, fp_queue_depth, seq_buffer_depth, load_latency,
/// main_mem_latency, main_mem_bytes_per_cycle, dma_queue_depth,
/// taken_branch_penalty, tcdm_banks, cores (cluster cores,
/// 1..SimConfig::kMaxCores), max_cycles, deadlock_cycles (integers)
/// and strict_handoff (bool). Unknown keys or wrong types are errors.
Status apply_sim_overrides(const Json& overrides, sim::SimConfig& config);

} // namespace sch::scenario
