// Minimal JSON document model for scenario files and machine-readable
// reports. The parser accepts strict JSON plus `//` line comments
// ("JSONC-lite") so the example scenarios under examples/scenarios/ can be
// annotated in place; the writer emits strict JSON (comments never survive
// a round trip). No external dependency: the container bakes in no JSON
// library, and the schema is small enough that one is not worth vendoring.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace sch::scenario {

class Json {
 public:
  enum class Type : u8 { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  /// Insertion-ordered: reports list fields in the order they were added,
  /// and scenario diagnostics match the file.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;                                // null
  Json(bool v) : type_(Type::kBool), bool_(v) {}   // NOLINT
  Json(i64 v) : type_(Type::kNumber), int_(v), num_(static_cast<double>(v)),
                is_integer_(true) {}               // NOLINT
  Json(int v) : Json(static_cast<i64>(v)) {}       // NOLINT
  Json(u64 v) : Json(static_cast<i64>(v)) {}       // NOLINT
  Json(double v) : type_(Type::kNumber), num_(v) {}        // NOLINT
  Json(std::string v) : type_(Type::kString), str_(std::move(v)) {} // NOLINT
  Json(const char* v) : Json(std::string(v)) {}    // NOLINT

  static Json array() { Json j; j.type_ = Type::kArray; return j; }
  static Json object() { Json j; j.type_ = Type::kObject; return j; }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  /// Number written without a fraction/exponent and representable as i64.
  [[nodiscard]] bool is_integer() const { return is_number() && is_integer_; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] i64 as_i64() const { return is_integer_ ? int_ : static_cast<i64>(num_); }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const Array& items() const { return array_; }
  [[nodiscard]] const Object& members() const { return object_; }

  /// Object lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* get(const std::string& key) const;

  /// Append to an array value.
  void push_back(Json v) { array_.push_back(std::move(v)); }
  /// Append a member to an object value (no duplicate check).
  void set(std::string key, Json v) {
    object_.emplace_back(std::move(key), std::move(v));
  }

  /// Parse text (strict JSON + // line comments). Errors carry line:column.
  static Result<Json> parse(const std::string& text);

  /// Serialize as strict JSON. indent > 0 pretty-prints.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  i64 int_ = 0;
  double num_ = 0;
  bool is_integer_ = false;
  std::string str_;
  Array array_;
  Object object_;

  void dump_to(std::string& out, int indent, int depth) const;
};

} // namespace sch::scenario
