#include "scenario/scenario_runner.hpp"

#include <fstream>
#include <optional>
#include <ostream>
#include <stdexcept>

namespace sch::scenario {

Json sizes_to_json(const kernels::SizeMap& sizes) {
  Json o = Json::object();
  for (const auto& [k, v] : sizes) o.set(k, v);
  return o;
}

Result<std::vector<Job>> expand(const Scenario& scenario) {
  std::vector<Job> jobs;
  api::VerifyPolicy verify = api::VerifyPolicy::kOff;
  if (scenario.verify == "warn") verify = api::VerifyPolicy::kWarn;
  if (scenario.verify == "strict") verify = api::VerifyPolicy::kStrict;
  const kernels::Registry& registry = kernels::Registry::instance();
  for (usize i = 0; i < scenario.runs.size(); ++i) {
    const RunSpec& spec = scenario.runs[i];
    const std::string where = "runs[" + std::to_string(i) + "]";
    const kernels::KernelEntry* entry = registry.find(spec.kernel);
    if (entry == nullptr) {
      return Status::error("scenario: " + where + ": unknown kernel \"" +
                           spec.kernel + "\" (see `schsim list-kernels`)");
    }
    const std::vector<std::string>& variants =
        spec.variants.empty() ? entry->variants : spec.variants;
    for (const std::string& variant : variants) {
      if (!entry->has_variant(variant)) {
        return Status::error("scenario: " + where + ": kernel \"" +
                             spec.kernel + "\" has no variant \"" + variant +
                             "\"");
      }
    }

    std::vector<kernels::SizeMap> sizes;
    if (spec.sizes.empty()) {
      sizes.push_back(entry->resolve_sizes({}));
    } else {
      for (const kernels::SizeMap& s : spec.sizes) {
        try {
          sizes.push_back(entry->resolve_sizes(s));
        } catch (const std::invalid_argument& e) {
          return Status::error("scenario: " + where + ": " + e.what());
        }
      }
    }

    sim::SimConfig config;
    Status st = apply_sim_overrides(spec.sim, config);
    if (!st.is_ok()) return st; // already validated at parse; belt-and-braces

    for (const kernels::SizeMap& size : sizes) {
      for (const std::string& variant : variants) {
        for (u32 rep = 0; rep < spec.repeat; ++rep) {
          jobs.push_back(
              Job{entry, variant, size, config, spec.sim, rep, verify});
        }
      }
    }
  }
  return jobs;
}

api::RunRequest to_request(const Job& job, api::EngineSel engine,
                           api::BuildCache* cache) {
  api::RunRequest request =
      api::RunRequest::for_kernel(job.kernel->name, job.variant, job.sizes, engine);
  request.config = job.config;
  request.verify = job.verify;
  request.cache = cache;
  return request;
}

std::vector<api::RunReport> run_jobs(const std::vector<Job>& jobs,
                                     api::Engine& engine,
                                     api::EngineSel engine_sel,
                                     api::BuildCache* cache) {
  std::vector<api::RunRequest> requests;
  requests.reserve(jobs.size());
  for (const Job& job : jobs) {
    requests.push_back(to_request(job, engine_sel, cache));
  }
  return engine.run_batch(std::move(requests));
}

std::vector<api::RunReport> run_jobs(const std::vector<Job>& jobs) {
  return run_jobs(jobs, api::default_engine(), api::EngineSel::kCycle);
}

Json make_report(const Scenario& scenario, const std::vector<Job>& jobs,
                 const std::vector<api::RunReport>& reports, u32 workers) {
  Json report = Json::object();
  report.set("bench", "scenario");
  report.set("schema", api::RunReport::kSchemaVersion);
  report.set("scenario", scenario.name);
  report.set("jobs", static_cast<i64>(jobs.size()));
  i64 failures = 0;
  for (const api::RunReport& r : reports) {
    if (!r.ok) ++failures;
  }
  report.set("failures", failures);
  report.set("workers", static_cast<i64>(workers));

  Json rows = Json::array();
  for (usize i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    Json row = reports[i].to_json();
    row.set("sizes", sizes_to_json(job.sizes));
    row.set("sim", job.sim_echo.is_object() ? job.sim_echo : Json::object());
    row.set("repeat", static_cast<i64>(job.repeat_index));
    rows.push_back(std::move(row));
  }
  report.set("results", std::move(rows));
  return report;
}

Result<ScenarioOutcome> run_scenario_file(const std::string& path,
                                          const ScenarioRunOptions& options,
                                          std::ostream& log) {
  Result<Scenario> sc = load_scenario_file(path);
  if (!sc.ok()) return sc.status();
  const Scenario scenario = std::move(sc).value();

  Result<std::vector<Job>> expanded = expand(scenario);
  if (!expanded.ok()) return expanded.status();
  std::vector<Job> jobs = std::move(expanded).value();
  if (options.cores_override != 0) {
    for (Job& job : jobs) job.config.num_cores = options.cores_override;
  }
  if (options.mem_latency_override != 0) {
    for (Job& job : jobs) job.config.main_mem_latency = options.mem_latency_override;
  }
  if (options.mem_bw_override != 0) {
    for (Job& job : jobs) {
      job.config.main_mem_bytes_per_cycle = options.mem_bw_override;
    }
  }

  // --threads builds a dedicated engine; otherwise the process-wide shared
  // pool (SCH_SWEEP_THREADS / hardware concurrency) serves the batch.
  std::optional<api::Engine> own_engine;
  if (options.threads != 0) {
    own_engine.emplace(api::EngineConfig{.threads = options.threads});
  }
  api::Engine& engine = own_engine ? *own_engine : api::default_engine();
  // The pool grows one worker per submission, so a small batch never uses
  // more workers than it has jobs; report the effective width.
  const u32 workers = engine.worker_count() < jobs.size()
                          ? engine.worker_count()
                          : static_cast<u32>(jobs.size());

  log << "scenario '" << scenario.name << "': " << jobs.size() << " jobs on "
      << workers << " workers (engine: " << api::engine_name(options.engine);
  if (options.cores_override != 0) log << ", cores: " << options.cores_override;
  log << ")\n";
  const std::vector<api::RunReport> reports = run_jobs(
      jobs, engine, options.engine,
      options.use_cache ? &api::default_build_cache() : nullptr);

  ScenarioOutcome outcome;
  outcome.jobs = static_cast<u32>(jobs.size());
  for (usize i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const api::RunReport& r = reports[i];
    log << (r.ok ? "  ok   " : "  FAIL ") << job.kernel->name << "/"
        << job.variant;
    for (const auto& [k, v] : job.sizes) log << " " << k << "=" << v;
    if (job.repeat_index != 0) log << " rep=" << job.repeat_index;
    if (r.ok) {
      if (options.engine == api::EngineSel::kIss) {
        log << ": " << r.iss_instructions << " instructions";
      } else {
        log << ": " << r.cycles << " cycles, util "
            << static_cast<int>(r.fpu_utilization * 1000) / 1000.0;
      }
    } else {
      log << ": [" << api::failure_kind_name(r.failure.kind) << "] "
          << r.error;
      ++outcome.failures;
    }
    log << "\n";
  }

  outcome.report_path = !options.output_override.empty()
                            ? options.output_override
                        : !scenario.output.empty()
                            ? scenario.output
                            : "BENCH_scenario_" + scenario.name + ".json";
  std::ofstream os(outcome.report_path);
  if (!os) {
    return Status::error("scenario: cannot write " + outcome.report_path);
  }
  os << make_report(scenario, jobs, reports, workers).dump(2) << "\n";
  log << "wrote " << outcome.report_path << "\n";
  return outcome;
}

} // namespace sch::scenario
