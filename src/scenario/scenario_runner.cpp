#include "scenario/scenario_runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <thread>

namespace sch::scenario {

namespace {

using Clock = std::chrono::steady_clock;

Json stalls_json(const sim::PerfCounters& p) {
  Json o = Json::object();
  o.set("fp_raw", p.stall_fp_raw);
  o.set("fp_waw", p.stall_fp_waw);
  o.set("chain_empty", p.stall_chain_empty);
  o.set("chain_full", p.stall_chain_full);
  o.set("ssr_empty", p.stall_ssr_empty);
  o.set("ssr_wfull", p.stall_ssr_wfull);
  o.set("fpu_busy", p.stall_fpu_busy);
  o.set("fp_lsu", p.stall_fp_lsu);
  o.set("offload_full", p.stall_offload_full);
  o.set("int_raw", p.stall_int_raw);
  o.set("int_lsu", p.stall_int_lsu);
  o.set("csr_barrier", p.stall_csr_barrier);
  o.set("branch_bubbles", p.branch_bubbles);
  return o;
}

Json sizes_json(const kernels::SizeMap& sizes) {
  Json o = Json::object();
  for (const auto& [k, v] : sizes) o.set(k, v);
  return o;
}

} // namespace

Result<std::vector<Job>> expand(const Scenario& scenario) {
  std::vector<Job> jobs;
  const kernels::Registry& registry = kernels::Registry::instance();
  for (usize i = 0; i < scenario.runs.size(); ++i) {
    const RunSpec& spec = scenario.runs[i];
    const std::string where = "runs[" + std::to_string(i) + "]";
    const kernels::KernelEntry* entry = registry.find(spec.kernel);
    if (entry == nullptr) {
      return Status::error("scenario: " + where + ": unknown kernel \"" +
                           spec.kernel + "\" (see `schsim list-kernels`)");
    }
    const std::vector<std::string>& variants =
        spec.variants.empty() ? entry->variants : spec.variants;
    for (const std::string& variant : variants) {
      if (!entry->has_variant(variant)) {
        return Status::error("scenario: " + where + ": kernel \"" +
                             spec.kernel + "\" has no variant \"" + variant +
                             "\"");
      }
    }

    std::vector<kernels::SizeMap> sizes;
    if (spec.sizes.empty()) {
      sizes.push_back(entry->resolve_sizes({}));
    } else {
      for (const kernels::SizeMap& s : spec.sizes) {
        try {
          sizes.push_back(entry->resolve_sizes(s));
        } catch (const std::invalid_argument& e) {
          return Status::error("scenario: " + where + ": " + e.what());
        }
      }
    }

    sim::SimConfig config;
    Status st = apply_sim_overrides(spec.sim, config);
    if (!st.is_ok()) return st; // already validated at parse; belt-and-braces

    for (const kernels::SizeMap& size : sizes) {
      for (const std::string& variant : variants) {
        for (u32 rep = 0; rep < spec.repeat; ++rep) {
          jobs.push_back(Job{entry, variant, size, config, spec.sim, rep});
        }
      }
    }
  }
  return jobs;
}

u32 worker_count(u32 jobs) {
  if (const char* env = std::getenv("SCH_SWEEP_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<u32>(n) < jobs ? static_cast<u32>(n) : jobs;
  }
  u32 hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return hw < jobs ? hw : jobs;
}

std::vector<JobResult> run_jobs(const std::vector<Job>& jobs) {
  std::vector<JobResult> out(jobs.size());
  std::atomic<usize> next{0};
  auto work = [&] {
    for (usize i = next.fetch_add(1); i < jobs.size(); i = next.fetch_add(1)) {
      const Job& job = jobs[i];
      JobResult r;
      const auto t0 = Clock::now();
      try {
        const kernels::BuiltKernel k = job.kernel->build(job.variant, job.sizes);
        r.regs = k.regs;
        r.useful_flops = k.useful_flops;
        r.run = kernels::run_on_simulator(k, job.config);
      } catch (const std::exception& e) {
        r.run.ok = false;
        r.run.error = job.kernel->name + "/" + job.variant + ": " + e.what();
      }
      r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
      out[i] = std::move(r);
    }
  };
  const u32 workers = worker_count(static_cast<u32>(jobs.size()));
  std::vector<std::thread> pool;
  for (u32 t = 1; t < workers; ++t) pool.emplace_back(work);
  work();
  for (std::thread& t : pool) t.join();
  return out;
}

Json make_report(const Scenario& scenario, const std::vector<Job>& jobs,
                 const std::vector<JobResult>& results) {
  Json report = Json::object();
  report.set("bench", "scenario");
  report.set("scenario", scenario.name);
  report.set("jobs", static_cast<i64>(jobs.size()));
  i64 failures = 0;
  for (const JobResult& r : results) {
    if (!r.run.ok) ++failures;
  }
  report.set("failures", failures);
  report.set("workers", static_cast<i64>(worker_count(static_cast<u32>(jobs.size()))));

  Json rows = Json::array();
  for (usize i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const JobResult& r = results[i];
    Json row = Json::object();
    row.set("kernel", job.kernel->name);
    row.set("variant", job.variant);
    row.set("sizes", sizes_json(job.sizes));
    row.set("sim", job.sim_echo.is_object() ? job.sim_echo : Json::object());
    row.set("repeat", static_cast<i64>(job.repeat_index));
    row.set("ok", r.run.ok);
    if (!r.run.ok) row.set("error", r.run.error);
    row.set("cycles", r.run.cycles);
    row.set("retired", r.run.perf.total_retired());
    row.set("fpu_ops", r.run.perf.fpu_ops);
    row.set("fpu_utilization", r.run.fpu_utilization);
    row.set("useful_flops", r.useful_flops);
    row.set("stalls", stalls_json(r.run.perf));
    Json tcdm = Json::object();
    tcdm.set("reads", r.run.tcdm_reads);
    tcdm.set("writes", r.run.tcdm_writes);
    tcdm.set("conflicts", r.run.tcdm_conflicts);
    row.set("tcdm", std::move(tcdm));
    Json energy = Json::object();
    energy.set("power_mw", r.run.energy.power_mw);
    energy.set("energy_per_cycle_pj", r.run.energy.energy_per_cycle_pj);
    energy.set("fpu_ops_per_joule", r.run.energy.fpu_ops_per_joule);
    row.set("energy", std::move(energy));
    Json regs = Json::object();
    regs.set("fp_used", static_cast<i64>(r.regs.fp_regs_used));
    regs.set("accumulator", static_cast<i64>(r.regs.accumulator_regs));
    regs.set("chained", static_cast<i64>(r.regs.chained_regs));
    regs.set("ssr", static_cast<i64>(r.regs.ssr_regs));
    row.set("regs", std::move(regs));
    row.set("wall_s", r.wall_s);
    rows.push_back(std::move(row));
  }
  report.set("results", std::move(rows));
  return report;
}

Result<ScenarioOutcome> run_scenario_file(const std::string& path,
                                          const std::string& output_override,
                                          std::ostream& log) {
  Result<Scenario> sc = load_scenario_file(path);
  if (!sc.ok()) return sc.status();
  const Scenario scenario = std::move(sc).value();

  Result<std::vector<Job>> expanded = expand(scenario);
  if (!expanded.ok()) return expanded.status();
  const std::vector<Job> jobs = std::move(expanded).value();

  log << "scenario '" << scenario.name << "': " << jobs.size() << " jobs on "
      << worker_count(static_cast<u32>(jobs.size())) << " workers\n";
  const std::vector<JobResult> results = run_jobs(jobs);

  ScenarioOutcome outcome;
  outcome.jobs = static_cast<u32>(jobs.size());
  for (usize i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const JobResult& r = results[i];
    log << (r.run.ok ? "  ok   " : "  FAIL ") << job.kernel->name << "/"
        << job.variant;
    for (const auto& [k, v] : job.sizes) log << " " << k << "=" << v;
    if (job.repeat_index != 0) log << " rep=" << job.repeat_index;
    if (r.run.ok) {
      log << ": " << r.run.cycles << " cycles, util "
          << static_cast<int>(r.run.fpu_utilization * 1000) / 1000.0;
    } else {
      log << ": " << r.run.error;
      ++outcome.failures;
    }
    log << "\n";
  }

  outcome.report_path = !output_override.empty() ? output_override
                        : !scenario.output.empty()
                            ? scenario.output
                            : "BENCH_scenario_" + scenario.name + ".json";
  std::ofstream os(outcome.report_path);
  if (!os) {
    return Status::error("scenario: cannot write " + outcome.report_path);
  }
  os << make_report(scenario, jobs, results).dump(2) << "\n";
  log << "wrote " << outcome.report_path << "\n";
  return outcome;
}

} // namespace sch::scenario
