#include "scenario/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sch::scenario {

namespace {

constexpr int kMaxDepth = 64;

/// Recursive-descent parser over the raw text with line/column tracking.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> parse() {
    Json root;
    Status s = value(root, 0);
    if (!s.is_ok()) return s;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content after document");
    return root;
  }

 private:
  const std::string& text_;
  usize pos_ = 0;
  u32 line_ = 1;
  u32 col_ = 1;

  [[nodiscard]] Status fail(const std::string& what) const {
    return Status::error("json: " + std::to_string(line_) + ":" +
                         std::to_string(col_) + ": " + what);
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (!eof() && peek() != '\n') advance();
      } else {
        break;
      }
    }
  }

  Status expect(char c) {
    if (eof() || peek() != c) {
      return fail(std::string("expected '") + c + "'");
    }
    advance();
    return Status::ok();
  }

  bool consume_literal(const char* lit) {
    const usize n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    for (usize i = 0; i < n; ++i) advance();
    return true;
  }

  Status value(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (eof()) return fail("unexpected end of input");
    const char c = peek();
    if (c == '{') return object(out, depth);
    if (c == '[') return array(out, depth);
    if (c == '"') {
      std::string s;
      Status st = string(s);
      if (!st.is_ok()) return st;
      out = Json(std::move(s));
      return Status::ok();
    }
    if (consume_literal("true")) {
      out = Json(true);
      return Status::ok();
    }
    if (consume_literal("false")) {
      out = Json(false);
      return Status::ok();
    }
    if (consume_literal("null")) {
      out = Json();
      return Status::ok();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return number(out);
    return fail(std::string("unexpected character '") + c + "'");
  }

  Status object(Json& out, int depth) {
    Status s = expect('{');
    if (!s.is_ok()) return s;
    out = Json::object();
    skip_ws();
    if (!eof() && peek() == '}') {
      advance();
      return Status::ok();
    }
    while (true) {
      skip_ws();
      std::string key;
      s = string(key);
      if (!s.is_ok()) return s;
      skip_ws();
      s = expect(':');
      if (!s.is_ok()) return s;
      Json v;
      s = value(v, depth + 1);
      if (!s.is_ok()) return s;
      if (out.get(key) != nullptr) return fail("duplicate key \"" + key + "\"");
      out.set(std::move(key), std::move(v));
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        advance();
        continue;
      }
      return expect('}');
    }
  }

  Status array(Json& out, int depth) {
    Status s = expect('[');
    if (!s.is_ok()) return s;
    out = Json::array();
    skip_ws();
    if (!eof() && peek() == ']') {
      advance();
      return Status::ok();
    }
    while (true) {
      Json v;
      s = value(v, depth + 1);
      if (!s.is_ok()) return s;
      out.push_back(std::move(v));
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        advance();
        continue;
      }
      return expect(']');
    }
  }

  Status string(std::string& out) {
    if (eof() || peek() != '"') return fail("expected string");
    advance();
    out.clear();
    while (true) {
      if (eof()) return fail("unterminated string");
      const char c = advance();
      if (c == '"') return Status::ok();
      if (c == '\\') {
        if (eof()) return fail("unterminated escape");
        const char e = advance();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            u32 code = 0;
            for (int i = 0; i < 4; ++i) {
              if (eof()) return fail("unterminated \\u escape");
              const char h = advance();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<u32>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<u32>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<u32>(h - 'A' + 10);
              else return fail("bad \\u escape digit");
            }
            // UTF-8 encode the BMP code point (surrogate pairs unsupported;
            // scenario files are ASCII in practice).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail(std::string("bad escape '\\") + e + "'");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      } else {
        out += c;
      }
    }
  }

  Status number(Json& out) {
    const usize start = pos_;
    bool integral = true;
    if (!eof() && peek() == '-') advance();
    while (!eof() && peek() >= '0' && peek() <= '9') advance();
    if (!eof() && peek() == '.') {
      integral = false;
      advance();
      while (!eof() && peek() >= '0' && peek() <= '9') advance();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      advance();
      if (!eof() && (peek() == '+' || peek() == '-')) advance();
      while (!eof() && peek() >= '0' && peek() <= '9') advance();
    }
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    if (integral) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end != token.c_str() + token.size() || errno == ERANGE) {
        return fail("bad integer '" + token + "'");
      }
      out = Json(static_cast<i64>(v));
      return Status::ok();
    }
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      return fail("bad number '" + token + "'");
    }
    out = Json(v);
    return Status::ok();
  }
};

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

} // namespace

const Json* Json::get(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<Json> Json::parse(const std::string& text) {
  return Parser(text).parse();
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<usize>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: {
      char buf[40];
      if (is_integer_) {
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(int_));
      } else if (std::isfinite(num_)) {
        std::snprintf(buf, sizeof buf, "%.17g", num_);
      } else {
        std::snprintf(buf, sizeof buf, "null"); // JSON has no inf/nan
      }
      out += buf;
      break;
    }
    case Type::kString: append_quoted(out, str_); break;
    case Type::kArray: {
      out += '[';
      for (usize i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (usize i = 0; i < object_.size(); ++i) {
        if (i != 0) out += ',';
        newline(depth + 1);
        append_quoted(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

} // namespace sch::scenario
