#include "energy/activity.hpp"

namespace sch::energy {

ActivityCounts collect_activity(const sim::Simulator& simulator) {
  ActivityCounts a;
  // TCDM stats are cluster-shared; streamer/chain/sequencer activity is
  // per core and summed across the cluster.
  const TcdmStats& t = simulator.tcdm().stats();
  a.tcdm_reads = t.reads;
  a.tcdm_writes = t.writes;
  for (u32 h = 0; h < simulator.num_cores(); ++h) {
    const sim::FpSubsystem& fp = simulator.core_at(h).fp();
    for (u32 i = 0; i < ssr::kNumSsrs; ++i) {
      const ssr::Streamer::Stats& s = fp.streamer(i).stats();
      a.ssr_elements += s.elements_popped + s.elements_pushed;
    }
    const chain::ChainUnit::Stats& c = fp.chain().stats();
    a.chain_ops += c.pushes + c.pops;
    a.seq_replays += fp.sequencer().stats().replayed_ops;
  }
  return a;
}

EnergyReport evaluate_run(const sim::Simulator& simulator,
                          const EnergyConfig& config) {
  return evaluate(simulator.perf(), collect_activity(simulator), config);
}

} // namespace sch::energy
