#include "energy/activity.hpp"

namespace sch::energy {

ActivityCounts collect_activity(const sim::Simulator& simulator) {
  ActivityCounts a;
  const TcdmStats& t = simulator.tcdm().stats();
  a.tcdm_reads = t.reads;
  a.tcdm_writes = t.writes;
  for (u32 i = 0; i < ssr::kNumSsrs; ++i) {
    const ssr::Streamer::Stats& s = simulator.fp().streamer(i).stats();
    a.ssr_elements += s.elements_popped + s.elements_pushed;
  }
  const chain::ChainUnit::Stats& c = simulator.fp().chain().stats();
  a.chain_ops = c.pushes + c.pops;
  a.seq_replays = simulator.fp().sequencer().stats().replayed_ops;
  return a;
}

EnergyReport evaluate_run(const sim::Simulator& simulator,
                          const EnergyConfig& config) {
  return evaluate(simulator.perf(), collect_activity(simulator), config);
}

} // namespace sch::energy
