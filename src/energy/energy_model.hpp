// Event-based energy/power model -- the substitute for the paper's
// post-layout PrimeTime power estimation (DESIGN.md §1). Every energy is a
// per-event cost in picojoules at the paper's operating point (GF 12LP+,
// 0.8 V, 25 °C, 1 GHz). Absolute values are calibrated to land the modeled
// Snitch core in its published ~60 mW envelope; *differences* between kernel
// variants come entirely from event-count differences (L1 accesses, RF
// accesses, FPU ops, idle cycles), which is the quantity the paper compares.
#pragma once

#include <string>

#include "mem/tcdm.hpp"
#include "sim/perf.hpp"

namespace sch::energy {

struct EnergyConfig {
  double f_clk_hz = 1e9;

  // Always-on per-cycle cost (clock tree, fetch, control). Calibrated so the
  // modeled core lands in the paper's measured 59.5-63.2 mW band across the
  // ten stencil runs (PrimeTime, GF12LP+, 0.8 V, 1 GHz).
  double e_cycle_base_pj = 16.7;
  // Static (leakage) power.
  double p_static_mw = 6.5;

  // Integer side.
  double e_int_issue_pj = 1.0;   // decode/issue slot activity
  double e_int_alu_pj = 1.0;
  double e_int_mul_pj = 3.5;
  double e_int_div_pj = 12.0;
  double e_branch_pj = 0.8;
  double e_csr_pj = 0.8;

  // FP datapath (f64).
  double e_fp_mac_pj = 8.5;      // fma/add/mul through the pipelined FPU
  double e_fp_div_pj = 45.0;     // iterative op total
  double e_fp_issue_pj = 1.3;    // FP issue/offload handling

  // Memory hierarchy (per 64-bit access incl. interconnect traversal).
  double e_tcdm_read_pj = 13.0;
  double e_tcdm_write_pj = 14.0;
  double e_main_access_pj = 180.0; // bulk memory (unused by the kernels)

  // Register files.
  double e_rf_int_read_pj = 0.5;
  double e_rf_int_write_pj = 0.7;
  double e_rf_fp_read_pj = 0.85;
  double e_rf_fp_write_pj = 1.1;

  // Stream registers: datapath cost per element delivered/absorbed
  // (FIFO + address generation), on top of the TCDM access cost.
  double e_ssr_elem_pj = 0.6;

  // Chaining extension: pop/push handshake + valid-bit update. The paper's
  // point is that this replaces RF traffic, so it must be cheaper than an
  // RF read+write pair.
  double e_chain_op_pj = 0.35;

  // Sequencer: a replayed op skips integer-core fetch/issue; the ring
  // buffer read still costs a little.
  double e_seq_replay_pj = 0.4;
};

/// Event counts consumed by the model beyond PerfCounters.
struct ActivityCounts {
  u64 tcdm_reads = 0;
  u64 tcdm_writes = 0;
  u64 ssr_elements = 0;   // elements popped from read FIFOs + pushed to write FIFOs
  u64 chain_ops = 0;      // chain pushes + pops
  u64 seq_replays = 0;    // sequencer-replayed ops
};

struct EnergyBreakdown {
  double base_pj = 0;
  double static_pj = 0;
  double int_core_pj = 0;
  double fpu_pj = 0;
  double tcdm_pj = 0;
  double rf_pj = 0;
  double ssr_pj = 0;
  double chain_pj = 0;
  double total_pj = 0;
};

struct EnergyReport {
  EnergyBreakdown breakdown;
  double time_s = 0;
  double power_mw = 0;
  double energy_per_cycle_pj = 0;

  /// Energy efficiency in the paper's sense: useful FPU ops per joule.
  double fpu_ops_per_joule = 0;
};

/// Evaluate the model over a finished simulation's counters.
EnergyReport evaluate(const sim::PerfCounters& perf, const ActivityCounts& activity,
                      const EnergyConfig& config = {});

/// Multi-line human-readable report.
std::string format_report(const EnergyReport& report);

} // namespace sch::energy
