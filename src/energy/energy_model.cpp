#include "energy/energy_model.hpp"

#include <sstream>

namespace sch::energy {

EnergyReport evaluate(const sim::PerfCounters& perf,
                      const ActivityCounts& activity,
                      const EnergyConfig& cfg) {
  EnergyBreakdown b;
  const double cycles = static_cast<double>(perf.cycles);

  b.base_pj = cycles * cfg.e_cycle_base_pj;

  b.int_core_pj =
      static_cast<double>(perf.int_instrs + perf.offloads) * cfg.e_int_issue_pj +
      static_cast<double>(perf.int_alu_ops) * cfg.e_int_alu_pj +
      static_cast<double>(perf.int_mul_ops) * cfg.e_int_mul_pj +
      static_cast<double>(perf.int_div_ops) * cfg.e_int_div_pj +
      static_cast<double>(perf.branches) * cfg.e_branch_pj +
      static_cast<double>(perf.csr_ops) * cfg.e_csr_pj;

  b.fpu_pj = static_cast<double>(perf.fp_mac_ops) * cfg.e_fp_mac_pj +
             static_cast<double>(perf.fp_div_ops) * cfg.e_fp_div_pj +
             static_cast<double>(perf.fp_instrs) * cfg.e_fp_issue_pj;

  b.tcdm_pj = static_cast<double>(activity.tcdm_reads) * cfg.e_tcdm_read_pj +
              static_cast<double>(activity.tcdm_writes) * cfg.e_tcdm_write_pj;

  b.rf_pj = static_cast<double>(perf.rf_int_reads) * cfg.e_rf_int_read_pj +
            static_cast<double>(perf.rf_int_writes) * cfg.e_rf_int_write_pj +
            static_cast<double>(perf.rf_fp_reads) * cfg.e_rf_fp_read_pj +
            static_cast<double>(perf.rf_fp_writes) * cfg.e_rf_fp_write_pj;

  b.ssr_pj = static_cast<double>(activity.ssr_elements) * cfg.e_ssr_elem_pj;
  b.chain_pj = static_cast<double>(activity.chain_ops) * cfg.e_chain_op_pj +
               static_cast<double>(activity.seq_replays) * cfg.e_seq_replay_pj;

  EnergyReport r;
  r.time_s = cycles / cfg.f_clk_hz;
  b.static_pj = cfg.p_static_mw * 1e-3 /*W*/ * r.time_s * 1e12;

  b.total_pj = b.base_pj + b.static_pj + b.int_core_pj + b.fpu_pj + b.tcdm_pj +
               b.rf_pj + b.ssr_pj + b.chain_pj;
  r.breakdown = b;
  r.energy_per_cycle_pj = perf.cycles == 0 ? 0 : b.total_pj / cycles;
  r.power_mw = r.time_s == 0 ? 0 : b.total_pj * 1e-12 / r.time_s * 1e3;
  r.fpu_ops_per_joule =
      b.total_pj == 0 ? 0 : static_cast<double>(perf.fpu_ops) / (b.total_pj * 1e-12);
  return r;
}

std::string format_report(const EnergyReport& r) {
  std::ostringstream os;
  const EnergyBreakdown& b = r.breakdown;
  auto line = [&os, &b](const char* name, double pj) {
    os << "  " << name << ": " << pj * 1e-3 << " nJ ("
       << (b.total_pj > 0 ? 100.0 * pj / b.total_pj : 0.0) << "%)\n";
  };
  os << "energy breakdown:\n";
  line("base/clock ", b.base_pj);
  line("static     ", b.static_pj);
  line("int core   ", b.int_core_pj);
  line("fpu        ", b.fpu_pj);
  line("tcdm       ", b.tcdm_pj);
  line("reg files  ", b.rf_pj);
  line("ssr        ", b.ssr_pj);
  line("chain/seq  ", b.chain_pj);
  os << "  total      : " << b.total_pj * 1e-3 << " nJ\n";
  os << "power: " << r.power_mw << " mW @ " << r.time_s * 1e6 << " us\n";
  return os.str();
}

} // namespace sch::energy
