// Collects the activity counts the energy model needs from a finished
// simulation (TCDM stats, streamer element traffic, chain and sequencer
// activity).
#pragma once

#include "energy/energy_model.hpp"
#include "sim/simulator.hpp"

namespace sch::energy {

ActivityCounts collect_activity(const sim::Simulator& simulator);

/// One-call convenience: evaluate the energy model over a finished run.
EnergyReport evaluate_run(const sim::Simulator& simulator,
                          const EnergyConfig& config = {});

} // namespace sch::energy
