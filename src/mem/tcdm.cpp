#include "mem/tcdm.hpp"

#include <cassert>

namespace sch {

Tcdm::Tcdm(const TcdmConfig& config) : cfg_(config) {
  assert(is_pow2(cfg_.num_banks));
  bank_busy_.assign(cfg_.num_banks, false);
}

void Tcdm::begin_cycle() {
  bank_busy_.assign(cfg_.num_banks, false);
}

bool Tcdm::request(TcdmPortId port, Addr addr, bool is_write) {
  const u32 bank = bank_of(addr);
  const u32 p = static_cast<u32>(port);
  if (bank_busy_[bank]) {
    ++stats_.conflicts;
    ++stats_.conflicts_per_port[p];
    return false;
  }
  bank_busy_[bank] = true;
  ++stats_.grants_per_port[p];
  if (is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  return true;
}

} // namespace sch
