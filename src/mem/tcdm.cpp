#include "mem/tcdm.hpp"

#include <algorithm>

namespace sch {

Tcdm::Tcdm(const TcdmConfig& config, u32 num_requesters)
    : cfg_(config), use_mask_(config.fast_arb && config.num_banks <= 64) {
  assert(is_pow2(cfg_.num_banks));
  assert(num_requesters >= 1);
  if (!use_mask_) bank_busy_.assign(cfg_.num_banks, false);
  stats_.grants_per_port.assign(num_requesters, 0);
  stats_.conflicts_per_port.assign(num_requesters, 0);
  stats_.conflicts_per_bank.assign(cfg_.num_banks, 0);
}

void Tcdm::begin_cycle() {
  if (use_mask_) {
    busy_mask_ = 0;
  } else {
    bank_busy_.assign(cfg_.num_banks, false);
  }
}

bool Tcdm::request(u32 requester, Addr addr, bool is_write) {
  assert(requester < num_requesters());
  if (!memmap::in_tcdm(addr)) {
    // The caller's TCDM range check failed: count the escape instead of
    // wrapping into a bogus bank index (debug builds also assert).
    assert(!"Tcdm::request called with an address outside the TCDM window");
    ++stats_.out_of_range;
    return true;
  }
  const u32 bank = bank_of(addr);
  const bool busy = use_mask_ ? (busy_mask_ >> bank) & 1 : bool{bank_busy_[bank]};
  if (busy) {
    ++stats_.conflicts;
    ++stats_.conflicts_per_port[requester];
    ++stats_.conflicts_per_bank[bank];
    return false;
  }
  if (use_mask_) {
    busy_mask_ |= u64{1} << bank;
  } else {
    bank_busy_[bank] = true;
  }
  ++stats_.grants_per_port[requester];
  if (is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  return true;
}

std::vector<std::pair<u32, u64>> Tcdm::top_conflict_banks(u32 k) const {
  std::vector<std::pair<u32, u64>> banks;
  for (u32 b = 0; b < cfg_.num_banks; ++b) {
    if (stats_.conflicts_per_bank[b] != 0) {
      banks.emplace_back(b, stats_.conflicts_per_bank[b]);
    }
  }
  std::sort(banks.begin(), banks.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (banks.size() > k) banks.resize(k);
  return banks;
}

} // namespace sch
