// Timing model of the banked L1 scratchpad (TCDM). Storage lives in Memory;
// this class models per-cycle bank arbitration between an arbitrary number of
// requester ports (num_cores x 4: each core contributes its LSU port plus
// three SSR ports), and counts conflicts for the stall attribution and the
// energy model.
//
// Arbitration contract: callers invoke request() in priority order within a
// cycle. Per core, the LSU port goes first (core wins ties) and the three
// streamer ports rotate round-robin among themselves; across cores, the
// cluster rotates the core service order each cycle (fair cross-core
// round-robin), so no core is statically favored. The Tcdm itself is
// first-come-first-served per bank per cycle.
#pragma once

#include <cassert>
#include <utility>
#include <vector>

#include "asm/program.hpp"
#include "common/bitfield.hpp"
#include "common/types.hpp"

namespace sch {

struct TcdmConfig {
  u32 num_banks = 32;
  /// log2 of the bank word size in bytes (8-byte banks, Snitch-style).
  u32 bank_word_log2 = 3;
  /// Track per-cycle bank occupancy in a single 64-bit mask instead of a
  /// bank-indexed vector (possible whenever num_banks <= 64, i.e. always at
  /// the modeled configurations). Purely a host-speed fast path: grants,
  /// conflicts and every stat are bit-identical to the vector walk, which is
  /// kept both as the >64-bank fallback and as the reference the
  /// fast-path-equivalence suite pins this path against.
  bool fast_arb = true;
};

/// Per-core requester roles in fixed priority order (the LSU wins ties; the
/// SSR ports are rotated round-robin by the caller's invocation order each
/// cycle). Core h's global requester id is `requester_id(h, role)`.
enum class TcdmPortId : u8 { kCoreLsu = 0, kSsr0 = 1, kSsr1 = 2, kSsr2 = 3 };
inline constexpr u32 kTcdmPortsPerCore = 4;
/// Requester count of a single-core instance (back-compat name).
inline constexpr u32 kNumTcdmPorts = kTcdmPortsPerCore;

struct TcdmStats {
  u64 reads = 0;
  u64 writes = 0;
  u64 conflicts = 0;     // denied port-cycles
  u64 out_of_range = 0;  // requests below/above the TCDM window (modeling bug
                         // guard: counted instead of corrupting a bank index)
  std::vector<u64> grants_per_port;     // sized num_requesters
  std::vector<u64> conflicts_per_port;  // sized num_requesters
  std::vector<u64> conflicts_per_bank;  // sized num_banks (conflict histogram)
};

class Tcdm {
 public:
  /// `num_requesters` is num_cores x kTcdmPortsPerCore for a cluster; the
  /// default models one core.
  explicit Tcdm(const TcdmConfig& config = {},
                u32 num_requesters = kTcdmPortsPerCore);

  /// Global requester id of `role` on core `hartid`.
  [[nodiscard]] static constexpr u32 requester_id(u32 hartid, TcdmPortId role) {
    return hartid * kTcdmPortsPerCore + static_cast<u32>(role);
  }

  /// Global requester id of the cluster DMA engine (one extra port after
  /// every core's block; the cluster sizes the arbiter accordingly).
  [[nodiscard]] static constexpr u32 dma_requester_id(u32 num_cores) {
    return num_cores * kTcdmPortsPerCore;
  }

  /// Clear per-cycle bank occupancy. Call once per simulated cycle.
  void begin_cycle();

  /// Try to access the bank holding `addr` for requester `requester`.
  /// Returns true when the bank is free this cycle (access granted; data
  /// available next cycle). Callers must invoke in priority order within a
  /// cycle. Out-of-window addresses are counted in stats().out_of_range and
  /// granted without touching any bank (the caller's address check failed;
  /// never corrupt a bank index because of it).
  bool request(u32 requester, Addr addr, bool is_write);
  bool request(TcdmPortId port, Addr addr, bool is_write) {
    return request(static_cast<u32>(port), addr, is_write);
  }

  /// Fault injection (sim::FaultKind::kStallTcdmBank): hold `bank` busy for
  /// the rest of this cycle; every request to it is denied and counted as a
  /// conflict. Call after begin_cycle(), before the requesters run.
  void force_bank_busy(u32 bank) {
    if (bank >= cfg_.num_banks) return;
    if (use_mask_) {
      busy_mask_ |= u64{1} << bank;
    } else {
      bank_busy_[bank] = true;
    }
  }

  /// Record an access that bypassed bank arbitration because its address
  /// lies outside the TCDM window (e.g. an SSR stream pointed at main
  /// memory). Such accesses proceed un-arbitrated, like the LSU's
  /// main-memory path.
  void count_out_of_range() { ++stats_.out_of_range; }

  [[nodiscard]] u32 bank_of(Addr addr) const {
    // Addresses below the TCDM base would wrap through the u32 subtraction
    // into a bogus bank; callers must range-check first (see request()).
    assert(memmap::in_tcdm(addr));
    return (static_cast<u32>(addr - memmap::kTcdmBase) >> cfg_.bank_word_log2) %
           cfg_.num_banks;
  }

  /// The `k` banks with the most conflicts, hottest first (ties broken by
  /// bank index for determinism). Banks with zero conflicts are omitted.
  [[nodiscard]] std::vector<std::pair<u32, u64>> top_conflict_banks(u32 k) const;

  [[nodiscard]] const TcdmStats& stats() const { return stats_; }
  [[nodiscard]] const TcdmConfig& config() const { return cfg_; }
  [[nodiscard]] u32 num_requesters() const {
    return static_cast<u32>(stats_.grants_per_port.size());
  }

 private:
  TcdmConfig cfg_;
  /// True when per-cycle occupancy lives in busy_mask_ (fast_arb and at
  /// most 64 banks); false selects the bank_busy_ vector walk.
  bool use_mask_;
  u64 busy_mask_ = 0;
  std::vector<bool> bank_busy_;
  TcdmStats stats_;
};

} // namespace sch
