// Timing model of the banked L1 scratchpad (TCDM). Storage lives in Memory;
// this class models per-cycle bank arbitration between the core's LSU port
// and the three SSR ports, and counts conflicts for the stall attribution
// and the energy model.
#pragma once

#include <array>
#include <vector>

#include "asm/program.hpp"
#include "common/bitfield.hpp"
#include "common/types.hpp"

namespace sch {

struct TcdmConfig {
  u32 num_banks = 32;
  /// log2 of the bank word size in bytes (8-byte banks, Snitch-style).
  u32 bank_word_log2 = 3;
};

/// Requester ports in fixed priority order (core wins ties; SSR ports are
/// rotated round-robin by the caller's invocation order each cycle).
enum class TcdmPortId : u8 { kCoreLsu = 0, kSsr0 = 1, kSsr1 = 2, kSsr2 = 3 };
inline constexpr u32 kNumTcdmPorts = 4;

struct TcdmStats {
  u64 reads = 0;
  u64 writes = 0;
  u64 conflicts = 0;  // denied port-cycles
  std::array<u64, kNumTcdmPorts> grants_per_port{};
  std::array<u64, kNumTcdmPorts> conflicts_per_port{};
};

class Tcdm {
 public:
  explicit Tcdm(const TcdmConfig& config = {});

  /// Clear per-cycle bank occupancy. Call once per simulated cycle.
  void begin_cycle();

  /// Try to access the bank holding `addr` for `port`. Returns true when the
  /// bank is free this cycle (access granted; data available next cycle).
  /// Callers must invoke in priority order within a cycle.
  bool request(TcdmPortId port, Addr addr, bool is_write);

  [[nodiscard]] u32 bank_of(Addr addr) const {
    return (static_cast<u32>(addr - memmap::kTcdmBase) >> cfg_.bank_word_log2) %
           cfg_.num_banks;
  }

  [[nodiscard]] const TcdmStats& stats() const { return stats_; }
  [[nodiscard]] const TcdmConfig& config() const { return cfg_; }

 private:
  TcdmConfig cfg_;
  std::vector<bool> bank_busy_;
  TcdmStats stats_;
};

} // namespace sch
