// Functional memory storage shared by the ISS and the cycle-level simulator.
// Timing (banks, ports, arbitration) is modeled separately in tcdm.hpp; this
// class is only the byte store with a region map.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "asm/program.hpp"
#include "common/types.hpp"

namespace sch {

class Memory {
 public:
  Memory();

  /// True when [addr, addr+bytes) lies inside a mapped region.
  [[nodiscard]] bool valid(Addr addr, u32 bytes) const;

  /// Little-endian load, zero-extended into 64 bits. `bytes` in {1,2,4,8}.
  /// Throws std::out_of_range with a "bus error" message on unmapped
  /// access; api::Engine converts the escape into a failed RunReport.
  [[nodiscard]] u64 load(Addr addr, u32 bytes) const;
  void store(Addr addr, u64 value, u32 bytes);

  [[nodiscard]] double load_f64(Addr addr) const;
  [[nodiscard]] float load_f32(Addr addr) const;
  void store_f64(Addr addr, double v);
  void store_f32(Addr addr, float v);

  /// Copy an initial image (e.g. Program::data) into memory.
  void load_image(Addr base, std::span<const u8> bytes);

  /// Read back a block (tests, kernel result validation).
  [[nodiscard]] std::vector<u8> read_block(Addr base, u32 bytes) const;
  [[nodiscard]] std::vector<double> read_f64_block(Addr base, u32 count) const;

  /// True when `addr` falls into the L1 TCDM region (bank-arbitrated).
  [[nodiscard]] static bool in_tcdm(Addr addr) { return memmap::in_tcdm(addr); }

 private:
  [[nodiscard]] const u8* ptr(Addr addr, u32 bytes) const;
  [[nodiscard]] u8* ptr(Addr addr, u32 bytes);

  std::vector<u8> tcdm_;
  std::vector<u8> main_;
};

} // namespace sch
