// Functional memory storage shared by the ISS and the cycle-level simulator.
// Timing (banks, ports, arbitration) is modeled separately in tcdm.hpp; this
// class is only the byte store with a region map.
#pragma once

#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <vector>

#include "asm/program.hpp"
#include "common/types.hpp"

namespace sch {

/// Zero-initialized flat byte buffer backed by calloc. Large regions come
/// from the OS as copy-on-write zero pages, so constructing a Memory costs
/// nothing until a page is actually touched -- api::Engine builds a fresh
/// Memory per engine per run, and eagerly memsetting ~4 MB twice dominated
/// the wall time of short simulations.
class ZeroedBuffer {
 public:
  explicit ZeroedBuffer(usize size)
      : data_(static_cast<u8*>(std::calloc(size, 1))), size_(size) {
    if (data_ == nullptr) throw std::bad_alloc();
  }
  ~ZeroedBuffer() { std::free(data_); }
  ZeroedBuffer(const ZeroedBuffer&) = delete;
  ZeroedBuffer& operator=(const ZeroedBuffer&) = delete;

  [[nodiscard]] u8* data() { return data_; }
  [[nodiscard]] const u8* data() const { return data_; }
  [[nodiscard]] usize size() const { return size_; }

 private:
  u8* data_;
  usize size_;
};

class Memory {
 public:
  Memory();

  /// True when [addr, addr+bytes) lies inside a mapped region.
  [[nodiscard]] bool valid(Addr addr, u32 bytes) const {
    const u64 end = static_cast<u64>(addr) + bytes;
    return (addr >= memmap::kTcdmBase &&
            end <= memmap::kTcdmBase + memmap::kTcdmSize) ||
           (addr >= memmap::kMainBase &&
            end <= memmap::kMainBase + memmap::kMainSize);
  }

  /// Little-endian load, zero-extended into 64 bits. `bytes` in {1,2,4,8}.
  /// Throws std::out_of_range with a "bus error" message on unmapped
  /// access; api::Engine converts the escape into a failed RunReport.
  /// Inline (with the throw out-of-line) so constant-size accesses on the
  /// simulation hot paths compile to a bounds check plus one move.
  [[nodiscard]] u64 load(Addr addr, u32 bytes) const {
    const u8* p = ptr(addr, bytes);
    u64 v = 0;
    std::memcpy(&v, p, bytes);
    return v;
  }
  void store(Addr addr, u64 value, u32 bytes) {
    u8* p = ptr(addr, bytes);
    std::memcpy(p, &value, bytes);
  }

  [[nodiscard]] double load_f64(Addr addr) const;
  [[nodiscard]] float load_f32(Addr addr) const;
  void store_f64(Addr addr, double v);
  void store_f32(Addr addr, float v);

  /// Copy an initial image (e.g. Program::data) into memory.
  void load_image(Addr base, std::span<const u8> bytes);

  /// Read back a block (tests, kernel result validation).
  [[nodiscard]] std::vector<u8> read_block(Addr base, u32 bytes) const;
  [[nodiscard]] std::vector<double> read_f64_block(Addr base, u32 count) const;

  /// True when `addr` falls into the L1 TCDM region (bank-arbitrated).
  [[nodiscard]] static bool in_tcdm(Addr addr) { return memmap::in_tcdm(addr); }

 private:
  /// Escape hatch for the inline ptr(): builds the hex message and throws
  /// std::out_of_range (kept out-of-line so the hot path stays small).
  [[noreturn]] static void throw_bus_error(Addr addr);

  [[nodiscard]] const u8* ptr(Addr addr, u32 bytes) const {
    const u64 end = static_cast<u64>(addr) + bytes;
    if (addr >= memmap::kTcdmBase &&
        end <= memmap::kTcdmBase + memmap::kTcdmSize) {
      return tcdm_.data() + (addr - memmap::kTcdmBase);
    }
    if (addr >= memmap::kMainBase &&
        end <= memmap::kMainBase + memmap::kMainSize) {
      return main_.data() + (addr - memmap::kMainBase);
    }
    throw_bus_error(addr);
  }
  [[nodiscard]] u8* ptr(Addr addr, u32 bytes) {
    return const_cast<u8*>(static_cast<const Memory*>(this)->ptr(addr, bytes));
  }

  ZeroedBuffer tcdm_;
  ZeroedBuffer main_;
};

} // namespace sch
