#include "mem/memory.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

namespace sch {

Memory::Memory()
    : tcdm_(memmap::kTcdmSize), main_(memmap::kMainSize) {}

void Memory::throw_bus_error(Addr addr) {
  std::ostringstream os;
  os << "bus error: access to unmapped address 0x" << std::hex << addr;
  throw std::out_of_range(os.str());
}

double Memory::load_f64(Addr addr) const {
  const u64 b = load(addr, 8);
  double v;
  std::memcpy(&v, &b, 8);
  return v;
}

float Memory::load_f32(Addr addr) const {
  const u64 b = load(addr, 4);
  const u32 lo = static_cast<u32>(b);
  float v;
  std::memcpy(&v, &lo, 4);
  return v;
}

void Memory::store_f64(Addr addr, double v) {
  u64 b;
  std::memcpy(&b, &v, 8);
  store(addr, b, 8);
}

void Memory::store_f32(Addr addr, float v) {
  u32 b;
  std::memcpy(&b, &v, 4);
  store(addr, b, 4);
}

void Memory::load_image(Addr base, std::span<const u8> bytes) {
  if (bytes.empty()) return;
  u8* p = ptr(base, static_cast<u32>(bytes.size()));
  std::memcpy(p, bytes.data(), bytes.size());
}

std::vector<u8> Memory::read_block(Addr base, u32 bytes) const {
  const u8* p = ptr(base, bytes);
  return {p, p + bytes};
}

std::vector<double> Memory::read_f64_block(Addr base, u32 count) const {
  std::vector<double> out(count);
  for (u32 i = 0; i < count; ++i) out[i] = load_f64(base + 8 * i);
  return out;
}

} // namespace sch
