// Architectural (timing-free) model of chaining-enabled registers, used by
// the functional ISS and by property tests as the golden FIFO semantics.
//
// The architectural contract is order-only: writes to a chaining-enabled
// register push, reads pop, values are delivered in program order. Capacity
// and backpressure are microarchitectural (see sim/chain_unit.hpp) and do
// not affect the architectural result of a well-formed program.
#pragma once

#include <array>
#include <deque>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/chain_config.hpp"

namespace sch::chain {

class ArchChainFile {
 public:
  /// Update the mask (CSR write). Newly enabled registers start with an
  /// empty FIFO (the stale architectural value is not an element). For a
  /// register being disabled, the oldest unpopped element (if any) becomes
  /// the architectural register value; remaining elements are discarded.
  /// Returns the value to latch into each disabled register.
  struct DisableEffect {
    u8 reg;
    std::optional<u64> latched_value;
  };
  std::vector<DisableEffect> set_mask(u32 new_mask);

  [[nodiscard]] const ChainMask& mask() const { return mask_; }
  [[nodiscard]] bool enabled(u8 reg) const { return mask_.enabled(reg); }

  /// Push a produced value (architectural write to an enabled register).
  void push(u8 reg, u64 value);

  /// Pop the oldest value (architectural read of an enabled register).
  /// Returns nullopt on underflow: the program reads an empty FIFO with no
  /// outstanding producer, which is an architectural deadlock.
  std::optional<u64> pop(u8 reg);

  [[nodiscard]] usize depth(u8 reg) const { return fifo_[reg].size(); }
  [[nodiscard]] bool empty(u8 reg) const { return fifo_[reg].empty(); }

 private:
  ChainMask mask_;
  std::array<std::deque<u64>, isa::kNumFpRegs> fifo_;
};

} // namespace sch::chain
