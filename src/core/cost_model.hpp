// Hardware cost model for the chaining extension (substitute for the paper's
// Fusion Compiler synthesis run; see DESIGN.md §1). Estimates the storage
// and control added by the extension in gate equivalents (GE, NAND2-sized)
// and compares against a published Snitch-class core complexity budget, to
// reproduce the paper's "<2% cell area increase" claim (Section III).
#pragma once

#include "common/types.hpp"

namespace sch::chain {

struct CostModelConfig {
  // Baseline complexity (kGE) of a Snitch compute core with FP subsystem and
  // 3 SSR streamers. Zaruba et al. (IEEE TC 2021) report the Snitch core at
  // ~22 kGE with the FP subsystem (FPU + FP RF + sequencer) dominating the
  // compute-core area at ~95 kGE in comparable configs; SSR streamers add
  // ~12 kGE. These set the denominator's order of magnitude.
  double core_kge = 22.0;
  double fp_subsystem_kge = 95.0;
  double ssr_kge = 12.0;

  // Technology-independent storage cost: one flip-flop with mux ~ 8 GE;
  // one bit of CSR (write-enable + read mux) ~ 10 GE.
  double ge_per_ff = 8.0;
  double ge_per_csr_bit = 10.0;

  // Control overhead: pop/push handshake, WAW-bypass in the scoreboard,
  // issue-stage operand select, backpressure gating. Estimated as
  // comparator/mux trees over 5-bit register indices per FPU operand port.
  double control_ge = 650.0;

  u32 num_fp_regs = 32;
};

struct CostBreakdown {
  double valid_bits_ge = 0;   // 32 valid bits
  double csr_ge = 0;          // 32-bit chain-mask CSR
  double control_ge = 0;
  double total_extension_ge = 0;
  double baseline_ge = 0;
  double overhead_fraction = 0;  // extension / baseline
};

/// Compute the extension cost against the baseline core budget.
CostBreakdown estimate_cost(const CostModelConfig& config = {});

/// Register-pressure accounting used by the kernel reports: number of
/// architectural FP registers a software FIFO of `depth` elements would
/// occupy without chaining (the unrolling alternative, Fig. 1b) versus with
/// chaining (always 1).
struct RegisterPressure {
  u32 without_chaining;
  u32 with_chaining;
  u32 freed;
};
RegisterPressure register_pressure(u32 fifo_depth);

} // namespace sch::chain
