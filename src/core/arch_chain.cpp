#include "core/arch_chain.hpp"

#include <vector>

namespace sch::chain {

std::vector<ArchChainFile::DisableEffect> ArchChainFile::set_mask(u32 new_mask) {
  std::vector<DisableEffect> effects;
  const u32 old_mask = mask_.value();
  for (u8 r = 0; r < isa::kNumFpRegs; ++r) {
    const bool was = ((old_mask >> r) & 1u) != 0;
    const bool now = ((new_mask >> r) & 1u) != 0;
    if (was && !now) {
      DisableEffect e{r, std::nullopt};
      if (!fifo_[r].empty()) {
        e.latched_value = fifo_[r].front();
        fifo_[r].clear();
      }
      effects.push_back(e);
    } else if (!was && now) {
      fifo_[r].clear(); // stale architectural value is not an element
    }
  }
  mask_.set_value(new_mask);
  return effects;
}

void ArchChainFile::push(u8 reg, u64 value) { fifo_[reg].push_back(value); }

std::optional<u64> ArchChainFile::pop(u8 reg) {
  if (fifo_[reg].empty()) return std::nullopt;
  const u64 v = fifo_[reg].front();
  fifo_[reg].pop_front();
  return v;
}

} // namespace sch::chain
