// Scalar-chaining configuration semantics (paper, Section II).
//
// CSR 0x7C3 hosts a 32-bit mask, one bit per architectural FP register.
// Setting bit r gives register fr FIFO semantics: writes push, reads pop,
// and successive writes carry no WAW dependency. The logical FIFO is the
// architectural register concatenated with the functional unit's pipeline
// registers; a per-register valid bit provides backpressure.
#pragma once

#include "common/types.hpp"
#include "isa/reg.hpp"

namespace sch::chain {

/// The chain-mask CSR value with convenience accessors.
class ChainMask {
 public:
  ChainMask() = default;
  explicit ChainMask(u32 mask) : mask_(mask) {}

  [[nodiscard]] u32 value() const { return mask_; }
  void set_value(u32 mask) { mask_ = mask; }

  [[nodiscard]] bool enabled(u8 fp_reg) const {
    return fp_reg < isa::kNumFpRegs && ((mask_ >> fp_reg) & 1u) != 0;
  }
  void enable(u8 fp_reg) { mask_ |= (1u << fp_reg); }
  void disable(u8 fp_reg) { mask_ &= ~(1u << fp_reg); }
  [[nodiscard]] bool any() const { return mask_ != 0; }

 private:
  u32 mask_ = 0;
};

} // namespace sch::chain
