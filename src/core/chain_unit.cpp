#include "core/chain_unit.hpp"

namespace sch::chain {

void ChainUnit::set_mask(u32 new_mask) {
  const u32 old_mask = mask_.value();
  for (u8 r = 0; r < isa::kNumFpRegs; ++r) {
    const bool was = ((old_mask >> r) & 1u) != 0;
    const bool now = ((new_mask >> r) & 1u) != 0;
    if (!was && now) {
      valid_[r] = false; // fresh FIFO: stale value is not an element
    }
    // Disabling keeps value_[r] as the architectural register content.
  }
  mask_.set_value(new_mask);
}

void ChainUnit::begin_cycle() {
  popped_this_cycle_.fill(false);
  pushed_this_cycle_.fill(false);
}

u64 ChainUnit::pop(u8 reg) {
  assert(valid_[reg] && "chain pop of empty register");
  valid_[reg] = false;
  popped_this_cycle_[reg] = true;
  ++stats_.pops;
  return value_[reg];
}

void ChainUnit::push(u8 reg, u64 value) {
  assert(can_push(reg) && "chain push into occupied register");
  valid_[reg] = true;
  value_[reg] = value;
  pushed_this_cycle_[reg] = true;
  ++stats_.pushes;
}

} // namespace sch::chain
