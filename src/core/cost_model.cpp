#include "core/cost_model.hpp"

namespace sch::chain {

CostBreakdown estimate_cost(const CostModelConfig& cfg) {
  CostBreakdown b;
  b.valid_bits_ge = cfg.num_fp_regs * cfg.ge_per_ff;
  b.csr_ge = cfg.num_fp_regs * cfg.ge_per_csr_bit;
  b.control_ge = cfg.control_ge;
  b.total_extension_ge = b.valid_bits_ge + b.csr_ge + b.control_ge;
  b.baseline_ge = (cfg.core_kge + cfg.fp_subsystem_kge + cfg.ssr_kge) * 1000.0;
  b.overhead_fraction = b.total_extension_ge / b.baseline_ge;
  return b;
}

RegisterPressure register_pressure(u32 fifo_depth) {
  RegisterPressure rp;
  rp.without_chaining = fifo_depth;   // one architectural register per element
  rp.with_chaining = 1;               // pipeline registers hold the rest
  rp.freed = fifo_depth > 0 ? fifo_depth - 1 : 0;
  return rp;
}

} // namespace sch::chain
