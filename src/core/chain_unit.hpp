// Timing-level chaining unit: the per-register valid bit and the push/pop
// protocol between the FPU writeback stage and the FP issue stage
// (paper, Section II: "we add a valid bit per architectural register to
// implement the backpressure mechanism").
//
// Protocol (see DESIGN.md §4):
//  * pop-at-issue: a consumer reading a chaining-enabled register takes the
//    architectural register value and clears the valid bit;
//  * push-at-writeback: a producer's value moves from the last FPU pipeline
//    register into the architectural register, setting the valid bit;
//  * backpressure: when the valid bit is set and nothing popped it, the
//    producer holds in the last pipeline stage (FPU stalls).
//
// `strict_handoff` forbids a push into a slot freed by a pop in the same
// cycle, modeling a conservative RTL without the pop->push bypass; it costs
// a bubble per handoff and exists as an ablation (bench/ablation_handoff).
#pragma once

#include <array>
#include <cassert>

#include "common/types.hpp"
#include "core/chain_config.hpp"

namespace sch::chain {

class ChainUnit {
 public:
  explicit ChainUnit(bool strict_handoff = false)
      : strict_handoff_(strict_handoff) {}

  /// CSR write. Enabling a register clears its valid bit (stale value is not
  /// an element). Disabling keeps the current value as the architectural one.
  void set_mask(u32 new_mask);

  [[nodiscard]] u32 mask() const { return mask_.value(); }
  [[nodiscard]] bool enabled(u8 reg) const { return mask_.enabled(reg); }

  /// Start-of-cycle bookkeeping (clears the popped-this-cycle marks).
  void begin_cycle();

  /// Can the FP issue stage pop `reg` this cycle?
  [[nodiscard]] bool can_pop(u8 reg) const { return valid_[reg]; }

  /// Pop: returns the value and frees the slot.
  u64 pop(u8 reg);

  /// Can the FPU writeback stage push into `reg` this cycle? At most one
  /// push per register per cycle (single writeback port); in strict mode a
  /// slot freed by a pop this cycle is not reusable until the next cycle.
  [[nodiscard]] bool can_push(u8 reg) const {
    if (pushed_this_cycle_[reg]) return false;
    if (strict_handoff_) return !valid_[reg] && !popped_this_cycle_[reg];
    return !valid_[reg] || popped_this_cycle_[reg];
  }

  /// Push: sets the valid bit and stores the value.
  void push(u8 reg, u64 value);

  /// Fault injection (sim::FaultKind::kDropChainEntry): silently discard the
  /// entry in `reg`. The consumer that would have popped it waits forever,
  /// which is exactly what the cluster watchdog must detect.
  void drop(u8 reg) { valid_[reg] = false; }

  /// Raw register view (used when chaining is disabled mid-program and for
  /// the Fig. 2 pipeline-occupancy dump).
  [[nodiscard]] bool valid(u8 reg) const { return valid_[reg]; }
  [[nodiscard]] u64 value(u8 reg) const { return value_[reg]; }

  [[nodiscard]] bool strict_handoff() const { return strict_handoff_; }

  struct Stats {
    u64 pushes = 0;
    u64 pops = 0;
    u64 backpressure_cycles = 0;  // counted by the FPU on blocked pushes
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  void count_backpressure() { ++stats_.backpressure_cycles; }

 private:
  bool strict_handoff_;
  ChainMask mask_;
  std::array<bool, isa::kNumFpRegs> valid_{};
  std::array<u64, isa::kNumFpRegs> value_{};
  std::array<bool, isa::kNumFpRegs> popped_this_cycle_{};
  std::array<bool, isa::kNumFpRegs> pushed_this_cycle_{};
  Stats stats_;
};

} // namespace sch::chain
