// Bounded FIFO used for hardware queues (offload queue, SSR data FIFOs,
// chain FIFO models). Capacity fixed at construction; overflow is a modeling
// bug and asserts.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace sch {

template <typename T>
class FixedQueue {
 public:
  explicit FixedQueue(std::size_t capacity) : capacity_(capacity) {
    assert(capacity_ > 0);
  }

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] bool full() const { return items_.size() >= capacity_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t free_slots() const { return capacity_ - items_.size(); }

  void push(T value) {
    assert(!full() && "FixedQueue overflow");
    items_.push_back(std::move(value));
  }

  [[nodiscard]] const T& front() const {
    assert(!empty());
    return items_.front();
  }

  [[nodiscard]] T& front() {
    assert(!empty());
    return items_.front();
  }

  T pop() {
    assert(!empty());
    T v = std::move(items_.front());
    items_.erase(items_.begin());
    return v;
  }

  void clear() { items_.clear(); }

  /// Read-only access for trace/debug dumps (index 0 = head).
  [[nodiscard]] const T& at(std::size_t i) const { return items_.at(i); }

 private:
  std::size_t capacity_;
  std::vector<T> items_;
};

} // namespace sch
