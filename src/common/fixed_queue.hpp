// Bounded FIFO used for hardware queues (offload queue, SSR data FIFOs,
// chain FIFO models). Capacity fixed at construction; overflow is a modeling
// bug and asserts. Implemented as a ring buffer over preallocated storage so
// push/pop are O(1) and the simulation hot loop never allocates.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace sch {

template <typename T>
class FixedQueue {
 public:
  explicit FixedQueue(std::size_t capacity)
      : storage_(capacity), capacity_(capacity) {
    assert(capacity_ > 0);
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ >= capacity_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t free_slots() const { return capacity_ - size_; }

  void push(T value) {
    if (full()) {
      // Modeling bug: drop rather than overwrite the head in release
      // builds, where the assert compiles out.
      assert(false && "FixedQueue overflow");
      return;
    }
    storage_[wrap(head_ + size_)] = std::move(value);
    ++size_;
  }

  [[nodiscard]] const T& front() const {
    assert(!empty());
    return storage_[head_];
  }

  [[nodiscard]] T& front() {
    assert(!empty());
    return storage_[head_];
  }

  T pop() {
    assert(!empty());
    T v = std::move(storage_[head_]);
    head_ = wrap(head_ + 1);
    --size_;
    return v;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Read-only access for trace/debug dumps (index 0 = head).
  [[nodiscard]] const T& at(std::size_t i) const {
    assert(i < size_);
    return storage_[wrap(head_ + i)];
  }

 private:
  [[nodiscard]] std::size_t wrap(std::size_t i) const {
    return i >= capacity_ ? i - capacity_ : i;
  }

  std::vector<T> storage_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

} // namespace sch
