#include "common/stats.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace sch {

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geomean requires positive samples");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

std::vector<double> ratios(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("ratios: size mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] / b[i];
  return out;
}

double rel_err(double a, double b, double eps) {
  const double denom = std::max(std::abs(b), eps);
  return std::abs(a - b) / denom;
}

} // namespace sch
