// Tiny leveled logger. Simulation components log through this so tests can
// silence or capture output.
#pragma once

#include <functional>
#include <string>

namespace sch {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Process-wide logger used by default across the library.
  static Logger& global();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  void log(LogLevel level, const std::string& message);
  void debug(const std::string& m) { log(LogLevel::kDebug, m); }
  void info(const std::string& m) { log(LogLevel::kInfo, m); }
  void warn(const std::string& m) { log(LogLevel::kWarn, m); }
  void error(const std::string& m) { log(LogLevel::kError, m); }

 private:
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

} // namespace sch
