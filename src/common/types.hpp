// Fundamental fixed-width type aliases used across the library.
#pragma once

#include <cstdint>
#include <cstddef>

namespace sch {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;

/// Machine word of the modeled core (RV32).
using Word = u32;
/// Sign view of a machine word.
using SWord = i32;
/// FP register container: 64-bit, NaN-boxed for narrower formats.
using FReg = u64;
/// Simulation time in core clock cycles.
using Cycle = u64;
/// Byte address in the modeled address space.
using Addr = u32;

} // namespace sch
