// Minimal error-reporting vocabulary. The assembler and configuration layers
// report recoverable user errors through Status/Result; internal invariant
// violations use assertions.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace sch {

/// A recoverable error with a human-readable message.
class Status {
 public:
  Status() = default; // OK
  static Status ok() { return {}; }
  static Status error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    return s;
  }

  [[nodiscard]] bool is_ok() const { return !message_.has_value(); }
  [[nodiscard]] const std::string& message() const {
    static const std::string kOk = "OK";
    return message_ ? *message_ : kOk;
  }

 private:
  std::optional<std::string> message_;
};

/// Value-or-error. Accessing value() on an error throws; callers check ok().
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {} // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) { // NOLINT
    if (status_.is_ok()) {
      throw std::logic_error("Result constructed from OK status without value");
    }
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] const T& value() const& {
    if (!value_) throw std::runtime_error("Result::value on error: " + status_.message());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    if (!value_) throw std::runtime_error("Result::value on error: " + status_.message());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

} // namespace sch
