// Bit-manipulation helpers for instruction encoding/decoding and address math.
#pragma once

#include <bit>
#include <type_traits>

#include "common/types.hpp"

namespace sch {

/// Extract bits [hi:lo] (inclusive, RISC-V manual convention) from `value`.
constexpr u32 bits(u32 value, unsigned hi, unsigned lo) {
  const unsigned width = hi - lo + 1;
  const u32 mask = width >= 32 ? ~u32{0} : ((u32{1} << width) - 1);
  return (value >> lo) & mask;
}

/// Extract a single bit.
constexpr u32 bit(u32 value, unsigned pos) { return (value >> pos) & 1u; }

/// Place `value`'s low `width` bits at position `lo`.
constexpr u32 place(u32 value, unsigned width, unsigned lo) {
  const u32 mask = width >= 32 ? ~u32{0} : ((u32{1} << width) - 1);
  return (value & mask) << lo;
}

/// Sign-extend the low `width` bits of `value` to 32 bits.
constexpr i32 sign_extend(u32 value, unsigned width) {
  const unsigned shift = 32 - width;
  return static_cast<i32>(value << shift) >> shift;
}

/// True when `value` fits a signed immediate of `width` bits.
constexpr bool fits_simm(i64 value, unsigned width) {
  const i64 lo = -(i64{1} << (width - 1));
  const i64 hi = (i64{1} << (width - 1)) - 1;
  return value >= lo && value <= hi;
}

/// True when `value` fits an unsigned immediate of `width` bits.
constexpr bool fits_uimm(i64 value, unsigned width) {
  return value >= 0 && value < (i64{1} << width);
}

/// True when `v` is a power of two (and nonzero).
constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned log2_exact(u64 v) { return static_cast<unsigned>(std::countr_zero(v)); }

/// Align `v` up to a power-of-two boundary.
constexpr u64 align_up(u64 v, u64 align) { return (v + align - 1) & ~(align - 1); }

} // namespace sch
