// Small statistics helpers used by the benchmark harnesses (geomean speedups,
// ratios) and by tests.
#pragma once

#include <span>
#include <vector>

namespace sch {

/// Geometric mean of strictly positive samples. Returns 0 for empty input.
double geomean(std::span<const double> xs);

/// Arithmetic mean. Returns 0 for empty input.
double mean(std::span<const double> xs);

/// Element-wise ratio a[i]/b[i]; sizes must match.
std::vector<double> ratios(std::span<const double> a, std::span<const double> b);

/// Relative error |a-b| / max(|b|, eps).
double rel_err(double a, double b, double eps = 1e-12);

} // namespace sch
