#include "common/log.hpp"

#include <cstdio>

namespace sch {

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  if (sink_) {
    sink_(level, message);
    return;
  }
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::fprintf(stderr, "[%s] %s\n", kNames[static_cast<int>(level)], message.c_str());
}

} // namespace sch
