#include "dma/dma.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace sch::dma {

namespace {

/// True when any byte of the transfer touches the bulk-memory region (such
/// transfers pay the main-memory startup latency).
bool touches_main(const Transfer& t) {
  Addr src = t.src;
  Addr dst = t.dst;
  for (u32 r = 0; r < t.rows; ++r) {
    if (!memmap::in_tcdm(src) || !memmap::in_tcdm(src + t.row_bytes - 1) ||
        !memmap::in_tcdm(dst) || !memmap::in_tcdm(dst + t.row_bytes - 1)) {
      return true;
    }
    src += static_cast<Addr>(t.src_stride);
    dst += static_cast<Addr>(t.dst_stride);
  }
  return false;
}

} // namespace

Status validate_copy(const Memory& mem, const Transfer& t) {
  if (t.row_bytes == 0) {
    return Status::error("dma: zero-byte copy (dmcpy size register is 0)");
  }
  if (t.rows == 0) {
    return Status::error("dma: zero-row 2-D copy (dmcpy2d row register is 0)");
  }
  Addr src = t.src;
  Addr dst = t.dst;
  for (u32 r = 0; r < t.rows; ++r) {
    if (!mem.valid(src, t.row_bytes)) {
      std::ostringstream os;
      os << "bus error: dma source row " << r << " [0x" << std::hex << src
         << ", 0x" << src + t.row_bytes << ") is unmapped";
      return Status::error(os.str());
    }
    if (!mem.valid(dst, t.row_bytes)) {
      std::ostringstream os;
      os << "bus error: dma destination row " << r << " [0x" << std::hex << dst
         << ", 0x" << dst + t.row_bytes << ") is unmapped";
      return Status::error(os.str());
    }
    src += static_cast<Addr>(t.src_stride);
    dst += static_cast<Addr>(t.dst_stride);
  }
  return Status::ok();
}

Engine::Engine(const EngineConfig& config, Memory& memory, u32 num_harts,
               u32 tcdm_requester)
    : cfg_(config), mem_(memory), tcdm_requester_(tcdm_requester) {
  assert(num_harts >= 1);
  fe_.resize(num_harts);
  ch_.resize(num_harts);
}

bool Engine::idle() const {
  for (const Channel& ch : ch_) {
    if (!ch.queue.empty()) return false;
  }
  return true;
}

Transfer Engine::snapshot(u32 hart, u32 row_bytes, u32 rows) const {
  assert(hart < fe_.size());
  const FrontEnd& fe = fe_[hart];
  Transfer t;
  t.hart = hart;
  t.src = fe.src;
  t.dst = fe.dst;
  t.src_stride = rows > 1 ? fe.src_stride : static_cast<i32>(row_bytes);
  t.dst_stride = rows > 1 ? fe.dst_stride : static_cast<i32>(row_bytes);
  t.row_bytes = row_bytes;
  t.rows = rows;
  return t;
}

u32 Engine::issue(u32 hart, u32 row_bytes, u32 rows, Cycle now) {
  assert(can_issue(hart));
  Transfer t = snapshot(hart, row_bytes, rows);
  t.id = ++fe_[hart].issued;
  ch_[hart].queue.push_back(t);
  ch_[hart].issued_at.push_back(now);
  ++stats_.transfers_issued;
  return t.id;
}

void Engine::begin_head(Channel& ch, Cycle now) {
  const Transfer& t = ch.queue.front();
  ch.active = Active{};
  ch.active.started = true;
  ch.active.issued_at = ch.issued_at.front();
  ch.active.started_at = now;
  ch.active.startup_left = touches_main(t) ? cfg_.main_mem_latency : 0;
  ch.active.src_row = t.src;
  ch.active.dst_row = t.dst;
}

void Engine::finish_head(Channel& ch, Cycle now) {
  const Transfer& t = ch.queue.front();
  FrontEnd& fe = fe_[t.hart];
  // A hart's transfers drain through its own channel in issue order, so
  // per-hart completion in id order holds by construction.
  assert(t.id == fe.completed + 1);
  fe.completed = t.id;
  ++stats_.transfers_completed;
  if (records_.size() < cfg_.max_records) {
    records_.push_back(TransferRecord{t.hart, t.id, t.total_bytes(),
                                      ch.active.issued_at, ch.active.started_at,
                                      now, ch.active.conflicts});
  }
  ch.queue.pop_front();
  ch.issued_at.pop_front();
  ch.active = Active{};
}

// Commit one beat's worth of progress (the bytes have already landed in
// the functional memory). Returns true when the whole transfer finished.
bool Engine::advance_beat(Channel& ch, Cycle now, u32 beat) {
  stats_.bytes_moved += beat;
  const Transfer& t = ch.queue.front();
  ch.active.col += beat;
  if (ch.active.col == t.row_bytes) {
    ch.active.col = 0;
    ++ch.active.row;
    if (ch.active.row == t.rows) {
      finish_head(ch, now);
      return true;
    }
    ch.active.src_row += static_cast<Addr>(t.src_stride);
    ch.active.dst_row += static_cast<Addr>(t.dst_stride);
  }
  return false;
}

void Engine::tick_channel(Channel& ch, Cycle now, Tcdm& tcdm) {
  if (ch.queue.empty()) return;
  if (!ch.active.started) begin_head(ch, now);

  if (ch.active.startup_left > 0) {
    --ch.active.startup_left;
    ++stats_.startup_cycles;
    return;
  }

  u32 budget = cfg_.main_mem_bytes_per_cycle;

  // A beat whose destination bank was denied last cycle already holds its
  // read data; retry just the write (this also breaks the self-conflict of
  // TCDM-to-TCDM copies whose source and destination share a bank).
  if (ch.active.pending_len > 0) {
    if (!tcdm.request(tcdm_requester_, ch.active.pending_dst, true)) {
      ++stats_.tcdm_conflicts;
      ++ch.active.conflicts;
      return;
    }
    if (drop_beats_ > 0) {
      --drop_beats_;  // fault injection: the staged bytes never land
    } else {
      for (u32 i = 0; i < ch.active.pending_len; ++i) {
        mem_.store(ch.active.pending_dst + i, ch.active.pending[i], 1);
      }
    }
    const u32 len = ch.active.pending_len;
    ch.active.pending_len = 0;
    budget -= len;
    if (advance_beat(ch, now, len)) return;
  }

  while (budget > 0) {
    const Transfer& t = ch.queue.front();
    const u32 row_left = t.row_bytes - ch.active.col;
    const u32 beat = std::min({8u, row_left, budget});
    const Addr src = ch.active.src_row + ch.active.col;
    const Addr dst = ch.active.dst_row + ch.active.col;
    // TCDM-side beats must win their bank this cycle; a source denial ends
    // the channel's beats for the cycle (in-order mover) and is charged to
    // the transfer.
    if (memmap::in_tcdm(src) && !tcdm.request(tcdm_requester_, src, false)) {
      ++stats_.tcdm_conflicts;
      ++ch.active.conflicts;
      return;
    }
    if (memmap::in_tcdm(dst) && !tcdm.request(tcdm_requester_, dst, true)) {
      // The read was granted but the write bank is taken: stage the bytes
      // and commit them next cycle.
      ++stats_.tcdm_conflicts;
      ++ch.active.conflicts;
      for (u32 i = 0; i < beat; ++i) {
        ch.active.pending[i] = static_cast<u8>(mem_.load(src + i, 1));
      }
      ch.active.pending_len = beat;
      ch.active.pending_dst = dst;
      return;
    }
    if (drop_beats_ > 0) {
      --drop_beats_;  // fault injection: this beat's bytes never land
    } else {
      for (u32 i = 0; i < beat; ++i) {
        mem_.store(dst + i, mem_.load(src + i, 1), 1);
      }
    }
    budget -= beat;
    if (advance_beat(ch, now, beat)) return;
  }
}

u32 Engine::startup_horizon() const {
  u32 horizon = 0xFFFF'FFFF;
  bool any = false;
  for (const Channel& ch : ch_) {
    if (ch.queue.empty()) continue;
    any = true;
    // A channel that has not begun its head transfer, or whose head is past
    // startup, can move bytes (and arbitrate banks) on the very next tick.
    if (!ch.active.started || ch.active.startup_left == 0) return 0;
    horizon = std::min(horizon, ch.active.startup_left);
  }
  return any ? horizon : 0;
}

void Engine::skip_startup(u32 cycles) {
  if (cycles == 0) return;
  stats_.busy_cycles += cycles;  // at least one channel active per tick
  for (Channel& ch : ch_) {
    if (ch.queue.empty()) continue;
    assert(ch.active.started && ch.active.startup_left >= cycles);
    ch.active.startup_left -= cycles;
    stats_.startup_cycles += cycles;  // one per channel per skipped tick
  }
}

void Engine::tick(Cycle now, Tcdm& tcdm) {
  if (idle()) return;
  ++stats_.busy_cycles;
  // Rotate the channel service order so no hart's transfers are statically
  // favored at the banks.
  const u32 n = static_cast<u32>(ch_.size());
  const u32 start = static_cast<u32>(now % n);
  for (u32 k = 0; k < n; ++k) {
    tick_channel(ch_[(start + k) % n], now, tcdm);
  }
}

Result<u32> FunctionalDma::copy(Memory& mem, u32 row_bytes, u32 rows) {
  Transfer t;
  t.src = fe_.src;
  t.dst = fe_.dst;
  t.src_stride = rows > 1 ? fe_.src_stride : static_cast<i32>(row_bytes);
  t.dst_stride = rows > 1 ? fe_.dst_stride : static_cast<i32>(row_bytes);
  t.row_bytes = row_bytes;
  t.rows = rows;
  const Status s = validate_copy(mem, t);
  if (!s.is_ok()) return s;
  Addr src = t.src;
  Addr dst = t.dst;
  for (u32 r = 0; r < rows; ++r) {
    for (u32 i = 0; i < row_bytes; ++i) {
      mem.store(dst + i, mem.load(src + i, 1), 1);
    }
    src += static_cast<Addr>(t.src_stride);
    dst += static_cast<Addr>(t.dst_stride);
  }
  return ++fe_.issued;
}

} // namespace sch::dma
