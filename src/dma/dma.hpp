// Cluster DMA engine (Xdma). One engine per cluster moves blocks between
// main memory and the banked TCDM so kernels can stage working sets instead
// of assuming data magically lives in L1.
//
// Programming model (custom instructions, see docs/ISA.md):
//   dmsrc rs1          latch the source base address (per-hart front-end)
//   dmdst rs1          latch the destination base address
//   dmstr rs1, rs2     latch 2-D row strides (rs1 = source, rs2 = dest)
//   dmcpy rd, rs1      start a 1-D copy of rs1 bytes; rd <- transfer id
//   dmcpy2d rd, rs1, rs2
//                      start a 2-D copy: rs2 rows of rs1 bytes, advancing
//                      each base by its latched stride per row
//   dmstat rd, imm     imm=0: rd <- this hart's completed-transfer count
//                      imm=1: rd <- this hart's outstanding-transfer count
//
// Every hart owns a private set of front-end latches and a private id
// sequence (ids count 1, 2, ... per hart), so cores never race on the
// configuration registers; descriptors funnel into one shared FIFO that the
// cluster ticks once per cycle in the rotating arbitration slot.
//
// Timing model (cycle engine): the engine is a multi-context block mover
// (like Snitch's iDMA with multiple outstanding transfers) -- one channel
// per hart, each with a private descriptor FIFO:
//   * a channel's head transfer pays `main_mem_latency` startup cycles when
//     either end touches main memory, then streams up to
//     `main_mem_bytes_per_cycle` bytes per cycle in 8-byte beats (the
//     per-channel main-memory streaming bandwidth);
//   * every beat whose source or destination lies in the TCDM window must
//     win that bank for the cycle -- the engine is an extra requester in the
//     cluster's rotating bank arbitration, so transfers contend with (but
//     cannot starve) the cores' LSU and SSR ports; channels are served in a
//     rotating order so no hart's transfers are statically favored;
//   * bytes are committed to the functional Memory beat by beat; programs
//     must poll `dmstat` (or rely on per-hart FIFO completion order) before
//     touching a destination, exactly like real double-buffering code.
//
// The functional ISS uses FunctionalDma instead: copies complete instantly
// at issue, `dmstat` reports everything completed -- which matches the
// cycle engine's architectural state at every well-synchronized poll, so
// lockstep cross-checks still close.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "mem/memory.hpp"
#include "mem/tcdm.hpp"

namespace sch::dma {

/// Per-hart front-end latches (dmsrc/dmdst/dmstr state).
struct FrontEnd {
  Addr src = 0;
  Addr dst = 0;
  i32 src_stride = 0;
  i32 dst_stride = 0;
  u32 issued = 0;     // per-hart transfer ids handed out so far
  u32 completed = 0;  // per-hart transfers fully committed
};

/// One queued copy descriptor (front-end state snapshotted at issue).
struct Transfer {
  u32 hart = 0;
  u32 id = 0;  // per-hart sequence number (1-based)
  Addr src = 0;
  Addr dst = 0;
  i32 src_stride = 0;
  i32 dst_stride = 0;
  u32 row_bytes = 0;
  u32 rows = 1;

  [[nodiscard]] u64 total_bytes() const {
    return static_cast<u64>(row_bytes) * rows;
  }
};

/// Completed-transfer record for the per-transfer stats log (bounded).
struct TransferRecord {
  u32 hart = 0;
  u32 id = 0;
  u64 bytes = 0;
  Cycle issued_at = 0;
  Cycle started_at = 0;
  Cycle done_at = 0;
  u64 conflicts = 0;
};

struct EngineStats {
  u64 transfers_issued = 0;
  u64 transfers_completed = 0;
  u64 bytes_moved = 0;
  u64 busy_cycles = 0;      // cycles with at least one channel active
  u64 startup_cycles = 0;   // channel-cycles spent in main-memory latency
  u64 tcdm_conflicts = 0;   // beats denied by the bank arbiter
  u64 queue_full_stalls = 0;  // dmcpy retries against a full channel queue

  [[nodiscard]] double achieved_bytes_per_cycle() const {
    return busy_cycles == 0
               ? 0.0
               : static_cast<double>(bytes_moved) / static_cast<double>(busy_cycles);
  }
};

/// Validate a copy footprint against the memory map. Returns a bus-error
/// status naming the offending end when any row falls outside mapped
/// memory, or when the shape is degenerate (zero rows / zero row bytes).
[[nodiscard]] Status validate_copy(const Memory& mem, const Transfer& t);

/// Shared config knobs, mirrored from sim::SimConfig (kept here so the
/// dma module does not depend on the sim layer).
struct EngineConfig {
  u32 main_mem_latency = 10;
  u32 main_mem_bytes_per_cycle = 8;
  u32 queue_depth = 4;
  u32 max_records = 1024;  // per-transfer log bound
};

class Engine {
 public:
  /// `memory` must outlive the engine. `num_harts` sizes the per-hart
  /// front-end array; `tcdm_requester` is this engine's global requester id
  /// in the shared bank arbiter (Tcdm::dma_requester_id).
  Engine(const EngineConfig& config, Memory& memory, u32 num_harts,
         u32 tcdm_requester);

  // --- front-end (executed by the cores' dm* instructions) -----------------
  void set_src(u32 hart, Addr addr) { fe_[hart].src = addr; }
  void set_dst(u32 hart, Addr addr) { fe_[hart].dst = addr; }
  void set_strides(u32 hart, i32 src_stride, i32 dst_stride) {
    fe_[hart].src_stride = src_stride;
    fe_[hart].dst_stride = dst_stride;
  }

  /// Room in hart `hart`'s descriptor FIFO? A dmcpy against a full queue
  /// retries the issue next cycle (counted in stats().queue_full_stalls by
  /// note_queue_full()).
  [[nodiscard]] bool can_issue(u32 hart) const {
    return ch_[hart].queue.size() < cfg_.queue_depth;
  }
  void note_queue_full() { ++stats_.queue_full_stalls; }

  /// Descriptor hart `hart`'s latches would produce for a copy of `rows`
  /// rows of `row_bytes` (1-D copies ignore the stride latches). Used by
  /// issue() and by callers that validate before issuing.
  [[nodiscard]] Transfer snapshot(u32 hart, u32 row_bytes, u32 rows) const;

  /// Snapshot hart `hart`'s latches into a descriptor and enqueue it on the
  /// hart's channel. Returns the per-hart transfer id (1-based). Caller
  /// validates the footprint first (validate_copy) and checks can_issue().
  u32 issue(u32 hart, u32 row_bytes, u32 rows, Cycle now);

  [[nodiscard]] u32 completed(u32 hart) const { return fe_[hart].completed; }
  [[nodiscard]] u32 outstanding(u32 hart) const {
    return fe_[hart].issued - fe_[hart].completed;
  }
  [[nodiscard]] const FrontEnd& front_end(u32 hart) const { return fe_[hart]; }

  /// No transfer queued or in flight on any channel.
  [[nodiscard]] bool idle() const;

  /// Advance every channel's head transfer by one cycle: startup latency
  /// first, then up to main_mem_bytes_per_cycle bytes in 8-byte beats, each
  /// TCDM-side beat arbitrated through `tcdm`. Channels are served in a
  /// rotating order. Call once per cluster cycle.
  void tick(Cycle now, Tcdm& tcdm);

  /// Cycles of provably inert work ahead: when EVERY non-empty channel's
  /// head transfer is in its main-memory startup burn (started, with
  /// startup_left > 0), ticking the engine only decrements counters and
  /// bumps stats for the next `horizon` cycles -- no memory traffic, no
  /// bank arbitration, no completion. Returns that minimum burn length, or
  /// 0 when any channel could do real work on the next tick (not started
  /// yet, past startup, or the engine is idle). The cluster's stall
  /// fast-forward uses this as its event horizon.
  [[nodiscard]] u32 startup_horizon() const;

  /// Apply `cycles` ticks' worth of pure startup burn in closed form:
  /// every non-empty channel's startup_left drops by `cycles`, with the
  /// exact per-tick stats (busy_cycles, startup_cycles) the skipped ticks
  /// would have recorded. Caller guarantees cycles <= startup_horizon().
  void skip_startup(u32 cycles);

  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  /// Completed-transfer log, oldest first (bounded at cfg.max_records;
  /// stats().transfers_completed keeps the true total).
  [[nodiscard]] const std::vector<TransferRecord>& records() const {
    return records_;
  }

  /// Fault injection (sim::FaultKind::kTruncateDmaBeat): the next `n` beats
  /// skip their memory commit -- the transfer's progress bookkeeping runs as
  /// normal but the bytes never land at the destination.
  void inject_beat_drop(u32 n) { drop_beats_ += n; }

 private:
  /// In-flight progress of a channel's head transfer.
  struct Active {
    bool started = false;
    u32 startup_left = 0;
    u32 row = 0;
    u32 col = 0;       // byte offset within the current row
    Addr src_row = 0;  // current row base addresses
    Addr dst_row = 0;
    Cycle issued_at = 0;
    Cycle started_at = 0;
    u64 conflicts = 0;
    /// A beat whose read was granted but whose destination bank was denied
    /// stages its bytes here and retries just the write next cycle (this
    /// also resolves same-bank TCDM-to-TCDM copies, which would otherwise
    /// self-conflict forever).
    u8 pending[8] = {};
    u32 pending_len = 0;
    Addr pending_dst = 0;
  };

  /// One per-hart transfer context.
  struct Channel {
    std::deque<Transfer> queue;
    std::deque<Cycle> issued_at;
    Active active;
  };

  void begin_head(Channel& ch, Cycle now);
  void finish_head(Channel& ch, Cycle now);
  bool advance_beat(Channel& ch, Cycle now, u32 beat);
  void tick_channel(Channel& ch, Cycle now, Tcdm& tcdm);

  EngineConfig cfg_;
  Memory& mem_;
  const u32 tcdm_requester_;
  std::vector<FrontEnd> fe_;
  std::vector<Channel> ch_;
  EngineStats stats_;
  std::vector<TransferRecord> records_;
  u32 drop_beats_ = 0;  // armed beat-commit drops (fault injection)
};

/// Instant-copy functional model for the ISS: dmcpy commits the whole block
/// at issue and dmstat always reports zero outstanding transfers.
class FunctionalDma {
 public:
  void set_src(Addr addr) { fe_.src = addr; }
  void set_dst(Addr addr) { fe_.dst = addr; }
  void set_strides(i32 src_stride, i32 dst_stride) {
    fe_.src_stride = src_stride;
    fe_.dst_stride = dst_stride;
  }

  /// Validate and perform the copy instantly. On success returns the
  /// per-hart transfer id; on failure returns the bus-error status.
  [[nodiscard]] Result<u32> copy(Memory& mem, u32 row_bytes, u32 rows);

  [[nodiscard]] u32 completed() const { return fe_.issued; }
  [[nodiscard]] u32 outstanding() const { return 0; }

 private:
  FrontEnd fe_;
};

} // namespace sch::dma
