// Domain scenario: the register-limited box3d1r stencil from the paper's
// evaluation, run in the SARIS baseline and the chaining-enabled variant,
// with bit-exact validation and the calibrated energy model.
//
//   ./build/examples/stencil_box3d1r
#include <cstdio>

#include "scalarchain.hpp"

int main() {
  using namespace sch;
  using kernels::StencilKind;
  using kernels::StencilVariant;

  const kernels::StencilParams params{.nx = 12, .ny = 12, .nz = 12};
  std::printf("box3d1r, %ux%ux%u grid (%u interior points), f64\n\n", params.nx,
              params.ny, params.nz, kernels::stencil_interior_points(params));

  api::RunReport base_run, chain_run;
  for (StencilVariant v : {StencilVariant::kBase, StencilVariant::kChainingPlus}) {
    const kernels::BuiltKernel k =
        kernels::build_stencil(StencilKind::kBox3d1r, v, params);
    const api::RunReport r = api::run(api::RunRequest::for_built(k));
    if (!r.ok) {
      std::fprintf(stderr, "%s failed: %s\n", k.name.c_str(), r.error.c_str());
      return 1;
    }
    std::printf("--- %s ---\n", k.name.c_str());
    std::printf("  validated bit-exactly against the golden reference\n");
    std::printf("  cycles: %llu, FPU utilization: %.3f\n",
                static_cast<unsigned long long>(r.cycles), r.fpu_utilization);
    std::printf("  registers: %u used, %u accumulators, %u resident "
                "coefficients, %u chained\n",
                k.regs.fp_regs_used, k.regs.accumulator_regs,
                k.regs.coefficient_regs, k.regs.chained_regs);
    std::printf("  TCDM: %llu reads, %llu writes, %llu conflicts\n",
                static_cast<unsigned long long>(r.tcdm_reads),
                static_cast<unsigned long long>(r.tcdm_writes),
                static_cast<unsigned long long>(r.tcdm_conflicts));
    std::printf("%s\n", energy::format_report(r.energy).c_str());
    if (v == StencilVariant::kBase) base_run = r; else chain_run = r;
  }

  const double speedup = static_cast<double>(base_run.cycles) /
                         static_cast<double>(chain_run.cycles);
  const double eff = base_run.energy.breakdown.total_pj /
                     chain_run.energy.breakdown.total_pj;
  std::printf("chaining+ vs SARIS baseline: %.1f%% faster, %.1f%% more "
              "energy-efficient (paper: 4%% / 10%%)\n",
              100.0 * (speedup - 1.0), 100.0 * (eff - 1.0));
  return 0;
}
