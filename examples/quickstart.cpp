// Quickstart: assemble a RISC-V program (with the paper's chaining
// extension), run it on the cycle-level Snitch-like core, and read back
// results and performance counters.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "scalarchain.hpp"

int main() {
  using namespace sch;

  // A tiny chained kernel: push three values through the chained register
  // ft3 (writes push, reads pop -- FIFO semantics, CSR 0x7C3).
  const char* source = R"(
      .data
  vals: .double 1.5, 2.5, 3.5
  out:  .zero 24
      .text
      la a0, vals
      fld ft0, 0(a0)
      fld ft1, 8(a0)
      fld ft2, 16(a0)
      li t0, 8              # bit 3 = ft3
      csrs chain_mask, t0
      fadd.d ft3, ft0, ft0  # push 3.0
      fadd.d ft3, ft1, ft1  # push 5.0  (no WAW hazard between these)
      fadd.d ft3, ft2, ft2  # push 7.0
      fsd ft3, 24(a0)       # pop 3.0
      fsd ft3, 32(a0)       # pop 5.0
      fsd ft3, 40(a0)       # pop 7.0
      csrw chain_mask, x0
      ecall
  )";

  auto assembled = assembler::assemble(source);
  if (!assembled.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n",
                 assembled.status().message().c_str());
    return 1;
  }
  const Program program = std::move(assembled).value();

  Memory memory;
  sim::Simulator simulator(program, memory);
  const HaltReason halt = simulator.run();
  if (halt != HaltReason::kEcall) {
    std::fprintf(stderr, "abnormal halt: %s\n", simulator.error().c_str());
    return 1;
  }

  std::printf("FIFO drained in order: %.1f %.1f %.1f (expect 3.0 5.0 7.0)\n",
              memory.load_f64(program.symbol("out")),
              memory.load_f64(program.symbol("out") + 8),
              memory.load_f64(program.symbol("out") + 16));
  std::printf("cycles: %llu, FP ops issued: %llu, chain pushes/pops: %llu/%llu\n",
              static_cast<unsigned long long>(simulator.cycles()),
              static_cast<unsigned long long>(simulator.perf().fpu_ops),
              static_cast<unsigned long long>(simulator.fp().chain().stats().pushes),
              static_cast<unsigned long long>(simulator.fp().chain().stats().pops));
  return 0;
}
