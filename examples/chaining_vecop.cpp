// The paper's pitch in one executable: the same vector operation
// a = b*(c+d) scheduled four ways (Fig. 1), showing that chaining delivers
// the unrolled schedule's performance at the baseline's register cost.
//
//   ./build/examples/chaining_vecop [n]
#include <cstdio>
#include <cstdlib>

#include "scalarchain.hpp"

int main(int argc, char** argv) {
  using namespace sch;
  using kernels::VecopVariant;

  u32 n = 2048;
  if (argc > 1) n = static_cast<u32>(std::atoi(argv[1]));
  if (n == 0 || n % 4 != 0) {
    std::fprintf(stderr, "n must be a positive multiple of 4\n");
    return 1;
  }

  std::printf("a = b*(c+d), %u doubles, 3-stage FPU\n\n", n);
  std::printf("%-14s %-10s %-10s %-12s %-10s %s\n", "variant", "cycles",
              "FPU util", "RAW stalls", "FP regs", "note");

  for (VecopVariant v : {VecopVariant::kBaseline, VecopVariant::kUnrolled,
                         VecopVariant::kChained, VecopVariant::kChainedFrep}) {
    const kernels::BuiltKernel k = kernels::build_vecop(v, {.n = n, .b = 2.0});
    const api::RunReport r = api::run(api::RunRequest::for_built(k));
    if (!r.ok) {
      std::fprintf(stderr, "%s failed: %s\n", k.name.c_str(), r.error.c_str());
      return 1;
    }
    const char* note = "";
    switch (v) {
      case VecopVariant::kBaseline: note = "RAW stall per element (Fig. 1a)"; break;
      case VecopVariant::kUnrolled: note = "+3 architectural registers (Fig. 1b)"; break;
      case VecopVariant::kChained: note = "chain FIFO on ft3, +0 registers (Fig. 1c)"; break;
      case VecopVariant::kChainedFrep: note = "+ hardware loop"; break;
      case VecopVariant::kChainedPar: note = "cluster-partitioned"; break;
    }
    std::printf("%-14s %-10llu %-10.3f %-12llu %-10u %s\n",
                kernels::vecop_variant_name(v),
                static_cast<unsigned long long>(r.cycles), r.fpu_utilization,
                static_cast<unsigned long long>(r.perf.stall_fp_raw),
                k.regs.fp_regs_used, note);
  }
  return 0;
}
