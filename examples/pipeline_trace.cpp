// Observability demo: per-cycle issue trace and FPU-pipeline/chain-FIFO
// occupancy (the views behind the paper's Fig. 1c and Fig. 2), on a
// minimal chained sequence.
//
//   ./build/examples/pipeline_trace
#include <cstdio>

#include "scalarchain.hpp"

int main() {
  using namespace sch;

  const char* source = R"(
      .data
  v: .double 1.0, 2.0
      .text
      la a0, v
      fld fa0, 0(a0)
      fld fa1, 8(a0)
      li t0, 8
      csrs chain_mask, t0
      fadd.d ft3, fa0, fa1
      fadd.d ft3, fa0, fa1
      fadd.d ft3, fa0, fa1
      fadd.d ft3, fa0, fa1
      fmul.d ft4, ft3, fa0
      fmul.d ft5, ft3, fa0
      fmul.d ft6, ft3, fa0
      fmul.d ft7, ft3, fa0
      csrw chain_mask, x0
      ecall
  )";

  auto assembled = assembler::assemble(source);
  if (!assembled.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n",
                 assembled.status().message().c_str());
    return 1;
  }
  Program program = std::move(assembled).value();

  // The trace is an Observer client of the unified engine: attach a
  // TraceObserver to the request and the per-cycle snapshots arrive without
  // touching the simulator core.
  api::RunRequest request =
      api::RunRequest::for_program(std::move(program), "pipeline_trace");
  request.config.trace = true;  // maintain per-cycle issue/stall strings
  api::TraceObserver tracer;
  request.observers.push_back(&tracer);

  const api::RunReport report = api::run(request);
  if (!report.ok) {
    std::fprintf(stderr, "abnormal halt: %s\n", report.error.c_str());
    return 1;
  }

  std::printf("--- issue trace ---\n%s\n",
              tracer.trace().format_issue_table().c_str());
  std::printf("--- pipeline / chain occupancy ---\n%s\n",
              tracer.trace().format_dataflow().c_str());
  std::printf("total cycles: %llu\n",
              static_cast<unsigned long long>(report.cycles));
  return 0;
}
