// Writing your own kernel against the extension: a dot-product with a
// chained accumulator pair, assembled from text, cross-validated on the
// functional ISS and the cycle-level simulator.
//
// Pattern: with a 3-stage FMA, a single running sum would stall every
// instruction. Instead, four partial sums rotate through the chained ft3
// (fmadd pops the oldest partial sum and pushes the updated one), and a
// final reduction tree combines them.
//
//   ./build/examples/custom_kernel_asm
#include <cstdio>
#include <string>

#include "scalarchain.hpp"

int main() {
  using namespace sch;

  constexpr u32 kN = 64; // multiple of 4

  // Build the data section of the source programmatically.
  std::string data = "    .data\nx:\n";
  double golden[4] = {0, 0, 0, 0};
  std::string xs = "    .double ", ys = "    .double ";
  for (u32 i = 0; i < kN; ++i) {
    const double xv = 0.25 * ((i * 5 + 1) % 32) - 4.0;
    const double yv = 0.5 * ((i * 11 + 3) % 16) - 4.0;
    golden[i % 4] += xv * yv; // fma chain per lane, exact in this pattern? no:
    xs += std::to_string(xv) + (i + 1 < kN ? ", " : "\n");
    ys += std::to_string(yv) + (i + 1 < kN ? ", " : "\n");
  }
  const double expect = golden[0] + golden[1] + (golden[2] + golden[3]);

  const std::string source = std::string(R"(
    .data
x:
)") + xs + "y:\n" + ys + R"(
out: .zero 8
    .text
    # SSR0 <- x, SSR1 <- y (1-D streams)
    li t0, 63
    scfgw t0, 8
    li t0, 8
    scfgw t0, 24
    li t0, 63
    scfgw t0, 9
    li t0, 8
    scfgw t0, 25
    la t1, x
    scfgw t1, 48
    la t1, y
    scfgw t1, 49
    csrwi ssr_enable, 1
    li t0, 8
    csrs chain_mask, t0     # chain ft3
    # four zero partial sums into the FIFO
    fcvt.d.w ft3, x0
    fcvt.d.w ft3, x0
    fcvt.d.w ft3, x0
    fcvt.d.w ft3, x0
    # 64 chained fmadds: each pops the oldest partial sum, pushes the update
    li t2, 15
    frep.o t2, 4
    fmadd.d ft3, ft0, ft1, ft3
    fmadd.d ft3, ft0, ft1, ft3
    fmadd.d ft3, ft0, ft1, ft3
    fmadd.d ft3, ft0, ft1, ft3
    # reduction: pop the four lanes and fold
    fmv.d ft4, ft3
    fmv.d ft5, ft3
    fmv.d ft6, ft3
    fmv.d ft7, ft3
    csrw chain_mask, x0
    csrwi ssr_enable, 0
    fadd.d ft4, ft4, ft5
    fadd.d ft6, ft6, ft7
    fadd.d ft4, ft4, ft6
    la a0, out
    fsd ft4, 0(a0)
    ecall
)";

  auto assembled = assembler::assemble(source);
  if (!assembled.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n",
                 assembled.status().message().c_str());
    return 1;
  }
  const Program program = std::move(assembled).value();

  // Functional golden run.
  Memory iss_mem;
  Iss iss(program, iss_mem);
  if (iss.run() != HaltReason::kEcall) {
    std::fprintf(stderr, "ISS failed: %s\n", iss.error().c_str());
    return 1;
  }
  // Cycle-level run.
  Memory sim_mem;
  sim::Simulator simulator(program, sim_mem);
  if (simulator.run() != HaltReason::kEcall) {
    std::fprintf(stderr, "simulator failed: %s\n", simulator.error().c_str());
    return 1;
  }

  const double iss_dot = iss_mem.load_f64(program.symbol("out"));
  const double sim_dot = sim_mem.load_f64(program.symbol("out"));
  std::printf("dot(x, y) over %u elements\n", kN);
  std::printf("  ISS:        %.6f\n", iss_dot);
  std::printf("  simulator:  %.6f  (%llu cycles, %.3f FPU util)\n", sim_dot,
              static_cast<unsigned long long>(simulator.cycles()),
              simulator.perf().fpu_utilization());
  std::printf("  reference:  %.6f (math, not bit-ordered)\n", expect);
  std::printf("  engines agree: %s\n", iss_dot == sim_dot ? "yes" : "NO");
  return iss_dot == sim_dot ? 0 : 1;
}
