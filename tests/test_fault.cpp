// Fault-injection coverage (sim::FaultPlan): every fault class must be
// *caught* by the detector it targets and come back as a failed RunReport
// with the right structured failure.kind -- never as a crash, a hang, or a
// silently-wrong pass. One test per fault class, plus the timing-only
// pinned-green case (a finite TCDM bank stall perturbs cycles, not
// results) and the clean-plan baseline.
#include <gtest/gtest.h>

#include <memory>

#include "api/engine.hpp"
#include "asm/builder.hpp"
#include "isa/csr.hpp"
#include "sim/fault_plan.hpp"

namespace sch {
namespace {

using api::EngineSel;
using api::FailureKind;
using api::RunReport;
using api::RunRequest;
using sim::Fault;
using sim::FaultKind;
using sim::FaultPlan;

/// Counted delay loop: ~3 cycles per iteration on the int core, keeping the
/// hart retiring (watchdog-neutral) while a fault window elapses.
void emit_delay(ProgramBuilder& b, u32 iterations, const std::string& label) {
  b.li(isa::kT2, iterations);
  b.label(label);
  b.addi(isa::kT2, isa::kT2, -1);
  b.bnez(isa::kT2, label);
}

std::shared_ptr<const FaultPlan> plan_of(Fault f) {
  auto plan = std::make_shared<FaultPlan>();
  plan->faults.push_back(f);
  return plan;
}

/// fld a constant, wait out the fault window, store it back. A clean run
/// round-trips the value exactly; a mid-window FP register flip corrupts
/// the cycle engine's store while the fault-free ISS keeps the original.
Program flip_victim_program(Addr* out_addr) {
  ProgramBuilder b;
  const Addr cst = b.data_f64({1.5});
  const Addr out = b.data_zero(8);
  b.la(isa::kT0, cst);
  b.fld(3, isa::kT0, 0);
  emit_delay(b, 700, "wait");  // ~2000+ cycles
  b.la(isa::kT1, out);
  b.fsd(3, isa::kT1, 0);
  b.ecall();
  if (out_addr != nullptr) *out_addr = out;
  return b.build();
}

TEST(FaultInjection, CleanPlanBaselinePasses) {
  RunRequest req = RunRequest::for_program(flip_victim_program(nullptr),
                                           "fault/none", EngineSel::kBoth);
  req.lockstep_compare_memory = true;
  req.config.faults = std::make_shared<FaultPlan>();  // empty plan
  const RunReport r = api::run(req);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.failure.kind, FailureKind::kNone);
}

TEST(FaultInjection, FlipFpRegCaughtByLockstepCompare) {
  Fault f;
  f.kind = FaultKind::kFlipFpReg;
  f.cycle = 1000;  // mid delay loop: after the fld, before the fsd
  f.hart = 0;
  f.reg = 3;
  f.bits = 1ull << 52;  // off-by-one-exponent: 1.5 becomes 3.0
  RunRequest req = RunRequest::for_program(flip_victim_program(nullptr),
                                           "fault/flip", EngineSel::kBoth);
  req.lockstep_compare_memory = true;
  req.config.faults = plan_of(f);
  const RunReport r = api::run(req);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.failure.kind, FailureKind::kLockstepMismatch);
  EXPECT_GT(r.lockstep_mismatches, 0u);
}

TEST(FaultInjection, FlipFpRegCaughtByGoldenCheck) {
  // Same victim, cycle engine only: the corrupted store must fail the
  // golden validation (the detector a single-engine run relies on).
  kernels::BuiltKernel k;
  k.name = "fault/flip-golden";
  k.program = flip_victim_program(&k.out_base);
  k.expected = {1.5};
  Fault f;
  f.kind = FaultKind::kFlipFpReg;
  f.cycle = 1000;
  f.reg = 3;
  f.bits = 1ull << 52;
  RunRequest req = RunRequest::for_built(std::move(k), EngineSel::kCycle);
  req.config.faults = plan_of(f);
  const RunReport r = api::run(req);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.failure.kind, FailureKind::kGoldenMismatch);
  EXPECT_GT(r.mismatches, 0u);
}

TEST(FaultInjection, DropChainEntryCaughtByWatchdog) {
  // Producer pushes into f16's chain FIFO; the fault erases the entry while
  // the int core burns the delay loop; the consumer then pops forever.
  ProgramBuilder b;
  const Addr cst = b.data_f64({2.0});
  b.la(isa::kT0, cst);
  b.fld(3, isa::kT0, 0);
  b.li(isa::kT1, 1u << 16);
  b.csrw(isa::csr::kChainMask, isa::kT1);
  b.fadd_d(16, 3, 3);           // push
  emit_delay(b, 700, "wait");   // fault fires here
  b.fadd_d(24, 16, 3);          // pop: waits forever once the entry is gone
  b.csrwi(isa::csr::kChainMask, 0);
  b.ecall();
  Fault f;
  f.kind = FaultKind::kDropChainEntry;
  f.cycle = 1000;
  f.hart = 0;
  f.reg = 16;
  RunRequest req = RunRequest::for_program(b.build(), "fault/drop-chain",
                                           EngineSel::kCycle);
  req.config.faults = plan_of(f);
  req.config.deadlock_cycles = 2000;
  const RunReport r = api::run(req);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.failure.kind, FailureKind::kDeadlock);
  EXPECT_EQ(r.failure.hart, 0);
  EXPECT_GE(r.failure.cycle, 0);
}

TEST(FaultInjection, InfiniteTcdmBankStallCaughtByWatchdog) {
  // Bank 0 held busy forever: the first TCDM access wedges the core.
  ProgramBuilder b;
  b.la(isa::kT0, memmap::kTcdmBase);
  b.lw(isa::kT1, isa::kT0, 0);
  b.ecall();
  Fault f;
  f.kind = FaultKind::kStallTcdmBank;
  f.cycle = 0;
  f.bank = 0;
  f.duration = ~u64{0};
  RunRequest req = RunRequest::for_program(b.build(), "fault/stall-forever",
                                           EngineSel::kCycle);
  req.config.faults = plan_of(f);
  req.config.deadlock_cycles = 2000;
  const RunReport r = api::run(req);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.failure.kind, FailureKind::kDeadlock);
}

TEST(FaultInjection, FiniteTcdmBankStallIsTimingOnly) {
  // Pinned green: a 64-cycle bank outage delays the access but the run
  // still completes with correct results (no detector may fire).
  Addr out = 0;
  Program p = flip_victim_program(&out);
  Fault f;
  f.kind = FaultKind::kStallTcdmBank;
  f.cycle = 0;
  f.bank = 0;
  f.duration = 64;
  RunRequest req =
      RunRequest::for_program(std::move(p), "fault/stall-finite",
                              EngineSel::kBoth);
  req.lockstep_compare_memory = true;
  req.config.faults = plan_of(f);
  const RunReport r = api::run(req);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.failure.kind, FailureKind::kNone);
}

TEST(FaultInjection, TruncateDmaBeatCaughtByLockstepCompare) {
  // A dropped DMA beat never lands in the destination; dmstat still
  // reports completion, so only the lockstep memory compare can tell.
  ProgramBuilder b;
  const Addr src = b.data_f64({1.0, 2.0, 3.0, 4.0});
  const Addr dst = b.data_zero(32);
  b.la(isa::kT0, src);
  b.dmsrc(isa::kT0);
  b.la(isa::kT1, dst);
  b.dmdst(isa::kT1);
  b.li(isa::kA0, 32);
  b.dmcpy(isa::kA1, isa::kA0);
  b.label("poll");
  b.dmstat(isa::kA1, 1);
  b.bnez(isa::kA1, "poll");
  b.ecall();
  Fault f;
  f.kind = FaultKind::kTruncateDmaBeat;
  f.cycle = 1;
  f.duration = 1;  // drop one beat
  RunRequest req = RunRequest::for_program(b.build(), "fault/dma-truncate",
                                           EngineSel::kBoth);
  req.lockstep_compare_memory = true;
  req.config.faults = plan_of(f);
  const RunReport r = api::run(req);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.failure.kind, FailureKind::kLockstepMismatch);
  EXPECT_GT(r.lockstep_mismatches, 0u);
}

TEST(FaultInjection, FaultKindNamesAreStable) {
  EXPECT_STREQ(sim::fault_kind_name(FaultKind::kFlipFpReg), "flip_fp_reg");
  EXPECT_STREQ(sim::fault_kind_name(FaultKind::kDropChainEntry),
               "drop_chain_entry");
  EXPECT_STREQ(sim::fault_kind_name(FaultKind::kStallTcdmBank),
               "stall_tcdm_bank");
  EXPECT_STREQ(sim::fault_kind_name(FaultKind::kTruncateDmaBeat),
               "truncate_dma_beat");
}

} // namespace
} // namespace sch
