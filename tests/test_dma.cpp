// Xdma coverage: instruction forms through the assembler/disassembler, the
// functional ISS semantics (instant copy, dmstat), the cycle-level engine
// (real transfer cycles, latency/bandwidth sensitivity, 2-D copies), TCDM
// arbitration with the DMA requester present, bus-error reporting through
// the api layer, the dbuf-beats-naive acceptance criterion at 1 and 4
// cores, and multi-core dbuf determinism across host thread counts.
#include <gtest/gtest.h>

#include "api/engine.hpp"
#include "asm/assembler.hpp"
#include "asm/builder.hpp"
#include "dma/dma.hpp"
#include "isa/decode.hpp"
#include "isa/disasm.hpp"
#include "isa/reg.hpp"
#include "iss/iss.hpp"
#include "kernels/registry.hpp"
#include "mem/memory.hpp"
#include "mem/tcdm.hpp"
#include "sim/cluster.hpp"
#include "ssr/ssr_config.hpp"

namespace sch {
namespace {

// --- instruction forms -------------------------------------------------------

TEST(DmaIsa, AssemblerAcceptsAllForms) {
  const auto res = assembler::assemble(
      "dmsrc a0\n"
      "dmdst a1\n"
      "dmstr t0, t1\n"
      "dmcpy a2, a3\n"
      "dmcpy2d a4, a5, a6\n"
      "dmstat t2, 1\n");
  ASSERT_TRUE(res.ok()) << res.status().message();
  const Program& p = res.value();
  ASSERT_EQ(p.num_instrs(), 6u);
  EXPECT_EQ(p.instrs[0].mn, isa::Mnemonic::kDmSrc);
  EXPECT_EQ(p.instrs[0].rs1, isa::kA0);
  EXPECT_EQ(p.instrs[2].mn, isa::Mnemonic::kDmStr);
  EXPECT_EQ(p.instrs[2].rs2, isa::kT1);
  EXPECT_EQ(p.instrs[3].rd, isa::kA2);
  EXPECT_EQ(p.instrs[5].imm, 1);
  // Every word decodes back to itself and disassembles to parseable text.
  for (u32 w : p.words) {
    const isa::Instr in = isa::decode(w);
    ASSERT_TRUE(in.valid());
    const auto round = assembler::assemble(isa::disassemble(in) + "\n");
    ASSERT_TRUE(round.ok()) << isa::disassemble(in);
    EXPECT_EQ(round.value().words[0], w) << isa::disassemble(in);
  }
}

// --- shared test programs ----------------------------------------------------

/// Copy `n` doubles from a main-memory array into the bottom of the TCDM,
/// drain, and read dmstat(0) into a0.
Program make_copy_program(const std::vector<double>& values) {
  ProgramBuilder b(memmap::kTextBase, memmap::kMainBase);
  const Addr src = b.data_f64(values);
  b.la(isa::kT0, src);
  b.dmsrc(isa::kT0);
  b.li(isa::kT0, static_cast<i64>(memmap::kTcdmBase));
  b.dmdst(isa::kT0);
  b.li(isa::kT1, static_cast<i64>(values.size() * 8));
  b.dmcpy(isa::kA1, isa::kT1);
  b.label("drain");
  b.dmstat(isa::kT2, 1);
  b.bnez(isa::kT2, "drain");
  b.dmstat(isa::kA0, 0);
  b.ecall();
  return b.build();
}

// --- functional ISS ----------------------------------------------------------

TEST(DmaIss, InstantCopyAndStatus) {
  const std::vector<double> values{1.5, -2.25, 3.0, 4.75};
  Memory mem;
  Iss iss(make_copy_program(values), mem);
  ASSERT_EQ(iss.run(), HaltReason::kEcall) << iss.error();
  const auto got = mem.read_f64_block(memmap::kTcdmBase, 4);
  EXPECT_EQ(got, values);
  EXPECT_EQ(iss.state().x[isa::kA1], 1u);  // dmcpy returned id 1
  EXPECT_EQ(iss.state().x[isa::kA0], 1u);  // one transfer completed
  EXPECT_EQ(iss.state().x[isa::kT2], 0u);  // drain saw nothing outstanding
}

TEST(DmaIss, TwoDimensionalCopyGathersStridedRows) {
  // Gather column 0 of a 4x4 row-major matrix into contiguous TCDM words.
  ProgramBuilder b(memmap::kTextBase, memmap::kMainBase);
  std::vector<double> m(16);
  for (u32 i = 0; i < 16; ++i) m[i] = static_cast<double>(i);
  const Addr src = b.data_f64(m);
  b.la(isa::kT0, src);
  b.dmsrc(isa::kT0);
  b.li(isa::kT0, static_cast<i64>(memmap::kTcdmBase));
  b.dmdst(isa::kT0);
  b.li(isa::kT0, 32); // source row stride: 4 doubles
  b.li(isa::kT1, 8);  // destination stride: contiguous
  b.dmstr(isa::kT0, isa::kT1);
  b.li(isa::kT0, 8);  // one double per row
  b.li(isa::kT1, 4);  // four rows
  b.dmcpy2d(isa::kA1, isa::kT0, isa::kT1);
  b.ecall();
  Memory mem;
  Iss iss(b.build(), mem);
  ASSERT_EQ(iss.run(), HaltReason::kEcall) << iss.error();
  EXPECT_EQ(mem.read_f64_block(memmap::kTcdmBase, 4),
            (std::vector<double>{0.0, 4.0, 8.0, 12.0}));
}

// --- cycle-level engine ------------------------------------------------------

TEST(DmaCycle, TransferMovesBytesAndCostsCycles) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  Memory mem;
  sim::SimConfig cfg;
  cfg.main_mem_latency = 20;
  cfg.main_mem_bytes_per_cycle = 8;
  sim::Cluster cluster(make_copy_program(values), mem, cfg);
  ASSERT_EQ(cluster.run(), HaltReason::kEcall) << cluster.error();
  EXPECT_EQ(mem.read_f64_block(memmap::kTcdmBase, 8), values);
  const dma::EngineStats& s = cluster.dma().stats();
  EXPECT_EQ(s.transfers_completed, 1u);
  EXPECT_EQ(s.bytes_moved, 64u);
  // 20 startup cycles + 64 bytes at 8 B/cycle.
  EXPECT_GE(s.busy_cycles, 28u);
  EXPECT_GT(s.startup_cycles, 0u);
  EXPECT_GT(s.achieved_bytes_per_cycle(), 0.0);
  ASSERT_EQ(cluster.dma().records().size(), 1u);
  EXPECT_EQ(cluster.dma().records()[0].bytes, 64u);
  // The TCDM side of the transfer shows up in the bank stats as the DMA
  // requester's writes.
  const u32 dma_req = Tcdm::dma_requester_id(1);
  EXPECT_GT(cluster.tcdm().stats().grants_per_port[dma_req], 0u);
}

TEST(DmaCycle, LatencyAndBandwidthShapeRuntime) {
  const std::vector<double> values(64, 1.0);
  const auto run_cycles = [&](u32 latency, u32 bw) {
    Memory mem;
    sim::SimConfig cfg;
    cfg.main_mem_latency = latency;
    cfg.main_mem_bytes_per_cycle = bw;
    sim::Cluster cluster(make_copy_program(values), mem, cfg);
    EXPECT_EQ(cluster.run(), HaltReason::kEcall) << cluster.error();
    return cluster.cycles();
  };
  const Cycle fast = run_cycles(1, 64);
  const Cycle slow_latency = run_cycles(200, 64);
  const Cycle slow_bw = run_cycles(1, 1);
  EXPECT_LT(fast, slow_latency);
  EXPECT_LT(fast, slow_bw);
  // The latency penalty is at least the extra startup cycles.
  EXPECT_GE(slow_latency - fast, 150u);
}

TEST(DmaCycle, ClusterDrainsQueueAfterCoreHalts) {
  // The program issues a copy and halts WITHOUT polling; the cluster must
  // keep ticking until the engine drains so the bytes still land.
  ProgramBuilder b(memmap::kTextBase, memmap::kMainBase);
  const Addr src = b.data_f64({42.0, 43.0});
  b.la(isa::kT0, src);
  b.dmsrc(isa::kT0);
  b.li(isa::kT0, static_cast<i64>(memmap::kTcdmBase));
  b.dmdst(isa::kT0);
  b.li(isa::kT1, 16);
  b.dmcpy(isa::kA1, isa::kT1);
  b.ecall();
  Memory mem;
  sim::SimConfig cfg;
  cfg.main_mem_latency = 50;
  sim::Cluster cluster(b.build(), mem, cfg);
  ASSERT_EQ(cluster.run(), HaltReason::kEcall) << cluster.error();
  EXPECT_EQ(cluster.dma().stats().transfers_completed, 1u);
  EXPECT_EQ(mem.read_f64_block(memmap::kTcdmBase, 2),
            (std::vector<double>{42.0, 43.0}));
}

TEST(DmaCycle, TcdmToTcdmSameBankCopyCompletes) {
  // Regression: a TCDM-to-TCDM copy whose source and destination share a
  // bank used to self-conflict forever (the granted read occupied the bank
  // the write then needed). The staged-write path must make progress.
  ProgramBuilder b; // data base = TCDM
  const Addr src = b.data_f64({1.5, 2.5, 3.5, 4.5});
  const Addr dst = src; // same words: same banks by construction
  b.la(isa::kT0, src);
  b.dmsrc(isa::kT0);
  b.la(isa::kT0, dst);
  b.dmdst(isa::kT0);
  b.li(isa::kT1, 32);
  b.dmcpy(isa::kA1, isa::kT1);
  b.label("drain");
  b.dmstat(isa::kT2, 1);
  b.bnez(isa::kT2, "drain");
  b.ecall();
  Memory mem;
  sim::Cluster cluster(b.build(), mem, {});
  ASSERT_EQ(cluster.run(), HaltReason::kEcall) << cluster.error();
  EXPECT_LT(cluster.cycles(), 200u); // finished promptly, no livelock
  EXPECT_EQ(cluster.dma().stats().transfers_completed, 1u);
  EXPECT_GT(cluster.dma().stats().tcdm_conflicts, 0u); // the staged writes
  EXPECT_EQ(mem.read_f64_block(dst, 4),
            (std::vector<double>{1.5, 2.5, 3.5, 4.5}));
}

// --- TCDM arbitration with the DMA requester ---------------------------------

TEST(DmaTcdm, DmaRequesterContendsWithoutCorruptingAccounting) {
  // One core's worth of ports plus the DMA requester.
  Tcdm t({}, Tcdm::dma_requester_id(1) + 1);
  ASSERT_EQ(t.num_requesters(), 5u);
  const u32 lsu = Tcdm::requester_id(0, TcdmPortId::kCoreLsu);
  const u32 ssr0 = Tcdm::requester_id(0, TcdmPortId::kSsr0);
  const u32 dmar = Tcdm::dma_requester_id(1);
  const Addr addr = memmap::kTcdmBase; // everything attacks bank 0

  // Cycle A: the LSU goes first (its invocation-order priority) and wins;
  // the DMA and SSR0 both lose.
  t.begin_cycle();
  EXPECT_TRUE(t.request(lsu, addr, false));
  EXPECT_FALSE(t.request(dmar, addr, true));
  EXPECT_FALSE(t.request(ssr0, addr, false));
  // Cycle B: the rotation puts the DMA first; the core ports lose.
  t.begin_cycle();
  EXPECT_TRUE(t.request(dmar, addr, true));
  EXPECT_FALSE(t.request(lsu, addr, false));
  EXPECT_EQ(t.stats().grants_per_port[lsu], 1u);
  EXPECT_EQ(t.stats().grants_per_port[dmar], 1u);
  EXPECT_EQ(t.stats().conflicts_per_port[dmar], 1u);
  EXPECT_EQ(t.stats().conflicts_per_port[lsu], 1u);
  EXPECT_EQ(t.stats().conflicts_per_port[ssr0], 1u);
  // The conflict histogram accounts DMA-caused conflicts like any other.
  const auto top = t.top_conflict_banks(4);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].first, t.bank_of(addr));
  EXPECT_EQ(top[0].second, 3u);
}

TEST(DmaTcdm, DbufRunSharesBanksWithoutStarvation) {
  // End to end: in a dbuf run both the DMA requester and the core's SSR
  // ports keep getting grants (rotating fairness; nobody is starved), and
  // DMA bank conflicts are accounted in the global histogram sum.
  api::RunRequest req = api::RunRequest::for_kernel(
      "axpy", "chained_dbuf", {{"n", 512}, {"tile", 64}});
  req.config.main_mem_latency = 5; // keep the DMA streaming (contending) often
  struct Probe : api::Observer {
    u64 dma_grants = 0, ssr_grants = 0, conflict_sum = 0, conflicts = 0;
    void on_halt(const api::RunReport&, const sim::Simulator* sim,
                 const Memory*) override {
      ASSERT_NE(sim, nullptr);
      const TcdmStats& s = sim->tcdm().stats();
      dma_grants = s.grants_per_port[Tcdm::dma_requester_id(1)];
      ssr_grants = s.grants_per_port[Tcdm::requester_id(0, TcdmPortId::kSsr0)];
      for (u64 c : s.conflicts_per_bank) conflict_sum += c;
      conflicts = s.conflicts;
    }
  } probe;
  req.observers.push_back(&probe);
  const api::RunReport report = api::run(req);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_GT(probe.dma_grants, 0u);
  EXPECT_GT(probe.ssr_grants, 0u);
  EXPECT_EQ(probe.conflict_sum, probe.conflicts);
}

// --- failure paths through the api layer -------------------------------------

TEST(DmaErrors, UnmappedCopyFailsTheReportOnBothEngines) {
  ProgramBuilder b;
  b.li(isa::kT0, 0x0100); // below every mapped region
  b.dmsrc(isa::kT0);
  b.li(isa::kT0, static_cast<i64>(memmap::kTcdmBase));
  b.dmdst(isa::kT0);
  b.li(isa::kT1, 64);
  b.dmcpy(isa::kA1, isa::kT1);
  b.ecall();
  const Program prog = b.build();
  for (const api::EngineSel sel : {api::EngineSel::kIss, api::EngineSel::kCycle}) {
    const api::RunReport report =
        api::run(api::RunRequest::for_program(prog, "dma-bus-error", sel));
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.error.find("bus error"), std::string::npos) << report.error;
  }
}

TEST(DmaErrors, ZeroByteCopyFails) {
  ProgramBuilder b;
  b.li(isa::kT0, static_cast<i64>(memmap::kTcdmBase));
  b.dmsrc(isa::kT0);
  b.dmdst(isa::kT0);
  b.dmcpy(isa::kA1, isa::kZero);
  b.ecall();
  const api::RunReport report = api::run(
      api::RunRequest::for_program(b.build(), "dma-zero", api::EngineSel::kCycle));
  EXPECT_FALSE(report.ok);
}

TEST(EngineErrors, UnmappedSsrStreamFailsReportInsteadOfThrowing) {
  // Regression: a read stream pointed at a hole in the address map used to
  // throw std::out_of_range from Memory::load out of Engine::run.
  ProgramBuilder b;
  using ssr::CfgReg;
  b.li(isa::kT0, 7);
  b.scfgw(isa::kT0, ssr::cfg_index(0, CfgReg::kBound0));
  b.li(isa::kT0, 8);
  b.scfgw(isa::kT0, ssr::cfg_index(0, CfgReg::kStride0));
  b.li(isa::kT0, 0x0100); // unmapped stream base
  b.scfgw(isa::kT0, ssr::cfg_index(0, CfgReg::kRptr0));
  b.csrwi(isa::csr::kSsrEnable, 1);
  b.fadd_d(isa::kFt3, isa::kFt0, isa::kFt0);
  b.ecall();
  const Program prog = b.build();
  for (const api::EngineSel sel : {api::EngineSel::kIss, api::EngineSel::kCycle}) {
    const api::RunReport report =
        api::run(api::RunRequest::for_program(prog, "ssr-bus-error", sel));
    EXPECT_FALSE(report.ok) << api::engine_name(sel);
    EXPECT_NE(report.error.find("bus error"), std::string::npos)
        << api::engine_name(sel) << ": " << report.error;
  }
}

// --- acceptance: overlap beats copy-then-compute -----------------------------

api::RunReport run_dbuf_variant(const std::string& kernel,
                                const std::string& variant, u32 cores) {
  api::RunRequest req = api::RunRequest::for_kernel(
      kernel, variant, {{"n", 1024}, {"tile", 64}}, api::EngineSel::kBoth);
  req.config.num_cores = cores;
  req.config.main_mem_latency = 50;
  req.config.main_mem_bytes_per_cycle = 8;
  return api::run(req);
}

TEST(DbufAcceptance, OverlapBeatsCopyThenComputeOnOneAndFourCores) {
  for (const u32 cores : {1u, 4u}) {
    const api::RunReport naive = run_dbuf_variant("axpy", "chained_dma", cores);
    const api::RunReport dbuf = run_dbuf_variant("axpy", "chained_dbuf", cores);
    ASSERT_TRUE(naive.ok) << naive.error;
    ASSERT_TRUE(dbuf.ok) << dbuf.error;
    EXPECT_LT(dbuf.cycles, naive.cycles) << cores << " cores";
    // Both variants moved the same bytes; the win is overlap, not traffic.
    EXPECT_EQ(dbuf.dma.bytes, naive.dma.bytes);
    EXPECT_GT(dbuf.dma.transfers, 0u);
  }
}

TEST(DbufAcceptance, GemvOverlapBeatsCopyThenCompute) {
  for (const u32 cores : {1u, 4u}) {
    api::RunRequest naive_req = api::RunRequest::for_kernel(
        "gemv", "chained_dma", {{"m", 64}, {"n", 24}, {"rtile", 8}},
        api::EngineSel::kBoth);
    naive_req.config.num_cores = cores;
    naive_req.config.main_mem_latency = 50;
    api::RunRequest dbuf_req = naive_req;
    dbuf_req.variant = "chained_dbuf";
    const api::RunReport naive = api::run(naive_req);
    const api::RunReport dbuf = api::run(dbuf_req);
    ASSERT_TRUE(naive.ok) << naive.error;
    ASSERT_TRUE(dbuf.ok) << dbuf.error;
    EXPECT_LT(dbuf.cycles, naive.cycles) << cores << " cores";
  }
}

// --- determinism -------------------------------------------------------------

TEST(DbufDeterminism, FourCoreRunIsBitIdenticalAcrossThreadCounts) {
  const auto make_request = [] {
    api::RunRequest req = api::RunRequest::for_kernel(
        "axpy", "chained_dbuf", {{"n", 1024}, {"tile", 64}});
    req.config.num_cores = 4;
    req.config.main_mem_latency = 50;
    return req;
  };
  const auto fingerprint = [](const api::RunReport& r) {
    api::RunReport copy = r;
    copy.wall_s = 0; // the only nondeterministic field
    return copy.to_json().dump();
  };
  api::Engine one(api::EngineConfig{.threads = 1});
  api::Engine four(api::EngineConfig{.threads = 4});
  std::vector<api::RunRequest> batch;
  for (int i = 0; i < 4; ++i) batch.push_back(make_request());
  const auto reports_one = one.run_batch(batch);
  std::vector<api::RunRequest> batch2;
  for (int i = 0; i < 4; ++i) batch2.push_back(make_request());
  const auto reports_four = four.run_batch(batch2);
  ASSERT_TRUE(reports_one[0].ok) << reports_one[0].error;
  const std::string want = fingerprint(reports_one[0]);
  for (const auto& r : reports_one) EXPECT_EQ(fingerprint(r), want);
  for (const auto& r : reports_four) EXPECT_EQ(fingerprint(r), want);
}

// --- DMA-off invariance ------------------------------------------------------

TEST(DmaOff, QueueDepthAndBandwidthDoNotPerturbDmaFreeRuns) {
  // A workload that never issues a transfer must be cycle-for-cycle
  // identical under any DMA/main-memory bandwidth configuration.
  const auto cycles_with = [](u32 depth, u32 bw) {
    api::RunRequest req = api::RunRequest::for_kernel("axpy", "chained", {});
    req.config.dma_queue_depth = depth;
    req.config.main_mem_bytes_per_cycle = bw;
    const api::RunReport r = api::run(req);
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.dma.transfers, 0u);
    return r.cycles;
  };
  const u64 base = cycles_with(4, 8);
  EXPECT_EQ(cycles_with(1, 1), base);
  EXPECT_EQ(cycles_with(64, 512), base);
}

} // namespace
} // namespace sch
