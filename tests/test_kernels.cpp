// End-to-end kernel tests: every vecop and stencil variant must run to
// completion on BOTH engines and reproduce the golden output bit-exactly;
// performance relations from the paper must hold (chaining removes the RAW
// stalls of the baseline without the register cost of unrolling).
#include <gtest/gtest.h>

#include "api/engine.hpp"
#include "kernels/stencil.hpp"
#include "kernels/vecop.hpp"

namespace sch::kernels {
namespace {


// --- vecop (Fig. 1) ---------------------------------------------------------

class VecopAllVariants : public ::testing::TestWithParam<VecopVariant> {};

TEST_P(VecopAllVariants, IssAndSimValidate) {
  const BuiltKernel k = build_vecop(GetParam(), {.n = 64, .b = 2.0});
  const api::RunReport ir = api::run_built_iss(k);
  EXPECT_TRUE(ir.ok) << ir.error;
  const api::RunReport sr = api::run_built(k);
  EXPECT_TRUE(sr.ok) << sr.error;
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VecopAllVariants,
                         ::testing::Values(VecopVariant::kBaseline,
                                           VecopVariant::kUnrolled,
                                           VecopVariant::kChained,
                                           VecopVariant::kChainedFrep),
                         [](const auto& info) {
                           std::string n = vecop_variant_name(info.param);
                           for (char& c : n) {
                             if (c == '+') c = '_';
                           }
                           return n;
                         });

TEST(Vecop, ChainingRemovesBaselineStalls) {
  const VecopParams p{.n = 256, .b = 2.0};
  const api::RunReport base = api::run_built(build_vecop(VecopVariant::kBaseline, p));
  const api::RunReport chained = api::run_built(build_vecop(VecopVariant::kChained, p));
  ASSERT_TRUE(base.ok) << base.error;
  ASSERT_TRUE(chained.ok) << chained.error;
  // Fig. 1a wastes fpu_depth cycles per element pair on the RAW dependency.
  EXPECT_GT(base.perf.stall_fp_raw, 2ull * 256 / 2);
  EXPECT_EQ(chained.perf.stall_fp_raw, 0u);
  EXPECT_LT(chained.cycles, base.cycles);
  EXPECT_GT(chained.fpu_utilization, 1.5 * base.fpu_utilization);
}

TEST(Vecop, ChainingMatchesUnrolledSpeedWithoutRegisterCost) {
  const VecopParams p{.n = 256, .b = 2.0};
  const BuiltKernel unrolled = build_vecop(VecopVariant::kUnrolled, p);
  const BuiltKernel chained = build_vecop(VecopVariant::kChained, p);
  const api::RunReport ru = api::run_built(unrolled);
  const api::RunReport rc = api::run_built(chained);
  ASSERT_TRUE(ru.ok) << ru.error;
  ASSERT_TRUE(rc.ok) << rc.error;
  // Same schedule quality (within 2%)...
  EXPECT_NEAR(static_cast<double>(rc.cycles), static_cast<double>(ru.cycles),
              0.02 * static_cast<double>(ru.cycles));
  // ...but the software FIFO costs 3 extra architectural registers.
  EXPECT_EQ(unrolled.regs.accumulator_regs, 4u);
  EXPECT_EQ(chained.regs.accumulator_regs, 1u);
  EXPECT_EQ(unrolled.regs.fp_regs_used - chained.regs.fp_regs_used, 3u);
}

TEST(Vecop, FrepEliminatesLoopOverhead) {
  const VecopParams p{.n = 1024, .b = 2.0};
  const api::RunReport rc = api::run_built(build_vecop(VecopVariant::kChained, p));
  const api::RunReport rf = api::run_built(build_vecop(VecopVariant::kChainedFrep, p));
  ASSERT_TRUE(rc.ok) << rc.error;
  ASSERT_TRUE(rf.ok) << rf.error;
  EXPECT_LT(rf.cycles, rc.cycles);
  EXPECT_GT(rf.fpu_utilization, 0.95);
}

TEST(Vecop, DeeperPipelinesFavorChaining) {
  // Paper, Section II: "chaining benefits are increased for functional units
  // with deeper pipelines". The chained schedule tracks the FU depth with
  // unroll = depth + 1 (the FIFO capacity) at a constant ONE architectural
  // register, while the baseline's RAW stall grows with depth.
  double prev_gain = 0.0;
  for (u32 depth : {1u, 2u, 3u}) {
    sim::SimConfig cfg;
    cfg.fpu_depth = depth;
    const VecopParams p{.n = 240, .b = 2.0, .unroll = depth + 1};
    const api::RunReport base =
        api::run_built(build_vecop(VecopVariant::kBaseline, p), cfg);
    const api::RunReport chained =
        api::run_built(build_vecop(VecopVariant::kChained, p), cfg);
    ASSERT_TRUE(base.ok) << base.error;
    ASSERT_TRUE(chained.ok) << chained.error;
    const double gain = static_cast<double>(base.cycles) /
                        static_cast<double>(chained.cycles);
    EXPECT_GT(gain, prev_gain) << "depth " << depth;
    prev_gain = gain;
  }
}

TEST(Vecop, ChainedUnrollBeyondFifoCapacityDeadlocks) {
  // unroll > fpu_depth + 1 pushes more in-flight elements than the logical
  // FIFO (arch register + pipeline registers) can hold: the watchdog must
  // flag the ill-formed schedule.
  sim::SimConfig cfg;
  cfg.fpu_depth = 2; // capacity 3 < unroll 4
  cfg.deadlock_cycles = 2000;
  const api::RunReport r =
      api::run_built(build_vecop(VecopVariant::kChained, {.n = 64}), cfg);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("deadlock"), std::string::npos) << r.error;
}

// --- stencils (Fig. 3 workloads) ---------------------------------------------

struct StencilCase {
  StencilKind kind;
  StencilVariant variant;
};

class StencilAllVariants : public ::testing::TestWithParam<StencilCase> {};

TEST_P(StencilAllVariants, IssAndSimValidateBitExact) {
  const StencilParams params{.nx = 8, .ny = 8, .nz = 8}; // 216 points
  const BuiltKernel k = build_stencil(GetParam().kind, GetParam().variant, params);
  const api::RunReport ir = api::run_built_iss(k);
  EXPECT_TRUE(ir.ok) << ir.error;
  const api::RunReport sr = api::run_built(k);
  EXPECT_TRUE(sr.ok) << sr.error;
  EXPECT_EQ(sr.perf.fpu_ops >= k.useful_flops, true)
      << "fpu ops " << sr.perf.fpu_ops << " < useful flops " << k.useful_flops;
}

std::vector<StencilCase> all_stencil_cases() {
  std::vector<StencilCase> cases;
  for (StencilKind kind : {StencilKind::kBox3d1r, StencilKind::kJ3d27pt,
                           StencilKind::kStar3d1r}) {
    for (StencilVariant v :
         {StencilVariant::kBaseMM, StencilVariant::kBaseM, StencilVariant::kBase,
          StencilVariant::kChaining, StencilVariant::kChainingPlus}) {
      cases.push_back({kind, v});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid8, StencilAllVariants, ::testing::ValuesIn(all_stencil_cases()),
    [](const ::testing::TestParamInfo<StencilCase>& info) {
      std::string n = std::string(stencil_kind_name(info.param.kind)) + "_" +
                      stencil_variant_name(info.param.variant);
      std::string clean;
      for (char c : n) {
        if (c == '-') clean += 'm';
        else if (c == '+') clean += 'p';
        else clean += c;
      }
      return clean;
    });

TEST(Stencil, RegisterPressureStory) {
  const StencilParams p{.nx = 8, .ny = 8, .nz = 8};
  const BuiltKernel base = build_stencil(StencilKind::kBox3d1r, StencilVariant::kBaseMM, p);
  const BuiltKernel chained =
      build_stencil(StencilKind::kBox3d1r, StencilVariant::kChaining, p);
  // Without chaining: 4 accumulators and only a partial coefficient set fits.
  EXPECT_EQ(base.regs.accumulator_regs, 4u);
  EXPECT_LT(base.regs.coefficient_regs, 27u);
  // With chaining: one chained accumulator and all 27 coefficients resident.
  EXPECT_EQ(chained.regs.accumulator_regs, 1u);
  EXPECT_EQ(chained.regs.chained_regs, 1u);
  EXPECT_EQ(chained.regs.coefficient_regs, 27u);
}

TEST(Stencil, StarControlIsNotRegisterLimited) {
  // The 7-point star keeps every coefficient resident even without chaining
  // (the negative control of bench/ext_star_control).
  const StencilParams p{.nx = 8, .ny = 8, .nz = 8};
  const BuiltKernel base =
      build_stencil(StencilKind::kStar3d1r, StencilVariant::kBaseMM, p);
  EXPECT_EQ(base.regs.coefficient_regs, 7u);
  EXPECT_EQ(stencil_neighbors(StencilKind::kStar3d1r), 7u);
  EXPECT_EQ(stencil_neighbors(StencilKind::kBox3d1r), 27u);
}

TEST(Stencil, UtilizationOrderingMatchesPaper) {
  // Fig. 3 (left): Chaining+ reaches the highest FPU utilization and
  // Base-- the lowest, for both stencils.
  const StencilParams p{.nx = 10, .ny = 10, .nz = 10}; // 512 points
  for (StencilKind kind : {StencilKind::kBox3d1r, StencilKind::kJ3d27pt}) {
    const api::RunReport base_mm =
        api::run_built(build_stencil(kind, StencilVariant::kBaseMM, p));
    const api::RunReport base =
        api::run_built(build_stencil(kind, StencilVariant::kBase, p));
    const api::RunReport chain_plus =
        api::run_built(build_stencil(kind, StencilVariant::kChainingPlus, p));
    ASSERT_TRUE(base_mm.ok) << base_mm.error;
    ASSERT_TRUE(base.ok) << base.error;
    ASSERT_TRUE(chain_plus.ok) << chain_plus.error;
    EXPECT_GT(chain_plus.fpu_utilization, base.fpu_utilization)
        << stencil_kind_name(kind);
    EXPECT_GT(base.fpu_utilization, base_mm.fpu_utilization)
        << stencil_kind_name(kind);
    EXPECT_GT(chain_plus.fpu_utilization, 0.9) << stencil_kind_name(kind);
  }
}

TEST(Stencil, CoefficientStreamingCostsL1Energy) {
  // Base streams every coefficient use from L1; Chaining reads them from the
  // RF. The paper attributes Base's higher power to exactly this traffic.
  const StencilParams p{.nx = 10, .ny = 10, .nz = 10};
  const api::RunReport base =
      api::run_built(build_stencil(StencilKind::kBox3d1r, StencilVariant::kBase, p));
  const api::RunReport chained =
      api::run_built(build_stencil(StencilKind::kBox3d1r, StencilVariant::kChaining, p));
  ASSERT_TRUE(base.ok) << base.error;
  ASSERT_TRUE(chained.ok) << chained.error;
  EXPECT_GT(base.tcdm_reads, chained.tcdm_reads);
  EXPECT_GT(base.energy.power_mw, chained.energy.power_mw);
}

TEST(Stencil, InvalidParamsRejected) {
  EXPECT_THROW(build_stencil(StencilKind::kBox3d1r, StencilVariant::kBase,
                             {.nx = 2, .ny = 8, .nz = 8}),
               std::invalid_argument);
  EXPECT_THROW(build_stencil(StencilKind::kBox3d1r, StencilVariant::kBase,
                             {.nx = 9, .ny = 9, .nz = 8}),
               std::invalid_argument); // interior 7*7*6 = 294, not a multiple of 4
  EXPECT_THROW(build_stencil(StencilKind::kBox3d1r, StencilVariant::kBase,
                             {.nx = 8, .ny = 8, .nz = 8, .unroll = 2}),
               std::invalid_argument);
}

TEST(Stencil, ProductionGridCrossValidation) {
  // The exact configuration behind Fig. 3 (12^3 grid), cross-validated
  // between the two engines for the headline variants.
  const StencilParams p{};
  for (StencilVariant v : {StencilVariant::kBase, StencilVariant::kChainingPlus}) {
    const BuiltKernel k = build_stencil(StencilKind::kJ3d27pt, v, p);
    const api::RunReport ir = api::run_built_iss(k);
    ASSERT_TRUE(ir.ok) << ir.error;
    const api::RunReport sr = api::run_built(k);
    ASSERT_TRUE(sr.ok) << sr.error;
    // Both validated bit-exactly against the same golden; instruction-level
    // agreement follows. Sanity: the simulator executed at least as many
    // FP ops as the useful flop count.
    EXPECT_GE(sr.perf.fpu_ops, k.useful_flops);
  }
}

} // namespace
} // namespace sch::kernels
