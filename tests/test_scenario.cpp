// Scenario subsystem coverage: the JSONC-lite parser, scenario-file
// structural validation (bad JSON, unknown kernels/variants/keys), the
// sim-config override round trip, job expansion determinism, and a full
// parse -> expand -> run -> report cycle whose report parses back with the
// same JSON parser.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "scenario/json.hpp"
#include "scenario/scenario.hpp"
#include "scenario/scenario_runner.hpp"

namespace sch::scenario {
namespace {

// --- JSON parser -------------------------------------------------------------

TEST(Json, ParsesScalarsArraysObjects) {
  const auto r = Json::parse(R"({
    // a comment, allowed by the JSONC-lite dialect
    "s": "hi\nthere", "i": -42, "d": 2.5e1, "b": true, "x": null,
    "a": [1, 2, 3], "o": {"nested": false}
  })");
  ASSERT_TRUE(r.ok()) << r.status().message();
  const Json& j = r.value();
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.get("s")->as_string(), "hi\nthere");
  EXPECT_TRUE(j.get("i")->is_integer());
  EXPECT_EQ(j.get("i")->as_i64(), -42);
  EXPECT_FALSE(j.get("d")->is_integer());
  EXPECT_DOUBLE_EQ(j.get("d")->as_number(), 25.0);
  EXPECT_TRUE(j.get("b")->as_bool());
  EXPECT_TRUE(j.get("x")->is_null());
  ASSERT_EQ(j.get("a")->items().size(), 3u);
  EXPECT_EQ(j.get("a")->items()[2].as_i64(), 3);
  EXPECT_FALSE(j.get("o")->get("nested")->as_bool());
  EXPECT_EQ(j.get("missing"), nullptr);
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "{'a': 1}", "tru",
        "{\"a\":1} extra", "{\"a\":1,\"a\":2}", "[1 2]", "\"unterminated",
        "{\"a\": 1e}", "nan"}) {
    const auto r = Json::parse(bad);
    EXPECT_FALSE(r.ok()) << "accepted: " << bad;
  }
  // Errors carry a position.
  const auto r = Json::parse("{\n  \"a\": flase\n}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("2:"), std::string::npos)
      << r.status().message();
}

TEST(Json, DumpRoundTrips) {
  Json obj = Json::object();
  obj.set("name", "round \"trip\"");
  obj.set("count", static_cast<i64>(7));
  obj.set("ratio", 0.125);
  Json arr = Json::array();
  arr.push_back(true);
  arr.push_back(Json());
  obj.set("flags", std::move(arr));
  const std::string text = obj.dump(2);
  const auto back = Json::parse(text);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back.value().get("name")->as_string(), "round \"trip\"");
  EXPECT_EQ(back.value().get("count")->as_i64(), 7);
  EXPECT_DOUBLE_EQ(back.value().get("ratio")->as_number(), 0.125);
  EXPECT_TRUE(back.value().get("flags")->items()[1].is_null());
}

// --- scenario validation -----------------------------------------------------

TEST(Scenario, ParsesMinimalDocument) {
  const auto r = parse_scenario(R"({
    "name": "t", "runs": [{"kernel": "axpy"}]
  })");
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().name, "t");
  ASSERT_EQ(r.value().runs.size(), 1u);
  EXPECT_EQ(r.value().runs[0].kernel, "axpy");
  EXPECT_TRUE(r.value().runs[0].variants.empty()); // all variants
  EXPECT_EQ(r.value().runs[0].repeat, 1u);
}

TEST(Scenario, RejectsStructuralErrors) {
  const char* bad[] = {
      "[1]",                                              // not an object
      R"({"runs": [{"kernel": "axpy"}]})",                // missing name
      R"({"name": "t"})",                                 // missing runs
      R"({"name": "t", "runs": []})",                     // empty runs
      R"({"name": "t", "runs": [{}]})",                   // run without kernel
      R"({"name": "t", "runs": [{"kernel": "axpy", "wut": 1}]})",
      R"({"name": "t", "bogus": 1, "runs": [{"kernel": "axpy"}]})",
      R"({"name": "t", "runs": [{"kernel": "axpy", "repeat": 0}]})",
      R"({"name": "t", "runs": [{"kernel": "axpy", "variants": []}]})",
      R"({"name": "t", "runs": [{"kernel": "axpy", "sizes": [{"n": 1.5}]}]})",
      R"({"name": "t", "runs": [{"kernel": "axpy", "sim": {"warp": 9}}]})",
      R"({"name": "t", "runs": [{"kernel": "axpy", "sim": {"fpu_depth": true}}]})",
      // u32-destined override larger than 2^32 must not silently truncate.
      R"({"name": "t", "runs": [{"kernel": "axpy", "sim": {"fpu_depth": 4294967297}}]})",
  };
  for (const char* text : bad) {
    const auto r = parse_scenario(text);
    EXPECT_FALSE(r.ok()) << "accepted: " << text;
  }
}

TEST(Scenario, SimOverridesRoundTrip) {
  const auto doc = Json::parse(R"({
    "fpu_depth": 5, "tcdm_banks": 16, "strict_handoff": true,
    "fp_queue_depth": 4, "max_cycles": 1000000, "taken_branch_penalty": 0
  })");
  ASSERT_TRUE(doc.ok());
  sim::SimConfig cfg;
  const Status s = apply_sim_overrides(doc.value(), cfg);
  ASSERT_TRUE(s.is_ok()) << s.message();
  EXPECT_EQ(cfg.fpu_depth, 5u);
  EXPECT_EQ(cfg.tcdm.num_banks, 16u);
  EXPECT_TRUE(cfg.strict_chain_handoff);
  EXPECT_EQ(cfg.fp_queue_depth, 4u);
  EXPECT_EQ(cfg.max_cycles, 1000000u);
  EXPECT_EQ(cfg.taken_branch_penalty, 0u);
  // Untouched keys keep their defaults.
  const sim::SimConfig dflt;
  EXPECT_EQ(cfg.fdiv_latency, dflt.fdiv_latency);
  EXPECT_EQ(cfg.seq_buffer_depth, dflt.seq_buffer_depth);

  sim::SimConfig cfg2;
  const auto bad = Json::parse(R"({"fpu_dpeth": 3})");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(apply_sim_overrides(bad.value(), cfg2).is_ok());
}

// --- expansion ---------------------------------------------------------------

TEST(Scenario, ExpandsDeterministically) {
  const auto sc = parse_scenario(R"({
    "name": "t",
    "sim": {"tcdm_banks": 16},
    "runs": [{
      "kernel": "axpy",
      "variants": ["baseline", "chained"],
      "sizes": [{"n": 64}, {"n": 128}],
      "sim": {"fpu_depth": 4},
      "repeat": 2
    }]
  })");
  ASSERT_TRUE(sc.ok()) << sc.status().message();
  const auto jobs = expand(sc.value());
  ASSERT_TRUE(jobs.ok()) << jobs.status().message();
  ASSERT_EQ(jobs.value().size(), 8u); // 2 variants x 2 sizes x 2 repeats
  const Job& first = jobs.value()[0];
  EXPECT_EQ(first.kernel->name, "axpy");
  EXPECT_EQ(first.variant, "baseline");
  EXPECT_EQ(first.sizes.at("n"), 64);
  EXPECT_EQ(first.sizes.at("unroll"), 4); // registry default filled in
  EXPECT_EQ(first.repeat_index, 0u);
  // Run-level sim merged over the scenario-level base.
  EXPECT_EQ(first.config.fpu_depth, 4u);
  EXPECT_EQ(first.config.tcdm.num_banks, 16u);
  // size-major, then variant, then repeat: deterministic report order.
  EXPECT_EQ(jobs.value()[1].repeat_index, 1u);
  EXPECT_EQ(jobs.value()[2].variant, "chained");
  EXPECT_EQ(jobs.value()[4].sizes.at("n"), 128);
}

TEST(Scenario, ExpandRejectsUnknownNames) {
  const auto unknown_kernel = parse_scenario(
      R"({"name": "t", "runs": [{"kernel": "warpdrive"}]})");
  ASSERT_TRUE(unknown_kernel.ok());
  EXPECT_FALSE(expand(unknown_kernel.value()).ok());

  const auto unknown_variant = parse_scenario(
      R"({"name": "t", "runs": [{"kernel": "axpy", "variants": ["turbo"]}]})");
  ASSERT_TRUE(unknown_variant.ok());
  EXPECT_FALSE(expand(unknown_variant.value()).ok());

  const auto unknown_size = parse_scenario(
      R"({"name": "t", "runs": [{"kernel": "axpy", "sizes": [{"q": 1}]}]})");
  ASSERT_TRUE(unknown_size.ok());
  EXPECT_FALSE(expand(unknown_size.value()).ok());

  // Sizes outside u32 range must fail at expand time, not wrap inside the
  // builder (a negative m once hung the runner as a 4-billion-row kernel).
  for (const char* text :
       {R"({"name": "t", "runs": [{"kernel": "gemv", "sizes": [{"m": -4}]}]})",
        R"({"name": "t", "runs": [{"kernel": "axpy", "sizes": [{"n": 4294967552}]}]})"}) {
    const auto sc = parse_scenario(text);
    ASSERT_TRUE(sc.ok()) << sc.status().message();
    EXPECT_FALSE(expand(sc.value()).ok()) << text;
  }
}

// --- end-to-end --------------------------------------------------------------

TEST(Scenario, RunsJobsAndReportsResults) {
  const auto sc = parse_scenario(R"({
    "name": "mini",
    "runs": [
      {"kernel": "dot", "variants": ["baseline", "chained"], "sizes": [{"n": 64}]},
      // An ill-sized job must fail in its report row, not abort the batch.
      {"kernel": "dot", "variants": ["chained"], "sizes": [{"n": 63}]}
    ]
  })");
  ASSERT_TRUE(sc.ok()) << sc.status().message();
  const auto jobs = expand(sc.value());
  ASSERT_TRUE(jobs.ok()) << jobs.status().message();
  ASSERT_EQ(jobs.value().size(), 3u);
  const auto results = run_jobs(jobs.value());
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_TRUE(results[1].ok) << results[1].error;
  EXPECT_FALSE(results[2].ok);
  EXPECT_NE(results[2].error.find("multiple of unroll"), std::string::npos)
      << results[2].error;
  // The chained variant's story shows up in the counters.
  EXPECT_GT(results[1].fpu_utilization, results[0].fpu_utilization);

  const Json report = make_report(sc.value(), jobs.value(), results,
                                  api::default_engine().worker_count());
  EXPECT_EQ(report.get("scenario")->as_string(), "mini");
  EXPECT_EQ(report.get("schema")->as_i64(), api::RunReport::kSchemaVersion);
  EXPECT_EQ(report.get("jobs")->as_i64(), 3);
  EXPECT_EQ(report.get("failures")->as_i64(), 1);
  ASSERT_EQ(report.get("results")->items().size(), 3u);
  const Json& row = report.get("results")->items()[0];
  EXPECT_EQ(row.get("schema")->as_i64(), api::RunReport::kSchemaVersion);
  EXPECT_EQ(row.get("kernel")->as_string(), "dot");
  EXPECT_EQ(row.get("variant")->as_string(), "baseline");
  EXPECT_EQ(row.get("sizes")->get("n")->as_i64(), 64);
  EXPECT_TRUE(row.get("ok")->as_bool());
  EXPECT_GT(row.get("cycles")->as_i64(), 0);
  EXPECT_NE(row.get("stalls")->get("fp_raw"), nullptr);
  EXPECT_NE(row.get("energy")->get("power_mw"), nullptr);

  // The emitted report is valid strict JSON (parses back without comments).
  const auto reparsed = Json::parse(report.dump(2));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
  EXPECT_EQ(reparsed.value().get("results")->items().size(), 3u);
}

// --- parser hardening corpus -------------------------------------------------

#ifdef SCH_CORPUS_DIR
TEST(ScenarioCorpus, EveryCorpusInputReturnsACleanStatus) {
  // tests/corpus/scenario/ holds hostile inputs: empty files, truncations,
  // binary garbage, >64-deep nesting, huge numbers, unterminated strings,
  // duplicate keys, wrong types, unknown kernels/keys. The contract is
  // simple: parse_scenario() returns (a value or a clean error Status) on
  // every one of them -- it never throws, aborts or hangs. Inputs the
  // JSONC-lite dialect happens to accept must also expand without
  // throwing.
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(SCH_CORPUS_DIR) / "scenario";
  ASSERT_TRUE(fs::exists(dir)) << dir << " missing (build config problem)";
  u32 seen = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    SCOPED_TRACE(entry.path().filename().string());
    std::ifstream in(entry.path(), std::ios::binary);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    ASSERT_NO_THROW({
      const Result<Scenario> r = parse_scenario(text);
      if (r.ok()) {
        const Result<std::vector<Job>> jobs = expand(r.value());
        (void)jobs;  // either outcome is fine; throwing is not
      } else {
        EXPECT_FALSE(r.status().message().empty());
      }
    });
    ++seen;
  }
  EXPECT_GE(seen, 12u) << "corpus unexpectedly small -- files not checked in?";
}

TEST(ScenarioCorpus, KnownBadInputsAreRejected) {
  // A few corpus members pin the *specific* rejection, so a parser
  // regression that silently accepts garbage is caught even though the
  // blanket no-throw sweep above would stay green.
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(SCH_CORPUS_DIR) / "scenario";
  const auto parse_file = [&](const char* name) {
    std::ifstream in(dir / name, std::ios::binary);
    EXPECT_TRUE(in.good()) << name;
    std::stringstream ss;
    ss << in.rdbuf();
    return parse_scenario(ss.str());
  };
  for (const char* name :
       {"empty.json", "truncated_mid_key.json", "unterminated_string.json",
        "deep_nesting.json", "wrong_type_runs.json", "missing_name.json",
        "unknown_key.json", "wrong_variant_type.json", "binary_bytes.json",
        "negative_override.json"}) {
    SCOPED_TRACE(name);
    const Result<Scenario> r = parse_file(name);
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.status().message().empty());
  }
  // Unknown kernel names pass structural parsing (the registry is consulted
  // at expansion time) but must come back as a clean expand error.
  const Result<Scenario> unknown = parse_file("unknown_kernel.json");
  ASSERT_TRUE(unknown.ok()) << unknown.status().message();
  const Result<std::vector<Job>> jobs = expand(unknown.value());
  ASSERT_FALSE(jobs.ok());
  EXPECT_NE(jobs.status().message().find("warp_drive"), std::string::npos)
      << jobs.status().message();
}
#endif // SCH_CORPUS_DIR

} // namespace
} // namespace sch::scenario
