// Additional assembler coverage: expressions, .equ chains, alignment
// directives, jump/branch pseudo-ops, memory-operand forms, and the error
// taxonomy (line numbers, range checks, malformed tokens).
#include <gtest/gtest.h>

#include <cstring>

#include "asm/assembler.hpp"
#include "isa/disasm.hpp"
#include "isa/reg.hpp"

namespace sch {
namespace {

using assembler::assemble;

Program ok(std::string_view src) {
  auto r = assemble(src);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(r).value();
}

std::string err(std::string_view src) {
  auto r = assemble(src);
  EXPECT_FALSE(r.ok());
  return r.ok() ? "" : r.status().message();
}

TEST(AsmExpr, SymbolArithmetic) {
  const Program p = ok(R"(
    .equ base, 0x100
    .equ off, 8
    li a0, base + off
    li a1, base - off - 1
    addi a2, a0, off + 4
  )");
  // li 0x108 -> lui+addi or addi: 0x108 fits 12 bits.
  EXPECT_EQ(p.instrs[0].imm, 0x108);
  EXPECT_EQ(p.instrs[1].imm, 0xF7);
  EXPECT_EQ(p.instrs.back().imm, 12);
}

TEST(AsmExpr, EquReferencingEqu) {
  const Program p = ok(R"(
    .equ a, 5
    .equ b, a + 5
    li t0, b
  )");
  EXPECT_EQ(p.instrs[0].imm, 10);
}

TEST(AsmExpr, LabelInDataExpression) {
  const Program p = ok(R"(
    .data
arr: .zero 16
ptr: .word arr
ptr2: .word arr + 8
    .text
    nop
  )");
  u32 v0 = 0, v1 = 0;
  std::memcpy(&v0, p.data.data() + 16, 4);
  std::memcpy(&v1, p.data.data() + 20, 4);
  EXPECT_EQ(v0, memmap::kTcdmBase);
  EXPECT_EQ(v1, memmap::kTcdmBase + 8);
}

TEST(AsmDirectives, BalignAndAlign) {
  const Program p = ok(R"(
    .data
    .byte 1, 2, 3
    .balign 4
w: .word 5
    .byte 9
    .align 4
q: .dword 7
  )");
  EXPECT_EQ(p.symbol("w") % 4, 0u);
  EXPECT_EQ(p.symbol("q") % 16, 0u);
}

TEST(AsmDirectives, SpaceAndNegativeFloats) {
  const Program p = ok(R"(
    .data
    .space 3
f: .float -2.5
d: .double -1e3
  )");
  float fv;
  std::memcpy(&fv, p.data.data() + p.symbol("f") - memmap::kTcdmBase, 4);
  double dv;
  std::memcpy(&dv, p.data.data() + p.symbol("d") - memmap::kTcdmBase, 8);
  EXPECT_EQ(fv, -2.5f);
  EXPECT_EQ(dv, -1000.0);
}

TEST(AsmPseudo, JumpAndBranchFamilies) {
  const Program p = ok(R"(
start:
    j fwd
    jr ra
    call fn
    not a0, a1
    neg a2, a3
    bgt a0, a1, fwd
    ble a0, a1, fwd
    bgtu a0, a1, fwd
    bleu a0, a1, fwd
    bltz a0, fwd
    bgez a0, fwd
    blez a0, fwd
    bgtz a0, fwd
fwd:
fn: ret
  )");
  EXPECT_EQ(p.instrs[0].mn, isa::Mnemonic::kJal);
  EXPECT_EQ(p.instrs[0].rd, 0);
  EXPECT_EQ(p.instrs[1].mn, isa::Mnemonic::kJalr);
  EXPECT_EQ(p.instrs[2].mn, isa::Mnemonic::kJal);
  EXPECT_EQ(p.instrs[2].rd, isa::kRa);
  EXPECT_EQ(p.instrs[3].mn, isa::Mnemonic::kXori);
  EXPECT_EQ(p.instrs[3].imm, -1);
  EXPECT_EQ(p.instrs[4].mn, isa::Mnemonic::kSub);
  // bgt swaps operands into blt.
  EXPECT_EQ(p.instrs[5].mn, isa::Mnemonic::kBlt);
  EXPECT_EQ(p.instrs[5].rs1, isa::kA1);
  EXPECT_EQ(p.instrs[5].rs2, isa::kA0);
  EXPECT_EQ(p.instrs[9].mn, isa::Mnemonic::kBlt);  // bltz
  EXPECT_EQ(p.instrs[12].mn, isa::Mnemonic::kBlt); // bgtz -> blt zero, rs
  EXPECT_EQ(p.instrs[12].rs1, 0);
}

TEST(AsmPseudo, JalrMemOperandForm) {
  const Program p = ok(R"(
    jalr ra, 16(t0)
    jalr ra, t0, 16
    jalr x0, 0(ra)
  )");
  EXPECT_EQ(p.instrs[0].imm, 16);
  EXPECT_EQ(p.instrs[0].rs1, isa::kT0);
  EXPECT_EQ(p.instrs[0].raw, p.instrs[1].raw);
}

TEST(AsmPseudo, JalOptionalRd) {
  const Program p = ok(R"(
t:  jal t
    jal t1, t
  )");
  EXPECT_EQ(p.instrs[0].rd, isa::kRa); // default link register
  EXPECT_EQ(p.instrs[1].rd, isa::kT1);
}

TEST(AsmErrors, DiagnosticsCarryLineNumbers) {
  EXPECT_NE(err("nop\nnop\nbogus\n").find("line 3"), std::string::npos);
  EXPECT_NE(err("addi a0, a1, 99999\n").find("line 1"), std::string::npos);
}

TEST(AsmErrors, RangeChecks) {
  EXPECT_NE(err("slli a0, a1, 32\n"), "");
  EXPECT_NE(err("csrwi 0x7C0, 32\n"), "");      // zimm > 31
  EXPECT_NE(err("lui a0, 0x100000\n"), "");     // 20-bit overflow
  EXPECT_NE(err(".data\n.align 44\n"), "");
  EXPECT_NE(err(".data\n.zero -4\n"), "");
}

TEST(AsmErrors, MalformedTokens) {
  EXPECT_NE(err("addi a0, a1, 0x\n"), "");        // bare hex prefix is empty
  EXPECT_NE(err("lw a0, 4(a1\n"), "");            // missing paren
  EXPECT_NE(err("fadd.d ft0, ft1\n"), "");        // missing operand
  EXPECT_NE(err("fadd.d ft0, ft1, a0\n"), "");    // int reg in FP slot
  EXPECT_NE(err("\"unterminated\n"), "");
}

TEST(AsmErrors, EquUsesBeforeDefinitionFail) {
  EXPECT_NE(err("li a0, later\n.equ later, 5\n"), "");
}

TEST(AsmRoundTrip, WholeKernelThroughDisasm) {
  // Assemble a kernel, disassemble every instruction, reassemble, compare.
  const Program p1 = ok(R"(
    .equ n, 16
    li t0, n - 1
    scfgw t0, 8
    li t0, 8
    scfgw t0, 24
    csrwi ssr_enable, 1
    li t2, n - 1
    frep.o t2, 2
    fmadd.d ft3, ft0, ft1, ft3
    fsgnjx.d ft4, ft3, ft3
    csrwi ssr_enable, 0
    ecall
  )");
  std::string text;
  for (const auto& in : p1.instrs) text += isa::disassemble(in) + "\n";
  const Program p2 = ok(text);
  ASSERT_EQ(p1.words.size(), p2.words.size());
  for (usize i = 0; i < p1.words.size(); ++i) {
    EXPECT_EQ(p1.words[i], p2.words[i]) << i << ": " << isa::disassemble(p1.instrs[i]);
  }
}

} // namespace
} // namespace sch
