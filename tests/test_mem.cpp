// Memory storage and TCDM bank-arbitration tests.
#include <gtest/gtest.h>

#include "mem/memory.hpp"
#include "mem/tcdm.hpp"

namespace sch {
namespace {

TEST(Memory, TypedRoundTrip) {
  Memory m;
  m.store(memmap::kTcdmBase, 0xDEADBEEF, 4);
  EXPECT_EQ(m.load(memmap::kTcdmBase, 4), 0xDEADBEEFu);
  m.store_f64(memmap::kTcdmBase + 8, 3.25);
  EXPECT_EQ(m.load_f64(memmap::kTcdmBase + 8), 3.25);
  m.store_f32(memmap::kTcdmBase + 16, -1.5f);
  EXPECT_EQ(m.load_f32(memmap::kTcdmBase + 16), -1.5f);
}

TEST(Memory, LittleEndianBytes) {
  Memory m;
  m.store(memmap::kTcdmBase, 0x0102030405060708ull, 8);
  EXPECT_EQ(m.load(memmap::kTcdmBase, 1), 0x08u);
  EXPECT_EQ(m.load(memmap::kTcdmBase + 7, 1), 0x01u);
  EXPECT_EQ(m.load(memmap::kTcdmBase + 2, 2), 0x0506u);
}

TEST(Memory, RegionValidity) {
  Memory m;
  EXPECT_TRUE(m.valid(memmap::kTcdmBase, 8));
  EXPECT_TRUE(m.valid(memmap::kTcdmBase + memmap::kTcdmSize - 8, 8));
  EXPECT_FALSE(m.valid(memmap::kTcdmBase + memmap::kTcdmSize - 4, 8));
  EXPECT_TRUE(m.valid(memmap::kMainBase, 8));
  EXPECT_FALSE(m.valid(0x0, 4));
  EXPECT_THROW((void)m.load(0x1000, 4), std::out_of_range);
}

TEST(Memory, ImageAndBlockReadback) {
  Memory m;
  const std::vector<u8> img = {1, 2, 3, 4, 5};
  m.load_image(memmap::kTcdmBase + 100, img);
  EXPECT_EQ(m.read_block(memmap::kTcdmBase + 100, 5), img);
}

TEST(Tcdm, BankMapping) {
  Tcdm t;
  EXPECT_EQ(t.bank_of(memmap::kTcdmBase), 0u);
  EXPECT_EQ(t.bank_of(memmap::kTcdmBase + 8), 1u);
  EXPECT_EQ(t.bank_of(memmap::kTcdmBase + 8 * 31), 31u);
  EXPECT_EQ(t.bank_of(memmap::kTcdmBase + 8 * 32), 0u); // wraps
  EXPECT_EQ(t.bank_of(memmap::kTcdmBase + 4), 0u);      // same 8B word
}

TEST(Tcdm, SameBankConflictSameCycle) {
  Tcdm t;
  t.begin_cycle();
  EXPECT_TRUE(t.request(TcdmPortId::kCoreLsu, memmap::kTcdmBase, false));
  EXPECT_FALSE(t.request(TcdmPortId::kSsr0, memmap::kTcdmBase, false));
  EXPECT_FALSE(t.request(TcdmPortId::kSsr1, memmap::kTcdmBase + 8 * 32, true));
  EXPECT_EQ(t.stats().conflicts, 2u);
  t.begin_cycle();
  EXPECT_TRUE(t.request(TcdmPortId::kSsr0, memmap::kTcdmBase, false));
}

TEST(Tcdm, DistinctBanksNoConflict) {
  Tcdm t;
  t.begin_cycle();
  EXPECT_TRUE(t.request(TcdmPortId::kCoreLsu, memmap::kTcdmBase + 0, false));
  EXPECT_TRUE(t.request(TcdmPortId::kSsr0, memmap::kTcdmBase + 8, false));
  EXPECT_TRUE(t.request(TcdmPortId::kSsr1, memmap::kTcdmBase + 16, true));
  EXPECT_TRUE(t.request(TcdmPortId::kSsr2, memmap::kTcdmBase + 24, false));
  EXPECT_EQ(t.stats().conflicts, 0u);
  EXPECT_EQ(t.stats().reads, 3u);
  EXPECT_EQ(t.stats().writes, 1u);
}

TEST(Tcdm, PerPortStats) {
  Tcdm t;
  for (int c = 0; c < 4; ++c) {
    t.begin_cycle();
    t.request(TcdmPortId::kSsr0, memmap::kTcdmBase, false);
    t.request(TcdmPortId::kSsr1, memmap::kTcdmBase, false); // always loses
  }
  EXPECT_EQ(t.stats().grants_per_port[1], 4u);
  EXPECT_EQ(t.stats().conflicts_per_port[2], 4u);
}

TEST(Tcdm, ConfigurableBankCount) {
  Tcdm t(TcdmConfig{.num_banks = 4, .bank_word_log2 = 3});
  EXPECT_EQ(t.bank_of(memmap::kTcdmBase + 8 * 4), 0u);
  t.begin_cycle();
  EXPECT_TRUE(t.request(TcdmPortId::kSsr0, memmap::kTcdmBase, false));
  EXPECT_FALSE(t.request(TcdmPortId::kSsr1, memmap::kTcdmBase + 32, false));
}

} // namespace
} // namespace sch
