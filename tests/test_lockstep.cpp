// Cross-engine and refactor-regression coverage for the predecoded
// execution path:
//  * ISS-vs-cycle-level cross-check over every kernel family (vecop, gemv,
//    both paper stencils in all five variants): both engines must halt
//    cleanly, validate against the golden output, and agree on the final
//    architectural state.
//  * Cycle-count regression for the Fig. 3 sweep: predecode + handler-table
//    dispatch + the writeback ring buffer are host-side optimizations only;
//    per-variant cycle counts must be bit-identical to the pre-refactor
//    timing model.
//  * Predecode consistency: the cached per-instruction records must agree
//    with the metadata they were derived from.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "bench_common.hpp"
#include "iss/iss.hpp"
#include "kernels/gemv.hpp"
#include "kernels/stencil.hpp"
#include "kernels/vecop.hpp"
#include "mem/memory.hpp"
#include "sim/simulator.hpp"

namespace sch {
namespace {

using kernels::BuiltKernel;
using kernels::GemvVariant;
using kernels::StencilKind;
using kernels::StencilVariant;
using kernels::VecopVariant;

std::vector<BuiltKernel> all_kernels() {
  std::vector<BuiltKernel> out;
  for (VecopVariant v : {VecopVariant::kBaseline, VecopVariant::kUnrolled,
                         VecopVariant::kChained, VecopVariant::kChainedFrep}) {
    out.push_back(kernels::build_vecop(v));
  }
  for (GemvVariant v : {GemvVariant::kUnrolledAcc, GemvVariant::kChained}) {
    out.push_back(kernels::build_gemv(v));
  }
  for (StencilKind k : {StencilKind::kBox3d1r, StencilKind::kJ3d27pt}) {
    for (StencilVariant v :
         {StencilVariant::kBaseMM, StencilVariant::kBaseM, StencilVariant::kBase,
          StencilVariant::kChaining, StencilVariant::kChainingPlus}) {
      out.push_back(kernels::build_stencil(k, v));
    }
  }
  return out;
}

TEST(Lockstep, IssAndSimulatorAgreeOnAllKernels) {
  for (const BuiltKernel& k : all_kernels()) {
    SCOPED_TRACE(k.name);

    Memory mem_iss;
    Iss iss(k.program, mem_iss);
    ASSERT_EQ(iss.run(), HaltReason::kEcall) << "ISS: " << iss.error();

    Memory mem_sim;
    sim::Simulator simulator(k.program, mem_sim);
    ASSERT_EQ(simulator.run(), HaltReason::kEcall)
        << "sim: " << simulator.error();

    // Identical final architectural state.
    const ArchState& a = iss.state();
    const ArchState b = simulator.arch_state();
    for (u8 r = 0; r < isa::kNumIntRegs; ++r) {
      EXPECT_EQ(a.x[r], b.x[r]) << "x" << static_cast<int>(r);
    }
    for (u8 r = 0; r < isa::kNumFpRegs; ++r) {
      EXPECT_EQ(a.f[r], b.f[r]) << "f" << static_cast<int>(r);
    }

    // Both engines produced the golden output.
    for (u32 i = 0; i < k.expected.size(); ++i) {
      const double want = k.expected[i];
      EXPECT_EQ(mem_iss.load_f64(k.out_base + 8 * i), want) << "iss elem " << i;
      EXPECT_EQ(mem_sim.load_f64(k.out_base + 8 * i), want) << "sim elem " << i;
    }
  }
}

// Per-variant cycle counts of the Fig. 3 sweep (default 12x12x12 grid,
// default SimConfig), captured from the pre-predecode engine. The refactor
// must only change host speed, never modeled timing.
TEST(Lockstep, SweepCycleCountsUnchangedByPredecodeRefactor) {
  struct Expected {
    StencilKind kind;
    StencilVariant variant;
    u64 cycles;
    u64 retired;
  };
  const Expected expected[] = {
      {StencilKind::kBox3d1r, StencilVariant::kBaseMM, 30824, 30553},
      {StencilKind::kBox3d1r, StencilVariant::kBaseM, 30581, 30308},
      {StencilKind::kBox3d1r, StencilVariant::kBase, 29049, 29797},
      {StencilKind::kBox3d1r, StencilVariant::kChaining, 29091, 28813},
      {StencilKind::kBox3d1r, StencilVariant::kChainingPlus, 27848, 27568},
      {StencilKind::kJ3d27pt, StencilVariant::kBaseMM, 32570, 32303},
      {StencilKind::kJ3d27pt, StencilVariant::kBaseM, 30583, 30311},
      {StencilKind::kJ3d27pt, StencilVariant::kBase, 30054, 30800},
      {StencilKind::kJ3d27pt, StencilVariant::kChaining, 30093, 29816},
      {StencilKind::kJ3d27pt, StencilVariant::kChainingPlus, 28850, 28571},
  };
  const auto sweep = bench::run_stencil_sweep();
  ASSERT_EQ(sweep.size(), 10u);
  for (const Expected& e : expected) {
    const auto& entry = bench::find_entry(sweep, e.kind, e.variant);
    SCOPED_TRACE(std::string(kernels::stencil_kind_name(e.kind)) + "/" +
                 kernels::stencil_variant_name(e.variant));
    EXPECT_EQ(entry.run.cycles, e.cycles);
    EXPECT_EQ(entry.run.perf.total_retired(), e.retired);
  }
}

TEST(Lockstep, PredecodedRecordsMatchMetadata) {
  for (const BuiltKernel& k : all_kernels()) {
    SCOPED_TRACE(k.name);
    Program p = k.program;
    p.predecode();
    ASSERT_EQ(p.pre.size(), p.instrs.size());
    for (usize i = 0; i < p.instrs.size(); ++i) {
      const isa::Instr& in = p.instrs[i];
      const isa::PredecodedInstr& pre = p.pre[i];
      ASSERT_NE(pre.mi, nullptr);
      EXPECT_EQ(pre.mi, &in.meta());
      EXPECT_EQ(pre.fp_domain, in.meta().fp_domain);
      EXPECT_EQ(pre.mem_bytes, in.meta().mem_bytes);
      EXPECT_EQ(pre.handler != isa::ExecHandler::kInvalid, in.valid())
          << "instr " << i;
    }
  }
}

// An FP->int instruction that discards its result into x0 must not wedge
// the scoreboard: the FP writeback drops x0 writes, so offload must not
// mark x0 busy (regression for a deadlock found in review).
TEST(Lockstep, FpToIntDiscardIntoX0DoesNotDeadlock) {
  auto r = assembler::assemble(R"(
      .data
    v: .double 7.0
      .text
      la a0, v
      fld ft0, 0(a0)
      fcvt.w.d x0, ft0
      li a1, 42
      ecall
  )");
  ASSERT_TRUE(r.ok()) << r.status().message();
  Memory mem;
  sim::SimConfig cfg;
  cfg.max_cycles = 10'000;
  sim::Simulator s(std::move(r).value(), mem, cfg);
  EXPECT_EQ(s.run(), HaltReason::kEcall) << s.error();
  EXPECT_EQ(s.arch_state().x[isa::kA1], 42u);
}

TEST(Lockstep, TextIndexMatchesFetch) {
  const BuiltKernel k = kernels::build_vecop(VecopVariant::kChained);
  const Program& p = k.program;
  EXPECT_EQ(p.text_index(p.text_base - 4), Program::kNoIndex);
  EXPECT_EQ(p.text_index(p.text_base + 2), Program::kNoIndex);
  EXPECT_EQ(p.text_index(p.end_of_text()), Program::kNoIndex);
  for (usize i = 0; i < p.instrs.size(); ++i) {
    const Addr pc = p.text_base + static_cast<Addr>(4 * i);
    ASSERT_EQ(p.text_index(pc), static_cast<u32>(i));
    ASSERT_EQ(p.fetch(pc), &p.instrs[i]);
  }
}

} // namespace
} // namespace sch
