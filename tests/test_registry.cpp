// Kernel-registry coverage: the built-in population, lookup/validation
// semantics, and the guarantee that every registered (kernel, variant)
// builds at its default sizes and validates on the functional ISS.
#include <gtest/gtest.h>

#include "kernels/registry.hpp"
#include "api/engine.hpp"

namespace sch::kernels {
namespace {


TEST(Registry, BuiltinsArePopulatedAndSorted) {
  Registry& r = Registry::instance();
  const auto entries = r.entries();
  EXPECT_GE(entries.size(), 7u); // acceptance floor; currently 9
  for (usize i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1]->name, entries[i]->name) << "listing not sorted";
  }
  for (const char* name : {"vecop", "box3d1r", "j3d27pt", "star3d1r", "gemv",
                           "axpy", "dot", "gemm", "conv2d"}) {
    const KernelEntry* e = r.find(name);
    ASSERT_NE(e, nullptr) << name;
    EXPECT_FALSE(e->description.empty());
    EXPECT_GE(e->variants.size(), 2u);
    EXPECT_TRUE(e->has_variant(e->baseline_variant)) << name;
    EXPECT_TRUE(e->has_variant(e->chained_variant)) << name;
    EXPECT_FALSE(e->params.empty());
  }
  EXPECT_EQ(r.find("no-such-kernel"), nullptr);
}

TEST(Registry, DuplicateAndMalformedEntriesRejected) {
  Registry& r = Registry::instance();
  KernelEntry dup;
  dup.name = "vecop";
  dup.build = [](const std::string&, const SizeMap&) { return BuiltKernel{}; };
  EXPECT_THROW(r.add(std::move(dup)), std::invalid_argument);
  KernelEntry unnamed;
  unnamed.build = [](const std::string&, const SizeMap&) { return BuiltKernel{}; };
  EXPECT_THROW(r.add(std::move(unnamed)), std::invalid_argument);
  KernelEntry no_builder;
  no_builder.name = "builderless";
  EXPECT_THROW(r.add(std::move(no_builder)), std::invalid_argument);
}

TEST(Registry, SizeResolutionValidatesNames) {
  const KernelEntry* e = Registry::instance().find("gemm");
  ASSERT_NE(e, nullptr);
  const SizeMap defaults = e->resolve_sizes({});
  EXPECT_EQ(defaults.at("m"), 16);
  EXPECT_EQ(defaults.at("k"), 16);
  EXPECT_EQ(defaults.at("n"), 16);
  const SizeMap merged = e->resolve_sizes({{"m", 8}});
  EXPECT_EQ(merged.at("m"), 8);
  EXPECT_EQ(merged.at("k"), 16);
  EXPECT_THROW(e->resolve_sizes({{"width", 8}}), std::invalid_argument);
}

TEST(Registry, UnknownVariantThrows) {
  const KernelEntry* e = Registry::instance().find("axpy");
  ASSERT_NE(e, nullptr);
  EXPECT_THROW(e->build("turbo", e->resolve_sizes({})), std::invalid_argument);
}

TEST(Registry, EveryVariantBuildsAndValidatesAtDefaults) {
  for (const KernelEntry* e : Registry::instance().entries()) {
    const SizeMap sizes = e->resolve_sizes({});
    for (const std::string& variant : e->variants) {
      SCOPED_TRACE(e->name + "/" + variant);
      const BuiltKernel k = e->build(variant, sizes);
      EXPECT_FALSE(k.expected.empty());
      const api::RunReport r = api::run_built_iss(k);
      EXPECT_TRUE(r.ok) << r.error;
    }
  }
}

TEST(Registry, ChainedVariantBeatsBaselineUtilization) {
  // The acceptance story behind the smoke scenario, asserted at registry
  // level: on every kernel family the headline chained variant must reach
  // at least the baseline's FPU utilization (gemv's pair trades registers,
  // not cycles, hence >= with a small tolerance rather than >).
  for (const KernelEntry* e : Registry::instance().entries()) {
    SCOPED_TRACE(e->name);
    const SizeMap sizes = e->resolve_sizes({});
    const api::RunReport base = api::run_built(e->build(e->baseline_variant, sizes));
    const api::RunReport chained = api::run_built(e->build(e->chained_variant, sizes));
    ASSERT_TRUE(base.ok) << base.error;
    ASSERT_TRUE(chained.ok) << chained.error;
    EXPECT_GE(chained.fpu_utilization, 0.98 * base.fpu_utilization);
  }
}

} // namespace
} // namespace sch::kernels
